GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The pipeline runs shards on a worker pool; the race detector is the
# check that per-shard state really is private.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the fuzz-and-validate pipeline (E11): refine.Check
# memo on/off, enumeration serial vs sharded, campaign throughput.
bench:
	$(GO) test -bench 'BenchmarkRefineCheck|BenchmarkExhaustive|BenchmarkCampaign' -benchtime 1x -run '^$$' ./internal/bench/

check: build vet test race
