GO ?= go

.PHONY: all build vet test race bench check ci

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The pipeline runs shards on a worker pool; the race detector is the
# check that per-shard state really is private.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the fuzz-and-validate pipeline (E11) and the
# execution engines (E12): refine.Check memo on/off, enumeration
# serial vs sharded, campaign throughput, interpreted vs compiled.
bench:
	$(GO) test -bench 'BenchmarkRefineCheck|BenchmarkExhaustive|BenchmarkCampaign|BenchmarkExecEngines' -benchtime 1x -run '^$$' ./internal/bench/

check: build vet test race

# CI entry point: full vet + test, then the race detector on the
# concurrency-bearing surfaces — the worker-pool packages, the shared
# cross-shard memo, and the compiled engine's program cache and frame
# pool — and finally a quick E12 twin-row smoke, which exits nonzero
# if the compiled engine's behaviour ever diverges from the
# interpreter's.
ci: vet test
	$(GO) test -race ./internal/passes ./internal/optfuzz
	$(GO) test -race -run 'Memo|Compiled|ProgramShared|ExecTwins' ./internal/refine ./internal/core ./internal/bench
	$(GO) run ./cmd/tame-bench -exp exec -quick
