GO ?= go

.PHONY: all build vet test race bench check ci

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The pipeline runs shards on a worker pool; the race detector is the
# check that per-shard state really is private.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the fuzz-and-validate pipeline (E11): refine.Check
# memo on/off, enumeration serial vs sharded, campaign throughput.
bench:
	$(GO) test -bench 'BenchmarkRefineCheck|BenchmarkExhaustive|BenchmarkCampaign' -benchtime 1x -run '^$$' ./internal/bench/

check: build vet test race

# CI entry point: full vet + test, then the race detector on the two
# packages with worker pools and shared pass-manager state.
ci: vet test
	$(GO) test -race ./internal/passes ./internal/optfuzz
