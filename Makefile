GO ?= go

.PHONY: all build vet test race bench check ci

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The pipeline runs shards on a worker pool; the race detector is the
# check that per-shard state really is private.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the fuzz-and-validate pipeline (E11) and the
# execution engines (E12): refine.Check memo on/off, enumeration
# serial vs sharded, campaign throughput, interpreted vs compiled.
bench:
	$(GO) test -bench 'BenchmarkRefineCheck|BenchmarkExhaustive|BenchmarkCampaign|BenchmarkExecEngines' -benchtime 1x -run '^$$' ./internal/bench/

check: build vet test race

# CI entry point: full vet + test, then the race detector on the
# concurrency-bearing surfaces — the worker-pool packages, the shared
# cross-shard memo, the three-way engine lockstep (interpreter vs
# closures vs bytecode) with the shared program cache and frame pool,
# the bytecode lowering/fold/promotion tests, and the telemetry
# registry's lock-free hot paths — then a quick E12 smoke across all
# three tiers and both worker counts (exits nonzero if any engine
# row's behaviour hash diverges from the interpreted baseline; its
# rows land in BENCH_exec.json for the workflow artifact), and
# finally a quick campaign that must export a parseable metric
# snapshot carrying the counters the telemetry layer promises —
# including, via the ">0" assertions, proof that tier promotion to
# the bytecode VM actually fired (the legacy campaign: its undef
# resolution drives enough executions per program to trip the
# auto-promotion threshold, where the memoized freeze sweep does
# not). The JSON twin of that snapshot lands in metrics-snapshot.json
# for the workflow artifact.
ci: vet test
	$(GO) test -race ./internal/passes ./internal/optfuzz
	$(GO) test -race -run 'Memo|Compiled|ProgramShared|ExecTwins|Lowering|Fold|Superblock|TierPromotion' ./internal/refine ./internal/core ./internal/core/bytecode ./internal/bench
	$(GO) test -race -run 'TelemetryRaceStress' ./internal/telemetry
	$(GO) run ./cmd/tame-bench -exp exec -quick -json BENCH_exec.json
	$(GO) run ./cmd/tame-fuzz -validate -n 200 -workers 2 -sem legacy -metrics - \
	  | $(GO) run ./cmd/tame-metrics -check 'campaign_funcs_total,campaign_verified_total,check_checks_total,check_inputs_total,check_set_size,engine_steps_total,engine_execs_bytecode_total>0,engine_promotions_total>0,progcache_hits_total,memo_lookups_total,pool_tasks_total,pass_runs_total,opt_funcs_total,analysis_computes_total,span_wall_ns'
	$(GO) run ./cmd/tame-fuzz -validate -n 200 -workers 2 -sem legacy -metrics metrics-snapshot.json
