GO ?= go

.PHONY: all build vet test race bench check ci

all: check

build:
	$(GO) build ./...

# staticcheck is optional: run it when the host has it, skip quietly
# when not (the CI image installs it; a bare container need not).
vet: build
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "vet: staticcheck not installed, skipping"; fi

test: vet
	$(GO) test ./...

# The pipeline runs shards on a worker pool; the race detector is the
# check that per-shard state really is private.
race:
	$(GO) test -race ./...

# Micro-benchmarks for the fuzz-and-validate pipeline (E11) and the
# execution engines (E12): refine.Check memo on/off, enumeration
# serial vs sharded, campaign throughput, interpreted vs compiled.
bench:
	$(GO) test -bench 'BenchmarkRefineCheck|BenchmarkExhaustive|BenchmarkCampaign|BenchmarkExecEngines' -benchtime 1x -run '^$$' ./internal/bench/

check: build vet test race

# CI entry point: full vet + test, then the race detector on the
# concurrency-bearing surfaces — the worker-pool packages, the shared
# cross-shard memo, the three-way engine lockstep (interpreter vs
# closures vs bytecode) with the shared program cache and frame pool,
# the bytecode lowering/fold/promotion tests, and the telemetry
# registry's lock-free hot paths — then a quick E12 smoke across all
# three tiers and both worker counts (exits nonzero if any engine
# row's behaviour hash diverges from the interpreted baseline; its
# rows land in BENCH_exec.json for the workflow artifact), and
# finally a quick campaign that must export a parseable metric
# snapshot carrying the counters the telemetry layer promises —
# including, via the ">0" assertions, proof that tier promotion to
# the bytecode VM actually fired (the legacy campaign: its undef
# resolution drives enough executions per program to trip the
# auto-promotion threshold, where the memoized freeze sweep does
# not). The JSON twin of that snapshot lands in metrics-snapshot.json
# for the workflow artifact.
#
# The poison-analysis guards run after that: tame-lint over the
# freeze-elim corpus (verifier + SSA + dataflow diagnostics must be
# clean), a full -O2 under -verify-each over a CFG with loop-carried
# freezes — asserting the analysis was queried, freeze-elim actually
# deleted something the local operand walk cannot (a freeze behind a
# loop phi), every between-pass checker battery ran, and the failure
# counter is present AND zero ("=0") — and the soundness oracle
# sweeping the whole 1-instruction freeze-dialect space, cross-checking
# every static NeverPoison claim against concrete enumeration (exit 1
# on any violation). The legacy quick campaign also runs under
# -verify-each so the battery covers the legacy dialect too.
ci: vet test
	$(GO) test -race ./internal/passes ./internal/optfuzz
	$(GO) test -race -run 'Memo|Compiled|ProgramShared|ExecTwins|Lowering|Fold|Superblock|TierPromotion' ./internal/refine ./internal/core ./internal/core/bytecode ./internal/bench
	$(GO) test -race -run 'TelemetryRaceStress' ./internal/telemetry
	$(GO) run ./cmd/tame-bench -exp exec -quick -json BENCH_exec.json
	$(GO) run ./cmd/tame-fuzz -validate -verify-each -n 200 -workers 2 -sem legacy -metrics - \
	  | $(GO) run ./cmd/tame-metrics -check 'campaign_funcs_total,campaign_verified_total,check_checks_total,check_inputs_total,check_set_size,engine_steps_total,engine_execs_bytecode_total>0,engine_promotions_total>0,progcache_hits_total,memo_lookups_total,pool_tasks_total,pass_runs_total,opt_funcs_total,analysis_computes_total,span_wall_ns,verify_each_checks_total>0,verify_each_failures_total=0'
	$(GO) run ./cmd/tame-fuzz -validate -verify-each -n 200 -workers 2 -sem legacy -metrics metrics-snapshot.json
	$(GO) run ./cmd/tame-lint -q internal/passes/testdata/freeze-elim-loop.ll
	$(GO) run ./cmd/tame-opt -sem freeze -verify-each -metrics metrics-verify-each.txt internal/passes/testdata/freeze-elim-loop.ll > /dev/null
	$(GO) run ./cmd/tame-metrics -check 'analysis_poison_queries_total>0,passes_freeze_elim_removed_total>0,verify_each_checks_total>0,verify_each_failures_total=0' metrics-verify-each.txt
	$(GO) run ./cmd/tame-fuzz -poison-oracle -instrs 1 -n 0 -sem freeze -workers 2 -metrics - \
	  | $(GO) run ./cmd/tame-metrics -check 'poison_oracle_funcs_total>0,poison_oracle_claims_total>0,poison_oracle_execs_total>0,poison_oracle_violations_total=0'
	$(MAKE) ci-cache
	$(MAKE) ci-workload
	$(MAKE) ci-trace

# The persistent-cache gate: the same quick freeze campaign runs twice
# against one -cache-dir. The cold run seeds the snapshots; the warm
# run must actually serve memo lookups from them (cache_disk_hits_total
# strictly positive, zero stale rejects) and — the soundness half —
# produce byte-identical findings, which cmp enforces on the captured
# stdout. The warm run's memo must then be effectively total: the ratio
# assertion demands at least half of all lookups hit (in practice the
# disk snapshot makes it 100%; 0.5 leaves headroom for generator
# growth). The ci-cache/ dir is kept — snapshots and both metric
# snapshots — for the workflow's cache-snapshots artifact.
.PHONY: ci-cache
ci-cache:
	rm -rf ci-cache && mkdir -p ci-cache
	$(GO) run ./cmd/tame-fuzz -validate -n 300 -workers 2 -sem freeze -cache-dir ci-cache -metrics ci-cache/cold-metrics.json > ci-cache/cold-findings.txt
	$(GO) run ./cmd/tame-fuzz -validate -n 300 -workers 2 -sem freeze -cache-dir ci-cache -metrics ci-cache/warm-metrics.json > ci-cache/warm-findings.txt
	cmp ci-cache/cold-findings.txt ci-cache/warm-findings.txt
	$(GO) run ./cmd/tame-metrics -check 'cache_disk_loads_total=0,cache_disk_hits_total=0,cache_disk_stale_rejects_total=0' ci-cache/cold-metrics.json
	$(GO) run ./cmd/tame-metrics -check 'cache_disk_loads_total>0,cache_disk_hits_total>0,cache_disk_stale_rejects_total=0,memo_hits_total/memo_lookups_total>=0.5' ci-cache/warm-metrics.json

# The workload-layer gate, in two halves. Determinism: the same seeded
# mutation campaign (unsound legacy -O2, reducer on) runs at two worker
# counts and cmp enforces byte-identical reduced findings AND a
# byte-identical final corpus; the exhaustive-on-Source path gets the
# same cmp across workers 1 vs 4, proving the Source refactor did not
# perturb the original stream. Liveness: the mutation run's metric
# snapshot must show a populated corpus, novel coverage keys, and a
# reducer that actually shrank findings. The ci-workload/ dir — both
# findings files, the corpus, and the metric snapshot — is kept for the
# workflow's fuzz-corpus artifact.
.PHONY: ci-workload
ci-workload:
	rm -rf ci-workload && mkdir -p ci-workload
	$(GO) run ./cmd/tame-fuzz -validate -source mutate -seed 7 -epochs 3 -n 60 -sem legacy -unsound -reduce -workers 2 \
	  -corpus ci-workload/corpus-w2.ll -metrics ci-workload/mutate-metrics.json > ci-workload/mutate-w2.txt || true
	$(GO) run ./cmd/tame-fuzz -validate -source mutate -seed 7 -epochs 3 -n 60 -sem legacy -unsound -reduce -workers 8 \
	  -corpus ci-workload/corpus-w8.ll > ci-workload/mutate-w8.txt || true
	cmp ci-workload/mutate-w2.txt ci-workload/mutate-w8.txt
	cmp ci-workload/corpus-w2.ll ci-workload/corpus-w8.ll
	$(GO) run ./cmd/tame-metrics -check 'workload_funcs_total>0,workload_epochs_total>0,corpus_size>0,coverage_keys>0,reduce_steps_total>0,reduce_findings_total>0' ci-workload/mutate-metrics.json
	$(GO) run ./cmd/tame-fuzz -validate -n 300 -workers 1 -sem freeze > ci-workload/exhaustive-w1.txt
	$(GO) run ./cmd/tame-fuzz -validate -source exhaustive -n 300 -workers 4 -sem freeze > ci-workload/exhaustive-w4.txt
	cmp ci-workload/exhaustive-w1.txt ci-workload/exhaustive-w4.txt

# The flight-recorder gate: the seeded mutation campaign (the same one
# ci-workload's determinism half runs — it reliably produces findings)
# runs traced with the stall watchdog armed, then tame-trace -assert
# holds the recording to the invariants the trace layer promises:
# shard spans present, exactly one pinned provenance instant per
# finding (instants(finding)==counter(findings) — the pinned region is
# what makes this immune to ring wrap), and zero watchdog stalls; the
# metric twin re-checks the stall count and the event volume from the
# registry side. The human-readable summary (top spans, per-shard
# utilization, outliers) and the trace itself land in ci-trace/ for
# the workflow's flight-recorder artifact — download trace.json and
# drop it into ui.perfetto.dev to see the campaign timeline.
.PHONY: ci-trace
ci-trace:
	rm -rf ci-trace && mkdir -p ci-trace
	$(GO) run ./cmd/tame-fuzz -validate -source mutate -seed 7 -epochs 3 -n 60 -sem legacy -unsound -reduce -workers 2 \
	  -trace ci-trace/trace.json -stall-deadline 120s -metrics ci-trace/trace-metrics.json > ci-trace/findings.txt || true
	$(GO) run ./cmd/tame-trace -assert 'spans(campaign/s)>0,spans(check/)>0,spans(pass/)>0,instants(finding)==counter(findings),instants(finding)>0,instants(watchdog_stall)==0' ci-trace/trace.json
	$(GO) run ./cmd/tame-trace summarize ci-trace/trace.json > ci-trace/summary.txt
	$(GO) run ./cmd/tame-metrics -check 'watchdog_stalls_total=0,trace_events_total>0,campaign_refuted_total>0' ci-trace/trace-metrics.json
