// Top-level benchmarks: one per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). `go test -bench=.
// -benchmem` regenerates the raw numbers; `go run ./cmd/tame-bench`
// renders the full report.
package tameir_test

import (
	"fmt"
	"testing"

	"tameir/internal/bench"
	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/mi"
	"tameir/internal/minc"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/target"
)

// --- E4: §7.2 compile time, baseline vs prototype ---

func benchmarkCompile(b *testing.B, v bench.Variant) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range bench.Programs {
			if _, _, err := bench.Compile(p, v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompileTimeBaseline is E4's baseline: the legacy compiler.
func BenchmarkCompileTimeBaseline(b *testing.B) { benchmarkCompile(b, bench.Baseline()) }

// BenchmarkCompileTimePrototype is E4's prototype: freeze everywhere.
// The paper reports compile time "largely unaffected... in the range
// of ±1%"; compare ns/op with the baseline benchmark. (E5, memory, is
// the allocated-bytes column of the same pair.)
func BenchmarkCompileTimePrototype(b *testing.B) { benchmarkCompile(b, bench.Prototype()) }

// --- E6: §7.2 object code size ---

// BenchmarkObjectSize reports total object bytes for both variants as
// custom metrics (the work per iteration is the compile).
func BenchmarkObjectSize(b *testing.B) {
	for _, v := range []bench.Variant{bench.Baseline(), bench.Prototype()} {
		b.Run(v.Name, func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, p := range bench.Programs {
					_, prog, err := bench.Compile(p, v)
					if err != nil {
						b.Fatal(err)
					}
					total += uint64(target.ProgramSize(prog))
				}
			}
			b.ReportMetric(float64(total), "object-bytes")
		})
	}
}

// --- E7: §7.2 run time (Figure 6) ---

// BenchmarkRunTime simulates every benchmark and reports cycles as a
// custom metric per variant; the Δ% between the variants is Figure 6's
// series. Absolute wall time of this benchmark measures the simulator,
// not the generated code — read the cycles metric.
func BenchmarkRunTime(b *testing.B) {
	for _, v := range []bench.Variant{bench.Baseline(), bench.Prototype()} {
		b.Run(v.Name, func(b *testing.B) {
			// Compile once; simulate b.N times.
			type compiled struct {
				name string
				prog *target.Program
				want int32
			}
			var progs []compiled
			for _, p := range bench.Programs {
				_, prog, err := bench.Compile(p, v)
				if err != nil {
					b.Fatal(err)
				}
				progs = append(progs, compiled{p.Name, prog, p.Want})
			}
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = 0
				for _, c := range progs {
					m := target.NewMachine(c.prog)
					ret, err := m.Run(c.prog.FuncByName("main"))
					if err != nil {
						b.Fatalf("%s: %v", c.name, err)
					}
					if int32(uint32(ret)) != c.want {
						b.Fatalf("%s: checksum %d, want %d", c.name, int32(uint32(ret)), c.want)
					}
					cycles += m.Cycles
				}
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// --- E3: §6 validation throughput ---

// BenchmarkValidateO2 measures the translation-validation harness: how
// many exhaustively generated functions per second can be pushed
// through -O2 and the Alive-lite checker (the §6 methodology).
func BenchmarkValidateO2(b *testing.B) {
	sem := core.FreezeOptions()
	pcfg := passes.DefaultFreezeConfig()
	rcfg := refine.DefaultConfig(sem, sem)
	gen := optfuzz.DefaultConfig(1)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.MaxFuncs = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		refuted := 0
		optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
			work := ir.CloneFunc(f)
			m := ir.NewModule()
			m.AddFunc(work)
			passes.O2().Run(m, pcfg)
			if r := refine.Check(f, work, rcfg); r.Status == refine.Refuted {
				refuted++
			}
			return true
		})
		if refuted != 0 {
			b.Fatalf("fixed -O2 was refuted %d times", refuted)
		}
	}
}

// --- E1/E8 micro: interpreter and checker throughput ---

// BenchmarkInterpreter measures the Figure 5 interpreter on a loop.
func BenchmarkInterpreter(b *testing.B) {
	f := ir.MustParseFunc(`define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc1 = add i32 %acc, %i
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}`)
	args := []core.Value{core.VC(ir.I32, 1000)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := core.Exec(f, args, core.ZeroOracle{}, core.FreezeOptions())
		if out.Kind != core.OutRet {
			b.Fatal(out)
		}
	}
}

// BenchmarkRefinementCheck measures one exhaustive i2 refinement check
// (the unit of work behind every validation number in EXPERIMENTS.md).
func BenchmarkRefinementCheck(b *testing.B) {
	src := ir.MustParseFunc(`define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add nsw i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`)
	tgt := ir.MustParseFunc(`define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`)
	cfg := refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := refine.Check(src, tgt, cfg); r.Status != refine.Verified {
			b.Fatal(r)
		}
	}
}

// BenchmarkFrontend measures MinC parsing+lowering alone (part of E4's
// breakdown).
func BenchmarkFrontend(b *testing.B) {
	p := bench.ByName("gcc")
	cfg := minc.Config{FreezeBitfieldLoads: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := minc.CompileString(p.Src, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackend measures SelectionDAG+ISel+regalloc alone.
func BenchmarkBackend(b *testing.B) {
	p := bench.ByName("queens")
	mod, err := minc.CompileString(p.Src, minc.Config{FreezeBitfieldLoads: true})
	if err != nil {
		b.Fatal(err)
	}
	passes.O2().Run(mod, passes.DefaultFreezeConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mi.CompileModule(mod); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of regenerating the full report programmatically.
func ExampleReport() {
	base, _ := bench.MeasureAll(bench.Baseline(), 1)
	_ = base
	fmt.Println("see cmd/tame-bench")
	// Output: see cmd/tame-bench
}

// --- The paper's third benchmark set: large single-file programs ---

// BenchmarkLargeFileCompile compiles a synthetic large single-file
// program (the stand-in for the paper's 7k–754k-line files, §7.1)
// under both variants; compare ns/op across the sub-benchmarks.
func BenchmarkLargeFileCompile(b *testing.B) {
	src := bench.GenerateLargeProgram(400)
	p := bench.Program{Name: "largefile", Suite: "LARGE", Src: src}
	for _, v := range []bench.Variant{bench.Baseline(), bench.Prototype()} {
		b.Run(v.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.Compile(p, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
