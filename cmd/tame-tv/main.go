// tame-tv is the translation validator (Alive-lite): it decides by
// exhaustive enumeration whether one function refines another.
//
// Usage:
//
//	tame-tv [-sem legacy|freeze] src.ll tgt.ll      validate a pair
//	tame-tv [-sem ...] -pass gvn[,p2...] file.ll    run passes, validate
//
// Functions are matched by name. Exit status 1 on any refuted pair.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

func main() {
	sem := flag.String("sem", "freeze", "semantics: legacy or freeze")
	passList := flag.String("pass", "", "run these passes on the input and validate the result")
	unsound := flag.Bool("unsound", false, "use the historical pass variants")
	flag.Parse()

	var opts core.Options
	switch *sem {
	case "freeze":
		opts = core.FreezeOptions()
	case "legacy":
		opts = core.LegacyOptions(core.BranchPoisonNondet)
	default:
		fatal(fmt.Errorf("unknown semantics %q", *sem))
	}
	rcfg := refine.DefaultConfig(opts, opts)

	anyRefuted := false
	report := func(name string, r refine.Result) {
		fmt.Printf("@%s: %s\n", name, r)
		if r.Status == refine.Refuted {
			anyRefuted = true
		}
	}

	if *passList != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("usage: tame-tv -pass p1,p2 file.ll"))
		}
		mod := parse(flag.Arg(0))
		cfg := &passes.Config{Sem: opts, Unsound: *unsound, FreezeAware: true}
		for _, f := range mod.Funcs {
			orig := ir.CloneFunc(f)
			for _, name := range strings.Split(*passList, ",") {
				p := passes.PassByName(strings.TrimSpace(name))
				if p == nil {
					fatal(fmt.Errorf("unknown pass %q", name))
				}
				passes.RunPass(p, f, cfg)
			}
			report(f.Name(), refine.Check(orig, f, rcfg))
		}
	} else {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("usage: tame-tv src.ll tgt.ll"))
		}
		srcMod := parse(flag.Arg(0))
		tgtMod := parse(flag.Arg(1))
		for _, sf := range srcMod.Funcs {
			tf := tgtMod.FuncByName(sf.Name())
			if tf == nil {
				fatal(fmt.Errorf("target module lacks @%s", sf.Name()))
			}
			report(sf.Name(), refine.Check(sf, tf, rcfg))
		}
	}
	if anyRefuted {
		os.Exit(1)
	}
}

func parse(path string) *ir.Module {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	mod, err := ir.ParseModule(string(src))
	if err != nil {
		fatal(err)
	}
	return mod
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-tv:", err)
	os.Exit(1)
}
