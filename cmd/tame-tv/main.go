// tame-tv is the translation validator (Alive-lite): it decides by
// exhaustive enumeration whether one function refines another.
//
// Usage:
//
//	tame-tv [-sem legacy|freeze] src.ll tgt.ll      validate a pair
//	tame-tv [-sem ...] -pass gvn[,p2...] file.ll    run passes, validate
//
// Functions are matched by name and validated on a worker pool
// (-workers 0 = one per CPU, 1 = serial); reports are printed in input
// order regardless of the worker count. Exit status 1 on any refuted
// pair.
//
// -trace writes a Chrome trace-event JSON flight recording (open in
// Perfetto, or inspect with tame-trace): one span per validated pair
// plus the checker's per-phase spans (check/compile,
// check/behaviors_src, check/behaviors_tgt), laid out on one track
// per pool worker.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/parallel"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
	"tameir/internal/telemetry/trace"
)

func main() {
	sem := flag.String("sem", "freeze", "semantics: legacy or freeze")
	passList := flag.String("pass", "", "run these passes on the input and validate the result")
	unsound := flag.Bool("unsound", false, "use the historical pass variants")
	workers := flag.Int("workers", 1, "worker pool size (0 = one per CPU, 1 = serial)")
	interp := flag.Bool("interp", false, "force the tree-walking interpreter instead of the compiled engine")
	tier := flag.String("tier", "", "execution tier: off (interpreter), closure, auto or bytecode (default auto; -interp implies off)")
	metricsPath := flag.String("metrics", "", "write the checker metric snapshot to this file ('-' = text on stdout, *.json = JSON)")
	cacheDir := flag.String("cache-dir", "", "persistent cache directory: warm-start the behaviour-set memo from it and refresh it after the run")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON flight recording to this file (open in Perfetto or tame-trace)")
	flag.Parse()

	// -trace: one track per pool worker; pairs land on track i mod w.
	// The scope needs some registry for its span histograms, but the
	// flight recording is the product here, so a throwaway one does.
	var rec *trace.Recorder
	var checkScope *telemetry.Scope
	if *tracePath != "" {
		rec = trace.NewRecorder(0)
		checkScope = telemetry.NewScope(telemetry.NewRegistry(), "check")
	}

	var opts core.Options
	switch *sem {
	case "freeze":
		opts = core.FreezeOptions()
	case "legacy":
		opts = core.LegacyOptions(core.BranchPoisonNondet)
	default:
		fatal(fmt.Errorf("unknown semantics %q", *sem))
	}
	rcfg := refine.DefaultConfig(opts, opts)
	rcfg.Interpret = *interp
	if *tier != "" {
		policy, off, err := core.ParseTier(*tier)
		if err != nil {
			fatal(err)
		}
		rcfg.Tier = policy
		rcfg.Interpret = rcfg.Interpret || off
	}

	// -cache-dir: share one memo across all pairs, warm-started from
	// the directory's snapshots (stale ones rejected wholesale — a warm
	// run reports exactly what a cold one would) and written back after
	// the reports print. Check creates a private session per call.
	rcfg.CacheDir = *cacheDir
	var disk *refine.DiskCache
	if *cacheDir != "" {
		memo := refine.NewMemo(0)
		rcfg.Memo = memo
		disk = refine.OpenDiskCache(*cacheDir, memo)
		if _, err := disk.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "tame-tv: warning: cache-dir: %v\n", err)
		}
	}

	// check runs one src→tgt validation with worker-private checker
	// state. Each call gets its own oracle (and metric collector) so
	// concurrent checks never share storage; per-pair collectors merge
	// in input order below, the shard-order discipline. When tracing,
	// the whole pair gets a tv/<name> span and the checker's phase
	// spans nest inside it on the same track.
	check := func(src, tgt *ir.Func, met *refine.CheckMetrics, track int) refine.Result {
		cfg := rcfg
		cfg.Oracle = core.NewEnumOracle(cfg.MaxChoices, cfg.MaxFanout)
		cfg.Metrics = met
		if rec != nil {
			cfg.Trace = checkScope.WithTrace(rec, track)
			start := time.Now()
			defer func() { rec.Complete(track, "tv/"+src.Name(), start, time.Since(start)) }()
		}
		return refine.Check(src, tgt, cfg)
	}

	type report struct {
		name string
		res  refine.Result
		met  refine.CheckMetrics
	}

	var reports []report
	if *passList != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("usage: tame-tv -pass p1,p2 file.ll"))
		}
		var ps []passes.Pass
		for _, name := range strings.Split(*passList, ",") {
			p, err := passes.LookupPass(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			ps = append(ps, p)
		}
		mod := parse(flag.Arg(0))
		cfg := &passes.Config{Sem: opts, Unsound: *unsound, FreezeAware: true}
		tracks := nameTracks(rec, *workers, len(mod.Funcs))
		reports = parallel.Map(*workers, len(mod.Funcs), func(i int) report {
			f := mod.Funcs[i]
			// The module is shared across workers: transform a private
			// clone, leave the parsed function untouched.
			work := ir.CloneFunc(f)
			for _, p := range ps {
				passes.RunPass(p, work, cfg)
			}
			var r report
			r.name = f.Name()
			r.res = check(f, work, &r.met, i%tracks)
			return r
		})
	} else {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("usage: tame-tv src.ll tgt.ll"))
		}
		srcMod := parse(flag.Arg(0))
		tgtMod := parse(flag.Arg(1))
		pairs := make([][2]*ir.Func, 0, len(srcMod.Funcs))
		for _, sf := range srcMod.Funcs {
			tf := tgtMod.FuncByName(sf.Name())
			if tf == nil {
				fatal(fmt.Errorf("target module lacks @%s", sf.Name()))
			}
			pairs = append(pairs, [2]*ir.Func{sf, tf})
		}
		tracks := nameTracks(rec, *workers, len(pairs))
		reports = parallel.Map(*workers, len(pairs), func(i int) report {
			var r report
			r.name = pairs[i][0].Name()
			r.res = check(pairs[i][0], pairs[i][1], &r.met, i%tracks)
			return r
		})
	}

	anyRefuted := false
	var met refine.CheckMetrics
	for _, r := range reports {
		fmt.Printf("@%s: %s\n", r.name, r.res)
		if r.res.Status == refine.Refuted {
			anyRefuted = true
		}
		met.Add(&r.met)
	}
	if disk != nil {
		if err := disk.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "tame-tv: warning: cache-dir: %v\n", err)
		}
		ds := disk.Stats()
		fmt.Fprintf(os.Stderr, "tame-tv: cache-dir %s: %d snapshots loaded, %d disk hits, %d stale-rejected\n",
			*cacheDir, ds.Loads, ds.Hits, ds.StaleRejects)
	}
	if *metricsPath != "" {
		// Without -cache-dir no memo is in play and every checker
		// counter is a pure function of the input pair list; with one,
		// the memo split depends on worker interleaving.
		reg := telemetry.NewRegistry()
		class := telemetry.Deterministic
		if disk != nil {
			class = telemetry.Scheduling
		}
		met.Publish(reg, class)
		if disk != nil {
			disk.Stats().Publish(reg, telemetry.Scheduling)
		}
		if err := reg.Snapshot().WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
	}
	if rec != nil {
		if err := writeTrace(*tracePath, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tame-tv: wrote %s (%d events, %d overwritten)\n",
			*tracePath, len(rec.Events()), rec.Dropped())
	}
	if anyRefuted {
		os.Exit(1)
	}
}

// nameTracks labels one trace track per pool worker and returns the
// track count (pairs land on track index mod that count).
func nameTracks(rec *trace.Recorder, workers, n int) int {
	w := parallel.Workers(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	if rec != nil {
		for t := 0; t < w; t++ {
			rec.SetTrackName(t, fmt.Sprintf("worker %d", t))
		}
	}
	return w
}

func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parse(path string) *ir.Module {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	mod, err := ir.ParseModule(string(src))
	if err != nil {
		fatal(err)
	}
	return mod
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-tv:", err)
	os.Exit(1)
}
