// tame-cc compiles MinC source through the full pipeline:
// MinC → IR → optimizer → SelectionDAG → MachineInstr → VX64.
//
// Usage:
//
//	tame-cc [-emit ir|asm] [-O0] [-baseline] [-run] file.c
//
// -emit ir prints the (optimized) IR, -emit asm the VX64 assembly;
// -run additionally executes main() on the simulator and reports the
// result, cycle count and object size. -baseline selects the legacy
// compiler configuration instead of the freeze prototype.
package main

import (
	"flag"
	"fmt"
	"os"

	"tameir/internal/bench"
	"tameir/internal/mi"
	"tameir/internal/minc"
	"tameir/internal/passes"
	"tameir/internal/target"
)

func main() {
	emit := flag.String("emit", "asm", "output kind: ir or asm")
	o0 := flag.Bool("O0", false, "disable the optimizer")
	baseline := flag.Bool("baseline", false, "legacy compiler (no freeze) instead of the prototype")
	run := flag.Bool("run", false, "execute main() on the VX64 simulator")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: tame-cc [flags] file.c"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	variant := bench.Prototype()
	if *baseline {
		variant = bench.Baseline()
	}
	mod, err := minc.CompileString(string(src), variant.MincCfg)
	if err != nil {
		fatal(err)
	}
	if !*o0 {
		passes.O2().Run(mod, variant.PassCfg)
	}
	if *emit == "ir" {
		fmt.Print(mod)
	}
	prog, err := mi.CompileModule(mod)
	if err != nil {
		fatal(err)
	}
	if *emit == "asm" {
		for _, f := range prog.Funcs {
			fmt.Printf("%s:  ; frame %d bytes\n", f.Name, f.FrameSize)
			for bi, blk := range f.Blocks {
				fmt.Printf("L%d:\n", bi)
				for _, in := range blk {
					fmt.Printf("\t%s\n", in)
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "object size: %d bytes\n", target.ProgramSize(prog))
	if *run {
		mainIdx := prog.FuncByName("main")
		if mainIdx < 0 {
			fatal(fmt.Errorf("no main()"))
		}
		m := target.NewMachine(prog)
		ret, err := m.Run(mainIdx)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "main() = %d (%d instructions, %d cycles)\n",
			int32(uint32(ret)), m.Instrs, m.Cycles)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-cc:", err)
	os.Exit(1)
}
