// tame-bench regenerates the paper's evaluation (DESIGN.md's
// per-experiment index):
//
//	-exp validate     E3: §6 translation validation of passes
//	-exp compiletime  E4: §7.2 compile time, baseline vs prototype
//	-exp memory       E5: §7.2 compiler memory
//	-exp codesize     E6: §7.2 object size + freeze fractions
//	-exp runtime      E7: §7.2 run time (Figure 6)
//	-exp ablation     freeze-aware vs freeze-blind optimizations
//	-exp pipeline     E11: parallel fuzz-and-validate throughput
//	-exp exec         E12: execution tiers (interpreter/closures/bytecode) × workers
//	-exp workload     E13: pluggable workloads (exhaustive / mutate / wide8)
//	-exp all          everything
//
// The E11 and E13 rows share one JSON file (-json, conventionally
// BENCH_pipeline.json): whichever of the two experiments run, their
// rows are accumulated and written once at the end.
//
// E4–E7 share one measurement sweep; the report prints all four
// sections when any of them is requested.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tameir/internal/bench"
	"tameir/internal/telemetry"
	"tameir/internal/telemetry/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: validate, compiletime, memory, codesize, runtime, ablation, pipeline, exec, workload, all")
	reps := flag.Int("reps", 3, "compile repetitions for wall-time medians")
	valInstrs := flag.Int("validate-instrs", 2, "instructions per generated function (E3)")
	valMax := flag.Int("validate-max", 3000, "max generated functions per pass (E3)")
	pipeWorkers := flag.String("pipeline-workers", "1,2,4", "comma-separated worker counts (E11)")
	execInstrs := flag.Int("exec-instrs", 3, "instructions per generated function (E12)")
	execMax := flag.Int("exec-max", 300, "max generated functions per semantics (E12)")
	execWorkers := flag.String("workers", "1,2", "comma-separated worker counts for the E12 engine×pool rows")
	execTier := flag.String("tier", "", "highest execution tier to measure in E12: off, closure, auto or bytecode (default bytecode)")
	workloadSeed := flag.Int64("workload-seed", 1, "mutation RNG seed for the E13 workload rows")
	workloadWorkers := flag.Int("workload-workers", 2, "worker count for the E13 workload rows")
	quick := flag.Bool("quick", false, "shrink the exec experiment for CI smoke runs")
	jsonPath := flag.String("json", "", "also write the experiment's rows as JSON to this file (E11, or E12 with -exp exec)")
	metricsPath := flag.String("metrics", "", "write process engine/cache metrics after the experiments ('-' = text on stdout, *.json = JSON)")
	cacheDir := flag.String("cache-dir", "", "persistent cache directory for the E11 warm-start ablation (default: a fresh temp dir, removed afterwards)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON flight recording with one span per experiment (open in Perfetto or tame-trace)")
	flag.Parse()

	// One process registry collects every experiment's telemetry when
	// -metrics is set; the harnesses label their rows so the snapshot
	// stays per-row legible. A nil registry is a no-op sink.
	var reg *telemetry.Registry
	if *metricsPath != "" {
		reg = telemetry.NewRegistry()
	}

	// -trace: a coarse timeline of the run — one bench/<experiment>
	// span per section on a single track, so a long -exp all invocation
	// shows where the wall time went.
	var rec *trace.Recorder
	expScope := func(string) *telemetry.Span { return nil }
	if *tracePath != "" {
		rec = trace.NewRecorder(0)
		rec.SetTrackName(0, "bench")
		sreg := reg
		if sreg == nil {
			sreg = telemetry.NewRegistry()
		}
		scope := telemetry.NewScope(sreg, "bench").WithTrace(rec, 0)
		expScope = func(name string) *telemetry.Span { return scope.Start(name) }
	}

	wantMeasure := false
	wantValidate := false
	wantAblation := false
	wantPipeline := false
	wantExec := false
	wantWorkload := false
	// -exp accepts a comma-separated list (e.g. "pipeline,workload" to
	// regenerate BENCH_pipeline.json with both row families).
	for _, e := range strings.Split(*exp, ",") {
		switch strings.TrimSpace(e) {
		case "all":
			wantMeasure, wantValidate, wantAblation, wantPipeline, wantExec, wantWorkload = true, true, true, true, true, true
		case "validate":
			wantValidate = true
		case "compiletime", "memory", "codesize", "runtime":
			wantMeasure = true
		case "ablation":
			wantAblation = true
		case "pipeline":
			wantPipeline = true
		case "exec":
			wantExec = true
		case "workload":
			wantWorkload = true
		default:
			fmt.Fprintf(os.Stderr, "tame-bench: unknown experiment %q\n", e)
			os.Exit(1)
		}
	}

	if wantValidate {
		sp := expScope("validate")
		fmt.Println("# Section 6 experiment: exhaustive generation + translation validation")
		fixed := bench.Validate(true, *valInstrs, *valMax, reg)
		bench.ReportValidation(os.Stdout, "fixed passes, freeze semantics", fixed)
		fmt.Println()
		legacy := bench.Validate(false, *valInstrs, *valMax, reg)
		bench.ReportValidation(os.Stdout, "historical passes, legacy semantics", legacy)
		fmt.Println()
		sp.End()
	}

	if wantMeasure {
		sp := expScope("measure")
		fmt.Println("# Section 7 experiments: baseline vs freeze prototype")
		base, err := bench.MeasureAll(bench.Baseline(), *reps)
		if err != nil {
			fatal(err)
		}
		proto, err := bench.MeasureAll(bench.Prototype(), *reps)
		if err != nil {
			fatal(err)
		}
		bench.Report(os.Stdout, base, proto)
		sp.End()
	}

	// E11 and E13 rows accumulate here and are written to -json once,
	// after whichever of the two experiments ran.
	var pipeRows []bench.PipelineResult

	if wantPipeline {
		sp := expScope("pipeline")
		fmt.Println("# E11: parallel fuzz-and-validate pipeline throughput")
		var rows []bench.PipelineResult
		// Serial memo-off rows are the baselines the speedups are
		// against: single-pass -O2, then the five-pass §6 campaign
		// where the shared memo skips the repeated source derivations.
		// The -O2 rows come in an uncached/cached analysis pair: the
		// uncached twin reproduces the historical recompute-per-pass
		// optimizer, so the gap is what the analysis manager saves.
		rows = append(rows, bench.MeasurePipeline(true, *valInstrs, *valMax, 1, false, false, false, reg))
		rows = append(rows, bench.MeasurePipeline(true, *valInstrs, *valMax, 1, false, false, true, reg))
		rows = append(rows, bench.MeasurePipeline(true, *valInstrs, *valMax, 1, true, false, true, reg))
		rows = append(rows, bench.MeasurePipeline(true, *valInstrs, *valMax, 1, false, true, true, reg))
		for _, w := range splitInts(*pipeWorkers) {
			rows = append(rows, bench.MeasurePipeline(true, *valInstrs, *valMax, w, true, true, true, reg))
		}
		bench.ReportPipeline(os.Stdout, "fixed passes, -O2, freeze semantics", rows)
		fmt.Println()
		// Ablation pair: the same freeze-dialect campaign with and
		// without the poison-analysis-backed freeze-elim pass.
		fe := bench.MeasureFreezeElim(*valInstrs, *valMax, 1, reg)
		bench.ReportFreezeElim(os.Stdout, fe)
		rows = append(rows, fe...)
		fmt.Println()
		// Cold-vs-warm persistent-cache pair: same campaign, one cache
		// directory, run twice. -cache-dir points it at a durable dir
		// (warm rows then benefit from previous invocations); the
		// default is a throwaway temp dir so the cold row is honest.
		dir := *cacheDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "tame-bench-cache-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		ws, err := bench.MeasureWarmStart(*valInstrs, *valMax, 1, dir, reg)
		if err != nil {
			fatal(fmt.Errorf("warm-start ablation: %w", err))
		}
		bench.ReportWarmStart(os.Stdout, ws)
		rows = append(rows, ws...)
		pipeRows = append(pipeRows, rows...)
		fmt.Println()
		sp.End()
	}

	if wantWorkload {
		sp := expScope("workload")
		fmt.Println("# E13: pluggable workloads (exhaustive / mutate / wide8)")
		instrs, max := *valInstrs, *valMax
		if *quick {
			instrs, max = 2, 200
		}
		rows := bench.MeasureWorkloads(instrs, max, *workloadWorkers, *workloadSeed, reg)
		bench.ReportWorkloads(os.Stdout, rows)
		pipeRows = append(pipeRows, rows...)
		fmt.Println()
		sp.End()
	}

	if (wantPipeline || wantWorkload) && *jsonPath != "" {
		out, err := json.MarshalIndent(pipeRows, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tame-bench: wrote %s\n", *jsonPath)
	}

	if wantExec {
		sp := expScope("exec")
		fmt.Println("# E12: execution tiers (interpreted vs compiled vs bytecode) by worker count")
		instrs, max := *execInstrs, *execMax
		if *quick {
			instrs, max = 2, 60
		}
		engines, err := bench.ExecEnginesForTier(*execTier)
		if err != nil {
			fatal(err)
		}
		rows := bench.MeasureExec(instrs, max, splitInts(*execWorkers), engines)
		bench.ReportExec(os.Stdout, rows)
		for _, r := range rows {
			if !r.TwinOK {
				fatal(fmt.Errorf("exec twin mismatch: %s %s workers=%d row diverges from the interpreted baseline",
					r.Mode, r.Engine, r.Workers))
			}
		}
		if *jsonPath != "" && *exp == "exec" {
			out, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tame-bench: wrote %s\n", *jsonPath)
		}
		fmt.Println()
		sp.End()
	}

	if wantAblation {
		sp := expScope("ablation")
		fmt.Println("\n# Ablation: what the §6 freeze-awareness work buys")
		proto, err := bench.MeasureAll(bench.Prototype(), *reps)
		if err != nil {
			fatal(err)
		}
		blind, err := bench.MeasureAll(bench.FreezeBlindPrototype(), *reps)
		if err != nil {
			fatal(err)
		}
		bench.ReportAblation(os.Stdout, proto, blind)
		sp.End()
	}

	if *metricsPath != "" {
		// The experiments labeled their campaign telemetry into reg as
		// they ran; fold in the process-wide collectors (shared program
		// cache, lowering cache) last — their traffic is scheduling-class
		// because the parallel experiments interleave their compiles.
		bench.PublishProcessMetrics(reg)
		if err := reg.Snapshot().WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
	}

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tame-bench: wrote %s (%d events)\n", *tracePath, len(rec.Events()))
	}
}

func splitInts(s string) []int {
	var out []int
	for _, field := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 0 {
			fatal(fmt.Errorf("bad worker count %q", field))
		}
		out = append(out, n)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-bench:", err)
	os.Exit(1)
}
