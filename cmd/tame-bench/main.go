// tame-bench regenerates the paper's evaluation (DESIGN.md's
// per-experiment index):
//
//	-exp validate     E3: §6 translation validation of passes
//	-exp compiletime  E4: §7.2 compile time, baseline vs prototype
//	-exp memory       E5: §7.2 compiler memory
//	-exp codesize     E6: §7.2 object size + freeze fractions
//	-exp runtime      E7: §7.2 run time (Figure 6)
//	-exp ablation     freeze-aware vs freeze-blind optimizations
//	-exp all          everything
//
// E4–E7 share one measurement sweep; the report prints all four
// sections when any of them is requested.
package main

import (
	"flag"
	"fmt"
	"os"

	"tameir/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: validate, compiletime, memory, codesize, runtime, all")
	reps := flag.Int("reps", 3, "compile repetitions for wall-time medians")
	valInstrs := flag.Int("validate-instrs", 2, "instructions per generated function (E3)")
	valMax := flag.Int("validate-max", 3000, "max generated functions per pass (E3)")
	flag.Parse()

	wantMeasure := false
	wantValidate := false
	wantAblation := false
	switch *exp {
	case "all":
		wantMeasure, wantValidate, wantAblation = true, true, true
	case "validate":
		wantValidate = true
	case "compiletime", "memory", "codesize", "runtime":
		wantMeasure = true
	case "ablation":
		wantAblation = true
	default:
		fmt.Fprintf(os.Stderr, "tame-bench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}

	if wantValidate {
		fmt.Println("# Section 6 experiment: exhaustive generation + translation validation")
		fixed := bench.Validate(true, *valInstrs, *valMax)
		bench.ReportValidation(os.Stdout, "fixed passes, freeze semantics", fixed)
		fmt.Println()
		legacy := bench.Validate(false, *valInstrs, *valMax)
		bench.ReportValidation(os.Stdout, "historical passes, legacy semantics", legacy)
		fmt.Println()
	}

	if wantMeasure {
		fmt.Println("# Section 7 experiments: baseline vs freeze prototype")
		base, err := bench.MeasureAll(bench.Baseline(), *reps)
		if err != nil {
			fatal(err)
		}
		proto, err := bench.MeasureAll(bench.Prototype(), *reps)
		if err != nil {
			fatal(err)
		}
		bench.Report(os.Stdout, base, proto)
	}

	if wantAblation {
		fmt.Println("\n# Ablation: what the §6 freeze-awareness work buys")
		proto, err := bench.MeasureAll(bench.Prototype(), *reps)
		if err != nil {
			fatal(err)
		}
		blind, err := bench.MeasureAll(bench.FreezeBlindPrototype(), *reps)
		if err != nil {
			fatal(err)
		}
		bench.ReportAblation(os.Stdout, proto, blind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-bench:", err)
	os.Exit(1)
}
