// tame-lint runs the static checkers over a module without optimizing
// it: the IR verifier for the chosen dialect, the SSA dominance
// checker, and the flow-sensitive poison dataflow analysis. It reports
// a per-function fact summary and flags every redundant freeze — a
// freeze whose operand the analysis proves never-poison (globally, or
// under a dominating branch guard in the freeze dialect), exactly the
// instructions freeze-elim would delete.
//
// Usage:
//
//	tame-lint [-sem legacy|freeze] [-q] [file]
//
// Exit status 1 on verifier or SSA errors; redundant freezes are
// informational (they are sound, just wasteful).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tameir/internal/analysis"
	"tameir/internal/ir"
)

func main() {
	sem := flag.String("sem", "freeze", "semantics: legacy or freeze")
	quiet := flag.Bool("q", false, "suppress per-function summaries; print only errors and redundant-freeze diagnostics")
	flag.Parse()

	var mode ir.VerifyMode
	var freezeDialect bool
	switch *sem {
	case "freeze":
		mode, freezeDialect = ir.VerifyFreeze, true
	case "legacy":
		mode, freezeDialect = ir.VerifyLegacy, false
	default:
		fatal(fmt.Errorf("unknown semantics %q", *sem))
	}

	var src []byte
	var err error
	name := "<stdin>"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
		src, err = os.ReadFile(name)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	mod, err := ir.ParseModule(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}

	errs := 0
	redundant := 0
	for _, f := range mod.Funcs {
		if err := ir.Verify(f, mode); err != nil {
			fmt.Printf("%s: @%s: verifier: %v\n", name, f.Name(), err)
			errs++
			continue
		}
		if err := analysis.VerifySSA(f); err != nil {
			fmt.Printf("%s: @%s: ssa: %v\n", name, f.Name(), err)
			errs++
			continue
		}

		facts := analysis.AnalyzePoison(f)
		dt := analysis.NewDomTree(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs() {
				if in.Op != ir.OpFreeze {
					continue
				}
				op := in.Arg(0)
				switch {
				case facts.NeverPoison(op):
					fmt.Printf("%s: @%s: %%%s: redundant freeze: operand is never poison\n",
						name, f.Name(), in.Name())
					redundant++
				case freezeDialect && facts.NeverPoisonAt(op, in.Parent(), dt):
					// Branch-on-poison is UB in the freeze dialect, so a
					// dominating guard already proved the operand clean
					// on every execution reaching this block.
					fmt.Printf("%s: @%s: %%%s: redundant freeze: operand is never poison under dominating guard\n",
						name, f.Name(), in.Name())
					redundant++
				}
			}
		}
		if !*quiet {
			never, may := facts.Counts()
			fmt.Printf("%s: @%s: %d never-poison, %d may-poison (%d fixpoint rounds)\n",
				name, f.Name(), never, may, facts.Rounds())
		}
	}

	if !*quiet || errs > 0 || redundant > 0 {
		fmt.Printf("tame-lint: %d functions, %d errors, %d redundant freezes\n",
			len(mod.Funcs), errs, redundant)
	}
	if errs > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-lint:", err)
	os.Exit(1)
}
