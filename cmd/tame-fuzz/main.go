// tame-fuzz generates IR functions like the paper's opt-fuzz: either
// exhaustively (straight-line, small bitwidth) or randomly (with
// control flow), and optionally pushes every candidate through the
// full fuzz-and-validate pipeline (optimize, then check refinement).
//
// Usage:
//
//	tame-fuzz [-mode exhaustive|random] [-instrs N] [-n MAX] [-seed S] [-width W]
//	tame-fuzz -validate [-passes p1,p2|o2] [-sem legacy|freeze] [-unsound]
//	          [-workers N] [-no-memo] [-stats] [-instrs N] [-n MAX] [-width W]
//
// Without -validate each generated function is printed to stdout,
// separated by blank lines — pipe into tame-opt or tame-tv. With
// -validate the campaign runs on a worker pool (-workers 0 = one per
// CPU, 1 = serial) and reports findings plus throughput; the findings
// are byte-identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

func main() {
	mode := flag.String("mode", "exhaustive", "exhaustive or random")
	instrs := flag.Int("instrs", 2, "instructions per function (exhaustive mode)")
	n := flag.Int("n", 100, "maximum number of functions (0 = unbounded)")
	seed := flag.Int64("seed", 1, "random seed (random mode)")
	width := flag.Uint("width", 2, "integer bitwidth")
	validate := flag.Bool("validate", false, "optimize and refinement-check every function")
	passList := flag.String("passes", "o2", "comma-separated passes to validate, or o2")
	sem := flag.String("sem", "freeze", "semantics: legacy or freeze")
	unsound := flag.Bool("unsound", false, "use the historical (buggy) pass variants")
	workers := flag.Int("workers", 1, "worker pool size (0 = one per CPU, 1 = serial)")
	noMemo := flag.Bool("no-memo", false, "disable the behaviour-set memo cache")
	optStats := flag.Bool("stats", false, "report per-pass change counts and timing after a -validate run")
	flag.Parse()

	if *validate {
		runCampaign(*instrs, *n, *width, *passList, *sem, *unsound, *workers, *noMemo, *optStats)
		return
	}

	switch *mode {
	case "exhaustive":
		cfg := optfuzz.DefaultConfig(*instrs)
		cfg.Width = *width
		cfg.MaxFuncs = *n
		count, truncated := optfuzz.Exhaustive(cfg, func(f *ir.Func) bool {
			fmt.Println(f)
			return true
		})
		fmt.Fprintf(os.Stderr, "tame-fuzz: %d functions (truncated=%v)\n", count, truncated)
	case "random":
		rng := rand.New(rand.NewSource(*seed))
		rcfg := optfuzz.DefaultRandomConfig()
		rcfg.Width = *width
		for i := 0; i < *n; i++ {
			fmt.Println(optfuzz.Random(rng, rcfg))
		}
	default:
		fmt.Fprintf(os.Stderr, "tame-fuzz: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

func runCampaign(instrs, n int, width uint, passList, sem string, unsound bool, workers int, noMemo, optStats bool) {
	var opts core.Options
	pcfg := &passes.Config{}
	switch sem {
	case "freeze":
		opts = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
	case "legacy":
		opts = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		pcfg.Unsound = false
	default:
		fatal(fmt.Errorf("unknown semantics %q", sem))
	}
	pcfg.Unsound = unsound

	pm := passes.O2()
	if passList != "o2" && passList != "" {
		var names []string
		for _, name := range strings.Split(passList, ",") {
			names = append(names, strings.TrimSpace(name))
		}
		var err error
		pm, err = passes.NewPassManager(names...)
		if err != nil {
			fatal(err)
		}
	}
	pm.Instrument()

	gen := optfuzz.DefaultConfig(instrs)
	gen.Width = width
	gen.MaxFuncs = n
	if opts.Mode == core.Freeze {
		// Undef is not part of the freeze dialect.
		gen.AllowUndef = false
		gen.AllowPoison = true
	}

	memoEntries := 0
	if noMemo {
		memoEntries = -1
	}
	c := optfuzz.Campaign{
		Gen:         gen,
		Refine:      refine.DefaultConfig(opts, opts),
		Pipeline:    pm,
		PipelineCfg: pcfg,
		Workers:     workers,
		MemoEntries: memoEntries,
	}
	start := time.Now()
	st := c.Run()
	elapsed := time.Since(start)

	for _, f := range st.Findings {
		fmt.Printf("REFUTED shard=%d index=%d changed-by=%s\n%s\n→\n%s\n%s\n\n",
			f.Shard, f.Index, strings.Join(f.ChangedBy, ","), f.Src, f.Tgt, f.Result)
	}
	perSec := float64(st.Funcs) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr,
		"tame-fuzz: %d funcs validated in %s (%.0f funcs/sec, workers=%d): %d verified, %d refuted, %d inconclusive; memo %d/%d hits (%.1f%%)\n",
		st.Funcs, elapsed.Round(time.Millisecond), perSec, workers,
		st.Verified, st.Refuted, st.Inconclusive,
		st.MemoHits, st.MemoLookups, 100*st.HitRate())
	if optStats && !noMemo {
		// The memo is shared across all worker shards, so the hit rate
		// above includes cross-shard hits: one worker's derivation
		// serves every other worker's structurally identical candidate.
		fmt.Fprintf(os.Stderr,
			"tame-fuzz: shared memo across %d workers: %d sets resident, %d evictions (second-chance clock)\n",
			workers, st.MemoSets, st.MemoEvictions)
	}
	if optStats && st.Opt != nil {
		st.Opt.ReportTime(os.Stderr)
		st.Opt.Report(os.Stderr)
	}
	if st.Refuted > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-fuzz:", err)
	os.Exit(1)
}
