// tame-fuzz generates IR functions like the paper's opt-fuzz: either
// exhaustively (straight-line, small bitwidth) or randomly (with
// control flow), and optionally pushes every candidate through the
// full fuzz-and-validate pipeline (optimize, then check refinement).
//
// Usage:
//
//	tame-fuzz [-mode exhaustive|random] [-instrs N] [-n MAX] [-seed S] [-width W]
//	tame-fuzz -validate [-source exhaustive|mutate|wide] [-passes p1,p2|o2]
//	          [-sem legacy|freeze] [-unsound] [-verify-each]
//	          [-workers N] [-no-memo] [-stats] [-instrs N] [-n MAX]
//	          [-width W] [-seed S] [-epochs N] [-corpus FILE] [-reduce]
//	          [-trace-phases]
//	tame-fuzz -poison-oracle [-sem legacy|freeze] [-workers N]
//	          [-instrs N] [-n MAX] [-width W] [-metrics file|-]
//
// Without -validate each generated function is printed to stdout,
// separated by blank lines — pipe into tame-opt or tame-tv. With
// -validate the campaign runs on a worker pool (-workers 0 = one per
// CPU, 1 = serial) and reports findings plus throughput; the findings
// are byte-identical for every worker count. -verify-each additionally
// runs the full checker battery (IR verifier, SSA dominance, analysis
// cache coherence) between every pass step of the campaign pipeline.
//
// -source selects the candidate workload:
//
//	exhaustive   every function in the small space, in order (default)
//	mutate       coverage-guided CFG mutation fuzzing seeded from the
//	             exhaustive prefix (and -corpus, if the file exists);
//	             -seed fixes the RNG, -epochs the generation count, and
//	             the final corpus is written back to -corpus
//	wide         a deterministic stride sample of the i8/i16 space
//	             (-width selects 8 or 16) with the exhaustive-input
//	             cutoff raised so verdicts still close
//
// -reduce pushes every finding through the automatic reducer: a
// greedy, deterministic shrink loop that deletes instructions, drops
// branch arms and zeroes operands while re-checking the refinement
// verdict after every step. -trace-phases adds per-shard and
// per-check-phase telemetry spans to the -metrics snapshot (off by
// default; spans measure wall time, so they are scheduling-dependent).
//
// With -poison-oracle the same exhaustive function space is swept by
// the poison-analysis soundness oracle instead: every value the
// flow-sensitive dataflow claims NeverPoison is cross-checked against
// concrete enumeration of input tuples and nondeterministic
// resolutions. Any violation is printed and the exit status is 1.
//
// Observability flags (with -validate):
//
//	-metrics <file|->   write the campaign's metric snapshot: "-" is
//	                    the Prometheus-style text exposition on stdout,
//	                    *.json the JSON snapshot, else text to the file
//	-progress           live progress line on stderr; findings stream
//	                    to stdout the moment their shard's turn comes,
//	                    instead of being buffered until the end
//	-debug-addr ADDR    serve /metrics, /metrics.json, /metrics/history
//	                    and /debug/pprof on ADDR while the run lasts
//	                    (plus /debug/trace when -trace is set)
//	-trace FILE         record the campaign into the flight recorder
//	                    and write a Chrome trace-event JSON timeline to
//	                    FILE — load it in Perfetto or chrome://tracing,
//	                    or feed it to tame-trace summarize/diff/-assert
//	-stall-deadline D   arm the stall watchdog: a shard silent for
//	                    longer than D dumps goroutine stacks and an
//	                    emergency trace snapshot instead of hanging
//	-cache-dir DIR      warm-start from DIR's persistent snapshots
//	                    (behaviour-set memo + lowering metadata) and
//	                    refresh them after the run; stale snapshots are
//	                    rejected wholesale, so findings are always
//	                    byte-identical to a cold run
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
	"tameir/internal/telemetry/trace"
)

func main() {
	mode := flag.String("mode", "exhaustive", "exhaustive or random")
	instrs := flag.Int("instrs", 2, "instructions per function (exhaustive mode)")
	n := flag.Int("n", 100, "maximum number of functions (0 = unbounded)")
	seed := flag.Int64("seed", 1, "RNG seed (random mode and -source mutate)")
	width := flag.Uint("width", 2, "integer bitwidth")
	validate := flag.Bool("validate", false, "optimize and refinement-check every function")
	passList := flag.String("passes", "o2", "comma-separated passes to validate, or o2")
	sem := flag.String("sem", "freeze", "semantics: legacy or freeze")
	unsound := flag.Bool("unsound", false, "use the historical (buggy) pass variants")
	verifyEach := flag.Bool("verify-each", false, "run the full checker battery after every pass step of the campaign pipeline")
	poisonOracle := flag.Bool("poison-oracle", false, "cross-check every NeverPoison claim of the dataflow analysis against concrete enumeration")
	workers := flag.Int("workers", 1, "worker pool size (0 = one per CPU, 1 = serial)")
	noMemo := flag.Bool("no-memo", false, "disable the behaviour-set memo cache")
	optStats := flag.Bool("stats", false, "report per-pass change counts and timing after a -validate run")
	metricsPath := flag.String("metrics", "", "write the metric snapshot to this file ('-' = text on stdout, *.json = JSON)")
	progress := flag.Bool("progress", false, "live progress line on stderr; stream findings as they are confirmed")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address during the run")
	debugSnapEvery := flag.Duration("debug-snapshot-interval", 0, "debug-server history snapshot interval (0 = 5s default)")
	debugSnapRing := flag.Int("debug-snapshot-ring", 0, "debug-server history ring depth (0 = default)")
	tier := flag.String("tier", "", "execution tier for -validate: off (interpreter), closure, auto or bytecode (default auto)")
	cacheDir := flag.String("cache-dir", "", "persistent cache directory for -validate warm starts (loaded before, refreshed after the run)")
	source := flag.String("source", "exhaustive", "candidate workload for -validate: exhaustive, mutate or wide")
	epochs := flag.Int("epochs", 0, "mutation epochs for -source mutate (0 = default)")
	corpus := flag.String("corpus", "", "corpus file for -source mutate: seeds loaded before the run (if present), final corpus written after")
	reduce := flag.Bool("reduce", false, "shrink every finding with the automatic reducer before reporting it")
	tracePhases := flag.Bool("trace-phases", false, "record per-shard and per-check-phase telemetry spans (wall-clock; scheduling-dependent)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the -validate run to this file")
	traceBuf := flag.Int("trace-buf", 0, "flight-recorder capacity in events (0 = default 64Ki; oldest events are overwritten)")
	stallDeadline := flag.Duration("stall-deadline", 0, "watchdog deadline: a shard silent this long dumps goroutine stacks and a trace snapshot (0 = off)")
	stallSnapshot := flag.String("stall-snapshot", "", "emergency trace snapshot path for the watchdog (default <trace>.stall.json when -trace is set)")
	flag.Parse()

	if *poisonOracle {
		runPoisonOracle(poisonOracleFlags{
			instrs: *instrs, n: *n, width: *width, sem: *sem,
			workers: *workers, metricsPath: *metricsPath,
		})
		return
	}
	if *validate {
		runCampaign(campaignFlags{
			instrs: *instrs, n: *n, width: *width,
			passList: *passList, sem: *sem, unsound: *unsound,
			verifyEach: *verifyEach,
			workers:    *workers, noMemo: *noMemo, optStats: *optStats,
			metricsPath: *metricsPath, progress: *progress, debugAddr: *debugAddr,
			debugSnapEvery: *debugSnapEvery, debugSnapRing: *debugSnapRing,
			tier: *tier, cacheDir: *cacheDir,
			source: *source, seed: *seed, epochs: *epochs, corpus: *corpus,
			reduce: *reduce, tracePhases: *tracePhases,
			tracePath: *tracePath, traceBuf: *traceBuf,
			stallDeadline: *stallDeadline, stallSnapshot: *stallSnapshot,
		})
		return
	}

	switch *mode {
	case "exhaustive":
		cfg := optfuzz.DefaultConfig(*instrs)
		cfg.Width = *width
		cfg.MaxFuncs = *n
		count, truncated := optfuzz.Exhaustive(cfg, func(f *ir.Func) bool {
			fmt.Println(f)
			return true
		})
		fmt.Fprintf(os.Stderr, "tame-fuzz: %d functions (truncated=%v)\n", count, truncated)
	case "random":
		rng := rand.New(rand.NewSource(*seed))
		rcfg := optfuzz.DefaultRandomConfig()
		rcfg.Width = *width
		for i := 0; i < *n; i++ {
			fmt.Println(optfuzz.Random(rng, rcfg))
		}
	default:
		fmt.Fprintf(os.Stderr, "tame-fuzz: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

type campaignFlags struct {
	instrs, n        int
	width            uint
	passList, sem    string
	unsound          bool
	verifyEach       bool
	workers          int
	noMemo, optStats bool
	metricsPath      string
	progress         bool
	debugAddr        string
	debugSnapEvery   time.Duration
	debugSnapRing    int
	tier             string
	cacheDir         string
	source           string
	seed             int64
	epochs           int
	corpus           string
	reduce           bool
	tracePhases      bool
	tracePath        string
	traceBuf         int
	stallDeadline    time.Duration
	stallSnapshot    string
}

func runCampaign(fl campaignFlags) {
	var opts core.Options
	pcfg := &passes.Config{}
	switch fl.sem {
	case "freeze":
		opts = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
	case "legacy":
		opts = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		pcfg.Unsound = false
	default:
		fatal(fmt.Errorf("unknown semantics %q", fl.sem))
	}
	pcfg.Unsound = fl.unsound

	pm := passes.O2()
	if fl.passList != "o2" && fl.passList != "" {
		var names []string
		for _, name := range strings.Split(fl.passList, ",") {
			names = append(names, strings.TrimSpace(name))
		}
		var err error
		pm, err = passes.NewPassManager(names...)
		if err != nil {
			fatal(err)
		}
	}
	pm.Instrument()
	// Clone preserves VerifyEach, so every per-shard pipeline copy runs
	// the battery too.
	pm.VerifyEach = fl.verifyEach

	gen := optfuzz.DefaultConfig(fl.instrs)
	gen.Width = fl.width
	gen.MaxFuncs = fl.n
	if opts.Mode == core.Freeze {
		// Undef is not part of the freeze dialect.
		gen.AllowUndef = false
		gen.AllowPoison = true
	}

	memoEntries := 0
	if fl.noMemo {
		memoEntries = -1
	}
	rcfg := refine.DefaultConfig(opts, opts)
	if fl.tier != "" {
		policy, off, err := core.ParseTier(fl.tier)
		if err != nil {
			fatal(err)
		}
		rcfg.Tier = policy
		rcfg.Interpret = off
	}
	verifyMode := ir.VerifyFreeze
	if opts.Mode == core.Legacy {
		verifyMode = ir.VerifyLegacy
	}
	var src optfuzz.Source
	var msrc *optfuzz.MutationSource
	switch fl.source {
	case "", "exhaustive":
		// nil Source: the campaign builds the exhaustive stream from Gen.
	case "mutate":
		mcfg := optfuzz.DefaultMutationConfig(fl.seed)
		mcfg.Gen = gen
		mcfg.Mode = verifyMode
		if fl.epochs > 0 {
			mcfg.Epochs = fl.epochs
		}
		if fl.n > 0 {
			// -n bounds mutants per epoch here, not the whole run.
			mcfg.PerEpoch = fl.n
		}
		if fl.corpus != "" {
			seeds, err := optfuzz.LoadCorpus(fl.corpus)
			switch {
			case err == nil:
				mcfg.Seeds = seeds
				fmt.Fprintf(os.Stderr, "tame-fuzz: corpus: %d seed functions loaded from %s\n", len(seeds), fl.corpus)
			case !os.IsNotExist(err):
				fatal(err)
			}
		}
		msrc = optfuzz.NewMutationSource(mcfg)
		src = msrc
	case "wide":
		if fl.width != 8 && fl.width != 16 {
			fatal(fmt.Errorf("-source wide needs -width 8 or 16, got %d", fl.width))
		}
		rcfg.ExhaustiveInputBits = fl.width
		if fl.width == 16 && rcfg.MaxInputs < 1<<17 {
			// A single i16 parameter contributes 2^16 concrete values
			// plus the special values; leave headroom so verdicts still
			// close exhaustively instead of degrading to sampling.
			rcfg.MaxInputs = 1 << 17
		}
		src = optfuzz.NewWideSource(optfuzz.WideConfig{
			Width:       fl.width,
			NumInstrs:   fl.instrs,
			MaxFuncs:    fl.n,
			AllowPoison: true,
		})
	default:
		fatal(fmt.Errorf("unknown source %q (want exhaustive, mutate or wide)", fl.source))
	}
	srcName := "exhaustive"
	if src != nil {
		srcName = src.Name()
	}

	c := optfuzz.Campaign{
		Gen:         gen,
		Source:      src,
		Refine:      rcfg,
		Pipeline:    pm,
		PipelineCfg: pcfg,
		Workers:     fl.workers,
		MemoEntries: memoEntries,
		CacheDir:    fl.cacheDir,
		Reduce:      fl.reduce,
		TracePhases: fl.tracePhases,
		Seed:        fl.seed,
	}

	var rec *trace.Recorder
	if fl.tracePath != "" {
		rec = trace.NewRecorder(fl.traceBuf)
		c.Trace = rec
		if fl.stallSnapshot == "" {
			fl.stallSnapshot = fl.tracePath + ".stall.json"
		}
	}
	if fl.stallDeadline > 0 {
		c.StallDeadline = fl.stallDeadline
		c.StallSnapshot = fl.stallSnapshot
	}

	var reg *telemetry.Registry
	if fl.metricsPath != "" || fl.debugAddr != "" {
		reg = telemetry.NewRegistry()
		c.Telemetry = reg
	}
	if fl.debugAddr != "" {
		ds, err := telemetry.StartDebugServer(fl.debugAddr, reg, fl.debugSnapEvery, fl.debugSnapRing, rec)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		endpoints := "/metrics, /metrics.json, /metrics/history, /debug/pprof"
		if rec != nil {
			endpoints += ", /debug/trace"
		}
		fmt.Fprintf(os.Stderr, "tame-fuzz: debug server on http://%s (%s)\n", ds.Addr, endpoints)
	}

	// With -progress, findings stream to stdout in deterministic order
	// the moment every earlier shard has finished — the report-early
	// path — and a live line tracks throughput on stderr.
	var pl *telemetry.ProgressLine
	var outMu sync.Mutex // serializes the live line against streamed findings
	streamDone := make(chan struct{})
	if fl.progress {
		pl = telemetry.NewProgressLine(os.Stderr, 0)
		ch := make(chan optfuzz.Finding, 16)
		c.Stream = ch
		go func() {
			defer close(streamDone)
			for f := range ch {
				// Clear the live progress line first: when stdout and
				// stderr share a terminal, printing a finding under an
				// active \r-line garbles both. The lock keeps a progress
				// repaint from racing into the middle of the finding.
				outMu.Lock()
				pl.Clear()
				printFinding(f, srcName, fl.seed)
				outMu.Unlock()
			}
		}()
		start := time.Now()
		c.Progress = func(p optfuzz.CampaignProgress) {
			rate := float64(p.Funcs) / time.Since(start).Seconds()
			outMu.Lock()
			pl.Update("tame-fuzz: %d/%d shards  %d funcs  %d refuted  %.0f funcs/sec",
				p.ShardsDone, p.Shards, p.Funcs, p.Refuted, rate)
			outMu.Unlock()
		}
	} else {
		close(streamDone)
	}

	// The campaign header carries the effective RNG seed so a finding
	// can always be replayed; it deliberately omits the worker count,
	// which never changes the stream (the CI determinism gate cmps
	// stdout across worker counts). `-metrics -` reserves stdout for
	// the metric exposition, so the header yields to stderr there.
	headerOut := os.Stdout
	if fl.metricsPath == "-" {
		headerOut = os.Stderr
	}
	fmt.Fprintf(headerOut, "campaign: source=%s seed=%d sem=%s passes=%s\n", srcName, fl.seed, fl.sem, fl.passList)

	start := time.Now()
	st := c.Run()
	elapsed := time.Since(start)
	<-streamDone
	pl.Finish()

	for _, f := range st.Findings {
		printFinding(f, srcName, fl.seed)
	}
	perSec := float64(st.Funcs) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr,
		"tame-fuzz: %d funcs validated in %s (%.0f funcs/sec, workers=%d): %d verified, %d refuted, %d inconclusive; memo %d/%d hits (%.1f%%)\n",
		st.Funcs, elapsed.Round(time.Millisecond), perSec, fl.workers,
		st.Verified, st.Refuted, st.Inconclusive,
		st.MemoHits, st.MemoLookups, 100*st.HitRate())
	if st.Epochs > 1 {
		fmt.Fprintf(os.Stderr, "tame-fuzz: %d epochs, corpus %d functions, %d coverage keys\n",
			st.Epochs, st.CorpusSize, st.CoverageKeys)
	}
	if fl.reduce {
		fmt.Fprintf(os.Stderr, "tame-fuzz: reducer: %d findings shrunk in %d steps (%d attempts, %d instructions removed)\n",
			st.ReducedFindings, st.ReduceSteps, st.ReduceAttempts, st.ReduceRemovedInstrs)
	}
	if msrc != nil && fl.corpus != "" {
		if err := optfuzz.SaveCorpus(fl.corpus, msrc.Corpus()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tame-fuzz: corpus: %d functions written to %s\n", len(msrc.Corpus()), fl.corpus)
	}
	if fl.cacheDir != "" {
		fmt.Fprintf(os.Stderr,
			"tame-fuzz: cache-dir %s: %d snapshots loaded, %d disk hits, %d stale-rejected\n",
			fl.cacheDir, st.DiskLoads, st.DiskHits, st.DiskStaleRejects)
		if st.DiskErr != nil {
			fmt.Fprintf(os.Stderr, "tame-fuzz: warning: cache-dir: %v\n", st.DiskErr)
		}
	}
	if fl.optStats && !fl.noMemo {
		// The memo is shared across all worker shards, so the hit rate
		// above includes cross-shard hits: one worker's derivation
		// serves every other worker's structurally identical candidate.
		fmt.Fprintf(os.Stderr,
			"tame-fuzz: shared memo across %d workers: %d sets resident, %d evictions (second-chance clock)\n",
			fl.workers, st.MemoSets, st.MemoEvictions)
	}
	if fl.optStats {
		st.Opt.Emit(os.Stderr, true, true)
	}
	if fl.tracePath != "" {
		if err := writeTrace(fl.tracePath, rec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tame-fuzz: trace: %d events written to %s (%d overwritten by ring wrap)\n",
			len(rec.Events()), fl.tracePath, rec.Dropped())
	}
	if fl.metricsPath != "" {
		if err := reg.Snapshot().WriteFile(fl.metricsPath); err != nil {
			fatal(err)
		}
	}
	if st.Refuted > 0 {
		os.Exit(1)
	}
}

// writeTrace dumps the flight recorder as Chrome trace-event JSON.
func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type poisonOracleFlags struct {
	instrs, n   int
	width       uint
	sem         string
	workers     int
	metricsPath string
}

// runPoisonOracle sweeps the exhaustive function space checking every
// static NeverPoison claim against concrete enumeration — the campaign
// soundness oracle for the dataflow analysis itself, independent of any
// optimization pipeline.
func runPoisonOracle(fl poisonOracleFlags) {
	var opts core.Options
	switch fl.sem {
	case "freeze":
		opts = core.FreezeOptions()
	case "legacy":
		opts = core.LegacyOptions(core.BranchPoisonNondet)
	default:
		fatal(fmt.Errorf("unknown semantics %q", fl.sem))
	}

	gen := optfuzz.DefaultConfig(fl.instrs)
	gen.Width = fl.width
	gen.MaxFuncs = fl.n
	if opts.Mode == core.Freeze {
		// Undef is not part of the freeze dialect.
		gen.AllowUndef = false
		gen.AllowPoison = true
	}

	po := optfuzz.PoisonOracle{Gen: gen, Sem: opts, Workers: fl.workers}
	var reg *telemetry.Registry
	if fl.metricsPath != "" {
		reg = telemetry.NewRegistry()
		po.Telemetry = reg
	}

	start := time.Now()
	st := po.Run()
	elapsed := time.Since(start)

	for _, v := range st.Violations {
		fmt.Println(v)
	}
	fmt.Fprintf(os.Stderr,
		"tame-fuzz: poison oracle: %d funcs, %d never-poison claims, %d execs in %s (workers=%d, %d incomplete sweeps): %d violations\n",
		st.Funcs, st.Claims, st.Execs, elapsed.Round(time.Millisecond),
		fl.workers, st.Incomplete, len(st.Violations))
	if fl.metricsPath != "" {
		if err := reg.Snapshot().WriteFile(fl.metricsPath); err != nil {
			fatal(err)
		}
	}
	if len(st.Violations) > 0 {
		os.Exit(1)
	}
}

func printFinding(f optfuzz.Finding, source string, seed int64) {
	reduced := ""
	if f.ReduceSteps > 0 {
		reduced = fmt.Sprintf(" reduce-steps=%d", f.ReduceSteps)
	}
	fmt.Printf("REFUTED source=%s seed=%d epoch=%d shard=%d index=%d changed-by=%s%s\n%s\n→\n%s\n%s\n\n",
		source, seed, f.Epoch, f.Shard, f.Index,
		strings.Join(f.ChangedBy, ","), reduced, f.Src, f.Tgt, f.Result)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-fuzz:", err)
	os.Exit(1)
}
