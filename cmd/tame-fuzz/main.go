// tame-fuzz generates IR functions like the paper's opt-fuzz: either
// exhaustively (straight-line, small bitwidth) or randomly (with
// control flow).
//
// Usage:
//
//	tame-fuzz [-mode exhaustive|random] [-instrs N] [-n MAX] [-seed S] [-width W]
//
// Each generated function is printed to stdout, separated by blank
// lines — pipe into tame-opt or tame-tv.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"tameir/internal/ir"
	"tameir/internal/optfuzz"
)

func main() {
	mode := flag.String("mode", "exhaustive", "exhaustive or random")
	instrs := flag.Int("instrs", 2, "instructions per function (exhaustive mode)")
	n := flag.Int("n", 100, "maximum number of functions")
	seed := flag.Int64("seed", 1, "random seed (random mode)")
	width := flag.Uint("width", 2, "integer bitwidth")
	flag.Parse()

	switch *mode {
	case "exhaustive":
		cfg := optfuzz.DefaultConfig(*instrs)
		cfg.Width = *width
		cfg.MaxFuncs = *n
		count, truncated := optfuzz.Exhaustive(cfg, func(f *ir.Func) bool {
			fmt.Println(f)
			return true
		})
		fmt.Fprintf(os.Stderr, "tame-fuzz: %d functions (truncated=%v)\n", count, truncated)
	case "random":
		rng := rand.New(rand.NewSource(*seed))
		rcfg := optfuzz.DefaultRandomConfig()
		rcfg.Width = *width
		for i := 0; i < *n; i++ {
			fmt.Println(optfuzz.Random(rng, rcfg))
		}
	default:
		fmt.Fprintf(os.Stderr, "tame-fuzz: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}
