// tame-opt runs optimizer passes over textual IR, like LLVM's opt.
//
// Usage:
//
//	tame-opt [-sem legacy|freeze] [-passes p1,p2,...|O2] [-unsound]
//	         [-verify-each] [-time-passes] [-stats] [-print-changed] [file]
//
// Reads the module from file (or stdin), runs the passes, prints the
// transformed module. -passes O2 runs the standard pipeline to fixed
// point; an explicit list runs each pass once, in order. Instrumentation
// (-time-passes, -stats, -print-changed) goes to stderr so the IR on
// stdout stays pipeable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
)

func main() {
	sem := flag.String("sem", "freeze", "semantics: legacy or freeze")
	passList := flag.String("passes", "O2", "comma-separated pass names, or O2")
	unsound := flag.Bool("unsound", false, "use the historical (pre-paper) pass variants")
	verify := flag.Bool("verify", true, "verify IR after every pass")
	verifyEach := flag.Bool("verify-each", false, "run the full checker battery after every pass: IR verifier, SSA dominance, analysis cache coherence")
	timePasses := flag.Bool("time-passes", false, "report per-pass wall time to stderr")
	stats := flag.Bool("stats", false, "report per-pass change counts and analysis-cache counters to stderr")
	printChanged := flag.Bool("print-changed", false, "dump IR to stderr after every pass that changed it")
	metricsPath := flag.String("metrics", "", "write the pass-manager metric snapshot to this file ('-' = text on stdout, *.json = JSON)")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	mod, err := ir.ParseModule(string(src))
	if err != nil {
		fatal(err)
	}

	cfg := &passes.Config{Unsound: *unsound, VerifyAfterEach: *verify, FreezeAware: true}
	switch *sem {
	case "freeze":
		cfg.Sem = core.FreezeOptions()
	case "legacy":
		cfg.Sem = core.LegacyOptions(core.BranchPoisonNondet)
	default:
		fatal(fmt.Errorf("unknown semantics %q", *sem))
	}
	if err := ir.VerifyModule(mod, verifyMode(cfg)); err != nil {
		fatal(err)
	}

	var pm *passes.PassManager
	fixpoint := *passList == "O2"
	if fixpoint {
		pm = passes.O2()
	} else {
		var names []string
		for _, name := range strings.Split(*passList, ",") {
			names = append(names, strings.TrimSpace(name))
		}
		pm, err = passes.NewPassManager(names...)
		if err != nil {
			fatal(err)
		}
	}
	pm.VerifyEach = *verifyEach
	if *timePasses || *stats || *metricsPath != "" || *verifyEach {
		// -verify-each instruments too, so the checks/failures counters
		// land in the snapshot even without -stats.
		pm.Instrument()
	}
	if *printChanged {
		pm.PrintChanged = os.Stderr
	}

	if fixpoint {
		pm.Run(mod, cfg)
	} else {
		// An explicit list keeps the historical single-sweep,
		// pass-major semantics: every function sees pass k before any
		// function sees pass k+1.
		pm.RunOnce(mod, cfg)
	}
	fmt.Print(mod)
	pm.Stats.Emit(os.Stderr, *timePasses, *stats)
	if *metricsPath != "" {
		if err := pm.Stats.Registry().Snapshot().WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
	}
}

func verifyMode(cfg *passes.Config) ir.VerifyMode {
	if cfg.Sem.Mode == core.Freeze {
		return ir.VerifyFreeze
	}
	return ir.VerifyLegacy
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-opt:", err)
	os.Exit(1)
}
