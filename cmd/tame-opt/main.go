// tame-opt runs optimizer passes over textual IR, like LLVM's opt.
//
// Usage:
//
//	tame-opt [-sem legacy|freeze] [-passes p1,p2,...|O2] [-unsound] [file]
//
// Reads the module from file (or stdin), runs the passes, prints the
// transformed module.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
)

func main() {
	sem := flag.String("sem", "freeze", "semantics: legacy or freeze")
	passList := flag.String("passes", "O2", "comma-separated pass names, or O2")
	unsound := flag.Bool("unsound", false, "use the historical (pre-paper) pass variants")
	verify := flag.Bool("verify", true, "verify IR after every pass")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	mod, err := ir.ParseModule(string(src))
	if err != nil {
		fatal(err)
	}

	cfg := &passes.Config{Unsound: *unsound, VerifyAfterEach: *verify, FreezeAware: true}
	switch *sem {
	case "freeze":
		cfg.Sem = core.FreezeOptions()
	case "legacy":
		cfg.Sem = core.LegacyOptions(core.BranchPoisonNondet)
	default:
		fatal(fmt.Errorf("unknown semantics %q", *sem))
	}
	if err := ir.VerifyModule(mod, verifyMode(cfg)); err != nil {
		fatal(err)
	}

	if *passList == "O2" {
		passes.O2().Run(mod, cfg)
	} else {
		for _, name := range strings.Split(*passList, ",") {
			p := passes.PassByName(strings.TrimSpace(name))
			if p == nil {
				fatal(fmt.Errorf("unknown pass %q", name))
			}
			for _, f := range mod.Funcs {
				passes.RunPass(p, f, cfg)
			}
		}
	}
	fmt.Print(mod)
}

func verifyMode(cfg *passes.Config) ir.VerifyMode {
	if cfg.Sem.Mode == core.Freeze {
		return ir.VerifyFreeze
	}
	return ir.VerifyLegacy
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-opt:", err)
	os.Exit(1)
}
