// tame-run interprets textual IR under either undefined-behavior
// semantics.
//
// Usage:
//
//	tame-run [-sem legacy|freeze] [-fn main] [-seed N] [-enumerate] file [args...]
//
// Arguments are decimal integers (or the words "poison"/"undef") bound
// to the function's parameters. With -enumerate, all resolutions of
// nondeterminism are explored and the behaviour set is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
)

func main() {
	sem := flag.String("sem", "freeze", "semantics: legacy or freeze")
	fnName := flag.String("fn", "main", "function to run")
	seed := flag.Int64("seed", 0, "oracle seed for randomized nondeterminism")
	enumerate := flag.Bool("enumerate", false, "enumerate all behaviours (small types only)")
	trace := flag.Bool("trace", false, "print every executed instruction")
	interp := flag.Bool("interp", false, "force the tree-walking interpreter instead of the compiled engine")
	tier := flag.String("tier", "", "execution tier: off (interpreter), closure, auto or bytecode (default closure; -interp implies off)")
	metricsPath := flag.String("metrics", "", "write engine metrics after the run ('-' = text on stdout, *.json = JSON)")
	cacheDir := flag.String("cache-dir", "", "persistent cache directory: warm-start lowering metadata (and, with -enumerate, the behaviour-set memo) and refresh it after the run")
	flag.Parse()
	if flag.NArg() < 1 {
		fatal(fmt.Errorf("usage: tame-run [flags] file [args...]"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := ir.ParseModule(string(src))
	if err != nil {
		fatal(err)
	}
	fn := mod.FuncByName(*fnName)
	if fn == nil {
		fatal(fmt.Errorf("no function @%s", *fnName))
	}

	var opts core.Options
	switch *sem {
	case "freeze":
		opts = core.FreezeOptions()
	case "legacy":
		opts = core.LegacyOptions(core.BranchPoisonNondet)
	default:
		fatal(fmt.Errorf("unknown semantics %q", *sem))
	}

	policy := core.TierPolicy{}
	runInterp := *interp
	if *tier != "" {
		p, off, err := core.ParseTier(*tier)
		if err != nil {
			fatal(err)
		}
		policy = p
		runInterp = runInterp || off
	}

	rest := flag.Args()[1:]
	if len(rest) != len(fn.Params) {
		fatal(fmt.Errorf("@%s takes %d arguments, got %d", *fnName, len(fn.Params), len(rest)))
	}
	args := make([]core.Value, len(rest))
	for i, a := range rest {
		switch a {
		case "poison":
			args[i] = core.VPoison(fn.Params[i].Ty)
		case "undef":
			if opts.Mode == core.Freeze {
				fatal(fmt.Errorf("undef does not exist under the freeze semantics"))
			}
			args[i] = core.VUndef(fn.Params[i].Ty)
		default:
			v, err := strconv.ParseInt(a, 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad argument %q: %v", a, err))
			}
			args[i] = core.VC(fn.Params[i].Ty, uint64(v))
		}
	}

	// -cache-dir warm-starts the process caches: pre-hot lowering
	// metadata for the tiering controller, and — on the -enumerate
	// path, which runs the behaviour-set machinery — the memo too.
	var disk *refine.DiskCache
	saveDisk := func() {
		if disk == nil {
			return
		}
		if err := disk.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "tame-run: warning: cache-dir: %v\n", err)
		}
	}

	if *enumerate {
		cfg := refine.DefaultConfig(opts, opts)
		cfg.Interpret = runInterp
		cfg.Tier = policy
		cfg.CacheDir = *cacheDir
		if *cacheDir != "" {
			cfg.Memo = refine.NewMemo(0)
			disk = refine.OpenDiskCache(*cacheDir, cfg.Memo)
			if _, err := disk.Load(); err != nil {
				fmt.Fprintf(os.Stderr, "tame-run: warning: cache-dir: %v\n", err)
			}
		}
		set := refine.Behaviors(fn, args, opts, cfg)
		fmt.Printf("behaviours: %s\n", set)
		saveDisk()
		return
	}
	if *cacheDir != "" {
		disk = refine.OpenDiskCache(*cacheDir, nil)
		if _, err := disk.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "tame-run: warning: cache-dir: %v\n", err)
		}
		defer saveDisk()
	}
	env, err := core.NewEnv(mod, core.NewRandOracle(*seed), opts)
	if err != nil {
		fatal(err)
	}
	if *trace {
		env.Trace = func(depth int, in *ir.Instr, v core.Value) {
			indent := ""
			for i := 0; i < depth; i++ {
				indent += "  "
			}
			if in.Ty.IsVoid() {
				fmt.Printf("%s%s\n", indent, in)
			} else {
				fmt.Printf("%s%s  ; → %s\n", indent, in, v)
			}
		}
	}
	env.Tier = policy
	var out core.Outcome
	if runInterp {
		out = env.RunInterp(fn, args)
	} else {
		out = env.Run(fn, args)
	}
	fmt.Println(out)
	if *metricsPath != "" {
		// One deterministic execution: steps, frames, and the process
		// program-cache traffic it induced.
		reg := telemetry.NewRegistry()
		env.Metrics.Publish(reg, telemetry.Deterministic)
		core.SharedProgramCache().Stats().Publish(reg, telemetry.Deterministic)
		if err := reg.Snapshot().WriteFile(*metricsPath); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-run:", err)
	os.Exit(1)
}
