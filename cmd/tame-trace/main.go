// tame-trace inspects flight-recorder traces (Chrome trace-event
// JSON, as written by tame-fuzz/tame-tv/tame-bench -trace or served
// at /debug/trace).
//
// Usage:
//
//	tame-trace [-top N] summarize trace.json
//	tame-trace diff old.json new.json
//	tame-trace -assert 'EXPR[,EXPR...]' trace.json
//
// summarize prints the top-N slowest span names, per-track (shard)
// utilization over the trace's wall window, slow-shard outliers whose
// busy time exceeds 1.5× the median, instant counts, and final
// counter values. diff compares two traces span-by-span, largest
// total-time change first — the before/after view for a perf PR.
//
// -assert evaluates comparisons for CI gates and exits 1 on the first
// failure, mirroring tame-metrics -check:
//
//	spans(P)     complete events whose name starts with P
//	instants(P)  instant events whose name starts with P
//	dur(P)       total ns of complete events whose name starts with P
//	counter(N)   final value of counter N (0 when absent)
//
//	tame-trace -assert 'spans(campaign/s)>0,instants(finding)==counter(findings),instants(watchdog_stall)==0' trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"tameir/internal/telemetry/trace"
)

func main() {
	top := flag.Int("top", 15, "span names to show in summarize (by total time)")
	assert := flag.String("assert", "", "comma-separated trace assertions; exit 1 on the first failure")
	outlier := flag.Float64("outlier", 1.5, "slow-shard threshold: busy time over this multiple of the median is flagged")
	flag.Parse()
	args := flag.Args()

	if *assert != "" {
		if len(args) != 1 {
			fatal(fmt.Errorf("-assert needs exactly one trace file, got %d args", len(args)))
		}
		evs, _, err := load(args[0])
		if err != nil {
			fatal(err)
		}
		if err := trace.Assert(evs, *assert); err != nil {
			fatal(err)
		}
		fmt.Printf("tame-trace: ok: %s\n", *assert)
		return
	}

	cmd := "summarize"
	if len(args) > 0 {
		switch args[0] {
		case "summarize", "diff":
			cmd, args = args[0], args[1:]
		}
	}
	switch cmd {
	case "summarize":
		if len(args) != 1 {
			fatal(fmt.Errorf("summarize needs one trace file"))
		}
		evs, tracks, err := load(args[0])
		if err != nil {
			fatal(err)
		}
		summarize(trace.Summarize(evs, tracks), *top, *outlier)
	case "diff":
		if len(args) != 2 {
			fatal(fmt.Errorf("diff needs two trace files"))
		}
		a, ta, err := load(args[0])
		if err != nil {
			fatal(err)
		}
		b, tb, err := load(args[1])
		if err != nil {
			fatal(err)
		}
		diff(args[0], args[1], trace.Summarize(a, ta), trace.Summarize(b, tb), *top)
	}
}

func load(path string) ([]trace.Event, map[int32]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return trace.ParseChromeJSON(f)
}

func ns(v int64) string { return time.Duration(v).Round(time.Microsecond).String() }

func summarize(s trace.Summary, top int, outlier float64) {
	fmt.Printf("trace: %d events over %s\n", s.Events, ns(s.WallNS))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\nspan\tcount\ttotal\tmax\tmean")
	for i, sp := range s.Spans {
		if i >= top {
			fmt.Fprintf(w, "… %d more span names\t\t\t\t\n", len(s.Spans)-top)
			break
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\n",
			sp.Name, sp.Count, ns(sp.TotalNS), ns(sp.MaxNS), ns(sp.TotalNS/int64(sp.Count)))
	}
	w.Flush()

	if len(s.Tracks) > 0 && s.WallNS > 0 {
		fmt.Fprintln(w, "\ntrack\tspans\tbusy\tutilization")
		for _, tr := range s.Tracks {
			name := tr.Name
			if name == "" {
				name = fmt.Sprintf("track %d", tr.Track)
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%.1f%%\n",
				name, tr.Spans, ns(tr.BusyNS), 100*float64(tr.BusyNS)/float64(s.WallNS))
		}
		w.Flush()
		for _, tr := range s.Outliers(outlier) {
			name := tr.Name
			if name == "" {
				name = fmt.Sprintf("track %d", tr.Track)
			}
			fmt.Printf("SLOW OUTLIER: %s busy %s (> %.1f× the median track)\n", name, ns(tr.BusyNS), outlier)
		}
	}

	if len(s.Instants) > 0 {
		fmt.Fprintln(w, "\ninstant\tcount")
		for _, name := range sortedKeys(s.Instants) {
			fmt.Fprintf(w, "%s\t%d\n", name, s.Instants[name])
		}
		w.Flush()
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "\ncounter\tfinal")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "%s\t%d\n", name, s.Counters[name])
		}
		w.Flush()
	}
}

func diff(pathA, pathB string, a, b trace.Summary, top int) {
	fmt.Printf("diff: %s (%s wall) -> %s (%s wall)\n", pathA, ns(a.WallNS), pathB, ns(b.WallNS))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\nspan\tcount\ttotal\tdelta")
	deltas := trace.Diff(a, b)
	for i, d := range deltas {
		if i >= top {
			fmt.Fprintf(w, "… %d more span names\t\t\t\n", len(deltas)-top)
			break
		}
		delta := ns(d.TotalB - d.TotalA)
		if d.TotalB >= d.TotalA {
			delta = "+" + delta
		}
		fmt.Fprintf(w, "%s\t%d -> %d\t%s -> %s\t%s\n",
			d.Name, d.CountA, d.CountB, ns(d.TotalA), ns(d.TotalB), delta)
	}
	w.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-trace:", err)
	os.Exit(1)
}
