// tame-metrics inspects metric snapshots written by the other tools'
// -metrics flags. It accepts either format (Prometheus-style text or
// the JSON snapshot, auto-detected) and is what CI uses to assert a
// campaign actually exported the counters it promises.
//
// Usage:
//
//	tame-fuzz -validate -metrics - | tame-metrics -check campaign_funcs_total,check_checks_total
//	tame-metrics -check progcache_hits_total snapshot.json
//
// With -check, exit status 1 if any required series is missing; a
// required name also matches its labelled or histogram-suffixed
// children (check_set_size matches check_set_size_bucket{le="1"}).
// A name suffixed with ">0" (engine_promotions_total>0) additionally
// requires some matching sample to be positive — how CI asserts that
// tier promotion actually happened, not just that the counter was
// registered. A name suffixed with "=0" (verify_each_failures_total=0)
// requires the series to be present AND every matching sample to be
// zero — how CI asserts a failure counter was exported and stayed
// clean, distinguishing "no failures" from "counter never registered".
//
// Cross-metric ratio assertions divide two series:
//
//	tame-metrics -check 'memo_hits_total/memo_lookups_total>=0.5' snapshot.json
//
// The form is numerator/denominator followed by >= or <= and a float
// threshold. Each side sums the exact series plus its labelled
// children, so per-shard or per-experiment splits count toward the
// whole. The assertion fails when either series is missing or the
// denominator is zero — a vanished workload must not pass vacuously.
//
// Without -check, the parsed series names and values are listed — a
// quick way to see what a snapshot holds.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"tameir/internal/telemetry"
)

func main() {
	check := flag.String("check", "", "comma-separated series names that must be present")
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}

	values := map[string]int64{}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		snap, err := telemetry.ParseJSON(bytes.NewReader(data))
		if err != nil {
			fatal(err)
		}
		for _, s := range snap.Samples {
			if s.Kind == "histogram" {
				values[s.Name+"_count"] = int64(s.Count)
				values[s.Name+"_sum"] = int64(s.Sum)
			} else {
				values[s.Name] = s.Value
			}
		}
	} else {
		values, err = telemetry.ParseText(bytes.NewReader(data))
		if err != nil {
			fatal(err)
		}
	}

	if *check == "" {
		names := make([]string, 0, len(values))
		for n := range values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%s %d\n", n, values[n])
		}
		return
	}

	var missing []string
	for _, want := range strings.Split(*check, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		if ok, handled := checkRatio(values, want); handled {
			if !ok {
				missing = append(missing, want)
			}
			continue
		}
		name, nonzero := strings.CutSuffix(want, ">0")
		name, zero := strings.CutSuffix(name, "=0")
		if !satisfied(values, name, nonzero, zero) {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		fatal(fmt.Errorf("missing required series: %s", strings.Join(missing, ", ")))
	}
	fmt.Printf("tame-metrics: %d series, all required keys present\n", len(values))
}

// satisfied reports whether name (or a labelled / histogram-suffixed
// child of it) exists in the parsed snapshot and meets the value
// assertion: with nonzero set, some matching sample must be positive;
// with zero set, every matching sample must be zero (presence still
// required, so a never-registered counter fails rather than passing
// vacuously).
func satisfied(values map[string]int64, name string, nonzero, zero bool) bool {
	found, positive := false, false
	for k, v := range values {
		if k != name && !strings.HasPrefix(k, name+"{") && !strings.HasPrefix(k, name+"_") {
			continue
		}
		found = true
		if v != 0 {
			positive = true
		}
	}
	if !found {
		return false
	}
	if nonzero {
		return positive
	}
	if zero {
		return !positive
	}
	return true
}

// checkRatio evaluates a cross-metric ratio assertion
// ("num/den>=0.5", "num/den<=2"). handled reports whether the
// expression is one; ok whether it holds. Both series must exist and
// the denominator must be positive — missing data fails the check
// rather than passing it vacuously.
func checkRatio(values map[string]int64, expr string) (ok, handled bool) {
	op := ">="
	i := strings.Index(expr, ">=")
	if i < 0 {
		i = strings.Index(expr, "<=")
		op = "<="
	}
	if i < 0 {
		return false, false
	}
	lhs, rhs := expr[:i], expr[i+2:]
	num, den, isRatio := strings.Cut(lhs, "/")
	if !isRatio {
		return false, false
	}
	threshold, err := strconv.ParseFloat(strings.TrimSpace(rhs), 64)
	if err != nil {
		return false, false
	}
	nv, nok := sumSeries(values, strings.TrimSpace(num))
	dv, dok := sumSeries(values, strings.TrimSpace(den))
	if !nok || !dok || dv == 0 {
		return false, true
	}
	ratio := float64(nv) / float64(dv)
	if op == ">=" {
		return ratio >= threshold, true
	}
	return ratio <= threshold, true
}

// sumSeries sums a series and its labelled children (exact name or
// name{...} — histogram suffix children are deliberately excluded so a
// ratio never mixes _count/_sum samples into a counter).
func sumSeries(values map[string]int64, name string) (int64, bool) {
	var sum int64
	found := false
	for k, v := range values {
		if k == name || strings.HasPrefix(k, name+"{") {
			found = true
			sum += v
		}
	}
	return sum, found
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-metrics:", err)
	os.Exit(1)
}
