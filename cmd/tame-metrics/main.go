// tame-metrics inspects metric snapshots written by the other tools'
// -metrics flags. It accepts either format (Prometheus-style text or
// the JSON snapshot, auto-detected) and is what CI uses to assert a
// campaign actually exported the counters it promises.
//
// Usage:
//
//	tame-fuzz -validate -metrics - | tame-metrics -check campaign_funcs_total,check_checks_total
//	tame-metrics -check progcache_hits_total snapshot.json
//
// With -check, exit status 1 if any required series is missing; a
// required name also matches its labelled or histogram-suffixed
// children (check_set_size matches check_set_size_bucket{le="1"}).
// A name suffixed with ">0" (engine_promotions_total>0) additionally
// requires some matching sample to be positive — how CI asserts that
// tier promotion actually happened, not just that the counter was
// registered. A name suffixed with "=0" (verify_each_failures_total=0)
// requires the series to be present AND every matching sample to be
// zero — how CI asserts a failure counter was exported and stayed
// clean, distinguishing "no failures" from "counter never registered".
// Without -check, the parsed series names and values are listed — a
// quick way to see what a snapshot holds.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tameir/internal/telemetry"
)

func main() {
	check := flag.String("check", "", "comma-separated series names that must be present")
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}

	values := map[string]int64{}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		snap, err := telemetry.ParseJSON(bytes.NewReader(data))
		if err != nil {
			fatal(err)
		}
		for _, s := range snap.Samples {
			if s.Kind == "histogram" {
				values[s.Name+"_count"] = int64(s.Count)
				values[s.Name+"_sum"] = int64(s.Sum)
			} else {
				values[s.Name] = s.Value
			}
		}
	} else {
		values, err = telemetry.ParseText(bytes.NewReader(data))
		if err != nil {
			fatal(err)
		}
	}

	if *check == "" {
		names := make([]string, 0, len(values))
		for n := range values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%s %d\n", n, values[n])
		}
		return
	}

	var missing []string
	for _, want := range strings.Split(*check, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		name, nonzero := strings.CutSuffix(want, ">0")
		name, zero := strings.CutSuffix(name, "=0")
		if !satisfied(values, name, nonzero, zero) {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		fatal(fmt.Errorf("missing required series: %s", strings.Join(missing, ", ")))
	}
	fmt.Printf("tame-metrics: %d series, all required keys present\n", len(values))
}

// satisfied reports whether name (or a labelled / histogram-suffixed
// child of it) exists in the parsed snapshot and meets the value
// assertion: with nonzero set, some matching sample must be positive;
// with zero set, every matching sample must be zero (presence still
// required, so a never-registered counter fails rather than passing
// vacuously).
func satisfied(values map[string]int64, name string, nonzero, zero bool) bool {
	found, positive := false, false
	for k, v := range values {
		if k != name && !strings.HasPrefix(k, name+"{") && !strings.HasPrefix(k, name+"_") {
			continue
		}
		found = true
		if v != 0 {
			positive = true
		}
	}
	if !found {
		return false
	}
	if nonzero {
		return positive
	}
	if zero {
		return !positive
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tame-metrics:", err)
	os.Exit(1)
}
