// Tv demonstrates the Section 6 testing methodology in miniature:
// exhaustively generate small functions (opt-fuzz style), run a pass,
// and translation-validate every transformation (Alive style). The
// fixed pipeline validates cleanly; the historical InstCombine is
// caught red-handed.
package main

import (
	"fmt"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

func validate(title string, fixed bool) {
	var sem core.Options
	var pcfg *passes.Config
	gen := optfuzz.DefaultConfig(1)
	if fixed {
		sem = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
		gen.AllowUndef = false
		gen.AllowPoison = true
	} else {
		sem = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
	}
	gen.MaxFuncs = 800
	rcfg := refine.DefaultConfig(sem, sem)

	checked, refuted := 0, 0
	var firstCE string
	optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
		work := ir.CloneFunc(f)
		passes.RunPass(passes.InstCombine{}, work, pcfg)
		r := refine.Check(f, work, rcfg)
		checked++
		if r.Status == refine.Refuted && firstCE == "" {
			refuted++
			firstCE = fmt.Sprintf("%s\n  was transformed to:\n%s\n  %s", f, work, r.CE)
		} else if r.Status == refine.Refuted {
			refuted++
		}
		return true
	})
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("functions checked: %d, miscompilations found: %d\n", checked, refuted)
	if firstCE != "" {
		fmt.Printf("first counterexample:\n%s\n", firstCE)
	}
	fmt.Println()
}

func main() {
	fmt.Println("opt-fuzz + Alive, as in the paper's Section 6:")
	fmt.Println()
	validate("fixed InstCombine under the freeze semantics", true)
	validate("historical InstCombine under the legacy semantics", false)
}
