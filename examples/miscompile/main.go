// Miscompile reproduces the paper's Section 3.3 end-to-end
// miscompilation (PR27506): GVN assumes branch-on-poison is UB, loop
// unswitching assumes it is a nondeterministic choice, and their
// composition is wrong under EITHER semantics. The paper's fix —
// freeze semantics plus a frozen unswitch condition — makes the same
// pipeline sound.
package main

import (
	"fmt"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

const src = `define i2 @f(i2 %x, i2 %y, i1 %c) {
entry:
  %t = add nsw i2 %x, 1
  %cmp = icmp eq i2 %t, %y
  br label %head
head:
  %cc = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cc, label %body, label %exit
body:
  br i1 %cmp, label %then, label %latch
then:
  %w = add nsw i2 %x, 1
  ret i2 %w
latch:
  br label %head
exit:
  ret i2 3
}`

func main() {
	orig := ir.MustParseFunc(src)
	fmt.Printf("source program:\n%s\n", orig)

	// The historical pipeline: GVN's equality propagation (needs
	// branch-on-poison = UB) followed by unswitching without freeze
	// (needs branch-on-poison = nondeterministic).
	buggy := ir.CloneFunc(orig)
	cfg := &passes.Config{Sem: core.LegacyOptions(core.BranchPoisonNondet), Unsound: true}
	passes.RunPass(passes.GVN{}, buggy, cfg)
	passes.RunPass(passes.LoopUnswitch{}, buggy, cfg)
	fmt.Printf("after historical GVN + loop unswitching:\n%s\n", buggy)

	for _, sem := range []struct {
		name string
		opts core.Options
	}{
		{"branch-on-poison is UB (GVN's assumption)", core.LegacyOptions(core.BranchPoisonIsUB)},
		{"branch-on-poison is nondeterministic (unswitching's assumption)", core.LegacyOptions(core.BranchPoisonNondet)},
	} {
		r := refine.Check(orig, buggy, refine.DefaultConfig(sem.opts, sem.opts))
		fmt.Printf("validated under %q:\n  %s\n", sem.name, r)
	}

	// Concrete witness: x=0, y=poison, c=true. The source returns 1 or
	// 3; the miscompiled program can return poison (garbage).
	nondet := core.LegacyOptions(core.BranchPoisonNondet)
	args := []core.Value{core.VC(ir.I2, 0), core.VPoison(ir.I2), core.VBool(true)}
	rcfg := refine.DefaultConfig(nondet, nondet)
	fmt.Printf("\nwitness input (x=0, y=poison, c=true):\n")
	fmt.Printf("  source behaviours:   %s\n", refine.Behaviors(orig, args, nondet, rcfg))
	fmt.Printf("  compiled behaviours: %s\n", refine.Behaviors(buggy, args, nondet, rcfg))

	// The paper's fix: freeze semantics, fixed passes.
	fixed := ir.CloneFunc(orig)
	fcfg := passes.DefaultFreezeConfig()
	passes.RunPass(passes.GVN{}, fixed, fcfg)
	passes.RunPass(passes.LoopUnswitch{}, fixed, fcfg)
	fz := core.FreezeOptions()
	r := refine.Check(orig, fixed, refine.DefaultConfig(fz, fz))
	fmt.Printf("\nafter the paper's fix (freeze semantics, frozen unswitch):\n  %s\n", r)
}
