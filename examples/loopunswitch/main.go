// Loopunswitch demonstrates §5.1: hoisting a loop-invariant branch out
// of a loop requires freezing the condition under the paper's
// semantics — branching on poison before the loop would introduce UB
// that the original program (whose loop may never run) did not have.
package main

import (
	"fmt"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

const src = `define i2 @g(i1 %c2, i1 %c) {
entry:
  br label %head
head:
  %cc = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cc, label %body, label %exit
body:
  br i1 %c2, label %foo, label %bar
foo:
  br label %latch
bar:
  br label %latch
latch:
  %v = phi i2 [ 1, %foo ], [ 2, %bar ]
  br label %head
exit:
  ret i2 0
}`

func main() {
	orig := ir.MustParseFunc(src)
	fmt.Printf("before (the paper's 'while (c) { if (c2) foo else bar }'):\n%s\n", orig)
	fz := core.FreezeOptions()

	// Fixed unswitching freezes the hoisted condition.
	fixed := ir.CloneFunc(orig)
	passes.RunPass(passes.LoopUnswitch{}, fixed, passes.DefaultFreezeConfig())
	fmt.Printf("after fixed unswitching (note the freeze):\n%s\n", fixed)
	r := refine.Check(orig, fixed, refine.DefaultConfig(fz, fz))
	fmt.Printf("validation: %s\n\n", r)

	// Historical unswitching branches on the raw condition.
	buggy := ir.CloneFunc(orig)
	passes.RunPass(passes.LoopUnswitch{}, buggy, &passes.Config{Sem: fz, Unsound: true})
	r = refine.Check(orig, buggy, refine.DefaultConfig(fz, fz))
	fmt.Printf("historical unswitching (no freeze) under the same semantics: %s\n", r)
	fmt.Println("\nwith c=false (loop never runs) and c2=poison, the source returns 0")
	fmt.Println("but the unfrozen hoisted branch executes UB — exactly §5.1's point.")
}
