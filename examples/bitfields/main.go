// Bitfields demonstrates §5.3: the frontend's bit-field store lowering
// must freeze the loaded word under the freeze semantics, or the first
// store to a fresh struct poisons every sibling field. This was the
// paper's entire Clang change (one line).
package main

import (
	"fmt"
	"strings"

	"tameir/internal/core"
	"tameir/internal/minc"
)

const src = `
struct flags { int a : 4; int b : 4; };
int main() {
    struct flags f;
    f.a = 5;
    f.b = 2;
    return f.a + f.b * 10;
}
`

func main() {
	fmt.Println("MinC source:")
	fmt.Print(src)

	for _, cfg := range []struct {
		name string
		c    minc.Config
	}{
		{"WITHOUT the §5.3 freeze (pre-paper Clang)", minc.Config{FreezeBitfieldLoads: false}},
		{"WITH the §5.3 freeze (the paper's one-line fix)", minc.Config{FreezeBitfieldLoads: true}},
	} {
		mod, err := minc.CompileString(src, cfg.c)
		if err != nil {
			panic(err)
		}
		freezes := 0
		for _, line := range strings.Split(mod.String(), "\n") {
			if strings.Contains(line, "freeze") {
				freezes++
			}
		}
		out := core.Exec(mod.FuncByName("main"), nil, core.ZeroOracle{}, core.FreezeOptions())
		fmt.Printf("%s:\n  freeze instructions in IR: %d\n  main() under freeze semantics: %v\n",
			cfg.name, freezes, out)
	}

	fmt.Println("\nthe unfrozen lowering reads the uninitialized word (poison),")
	fmt.Println("ORs the new field into it, and poisons the sibling field — the")
	fmt.Println("frozen lowering pins the word to an arbitrary but stable value,")
	fmt.Println("so the fields actually written read back correctly (25).")

	// Show the lowered store sequence itself.
	mod, _ := minc.CompileString(src, minc.Config{FreezeBitfieldLoads: true})
	fmt.Println("\nlowered IR (look for load/freeze/and/or/store):")
	text := mod.String()
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "freeze") || strings.Contains(line, "and i32") ||
			strings.Contains(line, "or i32") {
			fmt.Println(" ", strings.TrimSpace(line))
		}
	}
}
