// Quickstart: build the paper's §2.4 example with the IR builder, run
// it under both semantics, optimize it, and validate the optimization
// with the refinement checker.
package main

import (
	"fmt"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

func main() {
	// Build:  define i1 @f(i8 %a, i8 %b) {
	//           %add = add nsw i8 %a, %b
	//           %cmp = icmp sgt i8 %add, %a
	//           ret i1 %cmp
	//         }
	a, b := ir.NewParam("a", ir.I8), ir.NewParam("b", ir.I8)
	f := ir.NewFunc("f", ir.I1, a, b)
	bd := ir.NewBuilder(f.NewBlock("entry"))
	add := bd.AddNSW(a, b)
	cmp := bd.ICmp(ir.PredSGT, add, a)
	bd.Ret(cmp)
	fmt.Print(f)

	// Run it: a normal input, then one that overflows the nsw add.
	run := func(x, y uint64) {
		out := core.Exec(f,
			[]core.Value{core.VC(ir.I8, x), core.VC(ir.I8, y)},
			core.ZeroOracle{}, core.FreezeOptions())
		fmt.Printf("f(%d, %d) = %v\n", int8(x), int8(y), out)
	}
	run(10, 5)
	run(127, 1) // overflow: nsw makes the add poison, the icmp propagates it

	// The poison semantics justifies rewriting (a+b > a) to (b > 0):
	// apply the transformation by hand and let the Alive-lite checker
	// verify it on the i2 version exhaustively.
	src := ir.MustParseFunc(`define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add nsw i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`)
	tgt := ir.MustParseFunc(`define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`)
	r := refine.Check(src, tgt, refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions()))
	fmt.Printf("(a+b > a) => (b > 0) under nsw-is-poison: %s\n", r)

	// And run the optimizer pipeline on a small module.
	mod := ir.MustParseModule(`define i8 @g(i8 %x) {
entry:
  %a = mul i8 %x, 4
  %b = add i8 %a, 0
  %c = udiv i8 %b, 2
  ret i8 %c
}`)
	passes.O2().Run(mod, passes.DefaultFreezeConfig())
	fmt.Printf("after -O2:\n%s", mod)
}
