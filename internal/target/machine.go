package target

import "fmt"

// MemSize is the size of the simulated flat memory. The stack starts
// at the top and grows down; globals are loaded at GlobalBase.
const MemSize = 1 << 20

// DefaultMaxInstrs bounds a single Run so non-terminating programs
// fail instead of hanging the harness.
const DefaultMaxInstrs = 200_000_000

// Machine is the VX64 simulator: a register file, flat memory, and the
// cycle model described in DESIGN.md (including the LEA high-register
// penalty).
type Machine struct {
	Regs [NumRegs]uint64
	Mem  []byte

	// Cycles and Instrs accumulate over Run.
	Cycles uint64
	Instrs uint64

	// MaxInstrs bounds one Run (0 = DefaultMaxInstrs).
	MaxInstrs uint64

	prog *Program

	// flags holds the operands of the last CMP; conditions are
	// evaluated against them on demand.
	flagA, flagB uint64
}

// NewMachine creates a machine with the program's globals loaded and
// SP/FP at the top of memory. The pinned undef register UR reads as an
// arbitrary but fixed value — zero, which also makes a load through UR
// a null dereference (the backend lowers unreachable that way).
func NewMachine(p *Program) *Machine {
	m := &Machine{Mem: make([]byte, MemSize), prog: p}
	addrs := LayoutGlobals(p.Globals)
	for i, g := range p.Globals {
		copy(m.Mem[addrs[i]:], g.Init)
	}
	m.Regs[SP] = MemSize
	m.Regs[FP] = MemSize
	return m
}

// frame is one activation record; frames live host-side, only
// arguments and spills live in simulated memory.
type frame struct {
	fn, blk, idx int
	savedFP      uint64
}

func (m *Machine) load(addr uint64, size uint8) (uint64, error) {
	if addr < GlobalBase || addr+uint64(size) > uint64(len(m.Mem)) {
		return 0, fmt.Errorf("vx64: load fault at %#x", addr)
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.Mem[addr+uint64(i)]) << (8 * i)
	}
	return v, nil
}

func (m *Machine) store(addr uint64, size uint8, v uint64) error {
	if addr < GlobalBase || addr+uint64(size) > uint64(len(m.Mem)) {
		return fmt.Errorf("vx64: store fault at %#x", addr)
	}
	for i := uint8(0); i < size; i++ {
		m.Mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

// cost is the cycle model: ALU 1, multiply 3, divide 20, memory 3,
// push/pop 2, taken control flow 2, and the Queens quirk — LEA with a
// high register (R8+) in its address takes 3 cycles instead of 1.
func cost(in Instr) uint64 {
	switch in.Op {
	case IMULrr:
		return 3
	case UDIVrr, SDIVrr, UREMrr, SREMrr:
		return 20
	case LOAD, STORE:
		return 3
	case PUSH, POP:
		return 2
	case CALL, RET:
		return 2
	case LEA:
		if (in.Src >= R8 && in.Src <= R13) || (in.Scale != 0 && in.Src2 >= R8 && in.Src2 <= R13) {
			return 3
		}
		return 1
	}
	return 1
}

func signExtend(v uint64, bytes uint8) uint64 {
	shift := 64 - 8*uint(bytes)
	return uint64(int64(v<<shift) >> shift)
}

func zeroExtend(v uint64, bytes uint8) uint64 {
	if bytes >= 8 {
		return v
	}
	return v & (1<<(8*uint(bytes)) - 1)
}

// Run executes function fi until its outermost RET and returns R0.
// It may be called repeatedly; Cycles and Instrs accumulate.
func (m *Machine) Run(fi int) (uint64, error) {
	if fi < 0 || fi >= len(m.prog.Funcs) {
		return 0, fmt.Errorf("vx64: no function %d", fi)
	}
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstrs
	}

	var stack []frame
	fn, blk, idx := fi, 0, 0
	f := m.prog.Funcs[fn]
	// Prologue: allocate the frame, point FP at its base.
	m.Regs[SP] -= uint64(f.FrameSize)
	m.Regs[FP] = m.Regs[SP]

	for {
		if blk >= len(f.Blocks) {
			return 0, fmt.Errorf("vx64: %s: branch to missing block %d", f.Name, blk)
		}
		if idx >= len(f.Blocks[blk]) {
			return 0, fmt.Errorf("vx64: %s: fell off the end of block %d", f.Name, blk)
		}
		in := f.Blocks[blk][idx]
		m.Instrs++
		m.Cycles += cost(in)
		if m.Instrs > maxInstrs {
			return 0, fmt.Errorf("vx64: instruction budget exhausted in %s", f.Name)
		}
		idx++

		r := m.Regs[:]
		switch in.Op {
		case MOVri:
			r[in.Dst] = uint64(in.Imm)
		case MOVrr:
			r[in.Dst] = r[in.Src]
		case MOVSX:
			r[in.Dst] = signExtend(r[in.Src], in.Size)
		case MOVZX:
			r[in.Dst] = zeroExtend(r[in.Src], in.Size)
		case ADDrr:
			r[in.Dst] += r[in.Src]
		case SUBrr:
			r[in.Dst] -= r[in.Src]
		case IMULrr:
			r[in.Dst] *= r[in.Src]
		case ANDrr:
			r[in.Dst] &= r[in.Src]
		case ORrr:
			r[in.Dst] |= r[in.Src]
		case XORrr:
			r[in.Dst] ^= r[in.Src]
		case SHLrr:
			r[in.Dst] <<= r[in.Src] & 63
		case SHRrr:
			r[in.Dst] >>= r[in.Src] & 63
		case SARrr:
			r[in.Dst] = uint64(int64(r[in.Dst]) >> (r[in.Src] & 63))
		case UDIVrr, UREMrr:
			d := r[in.Src]
			if d == 0 {
				return 0, fmt.Errorf("vx64: #DE division by zero in %s", f.Name)
			}
			if in.Op == UDIVrr {
				r[in.Dst] /= d
			} else {
				r[in.Dst] %= d
			}
		case SDIVrr, SREMrr:
			n, d := int64(r[in.Dst]), int64(r[in.Src])
			if d == 0 {
				return 0, fmt.Errorf("vx64: #DE division by zero in %s", f.Name)
			}
			if n == -1<<63 && d == -1 {
				return 0, fmt.Errorf("vx64: #DE division overflow in %s", f.Name)
			}
			if in.Op == SDIVrr {
				r[in.Dst] = uint64(n / d)
			} else {
				r[in.Dst] = uint64(n % d)
			}
		case ADDri:
			r[in.Dst] += uint64(in.Imm)
		case ANDri:
			r[in.Dst] &= uint64(in.Imm)
		case ORri:
			r[in.Dst] |= uint64(in.Imm)
		case XORri:
			r[in.Dst] ^= uint64(in.Imm)
		case SHLri:
			r[in.Dst] <<= uint64(in.Imm) & 63
		case SHRri:
			r[in.Dst] >>= uint64(in.Imm) & 63
		case SARri:
			r[in.Dst] = uint64(int64(r[in.Dst]) >> (uint64(in.Imm) & 63))
		case CMPrr:
			m.flagA, m.flagB = r[in.Dst], r[in.Src]
		case CMPri:
			m.flagA, m.flagB = r[in.Dst], uint64(in.Imm)
		case SETcc:
			if in.Cond.Holds(m.flagA, m.flagB) {
				r[in.Dst] = 1
			} else {
				r[in.Dst] = 0
			}
		case CMOVcc:
			if in.Cond.Holds(m.flagA, m.flagB) {
				r[in.Dst] = r[in.Src]
			}
		case LEA:
			a := r[in.Src] + uint64(in.Imm)
			if in.Scale != 0 {
				a += r[in.Src2] * uint64(in.Scale)
			}
			r[in.Dst] = a
		case LOAD:
			v, err := m.load(r[in.Src]+uint64(in.Imm), in.Size)
			if err != nil {
				return 0, err
			}
			r[in.Dst] = v
		case STORE:
			if err := m.store(r[in.Dst]+uint64(in.Imm), in.Size, r[in.Src]); err != nil {
				return 0, err
			}
		case PUSH:
			r[SP] -= 8
			if err := m.store(r[SP], 8, r[in.Src]); err != nil {
				return 0, err
			}
		case POP:
			v, err := m.load(r[SP], 8)
			if err != nil {
				return 0, err
			}
			r[in.Dst] = v
			r[SP] += 8
		case JMP:
			blk, idx = in.Target, 0
		case Jcc:
			if in.Cond.Holds(m.flagA, m.flagB) {
				blk, idx = in.Target, 0
			}
		case CALL:
			if in.Target < 0 || in.Target >= len(m.prog.Funcs) {
				return 0, fmt.Errorf("vx64: call to missing function %d", in.Target)
			}
			stack = append(stack, frame{fn: fn, blk: blk, idx: idx, savedFP: r[FP]})
			fn, blk, idx = in.Target, 0, 0
			f = m.prog.Funcs[fn]
			r[SP] -= uint64(f.FrameSize)
			r[FP] = r[SP]
		case RET:
			r[SP] += uint64(f.FrameSize)
			if len(stack) == 0 {
				return r[R0], nil
			}
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			fn, blk, idx = fr.fn, fr.blk, fr.idx
			r[FP] = fr.savedFP
			f = m.prog.Funcs[fn]
		default:
			return 0, fmt.Errorf("vx64: cannot execute %s", in)
		}
	}
}
