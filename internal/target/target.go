// Package target defines VX64, the virtual machine target the backend
// compiles to: a small x86-64-flavoured register machine with sixteen
// general registers, a stack that grows down, and one architectural
// quirk kept on purpose (the LEA high-register latency penalty behind
// the Queens anecdote in §7.2).
//
// The paper's §6 prototype "reserves a register for each poison
// value"; VX64 reserves a single pinned undef register (UR) that the
// register allocator never assigns. Reads of UR yield an arbitrary but
// fixed value, which is exactly the freeze semantics the backend needs:
// "taking a copy from an undef register effectively freezes
// undefinedness".
package target

import "fmt"

// Reg is a VX64 physical register.
type Reg uint8

// Physical registers. R0..R11 are allocatable (R0 doubles as the
// return-value register), R12/R13 are the spill scratch pair, SP/FP
// are the stack and frame pointers, and UR is the pinned undef
// register.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	SP
	FP
	UR

	// NumRegs is the size of the register file.
	NumRegs = int(UR) + 1
	// NumAllocatable is the number of registers the allocator may use.
	NumAllocatable = 12
)

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case FP:
		return "fp"
	case UR:
		return "ur"
	}
	return fmt.Sprintf("r%d", int(r))
}

// Opcode is a VX64 instruction opcode.
type Opcode uint8

// The VX64 instruction set. rr forms are two-address
// (dst = dst OP src) except the moves and compares; ri forms take an
// immediate.
const (
	OpInvalid Opcode = iota

	MOVri // dst = imm
	MOVrr // dst = src
	MOVSX // dst = sign_extend(src[0:8*size])
	MOVZX // dst = zero_extend(src[0:8*size])

	ADDrr // dst += src
	SUBrr // dst -= src
	IMULrr
	ANDrr
	ORrr
	XORrr
	SHLrr
	SHRrr
	SARrr
	UDIVrr
	SDIVrr
	UREMrr
	SREMrr

	ADDri
	ANDri
	ORri
	XORri
	SHLri
	SHRri
	SARri

	CMPrr // flags = compare(dst, src)
	CMPri // flags = compare(dst, imm)
	SETcc // dst = cond ? 1 : 0
	CMOVcc

	LEA // dst = src + src2*scale + imm (scale 0: dst = src + imm)

	LOAD  // dst = mem[src+imm : size]
	STORE // mem[dst+imm : size] = src

	PUSH // sp -= 8; mem[sp] = src
	POP  // dst = mem[sp]; sp += 8

	JMP  // goto block target
	Jcc  // if cond goto block target
	CALL // call function target
	RET

	numOpcodes
)

var opNames = [numOpcodes]string{
	OpInvalid: "invalid",
	MOVri:     "mov", MOVrr: "mov", MOVSX: "movsx", MOVZX: "movzx",
	ADDrr: "add", SUBrr: "sub", IMULrr: "imul",
	ANDrr: "and", ORrr: "or", XORrr: "xor",
	SHLrr: "shl", SHRrr: "shr", SARrr: "sar",
	UDIVrr: "udiv", SDIVrr: "sdiv", UREMrr: "urem", SREMrr: "srem",
	ADDri: "add", ANDri: "and", ORri: "or", XORri: "xor",
	SHLri: "shl", SHRri: "shr", SARri: "sar",
	CMPrr: "cmp", CMPri: "cmp", SETcc: "set", CMOVcc: "cmov",
	LEA: "lea", LOAD: "load", STORE: "store",
	PUSH: "push", POP: "pop",
	JMP: "jmp", Jcc: "j", CALL: "call", RET: "ret",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// Cond is a VX64 condition code, evaluated against the last CMP.
type Cond uint8

// Condition codes, matching the IR's icmp predicates.
const (
	CondEQ Cond = iota
	CondNE
	CondUGT
	CondUGE
	CondULT
	CondULE
	CondSGT
	CondSGE
	CondSLT
	CondSLE
)

var condNames = [...]string{"eq", "ne", "ugt", "uge", "ult", "ule", "sgt", "sge", "slt", "sle"}

// String returns the condition suffix.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc%d", int(c))
}

// Holds evaluates the condition against a recorded compare of a and b.
func (c Cond) Holds(a, b uint64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondUGT:
		return a > b
	case CondUGE:
		return a >= b
	case CondULT:
		return a < b
	case CondULE:
		return a <= b
	case CondSGT:
		return int64(a) > int64(b)
	case CondSGE:
		return int64(a) >= int64(b)
	case CondSLT:
		return int64(a) < int64(b)
	}
	return int64(a) <= int64(b) // CondSLE
}

// Instr is one machine instruction over physical registers.
type Instr struct {
	Op     Opcode
	Dst    Reg
	Src    Reg
	Src2   Reg
	Imm    int64
	Scale  uint8
	Size   uint8
	Cond   Cond
	Target int // block index (JMP/Jcc) or function index (CALL)
}

// String renders the instruction in VX64 assembly syntax.
func (in Instr) String() string {
	switch in.Op {
	case MOVri:
		return fmt.Sprintf("mov %s, %d", in.Dst, in.Imm)
	case MOVrr:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src)
	case MOVSX, MOVZX:
		return fmt.Sprintf("%s %s, %s:%d", in.Op, in.Dst, in.Src, in.Size)
	case ADDrr, SUBrr, IMULrr, ANDrr, ORrr, XORrr, SHLrr, SHRrr, SARrr,
		UDIVrr, SDIVrr, UREMrr, SREMrr:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
	case ADDri, ANDri, ORri, XORri, SHLri, SHRri, SARri:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
	case CMPrr:
		return fmt.Sprintf("cmp %s, %s", in.Dst, in.Src)
	case CMPri:
		return fmt.Sprintf("cmp %s, %d", in.Dst, in.Imm)
	case SETcc:
		return fmt.Sprintf("set%s %s", in.Cond, in.Dst)
	case CMOVcc:
		return fmt.Sprintf("cmov%s %s, %s", in.Cond, in.Dst, in.Src)
	case LEA:
		if in.Scale == 0 {
			return fmt.Sprintf("lea %s, [%s%+d]", in.Dst, in.Src, in.Imm)
		}
		return fmt.Sprintf("lea %s, [%s+%s*%d%+d]", in.Dst, in.Src, in.Src2, in.Scale, in.Imm)
	case LOAD:
		return fmt.Sprintf("load %s, [%s%+d]:%d", in.Dst, in.Src, in.Imm, in.Size)
	case STORE:
		return fmt.Sprintf("store [%s%+d]:%d, %s", in.Dst, in.Imm, in.Size, in.Src)
	case PUSH:
		return fmt.Sprintf("push %s", in.Src)
	case POP:
		return fmt.Sprintf("pop %s", in.Dst)
	case JMP:
		return fmt.Sprintf("jmp L%d", in.Target)
	case Jcc:
		return fmt.Sprintf("j%s L%d", in.Cond, in.Target)
	case CALL:
		return fmt.Sprintf("call F%d", in.Target)
	case RET:
		return "ret"
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// MFunc is a compiled machine function: a list of basic blocks of
// instructions. Branch targets are block indices; block 0 is the
// entry.
type MFunc struct {
	Name      string
	Blocks    [][]Instr
	FrameSize uint32
	NumParams int
}

// GlobalBlob is a module global lowered to raw bytes.
type GlobalBlob struct {
	Name string
	Size uint32
	Init []byte
}

// Program is a fully compiled module ready for the simulator.
type Program struct {
	Globals []GlobalBlob
	Funcs   []*MFunc
}

// FuncByName returns the index of the named function, or -1.
func (p *Program) FuncByName(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// GlobalBase is the load address of the first global; everything below
// it is an unmapped guard region, so null (and small offsets off null)
// trap.
const GlobalBase = 4096

// LayoutGlobals assigns load addresses to the globals, 16-byte aligned
// starting at GlobalBase, and returns the address of each.
func LayoutGlobals(globals []GlobalBlob) []uint32 {
	addrs := make([]uint32, len(globals))
	addr := uint32(GlobalBase)
	for i, g := range globals {
		addrs[i] = addr
		sz := g.Size
		if sz == 0 {
			sz = 1
		}
		addr += (sz + 15) &^ 15
	}
	return addrs
}

// InstrSize returns the encoded size of an instruction in bytes, per
// the VX64 encoding model: two bytes of opcode+modrm, one byte of SIB
// for scaled addressing, four bytes for a 32-bit immediate or
// displacement, eight for a 64-bit immediate.
func InstrSize(in Instr) uint32 {
	switch in.Op {
	case RET:
		return 1
	case PUSH, POP:
		return 2
	case MOVri:
		if in.Imm == int64(int32(in.Imm)) {
			return 6
		}
		return 10
	case ADDri, ANDri, ORri, XORri, SHLri, SHRri, SARri, CMPri:
		return 6
	case LOAD, STORE:
		return 6
	case LEA:
		if in.Scale != 0 {
			return 7
		}
		return 6
	case JMP, Jcc, CALL:
		return 6
	case MOVSX, MOVZX, SETcc, CMOVcc:
		return 3
	}
	return 2
}

// ProgramSize returns the encoded size of the program: per-function
// instruction bytes, each function padded to a 16-byte boundary.
func ProgramSize(p *Program) uint32 {
	var total uint32
	for _, f := range p.Funcs {
		var fn uint32
		for _, b := range f.Blocks {
			for _, in := range b {
				fn += InstrSize(in)
			}
		}
		total += (fn + 15) &^ 15
	}
	return total
}
