package ir

import "fmt"

// Op enumerates instruction opcodes, covering Figure 4 of the paper plus
// the instructions a realistic pipeline needs (sub, mul, rem, xor, the
// full icmp predicate set, alloca, call, ret, unreachable).
type Op uint8

const (
	OpInvalid Op = iota

	// Binary arithmetic. Binop attributes (nsw, nuw, exact) refine
	// their deferred-UB domain.
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpSDiv
	OpURem
	OpSRem
	OpShl
	OpLShr
	OpAShr
	OpAnd
	OpOr
	OpXor

	// Comparison, select, phi.
	OpICmp
	OpSelect
	OpPhi

	// The paper's new instruction: a non-deterministic but *stable*
	// materialization of deferred UB.
	OpFreeze

	// Memory.
	OpAlloca // fixed-size stack allocation; operand: element count (const)
	OpLoad
	OpStore
	OpGEP // getelementptr: base pointer + index, scaled by elem size

	// Conversions.
	OpZExt
	OpSExt
	OpTrunc
	OpBitcast

	// Vectors.
	OpExtractElement
	OpInsertElement

	// Control flow (block terminators) and calls.
	OpBr          // 1 block: unconditional; 1 value + 2 blocks: conditional
	OpRet         // 0 or 1 operand
	OpUnreachable // executing it is immediate UB
	OpCall        // Callee field + operands

	opMax
)

var opNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv", OpSDiv: "sdiv",
	OpURem: "urem", OpSRem: "srem", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpICmp: "icmp", OpSelect: "select", OpPhi: "phi", OpFreeze: "freeze",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpZExt: "zext", OpSExt: "sext", OpTrunc: "trunc", OpBitcast: "bitcast",
	OpExtractElement: "extractelement", OpInsertElement: "insertelement",
	OpBr: "br", OpRet: "ret", OpUnreachable: "unreachable", OpCall: "call",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpFromString maps a mnemonic back to its opcode; it returns OpInvalid
// for unknown mnemonics.
func OpFromString(s string) Op {
	for op, name := range opNames {
		if name == s {
			return Op(op)
		}
	}
	return OpInvalid
}

// IsBinop reports whether o is one of the binary arithmetic opcodes.
func (o Op) IsBinop() bool { return o >= OpAdd && o <= OpXor }

// IsCast reports whether o is a conversion opcode.
func (o Op) IsCast() bool { return o >= OpZExt && o <= OpBitcast }

// IsTerminator reports whether o terminates a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpRet || o == OpUnreachable }

// IsCommutative reports whether the binop's operands may be swapped.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// IsDivRem reports whether o can trigger immediate UB through its
// divisor (division or remainder).
func (o Op) IsDivRem() bool {
	switch o {
	case OpUDiv, OpSDiv, OpURem, OpSRem:
		return true
	}
	return false
}

// IsShift reports whether o is a shift.
func (o Op) IsShift() bool { return o == OpShl || o == OpLShr || o == OpAShr }

// HasSideEffects reports whether the instruction writes memory or
// transfers control (and therefore must not be removed or duplicated
// freely).
func (o Op) HasSideEffects() bool {
	switch o {
	case OpStore, OpBr, OpRet, OpUnreachable, OpCall, OpAlloca:
		return true
	}
	return false
}

// Attrs is the set of poison-generating operation attributes.
type Attrs uint8

const (
	// NSW: the operation yields poison on signed overflow.
	NSW Attrs = 1 << iota
	// NUW: the operation yields poison on unsigned overflow.
	NUW
	// Exact: division/shift yields poison if it would be inexact.
	Exact
)

// String renders the attribute list, with a trailing space when
// non-empty so it can be inserted directly after the opcode.
func (a Attrs) String() string {
	s := ""
	if a&NSW != 0 {
		s += "nsw "
	}
	if a&NUW != 0 {
		s += "nuw "
	}
	if a&Exact != 0 {
		s += "exact "
	}
	return s
}

// Pred is an icmp predicate.
type Pred uint8

const (
	PredEQ Pred = iota
	PredNE
	PredUGT
	PredUGE
	PredULT
	PredULE
	PredSGT
	PredSGE
	PredSLT
	PredSLE
	predMax
)

var predNames = [...]string{"eq", "ne", "ugt", "uge", "ult", "ule", "sgt", "sge", "slt", "sle"}

// String returns the predicate mnemonic.
func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// PredFromString maps a mnemonic to its predicate.
func PredFromString(s string) (Pred, bool) {
	for i, n := range predNames {
		if n == s {
			return Pred(i), true
		}
	}
	return 0, false
}

// Inverse returns the negation of the predicate (eq <-> ne, ult <-> uge, ...).
func (p Pred) Inverse() Pred {
	switch p {
	case PredEQ:
		return PredNE
	case PredNE:
		return PredEQ
	case PredUGT:
		return PredULE
	case PredUGE:
		return PredULT
	case PredULT:
		return PredUGE
	case PredULE:
		return PredUGT
	case PredSGT:
		return PredSLE
	case PredSGE:
		return PredSLT
	case PredSLT:
		return PredSGE
	case PredSLE:
		return PredSGT
	}
	return p
}

// Swapped returns the predicate with its operands swapped
// (sgt <-> slt, eq <-> eq, ...).
func (p Pred) Swapped() Pred {
	switch p {
	case PredUGT:
		return PredULT
	case PredUGE:
		return PredULE
	case PredULT:
		return PredUGT
	case PredULE:
		return PredUGE
	case PredSGT:
		return PredSLT
	case PredSGE:
		return PredSLE
	case PredSLT:
		return PredSGT
	case PredSLE:
		return PredSGE
	}
	return p
}

// IsSigned reports whether the predicate compares signed values.
func (p Pred) IsSigned() bool { return p >= PredSGT && p <= PredSLE }

// Instr is a single IR instruction. One struct covers all opcodes; the
// meaning of the operand slots depends on Op:
//
//	binop:           args[0], args[1]
//	icmp:            args[0], args[1] with Pred
//	select:          args[0]=cond(i1 or <n x i1>), args[1], args[2]
//	phi:             args[i] incoming from blocks[i]
//	freeze:          args[0]
//	alloca:          args[0]=element count (const); AllocTy element type
//	load:            args[0]=pointer; Ty = loaded type
//	store:           args[0]=value, args[1]=pointer
//	gep:             args[0]=base pointer, args[1]=index; AllocTy = elem type
//	casts:           args[0]; Ty = destination type
//	extractelement:  args[0]=vector, args[1]=index (const)
//	insertelement:   args[0]=vector, args[1]=scalar, args[2]=index (const)
//	br:              unconditional: blocks[0]; conditional: args[0], blocks[0]=true, blocks[1]=false
//	ret:             args[0] (absent for void)
//	unreachable:     none
//	call:            Callee, args = call arguments
type Instr struct {
	userTracker
	Op    Op
	Ty    Type // result type; Void for non-value instructions
	Attrs Attrs
	Pred  Pred

	// AllocTy is the element type for alloca and gep.
	AllocTy Type

	Callee *Func

	Nam    string
	args   []Value
	blocks []*Block

	parent *Block
}

// NewInstr constructs a detached instruction. Operand use-lists are
// maintained from the start.
func NewInstr(op Op, ty Type, args ...Value) *Instr {
	in := &Instr{Op: op, Ty: ty}
	for _, a := range args {
		in.AddArg(a)
	}
	return in
}

// Type implements Value.
func (in *Instr) Type() Type { return in.Ty }

// Name returns the instruction's result name without the % sigil.
func (in *Instr) Name() string { return in.Nam }

// Ident implements Value.
func (in *Instr) Ident() string { return "%" + in.Nam }

// Parent returns the containing basic block, or nil if detached.
func (in *Instr) Parent() *Block { return in.parent }

// NumArgs returns the number of value operands.
func (in *Instr) NumArgs() int { return len(in.args) }

// Arg returns the i'th value operand.
func (in *Instr) Arg(i int) Value { return in.args[i] }

// Args returns the operand slice. Callers must not mutate it directly;
// use SetArg/AddArg so use-lists stay consistent.
func (in *Instr) Args() []Value { return in.args }

// AddArg appends a value operand.
func (in *Instr) AddArg(v Value) {
	in.args = append(in.args, v)
	v.addUse(in)
}

// SetArg replaces the i'th value operand.
func (in *Instr) SetArg(i int, v Value) {
	old := in.args[i]
	if old == v {
		return
	}
	old.delUse(in)
	in.args[i] = v
	v.addUse(in)
}

// dropArgs releases all operand uses (when deleting the instruction).
func (in *Instr) dropArgs() {
	for _, a := range in.args {
		a.delUse(in)
	}
	in.args = nil
	in.blocks = nil
}

// NumBlocks returns the number of block operands (phi incoming blocks
// or branch successors).
func (in *Instr) NumBlocks() int { return len(in.blocks) }

// BlockArg returns the i'th block operand.
func (in *Instr) BlockArg(i int) *Block { return in.blocks[i] }

// AddBlockArg appends a block operand.
func (in *Instr) AddBlockArg(b *Block) { in.blocks = append(in.blocks, b) }

// SetBlockArg replaces the i'th block operand.
func (in *Instr) SetBlockArg(i int, b *Block) { in.blocks[i] = b }

// IsConditionalBr reports whether the instruction is a conditional
// branch.
func (in *Instr) IsConditionalBr() bool { return in.Op == OpBr && len(in.args) == 1 }

// Succs returns the successor blocks of a terminator.
func (in *Instr) Succs() []*Block {
	if in.Op != OpBr {
		return nil
	}
	return in.blocks
}

// PhiIncoming returns the incoming value for predecessor block b, and
// whether one exists.
func (in *Instr) PhiIncoming(b *Block) (Value, bool) {
	for i, blk := range in.blocks {
		if blk == b {
			return in.args[i], true
		}
	}
	return nil, false
}

// AddPhiIncoming appends an incoming (value, predecessor) pair to a phi.
func (in *Instr) AddPhiIncoming(v Value, b *Block) {
	if in.Op != OpPhi {
		panic("ir: AddPhiIncoming on non-phi")
	}
	in.AddArg(v)
	in.AddBlockArg(b)
}

// RemovePhiIncoming deletes the incoming pair for predecessor b.
func (in *Instr) RemovePhiIncoming(b *Block) {
	for i := 0; i < len(in.blocks); i++ {
		if in.blocks[i] == b {
			in.args[i].delUse(in)
			in.args = append(in.args[:i], in.args[i+1:]...)
			in.blocks = append(in.blocks[:i], in.blocks[i+1:]...)
			return
		}
	}
}

// ReplaceAllUsesWith rewrites every operand slot that references in to
// use v instead.
func (in *Instr) ReplaceAllUsesWith(v Value) {
	if in == v {
		return
	}
	for _, u := range in.Users() {
		for i, a := range u.args {
			if a == Value(in) {
				u.SetArg(i, v)
			}
		}
	}
}

// ReplaceParamUses rewrites every use of parameter p with v (used by
// inlining and by test harnesses).
func ReplaceParamUses(p *Param, v Value) {
	for _, u := range p.Users() {
		for i, a := range u.args {
			if a == Value(p) {
				u.SetArg(i, v)
			}
		}
	}
}
