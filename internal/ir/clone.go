package ir

// CloneFunc returns a deep copy of f: fresh blocks, instructions and
// parameters, with all internal references remapped. Constants are
// shared (they are immutable). The clone is detached from any module;
// call instructions keep pointing at the original callees.
func CloneFunc(f *Func) *Func {
	nf := &Func{Nam: f.Nam, RetTy: f.RetTy, nextID: f.nextID}
	vmap := map[Value]Value{}
	for _, p := range f.Params {
		np := NewParam(p.Nam, p.Ty)
		np.Idx = p.Idx
		nf.Params = append(nf.Params, np)
		vmap[p] = np
	}
	bmap := map[*Block]*Block{}
	for _, b := range f.Blocks {
		nb := &Block{Nam: b.Nam, parent: nf}
		nf.Blocks = append(nf.Blocks, nb)
		bmap[b] = nb
	}
	// First create all instruction shells so forward references (phis)
	// can be remapped.
	imap := map[*Instr]*Instr{}
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.instrs {
			ni := &Instr{
				Op:      in.Op,
				Ty:      in.Ty,
				Attrs:   in.Attrs,
				Pred:    in.Pred,
				AllocTy: in.AllocTy,
				Callee:  in.Callee,
				Nam:     in.Nam,
				parent:  nb,
			}
			nb.instrs = append(nb.instrs, ni)
			imap[in] = ni
			if !in.Ty.IsVoid() {
				vmap[in] = ni
			}
		}
	}
	// Now wire operands.
	for _, b := range f.Blocks {
		for _, in := range b.instrs {
			ni := imap[in]
			for _, a := range in.Args() {
				if nv, ok := vmap[a]; ok {
					ni.AddArg(nv)
				} else {
					ni.AddArg(a) // constant leaf, shared
				}
			}
			for i := 0; i < in.NumBlocks(); i++ {
				ni.AddBlockArg(bmap[in.BlockArg(i)])
			}
		}
	}
	return nf
}

// CloneModule deep-copies a module. Call instructions are retargeted to
// the cloned callees; globals are deep-copied too.
func CloneModule(m *Module) *Module {
	nm := NewModule()
	for _, g := range m.Globals {
		ng := &Global{Nam: g.Nam, Size: g.Size, Init: append([]byte(nil), g.Init...)}
		nm.AddGlobal(ng)
	}
	gmap := map[*Global]*Global{}
	for i, g := range m.Globals {
		gmap[g] = nm.Globals[i]
	}
	fmap := map[*Func]*Func{}
	for _, f := range m.Funcs {
		nf := CloneFunc(f)
		nm.AddFunc(nf)
		fmap[f] = nf
	}
	for _, nf := range nm.Funcs {
		nf.ForEachInstr(func(in *Instr) {
			if in.Callee != nil {
				if c, ok := fmap[in.Callee]; ok {
					in.Callee = c
				}
			}
			for i, a := range in.Args() {
				if g, ok := a.(*Global); ok {
					if ng, ok := gmap[g]; ok {
						in.SetArg(i, ng)
					}
				}
			}
		})
	}
	return nm
}
