package ir

import (
	"strings"
	"testing"
)

// buildAddCmp builds the paper's Section 2.4 running example:
//
//	%add = add nsw i32 %a, %b
//	%cmp = icmp sgt i32 %add, %a
//	ret i1 %cmp
func buildAddCmp() *Func {
	a, b := NewParam("a", I32), NewParam("b", I32)
	f := NewFunc("f", I1, a, b)
	bb := f.NewBlock("entry")
	bd := NewBuilder(bb)
	add := bd.AddNSW(a, b)
	cmp := bd.ICmp(PredSGT, add, a)
	bd.Ret(cmp)
	return f
}

func TestBuilderAndVerify(t *testing.T) {
	f := buildAddCmp()
	if err := Verify(f, VerifyFreeze); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if n := f.NumInstrs(); n != 3 {
		t.Errorf("NumInstrs = %d, want 3", n)
	}
}

func TestUseLists(t *testing.T) {
	f := buildAddCmp()
	entry := f.Entry()
	add := entry.Instrs()[0]
	cmp := entry.Instrs()[1]
	a := f.Params[0]

	if got := a.NumUses(); got != 2 {
		t.Errorf("a.NumUses = %d, want 2 (add + icmp)", got)
	}
	if got := add.NumUses(); got != 1 {
		t.Errorf("add.NumUses = %d, want 1", got)
	}
	// Replace %add with a constant in all users.
	add.ReplaceAllUsesWith(ConstInt(I32, 7))
	if got := add.NumUses(); got != 0 {
		t.Errorf("after RAUW, add.NumUses = %d, want 0", got)
	}
	if cmp.Arg(0).(*Const).Bits != 7 {
		t.Errorf("icmp operand not rewritten: %v", cmp.Arg(0))
	}
	// a lost the use from add's RAUW? No: add still uses a.
	if got := a.NumUses(); got != 2 {
		t.Errorf("a.NumUses = %d, want 2 (still used by add and icmp)", got)
	}
	entry.Erase(add)
	if got := a.NumUses(); got != 1 {
		t.Errorf("after erasing add, a.NumUses = %d, want 1", got)
	}
}

func TestDuplicateUseCounting(t *testing.T) {
	// %y = add %x, %x — the Section 3.1 shape; x must count 2 uses.
	x := NewParam("x", I32)
	f := NewFunc("g", I32, x)
	bd := NewBuilder(f.NewBlock("entry"))
	y := bd.Add(x, x)
	bd.Ret(y)
	if got := x.NumUses(); got != 2 {
		t.Errorf("x.NumUses = %d, want 2", got)
	}
	y.SetArg(1, ConstInt(I32, 1))
	if got := x.NumUses(); got != 1 {
		t.Errorf("after SetArg, x.NumUses = %d, want 1", got)
	}
}

func TestVerifyRejectsBadIR(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Func
	}{
		{"no blocks", func() *Func { return NewFunc("f", Void) }},
		{"no terminator", func() *Func {
			f := NewFunc("f", Void)
			bd := NewBuilder(f.NewBlock("entry"))
			bd.Add(ConstInt(I32, 1), ConstInt(I32, 2))
			return f
		}},
		{"ret type mismatch", func() *Func {
			f := NewFunc("f", I32)
			bd := NewBuilder(f.NewBlock("entry"))
			bd.Ret(ConstInt(I64, 0))
			return f
		}},
		{"phi after non-phi", func() *Func {
			f := NewFunc("f", I32)
			bb := f.NewBlock("entry")
			bd := NewBuilder(bb)
			add := bd.Add(ConstInt(I32, 1), ConstInt(I32, 2))
			ph := NewInstr(OpPhi, I32)
			ph.Nam = "p"
			ph.AddPhiIncoming(ConstInt(I32, 0), bb)
			bb.Append(ph)
			bd2 := NewBuilder(bb)
			bd2.Ret(add)
			return f
		}},
		{"branch cond not i1", func() *Func {
			f := NewFunc("f", Void)
			b1 := f.NewBlock("entry")
			b2 := f.NewBlock("next")
			in := NewInstr(OpBr, Void, ConstInt(I32, 1))
			in.AddBlockArg(b2)
			in.AddBlockArg(b2)
			b1.Append(in)
			NewBuilder(b2).Ret(nil)
			return f
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := Verify(c.build(), VerifyLegacy); err == nil {
				t.Error("Verify unexpectedly succeeded")
			}
		})
	}
}

func TestVerifyFreezeRejectsUndef(t *testing.T) {
	f := NewFunc("f", I32)
	bd := NewBuilder(f.NewBlock("entry"))
	y := bd.Add(NewUndef(I32), ConstInt(I32, 1))
	bd.Ret(y)
	if err := Verify(f, VerifyLegacy); err != nil {
		t.Errorf("legacy verify should admit undef: %v", err)
	}
	if err := Verify(f, VerifyFreeze); err == nil {
		t.Error("freeze verify should reject undef")
	} else if !strings.Contains(err.Error(), "undef") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		// Figure 1's loop (hoisting example).
		`define void @fig1(i32 %x, i32 %n, ptr %a) {
init:
  br label %head
head:
  %i = phi i32 [ 0, %init ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i32 %x, 1
  %ptr = getelementptr i32, ptr %a, i32 %i
  store i32 %x1, ptr %ptr
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret void
}`,
		// Constants, poison, undef, select, freeze, casts.
		`define i64 @kitchen(i32 %x, i1 %c) {
entry:
  %f = freeze i32 %x
  %s = select i1 %c, i32 %f, i32 poison
  %u = xor i32 %s, undef
  %w = sext i32 %u to i64
  %t = trunc i64 %w to i8
  %z = zext i8 %t to i64
  ret i64 %z
}`,
		// Vectors, bitcast, memory, alloca, call.
		`define i16 @vecmem(ptr %p) {
entry:
  %buf = alloca i16, i32 4
  %v = load <2 x i16>, ptr %p
  %e = extractelement <2 x i16> %v, i32 0
  %v2 = insertelement <2 x i16> %v, i16 7, i32 1
  %b = bitcast <2 x i16> %v2 to i32
  %tr = trunc i32 %b to i16
  store i16 %tr, ptr %buf
  %r = call i16 @vecmem(ptr %buf)
  %sum = add i16 %r, %e
  ret i16 %sum
}`,
		// Unreachable and udiv exact.
		`define i8 @divs(i8 %a, i8 %b) {
entry:
  %q = udiv exact i8 %a, %b
  %c = icmp eq i8 %q, 0
  br i1 %c, label %dead, label %ok
dead:
  unreachable
ok:
  ret i8 %q
}`,
	}
	for i, src := range srcs {
		m, err := ParseModule(src)
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		if err := VerifyModule(m, VerifyLegacy); err != nil {
			t.Fatalf("case %d: verify: %v", i, err)
		}
		printed := m.String()
		m2, err := ParseModule(printed)
		if err != nil {
			t.Fatalf("case %d: reparse of\n%s\nfailed: %v", i, printed, err)
		}
		if got := m2.String(); got != printed {
			t.Errorf("case %d: print/parse/print not stable:\n--- first\n%s\n--- second\n%s", i, printed, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"define i32 @f() { entry:\n ret i64 0 }",                          // checked by verify, not parse: skip marker below
		"define i32 @f() { entry:\n %x = add i32 1 }",                     // missing second operand
		"define i32 @f() { entry:\n ret i32 %nosuch }",                    // undefined value
		"define i32 @f() { entry:\n br label %nosuch }",                   // undefined block
		"define i32 @f() { entry:\n %x = bogus i32 1 }",                   // unknown opcode
		"define i32 @f() { entry:\n %x = icmp zz i32 1, 2\n ret i32 0 }",  // bad predicate
		"@g = global 2 init 1 2 3",                                        // init exceeds size
		"define i32 @f() { entry:\n %r = call i32 @nope()\n ret i32 %r }", // unresolved call
	}
	for i, src := range cases {
		m, err := ParseModule(src)
		if err == nil {
			// The first case parses fine; it must then fail verification.
			if verr := VerifyModule(m, VerifyLegacy); verr == nil {
				t.Errorf("case %d: parse and verify both succeeded for %q", i, src)
			}
		}
	}
}

func TestParseGlobal(t *testing.T) {
	m, err := ParseModule("@tab = global 8 init 1 2 3\n@z = global 4\ndefine void @f() {\nentry:\n ret void\n}")
	if err != nil {
		t.Fatal(err)
	}
	g := m.GlobalByName("tab")
	if g == nil || g.Size != 8 || len(g.Init) != 3 || g.Init[2] != 3 {
		t.Errorf("bad global: %+v", g)
	}
	if z := m.GlobalByName("z"); z == nil || z.Size != 4 || len(z.Init) != 0 {
		t.Errorf("bad global z: %+v", z)
	}
}

func TestCloneFunc(t *testing.T) {
	src := `define i32 @loop(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %head ]
  %inc = add nsw i32 %i, 1
  %c = icmp slt i32 %inc, %n
  br i1 %c, label %head, label %exit
exit:
  ret i32 %i
}`
	f := MustParseFunc(src)
	g := CloneFunc(f)
	if err := Verify(g, VerifyFreeze); err != nil {
		t.Fatalf("clone fails verify: %v", err)
	}
	if f.String() != g.String() {
		t.Errorf("clone prints differently:\n%s\nvs\n%s", f, g)
	}
	// Mutating the clone must not touch the original.
	g.Entry().Instrs()[0].SetBlockArg(0, g.Blocks[2])
	if f.String() == g.String() {
		t.Error("mutation of clone affected original")
	}
	// The clone's instructions must not alias the original's.
	f.ForEachInstr(func(in *Instr) {
		g.ForEachInstr(func(gin *Instr) {
			if in == gin {
				t.Fatal("clone shares an instruction with original")
			}
		})
	})
}

func TestPredHelpers(t *testing.T) {
	for p := PredEQ; p < predMax; p++ {
		if got := p.Inverse().Inverse(); got != p {
			t.Errorf("double inverse of %s = %s", p, got)
		}
		if got := p.Swapped().Swapped(); got != p {
			t.Errorf("double swap of %s = %s", p, got)
		}
	}
	if !PredSLT.IsSigned() || PredULT.IsSigned() || PredEQ.IsSigned() {
		t.Error("IsSigned misclassifies")
	}
	if PredSGT.Inverse() != PredSLE || PredSGT.Swapped() != PredSLT {
		t.Error("Inverse/Swapped wrong for sgt")
	}
}

func TestConstHelpers(t *testing.T) {
	c := ConstInt(I8, 0xff)
	if !c.IsAllOnes() || c.SInt() != -1 {
		t.Errorf("ConstInt(i8 0xff): IsAllOnes=%v SInt=%d", c.IsAllOnes(), c.SInt())
	}
	if got := c.Ident(); got != "-1" {
		t.Errorf("Ident = %q, want -1", got)
	}
	z := ConstInt(I32, 0)
	if !z.IsZero() || z.Ident() != "0" {
		t.Errorf("zero const misbehaves: %v %q", z.IsZero(), z.Ident())
	}
	if ConstBool(true).Bits != 1 || ConstBool(false).Bits != 0 {
		t.Error("ConstBool wrong")
	}
}

func TestPhiIncomingEditing(t *testing.T) {
	f := MustParseFunc(`define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %x = phi i32 [ 1, %a ], [ 2, %b ]
  ret i32 %x
}`)
	m := f.BlockByName("m")
	ph := m.Phis()[0]
	va, ok := ph.PhiIncoming(f.BlockByName("a"))
	if !ok || va.(*Const).Bits != 1 {
		t.Fatalf("PhiIncoming(a) = %v, %v", va, ok)
	}
	ph.RemovePhiIncoming(f.BlockByName("a"))
	if ph.NumArgs() != 1 {
		t.Errorf("after removal, NumArgs = %d", ph.NumArgs())
	}
	if _, ok := ph.PhiIncoming(f.BlockByName("a")); ok {
		t.Error("incoming for a still present")
	}
}

func TestPredsAndSuccs(t *testing.T) {
	f := MustParseFunc(`define void @f(i1 %c) {
entry:
  br i1 %c, label %x, label %y
x:
  br label %z
y:
  br label %z
z:
  ret void
}`)
	z := f.BlockByName("z")
	preds := f.Preds(z)
	if len(preds) != 2 {
		t.Fatalf("Preds(z) = %d blocks", len(preds))
	}
	if succs := f.Entry().Succs(); len(succs) != 2 || succs[0].Nam != "x" || succs[1].Nam != "y" {
		t.Errorf("entry succs wrong: %v", succs)
	}
	// Conditional branch with identical targets counts one predecessor.
	f2 := MustParseFunc(`define void @g(i1 %c) {
entry:
  br i1 %c, label %z, label %z
z:
  ret void
}`)
	if got := len(f2.Preds(f2.BlockByName("z"))); got != 1 {
		t.Errorf("same-target preds = %d, want 1", got)
	}
}

func TestVecConst(t *testing.T) {
	v := NewVecConst([]Value{ConstInt(I8, 1), NewPoison(I8), NewUndef(I8)})
	if !v.Type().Equal(Vec(3, I8)) {
		t.Errorf("type = %s", v.Type())
	}
	want := "<i8 1, i8 poison, i8 undef>"
	if got := v.Ident(); got != want {
		t.Errorf("Ident = %q, want %q", got, want)
	}
}

func TestModuleLookup(t *testing.T) {
	m := MustParseModule(`define void @a() {
entry:
  ret void
}

define void @b() {
entry:
  call void @a()
  ret void
}`)
	if m.FuncByName("a") == nil || m.FuncByName("b") == nil || m.FuncByName("c") != nil {
		t.Error("FuncByName broken")
	}
	call := m.FuncByName("b").Entry().Instrs()[0]
	if call.Callee != m.FuncByName("a") {
		t.Error("call not resolved to @a")
	}
}
