package ir

import "fmt"

// VerifyMode selects which deferred-UB constants the verifier admits.
type VerifyMode uint8

const (
	// VerifyLegacy admits both undef and poison (pre-paper LLVM).
	VerifyLegacy VerifyMode = iota
	// VerifyFreeze rejects undef: under the paper's proposed semantics
	// the only deferred-UB constant is poison, recovered to a stable
	// value with freeze.
	VerifyFreeze
)

// Verify checks structural well-formedness of the function: SSA
// dominance, block/terminator discipline, operand typing, and (for
// VerifyFreeze) absence of undef.
func Verify(f *Func, mode VerifyMode) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("@%s: function has no blocks", f.Nam)
	}
	names := map[string]bool{}
	for _, p := range f.Params {
		if names[p.Nam] {
			return fmt.Errorf("@%s: duplicate name %%%s", f.Nam, p.Nam)
		}
		names[p.Nam] = true
	}
	defined := map[Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	blockSeen := map[string]bool{}
	for _, b := range f.Blocks {
		if blockSeen[b.Nam] {
			return fmt.Errorf("@%s: duplicate block label %q", f.Nam, b.Nam)
		}
		blockSeen[b.Nam] = true
		if b.parent != f {
			return fmt.Errorf("@%s: block %s has wrong parent", f.Nam, b.Nam)
		}
		if len(b.instrs) == 0 {
			return fmt.Errorf("@%s: block %s is empty", f.Nam, b.Nam)
		}
		if b.Terminator() == nil {
			return fmt.Errorf("@%s: block %s does not end in a terminator", f.Nam, b.Nam)
		}
		seenNonPhi := false
		for i, in := range b.instrs {
			if in.parent != b {
				return fmt.Errorf("@%s: instruction %s has wrong parent", f.Nam, in)
			}
			if in.Op.IsTerminator() && i != len(b.instrs)-1 {
				return fmt.Errorf("@%s: terminator %s is not last in block %s", f.Nam, in, b.Nam)
			}
			if in.Op == OpPhi {
				if seenNonPhi {
					return fmt.Errorf("@%s: phi %%%s after non-phi in block %s", f.Nam, in.Nam, b.Nam)
				}
			} else {
				seenNonPhi = true
			}
			if !in.Ty.IsVoid() {
				if in.Nam == "" {
					return fmt.Errorf("@%s: unnamed value-producing instruction %s", f.Nam, in)
				}
				if names[in.Nam] {
					return fmt.Errorf("@%s: duplicate name %%%s", f.Nam, in.Nam)
				}
				names[in.Nam] = true
			}
			if err := verifyInstr(f, in, mode); err != nil {
				return err
			}
			defined[in] = true
		}
	}
	// All operands must be defined somewhere in the function (full
	// dominance checking lives in analysis; here we catch dangling
	// references and cross-function leaks).
	for _, b := range f.Blocks {
		for _, in := range b.instrs {
			for _, a := range in.Args() {
				if IsConstLeaf(a) {
					continue
				}
				if !defined[a] {
					return fmt.Errorf("@%s: %s uses value %s not defined in this function", f.Nam, in, a.Ident())
				}
			}
			for i := 0; i < in.NumBlocks(); i++ {
				tb := in.BlockArg(i)
				if tb.parent != f {
					return fmt.Errorf("@%s: %s references block from another function", f.Nam, in)
				}
				if f.BlockByName(tb.Nam) != tb {
					return fmt.Errorf("@%s: %s references detached block %%%s", f.Nam, in, tb.Nam)
				}
			}
		}
	}
	// Phi nodes must have exactly one incoming per predecessor.
	for _, b := range f.Blocks {
		preds := f.Preds(b)
		for _, ph := range b.Phis() {
			if ph.NumArgs() != len(preds) {
				return fmt.Errorf("@%s: phi %%%s in %s has %d incomings, block has %d predecessors",
					f.Nam, ph.Nam, b.Nam, ph.NumArgs(), len(preds))
			}
			for _, p := range preds {
				if _, ok := ph.PhiIncoming(p); !ok {
					return fmt.Errorf("@%s: phi %%%s missing incoming for predecessor %s", f.Nam, ph.Nam, p.Nam)
				}
			}
		}
	}
	return nil
}

func verifyInstr(f *Func, in *Instr, mode VerifyMode) error {
	if mode == VerifyFreeze {
		for _, a := range in.Args() {
			if _, isUndef := a.(*Undef); isUndef {
				return fmt.Errorf("@%s: %s uses undef, which does not exist under the freeze semantics", f.Nam, in)
			}
			if vc, ok := a.(*VecConst); ok {
				for _, e := range vc.Elems {
					if _, isUndef := e.(*Undef); isUndef {
						return fmt.Errorf("@%s: %s uses a vector constant with an undef lane", f.Nam, in)
					}
				}
			}
		}
	}
	errf := func(format string, args ...any) error {
		return fmt.Errorf("@%s: %s: %s", f.Nam, in, fmt.Sprintf(format, args...))
	}
	switch {
	case in.Op.IsBinop():
		if in.NumArgs() != 2 {
			return errf("binop needs 2 operands")
		}
		if !in.Arg(0).Type().Equal(in.Arg(1).Type()) || !in.Arg(0).Type().Equal(in.Ty) {
			return errf("binop type mismatch")
		}
		if et := in.Ty.ElemType(); !et.IsInt() {
			return errf("binop on non-integer type %s", in.Ty)
		}
	case in.Op == OpICmp:
		if in.NumArgs() != 2 || !in.Arg(0).Type().Equal(in.Arg(1).Type()) {
			return errf("icmp operand mismatch")
		}
		want := I1
		if in.Arg(0).Type().IsVec() {
			want = Vec(in.Arg(0).Type().Len, I1)
		}
		if !in.Ty.Equal(want) {
			return errf("icmp result must be %s", want)
		}
		if in.Pred >= predMax {
			return errf("bad predicate")
		}
	case in.Op == OpSelect:
		if in.NumArgs() != 3 {
			return errf("select needs 3 operands")
		}
		ct := in.Arg(0).Type()
		if !ct.Equal(I1) && !(ct.IsVec() && ct.ElemType().Equal(I1)) {
			return errf("select condition must be i1 or vector of i1")
		}
		if !in.Arg(1).Type().Equal(in.Arg(2).Type()) || !in.Arg(1).Type().Equal(in.Ty) {
			return errf("select arm type mismatch")
		}
		if ct.IsVec() && (!in.Ty.IsVec() || in.Ty.Len != ct.Len) {
			return errf("vector select lane mismatch")
		}
	case in.Op == OpPhi:
		if in.NumArgs() != in.NumBlocks() || in.NumArgs() == 0 {
			return errf("phi incoming arity mismatch")
		}
		for _, a := range in.Args() {
			if !a.Type().Equal(in.Ty) {
				return errf("phi incoming type mismatch")
			}
		}
	case in.Op == OpFreeze:
		if in.NumArgs() != 1 || !in.Arg(0).Type().Equal(in.Ty) {
			return errf("freeze type mismatch")
		}
	case in.Op == OpAlloca:
		if in.NumArgs() != 1 {
			return errf("alloca needs a count")
		}
		if _, ok := in.Arg(0).(*Const); !ok {
			return errf("alloca count must be constant")
		}
		if in.AllocTy.IsVoid() {
			return errf("alloca of void")
		}
	case in.Op == OpLoad:
		if in.NumArgs() != 1 || !in.Arg(0).Type().IsPtr() {
			return errf("load needs a pointer")
		}
		if in.Ty.IsVoid() {
			return errf("load of void")
		}
	case in.Op == OpStore:
		if in.NumArgs() != 2 || !in.Arg(1).Type().IsPtr() {
			return errf("store needs value, pointer")
		}
	case in.Op == OpGEP:
		if in.NumArgs() != 2 || !in.Arg(0).Type().IsPtr() {
			return errf("gep needs pointer, index")
		}
		if !in.Arg(1).Type().IsInt() {
			return errf("gep index must be integer")
		}
	case in.Op == OpZExt, in.Op == OpSExt:
		if in.NumArgs() != 1 {
			return errf("cast needs 1 operand")
		}
		from, to := in.Arg(0).Type(), in.Ty
		if from.NumElems() != to.NumElems() || !from.ElemType().IsInt() || !to.ElemType().IsInt() {
			return errf("ext between incompatible types")
		}
		if from.ElemType().Bits >= to.ElemType().Bits {
			return errf("ext must widen")
		}
	case in.Op == OpTrunc:
		if in.NumArgs() != 1 {
			return errf("cast needs 1 operand")
		}
		from, to := in.Arg(0).Type(), in.Ty
		if from.NumElems() != to.NumElems() || !from.ElemType().IsInt() || !to.ElemType().IsInt() {
			return errf("trunc between incompatible types")
		}
		if from.ElemType().Bits <= to.ElemType().Bits {
			return errf("trunc must narrow")
		}
	case in.Op == OpBitcast:
		if in.NumArgs() != 1 {
			return errf("cast needs 1 operand")
		}
		if in.Arg(0).Type().Bitwidth() != in.Ty.Bitwidth() {
			return errf("bitcast bitwidth mismatch")
		}
	case in.Op == OpExtractElement:
		if in.NumArgs() != 2 || !in.Arg(0).Type().IsVec() {
			return errf("extractelement needs vector, index")
		}
		if !in.Ty.Equal(in.Arg(0).Type().ElemType()) {
			return errf("extractelement result type mismatch")
		}
	case in.Op == OpInsertElement:
		if in.NumArgs() != 3 || !in.Arg(0).Type().IsVec() {
			return errf("insertelement needs vector, scalar, index")
		}
		if !in.Ty.Equal(in.Arg(0).Type()) || !in.Arg(1).Type().Equal(in.Ty.ElemType()) {
			return errf("insertelement type mismatch")
		}
	case in.Op == OpBr:
		switch in.NumArgs() {
		case 0:
			if in.NumBlocks() != 1 {
				return errf("unconditional br needs 1 target")
			}
		case 1:
			if in.NumBlocks() != 2 {
				return errf("conditional br needs 2 targets")
			}
			if !in.Arg(0).Type().Equal(I1) {
				return errf("br condition must be i1")
			}
		default:
			return errf("br has too many operands")
		}
	case in.Op == OpRet:
		switch in.NumArgs() {
		case 0:
			if !f.RetTy.IsVoid() {
				return errf("ret void in non-void function")
			}
		case 1:
			if !in.Arg(0).Type().Equal(f.RetTy) {
				return errf("ret type %s does not match function return %s", in.Arg(0).Type(), f.RetTy)
			}
		default:
			return errf("ret has too many operands")
		}
	case in.Op == OpUnreachable:
		if in.NumArgs() != 0 {
			return errf("unreachable takes no operands")
		}
	case in.Op == OpCall:
		if in.Callee == nil {
			return errf("call with no callee")
		}
		if len(in.Callee.Params) != in.NumArgs() {
			return errf("call arity mismatch")
		}
		for i, p := range in.Callee.Params {
			if !p.Ty.Equal(in.Arg(i).Type()) {
				return errf("call argument %d type mismatch", i)
			}
		}
		if !in.Ty.Equal(in.Callee.RetTy) {
			return errf("call result type mismatch")
		}
	default:
		return errf("unknown opcode")
	}
	return nil
}

// VerifyModule verifies every function in the module.
func VerifyModule(m *Module, mode VerifyMode) error {
	for _, f := range m.Funcs {
		if err := Verify(f, mode); err != nil {
			return err
		}
	}
	return nil
}
