package ir

import "testing"

// diamond builds:
//
//	entry: c = icmp eq p0, 0; br c, t, e
//	t:     br j
//	e:     br j
//	j:     ph = phi [p0, t], [p1, e]; ret ph
func diamond() (*Func, *Block, *Block, *Block, *Block) {
	p0 := NewParam("p0", I32)
	p1 := NewParam("p1", I32)
	f := NewFunc("d", I32, p0, p1)
	entry := f.NewBlock("entry")
	tb := f.NewBlock("t")
	eb := f.NewBlock("e")
	jb := f.NewBlock("j")

	cmp := NewInstr(OpICmp, I1, p0, ConstInt(I32, 0))
	cmp.Pred = PredEQ
	cmp.Nam = "c"
	entry.Append(cmp)
	br := NewInstr(OpBr, Void, cmp)
	br.AddBlockArg(tb)
	br.AddBlockArg(eb)
	entry.Append(br)

	for _, b := range []*Block{tb, eb} {
		ab := NewInstr(OpBr, Void)
		ab.AddBlockArg(jb)
		b.Append(ab)
	}
	ph := NewInstr(OpPhi, I32)
	ph.Nam = "ph"
	ph.AddPhiIncoming(p0, tb)
	ph.AddPhiIncoming(p1, eb)
	jb.Append(ph)
	jb.Append(NewInstr(OpRet, Void, ph))
	return f, entry, tb, eb, jb
}

func TestDropSuccessorFixesPhis(t *testing.T) {
	f, entry, tb, _, jb := diamond()
	if !DropSuccessor(entry, 0) { // keep the true arm t, drop e
		t.Fatal("DropSuccessor refused a conditional branch")
	}
	term := entry.Terminator()
	if term == nil || term.IsConditionalBr() || term.BlockArg(0) != tb {
		t.Fatalf("entry terminator not rewritten to br t: %v", term)
	}
	if removed := RemoveUnreachableBlocks(f); removed != 1 {
		t.Fatalf("removed %d blocks, want 1 (the dropped arm)", removed)
	}
	ph := jb.Phis()[0]
	if ph.NumArgs() != 1 {
		t.Fatalf("phi kept %d incomings, want 1 after the arm vanished", ph.NumArgs())
	}
	if err := Verify(f, VerifyFreeze); err != nil {
		t.Fatalf("function invalid after surgery: %v", err)
	}
}

func TestDropSuccessorSameTargetBothArms(t *testing.T) {
	f, entry, tb, eb, jb := diamond()
	// Rewrite the diamond into a degenerate condbr with both arms = t
	// first (phi loses the e incoming).
	term := entry.Terminator()
	term.SetBlockArg(1, tb)
	for _, ph := range jb.Phis() {
		ph.RemovePhiIncoming(eb)
	}
	if !DropSuccessor(entry, 1) {
		t.Fatal("DropSuccessor refused the degenerate branch")
	}
	// Both arms were t: the kept edge's phi incoming must survive.
	if got := jb.Phis()[0].NumArgs(); got != 1 {
		t.Fatalf("phi has %d incomings, want 1", got)
	}
	RemoveUnreachableBlocks(f)
	if err := Verify(f, VerifyFreeze); err != nil {
		t.Fatalf("invalid after degenerate drop: %v", err)
	}
}

func TestDeleteInstrReplacesUses(t *testing.T) {
	p0 := NewParam("p0", I32)
	f := NewFunc("g", I32, p0)
	b := f.NewBlock("entry")
	a := NewInstr(OpAdd, I32, p0, ConstInt(I32, 1))
	a.Nam = "a"
	b.Append(a)
	x := NewInstr(OpXor, I32, a, a)
	x.Nam = "x"
	b.Append(x)
	b.Append(NewInstr(OpRet, Void, x))

	DeleteInstr(a, p0)
	if x.Arg(0) != Value(p0) || x.Arg(1) != Value(p0) {
		t.Fatalf("uses not rewritten to p0: %v, %v", x.Arg(0), x.Arg(1))
	}
	if f.NumInstrs() != 2 {
		t.Fatalf("NumInstrs = %d, want 2", f.NumInstrs())
	}
	if err := Verify(f, VerifyFreeze); err != nil {
		t.Fatalf("invalid after delete: %v", err)
	}
}

func TestDeleteInstrPanicsOnTerminator(t *testing.T) {
	f, entry, _, _, _ := diamond()
	defer func() {
		if recover() == nil {
			t.Fatal("deleting a terminator did not panic")
		}
	}()
	DeleteInstr(entry.Terminator(), nil)
	_ = f
}

func TestRemoveUnreachableBlocksCascade(t *testing.T) {
	// entry -> ret; a -> b -> a form an unreachable cycle.
	p0 := NewParam("p0", I32)
	f := NewFunc("h", I32, p0)
	entry := f.NewBlock("entry")
	entry.Append(NewInstr(OpRet, Void, p0))
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	ab := NewInstr(OpBr, Void)
	ab.AddBlockArg(b)
	a.Append(ab)
	ba := NewInstr(OpBr, Void)
	ba.AddBlockArg(a)
	b.Append(ba)

	if removed := RemoveUnreachableBlocks(f); removed != 2 {
		t.Fatalf("removed %d, want the whole unreachable cycle (2)", removed)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("%d blocks remain, want 1", len(f.Blocks))
	}
	if err := Verify(f, VerifyFreeze); err != nil {
		t.Fatalf("invalid after sweep: %v", err)
	}
}
