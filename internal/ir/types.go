// Package ir defines a typed SSA intermediate representation in the style
// of LLVM IR, covering the instruction set of Figure 4 of "Taming
// Undefined Behavior in LLVM" (PLDI 2017) plus the handful of
// instructions (alloca, call, ret, unreachable, sub, mul, rem, xor, more
// icmp predicates) any realistic optimizer pipeline needs.
//
// The IR is deliberately semantics-free: poison, undef and freeze appear
// here only as syntax. Their meaning — under the paper's legacy
// (undef+poison) semantics or the proposed (poison+freeze) semantics —
// is given by package core.
package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// TypeKind discriminates the IR type universe: arbitrary-bitwidth
// integers iN, pointers ty*, fixed-length vectors <n x elem>, and the
// void pseudo-type for instructions that produce no value.
type TypeKind uint8

const (
	IntKind TypeKind = iota
	PtrKind
	VecKind
	VoidKind
)

// Type describes an IR type. Types are small immutable values and are
// compared with Equal (or, for interned scalar types, ==).
//
// Following Figure 5 of the paper, pointers are 32 bits wide.
type Type struct {
	Kind TypeKind
	// Bits is the width of an IntKind type. It is 32 for PtrKind (the
	// paper's Mem maps 32-bit addresses) and 0 for VoidKind. For VecKind
	// it is the width of the element type.
	Bits uint
	// Elem is the element type kind for VecKind (IntKind or PtrKind).
	Elem TypeKind
	// Len is the number of vector elements for VecKind.
	Len uint
}

// PtrBits is the width of a pointer, per Figure 5 of the paper.
const PtrBits = 32

// MaxIntBits is the largest integer width the IR supports. 64 keeps
// values representable in a uint64 while covering every width the paper
// uses (i1 through i64).
const MaxIntBits = 64

// Int returns the integer type iN.
func Int(bits uint) Type {
	if bits == 0 || bits > MaxIntBits {
		panic(fmt.Sprintf("ir.Int: unsupported bitwidth %d", bits))
	}
	return Type{Kind: IntKind, Bits: bits}
}

// Common interned types.
var (
	I1   = Int(1)
	I2   = Int(2)
	I8   = Int(8)
	I16  = Int(16)
	I32  = Int(32)
	I64  = Int(64)
	Ptr  = Type{Kind: PtrKind, Bits: PtrBits}
	Void = Type{Kind: VoidKind}
)

// Vec returns the vector type <n x elem>. The element must be an integer
// or pointer type.
func Vec(n uint, elem Type) Type {
	if n == 0 {
		panic("ir.Vec: zero-length vector")
	}
	switch elem.Kind {
	case IntKind, PtrKind:
		return Type{Kind: VecKind, Bits: elem.Bits, Elem: elem.Kind, Len: n}
	}
	panic("ir.Vec: element must be integer or pointer")
}

// IsInt reports whether t is an integer type.
func (t Type) IsInt() bool { return t.Kind == IntKind }

// IsPtr reports whether t is a pointer type.
func (t Type) IsPtr() bool { return t.Kind == PtrKind }

// IsVec reports whether t is a vector type.
func (t Type) IsVec() bool { return t.Kind == VecKind }

// IsVoid reports whether t is the void pseudo-type.
func (t Type) IsVoid() bool { return t.Kind == VoidKind }

// ElemType returns the element type of a vector type, or t itself for a
// scalar type. This mirrors LLVM's getScalarType.
func (t Type) ElemType() Type {
	if t.Kind != VecKind {
		return t
	}
	return Type{Kind: t.Elem, Bits: t.Bits}
}

// NumElems returns the number of lanes: Len for vectors, 1 for scalars,
// 0 for void.
func (t Type) NumElems() uint {
	switch t.Kind {
	case VecKind:
		return t.Len
	case VoidKind:
		return 0
	}
	return 1
}

// Bitwidth returns the total width in bits of a value of type t, per the
// paper's bitwidth(ty): lane width times lane count.
func (t Type) Bitwidth() uint {
	return t.ElemType().Bits * t.NumElems()
}

// Equal reports whether two types are identical.
func (t Type) Equal(u Type) bool { return t == u }

// String renders the type in LLVM-like syntax: i32, ptr, <4 x i8>.
func (t Type) String() string {
	switch t.Kind {
	case IntKind:
		// Interpreter behaviour-set keys render types on every return,
		// so the common widths are worth returning allocation-free.
		switch t.Bits {
		case 1:
			return "i1"
		case 2:
			return "i2"
		case 4:
			return "i4"
		case 8:
			return "i8"
		case 16:
			return "i16"
		case 32:
			return "i32"
		case 64:
			return "i64"
		}
		return "i" + strconv.FormatUint(uint64(t.Bits), 10)
	case PtrKind:
		return "ptr"
	case VecKind:
		var b strings.Builder
		b.WriteByte('<')
		b.WriteString(strconv.FormatUint(uint64(t.Len), 10))
		b.WriteString(" x ")
		b.WriteString(t.ElemType().String())
		b.WriteByte('>')
		return b.String()
	case VoidKind:
		return "void"
	}
	return "<invalid type>"
}

// ParseType parses a type written in String's syntax. It accepts "iN",
// "ptr", "void", and "<N x elem>".
func ParseType(s string) (Type, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "ptr":
		return Ptr, nil
	case s == "void":
		return Void, nil
	case strings.HasPrefix(s, "i"):
		var bits uint
		if _, err := fmt.Sscanf(s, "i%d", &bits); err != nil {
			return Type{}, fmt.Errorf("ir: bad integer type %q", s)
		}
		if bits == 0 || bits > MaxIntBits {
			return Type{}, fmt.Errorf("ir: unsupported bitwidth in %q", s)
		}
		return Int(bits), nil
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		inner := strings.TrimSuffix(strings.TrimPrefix(s, "<"), ">")
		parts := strings.SplitN(inner, "x", 2)
		if len(parts) != 2 {
			return Type{}, fmt.Errorf("ir: bad vector type %q", s)
		}
		var n uint
		if _, err := fmt.Sscanf(strings.TrimSpace(parts[0]), "%d", &n); err != nil || n == 0 {
			return Type{}, fmt.Errorf("ir: bad vector length in %q", s)
		}
		elem, err := ParseType(parts[1])
		if err != nil {
			return Type{}, err
		}
		if elem.IsVec() || elem.IsVoid() {
			return Type{}, fmt.Errorf("ir: bad vector element in %q", s)
		}
		return Vec(n, elem), nil
	}
	return Type{}, fmt.Errorf("ir: unrecognized type %q", s)
}
