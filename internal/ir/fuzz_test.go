package ir

import (
	"testing"
)

// FuzzParseModule checks the parser never panics and that everything
// it accepts survives a print/reparse round trip. Run with `go test
// -fuzz=FuzzParseModule ./internal/ir` for continuous fuzzing; the
// seed corpus runs as a normal test.
func FuzzParseModule(f *testing.F) {
	seeds := []string{
		"",
		"define i32 @f() {\nentry:\n  ret i32 0\n}",
		"define i1 @f(i2 %a, i2 %b) {\nentry:\n  %x = add nsw i2 %a, %b\n  %c = icmp sgt i2 %x, %a\n  ret i1 %c\n}",
		"@g = global 8 init 1 2 3\ndefine i8 @f() {\nentry:\n  %v = load i8, ptr @g\n  ret i8 %v\n}",
		"define void @f(i1 %c) {\nentry:\n  br i1 %c, label %a, label %a\na:\n  ret void\n}",
		"define <2 x i8> @f() {\nentry:\n  ret <2 x i8> <i8 1, i8 poison>\n}",
		"define i8 @f() {\nentry:\n  %x = freeze i8 undef\n  ret i8 %x\n}",
		"define i32 @f() {\nentry:\n  %p = alloca i32, i32 1\n  store i32 7, ptr %p\n  %v = load i32, ptr %p\n  ret i32 %v\n}",
		"define i32 @r(i32 %n) {\nentry:\n  %x = call i32 @r(i32 %n)\n  ret i32 %x\n}",
		"; comment\ndefine i64 @f(i64 %x) {\nentry:\n  %s = sext i64...", // malformed on purpose
		"define i32 @f() { entry:\n %x = phi i32 [ 1, %entry ]\n ret i32 %x }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		m, err := ParseModule(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := m.String()
		m2, err := ParseModule(printed)
		if err != nil {
			// Only verified modules are guaranteed to round-trip: the
			// parser admits some structurally invalid shapes that the
			// verifier rejects (e.g. empty blocks at print time).
			if verr := VerifyModule(m, VerifyLegacy); verr == nil {
				t.Fatalf("verified module failed to reparse: %v\n%s", err, printed)
			}
			return
		}
		if got := m2.String(); got != printed {
			if verr := VerifyModule(m, VerifyLegacy); verr == nil {
				t.Fatalf("verified module round trip unstable:\n--- first\n%s\n--- second\n%s", printed, got)
			}
		}
	})
}

// FuzzParseType checks type parsing against its printer.
func FuzzParseType(f *testing.F) {
	for _, s := range []string{"i1", "i64", "ptr", "void", "<4 x i8>", "<16 x ptr>", "<0 x i1>", "i999", "x"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ty, err := ParseType(s)
		if err != nil {
			return
		}
		re, err := ParseType(ty.String())
		if err != nil || !re.Equal(ty) {
			t.Fatalf("type round trip failed for %q -> %s", s, ty)
		}
	})
}

// TestParserTorture exercises syntax corners directly.
func TestParserTorture(t *testing.T) {
	cases := []struct {
		src string
		ok  bool
	}{
		{"define i32 @f() {\nentry:\n  ret i32 2147483647\n}", true},
		{"define i64 @f() {\nentry:\n  ret i64 -9223372036854775808\n}", true},
		{"define i64 @f() {\nentry:\n  ret i64 18446744073709551615\n}", true},
		{"define i1 @f() {\nentry:\n  ret i1 true\n}", true},
		{"define i1 @f() {\nentry:\n  ret i1 false\n}", true},
		{"define void @f() {\nentry:\n  ret void\n}", true},
		// Names with dots and underscores.
		{"define i8 @my.fn_2() {\nentry:\n  %x.y_1 = add i8 1, 2\n  ret i8 %x.y_1\n}", true},
		// Block named like an opcode mnemonic.
		{"define void @f() {\nadd:\n  ret void\n}", true},
		// Deep nesting of vector syntax in operands.
		{"define <2 x i1> @f() {\nentry:\n  ret <2 x i1> <i1 1, i1 undef>\n}", true},
		// Duplicate value name.
		{"define i8 @f() {\nentry:\n  %x = add i8 1, 1\n  %x = add i8 2, 2\n  ret i8 %x\n}", false},
		// Duplicate block label.
		{"define void @f() {\na:\n  br label %a\na:\n  ret void\n}", false},
		// Mismatched phi types are a verifier error, not a crash.
		{"define i8 @f(i1 %c) {\nentry:\n  br i1 %c, label %x, label %x\nx:\n  %p = phi i8 [ 1, %entry ]\n  ret i8 %p\n}", true},
	}
	for i, c := range cases {
		_, err := ParseModule(c.src)
		if c.ok && err != nil {
			t.Errorf("case %d: unexpected error: %v\n%s", i, err, c.src)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d: expected error for\n%s", i, c.src)
		}
	}
}
