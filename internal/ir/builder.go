package ir

import "fmt"

// Builder provides a convenient, type-checked way to append instructions
// to a basic block. Every value-producing method names the result with
// a fresh SSA name derived from the opcode.
type Builder struct {
	fn  *Func
	blk *Block
}

// NewBuilder returns a builder positioned at the end of block b.
func NewBuilder(b *Block) *Builder {
	return &Builder{fn: b.parent, blk: b}
}

// Block returns the builder's current insertion block.
func (bd *Builder) Block() *Block { return bd.blk }

// SetBlock moves the insertion point to the end of block b.
func (bd *Builder) SetBlock(b *Block) {
	bd.blk = b
	bd.fn = b.parent
}

// Func returns the function being built.
func (bd *Builder) Func() *Func { return bd.fn }

func (bd *Builder) emit(in *Instr) *Instr {
	if !in.Ty.IsVoid() && in.Nam == "" {
		in.Nam = bd.fn.GenName(in.Op.String())
	}
	bd.blk.Append(in)
	return in
}

// Named assigns an explicit result name to the most natural use pattern:
// b.Named("x", b.Add(...)).
func (bd *Builder) Named(name string, in *Instr) *Instr {
	in.Nam = name
	return in
}

// Binop appends a binary arithmetic instruction with attributes.
func (bd *Builder) Binop(op Op, attrs Attrs, x, y Value) *Instr {
	if !op.IsBinop() {
		panic(fmt.Sprintf("ir: Binop with non-binop opcode %s", op))
	}
	if !x.Type().Equal(y.Type()) {
		panic(fmt.Sprintf("ir: binop operand type mismatch %s vs %s", x.Type(), y.Type()))
	}
	in := NewInstr(op, x.Type(), x, y)
	in.Attrs = attrs
	return bd.emit(in)
}

// Add appends an add (no attributes).
func (bd *Builder) Add(x, y Value) *Instr { return bd.Binop(OpAdd, 0, x, y) }

// AddNSW appends an add nsw.
func (bd *Builder) AddNSW(x, y Value) *Instr { return bd.Binop(OpAdd, NSW, x, y) }

// Sub appends a sub.
func (bd *Builder) Sub(x, y Value) *Instr { return bd.Binop(OpSub, 0, x, y) }

// Mul appends a mul.
func (bd *Builder) Mul(x, y Value) *Instr { return bd.Binop(OpMul, 0, x, y) }

// UDiv appends a udiv.
func (bd *Builder) UDiv(x, y Value) *Instr { return bd.Binop(OpUDiv, 0, x, y) }

// SDiv appends an sdiv.
func (bd *Builder) SDiv(x, y Value) *Instr { return bd.Binop(OpSDiv, 0, x, y) }

// And appends an and.
func (bd *Builder) And(x, y Value) *Instr { return bd.Binop(OpAnd, 0, x, y) }

// Or appends an or.
func (bd *Builder) Or(x, y Value) *Instr { return bd.Binop(OpOr, 0, x, y) }

// Xor appends an xor.
func (bd *Builder) Xor(x, y Value) *Instr { return bd.Binop(OpXor, 0, x, y) }

// Shl appends a shl.
func (bd *Builder) Shl(x, y Value) *Instr { return bd.Binop(OpShl, 0, x, y) }

// ICmp appends an integer comparison; the result is i1 (or a vector of
// i1 for vector operands).
func (bd *Builder) ICmp(p Pred, x, y Value) *Instr {
	if !x.Type().Equal(y.Type()) {
		panic(fmt.Sprintf("ir: icmp operand type mismatch %s vs %s", x.Type(), y.Type()))
	}
	rt := I1
	if x.Type().IsVec() {
		rt = Vec(x.Type().Len, I1)
	}
	in := NewInstr(OpICmp, rt, x, y)
	in.Pred = p
	return bd.emit(in)
}

// Select appends a select instruction.
func (bd *Builder) Select(cond, x, y Value) *Instr {
	if !x.Type().Equal(y.Type()) {
		panic("ir: select arm type mismatch")
	}
	return bd.emit(NewInstr(OpSelect, x.Type(), cond, x, y))
}

// Phi appends an empty phi of the given type; populate it with
// AddPhiIncoming.
func (bd *Builder) Phi(ty Type) *Instr {
	ph := NewInstr(OpPhi, ty)
	if ph.Nam == "" {
		ph.Nam = bd.fn.GenName("phi")
	}
	// Phis must precede non-phi instructions.
	if fn := bd.blk.FirstNonPhi(); fn != nil {
		ph.parent = nil
		bd.blk.InsertBefore(ph, fn)
		return ph
	}
	bd.blk.Append(ph)
	return ph
}

// Freeze appends the paper's freeze instruction.
func (bd *Builder) Freeze(x Value) *Instr {
	return bd.emit(NewInstr(OpFreeze, x.Type(), x))
}

// Alloca appends a stack allocation of count elements of type elem; the
// result is a pointer.
func (bd *Builder) Alloca(elem Type, count *Const) *Instr {
	in := NewInstr(OpAlloca, Ptr, count)
	in.AllocTy = elem
	return bd.emit(in)
}

// Load appends a typed load through ptr.
func (bd *Builder) Load(ty Type, ptr Value) *Instr {
	if !ptr.Type().IsPtr() {
		panic("ir: load from non-pointer")
	}
	return bd.emit(NewInstr(OpLoad, ty, ptr))
}

// Store appends a store of val through ptr.
func (bd *Builder) Store(val, ptr Value) *Instr {
	if !ptr.Type().IsPtr() {
		panic("ir: store to non-pointer")
	}
	return bd.emit(NewInstr(OpStore, Void, val, ptr))
}

// GEP appends a getelementptr computing base + idx*sizeof(elem).
func (bd *Builder) GEP(elem Type, base, idx Value) *Instr {
	in := NewInstr(OpGEP, Ptr, base, idx)
	in.AllocTy = elem
	return bd.emit(in)
}

// GEPInbounds appends a gep with the inbounds-style NSW attribute: the
// address computation yields poison on overflow.
func (bd *Builder) GEPInbounds(elem Type, base, idx Value) *Instr {
	in := bd.GEP(elem, base, idx)
	in.Attrs = NSW
	return in
}

// Cast appends a conversion instruction to type to.
func (bd *Builder) Cast(op Op, x Value, to Type) *Instr {
	if !op.IsCast() {
		panic("ir: Cast with non-cast opcode")
	}
	return bd.emit(NewInstr(op, to, x))
}

// ZExt appends a zero-extension.
func (bd *Builder) ZExt(x Value, to Type) *Instr { return bd.Cast(OpZExt, x, to) }

// SExt appends a sign-extension.
func (bd *Builder) SExt(x Value, to Type) *Instr { return bd.Cast(OpSExt, x, to) }

// Trunc appends a truncation.
func (bd *Builder) Trunc(x Value, to Type) *Instr { return bd.Cast(OpTrunc, x, to) }

// Bitcast appends a bit-pattern-preserving cast; source and destination
// must have equal total bitwidth.
func (bd *Builder) Bitcast(x Value, to Type) *Instr {
	if x.Type().Bitwidth() != to.Bitwidth() {
		panic("ir: bitcast bitwidth mismatch")
	}
	return bd.Cast(OpBitcast, x, to)
}

// ExtractElement appends a vector lane read.
func (bd *Builder) ExtractElement(vec Value, idx *Const) *Instr {
	if !vec.Type().IsVec() {
		panic("ir: extractelement from non-vector")
	}
	return bd.emit(NewInstr(OpExtractElement, vec.Type().ElemType(), vec, idx))
}

// InsertElement appends a vector lane write, yielding the new vector.
func (bd *Builder) InsertElement(vec, scalar Value, idx *Const) *Instr {
	if !vec.Type().IsVec() {
		panic("ir: insertelement into non-vector")
	}
	return bd.emit(NewInstr(OpInsertElement, vec.Type(), vec, scalar, idx))
}

// Br appends an unconditional branch.
func (bd *Builder) Br(dst *Block) *Instr {
	in := NewInstr(OpBr, Void)
	in.AddBlockArg(dst)
	return bd.emit(in)
}

// CondBr appends a conditional branch on an i1 condition.
func (bd *Builder) CondBr(cond Value, ifTrue, ifFalse *Block) *Instr {
	in := NewInstr(OpBr, Void, cond)
	in.AddBlockArg(ifTrue)
	in.AddBlockArg(ifFalse)
	return bd.emit(in)
}

// Ret appends a return; pass nil for void functions.
func (bd *Builder) Ret(v Value) *Instr {
	var in *Instr
	if v == nil {
		in = NewInstr(OpRet, Void)
	} else {
		in = NewInstr(OpRet, Void, v)
	}
	return bd.emit(in)
}

// Unreachable appends an unreachable terminator.
func (bd *Builder) Unreachable() *Instr { return bd.emit(NewInstr(OpUnreachable, Void)) }

// Call appends a call to callee.
func (bd *Builder) Call(callee *Func, args ...Value) *Instr {
	in := NewInstr(OpCall, callee.RetTy, args...)
	in.Callee = callee
	return bd.emit(in)
}
