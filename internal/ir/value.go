package ir

import (
	"fmt"
	"strings"
)

// Value is anything that can appear as an instruction operand: an
// instruction result, a function parameter, or one of the constant
// leaves (integer constant, undef, poison, vector constant, global
// address).
type Value interface {
	// Type returns the IR type of the value.
	Type() Type
	// Ident renders the operand as it appears in textual IR, e.g.
	// "%x", "7", "poison", "undef", "@g", "<i8 1, i8 poison>".
	Ident() string

	addUse(u *Instr)
	delUse(u *Instr)
}

// userTracker records, for a definition, how many times each
// instruction uses it. The multiplicity matters: Section 3.1 of the
// paper is precisely about transformations that change the number of
// syntactic uses of a value.
type userTracker struct {
	users map[*Instr]int
}

func (t *userTracker) addUse(u *Instr) {
	if t.users == nil {
		t.users = make(map[*Instr]int)
	}
	t.users[u]++
}

func (t *userTracker) delUse(u *Instr) {
	if t.users[u] <= 1 {
		delete(t.users, u)
	} else {
		t.users[u]--
	}
}

// NumUses returns the total number of operand slots that reference this
// definition.
func (t *userTracker) NumUses() int {
	n := 0
	for _, c := range t.users {
		n += c
	}
	return n
}

// Users returns each distinct instruction that uses this definition.
// The order is unspecified.
func (t *userTracker) Users() []*Instr {
	us := make([]*Instr, 0, len(t.users))
	for u := range t.users {
		us = append(us, u)
	}
	return us
}

// Const is an integer (or pointer-typed null/int) constant. Bits holds
// the value in the low Type().Bits bits; higher bits are zero.
type Const struct {
	Ty   Type
	Bits uint64
}

// ConstInt returns an integer constant of type ty whose low bits are v
// (truncated to the type's width).
func ConstInt(ty Type, v uint64) *Const {
	if !ty.IsInt() && !ty.IsPtr() {
		panic("ir.ConstInt: scalar int/ptr type required")
	}
	return &Const{Ty: ty, Bits: TruncBits(v, ty.Bits)}
}

// ConstBool returns the i1 constant 0 or 1.
func ConstBool(b bool) *Const {
	if b {
		return &Const{Ty: I1, Bits: 1}
	}
	return &Const{Ty: I1, Bits: 0}
}

// TruncBits masks v to its low `bits` bits.
func TruncBits(v uint64, bits uint) uint64 {
	if bits >= 64 {
		return v
	}
	return v & ((uint64(1) << bits) - 1)
}

// SignExtBits sign-extends the low `bits` bits of v to 64 bits.
func SignExtBits(v uint64, bits uint) int64 {
	if bits >= 64 {
		return int64(v)
	}
	v = TruncBits(v, bits)
	sign := uint64(1) << (bits - 1)
	if v&sign != 0 {
		v |= ^((uint64(1) << bits) - 1)
	}
	return int64(v)
}

// Type implements Value.
func (c *Const) Type() Type { return c.Ty }

// SInt returns the constant's value interpreted as a signed integer of
// its type's width.
func (c *Const) SInt() int64 { return SignExtBits(c.Bits, c.Ty.Bits) }

// IsZero reports whether the constant is zero.
func (c *Const) IsZero() bool { return c.Bits == 0 }

// IsAllOnes reports whether every bit of the constant is set.
func (c *Const) IsAllOnes() bool { return c.Bits == TruncBits(^uint64(0), c.Ty.Bits) }

// Ident implements Value.
func (c *Const) Ident() string {
	// Print small-width constants in signed form when the sign bit is
	// set, matching LLVM's convention for readability (e.g. i32 -1).
	if c.Ty.Bits > 1 && c.Bits>>(c.Ty.Bits-1) != 0 {
		return fmt.Sprintf("%d", c.SInt())
	}
	return fmt.Sprintf("%d", c.Bits)
}

func (c *Const) addUse(*Instr) {}
func (c *Const) delUse(*Instr) {}

// Undef is the legacy deferred-UB constant: each use may independently
// take any value of the type. It exists only under the legacy
// semantics; the Freeze-mode verifier rejects it.
type Undef struct{ Ty Type }

// NewUndef returns an undef constant of type ty.
func NewUndef(ty Type) *Undef { return &Undef{Ty: ty} }

// Type implements Value.
func (u *Undef) Type() Type { return u.Ty }

// Ident implements Value.
func (u *Undef) Ident() string { return "undef" }

func (u *Undef) addUse(*Instr) {}
func (u *Undef) delUse(*Instr) {}

// Poison is the deferred-UB constant that taints dependent computation:
// most operations over poison return poison, and branching on poison
// (in the paper's proposed semantics) is immediate UB.
type Poison struct{ Ty Type }

// NewPoison returns a poison constant of type ty.
func NewPoison(ty Type) *Poison { return &Poison{Ty: ty} }

// Type implements Value.
func (p *Poison) Type() Type { return p.Ty }

// Ident implements Value.
func (p *Poison) Ident() string { return "poison" }

func (p *Poison) addUse(*Instr) {}
func (p *Poison) delUse(*Instr) {}

// VecConst is a vector constant; each element is a *Const, *Undef or
// *Poison of the element type. Undef and poison are per-lane, matching
// the paper's element-wise vector semantics.
type VecConst struct {
	Ty    Type
	Elems []Value
}

// NewVecConst builds a vector constant from per-lane scalar constants.
func NewVecConst(elems []Value) *VecConst {
	if len(elems) == 0 {
		panic("ir.NewVecConst: empty vector")
	}
	et := elems[0].Type()
	for _, e := range elems {
		if !e.Type().Equal(et) {
			panic("ir.NewVecConst: mixed element types")
		}
		switch e.(type) {
		case *Const, *Undef, *Poison:
		default:
			panic("ir.NewVecConst: elements must be constant leaves")
		}
	}
	return &VecConst{Ty: Vec(uint(len(elems)), et), Elems: elems}
}

// Type implements Value.
func (v *VecConst) Type() Type { return v.Ty }

// Ident implements Value.
func (v *VecConst) Ident() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, e := range v.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", e.Type(), e.Ident())
	}
	b.WriteByte('>')
	return b.String()
}

func (v *VecConst) addUse(*Instr) {}
func (v *VecConst) delUse(*Instr) {}

// Param is a function parameter. Parameters may hold poison (and, under
// legacy semantics, undef) unless the caller is known; the refinement
// checker therefore enumerates deferred-UB inputs too.
type Param struct {
	userTracker
	Nam string
	Ty  Type
	Idx int
}

// Type implements Value.
func (p *Param) Type() Type { return p.Ty }

// Name returns the parameter's name without the % sigil.
func (p *Param) Name() string { return p.Nam }

// Ident implements Value.
func (p *Param) Ident() string { return "%" + p.Nam }

// Global is a module-level byte array with a fixed size and optional
// initializer; its address is assigned by the execution engine or
// linker. Loads from bytes beyond the initializer read uninitialized
// (deferred-UB) memory.
type Global struct {
	Nam  string
	Size uint32
	Init []byte
}

// Type implements Value: a global evaluates to its address.
func (g *Global) Type() Type { return Ptr }

// Name returns the global's name without the @ sigil.
func (g *Global) Name() string { return g.Nam }

// Ident implements Value.
func (g *Global) Ident() string { return "@" + g.Nam }

func (g *Global) addUse(*Instr) {}
func (g *Global) delUse(*Instr) {}

// IsConstLeaf reports whether v is a constant operand (integer, undef,
// poison, vector constant, or global address): a value with no defining
// instruction.
func IsConstLeaf(v Value) bool {
	switch v.(type) {
	case *Const, *Undef, *Poison, *VecConst, *Global:
		return true
	}
	return false
}
