package ir

// CFG surgery helpers shared by the mutation fuzzer and the finding
// reducer (internal/optfuzz). Each helper leaves the function
// structurally valid — phi arities tracking predecessor lists, no
// dangling operand uses — so callers can re-verify cheaply rather than
// repair.

// DropSuccessor rewrites b's conditional branch into an unconditional
// branch to successor keep (0 = true arm, 1 = false arm). The dropped
// edge's phi incomings are removed from the other successor unless the
// branch targeted the same block on both arms (then no edge count
// changes). Reports whether a rewrite happened; a block without a
// conditional terminator is left alone.
func DropSuccessor(b *Block, keep int) bool {
	term := b.Terminator()
	if term == nil || !term.IsConditionalBr() || keep < 0 || keep > 1 {
		return false
	}
	kept := term.BlockArg(keep)
	dropped := term.BlockArg(1 - keep)
	br := NewInstr(OpBr, Void)
	br.AddBlockArg(kept)
	b.InsertBefore(br, term)
	b.Erase(term)
	if dropped != kept {
		for _, phi := range dropped.Phis() {
			phi.RemovePhiIncoming(b)
		}
	}
	return true
}

// DeleteInstr removes in from its block, replacing any uses with repl
// first. repl may be nil only when in has no uses; when set, it must
// have in's type. Terminators cannot be deleted this way.
func DeleteInstr(in *Instr, repl Value) {
	if in.Op.IsTerminator() {
		panic("ir.DeleteInstr: cannot delete a terminator")
	}
	if in.NumUses() > 0 {
		if repl == nil {
			panic("ir.DeleteInstr: instruction has uses and no replacement")
		}
		in.ReplaceAllUsesWith(repl)
	}
	in.Parent().Erase(in)
}

// RemoveUnreachableBlocks deletes every block not reachable from the
// entry block, fixing phi incomings in the survivors, and returns how
// many blocks were removed. Operand uses between removed blocks are
// dropped wholesale; a reachable block can never reference a value
// defined in an unreachable one in valid SSA, so survivors are
// unaffected.
func RemoveUnreachableBlocks(f *Func) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	reachable := map[*Block]bool{}
	stack := []*Block{f.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reachable[b] {
			continue
		}
		reachable[b] = true
		stack = append(stack, b.Succs()...)
	}
	var dead []*Block
	for _, b := range f.Blocks {
		if !reachable[b] {
			dead = append(dead, b)
		}
	}
	for _, b := range dead {
		for _, s := range b.Succs() {
			if !reachable[s] {
				continue
			}
			for _, phi := range s.Phis() {
				phi.RemovePhiIncoming(b)
			}
		}
	}
	for _, b := range dead {
		f.RemoveBlock(b)
	}
	return len(dead)
}
