package ir

import (
	"testing"
	"testing/quick"
)

func TestTypeProperties(t *testing.T) {
	cases := []struct {
		ty       Type
		str      string
		bitwidth uint
		elems    uint
	}{
		{I1, "i1", 1, 1},
		{I2, "i2", 2, 1},
		{I32, "i32", 32, 1},
		{I64, "i64", 64, 1},
		{Ptr, "ptr", 32, 1},
		{Void, "void", 0, 0},
		{Vec(4, I8), "<4 x i8>", 32, 4},
		{Vec(2, I16), "<2 x i16>", 32, 2},
		{Vec(32, I1), "<32 x i1>", 32, 32},
		{Vec(3, Ptr), "<3 x ptr>", 96, 3},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.str {
			t.Errorf("String(%v) = %q, want %q", c.ty, got, c.str)
		}
		if got := c.ty.Bitwidth(); got != c.bitwidth {
			t.Errorf("Bitwidth(%s) = %d, want %d", c.str, got, c.bitwidth)
		}
		if got := c.ty.NumElems(); got != c.elems {
			t.Errorf("NumElems(%s) = %d, want %d", c.str, got, c.elems)
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, s := range []string{"i1", "i2", "i7", "i32", "i64", "ptr", "void", "<4 x i8>", "<2 x ptr>", "<32 x i1>"} {
		ty, err := ParseType(s)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", s, err)
		}
		if ty.String() != s {
			t.Errorf("round trip %q -> %q", s, ty.String())
		}
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, s := range []string{"", "i0", "i65", "i", "x32", "<0 x i8>", "<4 x void>", "<4 x <2 x i8>>", "float"} {
		if _, err := ParseType(s); err == nil {
			t.Errorf("ParseType(%q) unexpectedly succeeded", s)
		}
	}
}

func TestIntPanicsOnBadWidth(t *testing.T) {
	for _, bits := range []uint{0, 65, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Int(%d) did not panic", bits)
				}
			}()
			Int(bits)
		}()
	}
}

func TestElemType(t *testing.T) {
	if got := Vec(4, I8).ElemType(); !got.Equal(I8) {
		t.Errorf("ElemType(<4 x i8>) = %s", got)
	}
	if got := I32.ElemType(); !got.Equal(I32) {
		t.Errorf("ElemType(i32) = %s", got)
	}
	if got := Vec(2, Ptr).ElemType(); !got.Equal(Ptr) {
		t.Errorf("ElemType(<2 x ptr>) = %s", got)
	}
}

func TestTruncSignExtBits(t *testing.T) {
	cases := []struct {
		v    uint64
		bits uint
		tr   uint64
		se   int64
	}{
		{0, 8, 0, 0},
		{0xff, 8, 0xff, -1},
		{0x7f, 8, 0x7f, 127},
		{0x100, 8, 0, 0},
		{3, 2, 3, -1},
		{2, 2, 2, -2},
		{1, 2, 1, 1},
		{1, 1, 1, -1},
		{^uint64(0), 64, ^uint64(0), -1},
		{0x8000000000000000, 64, 0x8000000000000000, -0x8000000000000000},
	}
	for _, c := range cases {
		if got := TruncBits(c.v, c.bits); got != c.tr {
			t.Errorf("TruncBits(%#x, %d) = %#x, want %#x", c.v, c.bits, got, c.tr)
		}
		if got := SignExtBits(c.v, c.bits); got != c.se {
			t.Errorf("SignExtBits(%#x, %d) = %d, want %d", c.v, c.bits, got, c.se)
		}
	}
}

// Property: for any v and width, TruncBits is idempotent and
// SignExtBits re-truncates to the same low bits.
func TestTruncSignExtProperty(t *testing.T) {
	f := func(v uint64, w8 uint8) bool {
		w := uint(w8%64) + 1
		tr := TruncBits(v, w)
		if TruncBits(tr, w) != tr {
			return false
		}
		return TruncBits(uint64(SignExtBits(v, w)), w) == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
