package ir

import "fmt"

// Block is a basic block: a straight-line instruction sequence ending in
// exactly one terminator.
type Block struct {
	Nam    string
	instrs []*Instr
	parent *Func
}

// Name returns the block label without the % sigil.
func (b *Block) Name() string { return b.Nam }

// Parent returns the containing function.
func (b *Block) Parent() *Func { return b.parent }

// Instrs returns the block's instructions in order. Callers must not
// mutate the slice; use the insertion/removal methods.
func (b *Block) Instrs() []*Instr { return b.instrs }

// Append adds an instruction at the end of the block.
func (b *Block) Append(in *Instr) *Instr {
	if in.parent != nil {
		panic("ir: instruction already attached")
	}
	in.parent = b
	b.instrs = append(b.instrs, in)
	return in
}

// InsertBefore inserts in immediately before pos, which must be in b.
func (b *Block) InsertBefore(in *Instr, pos *Instr) {
	if in.parent != nil {
		panic("ir: instruction already attached")
	}
	i := b.indexOf(pos)
	in.parent = b
	b.instrs = append(b.instrs, nil)
	copy(b.instrs[i+1:], b.instrs[i:])
	b.instrs[i] = in
}

// Remove detaches in from the block without touching its operands, so
// it can be re-inserted elsewhere (code motion).
func (b *Block) Remove(in *Instr) {
	i := b.indexOf(in)
	b.instrs = append(b.instrs[:i], b.instrs[i+1:]...)
	in.parent = nil
}

// Erase removes in and releases its operand uses. The instruction must
// itself be unused.
func (b *Block) Erase(in *Instr) {
	if in.NumUses() != 0 {
		panic(fmt.Sprintf("ir: erasing %%%s which still has %d uses", in.Nam, in.NumUses()))
	}
	b.Remove(in)
	in.dropArgs()
}

func (b *Block) indexOf(in *Instr) int {
	for i, x := range b.instrs {
		if x == in {
			return i
		}
	}
	panic("ir: instruction not in block")
}

// Terminator returns the block's final instruction if it is a
// terminator, else nil.
func (b *Block) Terminator() *Instr {
	if len(b.instrs) == 0 {
		return nil
	}
	t := b.instrs[len(b.instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	if t := b.Terminator(); t != nil {
		return t.Succs()
	}
	return nil
}

// Phis returns the leading phi instructions of the block.
func (b *Block) Phis() []*Instr {
	var ps []*Instr
	for _, in := range b.instrs {
		if in.Op != OpPhi {
			break
		}
		ps = append(ps, in)
	}
	return ps
}

// FirstNonPhi returns the first non-phi instruction.
func (b *Block) FirstNonPhi() *Instr {
	for _, in := range b.instrs {
		if in.Op != OpPhi {
			return in
		}
	}
	return nil
}

// Func is an IR function: a parameter list, a return type, and a list of
// basic blocks whose first element is the entry block.
type Func struct {
	Nam    string
	Params []*Param
	RetTy  Type
	Blocks []*Block

	parent *Module
	nextID int
}

// NewFunc creates a function with the given name, return type and
// parameters (name/type pairs).
func NewFunc(name string, ret Type, params ...*Param) *Func {
	f := &Func{Nam: name, RetTy: ret}
	for i, p := range params {
		p.Idx = i
		f.Params = append(f.Params, p)
	}
	return f
}

// NewParam creates a detached parameter for use with NewFunc.
func NewParam(name string, ty Type) *Param { return &Param{Nam: name, Ty: ty} }

// Name returns the function name without the @ sigil.
func (f *Func) Name() string { return f.Nam }

// Parent returns the containing module, if any.
func (f *Func) Parent() *Module { return f.parent }

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		panic("ir: function has no blocks")
	}
	return f.Blocks[0]
}

// NewBlock appends a fresh block with the given label (uniqued if
// needed).
func (f *Func) NewBlock(name string) *Block {
	if name == "" {
		name = "bb"
	}
	name = f.uniqueBlockName(name)
	b := &Block{Nam: name, parent: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Func) uniqueBlockName(name string) string {
	if f.BlockByName(name) == nil {
		return name
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s%d", name, i)
		if f.BlockByName(cand) == nil {
			return cand
		}
	}
}

// BlockByName returns the block with the given label, or nil.
func (f *Func) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Nam == name {
			return b
		}
	}
	return nil
}

// RemoveBlock deletes block b from the function, dropping the operand
// uses of its instructions. The caller is responsible for having
// removed inbound edges and phi entries first.
func (f *Func) RemoveBlock(b *Block) {
	for _, in := range b.instrs {
		in.dropArgs()
		in.parent = nil
	}
	b.instrs = nil
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
	panic("ir: block not in function")
}

// GenName produces a fresh SSA name with the given prefix.
func (f *Func) GenName(prefix string) string {
	if prefix == "" {
		prefix = "t"
	}
	f.nextID++
	return fmt.Sprintf("%s%d", prefix, f.nextID)
}

// Preds returns the predecessor blocks of b within f, in block order.
// Each predecessor appears once even if it has two edges to b (a
// conditional branch with both targets equal).
func (f *Func) Preds(b *Block) []*Block {
	var ps []*Block
	for _, p := range f.Blocks {
		for _, s := range p.Succs() {
			if s == b {
				ps = append(ps, p)
				break
			}
		}
	}
	return ps
}

// ForEachInstr visits every instruction in the function in block order.
func (f *Func) ForEachInstr(fn func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.instrs {
			fn(in)
		}
	}
}

// NumInstrs counts the instructions in the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.instrs)
	}
	return n
}

// Module is a collection of functions and global byte arrays.
type Module struct {
	Funcs   []*Func
	Globals []*Global
}

// NewModule returns an empty module.
func NewModule() *Module { return &Module{} }

// AddFunc appends f to the module.
func (m *Module) AddFunc(f *Func) *Func {
	f.parent = m
	m.Funcs = append(m.Funcs, f)
	return f
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Nam == name {
			return f
		}
	}
	return nil
}

// AddGlobal appends a global byte array to the module.
func (m *Module) AddGlobal(g *Global) *Global {
	m.Globals = append(m.Globals, g)
	return g
}

// GlobalByName returns the global with the given name, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Nam == name {
			return g
		}
	}
	return nil
}
