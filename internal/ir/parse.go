package ir

import (
	"fmt"
	"strconv"
	"unicode"
)

// ParseModule parses textual IR in the syntax produced by
// Module.String. Comments run from ';' to end of line.
func ParseModule(src string) (*Module, error) {
	p := &parser{lex: newLexer(src), mod: NewModule()}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	return p.mod, nil
}

// ParseFunc parses a single function definition. The function may call
// itself; calls to other functions are unresolved errors.
func ParseFunc(src string) (*Func, error) {
	m, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs) != 1 {
		return nil, fmt.Errorf("ir: expected exactly one function, found %d", len(m.Funcs))
	}
	return m.Funcs[0], nil
}

// MustParseFunc is ParseFunc, panicking on error. Intended for tests
// and examples where the IR text is a literal.
func MustParseFunc(src string) *Func {
	f, err := ParseFunc(src)
	if err != nil {
		panic(err)
	}
	return f
}

// MustParseModule is ParseModule, panicking on error.
func MustParseModule(src string) *Module {
	m, err := ParseModule(src)
	if err != nil {
		panic(err)
	}
	return m
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokWord
	tokLocal  // %name
	tokGlobal // @name
	tokInt
	tokPunct // single char: , ( ) [ ] { } = : < >
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	toks []token
	pos  int
}

func newLexer(src string) *lexer {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '%' || c == '@':
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			k := tokLocal
			if c == '@' {
				k = tokGlobal
			}
			toks = append(toks, token{k, src[i+1 : j], line})
			i = j
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInt, src[i:j], line})
			i = j
		case isIdentChar(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, token{tokWord, src[i:j], line})
			i = j
		default:
			toks = append(toks, token{tokPunct, string(c), line})
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return &lexer{toks: toks}
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}

func (l *lexer) peek() token { return l.toks[l.pos] }

func (l *lexer) next() token {
	t := l.toks[l.pos]
	if t.kind != tokEOF {
		l.pos++
	}
	return t
}

// --- parser ---

// forwardRef stands in for a not-yet-defined local value during
// parsing; it is patched out before parseFunc returns.
type forwardRef struct {
	userTracker
	ty   Type
	name string
}

// Type implements Value with the type stated at the referencing use.
func (r *forwardRef) Type() Type { return r.ty }

// Ident implements Value.
func (r *forwardRef) Ident() string { return "%" + r.name }

type parser struct {
	lex *lexer
	mod *Module

	// per-function state
	fn     *Func
	vals   map[string]Value
	fwd    map[string]*forwardRef
	blocks map[string]*Block

	// calls to functions not yet defined are patched at module end.
	pendingCalls []pendingCall
}

type pendingCall struct {
	in     *Instr
	callee string
	retTy  Type
	line   int
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectWord(w string) error {
	t := p.lex.next()
	if t.kind != tokWord || t.text != w {
		return p.errf(t, "expected %q, got %q", w, t.text)
	}
	return nil
}

func (p *parser) expectPunct(c string) error {
	t := p.lex.next()
	if t.kind != tokPunct || t.text != c {
		return p.errf(t, "expected %q, got %q", c, t.text)
	}
	return nil
}

func (p *parser) acceptPunct(c string) bool {
	if t := p.lex.peek(); t.kind == tokPunct && t.text == c {
		p.lex.next()
		return true
	}
	return false
}

func (p *parser) acceptWord(w string) bool {
	if t := p.lex.peek(); t.kind == tokWord && t.text == w {
		p.lex.next()
		return true
	}
	return false
}

func (p *parser) parseModule() error {
	for {
		t := p.lex.peek()
		switch {
		case t.kind == tokEOF:
			return p.resolveCalls()
		case t.kind == tokWord && t.text == "define":
			if err := p.parseFunc(); err != nil {
				return err
			}
		case t.kind == tokGlobal:
			if err := p.parseGlobal(); err != nil {
				return err
			}
		default:
			return p.errf(t, "expected 'define' or global, got %q", t.text)
		}
	}
}

func (p *parser) resolveCalls() error {
	for _, pc := range p.pendingCalls {
		f := p.mod.FuncByName(pc.callee)
		if f == nil {
			return fmt.Errorf("ir: line %d: call to undefined function @%s", pc.line, pc.callee)
		}
		if !f.RetTy.Equal(pc.retTy) {
			return fmt.Errorf("ir: line %d: call return type %s does not match @%s's %s",
				pc.line, pc.retTy, pc.callee, f.RetTy)
		}
		pc.in.Callee = f
	}
	p.pendingCalls = nil
	return nil
}

// parseGlobal parses "@name = global SIZE [init b0 b1 ...]".
func (p *parser) parseGlobal() error {
	t := p.lex.next() // @name
	name := t.text
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if err := p.expectWord("global"); err != nil {
		return err
	}
	szTok := p.lex.next()
	if szTok.kind != tokInt {
		return p.errf(szTok, "expected global size, got %q", szTok.text)
	}
	sz, err := strconv.ParseUint(szTok.text, 10, 32)
	if err != nil {
		return p.errf(szTok, "bad global size %q", szTok.text)
	}
	g := &Global{Nam: name, Size: uint32(sz)}
	if p.acceptWord("init") {
		for p.lex.peek().kind == tokInt {
			bt := p.lex.next()
			bv, err := strconv.ParseUint(bt.text, 10, 8)
			if err != nil {
				return p.errf(bt, "bad init byte %q", bt.text)
			}
			g.Init = append(g.Init, byte(bv))
		}
		if len(g.Init) > int(g.Size) {
			return p.errf(szTok, "global @%s: %d init bytes exceed size %d", name, len(g.Init), g.Size)
		}
	}
	p.mod.AddGlobal(g)
	return nil
}

func (p *parser) parseType() (Type, error) {
	t := p.lex.peek()
	if t.kind == tokWord {
		p.lex.next()
		ty, err := ParseType(t.text)
		if err != nil {
			return Type{}, p.errf(t, "%v", err)
		}
		return ty, nil
	}
	if t.kind == tokPunct && t.text == "<" {
		p.lex.next()
		nTok := p.lex.next()
		if nTok.kind != tokInt {
			return Type{}, p.errf(nTok, "expected vector length")
		}
		n, err := strconv.ParseUint(nTok.text, 10, 32)
		if err != nil || n == 0 {
			return Type{}, p.errf(nTok, "bad vector length %q", nTok.text)
		}
		if err := p.expectWord("x"); err != nil {
			return Type{}, err
		}
		elem, err := p.parseType()
		if err != nil {
			return Type{}, err
		}
		if elem.IsVec() || elem.IsVoid() {
			return Type{}, p.errf(nTok, "vector element must be an integer or pointer type, not %s", elem)
		}
		if err := p.expectPunct(">"); err != nil {
			return Type{}, err
		}
		return Vec(uint(n), elem), nil
	}
	return Type{}, p.errf(t, "expected type, got %q", t.text)
}

// parseOperand parses an operand of a known type.
func (p *parser) parseOperand(ty Type) (Value, error) {
	t := p.lex.peek()
	switch {
	case t.kind == tokLocal:
		p.lex.next()
		return p.localRef(t.text, ty), nil
	case t.kind == tokGlobal:
		p.lex.next()
		g := p.mod.GlobalByName(t.text)
		if g == nil {
			return nil, p.errf(t, "undefined global @%s", t.text)
		}
		return g, nil
	case t.kind == tokInt:
		p.lex.next()
		if !ty.IsInt() && !ty.IsPtr() {
			return nil, p.errf(t, "integer literal %q cannot have type %s", t.text, ty)
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Large unsigned literal.
			u, uerr := strconv.ParseUint(t.text, 10, 64)
			if uerr != nil {
				return nil, p.errf(t, "bad integer %q", t.text)
			}
			return ConstInt(ty, u), nil
		}
		return ConstInt(ty, uint64(v)), nil
	case t.kind == tokWord && t.text == "poison":
		p.lex.next()
		return NewPoison(ty), nil
	case t.kind == tokWord && t.text == "undef":
		p.lex.next()
		return NewUndef(ty), nil
	case t.kind == tokWord && t.text == "true":
		p.lex.next()
		return ConstBool(true), nil
	case t.kind == tokWord && t.text == "false":
		p.lex.next()
		return ConstBool(false), nil
	case t.kind == tokPunct && t.text == "<":
		return p.parseVecConst()
	}
	return nil, p.errf(t, "expected operand, got %q", t.text)
}

// parseVecConst parses "<i8 1, i8 poison, ...>".
func (p *parser) parseVecConst() (Value, error) {
	if err := p.expectPunct("<"); err != nil {
		return nil, err
	}
	var elems []Value
	for {
		t := p.lex.peek()
		ety, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if ety.IsVec() || ety.IsVoid() {
			return nil, p.errf(t, "bad vector element type %s", ety)
		}
		if len(elems) > 0 && !ety.Equal(elems[0].Type()) {
			return nil, p.errf(t, "vector constant mixes element types %s and %s", elems[0].Type(), ety)
		}
		ev, err := p.parseOperand(ety)
		if err != nil {
			return nil, err
		}
		if !IsConstLeaf(ev) {
			return nil, p.errf(t, "vector constant element must be constant")
		}
		elems = append(elems, ev)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(">"); err != nil {
		return nil, err
	}
	return NewVecConst(elems), nil
}

// parseTypedOperand parses "ty operand".
func (p *parser) parseTypedOperand() (Value, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return p.parseOperand(ty)
}

func (p *parser) localRef(name string, ty Type) Value {
	if v, ok := p.vals[name]; ok {
		return v
	}
	if r, ok := p.fwd[name]; ok {
		return r
	}
	r := &forwardRef{ty: ty, name: name}
	p.fwd[name] = r
	return r
}

func (p *parser) blockRef(name string) *Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := &Block{Nam: name, parent: p.fn}
	p.blocks[name] = b
	return b
}

func (p *parser) parseFunc() error {
	p.lex.next() // "define"
	retTy, err := p.parseType()
	if err != nil {
		return err
	}
	nameTok := p.lex.next()
	if nameTok.kind != tokGlobal {
		return p.errf(nameTok, "expected function name, got %q", nameTok.text)
	}
	fn := NewFunc(nameTok.text, retTy)
	p.fn = fn
	p.vals = map[string]Value{}
	p.fwd = map[string]*forwardRef{}
	p.blocks = map[string]*Block{}

	if err := p.expectPunct("("); err != nil {
		return err
	}
	for !p.acceptPunct(")") {
		if len(fn.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return err
			}
		}
		pty, err := p.parseType()
		if err != nil {
			return err
		}
		pt := p.lex.next()
		if pt.kind != tokLocal {
			return p.errf(pt, "expected parameter name, got %q", pt.text)
		}
		param := NewParam(pt.text, pty)
		param.Idx = len(fn.Params)
		fn.Params = append(fn.Params, param)
		p.vals[pt.text] = param
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}

	var cur *Block
	defined := map[string]bool{}
	for {
		t := p.lex.peek()
		if t.kind == tokPunct && t.text == "}" {
			p.lex.next()
			break
		}
		if t.kind == tokEOF {
			return p.errf(t, "unexpected EOF in function body")
		}
		// Block label: word followed by ':'.
		if t.kind == tokWord && p.lex.toks[p.lex.pos+1].kind == tokPunct && p.lex.toks[p.lex.pos+1].text == ":" {
			p.lex.next()
			p.lex.next()
			if defined[t.text] {
				return p.errf(t, "duplicate block label %q", t.text)
			}
			defined[t.text] = true
			cur = p.blockRef(t.text)
			fn.Blocks = append(fn.Blocks, cur)
			continue
		}
		if cur == nil {
			cur = p.blockRef("entry")
			defined["entry"] = true
			fn.Blocks = append(fn.Blocks, cur)
		}
		in, err := p.parseInstr()
		if err != nil {
			return err
		}
		in.parent = cur
		cur.instrs = append(cur.instrs, in)
		if in.Nam != "" {
			if _, dup := p.vals[in.Nam]; dup {
				return p.errf(t, "redefinition of %%%s", in.Nam)
			}
			p.vals[in.Nam] = in
			if r, ok := p.fwd[in.Nam]; ok {
				// Patch forward references.
				for _, u := range r.Users() {
					for i, a := range u.args {
						if a == Value(r) {
							u.SetArg(i, in)
						}
					}
				}
				delete(p.fwd, in.Nam)
			}
		}
	}

	for name := range p.fwd {
		return fmt.Errorf("ir: undefined value %%%s in @%s", name, fn.Nam)
	}
	// Referenced-but-never-defined blocks.
	for name, b := range p.blocks {
		found := false
		for _, fb := range fn.Blocks {
			if fb == b {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("ir: undefined block %%%s in @%s", name, fn.Nam)
		}
	}
	p.mod.AddFunc(fn)
	return nil
}

// parseInstr parses one instruction line.
func (p *parser) parseInstr() (*Instr, error) {
	name := ""
	if t := p.lex.peek(); t.kind == tokLocal {
		p.lex.next()
		name = t.text
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
	}
	opTok := p.lex.next()
	if opTok.kind != tokWord {
		return nil, p.errf(opTok, "expected opcode, got %q", opTok.text)
	}
	op := OpFromString(opTok.text)
	if op == OpInvalid {
		return nil, p.errf(opTok, "unknown opcode %q", opTok.text)
	}
	in, err := p.parseInstrBody(op, opTok)
	if err != nil {
		return nil, err
	}
	in.Nam = name
	if in.Ty.IsVoid() != (name == "") {
		if name == "" {
			return nil, p.errf(opTok, "%s result must be named", op)
		}
		return nil, p.errf(opTok, "%s produces no result but is named %%%s", op, name)
	}
	return in, nil
}

func (p *parser) parseInstrBody(op Op, opTok token) (*Instr, error) {
	switch {
	case op.IsBinop():
		var attrs Attrs
		for {
			if p.acceptWord("nsw") {
				attrs |= NSW
			} else if p.acceptWord("nuw") {
				attrs |= NUW
			} else if p.acceptWord("exact") {
				attrs |= Exact
			} else {
				break
			}
		}
		x, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		y, err := p.parseOperand(x.Type())
		if err != nil {
			return nil, err
		}
		in := NewInstr(op, x.Type(), x, y)
		in.Attrs = attrs
		return in, nil

	case op == OpICmp:
		predTok := p.lex.next()
		pred, ok := PredFromString(predTok.text)
		if !ok {
			return nil, p.errf(predTok, "unknown icmp predicate %q", predTok.text)
		}
		x, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		y, err := p.parseOperand(x.Type())
		if err != nil {
			return nil, err
		}
		rt := I1
		if x.Type().IsVec() {
			rt = Vec(x.Type().Len, I1)
		}
		in := NewInstr(OpICmp, rt, x, y)
		in.Pred = pred
		return in, nil

	case op == OpSelect:
		c, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		x, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		y, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return NewInstr(OpSelect, x.Type(), c, x, y), nil

	case op == OpPhi:
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in := NewInstr(OpPhi, ty)
		for {
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			v, err := p.parseOperand(ty)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			bt := p.lex.next()
			if bt.kind != tokLocal {
				return nil, p.errf(bt, "expected block label, got %q", bt.text)
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			in.AddArg(v)
			in.AddBlockArg(p.blockRef(bt.text))
			if !p.acceptPunct(",") {
				break
			}
		}
		return in, nil

	case op == OpFreeze:
		x, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return NewInstr(OpFreeze, x.Type(), x), nil

	case op == OpAlloca:
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		cnt, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		in := NewInstr(OpAlloca, Ptr, cnt)
		in.AllocTy = elem
		return in, nil

	case op == OpLoad:
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		ptr, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return NewInstr(OpLoad, ty, ptr), nil

	case op == OpStore:
		v, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		ptr, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return NewInstr(OpStore, Void, v, ptr), nil

	case op == OpGEP:
		var attrs Attrs
		if p.acceptWord("inbounds") {
			attrs = NSW
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		base, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		idx, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		in := NewInstr(OpGEP, Ptr, base, idx)
		in.AllocTy = elem
		in.Attrs = attrs
		return in, nil

	case op.IsCast():
		x, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("to"); err != nil {
			return nil, err
		}
		to, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return NewInstr(op, to, x), nil

	case op == OpExtractElement:
		vec, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		idx, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return NewInstr(OpExtractElement, vec.Type().ElemType(), vec, idx), nil

	case op == OpInsertElement:
		vec, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		s, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		idx, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return NewInstr(OpInsertElement, vec.Type(), vec, s, idx), nil

	case op == OpBr:
		if p.acceptWord("label") {
			bt := p.lex.next()
			if bt.kind != tokLocal {
				return nil, p.errf(bt, "expected block label")
			}
			in := NewInstr(OpBr, Void)
			in.AddBlockArg(p.blockRef(bt.text))
			return in, nil
		}
		cond, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if err := p.expectWord("label"); err != nil {
			return nil, err
		}
		t1 := p.lex.next()
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if err := p.expectWord("label"); err != nil {
			return nil, err
		}
		t2 := p.lex.next()
		in := NewInstr(OpBr, Void, cond)
		in.AddBlockArg(p.blockRef(t1.text))
		in.AddBlockArg(p.blockRef(t2.text))
		return in, nil

	case op == OpRet:
		if p.acceptWord("void") {
			return NewInstr(OpRet, Void), nil
		}
		v, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return NewInstr(OpRet, Void, v), nil

	case op == OpUnreachable:
		return NewInstr(OpUnreachable, Void), nil

	case op == OpCall:
		retTy, err := p.parseType()
		if err != nil {
			return nil, err
		}
		ct := p.lex.next()
		if ct.kind != tokGlobal {
			return nil, p.errf(ct, "expected callee, got %q", ct.text)
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		in := NewInstr(OpCall, retTy)
		for !p.acceptPunct(")") {
			if in.NumArgs() > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			a, err := p.parseTypedOperand()
			if err != nil {
				return nil, err
			}
			in.AddArg(a)
		}
		p.pendingCalls = append(p.pendingCalls, pendingCall{in: in, callee: ct.text, retTy: retTy, line: ct.line})
		return in, nil
	}
	return nil, p.errf(opTok, "unhandled opcode %q", opTok.text)
}
