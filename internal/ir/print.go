package ir

import (
	"fmt"
	"strings"
)

// typedIdent renders "ty ident" for an operand.
func typedIdent(v Value) string {
	return fmt.Sprintf("%s %s", v.Type(), v.Ident())
}

// String renders the instruction in textual IR syntax (one line, no
// leading indentation).
func (in *Instr) String() string {
	var b strings.Builder
	if !in.Ty.IsVoid() {
		fmt.Fprintf(&b, "%%%s = ", in.Nam)
	}
	switch {
	case in.Op.IsBinop():
		fmt.Fprintf(&b, "%s %s%s %s, %s", in.Op, in.Attrs, in.Arg(0).Type(), in.Arg(0).Ident(), in.Arg(1).Ident())
	case in.Op == OpICmp:
		fmt.Fprintf(&b, "icmp %s %s, %s", in.Pred, typedIdent(in.Arg(0)), in.Arg(1).Ident())
	case in.Op == OpSelect:
		fmt.Fprintf(&b, "select %s, %s, %s", typedIdent(in.Arg(0)), typedIdent(in.Arg(1)), typedIdent(in.Arg(2)))
	case in.Op == OpPhi:
		fmt.Fprintf(&b, "phi %s ", in.Ty)
		for i := 0; i < in.NumArgs(); i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[ %s, %%%s ]", in.Arg(i).Ident(), in.BlockArg(i).Nam)
		}
	case in.Op == OpFreeze:
		fmt.Fprintf(&b, "freeze %s", typedIdent(in.Arg(0)))
	case in.Op == OpAlloca:
		fmt.Fprintf(&b, "alloca %s, %s", in.AllocTy, typedIdent(in.Arg(0)))
	case in.Op == OpLoad:
		fmt.Fprintf(&b, "load %s, %s", in.Ty, typedIdent(in.Arg(0)))
	case in.Op == OpStore:
		fmt.Fprintf(&b, "store %s, %s", typedIdent(in.Arg(0)), typedIdent(in.Arg(1)))
	case in.Op == OpGEP:
		inb := ""
		if in.Attrs&NSW != 0 {
			inb = "inbounds "
		}
		fmt.Fprintf(&b, "getelementptr %s%s, %s, %s", inb, in.AllocTy, typedIdent(in.Arg(0)), typedIdent(in.Arg(1)))
	case in.Op.IsCast():
		fmt.Fprintf(&b, "%s %s to %s", in.Op, typedIdent(in.Arg(0)), in.Ty)
	case in.Op == OpExtractElement:
		fmt.Fprintf(&b, "extractelement %s, %s", typedIdent(in.Arg(0)), typedIdent(in.Arg(1)))
	case in.Op == OpInsertElement:
		fmt.Fprintf(&b, "insertelement %s, %s, %s", typedIdent(in.Arg(0)), typedIdent(in.Arg(1)), typedIdent(in.Arg(2)))
	case in.Op == OpBr && in.NumArgs() == 0:
		fmt.Fprintf(&b, "br label %%%s", in.BlockArg(0).Nam)
	case in.Op == OpBr:
		fmt.Fprintf(&b, "br %s, label %%%s, label %%%s", typedIdent(in.Arg(0)), in.BlockArg(0).Nam, in.BlockArg(1).Nam)
	case in.Op == OpRet && in.NumArgs() == 0:
		b.WriteString("ret void")
	case in.Op == OpRet:
		fmt.Fprintf(&b, "ret %s", typedIdent(in.Arg(0)))
	case in.Op == OpUnreachable:
		b.WriteString("unreachable")
	case in.Op == OpCall:
		fmt.Fprintf(&b, "call %s @%s(", in.Ty, in.Callee.Nam)
		for i := 0; i < in.NumArgs(); i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(typedIdent(in.Arg(i)))
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(&b, "<unknown op %d>", in.Op)
	}
	return b.String()
}

// String renders the function in textual IR syntax.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "define %s @%s(", f.RetTy, f.Nam)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %%%s", p.Ty, p.Nam)
	}
	b.WriteString(") {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Nam)
		for _, in := range blk.instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the module: globals followed by functions.
func (m *Module) String() string {
	var b strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "@%s = global %d", g.Nam, g.Size)
		if len(g.Init) > 0 {
			b.WriteString(" init")
			for _, by := range g.Init {
				fmt.Fprintf(&b, " %d", by)
			}
		}
		b.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 || len(m.Globals) > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}
