package passes

import (
	"tameir/internal/ir"
)

// Inliner replaces calls to small functions with their bodies. Its
// §6-relevant detail is the cost model: the paper's prototype "changed
// the inliner to recognize freeze instructions as zero cost, even if
// they may not always be free. With this change, we avoid changing the
// behavior of the inliner as much as possible" — otherwise the freezes
// introduced by the new semantics would push functions across the
// inlining threshold and perturb every downstream measurement.
//
// Inlining itself is always sound: the callee's semantics (including
// its poison and UB) is reproduced verbatim at the call site, and
// parameters bind exactly like the call's argument values.
type Inliner struct{}

// Name implements Pass.
func (Inliner) Name() string { return "inline" }

func init() {
	// Inlining splices callee blocks into the caller.
	Register(PassInfo{Name: "inline", New: func() Pass { return Inliner{} }, Preserves: PreservesNone})
}

// InlineThreshold is the maximum callee cost that still inlines.
const InlineThreshold = 30

// calleeCost is the inliner's size estimate.
func calleeCost(f *ir.Func, cfg *Config) (cost int, inlinable bool) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			switch in.Op {
			case ir.OpCall:
				// Recursion (direct or mutual) is not inlined, and
				// calls make size estimation unreliable.
				return 0, false
			case ir.OpAlloca:
				// Would need hoisting into the caller's entry; skip.
				return 0, false
			case ir.OpFreeze:
				if cfg.FreezeAware {
					continue // §6: freeze is free
				}
				cost++
			case ir.OpPhi, ir.OpBr, ir.OpRet:
				// Control-flow plumbing is nearly free after layout.
			default:
				cost++
			}
		}
	}
	return cost, true
}

// Run implements Pass. The inliner is a module-level transformation;
// running it on a single function inlines the calls *within* that
// function.
func (Inliner) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := false
	for iter := 0; iter < 4; iter++ {
		var call *ir.Instr
		for _, b := range f.Blocks {
			for _, in := range b.Instrs() {
				if in.Op != ir.OpCall || in.Callee == f {
					continue
				}
				if cost, ok := calleeCost(in.Callee, cfg); ok && cost <= InlineThreshold {
					call = in
					break
				}
			}
			if call != nil {
				break
			}
		}
		if call == nil {
			return changed
		}
		inlineCall(f, call)
		changed = true
	}
	return changed
}

// inlineCall splices a copy of call.Callee into f at the call site.
func inlineCall(f *ir.Func, call *ir.Instr) {
	callee := call.Callee
	callBlock := call.Parent()

	// Split the call block: instructions after the call move to a new
	// continuation block.
	cont := f.NewBlock(callBlock.Name() + ".cont")
	instrs := callBlock.Instrs()
	idx := -1
	for i, in := range instrs {
		if in == call {
			idx = i
			break
		}
	}
	for _, in := range append([]*ir.Instr(nil), instrs[idx+1:]...) {
		callBlock.Remove(in)
		cont.Append(in)
	}
	// Successor phis now receive control from cont.
	for _, s := range cont.Succs() {
		for _, ph := range s.Phis() {
			for i := 0; i < ph.NumBlocks(); i++ {
				if ph.BlockArg(i) == callBlock {
					ph.SetBlockArg(i, cont)
				}
			}
		}
	}

	// Clone the callee's blocks into f.
	vmap := map[ir.Value]ir.Value{}
	for i, p := range callee.Params {
		vmap[p] = call.Arg(i)
	}
	bmap := map[*ir.Block]*ir.Block{}
	for _, b := range callee.Blocks {
		bmap[b] = f.NewBlock(callee.Name() + "." + b.Name())
	}
	// Result phi collects the inlined returns.
	var retPhi *ir.Instr
	if !call.Ty.IsVoid() {
		retPhi = ir.NewInstr(ir.OpPhi, call.Ty)
		retPhi.Nam = f.GenName("inl")
	}

	for _, b := range callee.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs() {
			if in.Op == ir.OpRet {
				if retPhi != nil {
					v := in.Arg(0)
					if nv, ok := vmap[v]; ok {
						v = nv
					}
					retPhi.AddPhiIncoming(v, nb)
				}
				br := ir.NewInstr(ir.OpBr, ir.Void)
				br.AddBlockArg(cont)
				nb.Append(br)
				continue
			}
			ni := ir.NewInstr(in.Op, in.Ty)
			ni.Attrs = in.Attrs
			ni.Pred = in.Pred
			ni.AllocTy = in.AllocTy
			ni.Callee = in.Callee
			if !in.Ty.IsVoid() {
				ni.Nam = f.GenName("inl." + in.Name())
				vmap[in] = ni
			}
			nb.Append(ni)
		}
	}
	// Wire operands (second pass: phis may reference forward defs).
	for _, b := range callee.Blocks {
		nb := bmap[b]
		ci := 0
		for _, in := range b.Instrs() {
			if in.Op == ir.OpRet {
				ci++ // the br we appended
				continue
			}
			ni := nb.Instrs()[ci]
			ci++
			for _, a := range in.Args() {
				if na, ok := vmap[a]; ok {
					ni.AddArg(na)
				} else {
					ni.AddArg(a)
				}
			}
			for i := 0; i < in.NumBlocks(); i++ {
				ni.AddBlockArg(bmap[in.BlockArg(i)])
			}
		}
	}

	if retPhi != nil && retPhi.NumArgs() > 0 {
		cont.InsertBefore(retPhi, cont.Instrs()[0])
	}

	// Redirect the call block into the inlined entry.
	br := ir.NewInstr(ir.OpBr, ir.Void)
	br.AddBlockArg(bmap[callee.Entry()])
	callBlock.Append(br)

	// Replace the call's value and delete it.
	if retPhi != nil {
		if retPhi.NumArgs() > 0 {
			call.ReplaceAllUsesWith(retPhi)
		} else {
			// The callee never returns; the continuation is
			// unreachable and the value unobservable.
			call.ReplaceAllUsesWith(ir.NewPoison(call.Ty))
		}
	}
	callBlock.Erase(call)
}
