package passes

import (
	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// LoopUnswitch hoists a loop-invariant conditional branch out of a
// loop by cloning the loop: one copy specialized for the condition
// being true, one for false, selected once before the loop.
//
// Under the paper's semantics, branching on the hoisted condition
// before the loop would introduce UB when the condition is poison and
// the loop would never have executed. The fixed variant (§5.1)
// therefore branches on freeze(cond); the Config.Unsound variant
// reproduces LLVM's historical unswitching, which branched on the raw
// condition and assumed branch-on-poison was a nondeterministic choice
// — the assumption that collides with GVN's (§3.3, PR27506).
type LoopUnswitch struct{}

// Name implements Pass.
func (LoopUnswitch) Name() string { return "loopunswitch" }

func init() {
	// Unswitching clones whole loops and rewires the preheader.
	Register(PassInfo{Name: "loopunswitch", New: func() Pass { return LoopUnswitch{} }, Preserves: PreservesNone})
}

// Run implements Pass.
func (LoopUnswitch) Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	changed := false
	// Unswitch at most a few times per run to bound code growth.
	for budget := 2; budget > 0; budget-- {
		li := am.LoopInfo()
		done := false
		for _, l := range li.Loops {
			if unswitchLoop(f, l, cfg) {
				changed = true
				done = true
				// Loop structures are stale; evict so the next round's
				// LoopInfo query recomputes over the rewritten CFG.
				am.InvalidateAll()
				break
			}
		}
		if !done {
			break
		}
	}
	return changed
}

// branchAlwaysExecutes reports whether every execution that enters the
// loop reaches block b: b dominates every latch and every in-loop
// block with an exit edge.
func branchAlwaysExecutes(f *ir.Func, l *analysis.Loop, b *ir.Block) bool {
	dt := analysis.NewDomTree(f)
	for _, latch := range l.Latches {
		if !dt.Dominates(b, latch) {
			return false
		}
	}
	for blk := range l.Blocks {
		for _, s := range blk.Succs() {
			if !l.Blocks[s] && !dt.Dominates(b, blk) {
				return false
			}
		}
	}
	return true
}

func unswitchLoop(f *ir.Func, l *analysis.Loop, cfg *Config) bool {
	ph := l.Preheader(f)
	if ph == nil {
		return false
	}
	// Find an invariant conditional branch strictly inside the loop
	// whose targets are both in the loop (a guard of loop body work,
	// like the paper's "if (c2)"), or in-loop with one exit edge.
	var br *ir.Instr
	for b := range l.Blocks {
		t := b.Terminator()
		if t == nil || !t.IsConditionalBr() {
			continue
		}
		if b == l.Header {
			continue // the loop's own exit test
		}
		if _, isConst := t.Arg(0).(*ir.Const); isConst {
			continue
		}
		if l.IsInvariant(t.Arg(0)) {
			br = t
			break
		}
	}
	if br == nil {
		return false
	}
	cond := br.Arg(0)

	// All loop-defined values used outside the loop must be consumed
	// by phis in exit blocks (LCSSA-ish); otherwise we skip.
	for b := range l.Blocks {
		for _, in := range b.Instrs() {
			if in.Ty.IsVoid() {
				continue
			}
			for _, u := range in.Users() {
				if u.Parent() == nil {
					continue
				}
				if !l.Blocks[u.Parent()] && u.Op != ir.OpPhi {
					return false
				}
				if !l.Blocks[u.Parent()] && u.Op == ir.OpPhi {
					// Must be an exit block adjacent to the loop.
					adjacent := false
					for _, p := range f.Preds(u.Parent()) {
						if l.Blocks[p] {
							adjacent = true
						}
					}
					if !adjacent {
						return false
					}
				}
			}
		}
	}

	// Clone the loop body.
	vmap := map[ir.Value]ir.Value{}
	bmap := map[*ir.Block]*ir.Block{}
	var origBlocks []*ir.Block
	for _, b := range f.Blocks { // deterministic order
		if l.Blocks[b] {
			origBlocks = append(origBlocks, b)
		}
	}
	for _, b := range origBlocks {
		nb := f.NewBlock(b.Name() + ".us")
		bmap[b] = nb
	}
	for _, b := range origBlocks {
		nb := bmap[b]
		for _, in := range b.Instrs() {
			ni := ir.NewInstr(in.Op, in.Ty)
			ni.Attrs = in.Attrs
			ni.Pred = in.Pred
			ni.AllocTy = in.AllocTy
			ni.Callee = in.Callee
			if !in.Ty.IsVoid() {
				ni.Nam = f.GenName(in.Name() + ".us")
			}
			nb.Append(ni)
			vmap[in] = ni
		}
	}
	// Wire cloned operands.
	for _, b := range origBlocks {
		cloneIdx := 0
		for _, in := range b.Instrs() {
			ni := bmap[b].Instrs()[cloneIdx]
			cloneIdx++
			for _, a := range in.Args() {
				if na, ok := vmap[a]; ok {
					ni.AddArg(na)
				} else {
					ni.AddArg(a)
				}
			}
			for i := 0; i < in.NumBlocks(); i++ {
				tb := in.BlockArg(i)
				if nb, ok := bmap[tb]; ok {
					ni.AddBlockArg(nb)
				} else {
					ni.AddBlockArg(tb)
				}
			}
		}
	}
	// Exit-block phis: add incomings from cloned predecessors.
	for _, e := range l.Exits() {
		for _, phi := range e.Phis() {
			for i := 0; i < phi.NumBlocks(); i++ {
				p := phi.BlockArg(i)
				if np, ok := bmap[p]; ok {
					v := phi.Arg(i)
					if nv, ok := vmap[v]; ok {
						phi.AddPhiIncoming(nv, np)
					} else {
						phi.AddPhiIncoming(v, np)
					}
				}
			}
		}
	}
	// Specialize: original loop takes the true edge, clone the false
	// edge.
	specialize := func(t *ir.Instr, takeTrue bool) {
		taken := t.BlockArg(0)
		dead := t.BlockArg(1)
		if !takeTrue {
			taken, dead = dead, taken
		}
		if dead != taken {
			for _, p := range dead.Phis() {
				p.RemovePhiIncoming(t.Parent())
			}
		}
		nbr := ir.NewInstr(ir.OpBr, ir.Void)
		nbr.AddBlockArg(taken)
		blk := t.Parent()
		blk.InsertBefore(nbr, t)
		blk.Remove(t)
		dropOperands(t)
	}
	clonedBr := vmap[br].(*ir.Instr)
	specialize(br, true)
	specialize(clonedBr, false)

	// Rewrite the preheader: branch on (frozen) cond to the two loop
	// headers.
	phTerm := ph.Terminator()
	hoisted := cond
	// Freezing is needed exactly when branch-on-poison is UB (always
	// under the Freeze semantics; also under a legacy pipeline that
	// resolved §3.3 in GVN's favour). The historical unswitching
	// (Unsound) never froze.
	//
	// §5.1's refinement: "Freeze can be avoided if the branch on c2 is
	// placed in the loop pre-header (since then the loop is guaranteed
	// to execute at least once)" — generalized: if entering the loop
	// guarantees the branch executes, hoisting it to the preheader adds
	// no UB the original didn't have. Entering the loop is itself
	// guaranteed (the preheader branches unconditionally to the
	// header), so the condition is that the branch's block dominates
	// every block that can leave the loop (every latch and every
	// exiting block).
	guaranteed := branchAlwaysExecutes(f, l, br.Parent())
	if cfg.Sem.BranchPoison == core.BranchPoisonIsUB && !cfg.Unsound && !guaranteed {
		fz := ir.NewInstr(ir.OpFreeze, cond.Type(), cond)
		fz.Nam = f.GenName("unswitch.frz")
		ph.InsertBefore(fz, phTerm)
		hoisted = fz
	}
	nbr := ir.NewInstr(ir.OpBr, ir.Void, hoisted)
	nbr.AddBlockArg(l.Header)
	nbr.AddBlockArg(bmap[l.Header])
	ph.InsertBefore(nbr, phTerm)
	ph.Remove(phTerm)
	dropOperands(phTerm)

	// Header phis in both copies keep their preheader incoming — the
	// preheader is still the predecessor of both headers. Nothing to
	// fix there. Cloned header phis already reference ph via the
	// non-loop incoming (not in bmap).
	return true
}
