package passes_test

import (
	"strings"
	"testing"

	"tameir/internal/analysis"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
)

// corpus enumerates a bounded slice of the §6 generator space.
func corpus(t *testing.T, numInstrs, maxFuncs int) []*ir.Func {
	t.Helper()
	gen := optfuzz.DefaultConfig(numInstrs)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.EnumAttrs = true
	gen.MaxFuncs = maxFuncs
	var out []*ir.Func
	optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
		out = append(out, f)
		return true
	})
	if len(out) == 0 {
		t.Fatal("empty corpus")
	}
	return out
}

// TestO2Fixpoint: when the pipeline reports convergence (a full round
// with no change, rather than the MaxIters cap), the function is a true
// fixed point — a second full run changes nothing. A minority of
// candidates legitimately hit the cap (reassociate and instcombine can
// trade canonical forms indefinitely); the cap is exactly what bounds
// them, so the test only insists convergence is the common case.
func TestO2Fixpoint(t *testing.T) {
	cfg := passes.DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	funcs := corpus(t, 2, 400)
	total := passes.NewStats()
	capped := 0
	for _, f := range funcs {
		pm := passes.O2().Instrument()
		pm.RunFunc(f, cfg)
		if pm.Stats.Converged() == 1 {
			if pm.RunFunc(f, cfg) {
				t.Fatalf("converged function changed on a second O2 run:\n%s", f)
			}
		} else {
			capped++
		}
		total.Merge(pm.Stats)
	}
	if capped*4 > len(funcs) {
		t.Errorf("%d of %d functions hit the iteration cap; convergence should be the common case",
			capped, len(funcs))
	}
	if total.Analysis().Hits == 0 {
		t.Error("analysis cache never hit across the corpus")
	}
}

// TestCachedAnalysesDontChangeOutput is the refactor's load-bearing
// guarantee: with cached analyses + preserved-set invalidation the
// optimizer must produce byte-identical output to the historical
// recompute-every-pass behaviour (NoAnalysisCache reproduces it).
func TestCachedAnalysesDontChangeOutput(t *testing.T) {
	cfg := passes.DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	cached := passes.O2()
	uncached := passes.O2()
	uncached.NoAnalysisCache = true
	for _, f := range corpus(t, 2, 600) {
		a, b := ir.CloneFunc(f), ir.CloneFunc(f)
		cached.RunFunc(a, cfg)
		uncached.RunFunc(b, cfg)
		if a.String() != b.String() {
			t.Fatalf("cached analyses changed the output for\n%s\ncached:\n%s\nuncached:\n%s",
				f, a, b)
		}
	}
}

// TestPreservedAnalysesInvalidation: a CFG-mutating pass (simplifycfg)
// must evict the cached domtree, while a pass that only rewrites
// instructions (instsimplify) must keep it.
func TestPreservedAnalysesInvalidation(t *testing.T) {
	f := ir.MustParseFunc(`define i2 @f(i2 %x) {
entry:
  %a = add i2 %x, 0
  br i1 true, label %t, label %e
t:
  ret i2 %a
e:
  ret i2 0
}`)
	cfg := passes.DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	am := analysis.NewManager(f)
	am.DomTree()

	if !passes.RunPassWithManager(passes.InstSimplify{}, f, cfg, am) {
		t.Fatal("instsimplify did not fold the add-zero identity")
	}
	if !am.Cached(analysis.Doms) {
		t.Fatal("instsimplify evicted the domtree despite preserving all analyses")
	}

	if !passes.RunPassWithManager(passes.SimplifyCFG{}, f, cfg, am) {
		t.Fatal("simplifycfg did not fold the constant branch")
	}
	if am.Cached(analysis.Doms) || am.Cached(analysis.CFG) {
		t.Fatal("simplifycfg left stale CFG analyses cached")
	}
}

// TestRunFuncChangedAttribution: the fired-pass list names the passes
// that changed the function, in first-fire order, deduplicated.
func TestRunFuncChangedAttribution(t *testing.T) {
	f := ir.MustParseFunc(`define i2 @f(i2 %x) {
entry:
  %a = add i2 %x, 0
  ret i2 %a
}`)
	cfg := passes.DefaultFreezeConfig()
	pm := passes.O2()
	changed, fired := pm.RunFuncChanged(f, cfg)
	if !changed || len(fired) == 0 {
		t.Fatalf("changed=%v fired=%v", changed, fired)
	}
	seen := map[string]bool{}
	for _, n := range fired {
		if seen[n] {
			t.Errorf("pass %q listed twice in %v", n, fired)
		}
		seen[n] = true
	}
	if !seen["instsimplify"] {
		t.Errorf("instsimplify folded the add but is missing from %v", fired)
	}
}

// TestStatsReports: -time-passes and -stats style reports include every
// pipeline pass and the analysis-cache counters.
func TestStatsReports(t *testing.T) {
	cfg := passes.DefaultFreezeConfig()
	pm := passes.O2().Instrument()
	for _, f := range corpus(t, 1, 50) {
		pm.RunFunc(f, cfg)
	}
	var timeRep, statRep strings.Builder
	pm.Stats.ReportTime(&timeRep)
	pm.Stats.Report(&statRep)
	for _, want := range []string{"Pass execution timing", "gvn", "simplifycfg"} {
		if !strings.Contains(timeRep.String(), want) {
			t.Errorf("-time-passes report lacks %q:\n%s", want, timeRep.String())
		}
	}
	for _, want := range []string{"Pass statistics", "analyses computed", "fixpoint iterations"} {
		if !strings.Contains(statRep.String(), want) {
			t.Errorf("-stats report lacks %q:\n%s", want, statRep.String())
		}
	}
}

// TestStatsMerge: merging shard collectors adds counters and keeps
// pipeline order.
func TestStatsMerge(t *testing.T) {
	cfg := passes.DefaultFreezeConfig()
	funcs := corpus(t, 1, 60)

	whole := passes.O2().Instrument()
	for _, f := range funcs {
		whole.RunFunc(ir.CloneFunc(f), cfg)
	}

	a, b := passes.O2().Instrument(), passes.O2().Instrument()
	for i, f := range funcs {
		pm := a
		if i >= len(funcs)/2 {
			pm = b
		}
		pm.RunFunc(ir.CloneFunc(f), cfg)
	}
	merged := passes.NewStats()
	merged.Merge(a.Stats)
	merged.Merge(b.Stats)

	if merged.Funcs() != whole.Stats.Funcs() || merged.FixpointIters() != whole.Stats.FixpointIters() ||
		merged.Converged() != whole.Stats.Converged() || merged.Analysis() != whole.Stats.Analysis() {
		t.Errorf("merged counters funcs=%d iters=%d converged=%d analysis=%+v diverge from whole-run funcs=%d iters=%d converged=%d analysis=%+v",
			merged.Funcs(), merged.FixpointIters(), merged.Converged(), merged.Analysis(),
			whole.Stats.Funcs(), whole.Stats.FixpointIters(), whole.Stats.Converged(), whole.Stats.Analysis())
	}
	ws, ms := whole.Stats.PassStats(), merged.PassStats()
	if len(ws) != len(ms) {
		t.Fatalf("pass count %d vs %d", len(ms), len(ws))
	}
	for i := range ws {
		if ms[i].Name != ws[i].Name || ms[i].Runs != ws[i].Runs ||
			ms[i].Changed != ws[i].Changed || ms[i].InstrsRemoved != ws[i].InstrsRemoved {
			t.Errorf("pass %d: merged %+v vs whole %+v", i, ms[i], ws[i])
		}
	}
}
