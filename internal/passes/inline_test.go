package passes

import (
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/refine"
)

func TestInlinerBasic(t *testing.T) {
	mod := ir.MustParseModule(`define i8 @sq(i8 %x) {
entry:
  %m = mul i8 %x, %x
  ret i8 %m
}

define i8 @f(i8 %a) {
entry:
  %r = call i8 @sq(i8 %a)
  %s = add i8 %r, 1
  ret i8 %s
}`)
	f := mod.FuncByName("f")
	cfg := DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	if !RunPass(Inliner{}, f, cfg) {
		t.Fatal("inliner did nothing")
	}
	if countOp(f, ir.OpCall) != 0 {
		t.Fatalf("call not inlined:\n%s", f)
	}
	out := core.Exec(f, []core.Value{core.VC(ir.I8, 7)}, core.ZeroOracle{}, core.FreezeOptions())
	if out.Kind != core.OutRet || out.Val.Uint() != 50 {
		t.Errorf("f(7) = %v, want 50", out)
	}
}

func TestInlinerControlFlow(t *testing.T) {
	mod := ir.MustParseModule(`define i8 @abs(i8 %x) {
entry:
  %neg = icmp slt i8 %x, 0
  br i1 %neg, label %flip, label %keep
flip:
  %n = sub i8 0, %x
  ret i8 %n
keep:
  ret i8 %x
}

define i8 @f(i8 %a, i8 %b) {
entry:
  %r1 = call i8 @abs(i8 %a)
  %r2 = call i8 @abs(i8 %b)
  %s = add i8 %r1, %r2
  ret i8 %s
}`)
	f := mod.FuncByName("f")
	cfg := DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	RunPass(Inliner{}, f, cfg)
	if countOp(f, ir.OpCall) != 0 {
		t.Fatalf("calls not inlined:\n%s", f)
	}
	for _, c := range []struct{ a, b, want uint64 }{
		{5, 3, 8}, {0xfb, 3, 8}, {0xfb, 0xfd, 8}, {0, 0, 0},
	} {
		out := core.Exec(f, []core.Value{core.VC(ir.I8, c.a), core.VC(ir.I8, c.b)}, core.ZeroOracle{}, core.FreezeOptions())
		if out.Kind != core.OutRet || out.Val.Uint() != c.want {
			t.Errorf("f(%d,%d) = %v, want %d", int8(c.a), int8(c.b), out, c.want)
		}
	}
}

func TestInlinerRefinesExhaustively(t *testing.T) {
	mod := ir.MustParseModule(`define i2 @helper(i2 %x, i2 %y) {
entry:
  %m = add nsw i2 %x, %y
  %c = icmp eq i2 %m, 0
  br i1 %c, label %z, label %nz
z:
  ret i2 3
nz:
  ret i2 %m
}

define i2 @f(i2 %a, i2 %b) {
entry:
  %r = call i2 @helper(i2 %a, i2 %b)
  ret i2 %r
}`)
	orig := ir.CloneFunc(mod.FuncByName("f"))
	// The clone's call still targets the original helper, which is
	// what the interpreter resolves through the module — keep the
	// original module function for execution.
	f := mod.FuncByName("f")
	cfg := DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	RunPass(Inliner{}, f, cfg)
	if countOp(f, ir.OpCall) != 0 {
		t.Fatalf("call not inlined:\n%s", f)
	}
	// orig is detached from the module; rebuild a module around it so
	// the callee resolves.
	om := ir.NewModule()
	om.AddFunc(mod.FuncByName("helper"))
	om.AddFunc(orig)
	fz := core.FreezeOptions()
	r := refine.Check(orig, f, refine.DefaultConfig(fz, fz))
	if r.Status != refine.Verified {
		t.Errorf("inlining should verify: %s\n%s", r, f)
	}
}

func TestInlinerSkipsRecursion(t *testing.T) {
	mod := ir.MustParseModule(`define i8 @fact(i8 %n) {
entry:
  %z = icmp eq i8 %n, 0
  br i1 %z, label %base, label %rec
base:
  ret i8 1
rec:
  %n1 = sub i8 %n, 1
  %r = call i8 @fact(i8 %n1)
  %m = mul i8 %n, %r
  ret i8 %m
}`)
	f := mod.FuncByName("fact")
	cfg := DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	RunPass(Inliner{}, f, cfg)
	if countOp(f, ir.OpCall) != 1 {
		t.Errorf("self-recursion must not inline:\n%s", f)
	}
}

func TestInlinerFreezeIsFree(t *testing.T) {
	// A callee stuffed with freezes: under the §6 cost model it still
	// inlines when freeze-aware; the freeze-blind cost model rejects
	// it.
	src := `define i8 @frosty(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %f3 = freeze i8 %f2
  %f4 = freeze i8 %f3
  %f5 = freeze i8 %f4
  %f6 = freeze i8 %f5
  %a1 = add i8 %f6, 1
  %f7 = freeze i8 %a1
  %f8 = freeze i8 %f7
  %f9 = freeze i8 %f8
  %f10 = freeze i8 %f9
  %f11 = freeze i8 %f10
  %f12 = freeze i8 %f11
  %f13 = freeze i8 %f12
  %f14 = freeze i8 %f13
  %f15 = freeze i8 %f14
  %f16 = freeze i8 %f15
  %f17 = freeze i8 %f16
  %f18 = freeze i8 %f17
  %f19 = freeze i8 %f18
  %f20 = freeze i8 %f19
  %f21 = freeze i8 %f20
  %f22 = freeze i8 %f21
  %f23 = freeze i8 %f22
  %f24 = freeze i8 %f23
  %f25 = freeze i8 %f24
  %f26 = freeze i8 %f25
  %f27 = freeze i8 %f26
  %f28 = freeze i8 %f27
  %f29 = freeze i8 %f28
  %f30 = freeze i8 %f29
  %a2 = add i8 %f30, 1
  ret i8 %a2
}

define i8 @f(i8 %a) {
entry:
  %r = call i8 @frosty(i8 %a)
  ret i8 %r
}`
	// 30 freezes + 2 adds: cost 2 when freeze is free, 32 otherwise.
	mod := ir.MustParseModule(src)
	aware := DefaultFreezeConfig()
	RunPass(Inliner{}, mod.FuncByName("f"), aware)
	if countOp(mod.FuncByName("f"), ir.OpCall) != 0 {
		t.Error("freeze-aware inliner should inline the freeze-heavy callee")
	}

	mod2 := ir.MustParseModule(src)
	blind := DefaultFreezeConfig()
	blind.FreezeAware = false
	RunPass(Inliner{}, mod2.FuncByName("f"), blind)
	if countOp(mod2.FuncByName("f"), ir.OpCall) != 1 {
		t.Error("freeze-blind inliner should reject the freeze-heavy callee (cost 32 > 30)")
	}
}

func TestInlinerPreservesPoisonFlow(t *testing.T) {
	// Inlining must not lose the callee's deferred UB: helper returns
	// poison on overflow, and so must the inlined body.
	mod := ir.MustParseModule(`define i2 @inc(i2 %x) {
entry:
  %r = add nsw i2 %x, 1
  ret i2 %r
}

define i2 @f(i2 %a) {
entry:
  %r = call i2 @inc(i2 %a)
  ret i2 %r
}`)
	f := mod.FuncByName("f")
	RunPass(Inliner{}, f, DefaultFreezeConfig())
	out := core.Exec(f, []core.Value{core.VC(ir.I2, 1)}, core.ZeroOracle{}, core.FreezeOptions())
	if out.Kind != core.OutRet || !out.Val.IsPoison() {
		t.Errorf("inlined nsw overflow should be poison, got %v", out)
	}
}
