package passes

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
)

// This file implements a FileCheck-lite driver over testdata/*.ll,
// LLVM-style: each file carries a RUN line naming the passes and
// semantics, and CHECK / CHECK-NOT / CHECK-NEXT directives matched
// against the optimized module's printed form.
//
//	; RUN: passes=instcombine,dce sem=freeze [unsound] [freezeblind]
//	; CHECK: %r = shl i8
//	; CHECK-NEXT: ret i8 %r
//	; CHECK-NOT: mul
//
// CHECK matches a substring at or after the previous match's line;
// CHECK-NEXT on the immediately following line; CHECK-NOT asserts the
// substring is absent from the whole output.

type checkDirective struct {
	kind string // CHECK, CHECK-NEXT, CHECK-NOT
	text string
	line int
}

func runFileCheck(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(raw)
	lines := strings.Split(src, "\n")

	var passNames []string
	var sem string
	unsound, freezeblind := false, false
	var checks []checkDirective
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "; RUN:"):
			for _, tok := range strings.Fields(strings.TrimPrefix(trimmed, "; RUN:")) {
				switch {
				case strings.HasPrefix(tok, "passes="):
					passNames = strings.Split(strings.TrimPrefix(tok, "passes="), ",")
				case strings.HasPrefix(tok, "sem="):
					sem = strings.TrimPrefix(tok, "sem=")
				case tok == "unsound":
					unsound = true
				case tok == "freezeblind":
					freezeblind = true
				default:
					t.Fatalf("%s: unknown RUN token %q", path, tok)
				}
			}
		case strings.HasPrefix(trimmed, "; CHECK-NOT:"):
			checks = append(checks, checkDirective{"CHECK-NOT", strings.TrimSpace(strings.TrimPrefix(trimmed, "; CHECK-NOT:")), i + 1})
		case strings.HasPrefix(trimmed, "; CHECK-NEXT:"):
			checks = append(checks, checkDirective{"CHECK-NEXT", strings.TrimSpace(strings.TrimPrefix(trimmed, "; CHECK-NEXT:")), i + 1})
		case strings.HasPrefix(trimmed, "; CHECK:"):
			checks = append(checks, checkDirective{"CHECK", strings.TrimSpace(strings.TrimPrefix(trimmed, "; CHECK:")), i + 1})
		}
	}
	if len(passNames) == 0 || sem == "" {
		t.Fatalf("%s: missing RUN line", path)
	}
	if len(checks) == 0 {
		t.Fatalf("%s: no CHECK directives", path)
	}

	mod, err := ir.ParseModule(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", path, err)
	}
	cfg := &Config{Unsound: unsound, VerifyAfterEach: true}
	switch sem {
	case "freeze":
		cfg.Sem = core.FreezeOptions()
		cfg.FreezeAware = !freezeblind
	case "legacy":
		cfg.Sem = core.LegacyOptions(core.BranchPoisonNondet)
	default:
		t.Fatalf("%s: unknown sem %q", path, sem)
	}
	for _, name := range passNames {
		p := PassByName(name)
		if p == nil {
			t.Fatalf("%s: unknown pass %q", path, name)
		}
		for _, fn := range mod.Funcs {
			RunPass(p, fn, cfg)
		}
	}
	out := mod.String()
	outLines := strings.Split(out, "\n")

	cursor := -1 // index of the line of the last positive match
	for _, c := range checks {
		switch c.kind {
		case "CHECK-NOT":
			if strings.Contains(out, c.text) {
				t.Errorf("%s:%d: CHECK-NOT %q matched:\n%s", path, c.line, c.text, out)
			}
		case "CHECK":
			found := -1
			for i := cursor + 1; i < len(outLines); i++ {
				if strings.Contains(outLines[i], c.text) {
					found = i
					break
				}
			}
			if found < 0 {
				t.Errorf("%s:%d: CHECK %q not found after line %d:\n%s", path, c.line, c.text, cursor+1, out)
				return
			}
			cursor = found
		case "CHECK-NEXT":
			if cursor+1 >= len(outLines) || !strings.Contains(outLines[cursor+1], c.text) {
				got := "<eof>"
				if cursor+1 < len(outLines) {
					got = outLines[cursor+1]
				}
				t.Errorf("%s:%d: CHECK-NEXT %q, next line is %q:\n%s", path, c.line, c.text, got, out)
				return
			}
			cursor++
		}
	}
}

func TestFileCheckCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.ll")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.ll files")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) { runFileCheck(t, f) })
	}
}
