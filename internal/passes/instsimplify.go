package passes

import (
	"tameir/internal/ir"
)

// InstSimplify folds instructions to existing values or constants
// without creating new instructions: constant folding plus algebraic
// identities. Every rule is a refinement under both semantics (each
// rule's comment notes the deferred-UB argument where it is subtle).
type InstSimplify struct{}

// Name implements Pass.
func (InstSimplify) Name() string { return "instsimplify" }

func init() {
	// Pure folding: replaces uses and erases instructions in place.
	Register(PassInfo{Name: "instsimplify", New: func() Pass { return InstSimplify{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (InstSimplify) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := false
	for {
		localChange := false
		for _, b := range f.Blocks {
			for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
				if in.Parent() == nil {
					continue // erased by an earlier simplification
				}
				if v, ok := simplifyInstr(in, cfg); ok {
					replaceAndErase(in, v)
					localChange = true
				}
			}
		}
		if !localChange {
			break
		}
		changed = true
	}
	return changed
}

// simplifyInstr returns the simpler replacement value, if any.
func simplifyInstr(in *ir.Instr, cfg *Config) (ir.Value, bool) {
	if in.Op.IsTerminator() || in.Op.HasSideEffects() {
		return nil, false
	}
	if v, ok := FoldConstant(in, cfg.Sem.Mode, cfg.FreezeAware); ok {
		// Don't self-replace (freeze(freeze) returns its own operand).
		if v != ir.Value(in) {
			return v, true
		}
	}
	switch {
	case in.Op.IsBinop():
		return simplifyBinop(in)
	case in.Op == ir.OpICmp:
		return simplifyICmp(in)
	case in.Op == ir.OpSelect:
		return simplifySelect(in)
	case in.Op == ir.OpPhi:
		return simplifyPhi(in)
	}
	return nil, false
}

func simplifyBinop(in *ir.Instr) (ir.Value, bool) {
	x, y := in.Arg(0), in.Arg(1)
	// View commutative binops with the constant on the right; the
	// rules below then only need one orientation.
	if in.Op.IsCommutative() && ir.IsConstLeaf(x) && !ir.IsConstLeaf(y) {
		x, y = y, x
	}
	switch in.Op {
	case ir.OpAdd:
		if isZeroConst(y) {
			return x, true // x+0 = x (exact, poison passes through)
		}
		if isZeroConst(x) {
			return y, true
		}
	case ir.OpSub:
		if isZeroConst(y) {
			return x, true
		}
		// x - x = 0: sound even for poison (0 ⊑ poison) and legacy
		// undef (two fresh picks include equal ones, and folding to a
		// member of the result set is a refinement).
		if valueEq(x, y) {
			return ir.ConstInt(in.Ty, 0), true
		}
	case ir.OpMul:
		if isOneConst(y) {
			return x, true
		}
		if isZeroConst(y) {
			// x*0 = 0: if x is poison the source is poison ⊒ 0.
			return ir.ConstInt(in.Ty, 0), true
		}
	case ir.OpAnd:
		if isZeroConst(y) {
			return ir.ConstInt(in.Ty, 0), true
		}
		if isAllOnesConst(y) {
			return x, true
		}
		if valueEq(x, y) {
			return x, true
		}
	case ir.OpOr:
		if isZeroConst(y) {
			return x, true
		}
		if isAllOnesConst(y) {
			return ir.ConstInt(in.Ty, ir.TruncBits(^uint64(0), in.Ty.Bits)), true
		}
		if valueEq(x, y) {
			return x, true
		}
	case ir.OpXor:
		if isZeroConst(y) {
			return x, true
		}
		if valueEq(x, y) {
			return ir.ConstInt(in.Ty, 0), true
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if isZeroConst(y) {
			return x, true
		}
		if isZeroConst(x) {
			// 0 shifted is 0 unless the amount over-shifts (deferred
			// UB ⊒ 0, still sound). The poison-generating flags are all
			// vacuous on a zero LHS — 0 << k never overflows (nsw/nuw)
			// and never discards set bits (exact) — so, unlike the
			// general flagged-shift case, no may-be-poison bail is
			// needed here.
			return ir.ConstInt(in.Ty, 0), true
		}
	case ir.OpUDiv, ir.OpSDiv:
		if isOneConst(y) {
			return x, true
		}
	case ir.OpURem:
		if isOneConst(y) {
			return ir.ConstInt(in.Ty, 0), true
		}
	}
	return nil, false
}

func simplifyICmp(in *ir.Instr) (ir.Value, bool) {
	x, y := in.Arg(0), in.Arg(1)
	if valueEq(x, y) {
		// icmp p x, x folds by reflexivity. Poison operand: source
		// poison ⊒ any constant.
		switch in.Pred {
		case ir.PredEQ, ir.PredUGE, ir.PredULE, ir.PredSGE, ir.PredSLE:
			return ir.ConstBool(true), true
		default:
			return ir.ConstBool(false), true
		}
	}
	if !x.Type().IsInt() {
		return nil, false
	}
	w := x.Type().Bits
	if c, ok := constOperand(y); ok {
		// Unsatisfiable / tautological range comparisons.
		maxU := ir.TruncBits(^uint64(0), w)
		switch {
		case in.Pred == ir.PredULT && c.IsZero():
			return ir.ConstBool(false), true
		case in.Pred == ir.PredUGE && c.IsZero():
			return ir.ConstBool(true), true
		case in.Pred == ir.PredUGT && c.Bits == maxU:
			return ir.ConstBool(false), true
		case in.Pred == ir.PredULE && c.Bits == maxU:
			return ir.ConstBool(true), true
		}
	}
	return nil, false
}

func simplifySelect(in *ir.Instr) (ir.Value, bool) {
	// select c, x, x = x: if c is poison the source is poison (Figure
	// 5) or poison/UB (legacy readings); x ⊑ all of them.
	if valueEq(in.Arg(1), in.Arg(2)) {
		return in.Arg(1), true
	}
	// select c, x, poison = x (and symmetrically): when the poison arm
	// would be picked the source is poison — or already poison/UB via
	// the either-arm and cond-poison knobs — and anything refines
	// poison, so the other arm always does. Unlike the historical
	// select-undef fold (§3.4, which this rule deliberately does not
	// subsume), poison is the top of the refinement order, so no
	// may-be-poison bail is needed on any knob.
	if _, isP := in.Arg(2).(*ir.Poison); isP {
		return in.Arg(1), true
	}
	if _, isP := in.Arg(1).(*ir.Poison); isP {
		return in.Arg(2), true
	}
	return nil, false
}

func simplifyPhi(in *ir.Instr) (ir.Value, bool) {
	// A phi whose incomings are all the same value (ignoring
	// self-references) is that value.
	var v ir.Value
	for i := 0; i < in.NumArgs(); i++ {
		a := in.Arg(i)
		if a == ir.Value(in) {
			continue
		}
		if v == nil {
			v = a
		} else if !valueEq(v, a) {
			return nil, false
		}
	}
	if v == nil {
		return nil, false
	}
	return v, true
}
