package passes

import (
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/refine"
)

// This file reproduces Section 3 of the paper end-to-end (experiment
// E1 in DESIGN.md): each documented inconsistency is demonstrated as a
// refinement violation of the historical pass behaviour, and the
// paper's fix is shown sound.

// §3.3 + PR27506: loop unswitching and GVN assume conflicting
// semantics for branch-on-poison. Whichever semantics is chosen, the
// composition of the two historical passes miscompiles.
//
// The function: t = x+1; c2 = (t == y); loop { if (c2) ret t' else
// ret 0 } where t' is a re-computation of x+1 that GVN's equality
// propagation rewrites to y.
const unswitchGVNSrc = `define i2 @f(i2 %x, i2 %y, i1 %c) {
entry:
  %t = add nsw i2 %x, 1
  %cmp = icmp eq i2 %t, %y
  br label %head
head:
  %cc = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cc, label %body, label %exit
body:
  br i1 %cmp, label %then, label %latch
then:
  %w = add nsw i2 %x, 1
  ret i2 %w
latch:
  br label %head
exit:
  ret i2 3
}`

func runHistoricalUnswitchGVN(t *testing.T) (*ir.Func, *ir.Func) {
	t.Helper()
	orig := ir.MustParseFunc(unswitchGVNSrc)
	work := ir.CloneFunc(orig)
	cfg := &Config{
		Sem:             core.LegacyOptions(core.BranchPoisonNondet),
		Unsound:         true,
		VerifyAfterEach: true,
	}
	RunPass(GVN{}, work, cfg)
	RunPass(LoopUnswitch{}, work, cfg)
	return orig, work
}

func TestSection33UnswitchPlusGVNMiscompilesUnderEitherSemantics(t *testing.T) {
	orig, work := runHistoricalUnswitchGVN(t)

	// Sanity: unswitching hoisted a branch on %cmp into the preheader
	// region without freezing, and GVN rewrote %w to %y somewhere.
	if countOp(work, ir.OpFreeze) != 0 {
		t.Fatalf("historical unswitching must not freeze:\n%s", work)
	}

	// Under branch-on-poison-is-UB (GVN's assumption) the transformed
	// program is refuted: with y=poison and c=false the source returns
	// 3 but the target branches on poison before the loop.
	ub := core.LegacyOptions(core.BranchPoisonIsUB)
	r := refine.Check(orig, work, refine.DefaultConfig(ub, ub))
	if r.Status != refine.Refuted {
		t.Errorf("composition should be refuted under UB-on-branch-poison: %s\n%s", r, work)
	}

	// Under nondeterministic-branch-on-poison (unswitching's
	// assumption) it is ALSO refuted: with y=poison and c=true the
	// nondeterministic branch can enter %then, whose GVN-rewritten
	// return passes poison y where the source returned a concrete
	// value.
	nondet := core.LegacyOptions(core.BranchPoisonNondet)
	r = refine.Check(orig, work, refine.DefaultConfig(nondet, nondet))
	if r.Status != refine.Refuted {
		t.Errorf("composition should be refuted under nondet-branch-on-poison: %s\n%s", r, work)
	}
}

func TestSection33FixedPipelineSound(t *testing.T) {
	// The paper's fix: freeze semantics, unswitching freezes the
	// hoisted condition, GVN keeps its propagation (now justified).
	orig := ir.MustParseFunc(unswitchGVNSrc)
	work := ir.CloneFunc(orig)
	cfg := DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	RunPass(GVN{}, work, cfg)
	RunPass(LoopUnswitch{}, work, cfg)
	if countOp(work, ir.OpFreeze) == 0 {
		t.Fatalf("fixed unswitching must freeze the hoisted condition:\n%s", work)
	}
	fz := core.FreezeOptions()
	r := refine.Check(orig, work, refine.DefaultConfig(fz, fz))
	if r.Status != refine.Verified {
		t.Errorf("fixed unswitch+GVN should verify: %s\n%s", r, work)
	}
}

// §3.2 / PR21412: hoisting a division past a control-flow check.
func TestSection32DivisionHoistMiscompiles(t *testing.T) {
	src := `define i2 @f(i2 %k, i1 %c) {
entry:
  %nz = icmp ne i2 %k, 0
  br i1 %nz, label %pre, label %out
pre:
  br label %head
head:
  %cc = phi i1 [ %c, %pre ], [ false, %body ]
  br i1 %cc, label %body, label %out
body:
  %q = udiv i2 1, %k
  br label %head
out:
  ret i2 0
}`
	orig := ir.MustParseFunc(src)
	work := ir.CloneFunc(orig)
	cfg := DefaultLegacyConfig()
	cfg.VerifyAfterEach = true
	RunPass(LICM{}, work, cfg)

	hoisted := false
	for _, in := range work.BlockByName("pre").Instrs() {
		if in.Op == ir.OpUDiv {
			hoisted = true
		}
	}
	if !hoisted {
		t.Fatalf("historical LICM should hoist 1/k:\n%s", work)
	}
	// k=undef, c=false: the source never divides (loop does not run);
	// the target divides unconditionally after a check that the
	// undef's *other* use passed.
	r := refine.Check(orig, work, refine.DefaultConfig(cfg.Sem, cfg.Sem))
	if r.Status != refine.Refuted {
		t.Errorf("§3.2 hoist should be refuted: %s\n%s", r, work)
	}
}

// §3.1: increasing the number of uses of a possibly-undef value.
func TestSection31DuplicateUses(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %y = mul i2 %x, 2
  ret i2 %y
}`
	orig := ir.MustParseFunc(src)
	work := ir.CloneFunc(orig)
	cfg := DefaultLegacyConfig()
	RunPass(InstCombine{}, work, cfg)
	if countOp(work, ir.OpAdd) != 1 {
		t.Fatalf("historical combiner should rewrite to x+x:\n%s", work)
	}
	legacy := core.LegacyOptions(core.BranchPoisonNondet)
	r := refine.Check(orig, work, refine.DefaultConfig(legacy, legacy))
	if r.Status != refine.Refuted {
		t.Errorf("§3.1 duplicate-uses rewrite should be refuted under legacy semantics: %s", r)
	}
	// Under the paper's semantics the same rewrite verifies (undef is
	// gone, and poison*2 = poison+poison).
	fzWork := ir.CloneFunc(orig)
	RunPass(InstCombine{}, fzWork, DefaultFreezeConfig())
	fz := core.FreezeOptions()
	r = refine.Check(orig, fzWork, refine.DefaultConfig(fz, fz))
	if r.Status != refine.Verified {
		t.Errorf("§3.1 rewrite should verify under freeze semantics: %s", r)
	}
}

// §3.4: the select/arithmetic tension, pass-level.
func TestSection34SelectTension(t *testing.T) {
	src := `define i1 @f(i1 %c, i1 %x) {
entry:
  %v = select i1 %c, i1 true, i1 %x
  ret i1 %v
}`
	orig := ir.MustParseFunc(src)

	// Historical InstCombine under the Figure 5 select: refuted.
	work := ir.CloneFunc(orig)
	cfg := &Config{Sem: core.FreezeOptions(), Unsound: true}
	RunPass(InstCombine{}, work, cfg)
	fz := core.FreezeOptions()
	r := refine.Check(orig, work, refine.DefaultConfig(fz, fz))
	if r.Status != refine.Refuted {
		t.Errorf("historical select→or should be refuted under Figure 5 select: %s\n%s", r, work)
	}

	// Fixed freeze-mode InstCombine: verified.
	fixed := ir.CloneFunc(orig)
	RunPass(InstCombine{}, fixed, DefaultFreezeConfig())
	r = refine.Check(orig, fixed, refine.DefaultConfig(fz, fz))
	if r.Status != refine.Verified {
		t.Errorf("fixed select→or+freeze should verify: %s\n%s", r, fixed)
	}
}

// §5.1: with the new semantics, unswitching alone — with freeze — is a
// refinement, and without freeze it is not.
func TestSection51UnswitchFreezeNecessity(t *testing.T) {
	src := `define i2 @g(i1 %c2, i1 %c) {
entry:
  br label %head
head:
  %cc = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cc, label %body, label %exit
body:
  br i1 %c2, label %foo, label %bar
foo:
  br label %latch
bar:
  br label %latch
latch:
  %v = phi i2 [ 1, %foo ], [ 2, %bar ]
  br label %head
exit:
  ret i2 0
}`
	orig := ir.MustParseFunc(src)
	fz := core.FreezeOptions()

	fixed := ir.CloneFunc(orig)
	cfg := DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	RunPass(LoopUnswitch{}, fixed, cfg)
	if countOp(fixed, ir.OpFreeze) != 1 {
		t.Fatalf("expected exactly one freeze after unswitching:\n%s", fixed)
	}
	r := refine.Check(orig, fixed, refine.DefaultConfig(fz, fz))
	if r.Status != refine.Verified {
		t.Errorf("frozen unswitching should verify: %s\n%s", r, fixed)
	}

	buggy := ir.CloneFunc(orig)
	bcfg := &Config{Sem: core.FreezeOptions(), Unsound: true, VerifyAfterEach: true}
	RunPass(LoopUnswitch{}, buggy, bcfg)
	if countOp(buggy, ir.OpFreeze) != 0 {
		t.Fatalf("unsound unswitching must not freeze:\n%s", buggy)
	}
	r = refine.Check(orig, buggy, refine.DefaultConfig(fz, fz))
	if r.Status != refine.Refuted {
		t.Errorf("unfrozen unswitching should be refuted under freeze semantics: %s\n%s", r, buggy)
	}
}

// End-to-end: the historical composition produces a concrete wrong
// observable, interpreted under the nondet semantics — the execution
// returns poison where the source could only return 0 or a defined
// value (the "end-to-end miscompilation" of §3.3).
func TestEndToEndMiscompilationWitness(t *testing.T) {
	orig, work := runHistoricalUnswitchGVN(t)
	nondet := core.LegacyOptions(core.BranchPoisonNondet)
	args := []core.Value{core.VC(ir.I2, 0), core.VPoison(ir.I2), core.VBool(true)}
	cfg := refine.DefaultConfig(nondet, nondet)
	sb := refine.Behaviors(orig, args, nondet, cfg)
	tb := refine.Behaviors(work, args, nondet, cfg)
	if sb.Poison || sb.UB {
		t.Fatalf("source must be well-defined on the witness input: %s", sb)
	}
	if !tb.Poison {
		t.Fatalf("miscompiled program should be able to return poison: src=%s tgt=%s\n%s", sb, tb, work)
	}
}

// §5.1's last paragraph: the freeze can be avoided when the hoisted
// branch was guaranteed to execute on loop entry (do-while shape). The
// unswitched program then branches on the raw condition — and still
// verifies, because the original program also branched on it.
func TestSection51FreezeAvoidedWhenBranchGuaranteed(t *testing.T) {
	// Do-while: the body (containing the invariant branch) executes
	// before the exit test.
	src := `define i2 @g(i1 %c2, i2 %n) {
entry:
  br label %body
body:
  %i = phi i2 [ 0, %entry ], [ %i1, %latch ]
  br i1 %c2, label %foo, label %bar
foo:
  br label %latch
bar:
  br label %latch
latch:
  %i1 = add i2 %i, 1
  %c = icmp ult i2 %i1, %n
  br i1 %c, label %body, label %exit
exit:
  ret i2 0
}`
	orig := ir.MustParseFunc(src)
	work := ir.CloneFunc(orig)
	cfg := DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	RunPass(LoopUnswitch{}, work, cfg)
	if countOp(work, ir.OpFreeze) != 0 {
		t.Errorf("do-while unswitching should not need a freeze:\n%s", work)
	}
	fz := core.FreezeOptions()
	r := refine.Check(orig, work, refine.DefaultConfig(fz, fz))
	if r.Status == refine.Refuted {
		t.Errorf("freeze-free do-while unswitching should be sound: %s\n%s", r, work)
	}

	// Control: a while-shaped loop (branch NOT guaranteed) must still
	// freeze — reuse the §5.1 test's source.
	whileSrc := `define i2 @g(i1 %c2, i1 %c) {
entry:
  br label %head
head:
  %cc = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cc, label %body, label %exit
body:
  br i1 %c2, label %foo, label %bar
foo:
  br label %latch
bar:
  br label %latch
latch:
  br label %head
exit:
  ret i2 0
}`
	w2 := ir.MustParseFunc(whileSrc)
	RunPass(LoopUnswitch{}, w2, cfg)
	if countOp(w2, ir.OpFreeze) != 1 {
		t.Errorf("while-shaped unswitching must freeze:\n%s", w2)
	}
}
