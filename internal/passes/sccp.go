package passes

import (
	"tameir/internal/core"
	"tameir/internal/ir"
)

// SCCP is sparse conditional constant propagation: a lattice of
// ⊤ (unvisited) → constant → ⊥ (overdefined) per value, with branch
// feasibility tracked so constants propagate through not-yet-taken
// edges.
//
// Deferred UB is folded by *consistently* resolving it: a lattice cell
// that only ever saw undef or poison folds to the constant 0 — a sound
// refinement, because choosing one member of the value set (or
// dropping poison to a value) only shrinks behaviours. (GCC does
// something similar, §9; the historical LLVM bugs came from resolving
// the same undef differently in the value lattice and the branch
// logic, which this implementation cannot do by construction: branches
// consult the same lattice.)
type SCCP struct{}

// Name implements Pass.
func (SCCP) Name() string { return "sccp" }

func init() {
	// Folds branches and deletes unreachable blocks.
	Register(PassInfo{Name: "sccp", New: func() Pass { return SCCP{} }, Preserves: PreservesNone})
}

type latKind uint8

const (
	latTop latKind = iota
	latDeferred
	latConst
	latBottom
)

type latVal struct {
	kind latKind
	bits uint64
}

func (a latVal) meet(b latVal) latVal {
	switch {
	case a.kind == latTop:
		return b
	case b.kind == latTop:
		return a
	case a.kind == latBottom || b.kind == latBottom:
		return latVal{kind: latBottom}
	case a.kind == latDeferred:
		return b
	case b.kind == latDeferred:
		return a
	case a.bits == b.bits:
		return a
	}
	return latVal{kind: latBottom}
}

// Run implements Pass.
func (SCCP) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	s := &sccpState{
		f:     f,
		vals:  map[ir.Value]latVal{},
		edges: map[[2]*ir.Block]bool{},
		alive: map[*ir.Block]bool{},
	}
	s.markAlive(f.Entry())
	for len(s.workI) > 0 || len(s.workB) > 0 {
		for len(s.workI) > 0 {
			in := s.workI[len(s.workI)-1]
			s.workI = s.workI[:len(s.workI)-1]
			s.visit(in)
		}
		for len(s.workB) > 0 {
			b := s.workB[len(s.workB)-1]
			s.workB = s.workB[:len(s.workB)-1]
			for _, in := range b.Instrs() {
				s.visit(in)
			}
		}
	}

	// Rewrite: constants replace instructions; deferred-only cells
	// fold to 0; infeasible branch edges become unconditional.
	changed := false
	for _, b := range f.Blocks {
		if !s.alive[b] {
			continue
		}
		for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
			if in.Parent() == nil || in.Ty.IsVoid() || !in.Ty.IsInt() {
				continue
			}
			switch lv := s.vals[in]; lv.kind {
			case latConst:
				replaceAndErase(in, ir.ConstInt(in.Ty, lv.bits))
				changed = true
			case latDeferred:
				replaceAndErase(in, ir.ConstInt(in.Ty, 0))
				changed = true
			}
		}
	}
	if changed {
		changed = removeUnreachableBlocks(f) || changed
	}
	return changed
}

type sccpState struct {
	f     *ir.Func
	vals  map[ir.Value]latVal
	edges map[[2]*ir.Block]bool
	alive map[*ir.Block]bool
	workI []*ir.Instr
	workB []*ir.Block
}

func (s *sccpState) markAlive(b *ir.Block) {
	if s.alive[b] {
		return
	}
	s.alive[b] = true
	s.workB = append(s.workB, b)
}

func (s *sccpState) markEdge(from, to *ir.Block) {
	key := [2]*ir.Block{from, to}
	if s.edges[key] {
		return
	}
	s.edges[key] = true
	if s.alive[to] {
		// Re-visit the phis: a new incoming edge became feasible.
		for _, ph := range to.Phis() {
			s.workI = append(s.workI, ph)
		}
	} else {
		s.markAlive(to)
	}
}

func (s *sccpState) lattice(v ir.Value) latVal {
	switch c := v.(type) {
	case *ir.Const:
		return latVal{kind: latConst, bits: c.Bits}
	case *ir.Undef, *ir.Poison:
		return latVal{kind: latDeferred}
	case *ir.Param, *ir.Global, *ir.VecConst:
		return latVal{kind: latBottom}
	}
	return s.vals[v]
}

func (s *sccpState) setLattice(in *ir.Instr, lv latVal) {
	old := s.vals[in]
	nv := old.meet(lv)
	if nv == old {
		return
	}
	s.vals[in] = nv
	for _, u := range in.Users() {
		if u.Parent() != nil && s.alive[u.Parent()] {
			s.workI = append(s.workI, u)
		}
	}
}

func (s *sccpState) visit(in *ir.Instr) {
	bottom := latVal{kind: latBottom}
	switch {
	case in.Op == ir.OpBr:
		if !in.IsConditionalBr() {
			s.markEdge(in.Parent(), in.BlockArg(0))
			return
		}
		switch c := s.lattice(in.Arg(0)); c.kind {
		case latTop:
			// not yet known
		case latConst:
			if c.bits != 0 {
				s.markEdge(in.Parent(), in.BlockArg(0))
			} else {
				s.markEdge(in.Parent(), in.BlockArg(1))
			}
		case latDeferred:
			// Consistently resolve deferred branch conditions to 0:
			// take the false edge (matches folding the value to 0).
			s.markEdge(in.Parent(), in.BlockArg(1))
		default:
			s.markEdge(in.Parent(), in.BlockArg(0))
			s.markEdge(in.Parent(), in.BlockArg(1))
		}
		return
	case in.Op == ir.OpPhi:
		acc := latVal{kind: latTop}
		for i := 0; i < in.NumArgs(); i++ {
			if !s.edges[[2]*ir.Block{in.BlockArg(i), in.Parent()}] {
				continue
			}
			acc = acc.meet(s.lattice(in.Arg(i)))
		}
		s.setLattice(in, acc)
		return
	case in.Op.IsTerminator() || in.Ty.IsVoid():
		return
	case !in.Ty.IsInt():
		s.setLattice(in, bottom)
		return
	}

	// Pure scalar instructions: evaluate over the lattice.
	args := make([]latVal, in.NumArgs())
	anyTop := false
	for i := range args {
		args[i] = s.lattice(in.Arg(i))
		if args[i].kind == latTop {
			anyTop = true
		}
	}
	if anyTop {
		return // wait for more information
	}
	conc := func(lv latVal) core.Scalar {
		if lv.kind == latDeferred {
			return core.C(0) // the consistent resolution
		}
		return core.C(lv.bits)
	}
	switch {
	case in.Op.IsBinop():
		if args[0].kind == latBottom || args[1].kind == latBottom {
			s.setLattice(in, bottom)
			return
		}
		res, ub := core.EvalBinopLane(in.Op, in.Attrs, in.Ty.Bits, conc(args[0]), conc(args[1]), core.Freeze)
		if ub != "" || res.Kind != core.Concrete {
			s.setLattice(in, latVal{kind: latDeferred})
			return
		}
		s.setLattice(in, latVal{kind: latConst, bits: res.Bits})
	case in.Op == ir.OpICmp:
		if args[0].kind == latBottom || args[1].kind == latBottom {
			s.setLattice(in, bottom)
			return
		}
		w := in.Arg(0).Type().Bits
		r := core.EvalICmpConcrete(in.Pred, w, conc(args[0]).Bits, conc(args[1]).Bits)
		bit := uint64(0)
		if r {
			bit = 1
		}
		s.setLattice(in, latVal{kind: latConst, bits: bit})
	case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
		if args[0].kind == latBottom {
			s.setLattice(in, bottom)
			return
		}
		if !in.Arg(0).Type().IsInt() {
			s.setLattice(in, bottom)
			return
		}
		res := core.EvalCastLane(in.Op, in.Arg(0).Type().Bits, in.Ty.Bits, conc(args[0]))
		s.setLattice(in, latVal{kind: latConst, bits: res.Bits})
	case in.Op == ir.OpSelect:
		switch args[0].kind {
		case latBottom:
			s.setLattice(in, args[1].meet(args[2]))
		case latConst:
			if args[0].bits != 0 {
				s.setLattice(in, args[1])
			} else {
				s.setLattice(in, args[2])
			}
		case latDeferred:
			s.setLattice(in, args[2]) // consistent: condition resolves to 0
		}
	case in.Op == ir.OpFreeze:
		switch args[0].kind {
		case latDeferred:
			s.setLattice(in, latVal{kind: latConst, bits: 0})
		default:
			s.setLattice(in, args[0])
		}
	default:
		s.setLattice(in, bottom)
	}
}
