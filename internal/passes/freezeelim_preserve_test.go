package passes_test

import (
	"testing"

	"tameir/internal/analysis"
	"tameir/internal/ir"
	"tameir/internal/passes"
)

// Freeze-elim upgrades its static preserved-set dynamically: a run
// that only replaced freezes with statically never-poison operands
// (no guard-based deletions, no knownbits-consulting transfers in the
// function) keeps the cached poison facts alive. These tests pin the
// claim in both directions and check it against the -verify-each
// coherence battery, which recomputes the fixpoint and compares.

// freezeElimWithManager runs freeze-elim once against a caller-visible
// analysis manager with the poison facts warmed, returning the manager
// and whether the pass changed f.
func freezeElimWithManager(t *testing.T, f *ir.Func) (*analysis.Manager, bool) {
	t.Helper()
	cfg := passes.DefaultFreezeConfig()
	am := analysis.NewManager(f)
	am.Poison() // warm the cache so preservation is observable
	changed := passes.RunPassWithManager(passes.FreezeElim{}, f, cfg, am)
	return am, changed
}

// A clean deletion — the freeze's operand is itself a freeze, hence
// statically never poison — must keep the poison facts cached, and
// the kept facts must survive CheckInvariants' fresh recomputation.
func TestFreezeElimPreservesPoisonFacts(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %a = add i8 %f2, 1
  ret i8 %a
}`)
	am, changed := freezeElimWithManager(t, f)
	if !changed {
		t.Fatalf("freeze-elim deleted nothing:\n%s", f)
	}
	if !am.Cached(analysis.Poison) {
		t.Fatal("clean freeze-elim run evicted the poison facts it proved preserved")
	}
	if err := am.CheckInvariants(); err != nil {
		t.Fatalf("preserved poison facts fail the coherence check: %v\n%s", err, f)
	}

	// The same function through the -verify-each battery: the pass
	// manager checks the dynamic claim right after applying it.
	g := ir.MustParseFunc(`define i8 @f(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %a = add i8 %f2, 1
  ret i8 %a
}`)
	pm, err := passes.NewPassManager("freeze-elim")
	if err != nil {
		t.Fatal(err)
	}
	pm.VerifyEach = true
	if !pm.RunFunc(g, passes.DefaultFreezeConfig()) {
		t.Fatalf("freeze-elim deleted nothing under -verify-each:\n%s", g)
	}
}

// A guard-based deletion (NeverPoisonAt) replaces the freeze with an
// operand that is only contextually clean — its static fact is
// may-poison — so the cached table would overclaim. The pass must not
// preserve it.
func TestFreezeElimGuardedDeletionInvalidatesPoison(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @g(i1 %c, i8 %x) {
entry:
  br i1 %c, label %t, label %e
t:
  %fz = freeze i1 %c
  %s = select i1 %fz, i8 1, i8 2
  ret i8 %s
e:
  ret i8 0
}`)
	am, changed := freezeElimWithManager(t, f)
	if !changed {
		t.Fatalf("guarded freeze not deleted:\n%s", f)
	}
	if am.Cached(analysis.Poison) {
		t.Fatal("guard-based deletion must invalidate the poison facts: the operand is only contextually clean")
	}
}

// A knownbits-consulting transfer (shift, add nuw) reads operand
// structure rather than lattice elements, so rerouting uses past a
// freeze can strengthen a fresh fixpoint. Any such instruction in the
// function blocks the claim.
func TestFreezeElimKnownbitsHazardInvalidatesPoison(t *testing.T) {
	for _, src := range []string{
		`define i8 @h(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %s = shl i8 %f2, 1
  ret i8 %s
}`,
		`define i8 @h(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %s = add nuw i8 %f2, 1
  ret i8 %s
}`,
	} {
		f := ir.MustParseFunc(src)
		am, changed := freezeElimWithManager(t, f)
		if !changed {
			t.Fatalf("freeze not deleted:\n%s", f)
		}
		if am.Cached(analysis.Poison) {
			t.Fatalf("knownbits-sensitive function must invalidate the poison facts:\n%s", f)
		}
	}
}

// A dynamic claim must be consumed by the pass step that made it —
// never soften a later pass's invalidation.
func TestRunPreservedDoesNotLeak(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 1
  ret i8 %a
}`)
	am := analysis.NewManager(f)
	am.PreserveDuringRun(analysis.Poison)
	if got := am.TakeRunPreserved(); got != analysis.Poison {
		t.Fatalf("TakeRunPreserved = %v, want poison", got)
	}
	if got := am.TakeRunPreserved(); got != analysis.None {
		t.Fatalf("second TakeRunPreserved = %v, want none: claims must be cleared on take", got)
	}
}
