package passes

import (
	"tameir/internal/analysis"
	"tameir/internal/ir"
)

// LoopSink is the dual of LICM (§5.5): computations in a loop
// preheader whose only uses are inside a rarely-executed loop are sunk
// into the loop body, trading redundant execution for a shorter hot
// path when the loop does not run.
//
// Pitfall 1 of §5.5: a freeze must NOT be sunk — sinking duplicates
// its execution, and each dynamic freeze of a poison value may return
// a different result, so uses across iterations would disagree.
// The fixed variant refuses; Config.Unsound sinks anyway, and the
// refinement checker catches it (TestLoopSinkFreezeUnsound).
type LoopSink struct{}

// Name implements Pass.
func (LoopSink) Name() string { return "loopsink" }

func init() {
	// Sinking moves instructions between existing blocks; no CFG change.
	Register(PassInfo{Name: "loopsink", New: func() Pass { return LoopSink{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (LoopSink) Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	li := am.LoopInfo()
	changed := false
	for _, l := range li.Loops {
		ph := l.Preheader(f)
		if ph == nil {
			continue
		}
		for _, in := range append([]*ir.Instr(nil), ph.Instrs()...) {
			if in.Parent() == nil || in.Op.IsTerminator() {
				continue
			}
			if !sinkable(in, cfg) {
				continue
			}
			// All uses must be in a single block of the loop (we do
			// not build phis for multi-block sinks).
			var dst *ir.Block
			ok := true
			for _, u := range in.Users() {
				if u.Parent() == nil || !l.Blocks[u.Parent()] || u.Op == ir.OpPhi {
					ok = false
					break
				}
				if dst == nil {
					dst = u.Parent()
				} else if dst != u.Parent() {
					ok = false
					break
				}
			}
			if !ok || dst == nil {
				continue
			}
			ph.Remove(in)
			dst.InsertBefore(in, dst.Instrs()[0])
			changed = true
		}
	}
	return changed
}

func sinkable(in *ir.Instr, cfg *Config) bool {
	if in.Op == ir.OpFreeze {
		// Sinking a freeze into the loop re-executes it every
		// iteration: each dynamic execution may pick a different value
		// for a poison input, where the hoisted original picked one
		// value for all iterations. That widens the behaviour set —
		// duplication in time — so it is unsound (§5.5, pitfall 1).
		// Only the Unsound variant does it.
		return cfg.Unsound
	}
	return analysis.IsSpeculatable(in)
}
