package passes

import (
	"testing"

	"tameir/internal/ir"
)

// FuzzO2 feeds arbitrary (parsed + verified) modules through the whole
// fixed -O2 pipeline with the structural and SSA verifiers armed after
// every pass; any pass crash or invariant break is a finding.
func FuzzO2(f *testing.F) {
	seeds := []string{
		`define i8 @f(i8 %x) {
entry:
  %a = mul i8 %x, 2
  ret i8 %a
}`,
		`define i8 @f(i1 %c, i8 %a, i8 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i8 [ %a, %t ], [ %b, %e ]
  ret i8 %x
}`,
		`define i8 @f(i8 %n) {
entry:
  %s = alloca i8, i32 1
  store i8 0, ptr %s
  br label %h
h:
  %i = phi i8 [ 0, %entry ], [ %i1, %b ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %b, label %x
b:
  %v = load i8, ptr %s
  %v1 = add i8 %v, %i
  store i8 %v1, ptr %s
  %i1 = add i8 %i, 1
  br label %h
x:
  %r = load i8, ptr %s
  ret i8 %r
}`,
		`define i2 @f(i2 %x, i2 %y, i1 %c) {
entry:
  %t = add nsw i2 %x, 1
  %cmp = icmp eq i2 %t, %y
  br label %head
head:
  %cc = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cc, label %body, label %exit
body:
  br i1 %cmp, label %then, label %latch
then:
  ret i2 %t
latch:
  br label %head
exit:
  ret i2 3
}`,
		`define i8 @f(i8 %a) {
entry:
  %fz = freeze i8 %a
  %q = udiv i8 %fz, 3
  %s = select i1 true, i8 %q, i8 poison
  ret i8 %s
}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		mod, err := ir.ParseModule(src)
		if err != nil {
			return
		}
		if err := ir.VerifyModule(mod, ir.VerifyFreeze); err != nil {
			return
		}
		cfg := DefaultFreezeConfig()
		cfg.VerifyAfterEach = true
		O2().Run(mod, cfg) // panics on any verifier violation
	})
}
