package passes

import (
	"tameir/internal/ir"
)

// replaceAndErase replaces all uses of in with v and erases in.
func replaceAndErase(in *ir.Instr, v ir.Value) {
	in.ReplaceAllUsesWith(v)
	in.Parent().Erase(in)
}

// isTriviallyDead reports whether in can be deleted: no uses, no side
// effects. Potential deferred or immediate UB does not keep an
// instruction alive — removing UB is a refinement.
func isTriviallyDead(in *ir.Instr) bool {
	if in.Op.HasSideEffects() || in.Op.IsTerminator() {
		return false
	}
	return in.NumUses() == 0
}

// valueEq reports whether two operands are the same value, treating
// structurally identical constants as equal. Undef is never equal to
// anything (not even itself: two uses may differ).
func valueEq(a, b ir.Value) bool {
	if a == b {
		if _, isUndef := a.(*ir.Undef); isUndef {
			return false
		}
		return true
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	if ok1 && ok2 {
		return ca.Ty.Equal(cb.Ty) && ca.Bits == cb.Bits
	}
	pa, ok1 := a.(*ir.Poison)
	pb, ok2 := b.(*ir.Poison)
	if ok1 && ok2 {
		return pa.Ty.Equal(pb.Ty)
	}
	return false
}

// constOperand returns the operand as an integer constant if it is one.
func constOperand(v ir.Value) (*ir.Const, bool) {
	c, ok := v.(*ir.Const)
	return c, ok
}

// isZeroConst reports whether v is the constant 0.
func isZeroConst(v ir.Value) bool {
	c, ok := v.(*ir.Const)
	return ok && c.IsZero()
}

// isOneConst reports whether v is the constant 1.
func isOneConst(v ir.Value) bool {
	c, ok := v.(*ir.Const)
	return ok && c.Bits == 1
}

// isAllOnesConst reports whether v is the all-ones constant.
func isAllOnesConst(v ir.Value) bool {
	c, ok := v.(*ir.Const)
	return ok && c.IsAllOnes()
}

// canonicalizeCommutative moves a constant operand of a commutative
// binop to the right-hand side, returning whether it changed anything.
func canonicalizeCommutative(in *ir.Instr) bool {
	if !in.Op.IsCommutative() {
		return false
	}
	if ir.IsConstLeaf(in.Arg(0)) && !ir.IsConstLeaf(in.Arg(1)) {
		a0, a1 := in.Arg(0), in.Arg(1)
		in.SetArg(0, a1)
		in.SetArg(1, a0)
		return true
	}
	return false
}

// removeUnreachableBlocks deletes blocks not reachable from the entry,
// fixing up phi nodes in surviving blocks.
func removeUnreachableBlocks(f *ir.Func) bool {
	reach := map[*ir.Block]bool{}
	work := []*ir.Block{f.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if reach[b] {
			continue
		}
		reach[b] = true
		work = append(work, b.Succs()...)
	}
	var dead []*ir.Block
	for _, b := range f.Blocks {
		if !reach[b] {
			dead = append(dead, b)
		}
	}
	if len(dead) == 0 {
		return false
	}
	// Remove phi incomings from dead predecessors.
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for _, ph := range b.Phis() {
			for _, d := range dead {
				ph.RemovePhiIncoming(d)
			}
		}
	}
	// Break def-use links inside the dead region: replace uses of dead
	// instructions in live code (there should be none if dominance
	// held, but be safe) and drop dead instructions' operand uses.
	for _, d := range dead {
		for _, in := range d.Instrs() {
			for _, u := range in.Users() {
				if u.Parent() != nil && reach[u.Parent()] {
					for i := 0; i < u.NumArgs(); i++ {
						if u.Arg(i) == ir.Value(in) {
							u.SetArg(i, ir.NewPoison(in.Ty))
						}
					}
				}
			}
		}
	}
	for _, d := range dead {
		f.RemoveBlock(d)
	}
	// Single-incoming phis left behind become copies.
	for _, b := range f.Blocks {
		for _, ph := range b.Phis() {
			if ph.NumArgs() == 1 {
				replaceAndErase(ph, ph.Arg(0))
			}
		}
	}
	return true
}
