package passes

import (
	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// FreezeElim deletes freeze instructions whose operand the
// flow-sensitive poison analysis proves never poison. This is the
// cleanup half of the paper's deployment story (§5, §7): the §10.1
// migration and the freeze-emitting transformations (loop unswitch,
// GVN) spray freezes defensively, and freeze is only cheap if the
// compiler can prove most of them redundant and delete them.
//
// A freeze of a never-poison (and never-undef) value is the identity:
// freeze picks an arbitrary concrete value only when its operand
// carries deferred UB, so on a clean operand source and target agree on
// every execution and the rewrite is a trivial refinement. The
// dominating-branch refinement (NeverPoisonAt) additionally removes
// freezes guarded by a conditional branch on the same value — valid
// only under the freeze dialect, where branch-on-poison is immediate
// UB, so the pass gates it on cfg.Sem.Mode.
type FreezeElim struct{}

// Name implements Pass.
func (FreezeElim) Name() string { return "freeze-elim" }

func init() {
	// Deleting a freeze and rerouting its uses leaves every block and
	// edge intact, so the CFG-level analyses survive. The poison facts
	// themselves are invalidated like after any other
	// instruction-rewriting pass (Poison is not part of PreservesAll);
	// the facts the pass just used stay sound for the values that
	// remain, but recomputing is the simple contract.
	Register(PassInfo{Name: "freeze-elim", New: func() Pass { return FreezeElim{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (FreezeElim) Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	if !cfg.FreezeAware {
		// Freeze-blind pipelines (the historical baseline) must not
		// touch freezes at all.
		return false
	}
	// Collect first: erasing while iterating would skip instructions.
	// Skipping the analysis entirely when there is nothing to delete
	// keeps the pass free on freeze-free functions (most of the §6
	// campaign space).
	var freezes []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			if in.Op == ir.OpFreeze {
				freezes = append(freezes, in)
			}
		}
	}
	if len(freezes) == 0 {
		return false
	}
	facts := am.Poison()
	refineEdges := cfg.Sem.Mode == core.Freeze
	var dt *analysis.DomTree
	changed := false
	for _, in := range freezes {
		op := in.Arg(0)
		ok := facts.NeverPoison(op)
		if !ok && refineEdges {
			if dt == nil {
				dt = am.DomTree()
			}
			ok = facts.NeverPoisonAt(op, in.Parent(), dt)
		}
		if ok {
			replaceAndErase(in, op)
			changed = true
		}
	}
	return changed
}
