package passes

import (
	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// FreezeElim deletes freeze instructions whose operand the
// flow-sensitive poison analysis proves never poison. This is the
// cleanup half of the paper's deployment story (§5, §7): the §10.1
// migration and the freeze-emitting transformations (loop unswitch,
// GVN) spray freezes defensively, and freeze is only cheap if the
// compiler can prove most of them redundant and delete them.
//
// A freeze of a never-poison (and never-undef) value is the identity:
// freeze picks an arbitrary concrete value only when its operand
// carries deferred UB, so on a clean operand source and target agree on
// every execution and the rewrite is a trivial refinement. The
// dominating-branch refinement (NeverPoisonAt) additionally removes
// freezes guarded by a conditional branch on the same value — valid
// only under the freeze dialect, where branch-on-poison is immediate
// UB, so the pass gates it on cfg.Sem.Mode.
type FreezeElim struct{}

// Name implements Pass.
func (FreezeElim) Name() string { return "freeze-elim" }

func init() {
	// Deleting a freeze and rerouting its uses leaves every block and
	// edge intact, so the CFG-level analyses survive. The poison facts
	// are not part of the static declaration (Poison is not in
	// PreservesAll): whether they survive depends on what the pass
	// actually deleted, so the pass claims them dynamically through
	// Manager.PreserveDuringRun when the run qualifies — see Run.
	Register(PassInfo{Name: "freeze-elim", New: func() Pass { return FreezeElim{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (FreezeElim) Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	if !cfg.FreezeAware {
		// Freeze-blind pipelines (the historical baseline) must not
		// touch freezes at all.
		return false
	}
	// Collect first: erasing while iterating would skip instructions.
	// Skipping the analysis entirely when there is nothing to delete
	// keeps the pass free on freeze-free functions (most of the §6
	// campaign space).
	var freezes []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			if in.Op == ir.OpFreeze {
				freezes = append(freezes, in)
			}
		}
	}
	if len(freezes) == 0 {
		return false
	}
	facts := am.Poison()
	refineEdges := cfg.Sem.Mode == core.Freeze
	var dt *analysis.DomTree
	changed := false
	guarded := false
	for _, in := range freezes {
		op := in.Arg(0)
		ok := facts.NeverPoison(op)
		viaGuard := false
		if !ok && refineEdges {
			if dt == nil {
				dt = am.DomTree()
			}
			ok = facts.NeverPoisonAt(op, in.Parent(), dt)
			viaGuard = ok
		}
		if ok {
			// Keep the cached table coherent with the IR it describes:
			// the fact for a deleted instruction must go with it.
			facts.Forget(in)
			replaceAndErase(in, op)
			changed = true
			guarded = guarded || viaGuard
		}
	}
	// Claim the poison facts as still exact when the run provably kept
	// them so: replacing a freeze with a NeverPoison operand feeds the
	// same lattice element into every user's transfer function, so the
	// fixpoint is unchanged. Two cases break that argument and block
	// the claim:
	//
	//   - A guard-based (NeverPoisonAt) deletion: the operand is only
	//     contextually clean — its static fact is MayPoison — so users
	//     that read the freeze's NeverPoison now read MayPoison in a
	//     fresh fixpoint, and the cached table is stronger than the
	//     truth.
	//   - A knownbits-consulting transfer anywhere in the function
	//     (add nuw, shifts): those don't read the operand's lattice
	//     element, they read its bit-level structure, and a freeze and
	//     its operand need not agree on that. Rerouting uses can
	//     therefore strengthen a fresh fixpoint even though every
	//     lattice input was identical.
	//
	// Under -verify-each the claim itself is checked: CheckInvariants
	// recomputes the fixpoint and compares it against the cache kept
	// alive by this claim.
	if changed && !guarded && !kbSensitive(f) {
		am.PreserveDuringRun(analysis.Poison)
	}
	return changed
}

// kbSensitive reports whether f contains an instruction whose poison
// transfer function consults knownbits (attrsCannotPoison's add nuw,
// shiftAmountInRangeKB's shifts) — the cases where freeze-elim's
// use-rerouting can change a recomputed fact without changing any
// lattice input.
func kbSensitive(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			if (in.Op == ir.OpAdd && in.Attrs == ir.NUW) || in.Op.IsShift() {
				return true
			}
		}
	}
	return false
}
