package passes

import (
	"strings"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/refine"
)

// applyPass parses src, runs the pass under cfg, verifies the result,
// and returns (original, transformed).
func applyPass(t *testing.T, src string, p Pass, cfg *Config) (*ir.Func, *ir.Func) {
	t.Helper()
	orig, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	work := ir.CloneFunc(orig)
	cfg.VerifyAfterEach = true
	RunPass(p, work, cfg)
	return orig, work
}

// validatePass additionally checks refinement between original and
// transformed under the config's semantics.
func validatePass(t *testing.T, src string, p Pass, cfg *Config, want refine.Status) (*ir.Func, *ir.Func) {
	t.Helper()
	orig, work := applyPass(t, src, p, cfg)
	r := refine.Check(orig, work, refine.DefaultConfig(cfg.Sem, cfg.Sem))
	if r.Status != want {
		t.Fatalf("%s: refinement %v, want %v\n--- source\n%s\n--- transformed\n%s\n%s",
			p.Name(), r.Status, want, orig, work, r)
	}
	return orig, work
}

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

func TestInstSimplifyIdentities(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %a = add i2 %x, 0
  %b = mul i2 %a, 1
  %c = sub i2 %b, %b
  %d = or i2 %c, %x
  %e = and i2 %d, %d
  ret i2 %e
}`
	_, work := validatePass(t, src, InstSimplify{}, DefaultFreezeConfig(), refine.Verified)
	if n := work.NumInstrs(); n != 1 {
		t.Errorf("expected full collapse to ret, got %d instrs:\n%s", n, work)
	}
}

func TestInstSimplifyConstFold(t *testing.T) {
	src := `define i8 @f() {
entry:
  %a = add i8 10, 20
  %b = mul i8 %a, 2
  %c = udiv i8 %b, 3
  %d = icmp ult i8 %c, 100
  %e = select i1 %d, i8 %c, i8 0
  ret i8 %e
}`
	_, work := applyPass(t, src, InstSimplify{}, DefaultFreezeConfig())
	if n := work.NumInstrs(); n != 1 {
		t.Fatalf("expected full fold, got:\n%s", work)
	}
	ret := work.Entry().Instrs()[0]
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Bits != 20 {
		t.Errorf("folded to %v, want 20", ret.Arg(0))
	}
}

func TestFoldDivByZeroToPoison(t *testing.T) {
	src := `define i8 @f() {
entry:
  %a = udiv i8 1, 0
  ret i8 %a
}`
	_, work := validatePass(t, src, InstSimplify{}, DefaultFreezeConfig(), refine.Verified)
	ret := work.Entry().Instrs()[len(work.Entry().Instrs())-1]
	if _, ok := ret.Arg(0).(*ir.Poison); !ok {
		t.Errorf("udiv 1,0 should fold to poison:\n%s", work)
	}
}

func TestFoldMulUndefNotUndef(t *testing.T) {
	// §3.1 discipline in the folder: mul undef, 2 must not fold to
	// undef (only even values are possible); folding to the member 0
	// is fine.
	src := `define i2 @f() {
entry:
  %a = mul i2 undef, 2
  ret i2 %a
}`
	cfg := DefaultLegacyConfig()
	cfg.Unsound = false
	_, work := validatePass(t, src, InstSimplify{}, cfg, refine.Verified)
	ret := work.Entry().Instrs()[len(work.Entry().Instrs())-1]
	if _, isUndef := ret.Arg(0).(*ir.Undef); isUndef {
		t.Errorf("mul undef, 2 folded to undef — §3.1 violation:\n%s", work)
	}
}

func TestFoldAddUndefIsUndef(t *testing.T) {
	// add is surjective in each operand: add x, undef folds to undef
	// exactly.
	src := `define i2 @f() {
entry:
  %a = add i2 3, undef
  ret i2 %a
}`
	cfg := DefaultLegacyConfig()
	cfg.Unsound = false
	_, work := validatePass(t, src, InstSimplify{}, cfg, refine.Verified)
	ret := work.Entry().Instrs()[len(work.Entry().Instrs())-1]
	if _, isUndef := ret.Arg(0).(*ir.Undef); !isUndef {
		t.Errorf("add 3, undef should fold to undef:\n%s", work)
	}
}

func TestDCE(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %dead1 = add i2 %x, 1
  %dead2 = udiv i2 1, %x
  %live = mul i2 %x, 3
  ret i2 %live
}`
	_, work := validatePass(t, src, DCE{}, DefaultFreezeConfig(), refine.Verified)
	if n := work.NumInstrs(); n != 2 {
		t.Errorf("DCE left %d instrs, want 2 (mul+ret):\n%s", n, work)
	}
}

func TestDCERemovesUnreachable(t *testing.T) {
	src := `define i8 @f() {
entry:
  ret i8 1
dead:
  %x = add i8 1, 2
  br label %dead2
dead2:
  ret i8 %x
}`
	_, work := applyPass(t, src, DCE{}, DefaultFreezeConfig())
	if len(work.Blocks) != 1 {
		t.Errorf("unreachable blocks remain:\n%s", work)
	}
}

func TestSimplifyCFGConstBranch(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  br i1 true, label %a, label %b
a:
  ret i2 %x
b:
  ret i2 0
}`
	_, work := validatePass(t, src, SimplifyCFG{}, DefaultFreezeConfig(), refine.Verified)
	if len(work.Blocks) != 1 {
		t.Errorf("const branch not folded:\n%s", work)
	}
}

func TestSimplifyCFGMergeChain(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %a = add i2 %x, 1
  br label %next
next:
  %b = add i2 %a, 2
  br label %last
last:
  ret i2 %b
}`
	_, work := validatePass(t, src, SimplifyCFG{}, DefaultFreezeConfig(), refine.Verified)
	if len(work.Blocks) != 1 {
		t.Errorf("chain not merged:\n%s", work)
	}
}

func TestSimplifyCFGPhiToSelect(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i2 [ %a, %t ], [ %b, %e ]
  ret i2 %x
}`
	_, work := validatePass(t, src, SimplifyCFG{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(work, ir.OpSelect) != 1 || countOp(work, ir.OpPhi) != 0 {
		t.Errorf("phi→select missed:\n%s", work)
	}
	// Under the legacy either-arm select semantics, the *fixed*
	// legacy pipeline must NOT do the transformation...
	legacyFixed := &Config{Sem: core.LegacyOptions(core.BranchPoisonIsUB)}
	_, work2 := applyPass(t, src, SimplifyCFG{}, legacyFixed)
	if countOp(work2, ir.OpSelect) != 0 {
		t.Errorf("phi→select performed under either-arm select semantics:\n%s", work2)
	}
	// ...while the historical pipeline does it anyway, and the
	// refinement checker catches the poison leak (§3.4).
	legacyBug := DefaultLegacyConfig()
	legacyBug.Sem.BranchPoison = core.BranchPoisonIsUB
	validatePass(t, src, SimplifyCFG{}, legacyBug, refine.Refuted)
}

func TestSimplifyCFGTriangle(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %a) {
entry:
  br i1 %c, label %t, label %m
t:
  br label %m
m:
  %x = phi i2 [ 1, %t ], [ %a, %entry ]
  ret i2 %x
}`
	_, work := validatePass(t, src, SimplifyCFG{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(work, ir.OpSelect) != 1 {
		t.Errorf("triangle phi→select missed:\n%s", work)
	}
}

func TestInstCombineMulToAdd(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %y = mul i2 %x, 2
  ret i2 %y
}`
	// Freeze semantics: legal (§3.1 becomes permissible).
	_, work := validatePass(t, src, InstCombine{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(work, ir.OpAdd) != 1 {
		t.Errorf("mul x,2 → add x,x not performed under freeze semantics:\n%s", work)
	}
	// Legacy fixed: must not (x may be undef) — it picks shl instead?
	// No: 2 is the special case; the fixed legacy combiner leaves it.
	legacyFixed := &Config{Sem: core.LegacyOptions(core.BranchPoisonNondet)}
	_, work2 := applyPass(t, src, InstCombine{}, legacyFixed)
	if countOp(work2, ir.OpAdd) != 0 {
		t.Errorf("mul x,2 rewritten under legacy semantics:\n%s", work2)
	}
	// Legacy unsound: does it, refinement refutes.
	validatePass(t, src, InstCombine{}, DefaultLegacyConfig(), refine.Refuted)
}

func TestInstCombineMulPow2ToShl(t *testing.T) {
	src := `define i4 @f(i4 %x) {
entry:
  %y = mul i4 %x, 4
  ret i4 %y
}`
	for _, cfg := range []*Config{DefaultFreezeConfig(), {Sem: core.LegacyOptions(core.BranchPoisonNondet)}} {
		_, work := validatePass(t, src, InstCombine{}, cfg, refine.Verified)
		if countOp(work, ir.OpShl) != 1 {
			t.Errorf("mul x,8 → shl x,2 missed:\n%s", work)
		}
	}
}

func TestInstCombineUDivPow2(t *testing.T) {
	src := `define i4 @f(i4 %x) {
entry:
  %y = udiv i4 %x, 4
  ret i4 %y
}`
	_, work := validatePass(t, src, InstCombine{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(work, ir.OpLShr) != 1 {
		t.Errorf("udiv x,4 → lshr x,2 missed:\n%s", work)
	}
}

func TestInstCombineUDivNegConstToSelect(t *testing.T) {
	// §3.4: udiv %a, C → icmp+select for C with the sign bit set.
	src := `define i2 @f(i2 %a) {
entry:
  %r = udiv i2 %a, 3
  ret i2 %r
}`
	_, work := validatePass(t, src, InstCombine{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(work, ir.OpUDiv) != 0 || countOp(work, ir.OpSelect) != 1 {
		t.Errorf("udiv → select missed:\n%s", work)
	}
}

func TestInstCombineSelectToOr(t *testing.T) {
	src := `define i1 @f(i1 %c, i1 %x) {
entry:
  %v = select i1 %c, i1 true, i1 %x
  ret i1 %v
}`
	// Historical unsound rule: or %c, %x. Refuted under Figure 5
	// semantics.
	buggy := DefaultLegacyConfig()
	buggy.Sem = core.FreezeOptions() // judge the historical rule under the adopted semantics
	_, work := applyPass(t, src, InstCombine{}, buggy)
	if countOp(work, ir.OpOr) != 1 {
		t.Fatalf("unsound combiner should produce or:\n%s", work)
	}
	orig := ir.MustParseFunc(src)
	r := refine.Check(orig, work, refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions()))
	if r.Status != refine.Refuted {
		t.Errorf("historical select→or should be refuted: %s", r)
	}
	// Fixed freeze-mode rule: or %c, freeze(%x) — verified.
	_, fixed := validatePass(t, src, InstCombine{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(fixed, ir.OpOr) != 1 || countOp(fixed, ir.OpFreeze) != 1 {
		t.Errorf("fixed select→or+freeze missed:\n%s", fixed)
	}
}

func TestInstCombineSelectUndefArm(t *testing.T) {
	// PR31633: select %c, %x, undef → %x, wrong because %x could be
	// poison.
	src := `define i2 @f(i1 %c, i2 %x) {
entry:
  %v = select i1 %c, i2 %x, i2 undef
  ret i2 %v
}`
	legacyBug := DefaultLegacyConfig()
	legacyBug.Sem.SelectArmPoisonEither = false
	validatePass(t, src, InstCombine{}, legacyBug, refine.Refuted)
	// The fixed legacy combiner leaves the select alone.
	legacyFixed := &Config{Sem: legacyBug.Sem}
	_, work := applyPass(t, src, InstCombine{}, legacyFixed)
	if countOp(work, ir.OpSelect) != 1 {
		t.Errorf("fixed combiner should keep the select:\n%s", work)
	}
}

func TestInstCombineFreezeOfNonPoison(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %fz1 = freeze i2 %x
  %a = add i2 %fz1, 1
  %fz2 = freeze i2 %a
  ret i2 %fz2
}`
	_, work := validatePass(t, src, InstCombine{}, DefaultFreezeConfig(), refine.Verified)
	// fz2 freezes add(freeze(x), 1) which is never poison → folds.
	if n := countOp(work, ir.OpFreeze); n != 1 {
		t.Errorf("redundant freeze not removed (have %d):\n%s", n, work)
	}
}

func TestGVNBasicCSE(t *testing.T) {
	src := `define i2 @f(i2 %x, i2 %y) {
entry:
  %a = add i2 %x, %y
  %b = add i2 %x, %y
  %c = add i2 %y, %x
  %s1 = mul i2 %a, %b
  %s2 = mul i2 %s1, %c
  ret i2 %s2
}`
	_, work := validatePass(t, src, GVN{}, DefaultFreezeConfig(), refine.Verified)
	if n := countOp(work, ir.OpAdd); n != 1 {
		t.Errorf("GVN left %d adds, want 1:\n%s", n, work)
	}
}

func TestGVNDominanceRespected(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %u = add i2 %x, 1
  br label %m
b:
  %v = add i2 %x, 1
  br label %m
m:
  %p = phi i2 [ %u, %a ], [ %v, %b ]
  ret i2 %p
}`
	// Neither add dominates the other; GVN must not merge them.
	_, work := validatePass(t, src, GVN{}, DefaultFreezeConfig(), refine.Verified)
	if n := countOp(work, ir.OpAdd); n != 2 {
		t.Errorf("GVN merged non-dominating exprs:\n%s", work)
	}
}

func TestGVNNeverMergesFreeze(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %f1 = freeze i2 %x
  %f2 = freeze i2 %x
  %d = sub i2 %f1, %f2
  ret i2 %d
}`
	_, work := validatePass(t, src, GVN{}, DefaultFreezeConfig(), refine.Verified)
	if n := countOp(work, ir.OpFreeze); n != 2 {
		t.Errorf("GVN merged freezes — §6 says it must not (have %d):\n%s", n, work)
	}
}

func TestGVNEqualityPropagation(t *testing.T) {
	// §3.3's example: in the then-block, t (= x+1) is replaced by y.
	src := `define i8 @f(i8 %x, i8 %y) {
entry:
  %t = add nsw i8 %x, 1
  %cmp = icmp eq i8 %t, %y
  br i1 %cmp, label %then, label %else
then:
  %w = add nsw i8 %x, 1
  ret i8 %w
else:
  ret i8 0
}`
	cfg := DefaultFreezeConfig()
	_, work := applyPass(t, src, GVN{}, cfg)
	then := work.BlockByName("then")
	ret := then.Instrs()[len(then.Instrs())-1]
	if p, ok := ret.Arg(0).(*ir.Param); !ok || p.Name() != "y" {
		t.Errorf("equality not propagated; then returns %v:\n%s", ret.Arg(0), work)
	}
	// Sound under branch-on-poison-is-UB (sampled i8 inputs, so
	// inconclusive rather than exhaustive-verified; a refuted result
	// would be a bug).
	orig := ir.MustParseFunc(src)
	r := refine.Check(orig, work, refine.DefaultConfig(cfg.Sem, cfg.Sem))
	if r.Status == refine.Refuted {
		t.Errorf("GVN propagation unsound under UB-branch: %s", r)
	}
}

func TestGVNPropagationUnsoundUnderNondetBranch(t *testing.T) {
	// The same propagation is WRONG if branch-on-poison is a
	// nondeterministic choice (§3.3): replace w with y, y poison,
	// w concrete.
	src := `define i2 @f(i2 %x, i2 %y) {
entry:
  %t = add i2 %x, 1
  %cmp = icmp eq i2 %t, %y
  br i1 %cmp, label %then, label %else
then:
  %w = add i2 %x, 1
  ret i2 %w
else:
  ret i2 0
}`
	nondet := core.LegacyOptions(core.BranchPoisonNondet)
	cfg := &Config{Sem: nondet, Unsound: true} // historical GVN propagates regardless
	orig, work := applyPass(t, src, GVN{}, cfg)
	r := refine.Check(orig, work, refine.DefaultConfig(nondet, nondet))
	if r.Status != refine.Refuted {
		t.Errorf("GVN propagation should be refuted under nondet branches: %s", r)
	}
	// And the fixed GVN under nondet semantics refuses to propagate.
	fixedCfg := &Config{Sem: nondet}
	_, fixedWork := applyPass(t, src, GVN{}, fixedCfg)
	then := fixedWork.BlockByName("then")
	ret := then.Instrs()[len(then.Instrs())-1]
	if p, isP := ret.Arg(0).(*ir.Param); isP && p.Name() == "y" {
		t.Errorf("fixed GVN propagated t==y under nondet semantics:\n%s", fixedWork)
	}
	rFixed := refine.Check(orig, fixedWork, refine.DefaultConfig(nondet, nondet))
	if rFixed.Status == refine.Refuted {
		t.Errorf("fixed GVN should be sound under nondet semantics: %s", rFixed)
	}
}

func TestLICMHoistsSpeculatable(t *testing.T) {
	// Figure 1: hoist x+1 (nsw) out of the loop — the motivating
	// example for deferred UB.
	src := `define i8 @f(i8 %x, i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i8 %x, 1
  %acc = add i8 %x1, %i
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  ret i8 %i
}`
	_, work := applyPass(t, src, LICM{}, DefaultFreezeConfig())
	entry := work.Entry()
	found := false
	for _, in := range entry.Instrs() {
		if in.Op == ir.OpAdd && in.Attrs&ir.NSW != 0 && in.Name() == "x1" {
			found = true
		}
	}
	if !found {
		t.Errorf("x+1 not hoisted to preheader:\n%s", work)
	}
}

func TestLICMDivisionNotHoistedWhenUnsafe(t *testing.T) {
	// §3.2: 1/k guarded by k != 0 must NOT be hoisted (k may be
	// undef/poison).
	src := `define i8 @f(i8 %k, i8 %n) {
entry:
  %nz = icmp ne i8 %k, 0
  br i1 %nz, label %pre, label %out
pre:
  br label %head
head:
  %i = phi i8 [ 0, %pre ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %out
body:
  %q = udiv i8 1, %k
  %i1 = add nsw i8 %i, 1
  br label %head
out:
  ret i8 0
}`
	fixed := &Config{Sem: core.LegacyOptions(core.BranchPoisonNondet)}
	_, work := applyPass(t, src, LICM{}, fixed)
	if work.BlockByName("pre") != nil {
		for _, in := range work.BlockByName("pre").Instrs() {
			if in.Op == ir.OpUDiv {
				t.Errorf("fixed LICM hoisted the guarded division:\n%s", work)
			}
		}
	}
	// The historical behaviour hoists it; the refinement checker
	// refutes it (the k=undef, n=0... n so the loop doesn't run, and
	// undef k can pass the check then divide by zero).
	buggy := DefaultLegacyConfig()
	orig, work2 := applyPass(t, src, LICM{}, buggy)
	hoisted := false
	for _, in := range work2.BlockByName("pre").Instrs() {
		if in.Op == ir.OpUDiv {
			hoisted = true
		}
	}
	if !hoisted {
		t.Fatalf("unsound LICM should hoist the division:\n%s", work2)
	}
	r := refine.Check(orig, work2, refine.DefaultConfig(buggy.Sem, buggy.Sem))
	if r.Status != refine.Refuted {
		t.Errorf("historical division hoist should be refuted: %s", r)
	}
}

func TestLICMConstDivisorHoists(t *testing.T) {
	src := `define i8 @f(i8 %a, i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %q = udiv i8 %a, 3
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  ret i8 0
}`
	_, work := applyPass(t, src, LICM{}, DefaultFreezeConfig())
	hoisted := false
	for _, in := range work.Entry().Instrs() {
		if in.Op == ir.OpUDiv {
			hoisted = true
		}
	}
	if !hoisted {
		t.Errorf("udiv by constant 3 should hoist:\n%s", work)
	}
}

func TestReassociate(t *testing.T) {
	src := `define i4 @f(i4 %a, i4 %b) {
entry:
  %t1 = add nsw i4 %a, 3
  %t2 = add nsw i4 %t1, %b
  %t3 = add nsw i4 %t2, 5
  ret i4 %t3
}`
	cfg := DefaultFreezeConfig()
	_, work := validatePass(t, src, Reassociate{}, cfg, refine.Verified)
	// Constants combined: exactly one constant operand of 30 somewhere.
	found := false
	work.ForEachInstr(func(in *ir.Instr) {
		if in.Op != ir.OpAdd {
			return
		}
		if in.Attrs&ir.NSW != 0 {
			t.Errorf("fixed reassociation kept nsw:\n%s", work)
		}
		for _, a := range in.Args() {
			if c, ok := a.(*ir.Const); ok && c.Bits == 8 {
				found = true
			}
		}
	})
	if !found {
		t.Errorf("constants not combined:\n%s", work)
	}
}

func TestReassociateUnsoundKeepsNsw(t *testing.T) {
	// §10.2: keeping nsw through reassociation introduces poison the
	// source never had.
	// (a + 1) + b reassociates to (a + b) + 1; with a=-2, b=-1 the
	// source never overflows but the rebuilt (a+b) does.
	src := `define i2 @f(i2 %a, i2 %b) {
entry:
  %t1 = add nsw i2 %a, 1
  %t2 = add nsw i2 %t1, %b
  ret i2 %t2
}`
	validatePass(t, src, Reassociate{}, DefaultLegacyConfig(), refine.Refuted)
}

func TestSCCP(t *testing.T) {
	src := `define i8 @f(i8 %x) {
entry:
  %a = add i8 2, 3
  %c = icmp eq i8 %a, 5
  br i1 %c, label %t, label %e
t:
  %r = mul i8 %a, 2
  ret i8 %r
e:
  ret i8 %x
}`
	_, work := applyPass(t, src, SCCP{}, DefaultFreezeConfig())
	// %a = 5, %c = true, %r = 10; the false branch is unreachable.
	tb := work.BlockByName("t")
	if tb == nil {
		t.Fatalf("true block removed:\n%s", work)
	}
	ret := tb.Instrs()[len(tb.Instrs())-1]
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Bits != 10 {
		t.Errorf("SCCP did not fold to 10:\n%s", work)
	}
}

func TestSCCPThroughPhi(t *testing.T) {
	src := `define i8 @f(i1 %c) {
entry:
  br i1 true, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %x = phi i8 [ 7, %a ], [ 9, %b ]
  ret i8 %x
}`
	_, work := applyPass(t, src, SCCP{}, DefaultFreezeConfig())
	// Only edge a→m is feasible, so %x = 7.
	var ret *ir.Instr
	work.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpRet {
			ret = in
		}
	})
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Bits != 7 {
		t.Errorf("SCCP missed the edge-sensitive constant:\n%s", work)
	}
}

func TestSCCPDeferredConsistency(t *testing.T) {
	// A deferred (undef) value feeding both a branch and an arithmetic
	// use resolves consistently to 0 — sound by construction.
	src := `define i8 @f() {
entry:
  %u = add i8 undef, 0
  %c = icmp ne i8 %u, 0
  br i1 %c, label %t, label %e
t:
  %q = udiv i8 1, %u
  ret i8 %q
e:
  ret i8 42
}`
	legacy := &Config{Sem: core.LegacyOptions(core.BranchPoisonNondet)}
	orig, work := applyPass(t, src, SCCP{}, legacy)
	r := refine.Check(orig, work, refine.DefaultConfig(legacy.Sem, legacy.Sem))
	if r.Status == refine.Refuted {
		t.Errorf("SCCP's consistent undef resolution should be sound: %s", r)
	}
}

func TestJumpThreading(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %v) {
entry:
  br i1 %c, label %p, label %q
p:
  br label %join
q:
  br label %join
join:
  %cc = phi i1 [ true, %p ], [ %c, %q ]
  br i1 %cc, label %yes, label %no
yes:
  ret i2 1
no:
  ret i2 0
}`
	cfg := DefaultFreezeConfig()
	_, work := validatePass(t, src, JumpThreading{}, cfg, refine.Verified)
	// p should now branch straight to yes.
	p := work.BlockByName("p")
	if p == nil {
		t.Fatalf("block p gone:\n%s", work)
	}
	succs := p.Succs()
	if len(succs) != 1 || succs[0].Name() != "yes" {
		t.Errorf("p not threaded to yes:\n%s", work)
	}
}

func TestJumpThreadingThroughFreeze(t *testing.T) {
	src := `define i2 @f(i1 %c, i1 %d) {
entry:
  br i1 %c, label %p, label %q
p:
  br label %join
q:
  br label %join
join:
  %cc = phi i1 [ true, %p ], [ %d, %q ]
  %fcc = freeze i1 %cc
  br i1 %fcc, label %yes, label %no
yes:
  ret i2 1
no:
  ret i2 0
}`
	// Freeze-aware: threads through the freeze.
	aware := DefaultFreezeConfig()
	_, work := validatePass(t, src, JumpThreading{}, aware, refine.Verified)
	p := work.BlockByName("p")
	if succs := p.Succs(); len(succs) != 1 || succs[0].Name() != "yes" {
		t.Errorf("freeze-aware threading missed:\n%s", work)
	}
	// Not freeze-aware: blocked (the §7.2 compile-time anecdote).
	blind := DefaultFreezeConfig()
	blind.FreezeAware = false
	_, work2 := applyPass(t, src, JumpThreading{}, blind)
	p2 := work2.BlockByName("p")
	if succs := p2.Succs(); len(succs) != 1 || succs[0].Name() != "join" {
		t.Errorf("freeze-blind threading should be blocked:\n%s", work2)
	}
}

func TestCodeGenPrepareFreezeICmp(t *testing.T) {
	src := `define i4 @f(i4 %x) {
entry:
  %cmp = icmp ult i4 %x, 5
  %fz = freeze i1 %cmp
  br i1 %fz, label %a, label %b
a:
  ret i4 1
b:
  ret i4 0
}`
	cfg := DefaultFreezeConfig()
	_, work := validatePass(t, src, CodeGenPrepare{}, cfg, refine.Verified)
	// Expect: %fz2 = freeze i4 %x; icmp ult %fz2, 10.
	var foundFreezeOfX bool
	work.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpFreeze && in.Ty.Equal(ir.Int(4)) {
			foundFreezeOfX = true
		}
	})
	if !foundFreezeOfX {
		t.Errorf("freeze(icmp) not rewritten to icmp(freeze):\n%s", work)
	}
}

func TestLoopSink(t *testing.T) {
	src := `define i8 @f(i8 %a, i8 %b, i8 %n) {
entry:
  %x = mul i8 %a, %b
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %u = add i8 %x, %i
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  ret i8 %n
}`
	_, work := applyPass(t, src, LoopSink{}, DefaultFreezeConfig())
	sunk := false
	for _, in := range work.BlockByName("body").Instrs() {
		if in.Op == ir.OpMul {
			sunk = true
		}
	}
	if !sunk {
		t.Errorf("mul not sunk into loop:\n%s", work)
	}
}

func TestLoopSinkRefusesFreeze(t *testing.T) {
	src := `define i8 @f(i8 %a, i8 %n) {
entry:
  %x = freeze i8 %a
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %acc = phi i8 [ 0, %entry ], [ %acc1, %body ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc1 = add i8 %acc, %x
  %i1 = add i8 %i, 1
  br label %head
exit:
  ret i8 %acc
}`
	// Fixed: freeze stays put.
	_, work := applyPass(t, src, LoopSink{}, DefaultFreezeConfig())
	if work.Entry().Instrs()[0].Op != ir.OpFreeze {
		t.Errorf("fixed loop sink moved the freeze:\n%s", work)
	}
	// Unsound: sinks it; behaviour set grows (each iteration picks its
	// own freeze value), caught by refinement on i2.
	src2 := strings.ReplaceAll(src, "i8", "i2")
	buggy := DefaultLegacyConfig()
	buggy.Sem = core.FreezeOptions()
	orig, work2 := applyPass(t, src2, LoopSink{}, buggy)
	if work2.BlockByName("body").Instrs()[0].Op != ir.OpFreeze {
		t.Fatalf("unsound loop sink should move the freeze:\n%s", work2)
	}
	r := refine.Check(orig, work2, refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions()))
	if r.Status != refine.Refuted {
		t.Errorf("sinking a freeze into a loop should be refuted (§5.5): %s", r)
	}
}

func TestMem2Reg(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  %slot = alloca i2, i32 1
  br i1 %c, label %t, label %e
t:
  store i2 %a, ptr %slot
  br label %m
e:
  store i2 %b, ptr %slot
  br label %m
m:
  %v = load i2, ptr %slot
  ret i2 %v
}`
	_, work := validatePass(t, src, Mem2Reg{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(work, ir.OpAlloca) != 0 || countOp(work, ir.OpLoad) != 0 || countOp(work, ir.OpStore) != 0 {
		t.Errorf("alloca not promoted:\n%s", work)
	}
	if countOp(work, ir.OpPhi) != 1 {
		t.Errorf("expected one phi:\n%s", work)
	}
}

func TestMem2RegUninitIsPoisonUnderFreeze(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %a) {
entry:
  %slot = alloca i2, i32 1
  br i1 %c, label %t, label %m
t:
  store i2 %a, ptr %slot
  br label %m
m:
  %v = load i2, ptr %slot
  ret i2 %v
}`
	// Figure 2's pattern: the phi gets poison (freeze) / undef
	// (legacy) on the path that skips the store.
	_, work := validatePass(t, src, Mem2Reg{}, DefaultFreezeConfig(), refine.Verified)
	phi := work.BlockByName("m").Phis()[0]
	foundPoison := false
	for i := 0; i < phi.NumArgs(); i++ {
		if _, ok := phi.Arg(i).(*ir.Poison); ok {
			foundPoison = true
		}
	}
	if !foundPoison {
		t.Errorf("uninitialized path should contribute poison:\n%s", work)
	}
	legacy := &Config{Sem: core.LegacyOptions(core.BranchPoisonNondet)}
	_, work2 := validatePass(t, src, Mem2Reg{}, legacy, refine.Verified)
	phi2 := work2.BlockByName("m").Phis()[0]
	foundUndef := false
	for i := 0; i < phi2.NumArgs(); i++ {
		if _, ok := phi2.Arg(i).(*ir.Undef); ok {
			foundUndef = true
		}
	}
	if !foundUndef {
		t.Errorf("legacy uninitialized path should contribute undef:\n%s", work2)
	}
}

func TestMem2RegLoop(t *testing.T) {
	src := `define i8 @f(i8 %n) {
entry:
  %acc = alloca i8, i32 1
  store i8 0, ptr %acc
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %cur = load i8, ptr %acc
  %next = add i8 %cur, %i
  store i8 %next, ptr %acc
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  %r = load i8, ptr %acc
  ret i8 %r
}`
	orig, work := applyPass(t, src, Mem2Reg{}, DefaultFreezeConfig())
	if countOp(work, ir.OpAlloca) != 0 {
		t.Fatalf("loop alloca not promoted:\n%s", work)
	}
	// Behavioural spot-check: sum 0..4 = 10.
	for _, f := range []*ir.Func{orig, work} {
		out := core.Exec(f, []core.Value{core.VC(ir.I8, 5)}, core.ZeroOracle{}, core.FreezeOptions())
		if out.Kind != core.OutRet || out.Val.Uint() != 10 {
			t.Errorf("sum(5) = %v, want 10 on\n%s", out, f)
		}
	}
}

func TestIndVarWiden(t *testing.T) {
	// Figure 3: eliminate the sext in the loop body.
	src := `define i64 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp sle i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  %r = sext i32 %n to i64
  ret i64 %r
}`
	_, work := applyPass(t, src, IndVarWiden{}, DefaultFreezeConfig())
	// The in-loop sext must be gone (the exit one remains).
	body := work.BlockByName("body")
	for _, in := range body.Instrs() {
		if in.Op == ir.OpSExt {
			t.Errorf("in-loop sext survives widening:\n%s", work)
		}
	}
	if n := countOp(work, ir.OpPhi); n != 2 {
		t.Errorf("expected a second (wide) phi, have %d:\n%s", n, work)
	}
	// Behavioural check with the interpreter.
	orig := ir.MustParseFunc(src)
	for _, n := range []uint64{0, 3, 7} {
		a := core.Exec(orig, []core.Value{core.VC(ir.I32, n)}, core.ZeroOracle{}, core.FreezeOptions())
		b := core.Exec(work, []core.Value{core.VC(ir.I32, n)}, core.ZeroOracle{}, core.FreezeOptions())
		if a.String() != b.String() {
			t.Errorf("n=%d: orig %v, widened %v", n, a, b)
		}
	}
}

func TestIndVarWidenRequiresNSW(t *testing.T) {
	src := `define i64 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp sle i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %i1 = add i32 %i, 1
  br label %head
exit:
  ret i64 0
}`
	_, work := applyPass(t, src, IndVarWiden{}, DefaultFreezeConfig())
	if countOp(work, ir.OpSExt) != 1 {
		t.Errorf("widening performed without nsw — §2.4 violation:\n%s", work)
	}
}

func TestO2PipelineRuns(t *testing.T) {
	src := `define i8 @f(i8 %x, i8 %n) {
entry:
  %slot = alloca i8, i32 1
  store i8 0, ptr %slot
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i8 %x, 1
  %cur = load i8, ptr %slot
  %next = add i8 %cur, %x1
  store i8 %next, ptr %slot
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  %r = load i8, ptr %slot
  ret i8 %r
}`
	for _, cfg := range []*Config{DefaultFreezeConfig(), DefaultLegacyConfig()} {
		f := ir.MustParseFunc(src)
		cfg.VerifyAfterEach = true
		O2().RunFunc(f, cfg)
		out := core.Exec(f, []core.Value{core.VC(ir.I8, 4), core.VC(ir.I8, 3)}, core.ZeroOracle{}, cfg.Sem)
		if out.Kind != core.OutRet || out.Val.Uint() != 15 {
			t.Errorf("[%s] optimized f(4,3) = %v, want 15\n%s", cfg.Sem.Mode, out, f)
		}
	}
}

// §10.1: "Scalar evolution ... currently fails to analyze expressions
// involving freeze." Our scev-lite has the same property: an induction
// variable whose increment flows through a freeze is not recognized,
// so widening is (conservatively) blocked.
func TestIndVarWidenBlockedByFreeze(t *testing.T) {
	src := `define i64 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %c = icmp sle i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %i1 = add nsw i32 %i, 1
  %i2 = freeze i32 %i1
  br label %head
exit:
  ret i64 0
}`
	_, work := applyPass(t, src, IndVarWiden{}, DefaultFreezeConfig())
	if countOp(work, ir.OpSExt) != 1 {
		t.Errorf("widening should be blocked when the IV increment is frozen:\n%s", work)
	}
}

// GVN folding two freezes of the same value is only legal if ALL uses
// are replaced at once (§6); our GVN conservatively never merges, and
// the whole O2 pipeline must preserve freeze-pair distinctness
// end-to-end.
func TestO2PreservesFreezeDistinctness(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %f1 = freeze i2 %x
  %f2 = freeze i2 %x
  %d = sub i2 %f1, %f2
  ret i2 %d
}`
	orig := ir.MustParseFunc(src)
	work := ir.CloneFunc(orig)
	cfg := DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	O2().RunFunc(work, cfg)
	fz := core.FreezeOptions()
	r := refine.Check(orig, work, refine.DefaultConfig(fz, fz))
	if r.Status == refine.Refuted {
		t.Errorf("O2 merged distinct freezes: %s\n%s", r, work)
	}
}

// §6 future work, implemented as an opt-in extension: GVN may merge
// two freezes of the same value if it redirects all the duplicate's
// uses. Merging shrinks nondeterminism (a refinement); the checker
// confirms it, and the distinctness test above confirms the default
// pipeline leaves freezes alone.
func TestGVNFoldFreezeExtension(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %f1 = freeze i2 %x
  %f2 = freeze i2 %x
  %d = sub i2 %f1, %f2
  ret i2 %d
}`
	cfg := DefaultFreezeConfig()
	cfg.GVNFoldFreeze = true
	_, work := validatePass(t, src, GVN{}, cfg, refine.Verified)
	if n := countOp(work, ir.OpFreeze); n != 1 {
		t.Errorf("freeze-folding GVN left %d freezes, want 1:\n%s", n, work)
	}
	// After the merge, x - x folds to 0 downstream.
	RunPass(InstSimplify{}, work, cfg)
	ret := work.Entry().Instrs()[len(work.Entry().Instrs())-1]
	if c, ok := ret.Arg(0).(*ir.Const); !ok || !c.IsZero() {
		t.Errorf("merged freezes should fold the sub to 0:\n%s", work)
	}
}

// §6: CodeGenPrepare splits a branch on and/or into a pair of jumps;
// a frozen and/or blocks the split unless the pass pushes the freeze
// onto the operands.
func TestCGPBranchOnAndSplitting(t *testing.T) {
	src := `define i2 @f(i1 %a, i1 %b) {
entry:
  %c = and i1 %a, %b
  br i1 %c, label %t, label %e
t:
  ret i2 1
e:
  ret i2 2
}`
	_, work := validatePass(t, src, CodeGenPrepare{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(work, ir.OpAnd) != 0 {
		t.Errorf("branch-on-and not split:\n%s", work)
	}
	if len(work.Blocks) != 4 {
		t.Errorf("expected a new check block:\n%s", work)
	}

	// Or variant, with phis in the successors.
	orSrc := `define i2 @f(i1 %a, i1 %b) {
entry:
  %c = or i1 %a, %b
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i2 [ 1, %t ], [ 2, %e ]
  ret i2 %x
}`
	_, work2 := validatePass(t, orSrc, CodeGenPrepare{}, DefaultFreezeConfig(), refine.Verified)
	if countOp(work2, ir.OpOr) != 0 {
		t.Errorf("branch-on-or not split:\n%s", work2)
	}
}

func TestCGPBranchOnFrozenAndOr(t *testing.T) {
	src := `define i2 @f(i1 %a, i1 %b) {
entry:
  %c = and i1 %a, %b
  %fc = freeze i1 %c
  br i1 %fc, label %t, label %e
t:
  ret i2 1
e:
  ret i2 2
}`
	// Freeze-aware: freeze is pushed onto the operands and the branch
	// splits (§6's CodeGenPrepare change).
	aware := DefaultFreezeConfig()
	_, work := validatePass(t, src, CodeGenPrepare{}, aware, refine.Verified)
	if countOp(work, ir.OpAnd) != 0 {
		t.Errorf("frozen and-branch not split when freeze-aware:\n%s", work)
	}
	if countOp(work, ir.OpFreeze) != 2 {
		t.Errorf("expected two operand freezes:\n%s", work)
	}
	// Freeze-blind: blocked, like the early prototype.
	blind := DefaultFreezeConfig()
	blind.FreezeAware = false
	_, work2 := applyPass(t, src, CodeGenPrepare{}, blind)
	if countOp(work2, ir.OpAnd) != 1 {
		t.Errorf("freeze-blind CGP should leave the and-branch alone:\n%s", work2)
	}
}

// Pushing a freeze through and/or must itself be a refinement.
func TestFreezePushThroughAndIsRefinement(t *testing.T) {
	src := `define i1 @f(i1 %a, i1 %b) {
entry:
  %c = and i1 %a, %b
  %fc = freeze i1 %c
  ret i1 %fc
}`
	tgt := `define i1 @f(i1 %a, i1 %b) {
entry:
  %fa = freeze i1 %a
  %fb = freeze i1 %b
  %c = and i1 %fa, %fb
  ret i1 %c
}`
	fz := core.FreezeOptions()
	r := refine.Check(ir.MustParseFunc(src), ir.MustParseFunc(tgt), refine.DefaultConfig(fz, fz))
	if r.Status != refine.Verified {
		t.Errorf("freeze distribution over and should verify: %s", r)
	}
}
