package passes

import (
	"testing"

	"tameir/internal/ir"
	"tameir/internal/refine"
)

func TestADCERemovesDeadPhiCycle(t *testing.T) {
	// %a and %b feed each other but nothing live uses them: plain DCE
	// cannot remove the cycle, ADCE can.
	src := `define i2 @f(i2 %n) {
entry:
  br label %loop
loop:
  %a = phi i2 [ 0, %entry ], [ %b2, %loop ]
  %i = phi i2 [ 0, %entry ], [ %i1, %loop ]
  %b2 = add i2 %a, 1
  %i1 = add i2 %i, 1
  %c = icmp ult i2 %i1, %n
  br i1 %c, label %loop, label %exit
exit:
  ret i2 %i
}`
	_, afterDCE := applyPass(t, src, DCE{}, DefaultFreezeConfig())
	if countOp(afterDCE, ir.OpPhi) != 2 {
		t.Fatalf("plain DCE should keep the dead phi cycle:\n%s", afterDCE)
	}
	orig, afterADCE := validatePass(t, src, ADCE{}, DefaultFreezeConfig(), refine.Verified)
	_ = orig
	if countOp(afterADCE, ir.OpPhi) != 1 {
		t.Errorf("ADCE should remove the dead phi cycle:\n%s", afterADCE)
	}
	if countOp(afterADCE, ir.OpAdd) != 1 {
		t.Errorf("ADCE should remove the cycle's add:\n%s", afterADCE)
	}
}

func TestADCEKeepsSideEffects(t *testing.T) {
	src := `define void @f(ptr %p, i2 %v) {
entry:
  %dead = add i2 %v, 1
  store i2 %v, ptr %p
  ret void
}`
	_, work := applyPass(t, src, ADCE{}, DefaultFreezeConfig())
	if countOp(work, ir.OpStore) != 1 {
		t.Errorf("ADCE removed a store:\n%s", work)
	}
	if countOp(work, ir.OpAdd) != 0 {
		t.Errorf("ADCE kept a dead add:\n%s", work)
	}
}

func TestADCEKeepsControlFlow(t *testing.T) {
	// The loop computes nothing live, but removing control flow could
	// change termination: ADCE must keep the branches.
	src := `define i2 @f(i2 %n) {
entry:
  br label %loop
loop:
  %i = phi i2 [ 0, %entry ], [ %i1, %loop ]
  %i1 = add i2 %i, 1
  %c = icmp ult i2 %i1, %n
  br i1 %c, label %loop, label %exit
exit:
  ret i2 0
}`
	_, work := validatePass(t, src, ADCE{}, DefaultFreezeConfig(), refine.Verified)
	if len(work.Blocks) != 3 {
		t.Errorf("ADCE must not delete control flow:\n%s", work)
	}
	// The induction chain feeds the live branch, so it stays.
	if countOp(work, ir.OpPhi) != 1 || countOp(work, ir.OpAdd) != 1 {
		t.Errorf("branch-feeding IV chain must stay:\n%s", work)
	}
}
