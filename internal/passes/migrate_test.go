package passes_test

import (
	"math/rand"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// The §10.1 migration: undef → freeze(poison). The migrated function
// must be valid in the Freeze dialect and must refine the legacy
// original under a cross-semantics check (source interpreted with
// undef, target with the proposed semantics).
//
// The paper stages the migration as (1) document branch on
// undef/poison as UB, (2) fix loop unswitching, (3) then replace undef
// — so the cross-check's source semantics is legacy WITH
// branch-on-poison-as-UB already adopted. (Against the nondet-branch
// legacy semantics no undef migration could verify: a program that
// branches on poison is UB on one side and a coin flip on the other,
// independent of undef.)
func TestMigrateUndefBasics(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %a = add i2 %x, undef
  %b = xor i2 %a, undef
  ret i2 %b
}`
	orig := ir.MustParseFunc(src)
	work := ir.CloneFunc(orig)
	cfg := &passes.Config{Sem: core.LegacyOptions(core.BranchPoisonIsUB)}
	if !passes.RunPass(passes.MigrateUndef{}, work, cfg) {
		t.Fatal("migration did nothing")
	}
	if err := ir.Verify(work, ir.VerifyFreeze); err != nil {
		t.Fatalf("migrated function not valid in the freeze dialect: %v\n%s", err, work)
	}
	if countFreezes(work, ir.OpFreeze) != 2 {
		t.Errorf("each undef use gets its own freeze:\n%s", work)
	}
	rcfg := refine.DefaultConfig(core.LegacyOptions(core.BranchPoisonIsUB), core.FreezeOptions())
	r := refine.Check(orig, work, rcfg)
	if r.Status != refine.Verified {
		t.Errorf("migration should refine across semantics: %s\n%s", r, work)
	}
}

func TestMigrateUndefPhi(t *testing.T) {
	// Figure 2's shape: the phi's undef incoming moves to the edge.
	src := `define i2 @f(i1 %c, i2 %v) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %x = phi i2 [ %v, %a ], [ undef, %b ]
  ret i2 %x
}`
	orig := ir.MustParseFunc(src)
	work := ir.CloneFunc(orig)
	cfg := &passes.Config{Sem: core.LegacyOptions(core.BranchPoisonIsUB), VerifyAfterEach: true}
	passes.RunPass(passes.MigrateUndef{}, work, cfg)
	if err := ir.Verify(work, ir.VerifyFreeze); err != nil {
		t.Fatalf("invalid after migration: %v\n%s", err, work)
	}
	// The freeze must live in block b (the incoming edge).
	bb := work.BlockByName("b")
	if len(bb.Instrs()) != 2 || bb.Instrs()[0].Op != ir.OpFreeze {
		t.Errorf("freeze not placed on the incoming edge:\n%s", work)
	}
	rcfg := refine.DefaultConfig(core.LegacyOptions(core.BranchPoisonIsUB), core.FreezeOptions())
	if r := refine.Check(orig, work, rcfg); r.Status != refine.Verified {
		t.Errorf("phi migration should verify: %s", r)
	}
}

// Migration over a generated corpus: every legacy function with undef
// migrates to a freeze-dialect function that refines it.
func TestMigrateUndefCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus migration is slow")
	}
	legacy := core.LegacyOptions(core.BranchPoisonIsUB)
	rcfg := refine.DefaultConfig(legacy, core.FreezeOptions())
	pcfg := &passes.Config{Sem: legacy, VerifyAfterEach: false}
	gen := optfuzz.DefaultConfig(2)
	gen.MaxFuncs = 800
	checked := 0
	optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
		work := ir.CloneFunc(f)
		passes.RunPass(passes.MigrateUndef{}, work, pcfg)
		if err := ir.Verify(work, ir.VerifyFreeze); err != nil {
			t.Fatalf("invalid after migration: %v\n%s", err, work)
		}
		if r := refine.Check(f, work, rcfg); r.Status == refine.Refuted {
			t.Fatalf("migration refuted:\n%s\n→\n%s\n%s", f, work, r)
		}
		checked++
		return true
	})
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	// Random CFG functions too (phis, branches).
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		f := optfuzz.Random(rng, optfuzz.DefaultRandomConfig())
		work := ir.CloneFunc(f)
		passes.RunPass(passes.MigrateUndef{}, work, pcfg)
		if err := ir.Verify(work, ir.VerifyFreeze); err != nil {
			t.Fatalf("invalid after migration: %v\n%s", err, work)
		}
		if r := refine.Check(f, work, rcfg); r.Status == refine.Refuted {
			t.Fatalf("migration refuted on CFG function:\n%s\n→\n%s\n%s", f, work, r)
		}
	}
}

func countFreezes(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}
