package passes

import (
	"tameir/internal/ir"
)

// MigrateUndef is the §10.1 migration step: "replace the undef value
// with poison in an incremental, but safe, fashion". Every syntactic
// undef operand becomes a fresh `freeze poison`:
//
//   - it is a refinement: freeze(poison) is one arbitrary-but-stable
//     value, a subset of undef's anything-per-use behaviour;
//   - the result is valid under the Freeze dialect (no undef remains),
//     so a legacy module can be moved to the new semantics one
//     function at a time.
//
// Each undef operand gets its *own* freeze, preserving the
// independence of distinct undef uses (sharing one freeze across uses
// would also be a refinement, but a coarser one).
type MigrateUndef struct{}

// Name implements Pass.
func (MigrateUndef) Name() string { return "migrate-undef" }

func init() {
	// Rewrites undef uses to freeze(poison) in place; no block changes.
	Register(PassInfo{Name: "migrate-undef", New: func() Pass { return MigrateUndef{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (MigrateUndef) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := false
	// Over-shift is the other semantic delta between the dialects: the
	// legacy semantics gives undef (§2.3), the proposed one poison. A
	// shift whose amount is not provably in range therefore gets its
	// result frozen, so the migrated function's over-shift produces an
	// arbitrary stable value — a refinement of the legacy per-use
	// undef. (§10.1: "further work is required to ensure a safe
	// transition to a world without undef".)
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
			if !in.Op.IsShift() || shiftAmountProvablyInRange(in) || in.NumUses() == 0 {
				continue
			}
			fz := ir.NewInstr(ir.OpFreeze, in.Ty)
			fz.Nam = f.GenName("mig.shift")
			in.ReplaceAllUsesWith(fz)
			fz.AddArg(in)
			// Insert immediately after the shift (a terminator always
			// follows, so a next instruction exists).
			instrs := b.Instrs()
			for k, x := range instrs {
				if x == in {
					b.InsertBefore(fz, instrs[k+1])
					break
				}
			}
			changed = true
		}
	}
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
			for i := 0; i < in.NumArgs(); i++ {
				switch u := in.Arg(i).(type) {
				case *ir.Undef:
					fz := ir.NewInstr(ir.OpFreeze, u.Ty, ir.NewPoison(u.Ty))
					fz.Nam = f.GenName("mig")
					insertForUse(f, in, i, fz)
					in.SetArg(i, fz)
					changed = true
				case *ir.VecConst:
					if !vecHasUndef(u) {
						continue
					}
					// Rebuild the vector with poison lanes, then freeze
					// the whole value lane-wise.
					elems := make([]ir.Value, len(u.Elems))
					for k, e := range u.Elems {
						if _, isU := e.(*ir.Undef); isU {
							elems[k] = ir.NewPoison(e.Type())
						} else {
							elems[k] = e
						}
					}
					fz := ir.NewInstr(ir.OpFreeze, u.Ty, ir.NewVecConst(elems))
					fz.Nam = f.GenName("mig")
					insertForUse(f, in, i, fz)
					in.SetArg(i, fz)
					changed = true
				}
			}
		}
	}
	return changed
}

// shiftAmountProvablyInRange reports whether the shift amount is a
// constant below the bitwidth (no over-shift possible).
func shiftAmountProvablyInRange(in *ir.Instr) bool {
	c, ok := in.Arg(1).(*ir.Const)
	return ok && c.Bits < uint64(in.Ty.Bits)
}

func vecHasUndef(v *ir.VecConst) bool {
	for _, e := range v.Elems {
		if _, isU := e.(*ir.Undef); isU {
			return true
		}
	}
	return false
}

// insertForUse places the new instruction so it dominates the use: for
// a phi operand, at the end of the corresponding incoming block; for
// anything else, immediately before the user.
func insertForUse(f *ir.Func, user *ir.Instr, argIdx int, in *ir.Instr) {
	if user.Op == ir.OpPhi {
		pred := user.BlockArg(argIdx)
		pred.InsertBefore(in, pred.Terminator())
		return
	}
	user.Parent().InsertBefore(in, user)
}
