package passes

import (
	"fmt"
	"strings"

	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// GVN performs global value numbering: syntactically equal pure
// expressions are merged when one dominates the other, and equalities
// learned from dominating branch conditions are propagated (the §3.3
// example: after "if (t == y)", t may be replaced by y in the "then"
// region).
//
// The equality propagation is the optimization whose soundness forces
// branch-on-poison to be immediate UB: if branching on poison were a
// nondeterministic choice, the comparison could be poison with t and y
// unrelated, and substituting y for t would be wrong. GVN therefore
// performs propagation only when the semantics makes branch-on-poison
// UB — or when Config.Unsound replicates the historical behaviour of
// assuming it anyway (while loop unswitching simultaneously assumes
// the opposite; the combination is the paper's end-to-end
// miscompilation, PR27506).
//
// Freeze instructions are not merged by default: each freeze of the
// same value may return a different result, and §6 notes GVN could
// fold equivalent freezes only by replacing all uses at once. The
// paper's prototype conservatively skipped this; Config.GVNFoldFreeze
// enables it here as the described extension (sound: replaceAndErase
// redirects every use, and merging only shrinks nondeterminism).
type GVN struct{}

// Name implements Pass.
func (GVN) Name() string { return "gvn" }

func init() {
	// GVN rewrites uses and erases duplicates; block edges are untouched.
	Register(PassInfo{Name: "gvn", New: func() Pass { return GVN{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (GVN) Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	dt := am.DomTree()
	g := &gvnState{
		f:          f,
		dt:         dt,
		leaders:    map[string]*ir.Instr{},
		foldFreeze: cfg.GVNFoldFreeze,
	}
	propagate := cfg.Sem.BranchPoison == core.BranchPoisonIsUB || cfg.Unsound
	return g.walk(f.Entry(), map[ir.Value]ir.Value{}, propagate)
}

type gvnState struct {
	f          *ir.Func
	dt         *analysis.DomTree
	leaders    map[string]*ir.Instr
	foldFreeze bool
}

// exprKey builds a structural key for a pure instruction under the
// current equality substitution, or "" if the instruction must not be
// numbered.
func (g *gvnState) exprKey(in *ir.Instr, subst map[ir.Value]ir.Value) string {
	switch in.Op {
	case ir.OpFreeze:
		if !g.foldFreeze {
			return ""
		}
		// Freeze numbering is keyed on the operand like any other
		// unary op; replacement redirects every use of the duplicate,
		// satisfying the §6 all-uses caveat.
	case ir.OpPhi, ir.OpLoad, ir.OpStore, ir.OpCall, ir.OpAlloca:
		return ""
	}
	if in.Op.IsTerminator() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d:%d:%d:%s:", in.Op, in.Attrs, in.Pred, in.Ty)
	args := make([]string, in.NumArgs())
	for i := 0; i < in.NumArgs(); i++ {
		args[i] = operandKey(resolve(in.Arg(i), subst))
		if args[i] == "" {
			return ""
		}
	}
	// Canonical operand order for commutative ops.
	if in.Op.IsCommutative() && len(args) == 2 && args[1] < args[0] {
		args[0], args[1] = args[1], args[0]
	}
	if in.Op == ir.OpICmp && len(args) == 2 && args[1] < args[0] {
		// icmp: swapping operands requires swapping the predicate.
		fmt.Fprintf(&b, "swapped:%d:", in.Pred.Swapped())
		args[0], args[1] = args[1], args[0]
	}
	b.WriteString(strings.Join(args, ","))
	return b.String()
}

func operandKey(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Const:
		return fmt.Sprintf("c%s:%d", x.Ty, x.Bits)
	case *ir.Poison:
		return "poison:" + x.Ty.String()
	case *ir.Undef:
		return "" // undef never equals undef
	case *ir.Global:
		return "g:" + x.Nam
	case *ir.Param:
		return fmt.Sprintf("p%d", x.Idx)
	case *ir.Instr:
		return "i:" + x.Nam
	case *ir.VecConst:
		return "v:" + x.Ident()
	}
	return ""
}

func resolve(v ir.Value, subst map[ir.Value]ir.Value) ir.Value {
	for i := 0; i < 8; i++ {
		nv, ok := subst[v]
		if !ok {
			return v
		}
		v = nv
	}
	return v
}

// walk numbers instructions in dominator-tree preorder, carrying the
// branch-implied equality substitution.
func (g *gvnState) walk(b *ir.Block, subst map[ir.Value]ir.Value, propagate bool) bool {
	changed := false
	for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
		if in.Parent() == nil {
			continue
		}
		// Apply pending substitutions to the operands.
		for i := 0; i < in.NumArgs(); i++ {
			if nv := resolve(in.Arg(i), subst); nv != in.Arg(i) {
				// Never substitute into a phi: the equality only
				// holds on this edge-dominated region, while phi
				// operands are evaluated on the incoming edge.
				if in.Op == ir.OpPhi {
					continue
				}
				if g.operandAvailable(nv, in) {
					in.SetArg(i, nv)
					changed = true
				}
			}
		}
		key := g.exprKey(in, subst)
		if key == "" {
			continue
		}
		if leader, ok := g.leaders[key]; ok && leader.Parent() != nil && g.dt.InstrDominates(leader, in) {
			replaceAndErase(in, leader)
			changed = true
			continue
		}
		g.leaders[key] = in
	}

	// Learn equalities from this block's conditional branch for
	// children dominated by a single out-edge.
	t := b.Terminator()
	for _, kid := range g.dt.Children(b) {
		kidSubst := subst
		if propagate && t != nil && t.IsConditionalBr() {
			if eqV, eqW, onTrue, ok := branchEquality(t); ok {
				// kid is dominated by b; the equality holds in kid if
				// kid is reachable only through the matching edge.
				edge := t.BlockArg(0)
				if !onTrue {
					edge = t.BlockArg(1)
				}
				other := t.BlockArg(1)
				if !onTrue {
					other = t.BlockArg(0)
				}
				if edge != other && g.edgeDominates(b, edge, kid) {
					kidSubst = map[ir.Value]ir.Value{}
					for k, v := range subst {
						kidSubst[k] = v
					}
					kidSubst[eqV] = eqW
				}
			}
		}
		changed = g.walk(kid, kidSubst, propagate) || changed
	}
	return changed
}

// operandAvailable reports whether the replacement value's definition
// dominates the use site.
func (g *gvnState) operandAvailable(v ir.Value, user *ir.Instr) bool {
	return g.dt.InstrDominates(v, user)
}

// branchEquality extracts "a == b" facts from a conditional branch on
// an icmp eq/ne. It returns the value to replace, its replacement
// (preferring a constant or an earlier definition), and whether the
// fact holds on the true edge.
func branchEquality(t *ir.Instr) (from, to ir.Value, onTrue, ok bool) {
	cmp, isInstr := t.Arg(0).(*ir.Instr)
	if !isInstr || cmp.Op != ir.OpICmp {
		return nil, nil, false, false
	}
	if cmp.Pred != ir.PredEQ && cmp.Pred != ir.PredNE {
		return nil, nil, false, false
	}
	a, b := cmp.Arg(0), cmp.Arg(1)
	onTrue = cmp.Pred == ir.PredEQ
	// Prefer replacing a non-constant with a constant.
	switch {
	case ir.IsConstLeaf(b) && !ir.IsConstLeaf(a):
		return a, b, onTrue, true
	case ir.IsConstLeaf(a) && !ir.IsConstLeaf(b):
		return b, a, onTrue, true
	case !ir.IsConstLeaf(a) && !ir.IsConstLeaf(b):
		// Replace the later definition with the earlier one; between
		// an instruction and a parameter, prefer the parameter.
		if _, isP := b.(*ir.Param); isP {
			return a, b, onTrue, true
		}
		return b, a, onTrue, true
	}
	return nil, nil, false, false
}

// edgeDominates reports whether every path from the entry to kid goes
// through the edge b→edge: true when edge's only predecessor is b and
// edge dominates kid.
func (g *gvnState) edgeDominates(b, edge, kid *ir.Block) bool {
	preds := g.f.Preds(edge)
	if len(preds) != 1 || preds[0] != b {
		return false
	}
	return g.dt.Dominates(edge, kid)
}
