package passes

import (
	"tameir/internal/core"
	"tameir/internal/ir"
)

// scalarFromLeaf converts a constant-leaf operand to a core.Scalar.
func scalarFromLeaf(v ir.Value) (core.Scalar, bool) {
	switch c := v.(type) {
	case *ir.Const:
		return core.C(c.Bits), true
	case *ir.Poison:
		return core.PoisonScalar, true
	case *ir.Undef:
		return core.UndefScalar, true
	}
	return core.Scalar{}, false
}

// leafFromScalar converts a scalar result back to a constant leaf.
func leafFromScalar(ty ir.Type, s core.Scalar) ir.Value {
	switch s.Kind {
	case core.PoisonVal:
		return ir.NewPoison(ty)
	case core.UndefVal:
		return ir.NewUndef(ty)
	}
	return ir.ConstInt(ty, s.Bits)
}

// FoldConstant attempts to evaluate in when its operands are constant
// leaves, returning the replacement value. Only refinements are
// produced:
//
//   - fully concrete operands fold exactly (a constant-UB division
//     folds to poison, a sound refinement since UB ⊒ poison);
//   - a poison operand folds to poison (division by poison is UB ⊒
//     poison);
//   - undef operands fold only through rules that pick a *member* of
//     the result set (always sound) or to undef when the operation is
//     surjective in that operand (so the result set is exactly "any
//     value"). In particular mul x, 2 with x undef does NOT fold to
//     undef (§3.1: only even results are possible).
//
// freezeAware additionally enables the §6 freeze clean-ups
// (freeze(freeze(x)), freeze(const), freeze(poison)); a freeze-blind
// combiner leaves every freeze alone, like pre-prototype LLVM.
func FoldConstant(in *ir.Instr, mode core.Mode, freezeAware bool) (ir.Value, bool) {
	switch {
	case in.Op.IsBinop() && in.Ty.IsInt():
		x, okx := scalarFromLeaf(in.Arg(0))
		y, oky := scalarFromLeaf(in.Arg(1))
		if !okx || !oky {
			return nil, false
		}
		return foldBinop(in, x, y, mode)
	case in.Op == ir.OpICmp && in.Arg(0).Type().IsInt():
		x, okx := scalarFromLeaf(in.Arg(0))
		y, oky := scalarFromLeaf(in.Arg(1))
		if !okx || !oky {
			return nil, false
		}
		if x.Kind == core.PoisonVal || y.Kind == core.PoisonVal {
			return ir.NewPoison(ir.I1), true
		}
		if x.Kind == core.UndefVal || y.Kind == core.UndefVal {
			// icmp is surjective onto {0,1} in an undef operand unless
			// the predicate is degenerate; picking a member (false) is
			// always sound, but eq/ne against a full-range undef can
			// also produce both. Fold to a member: false for
			// predicates that can be false, which is all of them here
			// except when both are undef... keep it simple and sound:
			// don't fold.
			return nil, false
		}
		w := in.Arg(0).Type().Bits
		return ir.ConstBool(core.EvalICmpConcrete(in.Pred, w, x.Bits, y.Bits)), true
	case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
		if !in.Ty.IsInt() || !in.Arg(0).Type().IsInt() {
			return nil, false
		}
		x, ok := scalarFromLeaf(in.Arg(0))
		if !ok {
			return nil, false
		}
		switch x.Kind {
		case core.PoisonVal:
			return ir.NewPoison(in.Ty), true
		case core.UndefVal:
			// trunc is surjective: trunc(undef) = undef. zext/sext are
			// not (high bits constrained): fold to 0, a member.
			if in.Op == ir.OpTrunc {
				return ir.NewUndef(in.Ty), true
			}
			return ir.ConstInt(in.Ty, 0), true
		}
		s := core.EvalCastLane(in.Op, in.Arg(0).Type().Bits, in.Ty.Bits, x)
		return leafFromScalar(in.Ty, s), true
	case in.Op == ir.OpSelect && !in.Arg(0).Type().IsVec():
		c, ok := scalarFromLeaf(in.Arg(0))
		if !ok {
			return nil, false
		}
		switch c.Kind {
		case core.PoisonVal:
			// Figure 5: select on poison condition is poison. (Under
			// the legacy select-is-UB reading this is also a sound
			// refinement.)
			return ir.NewPoison(in.Ty), true
		case core.UndefVal:
			// Either arm is a member; pick the first.
			return in.Arg(1), true
		}
		if c.Bits != 0 {
			return in.Arg(1), true
		}
		return in.Arg(2), true
	case in.Op == ir.OpFreeze:
		if !freezeAware {
			return nil, false
		}
		switch a := in.Arg(0).(type) {
		case *ir.Const:
			return a, true // §6: freeze(const) → const
		case *ir.Poison, *ir.Undef:
			// freeze of deferred UB is an arbitrary stable value; pick
			// the member 0.
			return ir.ConstInt(in.Ty, 0), true
		case *ir.Instr:
			if a.Op == ir.OpFreeze {
				return a, true // §6: freeze(freeze(x)) → freeze(x)
			}
		}
		return nil, false
	}
	return nil, false
}

func foldBinop(in *ir.Instr, x, y core.Scalar, mode core.Mode) (ir.Value, bool) {
	w := in.Ty.Bits
	// Division by poison or zero is UB; poison is a sound refinement.
	if in.Op.IsDivRem() && (y.Kind == core.PoisonVal || (y.Kind == core.Concrete && y.Bits == 0)) {
		return ir.NewPoison(in.Ty), true
	}
	if x.Kind == core.PoisonVal || y.Kind == core.PoisonVal {
		return ir.NewPoison(in.Ty), true
	}
	if x.Kind == core.UndefVal || y.Kind == core.UndefVal {
		return foldBinopUndef(in, x, y)
	}
	// EvalBinopConcrete already returns the mode's over-shift choice
	// (undef under legacy, poison under freeze).
	s, ub := core.EvalBinopConcrete(in.Op, in.Attrs, w, x.Bits, y.Bits, mode)
	if ub != "" {
		return ir.NewPoison(in.Ty), true
	}
	return leafFromScalar(in.Ty, s), true
}

// foldBinopUndef folds binops with an undef operand, choosing either
// the exact undef result (surjective ops) or a member of the result
// set.
func foldBinopUndef(in *ir.Instr, x, y core.Scalar) (ir.Value, bool) {
	undef := func() (ir.Value, bool) { return ir.NewUndef(in.Ty), true }
	member := func(v uint64) (ir.Value, bool) { return ir.ConstInt(in.Ty, v), true }
	bothUndef := x.Kind == core.UndefVal && y.Kind == core.UndefVal
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		if in.Attrs == 0 {
			return undef() // x + undef is surjective
		}
		return member(0)
	case ir.OpXor:
		if in.Attrs == 0 && !bothUndef {
			return undef()
		}
		return nil, false
	case ir.OpAnd:
		return member(0) // undef can be 0
	case ir.OpOr:
		return member(ir.TruncBits(^uint64(0), in.Ty.Bits)) // undef can be all-ones
	case ir.OpMul:
		return member(0)
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		// Undef divisor could be zero → possible UB; the set includes
		// UB so anything refines: fold to poison... no: UB is only
		// *possible*, not guaranteed. The result set is
		// {UB} ∪ {values}; a refinement must pick from the union only
		// if UB is guaranteed. It is not, so pick a member value:
		// divisor=1 gives x; numerator undef gives 0.
		if y.Kind == core.UndefVal {
			return nil, false // leave it; simplify would need x itself
		}
		return member(0)
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		return member(0) // shift of/by undef can be 0 (choose 0 operand)
	}
	return nil, false
}
