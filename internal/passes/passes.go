// Package passes implements the optimizer: the transformation passes
// the paper discusses, each in the variant(s) the paper identifies.
//
// Passes that were historically unsound (Section 3) are implemented
// twice, selected by Config.Unsound:
//
//   - loop unswitching without freezing the hoisted condition (§3.3/§5.1)
//   - LICM hoisting control-flow-guarded divisions (§3.2)
//   - InstCombine's select↔arithmetic and select-undef folds (§3.4)
//   - reassociation keeping nsw on rewritten subexpressions (§10.2)
//
// The fixed variants are sound under the paper's Freeze semantics and
// are validated against the refine package by the tests and by the
// Section 6 experiment (cmd/tame-bench -exp validate).
//
// Passes are registered in a PassInfo registry (name, constructor,
// preserved-analyses set) and run through a PassManager that caches
// CFG/domtree/loopinfo per function in an analysis.Manager, invalidating
// only what each pass's preserved-set doesn't cover, and optionally
// records per-pass wall time and change counts into a Stats struct.
package passes

import (
	"fmt"
	"io"
	"time"

	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/telemetry"
)

// Config parameterizes every pass run.
type Config struct {
	// Sem is the semantics the output must refine the input under.
	// The pipeline presets use core.LegacyOptions for the baseline
	// compiler and core.FreezeOptions for the prototype.
	Sem core.Options

	// Unsound selects the historically buggy variants (see package
	// comment). Only meaningful with legacy semantics; the fixed
	// variants are used otherwise.
	Unsound bool

	// FreezeAware: passes recognize the freeze instruction instead of
	// conservatively giving up. Turning it off reproduces the paper's
	// §7.2 compile-time anecdote (jump threading not kicking in) and
	// run-time regressions.
	FreezeAware bool

	// VerifyAfterEach re-runs the IR verifier after every pass and
	// panics on failure (used by tests and fuzzing).
	VerifyAfterEach bool

	// GVNFoldFreeze enables the §6 future-work extension: GVN merges
	// two freezes of the same value when one dominates the other.
	// Sound because the duplicate's uses are ALL redirected at once —
	// the caveat the paper's GVN expert stated — and because merging
	// freezes only shrinks the nondeterminism (the reverse direction,
	// splitting one freeze into two, is the §5.5 unsound duplication).
	// Off by default, like the paper's prototype.
	GVNFoldFreeze bool
}

// DefaultLegacyConfig is the baseline compiler: legacy semantics,
// historically buggy passes, no freeze.
func DefaultLegacyConfig() *Config {
	return &Config{
		Sem:     core.LegacyOptions(core.BranchPoisonNondet),
		Unsound: true,
	}
}

// DefaultFreezeConfig is the paper's prototype: freeze semantics,
// fixed passes, freeze-aware optimizations.
func DefaultFreezeConfig() *Config {
	return &Config{
		Sem:         core.FreezeOptions(),
		FreezeAware: true,
	}
}

// verifyMode maps the semantics to the matching IR verifier mode.
func (cfg *Config) verifyMode() ir.VerifyMode {
	if cfg.Sem.Mode == core.Freeze {
		return ir.VerifyFreeze
	}
	return ir.VerifyLegacy
}

// AnalysisManager is the per-function analysis cache passes query for
// CFG, dominator-tree, and loop information. The alias keeps pass files
// from importing internal/analysis just for the signature.
type AnalysisManager = analysis.Manager

// Pass transforms one function.
type Pass interface {
	// Name is the pass's short identifier (e.g. "instcombine").
	Name() string
	// Run transforms f, returning whether anything changed. Analyses
	// are queried through am; a pass that mutates the IR mid-run past
	// what its registered preserved-set admits must invalidate am
	// itself before re-querying (see LoopUnswitch).
	Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool
}

// RunPass runs a single pass with a throwaway analysis manager and
// optionally verifies the result.
func RunPass(p Pass, f *ir.Func, cfg *Config) bool {
	return RunPassWithManager(p, f, cfg, analysis.NewManager(f))
}

// RunPassWithManager runs a single pass against a caller-owned analysis
// manager, verifying afterwards if configured and applying the pass's
// registered preserved-analyses declaration to the cache.
func RunPassWithManager(p Pass, f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	changed := p.Run(f, cfg, am)
	// Always consume the pass's dynamic preserved-set claim, even when
	// nothing changed: a leftover claim must never soften the next
	// pass's invalidation.
	extra := am.TakeRunPreserved()
	if cfg.VerifyAfterEach {
		verifyAfter(p.Name(), f, cfg)
	}
	if changed {
		am.Invalidate(Preserved(p.Name()) | extra)
	}
	return changed
}

func verifyAfter(pass string, f *ir.Func, cfg *Config) {
	if err := ir.Verify(f, cfg.verifyMode()); err != nil {
		panic(fmt.Sprintf("passes: %s broke @%s: %v\n%s", pass, f.Name(), err, f))
	}
	if err := analysis.VerifySSA(f); err != nil {
		panic(fmt.Sprintf("passes: %s broke SSA dominance in @%s: %v\n%s", pass, f.Name(), err, f))
	}
}

// PassManager runs an ordered list of passes over functions, caching
// analyses between passes and optionally recording per-pass statistics.
// The zero value plus a Passes list is ready to use; NewPassManager
// builds one from registered pass names.
type PassManager struct {
	Passes []Pass
	// MaxIters bounds the number of whole-pipeline repetitions (the
	// pipeline repeats while passes report changes). Default 3.
	MaxIters int
	// NoAnalysisCache evicts every cached analysis after every pass,
	// reproducing the historical recompute-per-pass behaviour. Exists
	// for the cached-vs-uncached benchmark, not for production use.
	NoAnalysisCache bool
	// Stats, when non-nil, accumulates per-pass wall time, change
	// counts, instruction deltas, and analysis cache counters.
	Stats *Stats
	// PrintChanged, when non-nil, receives an IR dump after every pass
	// that reports a change.
	PrintChanged io.Writer
	// VerifyEach runs the full checker battery between every pass step:
	// the IR verifier for the configured semantics, the SSA dominance
	// checker, and the analysis cache-coherence invariant (every
	// still-cached analysis must match a fresh recomputation — a
	// mismatch means a pass mutated the IR beyond its declared
	// preserved-set). Failures increment the verify_each_failures_total
	// counter and panic; checks are counted in verify_each_checks_total.
	// Subsumes Config.VerifyAfterEach when set.
	VerifyEach bool
	// Trace, when non-nil, records one span per pass step (named
	// "<scope path>/<pass name>") — with a traced scope that lands
	// every step in the flight recorder's timeline. Campaigns set it
	// on their per-shard clone; it costs one clock read per step, the
	// same as Stats.
	Trace *telemetry.Scope
}

// NewPassManager resolves names through the registry into a pass
// manager, failing with the list of available passes on unknown names.
func NewPassManager(names ...string) (*PassManager, error) {
	pm := &PassManager{Passes: make([]Pass, 0, len(names))}
	for _, n := range names {
		p, err := LookupPass(n)
		if err != nil {
			return nil, err
		}
		pm.Passes = append(pm.Passes, p)
	}
	return pm, nil
}

// Instrument attaches a fresh Stats collector and returns pm.
func (pm *PassManager) Instrument() *PassManager {
	pm.Stats = NewStats()
	return pm
}

// Clone returns a copy of pm with its own Stats collector (when
// instrumented), sharing the stateless pass list. The parallel campaign
// clones the manager per shard so workers never share counters.
func (pm *PassManager) Clone() *PassManager {
	c := *pm
	if pm.Stats != nil {
		c.Stats = NewStats()
	}
	return &c
}

// Run applies the pipeline to every function of m, returning whether
// anything changed.
func (pm *PassManager) Run(m *ir.Module, cfg *Config) bool {
	changed := false
	for _, f := range m.Funcs {
		if pm.RunFunc(f, cfg) {
			changed = true
		}
	}
	return changed
}

// RunFunc applies the pipeline to one function until fixpoint or the
// iteration bound, returning whether anything changed.
func (pm *PassManager) RunFunc(f *ir.Func, cfg *Config) bool {
	return pm.runFixpoint(f, cfg, nil)
}

// RunFuncChanged is RunFunc plus attribution: it also returns the names
// of the passes that reported a change, deduplicated, in first-fire
// order. The campaign uses it to pin refinement failures on passes.
func (pm *PassManager) RunFuncChanged(f *ir.Func, cfg *Config) (bool, []string) {
	var fired []string
	changed := pm.runFixpoint(f, cfg, &fired)
	return changed, fired
}

func (pm *PassManager) runFixpoint(f *ir.Func, cfg *Config, fired *[]string) bool {
	iters := pm.MaxIters
	if iters == 0 {
		iters = 3
	}
	am := analysis.NewManager(f)
	any := false
	converged := false
	rounds := 0
	for i := 0; i < iters; i++ {
		rounds++
		changed := false
		for _, p := range pm.Passes {
			if pm.runStep(p, f, cfg, am) {
				changed = true
				any = true
				if fired != nil && !contains(*fired, p.Name()) {
					*fired = append(*fired, p.Name())
				}
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	if pm.Stats != nil {
		pm.Stats.noteFunc(rounds, converged)
		pm.Stats.addAnalysis(am.Stats())
	}
	return any
}

// RunOnce applies each pass once, pass-major (every function sees pass
// k before any function sees pass k+1), with no fixpoint repetition.
// This is the historical tame-opt behaviour for explicit -passes lists.
func (pm *PassManager) RunOnce(m *ir.Module, cfg *Config) bool {
	ams := make(map[*ir.Func]*AnalysisManager, len(m.Funcs))
	for _, f := range m.Funcs {
		ams[f] = analysis.NewManager(f)
	}
	changed := false
	for _, p := range pm.Passes {
		for _, f := range m.Funcs {
			if pm.runStep(p, f, cfg, ams[f]) {
				changed = true
			}
		}
	}
	if pm.Stats != nil {
		for _, f := range m.Funcs {
			pm.Stats.funcs.Inc()
			pm.Stats.addAnalysis(ams[f].Stats())
		}
	}
	return changed
}

// runStep runs one pass over one function: time it, run it, verify,
// dump if changed, and evict whatever the pass's preserved-set doesn't
// cover from the analysis cache.
func (pm *PassManager) runStep(p Pass, f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	var before int
	var start time.Time
	if pm.Stats != nil {
		before = f.NumInstrs()
		start = time.Now()
	}
	sp := pm.Trace.Start(p.Name())
	changed := p.Run(f, cfg, am)
	sp.End()
	if pm.Stats != nil {
		pm.Stats.record(p.Name(), changed, time.Since(start), before-f.NumInstrs())
	}
	if cfg.VerifyAfterEach && !pm.VerifyEach {
		verifyAfter(p.Name(), f, cfg)
	}
	if changed && pm.PrintChanged != nil {
		fmt.Fprintf(pm.PrintChanged, "; IR Dump After %s on @%s\n%s\n", p.Name(), f.Name(), f)
	}
	// The dynamic preserved-set claim (Manager.PreserveDuringRun) is
	// taken unconditionally — even on the no-change and no-cache paths
	// — so it can never leak into a later pass's invalidation.
	extra := am.TakeRunPreserved()
	if pm.NoAnalysisCache {
		am.InvalidateAll()
	} else if changed {
		am.Invalidate(Preserved(p.Name()) | extra)
	}
	if pm.VerifyEach {
		// After invalidation on purpose: what survives in the cache is
		// exactly what the pass claimed to preserve, so the coherence
		// check tests the preserved-set declaration itself.
		pm.verifyEachStep(p.Name(), f, cfg, am)
	}
	return changed
}

// verifyEachStep is the -verify-each battery for one pass step. It
// panics on the first failure (like VerifyAfterEach) after bumping the
// failure counter, so a metrics snapshot written by a recovering caller
// still records the event.
func (pm *PassManager) verifyEachStep(pass string, f *ir.Func, cfg *Config, am *AnalysisManager) {
	if pm.Stats != nil {
		pm.Stats.verifyChecks.Inc()
	}
	err := ir.Verify(f, cfg.verifyMode())
	if err == nil {
		err = analysis.VerifySSA(f)
	}
	if err == nil {
		err = am.CheckInvariants()
	}
	if err != nil {
		if pm.Stats != nil {
			pm.Stats.verifyFailures.Inc()
		}
		panic(fmt.Sprintf("passes: -verify-each after %s on @%s: %v\n%s", pass, f.Name(), err, f))
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// O2 returns the standard optimization pipeline, approximating the
// paper's "-O2 compiler flag" collection: canonicalize, scalarize
// memory, peephole, CFG cleanup, value numbering, loop optimizations,
// constant propagation, reassociation, and final cleanups. freeze-elim
// runs twice — after the mid-pipeline instcombine (so the loop passes
// see through the freezes migrate/unswitch inserted) and again before
// the dead-code sweeps; under freeze-blind configs both are no-ops.
func O2() *PassManager {
	return mustPassManager(o2Names(true))
}

// O2WithoutFreezeElim is the same pipeline minus the freeze-elim
// cleanups — the ablation baseline for the BENCH_pipeline.json rows
// that measure what deleting provably redundant freezes buys.
func O2WithoutFreezeElim() *PassManager {
	return mustPassManager(o2Names(false))
}

func o2Names(freezeElim bool) []string {
	names := []string{
		"mem2reg", "inline", "instsimplify", "instcombine", "simplifycfg",
		"sccp", "gvn", "reassociate", "instcombine",
	}
	if freezeElim {
		names = append(names, "freeze-elim")
	}
	names = append(names,
		"licm", "loopunswitch", "indvars", "jumpthreading", "simplifycfg",
		"instcombine",
	)
	if freezeElim {
		names = append(names, "freeze-elim")
	}
	return append(names, "adce", "dce", "codegenprepare", "dce")
}

func mustPassManager(names []string) *PassManager {
	pm, err := NewPassManager(names...)
	if err != nil {
		panic(err) // registry is populated by init; a miss is a programming error
	}
	return pm
}
