// Package passes implements the optimizer: the transformation passes
// the paper discusses, each in the variant(s) the paper identifies.
//
// Passes that were historically unsound (Section 3) are implemented
// twice, selected by Config.Unsound:
//
//   - loop unswitching without freezing the hoisted condition (§3.3/§5.1)
//   - LICM hoisting control-flow-guarded divisions (§3.2)
//   - InstCombine's select↔arithmetic and select-undef folds (§3.4)
//   - reassociation keeping nsw on rewritten subexpressions (§10.2)
//
// The fixed variants are sound under the paper's Freeze semantics and
// are validated against the refine package by the tests and by the
// Section 6 experiment (cmd/tame-bench -exp validate).
package passes

import (
	"fmt"

	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// Config parameterizes every pass run.
type Config struct {
	// Sem is the semantics the output must refine the input under.
	// The pipeline presets use core.LegacyOptions for the baseline
	// compiler and core.FreezeOptions for the prototype.
	Sem core.Options

	// Unsound selects the historically buggy variants (see package
	// comment). Only meaningful with legacy semantics; the fixed
	// variants are used otherwise.
	Unsound bool

	// FreezeAware: passes recognize the freeze instruction instead of
	// conservatively giving up. Turning it off reproduces the paper's
	// §7.2 compile-time anecdote (jump threading not kicking in) and
	// run-time regressions.
	FreezeAware bool

	// VerifyAfterEach re-runs the IR verifier after every pass and
	// panics on failure (used by tests and fuzzing).
	VerifyAfterEach bool

	// GVNFoldFreeze enables the §6 future-work extension: GVN merges
	// two freezes of the same value when one dominates the other.
	// Sound because the duplicate's uses are ALL redirected at once —
	// the caveat the paper's GVN expert stated — and because merging
	// freezes only shrinks the nondeterminism (the reverse direction,
	// splitting one freeze into two, is the §5.5 unsound duplication).
	// Off by default, like the paper's prototype.
	GVNFoldFreeze bool
}

// DefaultLegacyConfig is the baseline compiler: legacy semantics,
// historically buggy passes, no freeze.
func DefaultLegacyConfig() *Config {
	return &Config{
		Sem:     core.LegacyOptions(core.BranchPoisonNondet),
		Unsound: true,
	}
}

// DefaultFreezeConfig is the paper's prototype: freeze semantics,
// fixed passes, freeze-aware optimizations.
func DefaultFreezeConfig() *Config {
	return &Config{
		Sem:         core.FreezeOptions(),
		FreezeAware: true,
	}
}

// verifyMode maps the semantics to the matching IR verifier mode.
func (cfg *Config) verifyMode() ir.VerifyMode {
	if cfg.Sem.Mode == core.Freeze {
		return ir.VerifyFreeze
	}
	return ir.VerifyLegacy
}

// Pass transforms one function.
type Pass interface {
	// Name is the pass's short identifier (e.g. "instcombine").
	Name() string
	// Run transforms f, returning whether anything changed.
	Run(f *ir.Func, cfg *Config) bool
}

// RunPass runs a single pass and optionally verifies the result.
func RunPass(p Pass, f *ir.Func, cfg *Config) bool {
	changed := p.Run(f, cfg)
	if cfg.VerifyAfterEach {
		if err := ir.Verify(f, cfg.verifyMode()); err != nil {
			panic(fmt.Sprintf("passes: %s broke @%s: %v\n%s", p.Name(), f.Name(), err, f))
		}
		if err := analysis.VerifySSA(f); err != nil {
			panic(fmt.Sprintf("passes: %s broke SSA dominance in @%s: %v\n%s", p.Name(), f.Name(), err, f))
		}
	}
	return changed
}

// Pipeline is an ordered list of passes with a fixpoint bound.
type Pipeline struct {
	Passes []Pass
	// MaxIters bounds the number of whole-pipeline repetitions (the
	// pipeline repeats while passes report changes). Default 3.
	MaxIters int
}

// Run applies the pipeline to every function of m.
func (pl *Pipeline) Run(m *ir.Module, cfg *Config) {
	for _, f := range m.Funcs {
		pl.RunFunc(f, cfg)
	}
}

// RunFunc applies the pipeline to one function until fixpoint or the
// iteration bound.
func (pl *Pipeline) RunFunc(f *ir.Func, cfg *Config) {
	iters := pl.MaxIters
	if iters == 0 {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		changed := false
		for _, p := range pl.Passes {
			if RunPass(p, f, cfg) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// O2 returns the standard optimization pipeline, approximating the
// paper's "-O2 compiler flag" collection: canonicalize, scalarize
// memory, peephole, CFG cleanup, value numbering, loop optimizations,
// constant propagation, reassociation, and final cleanups.
func O2() *Pipeline {
	return &Pipeline{Passes: []Pass{
		Mem2Reg{},
		Inliner{},
		InstSimplify{},
		InstCombine{},
		SimplifyCFG{},
		SCCP{},
		GVN{},
		Reassociate{},
		InstCombine{},
		LICM{},
		LoopUnswitch{},
		IndVarWiden{},
		JumpThreading{},
		SimplifyCFG{},
		InstCombine{},
		ADCE{},
		DCE{},
		CodeGenPrepare{},
		DCE{},
	}}
}

// PassByName returns the pass with the given name, or nil.
func PassByName(name string) Pass {
	for _, p := range []Pass{
		Mem2Reg{}, InstSimplify{}, InstCombine{}, SimplifyCFG{}, SCCP{},
		GVN{}, Reassociate{}, LICM{}, LoopUnswitch{}, IndVarWiden{},
		JumpThreading{}, DCE{}, ADCE{}, CodeGenPrepare{}, LoopSink{}, Inliner{}, MigrateUndef{},
	} {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
