package passes

import (
	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// Mem2Reg promotes allocas whose address never escapes into SSA
// registers, inserting phi nodes at dominance frontiers. A load that
// can observe the alloca before any store yields the uninitialized
// value: undef under legacy semantics, poison under the Freeze
// semantics — exactly the §5.3 distinction the frontend's bit-field
// lowering has to cope with.
type Mem2Reg struct{}

// Name implements Pass.
func (Mem2Reg) Name() string { return "mem2reg" }

func init() {
	// Phi insertion and load/store removal never touch block structure.
	Register(PassInfo{Name: "mem2reg", New: func() Pass { return Mem2Reg{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (Mem2Reg) Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	var allocas []*ir.Instr
	for _, in := range f.Entry().Instrs() {
		if in.Op == ir.OpAlloca && promotable(in) {
			allocas = append(allocas, in)
		}
	}
	if len(allocas) == 0 {
		return false
	}
	dt := am.DomTree()
	df := dominanceFrontiers(f, dt, am.Preds())
	for _, a := range allocas {
		promote(f, a, dt, df, cfg)
	}
	return true
}

// promotable reports whether the alloca is a single scalar slot whose
// only uses are whole-slot loads and stores.
func promotable(a *ir.Instr) bool {
	cnt, ok := a.Arg(0).(*ir.Const)
	if !ok || cnt.Bits != 1 {
		return false
	}
	ty := a.AllocTy
	if !ty.IsInt() && !ty.IsPtr() {
		return false
	}
	for _, u := range a.Users() {
		switch u.Op {
		case ir.OpLoad:
			if !u.Ty.Equal(ty) {
				return false
			}
		case ir.OpStore:
			// The alloca must be the address, not the stored value,
			// and the stored type must match.
			if u.Arg(1) != ir.Value(a) || u.Arg(0) == ir.Value(a) || !u.Arg(0).Type().Equal(ty) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// dominanceFrontiers computes DF(b) for every reachable block
// (Cytron et al.'s algorithm over the dominator tree).
func dominanceFrontiers(f *ir.Func, dt *analysis.DomTree, preds map[*ir.Block][]*ir.Block) map[*ir.Block][]*ir.Block {
	df := map[*ir.Block][]*ir.Block{}
	for _, b := range f.Blocks {
		ps := preds[b]
		if len(ps) < 2 {
			continue
		}
		for _, p := range ps {
			runner := p
			for runner != nil && runner != dt.IDom(b) {
				df[runner] = append(df[runner], b)
				runner = dt.IDom(runner)
			}
		}
	}
	return df
}

func uninitValue(ty ir.Type, cfg *Config) ir.Value {
	if cfg.Sem.Mode == core.Freeze {
		return ir.NewPoison(ty)
	}
	return ir.NewUndef(ty)
}

func promote(f *ir.Func, a *ir.Instr, dt *analysis.DomTree, df map[*ir.Block][]*ir.Block, cfg *Config) {
	ty := a.AllocTy

	// Blocks containing stores.
	storeBlocks := map[*ir.Block]bool{}
	for _, u := range a.Users() {
		if u.Op == ir.OpStore {
			storeBlocks[u.Parent()] = true
		}
	}

	// Iterated dominance frontier: phi placement.
	phiAt := map[*ir.Block]*ir.Instr{}
	work := make([]*ir.Block, 0, len(storeBlocks))
	for b := range storeBlocks {
		work = append(work, b)
	}
	inWork := map[*ir.Block]bool{}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, d := range df[b] {
			if phiAt[d] != nil {
				continue
			}
			ph := ir.NewInstr(ir.OpPhi, ty)
			ph.Nam = f.GenName("m2r")
			if first := d.Instrs()[0]; first != nil {
				d.InsertBefore(ph, first)
			}
			phiAt[d] = ph
			if !inWork[d] {
				inWork[d] = true
				work = append(work, d)
			}
		}
	}

	// Rename: DFS over the dominator tree carrying the current value.
	type task struct {
		b   *ir.Block
		val ir.Value
	}
	stack := []task{{f.Entry(), uninitValue(ty, cfg)}}
	visited := map[*ir.Block]bool{}
	// Defer phi operand wiring until values for all preds are known:
	// record the out-value per block.
	outVal := map[*ir.Block]ir.Value{}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[t.b] {
			continue
		}
		visited[t.b] = true
		cur := t.val
		if ph := phiAt[t.b]; ph != nil {
			cur = ph
		}
		for _, in := range append([]*ir.Instr(nil), t.b.Instrs()...) {
			switch {
			case in.Op == ir.OpLoad && in.Arg(0) == ir.Value(a):
				replaceAndErase(in, cur)
			case in.Op == ir.OpStore && in.NumArgs() == 2 && in.Arg(1) == ir.Value(a):
				cur = in.Arg(0)
				in.Parent().Remove(in)
				dropOperands(in)
			}
		}
		outVal[t.b] = cur
		for _, kid := range dt.Children(t.b) {
			stack = append(stack, task{kid, cur})
		}
	}
	// Wire phi incomings from each predecessor's out-value.
	for b, ph := range phiAt {
		for _, p := range f.Preds(b) {
			v := outVal[p]
			if v == nil {
				v = uninitValue(ty, cfg) // unreachable pred
			}
			ph.AddPhiIncoming(v, p)
		}
	}
	// Unused phis (no loads below them) die in DCE; the alloca itself
	// is now unused.
	f.Entry().Erase(a)
}
