package passes

import (
	"tameir/internal/analysis"
	"tameir/internal/ir"
)

// IndVarWiden implements the §2.4 flagship optimization: eliminating
// the sign-extension of a narrow induction variable by maintaining a
// parallel wide induction variable.
//
//	head:  %i = phi i32 [ C, %ph ], [ %i1, %latch ]
//	body:  %iext = sext %i to i64          ; eliminated
//	       %i1   = add nsw %i, step
//
// The transformation is justified exactly by nsw-overflow-is-poison:
// if the narrow increment overflowed, %i is poison, sext(%i) is
// poison, and the concrete wide value refines it. With wrapping (no
// nsw) or undef-on-overflow semantics the rewrite would be wrong
// (§2.4 walks through why), so the pass requires the nsw attribute.
type IndVarWiden struct{}

// Name implements Pass.
func (IndVarWiden) Name() string { return "indvars" }

func init() {
	// Widening rewrites the IV arithmetic in place; blocks and edges
	// are untouched.
	Register(PassInfo{Name: "indvars", New: func() Pass { return IndVarWiden{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (IndVarWiden) Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	li := am.LoopInfo()
	changed := false
	for _, l := range li.Loops {
		ph := l.Preheader(f)
		if ph == nil {
			continue
		}
		for _, iv := range analysis.FindInductionVars(f, l) {
			if !iv.NSW {
				continue
			}
			if widenIV(f, l, ph, iv) {
				changed = true
			}
		}
	}
	return changed
}

func widenIV(f *ir.Func, l *analysis.Loop, ph *ir.Block, iv analysis.InductionVar) bool {
	// Collect in-loop sexts of the IV phi, all to the same wide type.
	var sexts []*ir.Instr
	var wideTy ir.Type
	for _, u := range iv.Phi.Users() {
		if u.Op == ir.OpSExt && l.ContainsInstr(u) {
			if len(sexts) == 0 {
				wideTy = u.Ty
			} else if !u.Ty.Equal(wideTy) {
				return false
			}
			sexts = append(sexts, u)
		}
	}
	if len(sexts) == 0 {
		return false
	}

	// Wide start value in the preheader.
	var wideStart ir.Value
	if c, ok := iv.Start.(*ir.Const); ok {
		wideStart = ir.ConstInt(wideTy, uint64(c.SInt()))
	} else {
		se := ir.NewInstr(ir.OpSExt, wideTy, iv.Start)
		se.Nam = f.GenName("widen.start")
		ph.InsertBefore(se, ph.Terminator())
		wideStart = se
	}

	// Wide phi in the header and wide increment next to the narrow one.
	wphi := ir.NewInstr(ir.OpPhi, wideTy)
	wphi.Nam = f.GenName("widen.iv")
	l.Header.InsertBefore(wphi, l.Header.Instrs()[0])

	winc := ir.NewInstr(ir.OpAdd, wideTy, wphi, ir.ConstInt(wideTy, uint64(iv.Step.SInt())))
	winc.Attrs = ir.NSW
	winc.Nam = f.GenName("widen.inc")
	iv.Next.Parent().InsertBefore(winc, iv.Next)

	// Incomings mirror the narrow phi's block structure.
	for i := 0; i < iv.Phi.NumBlocks(); i++ {
		pred := iv.Phi.BlockArg(i)
		if iv.Phi.Arg(i) == ir.Value(iv.Next) {
			wphi.AddPhiIncoming(winc, pred)
		} else {
			wphi.AddPhiIncoming(wideStart, pred)
		}
	}

	// Replace the sexts: sext(%i) is exactly the wide IV whenever %i
	// is not poison, and refined by it when it is.
	for _, se := range sexts {
		replaceAndErase(se, wphi)
	}
	return true
}
