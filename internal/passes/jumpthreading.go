package passes

import (
	"tameir/internal/ir"
)

// JumpThreading forwards a predecessor directly to a branch target
// when the branch condition is known along that predecessor's edge:
//
//	b:  %c = phi i1 [ true, %p ], [ %x, %q ]
//	    br %c, %t, %e
//
// threads p straight to t. With Config.FreezeAware the pass also looks
// through a freeze of the phi (freeze(true) is true); without it, a
// freeze blocks threading — reproducing the paper's §7.2 compile-time
// anecdote where "an optimization (jump threading) did not kick in
// because of not knowing about freeze".
type JumpThreading struct{}

// Name implements Pass.
func (JumpThreading) Name() string { return "jumpthreading" }

func init() {
	// Rewires branch edges by design.
	Register(PassInfo{Name: "jumpthreading", New: func() Pass { return JumpThreading{} }, Preserves: PreservesNone})
}

// Run implements Pass.
func (JumpThreading) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := false
	for {
		local := false
		for _, b := range f.Blocks {
			if threadBlock(f, b, cfg) {
				local = true
				break // CFG changed; rescan
			}
		}
		if !local {
			break
		}
		changed = true
	}
	return changed
}

func threadBlock(f *ir.Func, b *ir.Block, cfg *Config) bool {
	t := b.Terminator()
	if t == nil || !t.IsConditionalBr() || b == f.Entry() {
		return false
	}
	cond := t.Arg(0)
	// Look through freeze if the pass knows about it: a frozen
	// constant is that constant, so per-edge constants still thread.
	if fz, ok := cond.(*ir.Instr); ok && fz.Op == ir.OpFreeze {
		if !cfg.FreezeAware {
			return false
		}
		cond = fz.Arg(0)
	}
	phi, ok := cond.(*ir.Instr)
	if !ok || phi.Op != ir.OpPhi || phi.Parent() != b {
		return false
	}
	// The block must contain only phis and the branch (plus possibly
	// the freeze): otherwise duplication would be needed.
	for _, in := range b.Instrs() {
		if in.Op == ir.OpPhi || in == t {
			continue
		}
		if in.Op == ir.OpFreeze && ir.Value(in) == t.Arg(0) {
			continue
		}
		return false
	}
	// Find a predecessor with a constant incoming.
	for i := 0; i < phi.NumArgs(); i++ {
		c, isConst := phi.Arg(i).(*ir.Const)
		if !isConst {
			continue
		}
		pred := phi.BlockArg(i)
		target := t.BlockArg(0)
		if c.Bits == 0 {
			target = t.BlockArg(1)
		}
		if target == b || pred == b {
			continue
		}
		// Retarget pred's edge from b to target. Safe only when
		// target's phis can absorb the new edge: b must currently be a
		// predecessor of target, and pred must not already be one.
		predIsTargetPred := false
		for _, p := range f.Preds(target) {
			if p == pred {
				predIsTargetPred = true
			}
		}
		if predIsTargetPred {
			continue
		}
		// Other phis in b flow into target's phis? Only handle the
		// case where target has phis referencing b's phis or values:
		// copy the per-edge value.
		ok := true
		for _, tph := range target.Phis() {
			v, found := tph.PhiIncoming(b)
			if !found {
				ok = false
				break
			}
			// If the incoming value is a phi of b, use its value on
			// pred's edge; otherwise it must dominate pred's edge —
			// conservatively require a constant, parameter, or a phi
			// of b.
			switch vv := v.(type) {
			case *ir.Instr:
				if vv.Op == ir.OpPhi && vv.Parent() == b {
					continue
				}
				ok = false
			default:
				// constant leaves and params are fine
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		for _, tph := range target.Phis() {
			v, _ := tph.PhiIncoming(b)
			if vv, isI := v.(*ir.Instr); isI && vv.Op == ir.OpPhi && vv.Parent() == b {
				pv, _ := vv.PhiIncoming(pred)
				tph.AddPhiIncoming(pv, pred)
			} else {
				tph.AddPhiIncoming(v, pred)
			}
		}
		// Point pred's terminator at target and remove pred's
		// incoming from b's phis.
		pt := pred.Terminator()
		for j := 0; j < pt.NumBlocks(); j++ {
			if pt.BlockArg(j) == b {
				pt.SetBlockArg(j, target)
			}
		}
		for _, ph := range b.Phis() {
			ph.RemovePhiIncoming(pred)
		}
		// b may have become unreachable or its phis single-incoming;
		// later cleanup passes handle that. Single-incoming phis are
		// folded here to keep the verifier happy.
		for _, ph := range append([]*ir.Instr(nil), b.Phis()...) {
			if ph.NumArgs() == 1 {
				replaceAndErase(ph, ph.Arg(0))
			}
		}
		removeUnreachableBlocks(f)
		return true
	}
	return false
}
