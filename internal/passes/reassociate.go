package passes

import (
	"tameir/internal/ir"
)

// Reassociate rewrites chains of adds into a canonical form with
// constants combined:  (x + C1) + (y + C2)  →  (x + y) + (C1+C2).
//
// Section 10.2: reassociation changes how and whether subexpressions
// overflow, so it must drop nsw/nuw from the rebuilt expressions. The
// fixed variant does; Config.Unsound keeps the attributes on the
// rebuilt adds — the historical LLVM/MSVC bug, where a later
// optimization trusted the stale attribute.
type Reassociate struct{}

// Name implements Pass.
func (Reassociate) Name() string { return "reassociate" }

func init() {
	// Rewrites arithmetic trees in place; no block changes.
	Register(PassInfo{Name: "reassociate", New: func() Pass { return Reassociate{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (Reassociate) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
			if in.Parent() == nil || in.Op != ir.OpAdd {
				continue
			}
			// Only rewrite roots: adds not solely feeding another add
			// we would also rewrite.
			if isAddTreeInternal(in) {
				continue
			}
			if reassociateAddTree(f, in, cfg) {
				changed = true
			}
		}
	}
	return changed
}

func isAddTreeInternal(in *ir.Instr) bool {
	if in.NumUses() != 1 {
		return false
	}
	for _, u := range in.Users() {
		if u.Op == ir.OpAdd && u.Parent() == in.Parent() {
			return true
		}
	}
	return false
}

// collectAddTerms flattens the single-use add tree rooted at in into
// leaf terms and a constant accumulator. attrsSeen accumulates the
// attributes found on the chain.
func collectAddTerms(in *ir.Instr, terms *[]ir.Value, constSum *uint64, attrsSeen *ir.Attrs, internals *[]*ir.Instr) {
	*attrsSeen |= in.Attrs
	for _, a := range in.Args() {
		if sub, ok := a.(*ir.Instr); ok && sub.Op == ir.OpAdd && sub.NumUses() == 1 && sub.Parent() == in.Parent() {
			*internals = append(*internals, sub)
			collectAddTerms(sub, terms, constSum, attrsSeen, internals)
			continue
		}
		if c, ok := a.(*ir.Const); ok {
			*constSum += c.Bits
			continue
		}
		*terms = append(*terms, a)
	}
}

func reassociateAddTree(f *ir.Func, root *ir.Instr, cfg *Config) bool {
	var terms []ir.Value
	var constSum uint64
	var attrs ir.Attrs
	var internals []*ir.Instr
	collectAddTerms(root, &terms, &constSum, &attrs, &internals)
	if len(internals) == 0 {
		// Nothing to flatten: at most fold "x + C" ordering, which
		// canonicalizeCommutative already does.
		return false
	}

	newAttrs := ir.Attrs(0)
	if cfg.Unsound {
		// Historical bug: keep overflow attributes on the rewritten
		// subexpressions even though association changed.
		newAttrs = attrs
	}

	// Rebuild: ((t0 + t1) + t2 ...) + constSum.
	b := root.Parent()
	var acc ir.Value
	w := root.Ty.Bits
	if len(terms) == 0 {
		acc = ir.ConstInt(root.Ty, constSum)
	} else {
		acc = terms[0]
		for _, t := range terms[1:] {
			add := ir.NewInstr(ir.OpAdd, root.Ty, acc, t)
			add.Attrs = newAttrs
			add.Nam = f.GenName("reass")
			b.InsertBefore(add, root)
			acc = add
		}
		if ir.TruncBits(constSum, w) != 0 {
			add := ir.NewInstr(ir.OpAdd, root.Ty, acc, ir.ConstInt(root.Ty, constSum))
			add.Attrs = newAttrs
			add.Nam = f.GenName("reass")
			b.InsertBefore(add, root)
			acc = add
		}
	}
	root.ReplaceAllUsesWith(acc)
	b.Erase(root)
	// The internal nodes are now dead (they had a single use each).
	for _, in := range internals {
		if in.Parent() != nil && in.NumUses() == 0 {
			in.Parent().Erase(in)
		}
	}
	return true
}
