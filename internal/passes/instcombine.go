package passes

import (
	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// InstCombine is the peephole combiner. It hosts the §3.4 rules in both
// their historical (Config.Unsound) and fixed forms:
//
//	select %c, true, %x   →  or %c, %x            (historical, unsound)
//	select %c, true, %x   →  or %c, freeze(%x)    (fixed, Freeze mode)
//	select %c, %x, false  →  and %c, %x           (historical, unsound)
//	select %c, %x, undef  →  %x                   (historical, PR31633)
//
// plus the §6 freeze clean-ups (freeze of a provably non-poison value
// folds away) and standard strength reductions. The "mul→add" rewrite
// of §3.1, illegal under legacy undef, becomes legal under the Freeze
// semantics and is performed there.
type InstCombine struct{}

// Name implements Pass.
func (InstCombine) Name() string { return "instcombine" }

func init() {
	// Peepholes insert/replace instructions within blocks only.
	Register(PassInfo{Name: "instcombine", New: func() Pass { return InstCombine{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (InstCombine) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := false
	for iter := 0; iter < 8; iter++ {
		local := false
		for _, b := range f.Blocks {
			for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
				if in.Parent() == nil {
					continue
				}
				if combineInstr(f, in, cfg) {
					local = true
				}
			}
		}
		if !local {
			break
		}
		changed = true
	}
	return changed
}

func combineInstr(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	if v, ok := simplifyInstr(in, cfg); ok {
		if v != ir.Value(in) {
			replaceAndErase(in, v)
			return true
		}
	}
	if canonicalizeCommutative(in) {
		return true
	}
	switch in.Op {
	case ir.OpMul:
		return combineMul(f, in, cfg)
	case ir.OpUDiv:
		return combineUDiv(f, in, cfg)
	case ir.OpSub:
		return combineSub(f, in, cfg)
	case ir.OpSelect:
		return combineSelect(f, in, cfg)
	case ir.OpFreeze:
		return combineFreeze(f, in, cfg)
	case ir.OpICmp:
		return combineICmp(f, in, cfg)
	case ir.OpXor:
		return combineXor(f, in, cfg)
	}
	return false
}

// replaceWithNew swaps in for a freshly built instruction placed at the
// same position.
func replaceWithNew(in *ir.Instr, repl *ir.Instr) {
	repl.Nam = in.Nam
	b := in.Parent()
	b.InsertBefore(repl, in)
	in.ReplaceAllUsesWith(repl)
	b.Erase(in)
}

func combineMul(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	c, ok := constOperand(in.Arg(1))
	if !ok {
		return false
	}
	x := in.Arg(0)
	// §3.1: 2*x → x+x. Illegal when x may be undef (the result set
	// grows from evens to everything); the Freeze semantics removed
	// undef, making it legal. The unsound legacy combiner did it
	// anyway.
	if c.Bits == 2 && (cfg.Sem.Mode == core.Freeze || cfg.Unsound) {
		add := ir.NewInstr(ir.OpAdd, in.Ty, x, x)
		replaceWithNew(in, add)
		return true
	}
	// mul x, 2^k → shl x, k: exact for every input including undef
	// (both yield the same set), so legal under both semantics.
	if c.Bits != 0 && c.Bits&(c.Bits-1) == 0 && c.Bits != 2 {
		k := uint64(0)
		for v := c.Bits; v > 1; v >>= 1 {
			k++
		}
		shl := ir.NewInstr(ir.OpShl, in.Ty, x, ir.ConstInt(in.Ty, k))
		// nuw/nsw transfer would need care; drop attributes (sound).
		replaceWithNew(in, shl)
		return true
	}
	return false
}

func combineUDiv(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	c, ok := constOperand(in.Arg(1))
	if !ok || c.IsZero() {
		return false
	}
	x := in.Arg(0)
	w := in.Ty.Bits
	// udiv x, 2^k → lshr x, k (exact same results, poison included).
	if c.Bits&(c.Bits-1) == 0 && c.Bits > 1 {
		k := uint64(0)
		for v := c.Bits; v > 1; v >>= 1 {
			k++
		}
		shr := ir.NewInstr(ir.OpLShr, in.Ty, x, ir.ConstInt(in.Ty, k))
		replaceWithNew(in, shr)
		return true
	}
	// §3.4: udiv %a, C → select(ult %a C, 0, 1) for "negative" C (sign
	// bit set), since then a/C ∈ {0,1}. Requires select-on-poison to
	// not be UB — true under Figure 5, historically contested.
	if c.Bits>>(w-1) != 0 && c.Bits&(c.Bits-1) != 0 {
		if cfg.Sem.SelectPoisonCond == core.SelectPoisonCondUB && !cfg.Unsound &&
			// Poison %a makes the source merely poison but the target
			// UB (icmp of poison is poison, select on poison cond
			// traps) — not a refinement. When %a is provably never
			// poison the contested case is unreachable and the rewrite
			// is sound even under select-cond-UB.
			!analysis.IsGuaranteedNotToBePoison(x) {
			return false // would introduce UB on poison %a
		}
		cmp := ir.NewInstr(ir.OpICmp, ir.I1, x, c)
		cmp.Pred = ir.PredULT
		cmp.Nam = f.GenName("cmp")
		in.Parent().InsertBefore(cmp, in)
		sel := ir.NewInstr(ir.OpSelect, in.Ty, cmp, ir.ConstInt(in.Ty, 0), ir.ConstInt(in.Ty, 1))
		replaceWithNew(in, sel)
		return true
	}
	return false
}

func combineSub(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	// sub x, C → add x, -C (canonicalization; attributes dropped).
	if c, ok := constOperand(in.Arg(1)); ok && !in.Ty.Equal(ir.I1) {
		add := ir.NewInstr(ir.OpAdd, in.Ty, in.Arg(0), ir.ConstInt(in.Ty, -c.Bits))
		replaceWithNew(in, add)
		return true
	}
	return false
}

func combineXor(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	// xor (xor x, C1), C2 → xor x, C1^C2.
	c2, ok := constOperand(in.Arg(1))
	if !ok {
		return false
	}
	inner, ok := in.Arg(0).(*ir.Instr)
	if !ok || inner.Op != ir.OpXor {
		return false
	}
	c1, ok := constOperand(inner.Arg(1))
	if !ok {
		return false
	}
	nx := ir.NewInstr(ir.OpXor, in.Ty, inner.Arg(0), ir.ConstInt(in.Ty, c1.Bits^c2.Bits))
	replaceWithNew(in, nx)
	return true
}

func combineSelect(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	cond, tv, fv := in.Arg(0), in.Arg(1), in.Arg(2)
	if !in.Ty.Equal(ir.I1) {
		return combineSelectUndefArm(f, in, cfg)
	}
	isTrue := func(v ir.Value) bool { c, ok := constOperand(v); return ok && c.Bits == 1 }
	isFalse := func(v ir.Value) bool { c, ok := constOperand(v); return ok && c.Bits == 0 }

	switch {
	case isTrue(tv) && isFalse(fv):
		// select c, true, false → c (exact under the Figure 5 select).
		replaceAndErase(in, cond)
		return true
	case isFalse(tv) && isTrue(fv):
		// select c, false, true → xor c, true.
		nx := ir.NewInstr(ir.OpXor, ir.I1, cond, ir.ConstBool(true))
		replaceWithNew(in, nx)
		return true
	case isTrue(tv):
		// select c, true, x.
		if cfg.Unsound {
			// Historical: or c, x — poison in the untaken arm leaks.
			or := ir.NewInstr(ir.OpOr, ir.I1, cond, fv)
			replaceWithNew(in, or)
			return true
		}
		if cfg.Sem.Mode == core.Freeze && cfg.FreezeAware {
			// Fixed: freeze the arm so its poison cannot override the
			// short-circuit. (The paper sketches freezing an operand;
			// freezing the arm is the variant our refinement checker
			// validates — see TestSelectToOrInvalid.)
			fz := ir.NewInstr(ir.OpFreeze, ir.I1, fv)
			fz.Nam = f.GenName("frz")
			in.Parent().InsertBefore(fz, in)
			or := ir.NewInstr(ir.OpOr, ir.I1, cond, fz)
			replaceWithNew(in, or)
			return true
		}
	case isFalse(fv):
		// select c, x, false.
		if cfg.Unsound {
			and := ir.NewInstr(ir.OpAnd, ir.I1, cond, tv)
			replaceWithNew(in, and)
			return true
		}
		if cfg.Sem.Mode == core.Freeze && cfg.FreezeAware {
			fz := ir.NewInstr(ir.OpFreeze, ir.I1, tv)
			fz.Nam = f.GenName("frz")
			in.Parent().InsertBefore(fz, in)
			and := ir.NewInstr(ir.OpAnd, ir.I1, cond, fz)
			replaceWithNew(in, and)
			return true
		}
	}
	return combineSelectUndefArm(f, in, cfg)
}

// combineSelectUndefArm is the PR31633 rule: select %c, %x, undef → %x.
// Wrong because %x could be poison, which is stronger than undef; only
// the unsound legacy combiner performs it.
func combineSelectUndefArm(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	if !cfg.Unsound {
		return false
	}
	if _, isU := in.Arg(2).(*ir.Undef); isU {
		replaceAndErase(in, in.Arg(1))
		return true
	}
	if _, isU := in.Arg(1).(*ir.Undef); isU {
		replaceAndErase(in, in.Arg(2))
		return true
	}
	return false
}

func combineFreeze(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	if !cfg.FreezeAware {
		return false
	}
	// §6: freeze of a value that can never be poison is the identity.
	if analysis.IsGuaranteedNotToBePoison(in.Arg(0)) {
		replaceAndErase(in, in.Arg(0))
		return true
	}
	return false
}

func combineICmp(f *ir.Func, in *ir.Instr, cfg *Config) bool {
	// Canonicalize constant to the RHS.
	if ir.IsConstLeaf(in.Arg(0)) && !ir.IsConstLeaf(in.Arg(1)) {
		a0, a1 := in.Arg(0), in.Arg(1)
		in.SetArg(0, a1)
		in.SetArg(1, a0)
		in.Pred = in.Pred.Swapped()
		return true
	}
	// icmp ne (zext i1 %c), 0 → %c; icmp eq → xor %c, true. Exact:
	// poison zext is poison, and the comparison of poison is poison.
	if c, ok := constOperand(in.Arg(1)); ok && c.IsZero() && (in.Pred == ir.PredEQ || in.Pred == ir.PredNE) {
		if zx, ok := in.Arg(0).(*ir.Instr); ok && zx.Op == ir.OpZExt && zx.Arg(0).Type().Equal(ir.I1) {
			inner := zx.Arg(0)
			if in.Pred == ir.PredNE {
				replaceAndErase(in, inner)
			} else {
				nx := ir.NewInstr(ir.OpXor, ir.I1, inner, ir.ConstBool(true))
				replaceWithNew(in, nx)
			}
			if zx.NumUses() == 0 && zx.Parent() != nil {
				zx.Parent().Erase(zx)
			}
			return true
		}
	}
	// icmp eq (xor x, C), 0 → icmp eq x, C.
	if c, ok := constOperand(in.Arg(1)); ok && c.IsZero() && (in.Pred == ir.PredEQ || in.Pred == ir.PredNE) {
		if x, ok := in.Arg(0).(*ir.Instr); ok && x.Op == ir.OpXor {
			if xc, ok := constOperand(x.Arg(1)); ok {
				ni := ir.NewInstr(ir.OpICmp, ir.I1, x.Arg(0), xc)
				ni.Pred = in.Pred
				replaceWithNew(in, ni)
				return true
			}
		}
	}
	return false
}
