package passes

import "tameir/internal/ir"

// ADCE is aggressive dead-code elimination: instead of deleting
// trivially unused instructions bottom-up (DCE), it marks the live set
// top-down from the roots — side-effecting instructions and
// terminators — and deletes everything unmarked. This removes
// self-sustaining dead phi cycles that DCE cannot (a phi used only by
// the instructions that feed it back).
//
// Control flow is never removed: deleting a dead-but-infinite loop
// would change termination behaviour, which our semantics (which has
// no forward-progress assumption) does not allow.
type ADCE struct{}

// Name implements Pass.
func (ADCE) Name() string { return "adce" }

func init() {
	// Control flow is never removed (see the pass comment), so every
	// block-level analysis survives.
	Register(PassInfo{Name: "adce", New: func() Pass { return ADCE{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (ADCE) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	live := map[*ir.Instr]bool{}
	var work []*ir.Instr
	mark := func(in *ir.Instr) {
		if !live[in] {
			live[in] = true
			work = append(work, in)
		}
	}
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op.HasSideEffects() || in.Op.IsTerminator() {
			mark(in)
		}
	})
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range in.Args() {
			if def, ok := a.(*ir.Instr); ok {
				mark(def)
			}
		}
	}

	changed := false
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
			if in.Parent() == nil || live[in] {
				continue
			}
			// Dead instructions may form cycles (phis); break the
			// def-use edges first, then erase.
			in.ReplaceAllUsesWith(ir.NewPoison(in.Ty))
			b.Erase(in)
			changed = true
		}
	}
	return changed
}
