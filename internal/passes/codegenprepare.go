package passes

import (
	"tameir/internal/ir"
)

// CodeGenPrepare is the late pre-lowering pass described in §6: it
// reshapes IR for instruction selection. Two freeze-related rewrites
// from the paper are implemented:
//
//   - "freeze(icmp %x, const)" → "icmp (freeze %x), const" when the
//     comparison has a single use, so the backend can sink the compare
//     next to its branch. (The paper notes this must run late: the
//     transformed expression is a refinement of the original and would
//     confuse mid-level analyses like scalar evolution.)
//   - compares used only by a conditional branch in another block are
//     sunk next to the branch (duplicating a compare is cheaper than
//     keeping its flag result live on x86-likes).
type CodeGenPrepare struct{}

// Name implements Pass.
func (CodeGenPrepare) Name() string { return "codegenprepare" }

func init() {
	// Splits blocks for selects lowered to control flow.
	Register(PassInfo{Name: "codegenprepare", New: func() Pass { return CodeGenPrepare{} }, Preserves: PreservesNone})
}

// Run implements Pass.
func (CodeGenPrepare) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := false
	if cfg.FreezeAware {
		for _, b := range f.Blocks {
			for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
				if in.Parent() == nil || in.Op != ir.OpFreeze {
					continue
				}
				cmp, ok := in.Arg(0).(*ir.Instr)
				if !ok || cmp.Op != ir.OpICmp || cmp.NumUses() != 1 {
					continue
				}
				if _, rhsConst := cmp.Arg(1).(*ir.Const); !rhsConst {
					continue
				}
				if !cmp.Arg(0).Type().IsInt() {
					continue
				}
				// Build icmp(freeze x, C) in place of the freeze.
				fz := ir.NewInstr(ir.OpFreeze, cmp.Arg(0).Type(), cmp.Arg(0))
				fz.Nam = f.GenName("cgp.frz")
				in.Parent().InsertBefore(fz, in)
				ni := ir.NewInstr(ir.OpICmp, ir.I1, fz, cmp.Arg(1))
				ni.Pred = cmp.Pred
				replaceWithNew(in, ni)
				if cmp.NumUses() == 0 && cmp.Parent() != nil {
					cmp.Parent().Erase(cmp)
				}
				changed = true
			}
		}
	}
	// Sink single-use compares next to their branch.
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || !t.IsConditionalBr() {
			continue
		}
		cmp, ok := t.Arg(0).(*ir.Instr)
		if !ok || cmp.Op != ir.OpICmp || cmp.NumUses() != 1 || cmp.Parent() == b {
			continue
		}
		// A freeze feeding the compare pins it: freezes must not be
		// sunk into different control flow... a compare is fine to
		// duplicate, but if its operand is a freeze defined alongside,
		// moving the compare is still fine (the freeze stays). Just
		// move the compare.
		cmp.Parent().Remove(cmp)
		b.InsertBefore(cmp, t)
		changed = true
	}
	// Branch-on-and/or splitting: "on x86 it is usually preferable to
	// lower a branch on an and/or operation into a pair of jumps"
	// (§6). A frozen and/or blocks the split unless the pass knows to
	// push the freeze onto the operands first (also §6: "we modified
	// CodeGenPrepare... to support freeze").
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		if splitBranchOnAndOr(f, b, cfg) {
			changed = true
		}
	}
	return changed
}

// splitBranchOnAndOr rewrites
//
//	br (and %a, %b), %T, %F   →   br %a, %check, %F
//	                              check: br %b, %T, %F
//
// (dually for or). Exact under the Figure 5 semantics: the original
// branch is UB iff the and/or is poison, which happens iff a poison
// operand is actually consulted by the split chain. When the condition
// is freeze(and/or ...) with a single use, the freeze is first pushed
// onto the operands — a refinement (independent per-operand freezes
// only shrink the post-and nondeterminism), and exactly the freeze
// support §6 describes.
func splitBranchOnAndOr(f *ir.Func, b *ir.Block, cfg *Config) bool {
	t := b.Terminator()
	if t == nil || !t.IsConditionalBr() {
		return false
	}
	cond, ok := t.Arg(0).(*ir.Instr)
	if !ok {
		return false
	}
	// Look through (and push down) a single-use freeze.
	if cond.Op == ir.OpFreeze {
		if !cfg.FreezeAware {
			return false // blocked, like the early prototype (§6)
		}
		inner, isInstr := cond.Arg(0).(*ir.Instr)
		if !isInstr || (inner.Op != ir.OpAnd && inner.Op != ir.OpOr) ||
			!inner.Ty.Equal(ir.I1) || cond.NumUses() != 1 || inner.NumUses() != 1 {
			return false
		}
		fa := ir.NewInstr(ir.OpFreeze, ir.I1, inner.Arg(0))
		fa.Nam = f.GenName("cgp.frz")
		fb := ir.NewInstr(ir.OpFreeze, ir.I1, inner.Arg(1))
		fb.Nam = f.GenName("cgp.frz")
		b.InsertBefore(fa, t)
		b.InsertBefore(fb, t)
		nop := ir.NewInstr(inner.Op, ir.I1, fa, fb)
		replaceWithNew(cond, nop)
		if inner.NumUses() == 0 && inner.Parent() != nil {
			inner.Parent().Erase(inner)
		}
		cond = nop
	}
	if (cond.Op != ir.OpAnd && cond.Op != ir.OpOr) || !cond.Ty.Equal(ir.I1) || cond.NumUses() != 1 {
		return false
	}
	if cond.Parent() != b {
		return false
	}
	a, c := cond.Arg(0), cond.Arg(1)
	tTrue, tFalse := t.BlockArg(0), t.BlockArg(1)
	if tTrue == tFalse || tTrue == b || tFalse == b {
		return false
	}
	check := f.NewBlock(b.Name() + ".cc")
	cbd := ir.NewBuilder(check)
	cbd.CondBr(c, tTrue, tFalse)
	// Rewrite the original branch.
	nbr := ir.NewInstr(ir.OpBr, ir.Void, a)
	if cond.Op == ir.OpAnd {
		nbr.AddBlockArg(check)
		nbr.AddBlockArg(tFalse)
	} else {
		nbr.AddBlockArg(tTrue)
		nbr.AddBlockArg(check)
	}
	b.InsertBefore(nbr, t)
	b.Remove(t)
	dropOperands(t)
	if cond.NumUses() == 0 && cond.Parent() != nil {
		cond.Parent().Erase(cond)
	}
	// Successor phis: the edge from b may now come from check instead
	// (and, for the still-direct edge, stays from b). Add the check
	// incoming with the same value as b's.
	for _, s := range []*ir.Block{tTrue, tFalse} {
		for _, ph := range s.Phis() {
			v, found := ph.PhiIncoming(b)
			if !found {
				continue
			}
			// Is s still a successor of b?
			still := false
			for _, bs := range b.Succs() {
				if bs == s {
					still = true
				}
			}
			fromCheck := false
			for _, cs := range check.Succs() {
				if cs == s {
					fromCheck = true
				}
			}
			if fromCheck {
				ph.AddPhiIncoming(v, check)
			}
			if !still {
				ph.RemovePhiIncoming(b)
			}
		}
	}
	return true
}
