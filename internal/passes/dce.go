package passes

import "tameir/internal/ir"

// DCE removes trivially dead instructions (unused, side-effect-free)
// and unreachable blocks. Deleting an instruction that might produce
// poison — or even one whose execution might be UB, like an unused
// division — is a refinement, so DCE is sound under every semantics.
type DCE struct{}

// Name implements Pass.
func (DCE) Name() string { return "dce" }

func init() {
	// Deletes unreachable blocks, so the CFG can change.
	Register(PassInfo{Name: "dce", New: func() Pass { return DCE{} }, Preserves: PreservesNone})
}

// Run implements Pass.
func (DCE) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := removeUnreachableBlocks(f)
	for {
		erased := false
		for _, b := range f.Blocks {
			instrs := b.Instrs()
			for i := len(instrs) - 1; i >= 0; i-- {
				in := instrs[i]
				if in.Parent() == nil {
					continue
				}
				if isTriviallyDead(in) {
					b.Erase(in)
					erased = true
				}
			}
		}
		if !erased {
			break
		}
		changed = true
	}
	return changed
}
