; Branch-condition refinement: under the freeze dialect, branching on
; poison is immediate UB, so any execution that reaches %t or %e
; already evaluated %c — and therefore %p — to a non-poison value.
; Every freeze below the guard is redundant even though %p is may-poison
; globally.
; RUN: passes=freeze-elim sem=freeze

define i8 @guarded(i8 %p) {
entry:
  %c = icmp eq i8 %p, 0
  br i1 %c, label %t, label %e
t:
  %fp = freeze i8 %p
  %r = add i8 %fp, 1
  ret i8 %r
e:
  %fq = freeze i8 %p
  ret i8 %fq
}
; CHECK: %r = add i8 %p, 1
; CHECK-NOT: freeze
