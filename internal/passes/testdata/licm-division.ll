; RUN: passes=licm sem=freeze
; §3.2: the guarded division must NOT hoist (k may be poison).
define i8 @guarded(i8 %k, i8 %n) {
entry:
  %nz = icmp ne i8 %k, 0
  br i1 %nz, label %pre, label %out
pre:
  br label %head
head:
  %i = phi i8 [ 0, %pre ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %out
body:
  %q = udiv i8 1, %k
  %i1 = add nsw i8 %i, 1
  br label %head
out:
  ret i8 0
}
; CHECK: pre:
; CHECK-NEXT: br label %head
; CHECK: body:
; CHECK: udiv
