; RUN: passes=reassociate sem=freeze
; §10.2: constants combine and nsw is dropped.
define i8 @reassoc(i8 %a, i8 %b) {
entry:
  %t1 = add nsw i8 %a, 10
  %t2 = add nsw i8 %t1, %b
  %t3 = add nsw i8 %t2, 20
  ret i8 %t3
}
; CHECK: add i8 %a, %b
; CHECK: , 30
; CHECK-NOT: nsw
