; RUN: passes=indvars sem=freeze
; Figure 3: the in-loop sext is replaced by a wide IV.
define i64 @widen(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp sle i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i64 0
}
; CHECK: phi i64
; CHECK-NOT: %iext
