; RUN: passes=gvn sem=freeze
; §3.3: after "if (t == y)", t is replaced by y in the then-region.
define i8 @prop(i8 %x, i8 %y) {
entry:
  %t = add nsw i8 %x, 1
  %cmp = icmp eq i8 %t, %y
  br i1 %cmp, label %then, label %else
then:
  ret i8 %t
else:
  ret i8 0
}
; CHECK: then:
; CHECK-NEXT: ret i8 %y
