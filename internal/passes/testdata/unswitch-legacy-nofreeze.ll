; RUN: passes=loopunswitch sem=legacy unsound
; The historical unswitch branches on the raw condition.
define i8 @unswitch(i1 %c2, i1 %c) {
entry:
  br label %head
head:
  %cc = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cc, label %body, label %exit
body:
  br i1 %c2, label %foo, label %bar
foo:
  br label %latch
bar:
  br label %latch
latch:
  br label %head
exit:
  ret i8 0
}
; CHECK: entry:
; CHECK: br i1 %c2, label %head
; CHECK-NOT: freeze
