; RUN: passes=instcombine sem=freeze
; §6 freeze clean-ups.
define i8 @fz(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %a = add i8 %f2, 0
  %f3 = freeze i8 %a
  ret i8 %f3
}
; CHECK: %f1 = freeze i8 %x
; CHECK-NEXT: ret i8 %f1
