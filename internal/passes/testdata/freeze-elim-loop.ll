; freeze in a loop header: the induction variable is loop-carried but
; never poison (clean seed, attribute-free step), so the fixpoint proves
; its freeze redundant. The nsw-stepped twin may overflow to poison on
; the backedge, so its freeze survives.
; RUN: passes=freeze-elim sem=freeze

define i8 @loop(i8 %n) {
entry:
  %fn = freeze i8 %n
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %j = phi i8 [ 0, %entry ], [ %j1, %body ]
  %fi = freeze i8 %i
  %fj = freeze i8 %j
  %c = icmp ult i8 %fi, %fn
  br i1 %c, label %body, label %exit
body:
  %i1 = add i8 %i, 1
  %j1 = add nsw i8 %j, 1
  br label %head
exit:
  ret i8 %fj
}
; CHECK: %fn = freeze i8 %n
; CHECK: %fj = freeze i8 %j
; CHECK: %c = icmp ult i8 %i, %fn
; CHECK-NOT: %fi
