; RUN: passes=instcombine sem=freeze
; §3.4 fixed rule: the or takes a frozen arm.
define i1 @sel_or(i1 %c, i1 %x) {
entry:
  %r = select i1 %c, i1 true, i1 %x
  ret i1 %r
}
; CHECK: @sel_or
; CHECK: freeze i1 %x
; CHECK: or i1 %c
; CHECK-NOT: select
