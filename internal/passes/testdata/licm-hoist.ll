; RUN: passes=licm sem=freeze
; Figure 1: the invariant nsw add hoists to the preheader.
define void @fig1(i8 %x, i8 %n, ptr %a) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i8 %x, 1
  %p = getelementptr i8, ptr %a, i8 %i
  store i8 %x1, ptr %p
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  ret void
}
; CHECK: entry:
; CHECK-NEXT: %x1 = add nsw i8 %x, 1
; CHECK-NEXT: br label %head
