; RUN: passes=mem2reg sem=freeze
; Figure 2: the path skipping the store yields poison into the phi.
define i8 @fig2(i1 %cond, i8 %v) {
entry:
  %x = alloca i8, i32 1
  br i1 %cond, label %assign, label %skip
assign:
  store i8 %v, ptr %x
  br label %skip
skip:
  %r = load i8, ptr %x
  ret i8 %r
}
; CHECK: [ poison,
; CHECK-NOT: alloca
; CHECK-NOT: alloca
