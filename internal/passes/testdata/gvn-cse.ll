; RUN: passes=gvn,dce sem=freeze
define i8 @cse(i8 %x, i8 %y) {
entry:
  %a = add i8 %x, %y
  %b = add i8 %y, %x
  %r = xor i8 %a, %b
  ret i8 %r
}
; CHECK: %a = add i8 %x, %y
; CHECK-NEXT: %r = xor i8 %a, %a
