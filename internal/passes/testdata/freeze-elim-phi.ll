; phi of frozen values: every incoming is itself non-poison, so the
; phi merge is NeverPoison and the downstream freeze is deleted — the
; flow-sensitive fact the local operand walk cannot see.
; RUN: passes=freeze-elim sem=freeze

define i8 @phimerge(i1 %c, i8 %a, i8 %b) {
entry:
  %fc = freeze i1 %c
  br i1 %fc, label %t, label %e
t:
  %fa = freeze i8 %a
  br label %m
e:
  %fb = freeze i8 %b
  br label %m
m:
  %x = phi i8 [ %fa, %t ], [ %fb, %e ]
  %fx = freeze i8 %x
  ret i8 %fx
}
; CHECK: %x = phi i8 [ %fa, %t ], [ %fb, %e ]
; CHECK-NEXT: ret i8 %x
; CHECK-NOT: %fx
