; freeze of freeze: the inner freeze already yields a non-poison value,
; so the outer one is the identity and is deleted. The inner freeze of
; the raw parameter must survive — replacing it would reintroduce the
; §3.1 use-count trap.
; RUN: passes=freeze-elim sem=freeze

define i8 @chain(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %f3 = freeze i8 %f2
  ret i8 %f3
}
; CHECK: %f1 = freeze i8 %x
; CHECK-NEXT: ret i8 %f1
; CHECK-NOT: %f2
; CHECK-NOT: %f3
