; RUN: passes=instcombine sem=legacy
; Fixed legacy combiner leaves the select alone (§3.4).
define i1 @sel_keep(i1 %c, i1 %x) {
entry:
  %r = select i1 %c, i1 true, i1 %x
  ret i1 %r
}
; CHECK: select i1 %c, i1 1, i1 %x
; CHECK-NOT: or
