; RUN: passes=simplifycfg sem=freeze
define i8 @diamond(i1 %c, i8 %a, i8 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i8 [ %a, %t ], [ %b, %e ]
  ret i8 %x
}
; CHECK: select i1 %c, i8 %a, i8 %b
; CHECK-NOT: phi
