; RUN: passes=sccp sem=freeze
define i8 @fold(i8 %x) {
entry:
  %a = add i8 2, 3
  %c = icmp eq i8 %a, 5
  br i1 %c, label %t, label %e
t:
  %r = mul i8 %a, 2
  ret i8 %r
e:
  ret i8 %x
}
; CHECK: t:
; CHECK-NEXT: ret i8 10
