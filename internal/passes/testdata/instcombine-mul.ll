; RUN: passes=instcombine sem=freeze
; The §3.1 rewrite, legal under the freeze semantics.
define i8 @mul2(i8 %x) {
entry:
  %r = mul i8 %x, 2
  ret i8 %r
}
; CHECK: @mul2
; CHECK: %r = add i8 %x, %x
; CHECK-NOT: mul i8

define i8 @mul8(i8 %x) {
entry:
  %r = mul i8 %x, 8
  ret i8 %r
}
; CHECK: @mul8
; CHECK: shl i8 %x, 3
