; freeze-elim deletes freezes of provably never-poison operands:
; constants and attribute-free expressions over already-frozen values.
; The freeze of the raw parameter must survive.
; RUN: passes=freeze-elim sem=freeze

define i8 @const_freeze(i8 %p) {
entry:
  %fc = freeze i8 5
  %keep = freeze i8 %p
  %sum = add i8 %fc, %keep
  ret i8 %sum
}
; CHECK: %keep = freeze i8 %p
; CHECK-NEXT: %sum = add i8 5, %keep
; CHECK-NOT: %fc

define i8 @expr_freeze(i8 %p) {
entry:
  %f = freeze i8 %p
  %x = add i8 %f, 1
  %gone = freeze i8 %x
  ret i8 %gone
}
; CHECK: %x = add i8 %f, 1
; CHECK-NEXT: ret i8 %x
; CHECK-NOT: %gone

define i8 @nsw_stays(i8 %p) {
entry:
  %f = freeze i8 %p
  %x = add nsw i8 %f, 1
  %ff = freeze i8 %x
  ret i8 %ff
}
; CHECK: %ff = freeze i8 %x
