; RUN: passes=loopunswitch sem=freeze
; §5.1: the hoisted condition is frozen.
define i8 @unswitch(i1 %c2, i1 %c) {
entry:
  br label %head
head:
  %cc = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cc, label %body, label %exit
body:
  br i1 %c2, label %foo, label %bar
foo:
  br label %latch
bar:
  br label %latch
latch:
  br label %head
exit:
  ret i8 0
}
; CHECK: entry:
; CHECK: freeze i1 %c2
; CHECK: br i1 %unswitch.frz
