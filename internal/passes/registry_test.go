package passes

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 18 {
		t.Errorf("registry holds %d passes, want 18: %v", len(names), names)
	}
	for _, n := range names {
		pi, ok := Lookup(n)
		if !ok {
			t.Fatalf("Names lists %q but Lookup misses it", n)
		}
		if got := pi.New().Name(); got != n {
			t.Errorf("constructor for %q builds pass named %q", n, got)
		}
	}
	// Every O2 pipeline entry resolves.
	for _, p := range O2().Passes {
		if _, ok := Lookup(p.Name()); !ok {
			t.Errorf("O2 pass %q not in registry", p.Name())
		}
	}
}

func TestLookupPassUnknownError(t *testing.T) {
	_, err := LookupPass("licn")
	if err == nil {
		t.Fatal("no error for unknown pass")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown pass "licn"`) {
		t.Errorf("error %q does not name the bad pass", msg)
	}
	for _, avail := range []string{"licm", "gvn", "simplifycfg"} {
		if !strings.Contains(msg, avail) {
			t.Errorf("error %q does not list available pass %q", msg, avail)
		}
	}
	if PassByName("licn") != nil {
		t.Error("PassByName returned a pass for an unknown name")
	}
	if PassByName("licm") == nil {
		t.Error("PassByName misses a registered name")
	}
}

func TestNewPassManagerUnknown(t *testing.T) {
	if _, err := NewPassManager("gvn", "nope"); err == nil ||
		!strings.Contains(err.Error(), `unknown pass "nope"`) {
		t.Errorf("NewPassManager error = %v", err)
	}
	pm, err := NewPassManager("gvn", "dce")
	if err != nil || len(pm.Passes) != 2 {
		t.Errorf("NewPassManager(gvn, dce) = %v, %v", pm, err)
	}
}

func TestPreservedDeclarations(t *testing.T) {
	// Spot-check the contract the invalidation logic rests on.
	for name, wantAll := range map[string]bool{
		"instsimplify": true,
		"instcombine":  true,
		"gvn":          true,
		"licm":         true,
		"freeze-elim":  true,
		"simplifycfg":  false,
		"sccp":         false,
		"dce":          false,
		"inline":       false,
		"loopunswitch": false,
	} {
		pi, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		if got := pi.Preserves == PreservesAll; got != wantAll {
			t.Errorf("%s preserves %v, want all=%v", name, pi.Preserves, wantAll)
		}
	}
}
