package passes

import (
	"tameir/internal/core"
	"tameir/internal/ir"
)

// SimplifyCFG cleans up control flow: constant-folds branches, merges
// straight-line block chains, removes forwarding blocks, and converts
// small diamonds/triangles of phis into select instructions.
//
// The phi→select conversion is the §3.4 battleground: it is sound when
// select takes the dynamically chosen arm's value (Figure 5), and
// UNSOUND under the legacy "either arm's poison leaks" reading,
// because the branch never evaluated the untaken arm. The fixed
// pipeline therefore only performs it under the Freeze semantics;
// Config.Unsound re-enables it under legacy semantics, reproducing the
// historical bug.
type SimplifyCFG struct{}

// Name implements Pass.
func (SimplifyCFG) Name() string { return "simplifycfg" }

func init() {
	// Merges blocks and rewires edges by design.
	Register(PassInfo{Name: "simplifycfg", New: func() Pass { return SimplifyCFG{} }, Preserves: PreservesNone})
}

// Run implements Pass.
func (SimplifyCFG) Run(f *ir.Func, cfg *Config, _ *AnalysisManager) bool {
	changed := false
	for {
		local := false
		local = foldConstantBranches(f) || local
		local = removeUnreachableBlocks(f) || local
		local = mergeBlockChains(f) || local
		local = skipForwardingBlocks(f) || local
		if phiToSelectAllowed(cfg) {
			local = phiToSelect(f, cfg) || local
		}
		if !local {
			break
		}
		changed = true
	}
	return changed
}

func phiToSelectAllowed(cfg *Config) bool {
	if cfg.Sem.Mode == core.Freeze {
		return true // Figure 5 select semantics: sound
	}
	if cfg.Unsound {
		return true // historical behaviour regardless of select reading
	}
	// Legacy fixed: sound only if select does not leak the untaken
	// arm's poison and a poison condition is not UB.
	return !cfg.Sem.SelectArmPoisonEither && cfg.Sem.SelectPoisonCond == core.SelectPoisonCondPoison
}

// foldConstantBranches rewrites conditional branches on constant
// conditions; br poison/undef picks an arbitrary target (refinement:
// the source either has UB — which justifies anything — or chooses
// nondeterministically).
func foldConstantBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || !t.IsConditionalBr() {
			continue
		}
		var taken, dead *ir.Block
		switch c := t.Arg(0).(type) {
		case *ir.Const:
			if c.Bits != 0 {
				taken, dead = t.BlockArg(0), t.BlockArg(1)
			} else {
				taken, dead = t.BlockArg(1), t.BlockArg(0)
			}
		case *ir.Poison, *ir.Undef:
			taken, dead = t.BlockArg(0), t.BlockArg(1)
		default:
			// Same target on both edges.
			if t.BlockArg(0) == t.BlockArg(1) {
				taken, dead = t.BlockArg(0), nil
			} else {
				continue
			}
		}
		if dead != nil && dead != taken {
			for _, ph := range dead.Phis() {
				ph.RemovePhiIncoming(b)
			}
		}
		nbr := ir.NewInstr(ir.OpBr, ir.Void)
		nbr.AddBlockArg(taken)
		b.InsertBefore(nbr, t)
		b.Remove(t)
		dropOperands(t)
		changed = true
	}
	return changed
}

// mergeBlockChains merges b's unique successor into b when that
// successor has b as its unique predecessor.
func mergeBlockChains(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr || t.IsConditionalBr() {
			continue
		}
		s := t.BlockArg(0)
		if s == b || s == f.Entry() {
			continue
		}
		preds := f.Preds(s)
		if len(preds) != 1 || preds[0] != b {
			continue
		}
		// Phis in s have a single incoming: fold them.
		for _, ph := range append([]*ir.Instr(nil), s.Phis()...) {
			v, _ := ph.PhiIncoming(b)
			replaceAndErase(ph, v)
		}
		// Remove b's terminator, move s's instructions into b.
		b.Remove(t)
		dropOperands(t)
		for _, in := range append([]*ir.Instr(nil), s.Instrs()...) {
			s.Remove(in)
			b.Append(in)
		}
		// Successors of s now flow from b; phi incomings referencing s
		// must reference b.
		for _, ss := range b.Succs() {
			for _, ph := range ss.Phis() {
				for i := 0; i < ph.NumBlocks(); i++ {
					if ph.BlockArg(i) == s {
						ph.SetBlockArg(i, b)
					}
				}
			}
		}
		f.RemoveBlock(s)
		changed = true
	}
	return changed
}

// skipForwardingBlocks retargets edges through blocks containing only
// an unconditional branch, when no phi complications arise.
func skipForwardingBlocks(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if b == f.Entry() {
			continue
		}
		instrs := b.Instrs()
		if len(instrs) != 1 {
			continue
		}
		t := instrs[0]
		if t.Op != ir.OpBr || t.IsConditionalBr() {
			continue
		}
		dst := t.BlockArg(0)
		if dst == b {
			continue
		}
		preds := f.Preds(b)
		if len(preds) == 0 {
			continue
		}
		// If dst has phis, retargeting is only simple when each pred
		// is not already a predecessor of dst (no duplicate incoming)
		// and we can copy b's incoming value for each new pred.
		ok := true
		dstPreds := map[*ir.Block]bool{}
		for _, p := range f.Preds(dst) {
			dstPreds[p] = true
		}
		for _, p := range preds {
			if dstPreds[p] {
				ok = false // would need edge duplication reasoning
				break
			}
		}
		if !ok {
			continue
		}
		for _, ph := range dst.Phis() {
			v, found := ph.PhiIncoming(b)
			if !found {
				ok = false
				break
			}
			for _, p := range preds {
				ph.AddPhiIncoming(v, p)
			}
			ph.RemovePhiIncoming(b)
		}
		if !ok {
			continue
		}
		for _, p := range preds {
			pt := p.Terminator()
			for i := 0; i < pt.NumBlocks(); i++ {
				if pt.BlockArg(i) == b {
					pt.SetBlockArg(i, dst)
				}
			}
		}
		f.RemoveBlock(b)
		changed = true
	}
	return changed
}

// phiToSelect converts the diamond
//
//	head:  br %c, %t, %e
//	t:     br %m            (empty)
//	e:     br %m            (empty)
//	m:     %x = phi [a, t], [b, e]
//
// and the triangle variant into %x = select %c, a, b in head.
func phiToSelect(f *ir.Func, cfg *Config) bool {
	changed := false
	for _, m := range f.Blocks {
		phis := m.Phis()
		if len(phis) == 0 {
			continue
		}
		preds := f.Preds(m)
		if len(preds) != 2 {
			continue
		}
		// Identify the branching head and per-edge values.
		headT, okT := diamondLeg(f, preds[0], m)
		headE, okE := diamondLeg(f, preds[1], m)
		if !okT || !okE || headT != headE {
			continue
		}
		head := headT
		ht := head.Terminator()
		if ht == nil || !ht.IsConditionalBr() {
			continue
		}
		cond := ht.Arg(0)
		// Map the branch's true/false edges to m's two predecessors.
		trueLeg, falseLeg := ht.BlockArg(0), ht.BlockArg(1)
		var truePred, falsePred *ir.Block
		for _, p := range preds {
			if p == head {
				// Triangle: the head branches directly to m.
				if trueLeg == m {
					truePred = head
				}
				if falseLeg == m {
					falsePred = head
				}
				continue
			}
			if p == trueLeg {
				truePred = p
			}
			if p == falseLeg {
				falsePred = p
			}
		}
		if truePred == nil || falsePred == nil || truePred == falsePred {
			continue
		}
		// Both legs (when distinct from head) must be empty forwarders
		// with m as the single successor and head as single pred.
		legEmpty := func(p *ir.Block) bool {
			if p == head {
				return true
			}
			return len(p.Instrs()) == 1 && len(f.Preds(p)) == 1
		}
		if !legEmpty(truePred) || !legEmpty(falsePred) {
			continue
		}
		// Build selects in head before its terminator.
		for _, ph := range append([]*ir.Instr(nil), phis...) {
			tv, ok1 := ph.PhiIncoming(truePred)
			fv, ok2 := ph.PhiIncoming(falsePred)
			if !ok1 || !ok2 {
				return changed
			}
			sel := ir.NewInstr(ir.OpSelect, ph.Ty, cond, tv, fv)
			sel.Nam = f.GenName("sel")
			head.InsertBefore(sel, ht)
			replaceAndErase(ph, sel)
		}
		// Rewire head to jump straight to m.
		nbr := ir.NewInstr(ir.OpBr, ir.Void)
		nbr.AddBlockArg(m)
		head.InsertBefore(nbr, ht)
		head.Remove(ht)
		dropOperands(ht)
		// The legs become unreachable; clean them up, and restart the
		// scan rather than iterating over a stale block list.
		removeUnreachableBlocks(f)
		return true
	}
	return changed
}

// diamondLeg identifies the branch head for m's predecessor p: p itself
// if p branches conditionally (triangle), else p's unique predecessor
// when p is an empty forwarder.
func diamondLeg(f *ir.Func, p *ir.Block, m *ir.Block) (*ir.Block, bool) {
	t := p.Terminator()
	if t == nil {
		return nil, false
	}
	if t.IsConditionalBr() {
		return p, true
	}
	if len(p.Instrs()) != 1 {
		return nil, false
	}
	pp := f.Preds(p)
	if len(pp) != 1 {
		return nil, false
	}
	return pp[0], true
}

// dropOperands releases the operand uses of a detached instruction.
func dropOperands(in *ir.Instr) {
	for i := in.NumArgs() - 1; i >= 0; i-- {
		in.SetArg(i, ir.NewPoison(in.Arg(i).Type()))
	}
}
