package passes

import (
	"tameir/internal/analysis"
	"tameir/internal/ir"
)

// LICM hoists loop-invariant computations into the loop preheader.
// Speculatable instructions (plain arithmetic — including
// poison-producing nsw/nuw arithmetic, whose deferred UB is exactly
// what makes the hoist legal, §2.2) always hoist.
//
// Division is the §3.2 battleground: hoisting "1/k" out of a loop
// guarded by "k != 0" is unsound when k can be undef (the check and
// the division may see different values) or poison. The fixed variant
// hoists a division only when the divisor is a provably non-zero,
// non-poison value (§5.6's "up to non-poison" analysis contract); the
// Config.Unsound variant trusts a dominating "k != 0" branch — LLVM's
// historical behaviour, shown to miscompile (PR21412).
type LICM struct{}

// Name implements Pass.
func (LICM) Name() string { return "licm" }

func init() {
	// Hoisting moves instructions into an existing preheader; the CFG
	// and loop structure are unchanged.
	Register(PassInfo{Name: "licm", New: func() Pass { return LICM{} }, Preserves: PreservesAll})
}

// Run implements Pass.
func (LICM) Run(f *ir.Func, cfg *Config, am *AnalysisManager) bool {
	dt := am.DomTree()
	li := am.LoopInfo()
	changed := false
	for _, l := range li.Loops {
		ph := l.Preheader(f)
		if ph == nil {
			continue
		}
		phTerm := ph.Terminator()
		// Iterate to a fixpoint within the loop: hoisting one
		// instruction may make its users invariant.
		for {
			hoisted := false
			for b := range l.Blocks {
				for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
					if in.Parent() == nil {
						continue
					}
					if !loopInvariantOperands(l, in) {
						continue
					}
					if !hoistable(f, dt, l, in, cfg) {
						continue
					}
					b.Remove(in)
					ph.InsertBefore(in, phTerm)
					hoisted = true
					changed = true
				}
			}
			if !hoisted {
				break
			}
		}
	}
	return changed
}

func loopInvariantOperands(l *analysis.Loop, in *ir.Instr) bool {
	if in.NumArgs() == 0 {
		return false
	}
	for _, a := range in.Args() {
		if !l.IsInvariant(a) {
			return false
		}
	}
	return true
}

func hoistable(f *ir.Func, dt *analysis.DomTree, l *analysis.Loop, in *ir.Instr, cfg *Config) bool {
	switch {
	case in.Op.IsTerminator(), in.Op == ir.OpPhi:
		return false
	case in.Op == ir.OpFreeze:
		// Hoisting freeze out of a loop is sound (it runs once instead
		// of many times with the same operand — all executions saw the
		// same operand value, and making the choice once refines
		// making it repeatedly)... but only when the loop body was
		// guaranteed to execute it. Speculating a freeze that might
		// not run adds no UB (freeze is total), so it is fine.
		return cfg.FreezeAware
	case analysis.IsSpeculatable(in):
		return true
	case in.Op.IsDivRem():
		if analysis.IsSpeculatableWithNonPoisonDivisor(in) {
			return true
		}
		if cfg.Unsound {
			// Historical: trust a dominating non-zero check on the
			// divisor (§3.2) — unsound for undef/poison divisors.
			return divisorCheckedNonZero(f, dt, l, in.Arg(1))
		}
		return false
	}
	return false
}

// divisorCheckedNonZero looks for a conditional branch on
// "icmp ne d, 0" (or eq with swapped edges) whose non-zero edge
// dominates the loop header.
func divisorCheckedNonZero(f *ir.Func, dt *analysis.DomTree, l *analysis.Loop, d ir.Value) bool {
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || !t.IsConditionalBr() {
			continue
		}
		cmp, ok := t.Arg(0).(*ir.Instr)
		if !ok || cmp.Op != ir.OpICmp {
			continue
		}
		var edge *ir.Block
		if cmp.Pred == ir.PredNE && cmp.Arg(0) == d && isZeroConst(cmp.Arg(1)) {
			edge = t.BlockArg(0)
		} else if cmp.Pred == ir.PredEQ && cmp.Arg(0) == d && isZeroConst(cmp.Arg(1)) {
			edge = t.BlockArg(1)
		} else {
			continue
		}
		preds := f.Preds(edge)
		if len(preds) == 1 && preds[0] == b && dt.Dominates(edge, l.Header) {
			return true
		}
	}
	return false
}
