package passes

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tameir/internal/analysis"
	"tameir/internal/telemetry"
)

// PassStat is the accumulated record for one pass name across every
// function a PassManager ran it over.
type PassStat struct {
	Name    string
	Runs    int
	Changed int
	Wall    time.Duration
	// InstrsRemoved is the net instruction-count reduction attributed
	// to the pass (negative when the pass grows functions, as the
	// inliner does).
	InstrsRemoved int
}

// Stats accumulates pass-manager instrumentation: per-pass timing and
// change counts, fixpoint behaviour, and analysis-cache counters. One
// Stats belongs to one PassManager; merge per-shard collectors with
// Merge (deterministic given deterministic merge order).
//
// Since the telemetry PR the collector is a view over a
// telemetry.Registry: every count lives in a named registry metric
// (pass_runs_total{pass=...}, opt_funcs_total, analysis_hits_total,
// ...) and the historical accessors read them back. Report/ReportTime
// output is byte-identical to the pre-registry collector; Registry()
// exposes the backing store so campaigns fold pass counters into their
// campaign-wide snapshot with one Merge.
type Stats struct {
	reg *telemetry.Registry

	funcs     telemetry.Counter
	iters     telemetry.Counter
	converged telemetry.Counter
	aComputes telemetry.Counter
	aHits     telemetry.Counter
	aPoisonQ  telemetry.Counter

	verifyChecks   telemetry.Counter
	verifyFailures telemetry.Counter
	freezeRemoved  telemetry.Counter

	byName map[string]*passHandles
	order  []string // first-recorded order: matches pipeline position
}

// passHandles caches one pass's resolved registry instruments so the
// per-step hot path is four atomic adds, no name formatting.
type passHandles struct {
	runs    telemetry.Counter
	changed telemetry.Counter
	wall    telemetry.Counter
	removed telemetry.Gauge
}

// NewStats returns an empty collector.
func NewStats() *Stats {
	reg := telemetry.NewRegistry()
	return &Stats{
		reg:       reg,
		funcs:     reg.Counter("opt_funcs_total", telemetry.Deterministic, "functions run through the pipeline"),
		iters:     reg.Counter("opt_fixpoint_iters_total", telemetry.Deterministic, "whole-pipeline rounds executed"),
		converged: reg.Counter("opt_converged_total", telemetry.Deterministic, "functions reaching a true fixpoint"),
		aComputes: reg.Counter("analysis_computes_total", telemetry.Deterministic, "analyses computed"),
		aHits:     reg.Counter("analysis_hits_total", telemetry.Deterministic, "analysis cache hits"),
		aPoisonQ:  reg.Counter("analysis_poison_queries_total", telemetry.Deterministic, "poison-fact queries answered"),
		// Registered eagerly (not on first event) so a snapshot always
		// carries them: the CI assertion verify_each_failures_total=0
		// needs the zero to be visible, not absent.
		verifyChecks:   reg.Counter("verify_each_checks_total", telemetry.Deterministic, "verify-each batteries run between pass steps"),
		verifyFailures: reg.Counter("verify_each_failures_total", telemetry.Deterministic, "verify-each batteries that found a violation"),
		freezeRemoved:  reg.Counter("passes_freeze_elim_removed_total", telemetry.Deterministic, "freeze instructions deleted by freeze-elim"),
		byName:         map[string]*passHandles{},
	}
}

// Registry exposes the backing metric store (never nil).
func (s *Stats) Registry() *telemetry.Registry { return s.reg }

// handles returns the registry instruments for one pass name,
// registering them on first use. Per-pass run/changed/Δinstr counts
// are pure functions of the shard partition; wall time never is.
func (s *Stats) handles(name string) *passHandles {
	h := s.byName[name]
	if h == nil {
		h = &passHandles{
			runs:    s.reg.Counter(telemetry.L("pass_runs_total", "pass", name), telemetry.Deterministic, "pass executions"),
			changed: s.reg.Counter(telemetry.L("pass_changed_total", "pass", name), telemetry.Deterministic, "pass executions that changed the function"),
			wall:    s.reg.Counter(telemetry.L("pass_wall_ns_total", "pass", name), telemetry.Scheduling, "pass wall time in nanoseconds"),
			removed: s.reg.Gauge(telemetry.L("pass_instrs_removed", "pass", name), telemetry.Deterministic, "net instructions removed"),
		}
		s.byName[name] = h
		s.order = append(s.order, name)
	}
	return h
}

func (s *Stats) record(name string, changed bool, wall time.Duration, instrDelta int) {
	h := s.handles(name)
	h.runs.Inc()
	h.wall.Add(uint64(wall))
	if changed {
		h.changed.Inc()
		h.removed.Add(int64(instrDelta))
		// freeze-elim only ever deletes freezes, so its instruction
		// delta IS the number of freezes removed.
		if name == "freeze-elim" && instrDelta > 0 {
			s.freezeRemoved.Add(uint64(instrDelta))
		}
	}
}

func (s *Stats) noteFunc(rounds int, converged bool) {
	s.funcs.Inc()
	s.iters.Add(uint64(rounds))
	if converged {
		s.converged.Inc()
	}
}

// addAnalysis folds an analysis manager's cache counters in.
func (s *Stats) addAnalysis(a analysis.Stats) {
	s.aComputes.Add(a.Computes)
	s.aHits.Add(a.Hits)
	s.aPoisonQ.Add(a.PoisonQueries)
}

// FreezeElimRemoved is the number of freeze instructions freeze-elim
// deleted (the BENCH_pipeline.json ablation rows report it).
func (s *Stats) FreezeElimRemoved() uint64 { return s.freezeRemoved.Value() }

// VerifyEachFailures is the number of verify-each batteries that found
// a violation (CI asserts this stays zero).
func (s *Stats) VerifyEachFailures() uint64 { return s.verifyFailures.Value() }

// Funcs is the number of functions run through the pipeline.
func (s *Stats) Funcs() int { return int(s.funcs.Value()) }

// FixpointIters is the total number of whole-pipeline rounds executed
// across all functions.
func (s *Stats) FixpointIters() int { return int(s.iters.Value()) }

// Converged counts functions whose last round reported no change
// (i.e. a true fixpoint, not the MaxIters cap).
func (s *Stats) Converged() int { return int(s.converged.Value()) }

// Analysis returns the accumulated analysis computation and cache-hit
// counts.
func (s *Stats) Analysis() analysis.Stats {
	return analysis.Stats{Computes: s.aComputes.Value(), Hits: s.aHits.Value()}
}

// PassStats returns a copy of the per-pass records in first-recorded
// (pipeline) order.
func (s *Stats) PassStats() []PassStat {
	out := make([]PassStat, 0, len(s.order))
	for _, n := range s.order {
		h := s.byName[n]
		out = append(out, PassStat{
			Name:          n,
			Runs:          int(h.runs.Value()),
			Changed:       int(h.changed.Value()),
			Wall:          time.Duration(h.wall.Value()),
			InstrsRemoved: int(h.removed.Value()),
		})
	}
	return out
}

// Merge folds o into s. Pass order follows s first, then any names only
// o saw, so merging per-shard collectors in shard order stays
// deterministic.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	s.reg.Merge(o.reg)
	for _, n := range o.order {
		// Resolve handles for names s had not seen; the values already
		// arrived via the registry merge.
		s.handles(n)
	}
}

// ReportTime writes an LLVM -time-passes-style table: per-pass wall
// time, sorted descending, with the share of total pass time.
func (s *Stats) ReportTime(w io.Writer) {
	stats := s.PassStats()
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].Wall > stats[j].Wall })
	var total time.Duration
	for _, ps := range stats {
		total += ps.Wall
	}
	fmt.Fprintf(w, "===- Pass execution timing (total %v) -===\n", total)
	for _, ps := range stats {
		share := 0.0
		if total > 0 {
			share = 100 * float64(ps.Wall) / float64(total)
		}
		fmt.Fprintf(w, "  %10v  %5.1f%%  %s\n", ps.Wall, share, ps.Name)
	}
}

// Report writes an LLVM -stats-style summary: per-pass run/change
// counts and instruction deltas in pipeline order, then fixpoint and
// analysis-cache counters.
func (s *Stats) Report(w io.Writer) {
	fmt.Fprintf(w, "===- Pass statistics -===\n")
	fmt.Fprintf(w, "  %-16s %6s %8s %8s\n", "pass", "runs", "changed", "Δinstrs")
	for _, ps := range s.PassStats() {
		fmt.Fprintf(w, "  %-16s %6d %8d %8d\n", ps.Name, ps.Runs, ps.Changed, -ps.InstrsRemoved)
	}
	a := s.Analysis()
	fmt.Fprintf(w, "  functions: %d  fixpoint iterations: %d  converged: %d\n",
		s.Funcs(), s.FixpointIters(), s.Converged())
	fmt.Fprintf(w, "  analyses computed: %d  cache hits: %d\n",
		a.Computes, a.Hits)
}

// Emit is the one -stats formatter behind every CLI: the timing table
// (when timePasses) followed by the statistics summary (when stats).
// tame-opt and tame-fuzz both route through it, so their output can
// never drift apart again.
func (s *Stats) Emit(w io.Writer, timePasses, stats bool) {
	if s == nil {
		return
	}
	if timePasses {
		s.ReportTime(w)
	}
	if stats {
		s.Report(w)
	}
}
