package passes

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tameir/internal/analysis"
)

// PassStat is the accumulated record for one pass name across every
// function a PassManager ran it over.
type PassStat struct {
	Name    string
	Runs    int
	Changed int
	Wall    time.Duration
	// InstrsRemoved is the net instruction-count reduction attributed
	// to the pass (negative when the pass grows functions, as the
	// inliner does).
	InstrsRemoved int
}

// Stats accumulates pass-manager instrumentation: per-pass timing and
// change counts, fixpoint behaviour, and analysis-cache counters. One
// Stats belongs to one PassManager; merge per-shard collectors with
// Merge (deterministic given deterministic merge order).
type Stats struct {
	// Funcs is the number of functions run through the pipeline.
	Funcs int
	// FixpointIters is the total number of whole-pipeline rounds
	// executed across all functions.
	FixpointIters int
	// Converged counts functions whose last round reported no change
	// (i.e. a true fixpoint, not the MaxIters cap).
	Converged int
	// Analysis counts analysis computations and cache hits.
	Analysis analysis.Stats

	byName map[string]*PassStat
	order  []string // first-recorded order: matches pipeline position
}

// NewStats returns an empty collector.
func NewStats() *Stats {
	return &Stats{byName: map[string]*PassStat{}}
}

func (s *Stats) record(name string, changed bool, wall time.Duration, instrDelta int) {
	ps := s.byName[name]
	if ps == nil {
		ps = &PassStat{Name: name}
		s.byName[name] = ps
		s.order = append(s.order, name)
	}
	ps.Runs++
	ps.Wall += wall
	if changed {
		ps.Changed++
		ps.InstrsRemoved += instrDelta
	}
}

func (s *Stats) noteFunc(rounds int, converged bool) {
	s.Funcs++
	s.FixpointIters += rounds
	if converged {
		s.Converged++
	}
}

// PassStats returns a copy of the per-pass records in first-recorded
// (pipeline) order.
func (s *Stats) PassStats() []PassStat {
	out := make([]PassStat, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, *s.byName[n])
	}
	return out
}

// Merge folds o into s. Pass order follows s first, then any names only
// o saw, so merging per-shard collectors in shard order stays
// deterministic.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	s.Funcs += o.Funcs
	s.FixpointIters += o.FixpointIters
	s.Converged += o.Converged
	s.Analysis.Add(o.Analysis)
	for _, n := range o.order {
		ops := o.byName[n]
		ps := s.byName[n]
		if ps == nil {
			ps = &PassStat{Name: n}
			s.byName[n] = ps
			s.order = append(s.order, n)
		}
		ps.Runs += ops.Runs
		ps.Changed += ops.Changed
		ps.Wall += ops.Wall
		ps.InstrsRemoved += ops.InstrsRemoved
	}
}

// ReportTime writes an LLVM -time-passes-style table: per-pass wall
// time, sorted descending, with the share of total pass time.
func (s *Stats) ReportTime(w io.Writer) {
	stats := s.PassStats()
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].Wall > stats[j].Wall })
	var total time.Duration
	for _, ps := range stats {
		total += ps.Wall
	}
	fmt.Fprintf(w, "===- Pass execution timing (total %v) -===\n", total)
	for _, ps := range stats {
		share := 0.0
		if total > 0 {
			share = 100 * float64(ps.Wall) / float64(total)
		}
		fmt.Fprintf(w, "  %10v  %5.1f%%  %s\n", ps.Wall, share, ps.Name)
	}
}

// Report writes an LLVM -stats-style summary: per-pass run/change
// counts and instruction deltas in pipeline order, then fixpoint and
// analysis-cache counters.
func (s *Stats) Report(w io.Writer) {
	fmt.Fprintf(w, "===- Pass statistics -===\n")
	fmt.Fprintf(w, "  %-16s %6s %8s %8s\n", "pass", "runs", "changed", "Δinstrs")
	for _, ps := range s.PassStats() {
		fmt.Fprintf(w, "  %-16s %6d %8d %8d\n", ps.Name, ps.Runs, ps.Changed, -ps.InstrsRemoved)
	}
	fmt.Fprintf(w, "  functions: %d  fixpoint iterations: %d  converged: %d\n",
		s.Funcs, s.FixpointIters, s.Converged)
	fmt.Fprintf(w, "  analyses computed: %d  cache hits: %d\n",
		s.Analysis.Computes, s.Analysis.Hits)
}
