package passes

import (
	"fmt"
	"sort"
	"strings"

	"tameir/internal/analysis"
)

// Convenience names for PassInfo.Preserves declarations: a pass that
// never adds, removes, or rewires blocks preserves all block-level
// analyses; a pass that can touch control flow preserves none.
const (
	PreservesAll  = analysis.All
	PreservesNone = analysis.None
)

// PassInfo is one registry entry: a pass name, its constructor, and
// the analyses the pass preserves when it reports a change. The
// preserved-set declaration is the contract the pass manager's
// analysis caching rests on — declaring an analysis preserved that the
// pass can invalidate silently serves stale results to later passes,
// so declarations err conservative (see each pass's registration for
// the per-pass argument).
type PassInfo struct {
	Name string
	// New constructs a fresh pass instance (passes are stateless
	// structs today, but the constructor keeps the registry honest if
	// one ever grows per-run state).
	New func() Pass
	// Preserves lists the analyses still valid after the pass reports
	// a change. An unchanged pass run always preserves everything.
	Preserves analysis.Set
}

var registry = map[string]PassInfo{}

// Register adds a pass to the registry. Pass files self-register from
// init, so the registry is complete before any lookup. Duplicate or
// inconsistent registrations are programming errors and panic.
func Register(pi PassInfo) {
	if pi.Name == "" || pi.New == nil {
		panic("passes: Register with empty name or nil constructor")
	}
	if _, dup := registry[pi.Name]; dup {
		panic("passes: duplicate registration of " + pi.Name)
	}
	if got := pi.New().Name(); got != pi.Name {
		panic(fmt.Sprintf("passes: %q registered under name %q", got, pi.Name))
	}
	registry[pi.Name] = pi
}

// Lookup returns the registry entry for name.
func Lookup(name string) (PassInfo, bool) {
	pi, ok := registry[name]
	return pi, ok
}

// Names returns every registered pass name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Preserved returns the preserved-analyses set declared for the named
// pass, or analysis.None for unregistered names (the conservative
// default: assume everything was clobbered).
func Preserved(name string) analysis.Set {
	if pi, ok := registry[name]; ok {
		return pi.Preserves
	}
	return analysis.None
}

// LookupPass resolves name to a pass instance, with an error listing
// the registry contents for unknown names.
func LookupPass(name string) (Pass, error) {
	if pi, ok := registry[name]; ok {
		return pi.New(), nil
	}
	return nil, fmt.Errorf("unknown pass %q, available: %s", name, strings.Join(Names(), ", "))
}

// PassByName returns the pass with the given name, or nil. Prefer
// LookupPass, whose error names the available passes.
func PassByName(name string) Pass {
	if pi, ok := registry[name]; ok {
		return pi.New()
	}
	return nil
}
