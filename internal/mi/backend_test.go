package mi

import (
	"math/rand"
	"strings"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/target"
)

// compileAndRun compiles the module and runs @main-equivalent fn with
// the given uint64 args on the simulator.
func compileAndRun(t *testing.T, src string, fnName string, args ...uint64) (uint64, *target.Machine) {
	t.Helper()
	mod, err := ir.ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.VerifyModule(mod, ir.VerifyLegacy); err != nil {
		t.Fatalf("verify: %v", err)
	}
	prog, err := CompileModule(mod)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fi := prog.FuncByName(fnName)
	if fi < 0 {
		t.Fatalf("no function %s", fnName)
	}
	m := target.NewMachine(prog)
	// Stack-convention: push args right-to-left.
	for i := len(args) - 1; i >= 0; i-- {
		m.Regs[target.SP] -= 8
		for b := uint(0); b < 8; b++ {
			m.Mem[m.Regs[target.SP]+uint64(b)] = byte(args[i] >> (8 * b))
		}
	}
	got, err := m.Run(fi)
	if err != nil {
		t.Fatalf("simulate: %v\n%s", err, dumpProgram(prog))
	}
	return got, m
}

func dumpProgram(p *target.Program) string {
	var b strings.Builder
	for _, f := range p.Funcs {
		b.WriteString(f.Name + ":\n")
		for bi, blk := range f.Blocks {
			b.WriteString("  L" + string(rune('0'+bi)) + ":\n")
			for _, in := range blk {
				b.WriteString("    " + in.String() + "\n")
			}
		}
	}
	return b.String()
}

// differential runs the function both through the interpreter (freeze
// semantics, zero oracle) and the backend+simulator and compares.
func differential(t *testing.T, src, fn string, argWidth uint, args ...uint64) {
	t.Helper()
	mod := ir.MustParseModule(src)
	f := mod.FuncByName(fn)
	coreArgs := make([]core.Value, len(args))
	for i, a := range args {
		coreArgs[i] = core.VC(f.Params[i].Ty, a)
	}
	want := core.Exec(f, coreArgs, core.ZeroOracle{}, core.FreezeOptions())
	if want.Kind != core.OutRet {
		t.Fatalf("interpreter did not return: %v", want)
	}
	got, _ := compileAndRun(t, src, fn, args...)
	if got != want.Val.Uint() {
		t.Fatalf("%s(%v): simulator %d, interpreter %d", fn, args, got, want.Val.Uint())
	}
}

func TestBackendArithmetic(t *testing.T) {
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  %d = sub i32 %s, 5
  %m = mul i32 %d, %b
  %x = xor i32 %m, 255
  %sh = shl i32 %x, 2
  %shr = lshr i32 %sh, 1
  ret i32 %shr
}`
	differential(t, src, "f", 32, 100, 7)
	differential(t, src, "f", 32, 0, 0)
	differential(t, src, "f", 32, 0xffffffff, 3)
}

func TestBackendSignedOps(t *testing.T) {
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  %d = sdiv i32 %a, %b
  %r = srem i32 %a, %b
  %sh = ashr i32 %a, 3
  %s1 = add i32 %d, %r
  %s2 = add i32 %s1, %sh
  ret i32 %s2
}`
	differential(t, src, "f", 32, 100, 7)
	differential(t, src, "f", 32, 0xfffffff0, 3) // negative numerator
	differential(t, src, "f", 32, 0xfffffff0, 0xffffffff)
}

func TestBackendNarrowWidths(t *testing.T) {
	src := `define i8 @f(i8 %a, i8 %b) {
entry:
  %s = add i8 %a, %b
  %c = icmp slt i8 %s, 0
  %z = zext i1 %c to i8
  %m = mul i8 %z, 10
  %r = add i8 %m, %s
  ret i8 %r
}`
	differential(t, src, "f", 8, 200, 100)
	differential(t, src, "f", 8, 1, 2)
	differential(t, src, "f", 8, 127, 1)
}

func TestBackendCasts(t *testing.T) {
	src := `define i64 @f(i16 %a) {
entry:
  %s = sext i16 %a to i64
  %z = zext i16 %a to i64
  %t = trunc i64 %s to i8
  %zz = zext i8 %t to i64
  %r1 = add i64 %s, %z
  %r = add i64 %r1, %zz
  ret i64 %r
}`
	differential(t, src, "f", 16, 0x8001)
	differential(t, src, "f", 16, 42)
}

func TestBackendControlFlowAndPhi(t *testing.T) {
	src := `define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc1 = add i32 %acc, %i
  %i1 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}`
	differential(t, src, "f", 32, 10) // 45
	differential(t, src, "f", 32, 0)
	differential(t, src, "f", 32, 100)
}

func TestBackendSwappingPhis(t *testing.T) {
	src := `define i32 @f(i32 %n) {
entry:
  br label %loop
loop:
  %a = phi i32 [ 0, %entry ], [ %b, %loop ]
  %b = phi i32 [ 1, %entry ], [ %a, %loop ]
  %i = phi i32 [ 0, %entry ], [ %i1, %loop ]
  %i1 = add i32 %i, 1
  %c = icmp ult i32 %i1, %n
  br i1 %c, label %loop, label %exit
exit:
  ret i32 %a
}`
	differential(t, src, "f", 32, 3)
	differential(t, src, "f", 32, 4)
}

func TestBackendMemory(t *testing.T) {
	src := `define i32 @f(i32 %n) {
entry:
  %buf = alloca i32, i32 8
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i32 %i, 8
  br i1 %c, label %body, label %sum
body:
  %p = getelementptr i32, ptr %buf, i32 %i
  %v = mul i32 %i, %n
  store i32 %v, ptr %p
  %i1 = add i32 %i, 1
  br label %head
sum:
  %p3 = getelementptr i32, ptr %buf, i32 3
  %v3 = load i32, ptr %p3
  %p7 = getelementptr i32, ptr %buf, i32 7
  %v7 = load i32, ptr %p7
  %r = add i32 %v3, %v7
  ret i32 %r
}`
	differential(t, src, "f", 32, 5) // 15 + 35 = 50
	differential(t, src, "f", 32, 11)
}

func TestBackendGlobals(t *testing.T) {
	src := `@tab = global 8 init 1 2 3 4 5 6 7 8
define i32 @f(i32 %i) {
entry:
  %p = getelementptr i8, ptr @tab, i32 %i
  %v = load i8, ptr %p
  %z = zext i8 %v to i32
  ret i32 %z
}`
	differential(t, src, "f", 32, 0)
	differential(t, src, "f", 32, 7)
}

func TestBackendCalls(t *testing.T) {
	src := `define i32 @fact(i32 %n) {
entry:
  %z = icmp eq i32 %n, 0
  br i1 %z, label %base, label %rec
base:
  ret i32 1
rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fact(i32 %n1)
  %m = mul i32 %n, %r
  ret i32 %m
}`
	differential(t, src, "fact", 32, 6) // 720
	differential(t, src, "fact", 32, 0)
}

func TestBackendFreezeLowering(t *testing.T) {
	// §6: freeze lowers to a register copy; poison to the pinned
	// undef register. freeze(poison) - freeze(poison) with two
	// freezes may differ; the same freeze subtracted from itself is 0.
	src := `define i64 @f() {
entry:
  %x = freeze i64 poison
  %d = sub i64 %x, %x
  ret i64 %d
}`
	got, _ := compileAndRun(t, src, "f")
	if got != 0 {
		t.Errorf("freeze stability violated in lowering: got %d", got)
	}
	// Check the copy-from-UR pattern exists.
	mod := ir.MustParseModule(src)
	prog, err := CompileModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	foundCopyFromUR := false
	for _, b := range prog.Funcs[0].Blocks {
		for _, in := range b {
			if in.Op == target.MOVrr && in.Src == target.UR {
				foundCopyFromUR = true
			}
		}
	}
	if !foundCopyFromUR {
		t.Errorf("freeze(poison) should lower to a copy from the pinned undef register:\n%s", dumpProgram(prog))
	}
}

func TestBackendSelect(t *testing.T) {
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp ugt i32 %a, %b
  %m = select i1 %c, i32 %a, i32 %b
  ret i32 %m
}`
	differential(t, src, "f", 32, 3, 9)
	differential(t, src, "f", 32, 9, 3)
}

func TestBackendRegisterPressureSpills(t *testing.T) {
	// Force spilling: many simultaneously live values.
	var b strings.Builder
	b.WriteString("define i64 @f(i64 %a, i64 %b) {\nentry:\n")
	for i := 0; i < 20; i++ {
		b.WriteString("  %v" + string(rune('a'+i)) + " = add i64 %a, " + itoa(i) + "\n")
	}
	b.WriteString("  %s0 = add i64 %va, %vb\n")
	for i := 2; i < 20; i++ {
		b.WriteString("  %s" + itoa(i-1) + " = add i64 %s" + itoa(i-2) + ", %v" + string(rune('a'+i)) + "\n")
	}
	b.WriteString("  ret i64 %s18\n}\n")
	differential(t, b.String(), "f", 64, 1000, 0)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func TestBackendRandomDifferential(t *testing.T) {
	// Randomized straight-line differential testing against the
	// interpreter on i16.
	rng := rand.New(rand.NewSource(7))
	ops := []string{"add", "sub", "mul", "and", "or", "xor"}
	for iter := 0; iter < 60; iter++ {
		var b strings.Builder
		b.WriteString("define i16 @f(i16 %a, i16 %b) {\nentry:\n")
		prev := []string{"%a", "%b"}
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			x := prev[rng.Intn(len(prev))]
			y := prev[rng.Intn(len(prev))]
			name := "%t" + itoa(i)
			b.WriteString("  " + name + " = " + op + " i16 " + x + ", " + y + "\n")
			prev = append(prev, name)
		}
		b.WriteString("  ret i16 " + prev[len(prev)-1] + "\n}\n")
		differential(t, b.String(), "f", 16, uint64(rng.Intn(65536)), uint64(rng.Intn(65536)))
	}
}

func TestEncoderSizes(t *testing.T) {
	src := `define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  ret i32 %x
}`
	mod := ir.MustParseModule(src)
	prog, err := CompileModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	sz := target.ProgramSize(prog)
	if sz == 0 || sz%16 != 0 {
		t.Errorf("program size %d not positive multiple of 16", sz)
	}
	// Per-instruction sizes are sane.
	for _, b := range prog.Funcs[0].Blocks {
		for _, in := range b {
			s := target.InstrSize(in)
			if s == 0 || s > 12 {
				t.Errorf("instr %s has size %d", in, s)
			}
		}
	}
}

func TestLEAQuirkLatency(t *testing.T) {
	// The Queens anecdote: LEA with a high register is slower.
	fast := target.Instr{Op: target.LEA, Dst: target.R0, Src: target.R1, Src2: target.R2, Scale: 4}
	slow := target.Instr{Op: target.LEA, Dst: target.R0, Src: target.R13, Src2: target.R2, Scale: 4}
	p := &target.Program{Funcs: []*target.MFunc{{Name: "f", Blocks: [][]target.Instr{{fast, slow, {Op: target.RET}}}}}}
	m := target.NewMachine(p)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// fast=1, slow=3, ret=2.
	if m.Cycles != 6 {
		t.Errorf("cycles = %d, want 6 (LEA quirk)", m.Cycles)
	}
}

func TestBackendVectorRejected(t *testing.T) {
	src := `define <2 x i16> @f(<2 x i16> %v) {
entry:
  ret <2 x i16> %v
}`
	mod := ir.MustParseModule(src)
	if _, err := CompileModule(mod); err == nil {
		t.Error("vector function should be rejected by VX64")
	}
}

func TestBackendSpillsAcrossCalls(t *testing.T) {
	// Values live across a call must survive the callee clobbering
	// every register: the allocator pre-spills them.
	src := `define i64 @id(i64 %x) {
entry:
  ret i64 %x
}

define i64 @f(i64 %a, i64 %b) {
entry:
  %p = mul i64 %a, %b
  %q = add i64 %a, %b
  %r1 = call i64 @id(i64 %p)
  %r2 = call i64 @id(i64 %q)
  %s1 = add i64 %r1, %p
  %s2 = add i64 %s1, %q
  %s3 = add i64 %s2, %r2
  ret i64 %s3
}`
	differential(t, src, "f", 64, 6, 7)
	differential(t, src, "f", 64, 1000000, 3)
}

func TestBackendManySpilledOperands(t *testing.T) {
	// Both operands of an instruction spilled, plus a spilled
	// destination: exercises the scratch-register paths.
	var b strings.Builder
	b.WriteString("define i64 @f(i64 %a, i64 %b) {\nentry:\n")
	for i := 0; i < 24; i++ {
		b.WriteString("  %v" + itoa(i) + " = add i64 %a, " + itoa(i*3) + "\n")
	}
	// Sum everything so all 24 values are simultaneously live.
	b.WriteString("  %s0 = add i64 %v0, %v1\n")
	for i := 2; i < 24; i++ {
		b.WriteString("  %s" + itoa(i-1) + " = add i64 %s" + itoa(i-2) + ", %v" + itoa(i) + "\n")
	}
	b.WriteString("  ret i64 %s22\n}\n")
	differential(t, b.String(), "f", 64, 11, 0)
}

func TestBackendCallInLoop(t *testing.T) {
	src := `define i32 @double(i32 %x) {
entry:
  %r = add i32 %x, %x
  ret i32 %r
}

define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc1, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %d = call i32 @double(i32 %i)
  %acc1 = add i32 %acc, %d
  %i1 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}`
	differential(t, src, "f", 32, 10) // 2 * 45 = 90
	differential(t, src, "f", 32, 0)
}

func TestPeepholeRemovesSelfMoves(t *testing.T) {
	src := `define i32 @f(i32 %a) {
entry:
  %r = add i32 %a, 1
  ret i32 %r
}`
	prog, err := CompileModule(ir.MustParseModule(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range prog.Funcs[0].Blocks {
		for _, in := range b {
			if in.Op == target.MOVrr && in.Dst == in.Src {
				t.Errorf("self-move survived the peephole: %s", in)
			}
		}
	}
}

// §5.2 at the MI level: expanding conditional moves into branches is
// sound without freeze, because poison does not exist below ISel.
func TestExpandCMovs(t *testing.T) {
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp ugt i32 %a, %b
  %m = select i1 %c, i32 %a, i32 %b
  %c2 = icmp ult i32 %m, 100
  %m2 = select i1 %c2, i32 %m, i32 100
  ret i32 %m2
}`
	mod := ir.MustParseModule(src)
	prog, err := CompileModuleOpts(mod, Options{ExpandCMovs: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range prog.Funcs[0].Blocks {
		for _, in := range b {
			if in.Op == target.CMOVcc {
				t.Fatalf("cmov survived expansion:\n%s", dumpProgram(prog))
			}
		}
	}
	for _, c := range [][2]uint64{{3, 9}, {9, 3}, {200, 500}, {500, 200}, {7, 7}} {
		want := c[0]
		if c[1] > want {
			want = c[1]
		}
		if want > 100 {
			want = 100
		}
		m := target.NewMachine(prog)
		for i := 1; i >= 0; i-- {
			m.Regs[target.SP] -= 8
			for by := uint(0); by < 8; by++ {
				m.Mem[m.Regs[target.SP]+uint64(by)] = byte(c[i] >> (8 * by))
			}
		}
		got, err := m.Run(0)
		if err != nil {
			t.Fatalf("simulate: %v\n%s", err, dumpProgram(prog))
		}
		if got != want {
			t.Errorf("f(%d,%d) = %d, want %d\n%s", c[0], c[1], got, want, dumpProgram(prog))
		}
	}
}

// Expanded and unexpanded programs agree on every benchmark-sized
// kernel (differential check of the §5.2 MI transformation).
func TestExpandCMovsDifferential(t *testing.T) {
	src := `define i32 @clamped(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc1, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %big = icmp ugt i32 %i, 10
  %capped = select i1 %big, i32 10, i32 %i
  %acc1 = add i32 %acc, %capped
  %i1 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}`
	mod1 := ir.MustParseModule(src)
	mod2 := ir.MustParseModule(src)
	p1, err := CompileModule(mod1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileModuleOpts(mod2, Options{ExpandCMovs: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []uint64{0, 5, 15, 40} {
		run := func(p *target.Program) uint64 {
			m := target.NewMachine(p)
			m.Regs[target.SP] -= 8
			for by := uint(0); by < 8; by++ {
				m.Mem[m.Regs[target.SP]+uint64(by)] = byte(n >> (8 * by))
			}
			got, err := m.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			return got
		}
		if a, b := run(p1), run(p2); a != b {
			t.Errorf("n=%d: cmov %d, branches %d", n, a, b)
		}
	}
}
