package mi

import "tameir/internal/target"

// Peephole is the MI-level cleanup run after register allocation:
// self-moves (mov r, r) produced by coalescing-free allocation are
// deleted. It never touches flags or control flow.
func Peephole(p *target.Program) int {
	removed := 0
	for _, f := range p.Funcs {
		for bi, b := range f.Blocks {
			out := b[:0]
			for _, in := range b {
				if in.Op == target.MOVrr && in.Dst == in.Src {
					removed++
					continue
				}
				out = append(out, in)
			}
			f.Blocks[bi] = out
		}
	}
	return removed
}

// Inverse returns the negation of a condition code.
func condInverse(c target.Cond) target.Cond {
	switch c {
	case target.CondEQ:
		return target.CondNE
	case target.CondNE:
		return target.CondEQ
	case target.CondUGT:
		return target.CondULE
	case target.CondUGE:
		return target.CondULT
	case target.CondULT:
		return target.CondUGE
	case target.CondULE:
		return target.CondUGT
	case target.CondSGT:
		return target.CondSLE
	case target.CondSGE:
		return target.CondSLT
	case target.CondSLT:
		return target.CondSGE
	}
	return target.CondSGT // CondSLE
}

// ExpandCMovs is §5.2's reverse predication, performed where the paper
// says it belongs: "this kind of transformation may be delayed to
// lower-level IRs where poison usually does not exist". At the MI
// level there is no poison (only undef registers), so turning each
// conditional move into a branch diamond is unconditionally sound — no
// freeze needed, unlike the IR-level select→branch rewrite.
//
// Each "cmovCC dst, src" becomes:
//
//	    jCC' Lcont        ; inverted condition: skip the move
//	    jmp  Lmove
//	Lmove:  mov dst, src
//	    jmp  Lcont
//	Lcont:  ...rest of the block...
//
// New blocks are appended, so existing branch targets stay valid. It
// returns the number of conditional moves expanded.
func ExpandCMovs(p *target.Program) int {
	expanded := 0
	for _, f := range p.Funcs {
		for bi := 0; bi < len(f.Blocks); bi++ {
			b := f.Blocks[bi]
			for k, in := range b {
				if in.Op != target.CMOVcc {
					continue
				}
				moveIdx := len(f.Blocks)
				contIdx := moveIdx + 1
				prefix := append(append([]target.Instr(nil), b[:k]...),
					target.Instr{Op: target.Jcc, Cond: condInverse(in.Cond), Target: contIdx},
					target.Instr{Op: target.JMP, Target: moveIdx},
				)
				moveBlock := []target.Instr{
					{Op: target.MOVrr, Dst: in.Dst, Src: in.Src},
					{Op: target.JMP, Target: contIdx},
				}
				contBlock := append([]target.Instr(nil), b[k+1:]...)
				f.Blocks[bi] = prefix
				f.Blocks = append(f.Blocks, moveBlock, contBlock)
				expanded++
				break // the tail now lives in contBlock; rescan continues there
			}
		}
	}
	return expanded
}
