package mi

import (
	"fmt"
	"sort"

	"tameir/internal/target"
)

// Register allocation: liveness analysis over virtual registers,
// coarse live intervals, and a linear scan over target.R0..R11.
// Virtual registers live across a CALL are pre-spilled (the calling
// convention is caller-clobbers-everything), and spilled values are
// accessed through the two scratch registers R12/R13.
//
// The paper's prototype "reserves a register for each poison value";
// VX64 reserves the single pinned undef register target.UR, which the
// allocator never touches — the §6 lowering reads it directly.

// regUses returns (uses, defs) of virtual or physical registers for an
// instruction. Two-address instructions (DstIsRead) report Dst in
// both.
func regUses(in VInstr) (uses []int, defs []int) {
	add := func(s *[]int, r int) {
		if r >= 0 {
			*s = append(*s, r)
		}
	}
	switch in.Op {
	case target.MOVri, target.SETcc, target.POP:
		add(&defs, in.Dst)
	case target.MOVrr, target.MOVSX, target.MOVZX:
		add(&defs, in.Dst)
		add(&uses, in.Src)
	case target.ADDrr, target.SUBrr, target.IMULrr, target.ANDrr, target.ORrr,
		target.XORrr, target.SHLrr, target.SHRrr, target.SARrr,
		target.UDIVrr, target.SDIVrr, target.UREMrr, target.SREMrr,
		target.CMOVcc:
		add(&uses, in.Dst)
		add(&defs, in.Dst)
		add(&uses, in.Src)
	case target.ADDri, target.ANDri, target.ORri, target.XORri,
		target.SHLri, target.SHRri, target.SARri:
		add(&uses, in.Dst)
		add(&defs, in.Dst)
	case target.LEA:
		add(&defs, in.Dst)
		add(&uses, in.Src)
		if in.Scale != 0 {
			add(&uses, in.Src2)
		}
	case target.CMPrr:
		add(&uses, in.Dst)
		add(&uses, in.Src)
	case target.CMPri:
		add(&uses, in.Dst)
	case target.LOAD:
		add(&defs, in.Dst)
		add(&uses, in.Src)
	case target.STORE:
		add(&uses, in.Dst)
		add(&uses, in.Src)
	case target.PUSH:
		add(&uses, in.Src)
	}
	return uses, defs
}

// Allocate performs register allocation and returns the finished
// machine function.
func Allocate(vf *VFunc) (*target.MFunc, error) {
	nv := vf.NumV
	// Positions: global instruction index.
	blockStart := make([]int, len(vf.Blocks))
	blockEnd := make([]int, len(vf.Blocks))
	p := 0
	for bi, b := range vf.Blocks {
		blockStart[bi] = p
		p += len(b)
		blockEnd[bi] = p - 1
	}

	// Block-level liveness over virtual registers.
	succs := make([][]int, len(vf.Blocks))
	for bi, b := range vf.Blocks {
		for _, in := range b {
			switch in.Op {
			case target.JMP, target.Jcc:
				succs[bi] = append(succs[bi], in.Target)
			}
		}
		_ = b
	}
	use := make([]map[int]bool, len(vf.Blocks))
	def := make([]map[int]bool, len(vf.Blocks))
	for bi, b := range vf.Blocks {
		use[bi] = map[int]bool{}
		def[bi] = map[int]bool{}
		for _, in := range b {
			us, ds := regUses(in)
			for _, u := range us {
				if u >= firstVirtual && !def[bi][u] {
					use[bi][u] = true
				}
			}
			for _, d := range ds {
				if d >= firstVirtual {
					def[bi][d] = true
				}
			}
		}
	}
	liveIn := make([]map[int]bool, len(vf.Blocks))
	liveOut := make([]map[int]bool, len(vf.Blocks))
	for i := range liveIn {
		liveIn[i] = map[int]bool{}
		liveOut[i] = map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for bi := len(vf.Blocks) - 1; bi >= 0; bi-- {
			out := map[int]bool{}
			for _, s := range succs[bi] {
				for v := range liveIn[s] {
					out[v] = true
				}
			}
			in := map[int]bool{}
			for v := range out {
				if !def[bi][v] {
					in[v] = true
				}
			}
			for v := range use[bi] {
				in[v] = true
			}
			if len(out) != len(liveOut[bi]) || len(in) != len(liveIn[bi]) {
				changed = true
			}
			liveOut[bi], liveIn[bi] = out, in
		}
	}

	// Coarse intervals.
	start := make([]int, nv)
	end := make([]int, nv)
	for v := range start {
		start[v] = -1
	}
	touch := func(v, at int) {
		if v < firstVirtual {
			return
		}
		if start[v] < 0 || at < start[v] {
			start[v] = at
		}
		if at > end[v] {
			end[v] = at
		}
	}
	pi := 0
	var callPositions []int
	for bi, b := range vf.Blocks {
		for v := range liveIn[bi] {
			touch(v, blockStart[bi])
		}
		for v := range liveOut[bi] {
			touch(v, blockEnd[bi])
		}
		for _, in := range b {
			us, ds := regUses(in)
			for _, u := range us {
				touch(u, pi)
			}
			for _, d := range ds {
				touch(d, pi)
			}
			if in.Op == target.CALL {
				callPositions = append(callPositions, pi)
			}
			pi++
		}
	}

	// Spill decisions: intervals crossing a call spill.
	spilled := map[int]bool{}
	for v := firstVirtual; v < nv; v++ {
		if start[v] < 0 {
			continue
		}
		for _, cp := range callPositions {
			if start[v] < cp && cp < end[v] {
				spilled[v] = true
				break
			}
		}
	}

	// Linear scan over the rest.
	type interval struct{ v, s, e int }
	var ivs []interval
	for v := firstVirtual; v < nv; v++ {
		if start[v] >= 0 && !spilled[v] {
			ivs = append(ivs, interval{v, start[v], end[v]})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })

	assigned := make([]int, nv) // phys reg, or -1
	for i := range assigned {
		assigned[i] = -1
	}
	freeRegs := make([]bool, target.NumAllocatable)
	for i := range freeRegs {
		freeRegs[i] = true
	}
	var active []interval
	for _, iv := range ivs {
		// Expire.
		na := active[:0]
		for _, a := range active {
			if a.e < iv.s {
				freeRegs[assigned[a.v]] = true
			} else {
				na = append(na, a)
			}
		}
		active = na
		// Assign.
		reg := -1
		for r := 0; r < target.NumAllocatable; r++ {
			if freeRegs[r] {
				reg = r
				break
			}
		}
		if reg >= 0 {
			freeRegs[reg] = false
			assigned[iv.v] = reg
			active = append(active, iv)
			continue
		}
		// Spill the active interval with the furthest end, or this one.
		worst := -1
		for i, a := range active {
			if a.e > iv.e && (worst < 0 || a.e > active[worst].e) {
				worst = i
			}
		}
		if worst >= 0 {
			victim := active[worst]
			spilled[victim.v] = true
			assigned[iv.v] = assigned[victim.v]
			assigned[victim.v] = -1
			active[worst] = iv
		} else {
			spilled[iv.v] = true
		}
	}

	// Frame slots for spills, above the alloca area.
	slotOf := map[int]int64{}
	frame := int64(vf.FrameSize)
	for v := firstVirtual; v < nv; v++ {
		if spilled[v] {
			slotOf[v] = frame
			frame += 8
		}
	}

	// Rewrite instructions.
	mf := &target.MFunc{
		Name:      vf.Name,
		FrameSize: uint32(frame),
		NumParams: vf.NumParams,
	}
	physOf := func(v int) (target.Reg, bool) {
		if v < firstVirtual {
			return target.Reg(v), true
		}
		if r := assigned[v]; r >= 0 {
			return target.Reg(r), true
		}
		return 0, false
	}
	for _, b := range vf.Blocks {
		var out []target.Instr
		for _, in := range b {
			us, ds := regUses(in)
			_ = us
			_ = ds
			// Map the (at most two) spilled uses to scratch regs.
			scratch := []target.Reg{target.R12, target.R13}
			si := 0
			regFor := func(v int, isUse bool) (target.Reg, error) {
				if v < 0 {
					return target.R0, nil
				}
				if r, ok := physOf(v); ok {
					return r, nil
				}
				// Spilled.
				if si >= len(scratch) {
					if !isUse {
						// A write-only destination may reuse the first
						// scratch: it is written after all uses are read.
						return scratch[0], nil
					}
					return 0, fmt.Errorf("mi: out of scratch registers in %s", vf.Name)
				}
				r := scratch[si]
				si++
				if isUse {
					out = append(out, target.Instr{Op: target.LOAD, Dst: r, Src: target.FP, Imm: slotOf[v], Size: 8})
				}
				return r, nil
			}

			ni := target.Instr{Op: in.Op, Imm: in.Imm, Scale: in.Scale, Size: in.Size, Cond: in.Cond, Target: in.Target}
			if in.ParamIndex > 0 {
				ni.Imm = frame + 8*int64(in.ParamIndex-1)
			}
			var spillDst int = -1
			var dstReg target.Reg

			// Dst handling depends on whether it is read.
			if in.Dst >= 0 {
				_, isDef := dstRole(in)
				isRead := in.DstIsRead || dstIsUse(in)
				r, err := regFor(in.Dst, isRead)
				if err != nil {
					return nil, err
				}
				dstReg = r
				ni.Dst = r
				if isDef && in.Dst >= firstVirtual && spilled[in.Dst] {
					spillDst = in.Dst
				}
			}
			if in.Src >= 0 {
				r, err := regFor(in.Src, true)
				if err != nil {
					return nil, err
				}
				ni.Src = r
			}
			if in.Src2 >= 0 && in.Scale != 0 {
				r, err := regFor(in.Src2, true)
				if err != nil {
					return nil, err
				}
				ni.Src2 = r
			}
			out = append(out, ni)
			if spillDst >= 0 {
				out = append(out, target.Instr{Op: target.STORE, Dst: target.FP, Src: dstReg, Imm: slotOf[spillDst], Size: 8})
			}
		}
		mf.Blocks = append(mf.Blocks, out)
	}
	return mf, nil
}

// dstRole reports whether Dst is (used, defined) for the opcode.
func dstRole(in VInstr) (used, defined bool) {
	switch in.Op {
	case target.CMPrr, target.CMPri, target.STORE:
		return true, false
	case target.MOVri, target.MOVrr, target.MOVSX, target.MOVZX,
		target.SETcc, target.LOAD, target.LEA, target.POP:
		return false, true
	}
	// ALU two-address family.
	return true, true
}

func dstIsUse(in VInstr) bool {
	u, _ := dstRole(in)
	return u
}
