// Package mi is the MachineInstr layer of the backend: instruction
// selection from the SelectionDAG, followed by linear-scan register
// allocation down to the VX64 physical registers.
//
// The paper's §6 lowering decisions live here: poison values are reads
// of the pinned undef register (target.UR) and freeze nodes select to
// plain register copies — "since taking a copy from an undef register
// effectively freezes undefinedness, we can lower freeze into a
// register copy".
package mi

import (
	"fmt"

	"tameir/internal/ir"
	"tameir/internal/sdag"
	"tameir/internal/target"
)

// firstVirtual is the first virtual register number; smaller numbers
// are VX64 physical registers.
const firstVirtual = 32

// VInstr is a machine instruction over virtual or physical registers.
// Register fields hold -1 when unused.
type VInstr struct {
	Op     target.Opcode
	Dst    int
	Src    int
	Src2   int
	Imm    int64
	Scale  uint8
	Size   uint8
	Cond   target.Cond
	Target int
	// DstIsRead marks two-address instructions that read Dst before
	// writing it.
	DstIsRead bool
	// ParamIndex, when > 0, marks a parameter load of parameter
	// ParamIndex-1: its displacement is patched to
	// finalFrameSize + 8*(ParamIndex-1) once register allocation has
	// sized the frame.
	ParamIndex int
}

// VFunc is a pre-regalloc machine function.
type VFunc struct {
	Name      string
	Blocks    [][]VInstr
	NumV      int // next unused virtual register number
	FrameSize uint32
	NumParams int
}

type iselState struct {
	fd          *sdag.FuncDAG
	vf          *VFunc
	cur         []VInstr
	memo        map[*sdag.Node]int
	fused       map[*sdag.Node]bool // icmp nodes fused into their brcond
	globalAddrs []uint32
}

// writesFlags reports whether selecting the root (or, for vreg copies,
// its yet-unemitted payload) emits a flag-writing compare.
func writesFlags(r *sdag.Node) bool {
	switch r.Op {
	case sdag.NSelect, sdag.NICmp:
		return true
	case sdag.NCopyToVReg:
		op := r.Args[0].Op
		return op == sdag.NSelect || op == sdag.NICmp
	}
	return false
}

// Select lowers a function DAG to virtual-register machine code.
// globalAddrs gives the load address of each module global (from
// target.LayoutGlobals), matching what the simulator's loader uses.
func Select(fd *sdag.FuncDAG, globalAddrs []uint32) (*VFunc, error) {
	s := &iselState{
		fd: fd,
		vf: &VFunc{
			Name:      fd.Name,
			NumV:      firstVirtual + fd.NumVRegs,
			FrameSize: fd.FrameSize,
			NumParams: fd.NumParams,
		},
		fused:       map[*sdag.Node]bool{},
		globalAddrs: globalAddrs,
	}
	// Mark cmp/branch fusion opportunities: an icmp whose single use
	// is the same block's brcond, with no flag-writing root emitted
	// between the compare and the branch.
	for _, b := range fd.Blocks {
		if len(b.Roots) == 0 {
			continue
		}
		last := b.Roots[len(b.Roots)-1]
		if last.Op != sdag.NBrCond || last.Args[0].Op != sdag.NICmp || last.Args[0].Uses != 1 {
			continue
		}
		cmp := last.Args[0]
		idx := -1
		for i, r := range b.Roots {
			if r == cmp {
				idx = i
			}
		}
		if idx < 0 {
			continue // condition computed in another block
		}
		safe := true
		for _, r := range b.Roots[idx+1 : len(b.Roots)-1] {
			if writesFlags(r) {
				safe = false
				break
			}
		}
		if safe {
			s.fused[cmp] = true
		}
	}

	// Entry block: load stack-passed parameters into their vregs.
	// Calling convention: caller pushes args left-to-right reversed so
	// arg i sits at [SP + FrameSize + 8*i] after the prologue.
	for bi, b := range fd.Blocks {
		s.cur = nil
		s.memo = map[*sdag.Node]int{}
		if bi == 0 {
			for i := 0; i < fd.NumParams; i++ {
				s.emit(VInstr{Op: target.LOAD, Dst: firstVirtual + i, Src: int(target.FP),
					Size: 8, ParamIndex: i + 1})
			}
		}
		for _, r := range b.Roots {
			if err := s.selectRoot(r); err != nil {
				return nil, err
			}
		}
		s.vf.Blocks = append(s.vf.Blocks, s.cur)
	}
	return s.vf, nil
}

func (s *iselState) emit(in VInstr) {
	// Normalize unused register fields.
	if in.Src == 0 && in.Op == target.MOVri {
		in.Src = -1
	}
	s.cur = append(s.cur, in)
}

func (s *iselState) newV() int {
	v := s.vf.NumV
	s.vf.NumV++
	return v
}

func mask(bits uint) int64 {
	return int64(ir.TruncBits(^uint64(0), bits))
}

// val returns a register holding the node's value (zero-extended to 64
// bits), emitting code on first demand.
func (s *iselState) val(n *sdag.Node) (int, error) {
	if r, ok := s.memo[n]; ok {
		return r, nil
	}
	r, err := s.selectValue(n)
	if err != nil {
		return 0, err
	}
	s.memo[n] = r
	return r, nil
}

// maskTo truncates reg to bits in place when needed.
func (s *iselState) maskTo(reg int, bits uint) {
	if bits < 64 {
		s.emit(VInstr{Op: target.ANDri, Dst: reg, Src: -1, Src2: -1, Imm: mask(bits), DstIsRead: true})
	}
}

// signExtend emits code producing sign-extension of src from `from`
// bits into a fresh register (full 64-bit signed value).
func (s *iselState) signExtend(src int, from uint) int {
	t := s.newV()
	if from == 64 {
		s.emit(VInstr{Op: target.MOVrr, Dst: t, Src: src, Src2: -1})
		return t
	}
	if from%8 == 0 {
		s.emit(VInstr{Op: target.MOVSX, Dst: t, Src: src, Src2: -1, Size: uint8(from / 8)})
		return t
	}
	// Bit-granular widths: shl/sar pair.
	s.emit(VInstr{Op: target.MOVrr, Dst: t, Src: src, Src2: -1})
	s.emit(VInstr{Op: target.SHLri, Dst: t, Src: -1, Src2: -1, Imm: int64(64 - from), DstIsRead: true})
	s.emit(VInstr{Op: target.SARri, Dst: t, Src: -1, Src2: -1, Imm: int64(64 - from), DstIsRead: true})
	return t
}

func memSize(bits uint) (uint8, error) {
	switch {
	case bits <= 8:
		return 1, nil
	case bits <= 16:
		return 2, nil
	case bits <= 32:
		return 4, nil
	case bits <= 64:
		return 8, nil
	}
	return 0, fmt.Errorf("mi: unsupported memory width %d", bits)
}

func (s *iselState) selectRoot(n *sdag.Node) error {
	switch n.Op {
	case sdag.NCopyToVReg:
		src, err := s.val(n.Args[0])
		if err != nil {
			return err
		}
		s.emit(VInstr{Op: target.MOVrr, Dst: firstVirtual + n.VReg, Src: src, Src2: -1})
		return nil
	case sdag.NStore:
		v, err := s.val(n.Args[0])
		if err != nil {
			return err
		}
		p, err := s.val(n.Args[1])
		if err != nil {
			return err
		}
		sz, err := memSize(n.Bits)
		if err != nil {
			return err
		}
		s.emit(VInstr{Op: target.STORE, Dst: p, Src: v, Src2: -1, Size: sz})
		return nil
	case sdag.NBr:
		s.emit(VInstr{Op: target.JMP, Dst: -1, Src: -1, Src2: -1, Target: n.Block})
		return nil
	case sdag.NBrCond:
		c := n.Args[0]
		if s.fused[c] {
			// The CMP was already emitted at the icmp's position;
			// flags are still valid (only CMP writes them).
			s.emit(VInstr{Op: target.Jcc, Dst: -1, Src: -1, Src2: -1, Cond: predToCond(c.Pred), Target: n.Block})
			s.emit(VInstr{Op: target.JMP, Dst: -1, Src: -1, Src2: -1, Target: n.Block2})
			return nil
		}
		r, err := s.val(c)
		if err != nil {
			return err
		}
		s.emit(VInstr{Op: target.CMPri, Dst: r, Src: -1, Src2: -1, Imm: 0})
		s.emit(VInstr{Op: target.Jcc, Dst: -1, Src: -1, Src2: -1, Cond: target.CondNE, Target: n.Block})
		s.emit(VInstr{Op: target.JMP, Dst: -1, Src: -1, Src2: -1, Target: n.Block2})
		return nil
	case sdag.NRet:
		if len(n.Args) == 1 {
			r, err := s.val(n.Args[0])
			if err != nil {
				return err
			}
			s.emit(VInstr{Op: target.MOVrr, Dst: int(target.R0), Src: r, Src2: -1})
		}
		s.emit(VInstr{Op: target.RET, Dst: -1, Src: -1, Src2: -1})
		return nil
	case sdag.NUnreachable:
		// Lower to a trapping division (like ud2): a load from null.
		s.emit(VInstr{Op: target.LOAD, Dst: int(target.R12), Src: int(target.UR), Src2: -1, Imm: 0, Size: 8})
		s.emit(VInstr{Op: target.RET, Dst: -1, Src: -1, Src2: -1})
		return nil
	case sdag.NCall:
		_, err := s.val(n)
		return err
	default:
		// Anchored computation: force emission at this program point.
		_, err := s.val(n)
		return err
	}
}

func predToCond(p ir.Pred) target.Cond {
	switch p {
	case ir.PredEQ:
		return target.CondEQ
	case ir.PredNE:
		return target.CondNE
	case ir.PredUGT:
		return target.CondUGT
	case ir.PredUGE:
		return target.CondUGE
	case ir.PredULT:
		return target.CondULT
	case ir.PredULE:
		return target.CondULE
	case ir.PredSGT:
		return target.CondSGT
	case ir.PredSGE:
		return target.CondSGE
	case ir.PredSLT:
		return target.CondSLT
	}
	return target.CondSLE
}

func (s *iselState) selectValue(n *sdag.Node) (int, error) {
	switch n.Op {
	case sdag.NConst:
		t := s.newV()
		s.emit(VInstr{Op: target.MOVri, Dst: t, Src: -1, Src2: -1, Imm: int64(n.Imm)})
		return t, nil
	case sdag.NUndefReg:
		// §6: poison becomes the pinned undef register.
		return int(target.UR), nil
	case sdag.NCopyFromVReg:
		return firstVirtual + n.VReg, nil
	case sdag.NGlobal:
		t := s.newV()
		if n.GlobalIdx >= len(s.globalAddrs) {
			return 0, fmt.Errorf("mi: global index %d out of range", n.GlobalIdx)
		}
		s.emit(VInstr{Op: target.MOVri, Dst: t, Src: -1, Src2: -1, Imm: int64(s.globalAddrs[n.GlobalIdx])})
		return t, nil
	case sdag.NFrame:
		t := s.newV()
		// Scale 0 encodes an index-less LEA off the frame pointer.
		s.emit(VInstr{Op: target.LEA, Dst: t, Src: int(target.FP), Src2: -1, Scale: 0, Imm: int64(n.FrameOff)})
		return t, nil
	case sdag.NFreeze:
		// §6: freeze selects to a register copy.
		src, err := s.val(n.Args[0])
		if err != nil {
			return 0, err
		}
		t := s.newV()
		s.emit(VInstr{Op: target.MOVrr, Dst: t, Src: src, Src2: -1})
		return t, nil
	case sdag.NBinop:
		return s.selectBinop(n)
	case sdag.NICmp:
		return s.selectICmp(n)
	case sdag.NSelect:
		c, err := s.val(n.Args[0])
		if err != nil {
			return 0, err
		}
		x, err := s.val(n.Args[1])
		if err != nil {
			return 0, err
		}
		y, err := s.val(n.Args[2])
		if err != nil {
			return 0, err
		}
		t := s.newV()
		s.emit(VInstr{Op: target.MOVrr, Dst: t, Src: y, Src2: -1})
		s.emit(VInstr{Op: target.CMPri, Dst: c, Src: -1, Src2: -1, Imm: 0})
		s.emit(VInstr{Op: target.CMOVcc, Dst: t, Src: x, Src2: -1, Cond: target.CondNE, DstIsRead: true})
		return t, nil
	case sdag.NSExt:
		src, err := s.val(n.Args[0])
		if err != nil {
			return 0, err
		}
		t := s.signExtend(src, n.FromBits)
		s.maskTo(t, n.Bits)
		return t, nil
	case sdag.NZExt:
		return s.val(n.Args[0]) // zero-extension invariant
	case sdag.NTrunc, sdag.NMask:
		src, err := s.val(n.Args[0])
		if err != nil {
			return 0, err
		}
		t := s.newV()
		s.emit(VInstr{Op: target.MOVrr, Dst: t, Src: src, Src2: -1})
		s.maskTo(t, n.Bits)
		return t, nil
	case sdag.NLoad:
		p, err := s.val(n.Args[0])
		if err != nil {
			return 0, err
		}
		sz, err := memSize(n.Bits)
		if err != nil {
			return 0, err
		}
		t := s.newV()
		s.emit(VInstr{Op: target.LOAD, Dst: t, Src: p, Src2: -1, Size: sz})
		if n.Bits%8 != 0 {
			s.maskTo(t, n.Bits)
		}
		return t, nil
	case sdag.NGEP:
		return s.selectGEP(n)
	case sdag.NCall:
		return s.selectCall(n)
	}
	return 0, fmt.Errorf("mi: cannot select %s", n.Op)
}

func (s *iselState) selectBinop(n *sdag.Node) (int, error) {
	x, err := s.val(n.Args[0])
	if err != nil {
		return 0, err
	}
	yNode := n.Args[1]
	w := n.Bits

	twoAddr := func(op target.Opcode, lhs int) (int, error) {
		t := s.newV()
		s.emit(VInstr{Op: target.MOVrr, Dst: t, Src: lhs, Src2: -1})
		if yNode.Op == sdag.NConst {
			riOp := map[target.Opcode]target.Opcode{
				target.ADDrr: target.ADDri, target.ANDrr: target.ANDri,
				target.ORrr: target.ORri, target.XORrr: target.XORri,
				target.SHLrr: target.SHLri, target.SHRrr: target.SHRri,
				target.SARrr: target.SARri,
			}[op]
			if riOp != target.OpInvalid && riOp != 0 {
				s.emit(VInstr{Op: riOp, Dst: t, Src: -1, Src2: -1, Imm: int64(yNode.Imm), DstIsRead: true})
				return t, nil
			}
		}
		y, err := s.val(yNode)
		if err != nil {
			return 0, err
		}
		s.emit(VInstr{Op: op, Dst: t, Src: y, Src2: -1, DstIsRead: true})
		return t, nil
	}

	switch n.IROp {
	case ir.OpAdd:
		t, err := twoAddr(target.ADDrr, x)
		if err != nil {
			return 0, err
		}
		s.maskTo(t, w)
		return t, nil
	case ir.OpSub:
		t, err := twoAddr(target.SUBrr, x)
		if err != nil {
			return 0, err
		}
		s.maskTo(t, w)
		return t, nil
	case ir.OpMul:
		t, err := twoAddr(target.IMULrr, x)
		if err != nil {
			return 0, err
		}
		s.maskTo(t, w)
		return t, nil
	case ir.OpAnd:
		return twoAddr(target.ANDrr, x)
	case ir.OpOr:
		return twoAddr(target.ORrr, x)
	case ir.OpXor:
		return twoAddr(target.XORrr, x)
	case ir.OpShl:
		t, err := twoAddr(target.SHLrr, x)
		if err != nil {
			return 0, err
		}
		s.maskTo(t, w)
		return t, nil
	case ir.OpLShr:
		// Inputs are zero-extended; a plain SHR is exact. An
		// over-shift produces deferred UB in the IR, so any result is
		// acceptable.
		return twoAddr(target.SHRrr, x)
	case ir.OpAShr:
		sx := s.signExtend(x, w)
		t, err := twoAddr(target.SARrr, sx)
		if err != nil {
			return 0, err
		}
		s.maskTo(t, w)
		return t, nil
	case ir.OpUDiv, ir.OpURem:
		op := target.UDIVrr
		if n.IROp == ir.OpURem {
			op = target.UREMrr
		}
		return twoAddr(op, x)
	case ir.OpSDiv, ir.OpSRem:
		sx := s.signExtend(x, w)
		y, err := s.val(yNode)
		if err != nil {
			return 0, err
		}
		sy := s.signExtend(y, w)
		op := target.SDIVrr
		if n.IROp == ir.OpSRem {
			op = target.SREMrr
		}
		s.emit(VInstr{Op: op, Dst: sx, Src: sy, Src2: -1, DstIsRead: true})
		s.maskTo(sx, w)
		return sx, nil
	}
	return 0, fmt.Errorf("mi: cannot select binop %s", n.IROp)
}

func (s *iselState) selectICmp(n *sdag.Node) (int, error) {
	a, err := s.val(n.Args[0])
	if err != nil {
		return 0, err
	}
	bN := n.Args[1]
	w := n.FromBits
	signed := n.Pred.IsSigned()
	if signed && w < 64 {
		a = s.signExtend(a, w)
	}
	if s.fused[n] {
		// Emit only the CMP; the branch supplies the Jcc.
		if bN.Op == sdag.NConst && !signed {
			s.emit(VInstr{Op: target.CMPri, Dst: a, Src: -1, Src2: -1, Imm: int64(bN.Imm)})
			return -1, nil
		}
		b, err := s.val(bN)
		if err != nil {
			return 0, err
		}
		if signed && w < 64 {
			b = s.signExtend(b, w)
		}
		s.emit(VInstr{Op: target.CMPrr, Dst: a, Src: b, Src2: -1})
		return -1, nil
	}
	b, err := s.val(bN)
	if err != nil {
		return 0, err
	}
	if signed && w < 64 {
		b = s.signExtend(b, w)
	}
	s.emit(VInstr{Op: target.CMPrr, Dst: a, Src: b, Src2: -1})
	t := s.newV()
	s.emit(VInstr{Op: target.SETcc, Dst: t, Src: -1, Src2: -1, Cond: predToCond(n.Pred)})
	return t, nil
}

func (s *iselState) selectGEP(n *sdag.Node) (int, error) {
	base, err := s.val(n.Args[0])
	if err != nil {
		return 0, err
	}
	idx, err := s.val(n.Args[1])
	if err != nil {
		return 0, err
	}
	if n.FromBits < 64 {
		idx = s.signExtend(idx, n.FromBits)
	}
	t := s.newV()
	switch n.ElemSize {
	case 1, 2, 4, 8:
		s.emit(VInstr{Op: target.LEA, Dst: t, Src: base, Src2: idx, Scale: uint8(n.ElemSize)})
	default:
		s.emit(VInstr{Op: target.MOVri, Dst: t, Src: -1, Src2: -1, Imm: int64(n.ElemSize)})
		s.emit(VInstr{Op: target.IMULrr, Dst: t, Src: idx, Src2: -1, DstIsRead: true})
		s.emit(VInstr{Op: target.ADDrr, Dst: t, Src: base, Src2: -1, DstIsRead: true})
	}
	return t, nil
}

func (s *iselState) selectCall(n *sdag.Node) (int, error) {
	// Stack calling convention: push args so arg i lands at
	// [callee SP entry + 8*i] — push in reverse order.
	var regs []int
	for _, a := range n.Args {
		r, err := s.val(a)
		if err != nil {
			return 0, err
		}
		regs = append(regs, r)
	}
	for i := len(regs) - 1; i >= 0; i-- {
		s.emit(VInstr{Op: target.PUSH, Dst: -1, Src: regs[i], Src2: -1})
	}
	s.emit(VInstr{Op: target.CALL, Dst: -1, Src: -1, Src2: -1, Target: n.CalleeIdx})
	if len(regs) > 0 {
		s.emit(VInstr{Op: target.ADDri, Dst: int(target.SP), Src: -1, Src2: -1, Imm: 8 * int64(len(regs)), DstIsRead: true})
	}
	t := s.newV()
	s.emit(VInstr{Op: target.MOVrr, Dst: t, Src: int(target.R0), Src2: -1})
	return t, nil
}
