package mi

import (
	"tameir/internal/ir"
	"tameir/internal/sdag"
	"tameir/internal/target"
)

// Options controls optional backend behaviour.
type Options struct {
	// ExpandCMovs lowers conditional moves into branch diamonds — the
	// §5.2 reverse predication, legal without freeze at this level
	// because MI has no poison.
	ExpandCMovs bool
}

// CompileModule runs the full backend pipeline over a module:
// IR → SelectionDAG (build, combine) → MachineInstr (select, allocate,
// peephole) → a VX64 program ready for the encoder and the simulator.
func CompileModule(mod *ir.Module) (*target.Program, error) {
	return CompileModuleOpts(mod, Options{})
}

// CompileModuleOpts is CompileModule with backend options.
func CompileModuleOpts(mod *ir.Module, opts Options) (*target.Program, error) {
	prog := &target.Program{}
	for _, g := range mod.Globals {
		prog.Globals = append(prog.Globals, target.GlobalBlob{
			Name: g.Name(), Size: g.Size, Init: append([]byte(nil), g.Init...),
		})
	}
	addrs := target.LayoutGlobals(prog.Globals)
	for _, f := range mod.Funcs {
		fd, err := sdag.Build(mod, f)
		if err != nil {
			return nil, err
		}
		sdag.Combine(fd)
		vf, err := Select(fd, addrs)
		if err != nil {
			return nil, err
		}
		mf, err := Allocate(vf)
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, mf)
	}
	Peephole(prog)
	if opts.ExpandCMovs {
		ExpandCMovs(prog)
	}
	return prog, nil
}
