// Package telemetry is the repo-wide observability layer: a
// dependency-free metrics registry (counters, gauges, histograms),
// lightweight hierarchical spans, a Prometheus-style text exposition
// plus a JSON snapshot format, and a pprof-capable debug server.
//
// The design constraint, inherited from the parallel pipeline, is
// determinism: a campaign's telemetry must be reproducible for any
// worker count, the same way its findings are. Two rules make that
// hold:
//
//  1. Every metric declares a determinism Class. Deterministic metrics
//     are pure functions of the work partition (per-shard counts,
//     verdicts, per-shard cache traffic); Scheduling metrics depend on
//     wall clock or on cross-shard races (span durations, shared-memo
//     hit splits, worker utilization). Expositions group the two
//     separately, so the deterministic section of a snapshot is
//     byte-identical across worker counts while the scheduling section
//     is honest about what it is.
//
//  2. Shard-local registries merge into the campaign registry in shard
//     order (Registry.Merge), the same discipline passes.Stats.Merge
//     follows. Counter and histogram merges are commutative sums, so
//     merged deterministic totals never depend on scheduling.
//
// Hot paths are atomic loads/adds on pre-resolved handles: resolving a
// metric by name takes a lock, incrementing it does not. Layers that
// cannot afford even an uncontended atomic per event (the execution
// engine's step loop) accumulate into plain per-goroutine structs and
// publish once per run; the registry is the meeting point, not the
// accounting mechanism.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Class says whether a metric's value is reproducible across runs of
// the same work partition.
type Class uint8

const (
	// Deterministic: the value is a pure function of the inputs and the
	// shard partition — identical for any worker count.
	Deterministic Class = iota
	// Scheduling: the value depends on goroutine scheduling or the wall
	// clock (durations, shared-cache hit splits, utilization).
	Scheduling
)

// String returns the class name used in expositions.
func (c Class) String() string {
	if c == Scheduling {
		return "scheduling"
	}
	return "deterministic"
}

// Kind discriminates metric types.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus-style kind name.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "counter"
}

// HistBuckets is the number of exponential histogram buckets: bucket i
// counts observations ≤ 2^i, plus a final +Inf bucket. The range (1 …
// 2^31) covers everything the repo observes — behaviour-set sizes,
// nanosecond pass timings, frame counts.
const HistBuckets = 33

// metric is one registered time series. Exactly one of the value
// fields is live, selected by kind.
type metric struct {
	name  string
	kind  Kind
	class Class
	help  string

	c atomic.Uint64 // KindCounter
	g atomic.Int64  // KindGauge
	h *histData     // KindHistogram
}

type histData struct {
	buckets [HistBuckets]atomic.Uint64 // cumulative on snapshot, raw per-bucket here
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid no-op sink: every instrument
// it hands out silently discards updates, so instrumented code never
// needs a "telemetry enabled?" branch of its own.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// resolve returns the named metric, creating it on first use. Names
// are expected to follow the schema documented in DESIGN.md
// ("Telemetry"): snake_case <subsystem>_<noun>[_<unit>][_total], with
// optional {key="value"} labels appended by L. Re-registering a name
// with a different kind or class is a programming error and panics.
func (r *Registry) resolve(name string, kind Kind, class Class, help string) *metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metrics[name]
	if m == nil {
		m = &metric{name: name, kind: kind, class: class, help: help}
		if kind == KindHistogram {
			m.h = &histData{}
		}
		r.metrics[name] = m
		return m
	}
	if m.kind != kind || m.class != class {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s/%s (was %s/%s)",
			name, kind, class, m.kind, m.class))
	}
	return m
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string, class Class, help string) Counter {
	return Counter{r.resolve(name, KindCounter, class, help)}
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string, class Class, help string) Gauge {
	return Gauge{r.resolve(name, KindGauge, class, help)}
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string, class Class, help string) Histogram {
	return Histogram{r.resolve(name, KindHistogram, class, help)}
}

// Counter is a monotonically increasing uint64. The zero Counter (from
// a nil registry) discards updates.
type Counter struct{ m *metric }

// Add increments the counter by n.
func (c Counter) Add(n uint64) {
	if c.m != nil {
		c.m.c.Add(n)
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() uint64 {
	if c.m == nil {
		return 0
	}
	return c.m.c.Load()
}

// Gauge is a settable int64 (sizes, depths, signed deltas). The zero
// Gauge discards updates.
type Gauge struct{ m *metric }

// Set replaces the gauge value.
func (g Gauge) Set(v int64) {
	if g.m != nil {
		g.m.g.Store(v)
	}
}

// Add adjusts the gauge by delta (negative to decrease).
func (g Gauge) Add(delta int64) {
	if g.m != nil {
		g.m.g.Add(delta)
	}
}

// Value returns the current gauge value.
func (g Gauge) Value() int64 {
	if g.m == nil {
		return 0
	}
	return g.m.g.Load()
}

// Histogram counts observations in exponential power-of-two buckets
// (≤1, ≤2, ≤4, …, ≤2^31, +Inf). The zero Histogram discards updates.
type Histogram struct{ m *metric }

// BucketOf maps a value to its bucket index — exported for callers
// that accumulate bucket counts themselves (e.g. with atomics) before
// folding them in via AddBuckets.
func BucketOf(v uint64) int { return bucketOf(v) }

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(v - 1) // smallest i with v <= 2^i
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one observation.
func (h Histogram) Observe(v uint64) {
	if h.m == nil {
		return
	}
	d := h.m.h
	d.buckets[bucketOf(v)].Add(1)
	d.count.Add(1)
	d.sum.Add(v)
}

// AddBuckets folds locally accumulated bucket counts (same power-of-two
// layout as Observe) plus their sum into the histogram in one shot —
// the publish path for per-goroutine collectors.
func (h Histogram) AddBuckets(counts *[HistBuckets]uint64, sum uint64) {
	if h.m == nil {
		return
	}
	d := h.m.h
	var n uint64
	for i, c := range counts {
		if c != 0 {
			d.buckets[i].Add(c)
			n += c
		}
	}
	d.count.Add(n)
	d.sum.Add(sum)
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 {
	if h.m == nil {
		return 0
	}
	return h.m.h.count.Load()
}

// Sum returns the sum of observed values.
func (h Histogram) Sum() uint64 {
	if h.m == nil {
		return 0
	}
	return h.m.h.sum.Load()
}

// LocalHist is a plain, single-goroutine histogram with the registry
// bucket layout, for hot paths that publish once at the end (see
// Histogram.AddBuckets).
type LocalHist struct {
	Buckets [HistBuckets]uint64
	Sum     uint64
}

// Observe records one observation.
func (l *LocalHist) Observe(v uint64) {
	l.Buckets[bucketOf(v)]++
	l.Sum += v
}

// L renders a metric name with labels in canonical form: keys sorted,
// values quoted, e.g. L("shard_funcs_total", "shard", "0003") →
// `shard_funcs_total{shard="0003"}`. Canonical label order keeps
// snapshot sorting (and therefore the deterministic exposition)
// stable no matter which call site registered the series first.
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("telemetry: L requires key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Merge folds every metric of src into r, creating metrics that do not
// exist yet (kind/class mismatches panic, like re-registration).
// Counters and histograms add; gauges add too, because every gauge in
// this repo is shard-additive (resident sizes, busy seconds). Merging
// per-shard registries in shard order is the deterministic-merge
// discipline; for the commutative sums here even the order is
// immaterial, which is what makes deterministic totals survive any
// scheduling.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for _, m := range src.snapshotMetrics() {
		switch m.kind {
		case KindCounter:
			r.Counter(m.name, m.class, m.help).Add(m.c.Load())
		case KindGauge:
			r.Gauge(m.name, m.class, m.help).Add(m.g.Load())
		case KindHistogram:
			dst := r.Histogram(m.name, m.class, m.help)
			var counts [HistBuckets]uint64
			for i := range counts {
				counts[i] = m.h.buckets[i].Load()
			}
			dst.AddBuckets(&counts, m.h.sum.Load())
		}
	}
}

// snapshotMetrics returns the registered metrics sorted by name.
func (r *Registry) snapshotMetrics() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
