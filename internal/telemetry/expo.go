package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exported time series in a Snapshot. Exactly one of the
// value groups is meaningful, selected by Kind: Value for counters and
// gauges; Buckets/Count/Sum for histograms. Buckets are cumulative
// (bucket i counts observations ≤ 2^i; the last bucket equals Count).
type Sample struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Class string `json:"class"`
	Help  string `json:"help,omitempty"`

	Value   int64    `json:"value,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name. It
// is the unit of both exposition formats.
type Snapshot struct {
	Samples []Sample `json:"metrics"`
}

// Snapshot copies the registry's current values, sorted by metric
// name. Concurrent writers may land between individual loads — a
// snapshot taken mid-campaign is approximate; one taken after the
// merge barrier is exact.
func (r *Registry) Snapshot() Snapshot {
	ms := r.snapshotMetrics()
	snap := Snapshot{Samples: make([]Sample, 0, len(ms))}
	for _, m := range ms {
		s := Sample{Name: m.name, Kind: m.kind.String(), Class: m.class.String(), Help: m.help}
		switch m.kind {
		case KindCounter:
			s.Value = int64(m.c.Load())
		case KindGauge:
			s.Value = m.g.Load()
		case KindHistogram:
			s.Buckets = make([]uint64, HistBuckets)
			var cum uint64
			for i := range s.Buckets {
				cum += m.h.buckets[i].Load()
				s.Buckets[i] = cum
			}
			s.Count = m.h.count.Load()
			s.Sum = m.h.sum.Load()
		}
		snap.Samples = append(snap.Samples, s)
	}
	return snap
}

// bucketLabel renders the upper bound of histogram bucket i.
func bucketLabel(i int) string {
	if i >= HistBuckets-1 {
		return "+Inf"
	}
	return strconv.FormatUint(uint64(1)<<uint(i), 10)
}

// withSuffix appends a sub-series suffix (_bucket, _sum, _count) to a
// possibly-labelled name, and optionally merges an extra le label:
// withSuffix(`h{pass="gvn"}`, "_bucket", `le="4"`) →
// `h_bucket{le="4",pass="gvn"}` (labels re-sorted to stay canonical).
func withSuffix(name, suffix, extraLabel string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
	}
	all := []string{}
	if labels != "" {
		all = append(all, splitLabels(labels)...)
	}
	if extraLabel != "" {
		all = append(all, extraLabel)
	}
	if len(all) == 0 {
		return base + suffix
	}
	sort.Strings(all)
	return base + suffix + "{" + strings.Join(all, ",") + "}"
}

// splitLabels splits a canonical label body on commas that are not
// inside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// writeSample emits one sample in Prometheus text format.
func writeSample(w io.Writer, s Sample) {
	fmt.Fprintf(w, "# TYPE %s %s\n", metricBase(s.Name), s.Kind)
	if s.Help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", metricBase(s.Name), s.Help)
	}
	switch s.Kind {
	case "histogram":
		for i, cum := range s.Buckets {
			// Skip interior empty prefixes? No: cumulative buckets are
			// monotone; emit only buckets that add information — the
			// first nonzero, every change point, and +Inf.
			if i > 0 && cum == s.Buckets[i-1] && i != len(s.Buckets)-1 {
				continue
			}
			fmt.Fprintf(w, "%s %d\n", withSuffix(s.Name, "_bucket", `le="`+bucketLabel(i)+`"`), cum)
		}
		fmt.Fprintf(w, "%s %d\n", withSuffix(s.Name, "_sum", ""), s.Sum)
		fmt.Fprintf(w, "%s %d\n", withSuffix(s.Name, "_count", ""), s.Count)
	default:
		fmt.Fprintf(w, "%s %d\n", s.Name, s.Value)
	}
}

// metricBase strips the label part of a series name.
func metricBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WriteText renders the snapshot as Prometheus-style text in two
// sections: deterministic first, scheduling second. The deterministic
// section is the reproducibility contract — for a fixed campaign it is
// byte-identical no matter the worker count. Section markers are
// comments, so the whole output stays parseable by standard tooling.
func (s Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, class := range []string{"deterministic", "scheduling"} {
		any := false
		for _, sm := range s.Samples {
			if sm.Class != class {
				continue
			}
			if !any {
				fmt.Fprintf(bw, "# == %s ==\n", class)
				any = true
			}
			writeSample(bw, sm)
		}
	}
	return bw.Flush()
}

// DeterministicText renders only the deterministic section — the byte
// string that determinism tests compare across worker counts.
func (s Snapshot) DeterministicText() string {
	var b strings.Builder
	for _, sm := range s.Samples {
		if sm.Class != "deterministic" {
			continue
		}
		writeSample(&b, sm)
	}
	return b.String()
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ParseJSON reads a snapshot previously written by WriteJSON.
func ParseJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: parse json snapshot: %w", err)
	}
	return s, nil
}

// ParseText reads a text exposition back into name→value pairs
// (histogram sub-series appear under their suffixed names, e.g.
// check_set_size_count). It is the checker's half of the format
// round-trip: WriteText output must always parse.
func ParseText(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// Value is everything after the last space; the name may
		// contain spaces only inside quoted label values, which never
		// end the line.
		i := strings.LastIndexByte(text, ' ')
		if i < 0 {
			return nil, fmt.Errorf("telemetry: text line %d: no value: %q", line, text)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(text[i+1:]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: text line %d: bad value: %q", line, text)
		}
		out[strings.TrimSpace(text[:i])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: scan text exposition: %w", err)
	}
	return out, nil
}

// WriteFile renders the snapshot to path, the CLI contract behind
// every -metrics flag: "-" streams the text exposition to stdout, a
// path ending in .json gets the JSON snapshot, anything else gets the
// text exposition.
func (s Snapshot) WriteFile(path string) error {
	if path == "-" {
		return s.WriteText(os.Stdout)
	}
	var buf bytes.Buffer
	var err error
	if strings.HasSuffix(path, ".json") {
		err = s.WriteJSON(&buf)
	} else {
		err = s.WriteText(&buf)
	}
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Get returns the sample with the given series name, if present.
func (s Snapshot) Get(name string) (Sample, bool) {
	// Samples are sorted by name.
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= name })
	if i < len(s.Samples) && s.Samples[i].Name == name {
		return s.Samples[i], true
	}
	return Sample{}, false
}
