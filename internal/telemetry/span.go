package telemetry

import (
	"time"

	"tameir/internal/telemetry/trace"
)

// Scope is a named position in the span hierarchy, bound to a
// registry. Spans started under a scope record into series labelled
// with the scope's slash-joined path, e.g.
// span_wall_ns{span="campaign/shard/check"}. A nil *Scope is the
// disabled state: Child and Start are no-ops returning nil, so
// instrumented code never branches on "spans enabled?" itself. Code
// that cannot afford even that nil check per event (the engine step
// loop) gets the check compiled out instead — see core.Options.
//
// A scope can additionally carry a trace.Recorder (see WithTrace):
// then every span it times also lands in the flight recorder as a
// complete event on the scope's track, and Instant/Counter emit
// point events. Without a recorder those are no-ops, so the
// histogram-only path is unchanged.
//
// All span series are Scheduling class by construction: wall time is
// never reproducible.
type Scope struct {
	reg   *Registry
	path  string
	rec   *trace.Recorder
	track int
}

// NewScope returns a root scope recording into reg. Returns nil (the
// disabled scope) when reg is nil.
func NewScope(reg *Registry, name string) *Scope {
	if reg == nil {
		return nil
	}
	return &Scope{reg: reg, path: name}
}

// Child returns a scope one level deeper in the hierarchy. The
// recorder and track carry over.
func (s *Scope) Child(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, path: s.path + "/" + name, rec: s.rec, track: s.track}
}

// WithTrace returns a copy of the scope that also emits every span,
// instant, and counter into rec on the given track. A nil rec (or a
// nil scope) returns the scope unchanged — tracing stays opt-in per
// call site.
func (s *Scope) WithTrace(rec *trace.Recorder, track int) *Scope {
	if s == nil || rec == nil {
		return s
	}
	return &Scope{reg: s.reg, path: s.path, rec: rec, track: track}
}

// Traced reports whether spans under this scope reach a recorder.
func (s *Scope) Traced() bool { return s != nil && s.rec != nil }

// Instant emits a point event named under the scope's path into the
// attached recorder (no-op without one). Args are flattened key/value
// pairs carried into the trace.
func (s *Scope) Instant(name string, args ...string) {
	if s == nil || s.rec == nil {
		return
	}
	s.rec.Instant(s.track, s.path+"/"+name, args...)
}

// Counter emits a numeric sample into the attached recorder (no-op
// without one). Unlike registry counters the name is NOT path-joined:
// counter series are trace-global so CI assertions can read them
// without knowing which scope sampled them.
func (s *Scope) Counter(name string, value int64) {
	if s == nil || s.rec == nil {
		return
	}
	s.rec.Counter(s.track, name, value)
}

// Span is one in-flight timed region. End it exactly once.
type Span struct {
	hist  Histogram
	start time.Time
	rec   *trace.Recorder
	name  string
	track int
}

// Start begins a span named under the scope's path. The histogram
// handle is resolved here (one registry lock), so End is lock-free.
func (s *Scope) Start(name string) *Span {
	if s == nil {
		return nil
	}
	path := s.path
	if name != "" {
		path = path + "/" + name
	}
	sp := &Span{
		hist:  s.reg.Histogram(L("span_wall_ns", "span", path), Scheduling, "span wall time in nanoseconds"),
		start: time.Now(),
	}
	if s.rec != nil {
		sp.rec, sp.name, sp.track = s.rec, path, s.track
	}
	return sp
	// The histogram's _count is the number of times the span ran and
	// _sum the total nanoseconds — the same two numbers a classic
	// start/stop timer pair would report, plus a latency distribution.
}

// End records the span's elapsed wall time. Safe on a nil span.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	d := time.Since(sp.start)
	sp.hist.Observe(uint64(d))
	if sp.rec != nil {
		sp.rec.Complete(sp.track, sp.name, sp.start, d)
	}
}

// Timed runs fn inside a span — convenience for whole-function
// regions.
func (s *Scope) Timed(name string, fn func()) {
	sp := s.Start(name)
	fn()
	sp.End()
}
