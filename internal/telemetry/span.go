package telemetry

import (
	"time"
)

// Scope is a named position in the span hierarchy, bound to a
// registry. Spans started under a scope record into series labelled
// with the scope's slash-joined path, e.g.
// span_wall_ns{span="campaign/shard/check"}. A nil *Scope is the
// disabled state: Child and Start are no-ops returning nil, so
// instrumented code never branches on "spans enabled?" itself. Code
// that cannot afford even that nil check per event (the engine step
// loop) gets the check compiled out instead — see core.Options.
//
// All span series are Scheduling class by construction: wall time is
// never reproducible.
type Scope struct {
	reg  *Registry
	path string
}

// NewScope returns a root scope recording into reg. Returns nil (the
// disabled scope) when reg is nil.
func NewScope(reg *Registry, name string) *Scope {
	if reg == nil {
		return nil
	}
	return &Scope{reg: reg, path: name}
}

// Child returns a scope one level deeper in the hierarchy.
func (s *Scope) Child(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, path: s.path + "/" + name}
}

// Span is one in-flight timed region. End it exactly once.
type Span struct {
	hist  Histogram
	start time.Time
}

// Start begins a span named under the scope's path. The histogram
// handle is resolved here (one registry lock), so End is lock-free.
func (s *Scope) Start(name string) *Span {
	if s == nil {
		return nil
	}
	path := s.path
	if name != "" {
		path = path + "/" + name
	}
	return &Span{
		hist:  s.reg.Histogram(L("span_wall_ns", "span", path), Scheduling, "span wall time in nanoseconds"),
		start: time.Now(),
	}
	// The histogram's _count is the number of times the span ran and
	// _sum the total nanoseconds — the same two numbers a classic
	// start/stop timer pair would report, plus a latency distribution.
}

// End records the span's elapsed wall time. Safe on a nil span.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.hist.Observe(uint64(time.Since(sp.start)))
}

// Timed runs fn inside a span — convenience for whole-function
// regions.
func (s *Scope) Timed(name string, fn func()) {
	sp := s.Start(name)
	fn()
	sp.End()
}
