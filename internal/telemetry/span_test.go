package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tameir/internal/telemetry/trace"
)

func TestScopeWithTraceEmitsEvents(t *testing.T) {
	reg := NewRegistry()
	rec := trace.NewRecorder(0)
	scope := NewScope(reg, "campaign").WithTrace(rec, 3)
	if !scope.Traced() {
		t.Fatal("scope not traced after WithTrace")
	}

	scope.Start("s3").End()
	scope.Child("inner").Start("step").End()
	scope.Instant("finding", "pass", "sccp")
	scope.Counter("findings", 7)

	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byName := map[string]trace.Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	sp, ok := byName["campaign/s3"]
	if !ok || sp.Phase != trace.PhaseComplete || sp.Track != 3 {
		t.Fatalf("span event wrong: %+v", sp)
	}
	if _, ok := byName["campaign/inner/step"]; !ok {
		t.Fatal("child scope did not inherit the recorder")
	}
	fd, ok := byName["campaign/finding"]
	if !ok || fd.Phase != trace.PhaseInstant || fd.Arg("pass") != "sccp" {
		t.Fatalf("instant wrong: %+v", fd)
	}
	if c := byName["findings"]; c.Phase != trace.PhaseCounter || c.Value != 7 {
		t.Fatalf("counter wrong: %+v", c)
	}

	// The histogram side must be unchanged by tracing.
	if s, ok := reg.Snapshot().Get(L("span_wall_ns", "span", "campaign/s3")); !ok || s.Count != 1 {
		t.Fatalf("span histogram missing or wrong: %+v", s)
	}
}

func TestScopeWithoutTraceIsUnchanged(t *testing.T) {
	reg := NewRegistry()
	scope := NewScope(reg, "campaign")
	if scope.WithTrace(nil, 0) != scope {
		t.Fatal("WithTrace(nil) must return the scope unchanged")
	}
	if scope.Traced() {
		t.Fatal("untraced scope claims Traced")
	}
	// All trace-side calls are silent no-ops.
	scope.Instant("x")
	scope.Counter("y", 1)
	scope.Start("z").End()
	var nilScope *Scope
	if nilScope.WithTrace(trace.NewRecorder(0), 0) != nil {
		t.Fatal("nil scope must stay nil")
	}
	nilScope.Instant("x")
	nilScope.Counter("y", 1)
}

func TestProgressLineClear(t *testing.T) {
	var buf bytes.Buffer
	pl := NewProgressLine(&buf, time.Nanosecond)
	pl.Flush("working 1/10")
	pl.Clear()
	out := buf.String()
	if !strings.HasSuffix(out, "\r"+strings.Repeat(" ", len("working 1/10"))+"\r") {
		t.Fatalf("Clear did not blank the line: %q", out)
	}
	// Next update redraws from column zero with no stale padding.
	buf.Reset()
	pl.Flush("done")
	if got := buf.String(); got != "\rdone" {
		t.Fatalf("redraw after Clear wrong: %q", got)
	}
	// Clear on a cleared (or finished, or nil) line is a no-op.
	buf.Reset()
	pl.Clear()
	pl.Finish()
	pl.Clear()
	var nilPL *ProgressLine
	nilPL.Clear()
}
