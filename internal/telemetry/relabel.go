package telemetry

import (
	"strconv"
	"strings"
)

// MergeLabeled is Merge with extra labels stamped onto every series:
// each of src's metrics is folded into r under its name re-rendered
// with the given key/value pairs added. Names that already carry
// labels (rendered by L) keep them — existing keys win over the added
// ones, so a harness can stamp a coarse "experiment" label without
// clobbering the finer per-shard labels the campaign emitted. The
// result is re-canonicalized through L, so series sort identically no
// matter which layer labeled them first.
//
// The bench harnesses use this to fold one sub-registry per
// experiment row into the process registry: the row's counters stay
// distinguishable (labels) while unlabeled process-wide series from
// different rows still sum, exactly like Merge.
func (r *Registry) MergeLabeled(src *Registry, kv ...string) {
	if r == nil || src == nil {
		return
	}
	if len(kv) == 0 {
		r.Merge(src)
		return
	}
	if len(kv)%2 != 0 {
		panic("telemetry: MergeLabeled requires key/value pairs")
	}
	for _, m := range src.snapshotMetrics() {
		name := relabel(m.name, kv)
		switch m.kind {
		case KindCounter:
			r.Counter(name, m.class, m.help).Add(m.c.Load())
		case KindGauge:
			r.Gauge(name, m.class, m.help).Add(m.g.Load())
		case KindHistogram:
			dst := r.Histogram(name, m.class, m.help)
			var counts [HistBuckets]uint64
			for i := range counts {
				counts[i] = m.h.buckets[i].Load()
			}
			dst.AddBuckets(&counts, m.h.sum.Load())
		}
	}
}

// relabel renders name with the extra key/value pairs merged into any
// labels it already carries (existing keys win).
func relabel(name string, kv []string) string {
	base, existing := parseLabels(name)
	have := make(map[string]bool, len(existing)/2)
	for i := 0; i < len(existing); i += 2 {
		have[existing[i]] = true
	}
	merged := existing
	for i := 0; i < len(kv); i += 2 {
		if !have[kv[i]] {
			merged = append(merged, kv[i], kv[i+1])
		}
	}
	return L(base, merged...)
}

// parseLabels splits a canonical labeled name (as rendered by L) into
// its base and flattened key/value pairs. Malformed names are treated
// as label-free — relabeling then appends the new labels to the whole
// string's base, which is the safe degradation.
func parseLabels(name string) (string, []string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	body := name[open+1 : len(name)-1]
	base := name[:open]
	var kv []string
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) <= eq+1 || body[eq+1] != '"' {
			return name, nil
		}
		key := body[:eq]
		rest := body[eq+1:] // starts at the opening quote
		end := quotedEnd(rest)
		if end < 0 {
			return name, nil
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return name, nil
		}
		kv = append(kv, key, val)
		body = rest[end+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) != 0 {
			return name, nil
		}
	}
	return base, kv
}

// quotedEnd returns the index of the closing quote of the Go-quoted
// string starting at s[0] (which must be '"'), honoring escapes, or -1.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
