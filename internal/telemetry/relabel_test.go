package telemetry

import "testing"

func TestMergeLabeled(t *testing.T) {
	src := NewRegistry()
	src.Counter("plain_total", Deterministic, "").Add(3)
	src.Counter(L("sharded_total", "shard", "0001"), Deterministic, "").Add(2)
	src.Gauge("size", Scheduling, "").Set(5)
	src.Histogram("obs", Deterministic, "").Observe(4)

	dst := NewRegistry()
	dst.MergeLabeled(src, "experiment", "x")

	if got := dst.Counter(`plain_total{experiment="x"}`, Deterministic, "").Value(); got != 3 {
		t.Errorf("plain counter = %d, want 3", got)
	}
	// Pre-labeled names keep their labels; the merged set is
	// re-canonicalized (keys sorted: experiment < shard).
	if got := dst.Counter(`sharded_total{experiment="x",shard="0001"}`, Deterministic, "").Value(); got != 2 {
		t.Errorf("sharded counter = %d, want 2", got)
	}
	if got := dst.Gauge(`size{experiment="x"}`, Scheduling, "").Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	if got := dst.Histogram(`obs{experiment="x"}`, Deterministic, "").Count(); got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
}

// An existing label key wins over the stamped one: the finer label was
// set closer to the measurement.
func TestMergeLabeledExistingKeyWins(t *testing.T) {
	src := NewRegistry()
	src.Counter(L("c_total", "experiment", "inner"), Deterministic, "").Add(1)
	dst := NewRegistry()
	dst.MergeLabeled(src, "experiment", "outer")
	if got := dst.Counter(`c_total{experiment="inner"}`, Deterministic, "").Value(); got != 1 {
		t.Errorf("inner label lost: got %d", got)
	}
}

// Merging twice sums, like Merge.
func TestMergeLabeledAccumulates(t *testing.T) {
	dst := NewRegistry()
	for i := 0; i < 2; i++ {
		src := NewRegistry()
		src.Counter("n_total", Deterministic, "").Add(2)
		dst.MergeLabeled(src, "k", "v")
	}
	if got := dst.Counter(`n_total{k="v"}`, Deterministic, "").Value(); got != 4 {
		t.Errorf("accumulated = %d, want 4", got)
	}
}

func TestParseLabels(t *testing.T) {
	for _, tc := range []struct {
		in   string
		base string
		kv   []string
	}{
		{"plain_total", "plain_total", nil},
		{`a_total{k="v"}`, "a_total", []string{"k", "v"}},
		{`a_total{a="1",b="2"}`, "a_total", []string{"a", "1", "b", "2"}},
		{`a_total{k="comma,brace}"}`, "a_total", []string{"k", "comma,brace}"}},
		{`a_total{k="esc\"q"}`, "a_total", []string{"k", `esc"q`}},
		// Malformed bodies degrade to label-free (whole string is base).
		{`a_total{k=}`, `a_total{k=}`, nil},
		{`a_total{k="unterminated}`, `a_total{k="unterminated}`, nil},
	} {
		base, kv := parseLabels(tc.in)
		if base != tc.base || len(kv) != len(tc.kv) {
			t.Errorf("parseLabels(%q) = %q %v, want %q %v", tc.in, base, kv, tc.base, tc.kv)
			continue
		}
		for i := range kv {
			if kv[i] != tc.kv[i] {
				t.Errorf("parseLabels(%q) kv[%d] = %q, want %q", tc.in, i, kv[i], tc.kv[i])
			}
		}
	}
}

// The relabel round-trip: L-rendered names parse back to exactly what
// L was given (sorted), so stamping is idempotent on canonical names.
func TestRelabelCanonical(t *testing.T) {
	name := L("m_total", "b", "2", "a", "1")
	if got := relabel(name, []string{"c", "3"}); got != `m_total{a="1",b="2",c="3"}` {
		t.Errorf("relabel = %q", got)
	}
}
