package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWatchdogNilAndDisabled(t *testing.T) {
	var w *Watchdog
	w.Beat(0)
	w.Done(0)
	w.Stop()
	if w.Stalls() != 0 {
		t.Fatal("nil watchdog reported stalls")
	}
	if StartWatchdog(WatchdogConfig{Tracks: 4}) != nil {
		t.Fatal("zero deadline must return the nil watchdog")
	}
	if StartWatchdog(WatchdogConfig{Deadline: time.Second}) != nil {
		t.Fatal("zero tracks must return the nil watchdog")
	}
}

func TestWatchdogFiresOnStall(t *testing.T) {
	rec := NewRecorder(0)
	var stacks bytes.Buffer
	snap := filepath.Join(t.TempDir(), "stall.json")
	var stalledTrack atomic.Int64
	stalledTrack.Store(-1)
	w := StartWatchdog(WatchdogConfig{
		Tracks:       2,
		Deadline:     30 * time.Millisecond,
		Interval:     10 * time.Millisecond,
		Rec:          rec,
		StacksTo:     &stacks,
		SnapshotPath: snap,
		OnStall:      func(track int, _ time.Duration) { stalledTrack.Store(int64(track)) },
	})
	defer w.Stop()

	w.Beat(0) // arm track 0 and let it go silent
	// Track 1 keeps beating: it must not fire.
	deadline := time.Now().Add(2 * time.Second)
	for w.Stalls() == 0 && time.Now().Before(deadline) {
		w.Beat(1)
		time.Sleep(5 * time.Millisecond)
	}
	if w.Stalls() != 1 {
		t.Fatalf("stalls = %d, want 1", w.Stalls())
	}
	if got := stalledTrack.Load(); got != 0 {
		t.Fatalf("stalled track = %d, want 0", got)
	}
	if !strings.Contains(stacks.String(), "goroutine") {
		t.Fatal("stack dump missing from stall output")
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("emergency snapshot not written: %v", err)
	}
	evs, _, err := ParseChromeJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("snapshot is not valid chrome json: %v", err)
	}
	found := false
	for _, ev := range evs {
		if ev.Name == "watchdog_stall" && ev.Phase == PhaseInstant && ev.Track == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot lacks the watchdog_stall instant")
	}

	// A beat closes the episode; silence after that re-fires.
	w.Beat(0)
	time.Sleep(5 * time.Millisecond)
	deadline = time.Now().Add(2 * time.Second)
	for w.Stalls() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if w.Stalls() < 2 {
		t.Fatalf("stalls = %d, want >= 2 after re-arm", w.Stalls())
	}
}

func TestWatchdogDoneDisarms(t *testing.T) {
	w := StartWatchdog(WatchdogConfig{
		Tracks:   1,
		Deadline: 20 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		StacksTo: &bytes.Buffer{},
	})
	defer w.Stop()
	w.Beat(0)
	w.Done(0)
	time.Sleep(100 * time.Millisecond)
	if w.Stalls() != 0 {
		t.Fatalf("disarmed track fired: stalls = %d", w.Stalls())
	}
}

func TestWatchdogBeatAgeHook(t *testing.T) {
	var calls atomic.Uint64
	w := StartWatchdog(WatchdogConfig{
		Tracks:    1,
		Deadline:  10 * time.Second,
		Interval:  10 * time.Millisecond,
		StacksTo:  &bytes.Buffer{},
		OnBeatAge: func(int, time.Duration) { calls.Add(1) },
	})
	defer w.Stop()
	w.Beat(0)
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if calls.Load() == 0 {
		t.Fatal("OnBeatAge never called for an armed track")
	}
}
