package trace

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// WatchdogConfig configures a stall watchdog. Tracks that have beaten
// at least once are "armed"; an armed track whose last beat is older
// than Deadline is stalled. On the first detection of a stall episode
// the watchdog dumps all goroutine stacks to StacksTo, writes an
// emergency trace snapshot to SnapshotPath, and records a
// "watchdog_stall" instant in Rec — so a hung campaign leaves
// evidence instead of hanging silently. The episode ends (and can
// re-fire) when the track beats or finishes.
type WatchdogConfig struct {
	// Tracks is the number of heartbeat tracks (one per shard).
	Tracks int
	// Deadline is the maximum silence before a track counts as
	// stalled. Required (> 0).
	Deadline time.Duration
	// Interval is how often the checker wakes; defaults to
	// Deadline/4 (min 10ms).
	Interval time.Duration
	// Rec, when non-nil, receives a "watchdog_stall" instant per
	// episode on the stalled track.
	Rec *Recorder
	// StacksTo receives the goroutine dump (default os.Stderr).
	StacksTo io.Writer
	// SnapshotPath, when set, receives a Chrome-JSON snapshot of Rec
	// at the first stall (best effort, written once per process).
	SnapshotPath string
	// OnBeatAge, when non-nil, is called for every armed track on
	// every checker wake with the track's current heartbeat age —
	// the hook the campaign uses to publish per-shard gauges.
	OnBeatAge func(track int, age time.Duration)
	// OnStall, when non-nil, is called once per stall episode after
	// the dump.
	OnStall func(track int, age time.Duration)
}

// Watchdog is a running stall detector. Beat it from the watched
// loops; Stop it when the run ends. All methods are safe on nil.
type Watchdog struct {
	cfg      WatchdogConfig
	beats    []atomic.Int64 // unix nanos of last beat; 0 = disarmed
	stalled  []atomic.Bool  // true while a stall episode is open
	stalls   atomic.Uint64
	snapOnce sync.Once
	stop     chan struct{}
	done     sync.WaitGroup
}

// StartWatchdog launches the checker goroutine. Returns nil (a valid
// no-op watchdog) when Deadline <= 0 or Tracks <= 0.
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Deadline <= 0 || cfg.Tracks <= 0 {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Deadline / 4
	}
	if cfg.Interval < 10*time.Millisecond {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.StacksTo == nil {
		cfg.StacksTo = os.Stderr
	}
	w := &Watchdog{
		cfg:     cfg,
		beats:   make([]atomic.Int64, cfg.Tracks),
		stalled: make([]atomic.Bool, cfg.Tracks),
		stop:    make(chan struct{}),
	}
	w.done.Add(1)
	go w.run()
	return w
}

// Beat marks the track alive now, arming it if it wasn't.
func (w *Watchdog) Beat(track int) {
	if w == nil || track < 0 || track >= len(w.beats) {
		return
	}
	w.beats[track].Store(time.Now().UnixNano())
	w.stalled[track].Store(false)
}

// Done disarms the track — a finished shard is not a stalled one.
func (w *Watchdog) Done(track int) {
	if w == nil || track < 0 || track >= len(w.beats) {
		return
	}
	w.beats[track].Store(0)
	w.stalled[track].Store(false)
}

// Stalls reports how many stall episodes fired.
func (w *Watchdog) Stalls() uint64 {
	if w == nil {
		return 0
	}
	return w.stalls.Load()
}

// Stop halts the checker. Safe to call once; the campaign defers it.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	close(w.stop)
	w.done.Wait()
}

func (w *Watchdog) run() {
	defer w.done.Done()
	tick := time.NewTicker(w.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.check(time.Now())
		}
	}
}

func (w *Watchdog) check(now time.Time) {
	for t := range w.beats {
		last := w.beats[t].Load()
		if last == 0 {
			continue // disarmed
		}
		age := now.Sub(time.Unix(0, last))
		if w.cfg.OnBeatAge != nil {
			w.cfg.OnBeatAge(t, age)
		}
		if age <= w.cfg.Deadline || w.stalled[t].Load() {
			continue
		}
		w.stalled[t].Store(true)
		w.stalls.Add(1)
		w.fire(t, age)
	}
}

func (w *Watchdog) fire(track int, age time.Duration) {
	fmt.Fprintf(w.cfg.StacksTo,
		"watchdog: track %d stalled (no heartbeat for %v, deadline %v); goroutine dump follows\n",
		track, age.Round(time.Millisecond), w.cfg.Deadline)
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	w.cfg.StacksTo.Write(buf[:n])
	w.cfg.Rec.InstantPinned(track, "watchdog_stall",
		"age_ms", fmt.Sprintf("%d", age.Milliseconds()))
	if w.cfg.SnapshotPath != "" {
		w.snapOnce.Do(func() {
			f, err := os.Create(w.cfg.SnapshotPath)
			if err != nil {
				fmt.Fprintf(w.cfg.StacksTo, "watchdog: snapshot: %v\n", err)
				return
			}
			defer f.Close()
			if err := w.cfg.Rec.WriteChromeJSON(f); err != nil {
				fmt.Fprintf(w.cfg.StacksTo, "watchdog: snapshot: %v\n", err)
			}
		})
	}
	if w.cfg.OnStall != nil {
		w.cfg.OnStall(track, age)
	}
}
