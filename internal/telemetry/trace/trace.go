// Package trace is a flight recorder: a bounded, lock-sharded ring
// buffer of structured trace events (spans, instants, counters) that
// the telemetry layer emits into when a Recorder is attached, and
// that exports as Chrome trace-event JSON — the format Perfetto and
// chrome://tracing load directly.
//
// The package is dependency-free (stdlib only) and deliberately does
// not import internal/telemetry: telemetry imports trace, never the
// reverse. A nil *Recorder is the disabled state — every method is a
// no-op on nil, so instrumented code pays one nil check per event and
// nothing else. When the ring fills, the oldest events are
// overwritten (and counted in Dropped); a flight recorder keeps the
// recent past, not the whole run.
//
// All trace data is scheduling-class by construction: timestamps and
// interleavings are never reproducible across runs or worker counts.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is the Chrome trace-event phase of an event.
type Phase byte

const (
	// PhaseComplete is a span with a start and a duration ('X').
	PhaseComplete Phase = 'X'
	// PhaseInstant is a point event ('i').
	PhaseInstant Phase = 'i'
	// PhaseCounter is a named numeric sample ('C').
	PhaseCounter Phase = 'C'
)

// Event is one recorded trace event. TS is nanoseconds since the
// recorder's epoch; Dur is set for PhaseComplete, Value for
// PhaseCounter, and Args (flattened key/value pairs) for anything
// that carries structured payload — e.g. a finding's provenance.
type Event struct {
	Name  string
	Phase Phase
	Track int32
	TS    int64
	Dur   int64
	Value int64
	Args  []string

	seq uint64 // insertion order, for stable sorting at equal TS
}

// Arg returns the value of the named argument, or "" when absent.
func (e *Event) Arg(key string) string {
	for i := 0; i+1 < len(e.Args); i += 2 {
		if e.Args[i] == key {
			return e.Args[i+1]
		}
	}
	return ""
}

// recShards is the number of independently locked rings. Events are
// routed by track, so concurrent shards of a campaign almost never
// contend on the same lock.
const recShards = 16

// DefaultCapacity is the total event capacity of NewRecorder(0):
// 64Ki events (~6 MB) — hours of quick-campaign activity, minutes of
// a hot one.
const DefaultCapacity = 1 << 16

// PinnedCapacity caps the pinned region (InstantPinned): events there
// survive ring wrap, so the cap is a hard stop, not an overwrite.
const PinnedCapacity = 4096

type recShard struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total writes; the ring index is next % len(ring)
}

// Recorder is the flight recorder. Create with NewRecorder; a nil
// *Recorder discards everything.
type Recorder struct {
	epoch   time.Time
	shards  [recShards]recShard
	seq     atomic.Uint64
	dropped atomic.Uint64

	trackMu sync.Mutex
	tracks  map[int32]string

	pinMu  sync.Mutex
	pinned []Event
}

// NewRecorder returns a recorder holding up to capacity events in
// total (DefaultCapacity when capacity <= 0). Capacity is split
// evenly across the lock shards, so per-track bursts can wrap a
// shard's ring before the global total is reached.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := capacity / recShards
	if per < 16 {
		per = 16
	}
	r := &Recorder{epoch: time.Now(), tracks: make(map[int32]string)}
	for i := range r.shards {
		r.shards[i].ring = make([]Event, per)
	}
	return r
}

// Now returns the current time as nanoseconds since the recorder's
// epoch — the TS an event emitted now would carry.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch).Nanoseconds()
}

// SetTrackName labels a track; exported as a thread_name metadata
// record so Perfetto shows "shard 3" instead of a bare tid.
func (r *Recorder) SetTrackName(track int, name string) {
	if r == nil {
		return
	}
	r.trackMu.Lock()
	r.tracks[int32(track)] = name
	r.trackMu.Unlock()
}

// TrackNames returns a copy of the track-name table.
func (r *Recorder) TrackNames() map[int32]string {
	if r == nil {
		return nil
	}
	r.trackMu.Lock()
	defer r.trackMu.Unlock()
	out := make(map[int32]string, len(r.tracks))
	for k, v := range r.tracks {
		out[k] = v
	}
	return out
}

// Dropped reports how many events were overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

func (r *Recorder) emit(ev Event) {
	ev.seq = r.seq.Add(1)
	sh := &r.shards[uint32(ev.Track)%recShards]
	sh.mu.Lock()
	if sh.next >= uint64(len(sh.ring)) {
		r.dropped.Add(1)
	}
	sh.ring[sh.next%uint64(len(sh.ring))] = ev
	sh.next++
	sh.mu.Unlock()
}

// Complete records a finished span on track: a PhaseComplete event
// from start to start+dur.
func (r *Recorder) Complete(track int, name string, start time.Time, dur time.Duration, args ...string) {
	if r == nil {
		return
	}
	r.emit(Event{
		Name:  name,
		Phase: PhaseComplete,
		Track: int32(track),
		TS:    start.Sub(r.epoch).Nanoseconds(),
		Dur:   dur.Nanoseconds(),
		Args:  args,
	})
}

// Instant records a point event on track with flattened key/value
// argument pairs.
func (r *Recorder) Instant(track int, name string, args ...string) {
	if r == nil {
		return
	}
	r.emit(Event{
		Name:  name,
		Phase: PhaseInstant,
		Track: int32(track),
		TS:    time.Since(r.epoch).Nanoseconds(),
		Args:  args,
	})
}

// InstantPinned is Instant into the pinned region: pinned events are
// never overwritten by ring wrap, so rare, must-survive records —
// finding provenance, watchdog stalls — keep their one-event-per-
// occurrence invariant even when hot instants flood the rings. The
// region is capped at PinnedCapacity; past that, new pinned events
// are dropped (and counted in Dropped) rather than evicting old ones.
func (r *Recorder) InstantPinned(track int, name string, args ...string) {
	if r == nil {
		return
	}
	ev := Event{
		Name:  name,
		Phase: PhaseInstant,
		Track: int32(track),
		TS:    time.Since(r.epoch).Nanoseconds(),
		Args:  args,
		seq:   r.seq.Add(1),
	}
	r.pinMu.Lock()
	if len(r.pinned) < PinnedCapacity {
		r.pinned = append(r.pinned, ev)
	} else {
		r.dropped.Add(1)
	}
	r.pinMu.Unlock()
}

// Counter records a numeric sample on track. Successive samples of
// the same name render as a stepped series in Perfetto; Assert and
// Summarize read the last sample as the final value.
func (r *Recorder) Counter(track int, name string, value int64) {
	if r == nil {
		return
	}
	r.emit(Event{
		Name:  name,
		Phase: PhaseCounter,
		Track: int32(track),
		TS:    time.Since(r.epoch).Nanoseconds(),
		Value: value,
	})
}

// Events returns a snapshot of the buffered events sorted by
// timestamp (insertion order breaks ties). The recorder keeps
// running; the snapshot is a copy.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := sh.next
		if n > uint64(len(sh.ring)) {
			n = uint64(len(sh.ring))
		}
		out = append(out, sh.ring[:n]...)
		sh.mu.Unlock()
	}
	r.pinMu.Lock()
	out = append(out, r.pinned...)
	r.pinMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// --- Chrome trace-event JSON ---------------------------------------
//
// The export is the "JSON object format": {"traceEvents": [...]} with
// ts/dur in microseconds, one pid, and tracks mapped to tids. Both
// Perfetto and chrome://tracing load it as-is.

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeJSON writes a snapshot of the recorder in Chrome
// trace-event JSON.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	return WriteChromeJSON(w, r.Events(), r.TrackNames())
}

// WriteChromeJSON writes the given events and track names in Chrome
// trace-event JSON. Split out from the Recorder so summaries and
// tests can round-trip event slices directly.
func WriteChromeJSON(w io.Writer, evs []Event, tracks map[int32]string) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	ids := make([]int32, 0, len(tracks))
	for id := range tracks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   id,
			Args:  map[string]any{"name": tracks[id]},
		})
	}
	for i := range evs {
		ev := &evs[i]
		ce := chromeEvent{
			Name:  ev.Name,
			Phase: string(rune(ev.Phase)),
			PID:   1,
			TID:   ev.Track,
			TS:    usec(ev.TS),
		}
		switch ev.Phase {
		case PhaseComplete:
			d := usec(ev.Dur)
			ce.Dur = &d
		case PhaseInstant:
			ce.Scope = "t" // thread-scoped tick mark
		case PhaseCounter:
			ce.Args = map[string]any{"value": ev.Value}
		}
		if len(ev.Args) > 0 {
			if ce.Args == nil {
				ce.Args = make(map[string]any, len(ev.Args)/2)
			}
			for k := 0; k+1 < len(ev.Args); k += 2 {
				ce.Args[ev.Args[k]] = ev.Args[k+1]
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ParseChromeJSON reads a trace written by WriteChromeJSON back into
// events and track names. Metadata records become track names; spans,
// instants, and counters round-trip (argument order is not
// preserved — args come back key-sorted).
func ParseChromeJSON(r io.Reader) ([]Event, map[int32]string, error) {
	var in chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("trace: parse chrome json: %w", err)
	}
	tracks := make(map[int32]string)
	var evs []Event
	for i := range in.TraceEvents {
		ce := &in.TraceEvents[i]
		if ce.Phase == "M" {
			if ce.Name == "thread_name" {
				if name, ok := ce.Args["name"].(string); ok {
					tracks[ce.TID] = name
				}
			}
			continue
		}
		if len(ce.Phase) != 1 {
			continue
		}
		ev := Event{
			Name:  ce.Name,
			Phase: Phase(ce.Phase[0]),
			Track: ce.TID,
			TS:    int64(math.Round(ce.TS * 1e3)),
		}
		switch ev.Phase {
		case PhaseComplete:
			if ce.Dur != nil {
				ev.Dur = int64(math.Round(*ce.Dur * 1e3))
			}
		case PhaseInstant:
		case PhaseCounter:
		default:
			continue // unknown phase from a foreign tool: skip
		}
		keys := make([]string, 0, len(ce.Args))
		for k := range ce.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := ce.Args[k].(type) {
			case string:
				ev.Args = append(ev.Args, k, v)
			case float64:
				if ev.Phase == PhaseCounter && k == "value" {
					ev.Value = int64(math.Round(v))
				} else {
					ev.Args = append(ev.Args, k, fmt.Sprintf("%g", v))
				}
			}
		}
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs, tracks, nil
}
