package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SpanStat aggregates all complete events sharing a name.
type SpanStat struct {
	Name    string
	Count   int
	TotalNS int64
	MaxNS   int64
}

// TrackStat is one track's activity. BusyNS is the union of its span
// intervals (nested spans are merged, not double-counted), so
// BusyNS/WallNS is the track's utilization.
type TrackStat struct {
	Track  int32
	Name   string
	Spans  int
	BusyNS int64
}

// Summary is the aggregate view of a trace that tame-trace prints.
type Summary struct {
	Events   int
	WallNS   int64 // max(ts+dur) - min(ts) over all events
	Spans    []SpanStat // sorted by TotalNS descending
	Tracks   []TrackStat
	Instants map[string]int
	Counters map[string]int64 // final (last-sampled) value per name
}

// Summarize aggregates events (as returned by Recorder.Events or
// ParseChromeJSON) into a Summary.
func Summarize(evs []Event, tracks map[int32]string) Summary {
	s := Summary{
		Events:   len(evs),
		Instants: make(map[string]int),
		Counters: make(map[string]int64),
	}
	if len(evs) == 0 {
		return s
	}
	minTS, maxTS := evs[0].TS, evs[0].TS
	spans := make(map[string]*SpanStat)
	type iv struct{ lo, hi int64 }
	intervals := make(map[int32][]iv)
	spanCount := make(map[int32]int)
	counterTS := make(map[string]int64)
	for i := range evs {
		ev := &evs[i]
		if ev.TS < minTS {
			minTS = ev.TS
		}
		if end := ev.TS + ev.Dur; end > maxTS {
			maxTS = end
		}
		switch ev.Phase {
		case PhaseComplete:
			st := spans[ev.Name]
			if st == nil {
				st = &SpanStat{Name: ev.Name}
				spans[ev.Name] = st
			}
			st.Count++
			st.TotalNS += ev.Dur
			if ev.Dur > st.MaxNS {
				st.MaxNS = ev.Dur
			}
			intervals[ev.Track] = append(intervals[ev.Track], iv{ev.TS, ev.TS + ev.Dur})
			spanCount[ev.Track]++
		case PhaseInstant:
			s.Instants[ev.Name]++
		case PhaseCounter:
			if ev.TS >= counterTS[ev.Name] {
				counterTS[ev.Name] = ev.TS
				s.Counters[ev.Name] = ev.Value
			}
		}
	}
	s.WallNS = maxTS - minTS
	for _, st := range spans {
		s.Spans = append(s.Spans, *st)
	}
	sort.Slice(s.Spans, func(i, j int) bool {
		if s.Spans[i].TotalNS != s.Spans[j].TotalNS {
			return s.Spans[i].TotalNS > s.Spans[j].TotalNS
		}
		return s.Spans[i].Name < s.Spans[j].Name
	})
	ids := make([]int32, 0, len(intervals))
	for id := range intervals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ivs := intervals[id]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		var busy, hi int64
		hi = -1
		var lo int64
		for _, v := range ivs {
			if hi < 0 || v.lo > hi {
				if hi >= 0 {
					busy += hi - lo
				}
				lo, hi = v.lo, v.hi
			} else if v.hi > hi {
				hi = v.hi
			}
		}
		if hi >= 0 {
			busy += hi - lo
		}
		s.Tracks = append(s.Tracks, TrackStat{
			Track:  id,
			Name:   tracks[id],
			Spans:  spanCount[id],
			BusyNS: busy,
		})
	}
	return s
}

// Outliers returns the tracks whose busy time exceeds factor × the
// median busy time of all tracks that did any span work — the "slow
// shard" report. Returns nil when fewer than three tracks worked
// (a median over one or two shards flags nothing meaningful).
func (s *Summary) Outliers(factor float64) []TrackStat {
	var busy []int64
	for _, t := range s.Tracks {
		if t.Spans > 0 {
			busy = append(busy, t.BusyNS)
		}
	}
	if len(busy) < 3 {
		return nil
	}
	sort.Slice(busy, func(i, j int) bool { return busy[i] < busy[j] })
	median := busy[len(busy)/2]
	if median == 0 {
		return nil
	}
	var out []TrackStat
	for _, t := range s.Tracks {
		if t.Spans > 0 && float64(t.BusyNS) > factor*float64(median) {
			out = append(out, t)
		}
	}
	return out
}

// SpanDelta is one span name's change between two traces.
type SpanDelta struct {
	Name           string
	CountA, CountB int
	TotalA, TotalB int64 // ns
}

// Diff compares two summaries span-by-span, returning every name
// present in either, sorted by the absolute change in total time
// (largest first).
func Diff(a, b Summary) []SpanDelta {
	m := make(map[string]*SpanDelta)
	for _, st := range a.Spans {
		m[st.Name] = &SpanDelta{Name: st.Name, CountA: st.Count, TotalA: st.TotalNS}
	}
	for _, st := range b.Spans {
		d := m[st.Name]
		if d == nil {
			d = &SpanDelta{Name: st.Name}
			m[st.Name] = d
		}
		d.CountB = st.Count
		d.TotalB = st.TotalNS
	}
	out := make([]SpanDelta, 0, len(m))
	for _, d := range m {
		out = append(out, *d)
	}
	abs := func(x int64) int64 {
		if x < 0 {
			return -x
		}
		return x
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := abs(out[i].TotalB-out[i].TotalA), abs(out[j].TotalB-out[j].TotalA)
		if di != dj {
			return di > dj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// --- assertions -----------------------------------------------------
//
// Assert evaluates a comma-separated list of comparisons over a
// trace, mirroring tame-metrics' -check language so CI gates read the
// same either way. Terms:
//
//	spans(P)     count of complete events whose name is P or starts
//	             with P (prefix match, so spans(campaign/s) counts
//	             every shard span)
//	instants(P)  count of instant events, same prefix match
//	counter(N)   final value of counter N (exact name; 0 if absent)
//	dur(P)       total nanoseconds of matching complete events
//	<integer>    a literal
//
// Operators: == (or =), !=, >=, <=, >, <.

// Assert evaluates exprs against evs; the returned error names the
// first failing clause.
func Assert(evs []Event, exprs string) error {
	s := Summarize(evs, nil)
	for _, clause := range strings.Split(exprs, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if err := assertOne(evs, &s, clause); err != nil {
			return err
		}
	}
	return nil
}

func assertOne(evs []Event, s *Summary, clause string) error {
	op, idx := findOp(clause)
	if op == "" {
		return fmt.Errorf("trace: assert %q: no comparison operator", clause)
	}
	lhs, err := evalTerm(evs, s, strings.TrimSpace(clause[:idx]))
	if err != nil {
		return fmt.Errorf("trace: assert %q: %w", clause, err)
	}
	rhs, err := evalTerm(evs, s, strings.TrimSpace(clause[idx+len(op):]))
	if err != nil {
		return fmt.Errorf("trace: assert %q: %w", clause, err)
	}
	ok := false
	switch op {
	case "==", "=":
		ok = lhs == rhs
	case "!=":
		ok = lhs != rhs
	case ">=":
		ok = lhs >= rhs
	case "<=":
		ok = lhs <= rhs
	case ">":
		ok = lhs > rhs
	case "<":
		ok = lhs < rhs
	}
	if !ok {
		return fmt.Errorf("trace: assert failed: %s (lhs=%d rhs=%d)", clause, lhs, rhs)
	}
	return nil
}

// findOp locates the comparison operator outside any parentheses,
// longest operators first so ">=" is not read as ">".
func findOp(s string) (string, int) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '=', '!', '<', '>':
			if depth != 0 {
				continue
			}
			for _, op := range []string{"==", "!=", ">=", "<=", "=", ">", "<"} {
				if strings.HasPrefix(s[i:], op) {
					return op, i
				}
			}
		}
	}
	return "", -1
}

func evalTerm(evs []Event, s *Summary, term string) (int64, error) {
	if term == "" {
		return 0, fmt.Errorf("empty term")
	}
	if open := strings.IndexByte(term, '('); open >= 0 && strings.HasSuffix(term, ")") {
		fn := term[:open]
		arg := term[open+1 : len(term)-1]
		switch fn {
		case "spans":
			var n int64
			for i := range evs {
				if evs[i].Phase == PhaseComplete && strings.HasPrefix(evs[i].Name, arg) {
					n++
				}
			}
			return n, nil
		case "instants":
			var n int64
			for i := range evs {
				if evs[i].Phase == PhaseInstant && strings.HasPrefix(evs[i].Name, arg) {
					n++
				}
			}
			return n, nil
		case "dur":
			var total int64
			for i := range evs {
				if evs[i].Phase == PhaseComplete && strings.HasPrefix(evs[i].Name, arg) {
					total += evs[i].Dur
				}
			}
			return total, nil
		case "counter":
			return s.Counters[arg], nil
		}
		return 0, fmt.Errorf("unknown function %q", fn)
	}
	v, err := strconv.ParseInt(term, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad term %q", term)
	}
	return v, nil
}
