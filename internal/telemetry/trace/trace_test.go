package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Complete(0, "x", time.Now(), time.Millisecond)
	r.Instant(1, "i")
	r.Counter(2, "c", 3)
	r.SetTrackName(0, "zero")
	if r.Events() != nil || r.Dropped() != 0 || r.TrackNames() != nil {
		t.Fatal("nil recorder leaked state")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("nil recorder WriteChromeJSON: %v", err)
	}
}

func TestRecorderEventsSorted(t *testing.T) {
	r := NewRecorder(1024)
	start := time.Now()
	r.Complete(0, "a", start, 5*time.Millisecond)
	r.Instant(1, "b")
	r.Counter(2, "c", 42)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events not sorted by TS at %d", i)
		}
	}
}

func TestRingOverwriteCountsDropped(t *testing.T) {
	r := NewRecorder(recShards * 16) // minimum ring: 16 events per shard
	for i := 0; i < 100; i++ {
		r.Instant(0, "e") // all on one shard's ring of 16
	}
	if got := len(r.Events()); got != 16 {
		t.Fatalf("ring kept %d events, want 16", got)
	}
	if r.Dropped() != 84 {
		t.Fatalf("dropped = %d, want 84", r.Dropped())
	}
}

func TestPinnedSurvivesRingWrap(t *testing.T) {
	r := NewRecorder(recShards * 16)
	r.InstantPinned(0, "finding", "pass", "sccp")
	for i := 0; i < 1000; i++ {
		r.Instant(0, "noise")
	}
	found := 0
	for _, ev := range r.Events() {
		if ev.Name == "finding" {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("pinned event count = %d after wrap, want 1", found)
	}
	// The pinned region is a hard cap, not a ring.
	r2 := NewRecorder(0)
	for i := 0; i < PinnedCapacity+5; i++ {
		r2.InstantPinned(0, "p")
	}
	if got := len(r2.Events()); got != PinnedCapacity {
		t.Fatalf("pinned region held %d, want %d", got, PinnedCapacity)
	}
	if r2.Dropped() != 5 {
		t.Fatalf("pinned drops = %d, want 5", r2.Dropped())
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for track := 0; track < 8; track++ {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Instant(tr, "tick")
			}
		}(track)
	}
	wg.Wait()
	if got := len(r.Events()); got != 4000 {
		t.Fatalf("got %d events, want 4000", got)
	}
}

func TestChromeJSONRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	r.SetTrackName(0, "shard 0")
	r.SetTrackName(7, "run")
	start := time.Now()
	r.Complete(0, "campaign/s0", start, 3*time.Millisecond, "funcs", "12")
	r.Instant(0, "finding", "pass", "instcombine", "shard", "0")
	r.Counter(7, "findings", 2)

	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Must be a valid Chrome trace-event JSON object.
	var top map[string]any
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if _, ok := top["traceEvents"].([]any); !ok {
		t.Fatal("export lacks traceEvents array")
	}

	evs, tracks, err := ParseChromeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tracks[0] != "shard 0" || tracks[7] != "run" {
		t.Fatalf("track names did not round-trip: %v", tracks)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	byName := map[string]Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	sp := byName["campaign/s0"]
	if sp.Phase != PhaseComplete || sp.Dur < 2900000 || sp.Dur > 3100000 {
		t.Fatalf("span did not round-trip: %+v", sp)
	}
	if sp.Arg("funcs") != "12" {
		t.Fatalf("span args did not round-trip: %+v", sp)
	}
	fd := byName["finding"]
	if fd.Phase != PhaseInstant || fd.Arg("pass") != "instcombine" {
		t.Fatalf("instant did not round-trip: %+v", fd)
	}
	if c := byName["findings"]; c.Phase != PhaseCounter || c.Value != 2 {
		t.Fatalf("counter did not round-trip: %+v", c)
	}
}

func mkSpan(track int32, name string, ts, dur int64) Event {
	return Event{Name: name, Phase: PhaseComplete, Track: track, TS: ts, Dur: dur}
}

func TestSummarizeMergesNestedIntervals(t *testing.T) {
	evs := []Event{
		mkSpan(0, "campaign/s0", 0, 100),
		mkSpan(0, "check/compile", 10, 20), // nested: must not double-count
		mkSpan(0, "check/compile", 50, 10),
		mkSpan(1, "campaign/s1", 0, 40),
		mkSpan(1, "campaign/s1", 60, 40), // gap: busy = 80, not 100
		{Name: "finding", Phase: PhaseInstant, Track: 0, TS: 5},
		{Name: "findings", Phase: PhaseCounter, Track: 0, TS: 90, Value: 1},
		{Name: "findings", Phase: PhaseCounter, Track: 0, TS: 99, Value: 3},
	}
	s := Summarize(evs, map[int32]string{0: "shard 0"})
	if s.WallNS != 100 {
		t.Fatalf("WallNS = %d, want 100", s.WallNS)
	}
	if s.Instants["finding"] != 1 || s.Counters["findings"] != 3 {
		t.Fatalf("instants/counters wrong: %v %v", s.Instants, s.Counters)
	}
	if len(s.Tracks) != 2 {
		t.Fatalf("got %d tracks, want 2", len(s.Tracks))
	}
	if s.Tracks[0].BusyNS != 100 {
		t.Fatalf("track 0 busy = %d, want 100 (nested spans merged)", s.Tracks[0].BusyNS)
	}
	if s.Tracks[1].BusyNS != 80 {
		t.Fatalf("track 1 busy = %d, want 80 (gap excluded)", s.Tracks[1].BusyNS)
	}
	if s.Tracks[0].Name != "shard 0" {
		t.Fatalf("track name missing: %+v", s.Tracks[0])
	}
	if s.Spans[0].Name != "campaign/s0" || s.Spans[0].TotalNS != 100 {
		t.Fatalf("span sort wrong: %+v", s.Spans)
	}
}

func TestOutliers(t *testing.T) {
	var evs []Event
	for i := int32(0); i < 8; i++ {
		evs = append(evs, mkSpan(i, "campaign/s", 0, 100))
	}
	evs = append(evs, mkSpan(3, "campaign/s", 200, 400)) // shard 3: 500 busy vs median 100
	s := Summarize(evs, nil)
	out := s.Outliers(1.5)
	if len(out) != 1 || out[0].Track != 3 {
		t.Fatalf("outliers = %+v, want track 3 only", out)
	}
}

func TestDiff(t *testing.T) {
	a := Summarize([]Event{mkSpan(0, "x", 0, 100), mkSpan(0, "y", 0, 10)}, nil)
	b := Summarize([]Event{mkSpan(0, "x", 0, 300), mkSpan(0, "z", 0, 5)}, nil)
	d := Diff(a, b)
	if len(d) != 3 {
		t.Fatalf("got %d deltas, want 3", len(d))
	}
	if d[0].Name != "x" || d[0].TotalA != 100 || d[0].TotalB != 300 {
		t.Fatalf("largest delta wrong: %+v", d[0])
	}
}

func TestAssert(t *testing.T) {
	evs := []Event{
		mkSpan(0, "campaign/s0", 0, 100),
		mkSpan(1, "campaign/s1", 0, 100),
		{Name: "finding", Phase: PhaseInstant, TS: 1},
		{Name: "finding", Phase: PhaseInstant, TS: 2},
		{Name: "findings", Phase: PhaseCounter, TS: 3, Value: 2},
	}
	good := []string{
		"spans(campaign/s)>0",
		"spans(campaign/s)==2",
		"instants(finding)==counter(findings)",
		"instants(watchdog_stall)==0",
		"dur(campaign/)>=200",
		"spans(campaign/s)>0, instants(finding)=2",
		"counter(absent)==0",
	}
	for _, expr := range good {
		if err := Assert(evs, expr); err != nil {
			t.Errorf("Assert(%q) failed: %v", expr, err)
		}
	}
	if err := Assert(evs, "spans(campaign/s)==3"); err == nil {
		t.Error("expected failure for spans==3")
	}
	if err := Assert(evs, "instants(finding)!=2"); err == nil {
		t.Error("expected failure for !=2")
	}
	if err := Assert(evs, "bogus(x)>0"); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Errorf("expected unknown-function error, got %v", err)
	}
	if err := Assert(evs, "spans(campaign)"); err == nil {
		t.Error("expected no-operator error")
	}
}
