package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"tameir/internal/telemetry/trace"
)

// DebugMux builds the handler served behind -debug-addr: the standard
// net/http/pprof endpoints plus live registry expositions.
//
//	/metrics          text exposition (deterministic + scheduling)
//	/metrics.json     JSON snapshot
//	/metrics/history  JSON array of periodic snapshots (newest last)
//	/debug/trace      Chrome trace-event snapshot of the flight
//	                  recorder (404 when no recorder is attached)
//	/debug/pprof/...  profiles
func DebugMux(reg *Registry, hist *SnapshotHistory, rec *trace.Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
	if hist != nil {
		mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			hist.WriteJSON(w)
		})
	}
	if rec != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = rec.WriteChromeJSON(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// SnapshotHistory is a bounded ring of timestamped snapshots, filled
// by a periodic collector and served at /metrics/history so a
// long-running daemon's recent trajectory survives scrape gaps.
type SnapshotHistory struct {
	mu   sync.Mutex
	ring []timedSnapshot
	next int
	full bool
}

type timedSnapshot struct {
	At       time.Time `json:"at"`
	Snapshot Snapshot  `json:"snapshot"`
}

// NewSnapshotHistory returns a ring holding up to n snapshots
// (default 60 when n <= 0).
func NewSnapshotHistory(n int) *SnapshotHistory {
	if n <= 0 {
		n = 60
	}
	return &SnapshotHistory{ring: make([]timedSnapshot, n)}
}

// Record appends a snapshot, evicting the oldest when full.
func (h *SnapshotHistory) Record(s Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ring[h.next] = timedSnapshot{At: time.Now(), Snapshot: s}
	h.next = (h.next + 1) % len(h.ring)
	if h.next == 0 {
		h.full = true
	}
}

// WriteJSON writes the history oldest-first as a JSON array.
func (h *SnapshotHistory) WriteJSON(w http.ResponseWriter) {
	h.mu.Lock()
	var ordered []timedSnapshot
	if h.full {
		ordered = append(ordered, h.ring[h.next:]...)
	}
	ordered = append(ordered, h.ring[:h.next]...)
	h.mu.Unlock()
	fmt.Fprint(w, "[")
	for i, ts := range ordered {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, `{"at":%q,"snapshot":`, ts.At.Format(time.RFC3339Nano))
		_ = ts.Snapshot.WriteJSON(w)
		fmt.Fprint(w, "}")
	}
	fmt.Fprint(w, "]")
}

// DebugServer is a running -debug-addr listener plus its periodic
// snapshot collector.
type DebugServer struct {
	Addr string // actual listen address (useful with ":0")

	srv     *http.Server
	stop    chan struct{}
	done    sync.WaitGroup
	closeMu sync.Once
}

// StartDebugServer listens on addr and serves DebugMux(reg) in the
// background, recording a snapshot into a ring-buffered history every
// interval (default 5s when interval <= 0; ring <= 0 means the
// default NewSnapshotHistory depth). rec, when non-nil, is served at
// /debug/trace. Close shuts both down.
func StartDebugServer(addr string, reg *Registry, interval time.Duration, ring int, rec *trace.Recorder) (*DebugServer, error) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server listen %s: %w", addr, err)
	}
	hist := NewSnapshotHistory(ring)
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: DebugMux(reg, hist, rec)},
		stop: make(chan struct{}),
	}
	ds.done.Add(2)
	go func() {
		defer ds.done.Done()
		_ = ds.srv.Serve(ln)
	}()
	go func() {
		defer ds.done.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				hist.Record(reg.Snapshot())
			case <-ds.stop:
				return
			}
		}
	}()
	return ds, nil
}

// Close stops the collector and the listener. Safe to call twice.
func (ds *DebugServer) Close() error {
	var err error
	ds.closeMu.Do(func() {
		close(ds.stop)
		err = ds.srv.Close()
		ds.done.Wait()
	})
	return err
}
