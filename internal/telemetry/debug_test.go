package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tameir/internal/telemetry/trace"
)

func TestDebugMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", Deterministic, "").Add(3)
	hist := NewSnapshotHistory(4)
	hist.Record(r.Snapshot())
	rec := trace.NewRecorder(0)
	rec.Instant(0, "probe")
	srv := httptest.NewServer(DebugMux(r, hist, rec))
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if text := get("/metrics"); !strings.Contains(text, "hits_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", text)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if s, ok := snap.Get("hits_total"); !ok || s.Value != 3 {
		t.Fatalf("/metrics.json wrong sample: %+v", s)
	}
	var history []map[string]any
	if err := json.Unmarshal([]byte(get("/metrics/history")), &history); err != nil {
		t.Fatalf("/metrics/history not JSON: %v", err)
	}
	if len(history) != 1 {
		t.Fatalf("history length = %d, want 1", len(history))
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
	evs, _, err := trace.ParseChromeJSON(strings.NewReader(get("/debug/trace")))
	if err != nil {
		t.Fatalf("/debug/trace not chrome json: %v", err)
	}
	if len(evs) != 1 || evs[0].Name != "probe" {
		t.Fatalf("/debug/trace wrong events: %+v", evs)
	}

	// Without a recorder the endpoint must 404, not serve an empty trace.
	bare := httptest.NewServer(DebugMux(r, hist, nil))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace without recorder: status %d, want 404", resp.StatusCode)
	}
}

func TestSnapshotHistoryRing(t *testing.T) {
	h := NewSnapshotHistory(2)
	for i := 0; i < 3; i++ {
		r := NewRegistry()
		r.Counter("i_total", Deterministic, "").Add(uint64(i))
		h.Record(r.Snapshot())
	}
	rec := httptest.NewRecorder()
	h.WriteJSON(rec)
	var out []struct {
		Snapshot Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("history JSON: %v\n%s", err, rec.Body.String())
	}
	if len(out) != 2 {
		t.Fatalf("ring kept %d, want 2", len(out))
	}
	// Oldest-first: entries 1 then 2 survive.
	s0, _ := out[0].Snapshot.Get("i_total")
	s1, _ := out[1].Snapshot.Get("i_total")
	if s0.Value != 1 || s1.Value != 2 {
		t.Fatalf("ring order wrong: %d, %d", s0.Value, s1.Value)
	}
}

func TestStartDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", Deterministic, "").Inc()
	ds, err := StartDebugServer("127.0.0.1:0", r, 10*time.Millisecond, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "up_total 1") {
		t.Fatalf("live /metrics wrong:\n%s", b)
	}
	// Let the collector record at least one snapshot.
	time.Sleep(30 * time.Millisecond)
	resp, err = http.Get("http://" + ds.Addr + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var hist []map[string]any
	if err := json.Unmarshal(hb, &hist); err != nil || len(hist) == 0 {
		t.Fatalf("history empty or invalid (err=%v):\n%s", err, hb)
	}
	if err := ds.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("close: %v", err)
	}
}
