package telemetry

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", Deterministic, "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("x_size", Deterministic, "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	h := r.Histogram("x_ns", Scheduling, "a histogram")
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("hist count = %d, want 7", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+100+(1<<40) {
		t.Fatalf("hist sum = %d", h.Sum())
	}
	// Resolving the same name again returns the same metric.
	if r.Counter("x_total", Deterministic, "a counter").Value() != 5 {
		t.Fatal("second resolve lost state")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x", Deterministic, "")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil-registry counter recorded")
	}
	r.Gauge("g", Deterministic, "").Set(3)
	r.Histogram("h", Scheduling, "").Observe(9)
	r.Merge(NewRegistry())
	if s := r.Snapshot(); len(s.Samples) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
	var sc *Scope
	sp := sc.Start("x")
	sp.End() // must not panic
	sc.Child("y").Timed("z", func() {})
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", Deterministic, "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("m", Deterministic, "")
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v uint64
		b int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 31, 31}, {1<<31 + 1, 32}, {1 << 62, 32},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.b {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.b)
		}
	}
}

func TestLabelCanonicalization(t *testing.T) {
	a := L("m", "b", "2", "a", "1")
	b := L("m", "a", "1", "b", "2")
	want := `m{a="1",b="2"}`
	if a != want || b != want {
		t.Fatalf("L not canonical: %q vs %q, want %q", a, b, want)
	}
	if L("m") != "m" {
		t.Fatal("L without labels changed the name")
	}
}

func TestMergeIsOrderInsensitiveSum(t *testing.T) {
	build := func(seed int64, n int) *Registry {
		r := NewRegistry()
		rng := rand.New(rand.NewSource(seed))
		c := r.Counter("c_total", Deterministic, "")
		h := r.Histogram("h", Deterministic, "")
		g := r.Gauge("g", Deterministic, "")
		for i := 0; i < n; i++ {
			c.Add(uint64(rng.Intn(10)))
			h.Observe(uint64(rng.Intn(1000)))
			g.Add(int64(rng.Intn(5)))
		}
		return r
	}
	shards := []*Registry{build(1, 100), build(2, 50), build(3, 75)}

	merge := func(order []int) Snapshot {
		total := NewRegistry()
		for _, i := range order {
			total.Merge(shards[i])
		}
		return total.Snapshot()
	}
	var bufA, bufB bytes.Buffer
	if err := merge([]int{0, 1, 2}).WriteText(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := merge([]int{2, 0, 1}).WriteText(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatalf("merge order changed exposition:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

func TestTextExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign_funcs_total", Deterministic, "functions generated").Add(128)
	r.Counter(L("pass_runs_total", "pass", "gvn"), Deterministic, "").Add(12)
	r.Gauge("progcache_size", Scheduling, "resident programs").Set(42)
	h := r.Histogram("check_set_size", Deterministic, "behavior-set sizes")
	h.Observe(1)
	h.Observe(3)
	h.Observe(300)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "# == deterministic ==") || !strings.Contains(text, "# == scheduling ==") {
		t.Fatalf("missing class sections:\n%s", text)
	}
	got, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	checks := map[string]int64{
		"campaign_funcs_total":             128,
		`pass_runs_total{pass="gvn"}`:      12,
		"progcache_size":                   42,
		"check_set_size_count":             3,
		"check_set_size_sum":               304,
		`check_set_size_bucket{le="1"}`:    1,
		`check_set_size_bucket{le="4"}`:    2,
		`check_set_size_bucket{le="+Inf"}`: 3,
	}
	for k, want := range checks {
		if got[k] != want {
			t.Errorf("%s = %d, want %d\n%s", k, got[k], want, text)
		}
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", Deterministic, "help a").Add(9)
	r.Histogram("b", Scheduling, "").Observe(17)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := snap.Get("a_total")
	if !ok || s.Value != 9 || s.Class != "deterministic" || s.Help != "help a" {
		t.Fatalf("a_total sample wrong: %+v ok=%v", s, ok)
	}
	hs, ok := snap.Get("b")
	if !ok || hs.Count != 1 || hs.Sum != 17 || hs.Kind != "histogram" {
		t.Fatalf("b sample wrong: %+v ok=%v", hs, ok)
	}
	if _, ok := snap.Get("missing"); ok {
		t.Fatal("Get found a missing sample")
	}
}

func TestHistogramLabelSuffix(t *testing.T) {
	r := NewRegistry()
	r.Histogram(L("pass_wall_ns", "pass", "gvn"), Scheduling, "").Observe(5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[`pass_wall_ns_count{pass="gvn"}`] != 1 {
		t.Fatalf("labelled histogram suffix wrong:\n%v", got)
	}
	if got[`pass_wall_ns_bucket{le="8",pass="gvn"}`] != 1 {
		t.Fatalf("labelled histogram bucket wrong:\n%v", got)
	}
}

func TestDeterministicTextOmitsScheduling(t *testing.T) {
	r := NewRegistry()
	r.Counter("det_total", Deterministic, "").Add(1)
	r.Counter("sched_total", Scheduling, "").Add(1)
	det := r.Snapshot().DeterministicText()
	if !strings.Contains(det, "det_total") || strings.Contains(det, "sched_total") {
		t.Fatalf("deterministic section wrong:\n%s", det)
	}
}

func TestSpanRecordsWallTime(t *testing.T) {
	r := NewRegistry()
	sc := NewScope(r, "campaign").Child("shard")
	sp := sc.Start("check")
	time.Sleep(time.Millisecond)
	sp.End()
	sc.Timed("check", func() {})
	name := `span_wall_ns{span="campaign/shard/check"}`
	s, ok := r.Snapshot().Get(name)
	if !ok || s.Count != 2 || s.Sum == 0 || s.Class != "scheduling" {
		t.Fatalf("span sample wrong: %+v ok=%v", s, ok)
	}
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressLine(&buf, time.Nanosecond)
	p.Flush("working %d", 1)
	time.Sleep(time.Millisecond)
	p.Update("go")
	p.Finish()
	p.Update("after finish") // discarded
	out := buf.String()
	if !strings.Contains(out, "\rworking 1") || !strings.Contains(out, "\rgo") {
		t.Fatalf("progress output wrong: %q", out)
	}
	if strings.Contains(out, "after finish") {
		t.Fatalf("update after Finish leaked: %q", out)
	}
	var nilP *ProgressLine
	nilP.Update("x")
	nilP.Flush("x")
	nilP.Finish()
}

// TestTelemetryRaceStress hammers one registry from many goroutines —
// run under -race in make ci it is the proof that the hot paths are
// actually lock-free-safe, not accidentally single-threaded.
func TestTelemetryRaceStress(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg, snapWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot reader, on its own WaitGroup: it only exits
	// once stop closes, which happens after the writers drain — putting
	// it in wg would deadlock wg.Wait(). Throttled: an unthrottled
	// snapshot loop allocates so hard under -race on one CPU that the
	// writers starve and the test times out rather than finishing.
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = r.Snapshot().DeterministicText()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("stress_total", Deterministic, "")
			h := r.Histogram("stress_hist", Scheduling, "")
			g := r.Gauge("stress_gauge", Scheduling, "")
			sc := NewScope(r, "stress")
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(uint64(i))
				g.Add(1)
				if i%100 == 0 {
					// New series under contention exercises resolve.
					r.Counter(L("stress_labelled_total", "w", fmt.Sprint(w)), Scheduling, "").Inc()
					sc.Start("tick").End()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if got := r.Counter("stress_total", Deterministic, "").Value(); got != workers*2000 {
		t.Fatalf("stress counter = %d, want %d", got, workers*2000)
	}
}
