package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// ProgressLine renders a single live status line (terminated by \r) to
// a terminal-ish writer, rate-limited so a hot campaign loop can call
// Update per candidate without flooding the tty. It is safe for
// concurrent use; the final Finish clears the line so ordinary output
// can follow.
type ProgressLine struct {
	mu       sync.Mutex
	w        io.Writer
	every    time.Duration
	last     time.Time
	lastLen  int
	finished bool
}

// NewProgressLine returns a progress line writing to w, refreshing at
// most once per interval (default 100ms when interval <= 0). A nil
// ProgressLine discards updates.
func NewProgressLine(w io.Writer, interval time.Duration) *ProgressLine {
	if w == nil {
		return nil
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &ProgressLine{w: w, every: interval}
}

// Update replaces the live line if the rate limit allows. Force it
// with Flush.
func (p *ProgressLine) Update(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished || time.Since(p.last) < p.every {
		return
	}
	p.render(fmt.Sprintf(format, args...))
}

// Flush writes the line immediately, ignoring the rate limit.
func (p *ProgressLine) Flush(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished {
		return
	}
	p.render(fmt.Sprintf(format, args...))
}

// render writes line padded to blank out the previous one. Callers
// hold p.mu.
func (p *ProgressLine) render(line string) {
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastLen = len(line)
	p.last = time.Now()
}

// Clear blanks the live line without finishing: the next Update
// redraws it. Call it before printing a normal line (e.g. a streamed
// finding) so the two don't interleave on a shared terminal.
func (p *ProgressLine) Clear() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished || p.lastLen == 0 {
		return
	}
	fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.lastLen))
	p.lastLen = 0
}

// Finish clears the live line and stops further updates. Call it
// before printing normal output below the progress display.
func (p *ProgressLine) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished {
		return
	}
	p.finished = true
	if p.lastLen > 0 {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.lastLen))
	}
}
