package sdag

import (
	"tameir/internal/core"
	"tameir/internal/ir"
)

// Combine runs the DAG combiner: a small set of peephole rewrites at
// the DAG level (constant folding and trivial identities). Deferred-UB
// operands never reach this layer as foldable constants — NUndefReg is
// a register read, which keeps the combiner trivially sound.
func Combine(fd *FuncDAG) {
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for i, a := range n.Args {
			walk(a)
			if r := combineNode(a); r != nil {
				n.Args[i] = r
			}
		}
	}
	for _, b := range fd.Blocks {
		for _, r := range b.Roots {
			walk(r)
		}
	}
}

// combineNode returns a replacement for n, or nil.
func combineNode(n *Node) *Node {
	switch n.Op {
	case NBinop:
		x, y := n.Args[0], n.Args[1]
		if x.Op == NConst && y.Op == NConst {
			s, ub := core.EvalBinopConcrete(n.IROp, 0, n.Bits, x.Imm, y.Imm, core.Freeze)
			if ub == "" && s.Kind == core.Concrete {
				return &Node{Op: NConst, Bits: n.Bits, Imm: s.Bits}
			}
		}
		// x + 0, x | 0, x ^ 0, x << 0 ... identity on the right.
		if y.Op == NConst && y.Imm == 0 {
			switch n.IROp {
			case ir.OpAdd, ir.OpSub, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
				return x
			}
		}
		if y.Op == NConst && y.Imm == 1 && n.IROp == ir.OpMul {
			return x
		}
	case NZExt:
		// Values are already zero-extended in registers.
		return n.Args[0]
	case NMask:
		a := n.Args[0]
		if a.Op == NConst {
			return &Node{Op: NConst, Bits: n.Bits, Imm: ir.TruncBits(a.Imm, n.Bits)}
		}
		if a.Op == NMask && a.Bits <= n.Bits {
			return a
		}
	case NFreeze:
		// freeze(freeze(x)) → freeze(x) also holds at DAG level.
		if n.Args[0].Op == NFreeze {
			return n.Args[0]
		}
		// freeze(const) → const.
		if n.Args[0].Op == NConst {
			return n.Args[0]
		}
	}
	return nil
}
