// Package sdag is the SelectionDAG-like middle layer of the backend,
// mirroring the lowering pipeline Section 6 of the paper describes:
// LLVM IR → SelectionDAG → MachineInstr. The paper's freeze work
// touches this layer twice:
//
//   - freeze exists as a first-class DAG node (a freeze in the IR maps
//     directly to a freeze in the DAG);
//   - type legalization must handle freeze with operands of illegal
//     type — here, any width that is not the 64-bit register width is
//     "illegal" and values live zero-extended in registers, so a
//     narrow freeze legalizes to a full-width freeze with no extra
//     masking (the zero-extension invariant is preserved by copying).
//
// Poison and undef leaves become NUndefReg nodes, selected as reads of
// the pinned undef register; freeze nodes are selected as plain
// register copies (§6, "Lowering freeze").
package sdag

import (
	"fmt"

	"tameir/internal/ir"
)

// NodeOp enumerates DAG node kinds.
type NodeOp uint8

const (
	NConst NodeOp = iota
	NUndefReg
	NCopyFromVReg
	NCopyToVReg
	NGlobal
	NFrame
	NBinop
	NICmp
	NSelect
	NFreeze
	NSExt
	NZExt
	NTrunc
	NMask // legalization-inserted AND with (1<<Bits)-1
	NLoad
	NStore
	NGEP
	NCall
	NBr
	NBrCond
	NRet
	NUnreachable
)

var nodeOpNames = [...]string{
	NConst: "const", NUndefReg: "undefreg", NCopyFromVReg: "copyfrom",
	NCopyToVReg: "copyto", NGlobal: "global", NFrame: "frame",
	NBinop: "binop", NICmp: "icmp", NSelect: "select", NFreeze: "freeze",
	NSExt: "sext", NZExt: "zext", NTrunc: "trunc", NMask: "mask",
	NLoad: "load", NStore: "store", NGEP: "gep", NCall: "call",
	NBr: "br", NBrCond: "brcond", NRet: "ret", NUnreachable: "unreachable",
}

// String returns the node-kind name.
func (o NodeOp) String() string {
	if int(o) < len(nodeOpNames) && nodeOpNames[o] != "" {
		return nodeOpNames[o]
	}
	return fmt.Sprintf("node%d", uint8(o))
}

// Node is one DAG node. Bits is the node's logical width; the register
// invariant is that the value is zero-extended to 64 bits.
type Node struct {
	Op    NodeOp
	IROp  ir.Op
	Attrs ir.Attrs
	Pred  ir.Pred
	Bits  uint
	// FromBits is the source width of NSExt/NZExt/NTrunc.
	FromBits uint
	Args     []*Node

	Imm       uint64
	VReg      int
	GlobalIdx int
	FrameOff  uint32
	CalleeIdx int
	ElemSize  uint32
	Block     int // BrCond true / Br target
	Block2    int // BrCond false target

	// Uses counts in-DAG consumers (set by Build; used by combines
	// and by instruction selection for cmp/branch fusion).
	Uses int
}

// BlockDAG holds one basic block's root nodes in program order: stores,
// calls, vreg copies, and the terminator last.
type BlockDAG struct {
	Roots []*Node
}

// FuncDAG is the whole function, with virtual registers assigned to
// every cross-block value.
type FuncDAG struct {
	Name      string
	Blocks    []*BlockDAG
	NumVRegs  int
	FrameSize uint32
	NumParams int
	RetBits   uint
}

// builder state.
type builder struct {
	mod      *ir.Module
	fn       *ir.Func
	blockIdx map[*ir.Block]int
	vreg     map[ir.Value]int
	// phiIn is the vreg predecessors write for each phi; the phi's
	// own vreg (vreg[phi]) is refreshed from it at the top of the
	// phi's block. Splitting the two avoids the classic lost-copy
	// problem: a conditional branch's edge copies must not be visible
	// to reads on the other edge.
	phiIn    map[*ir.Instr]int
	frameOff map[*ir.Instr]uint32
	numVRegs int
	frame    uint32
}

// Build lowers an IR function to its DAG form. Vector types are not
// supported by the VX64 backend (the paper's vector discussion is
// IR-level; our frontend never emits them).
func Build(mod *ir.Module, fn *ir.Func) (*FuncDAG, error) {
	b := &builder{
		mod:      mod,
		fn:       fn,
		blockIdx: map[*ir.Block]int{},
		vreg:     map[ir.Value]int{},
		phiIn:    map[*ir.Instr]int{},
		frameOff: map[*ir.Instr]uint32{},
	}
	for i, blk := range fn.Blocks {
		b.blockIdx[blk] = i
	}
	// Check for vectors up front.
	var typeErr error
	fn.ForEachInstr(func(in *ir.Instr) {
		if in.Ty.IsVec() {
			typeErr = fmt.Errorf("sdag: vector type %s in @%s is not supported by VX64", in.Ty, fn.Name())
		}
		for _, a := range in.Args() {
			if a.Type().IsVec() {
				typeErr = fmt.Errorf("sdag: vector operand in @%s is not supported by VX64", fn.Name())
			}
		}
	})
	if typeErr != nil {
		return nil, typeErr
	}

	// Parameters get vregs 0..n-1.
	for i, p := range fn.Params {
		b.vreg[p] = i
	}
	b.numVRegs = len(fn.Params)

	// Frame slots for entry-block allocas.
	for _, in := range fn.Entry().Instrs() {
		if in.Op == ir.OpAlloca {
			cnt := in.Arg(0).(*ir.Const).Bits
			size := uint32((in.AllocTy.Bitwidth()+7)/8) * uint32(cnt)
			size = (size + 7) &^ 7
			b.frameOff[in] = b.frame
			b.frame += size
		}
	}
	fn.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpAlloca && b.frameOff[in] == 0 && in.Parent() != fn.Entry() {
			typeErr = fmt.Errorf("sdag: non-entry alloca in @%s", fn.Name())
		}
	})
	if typeErr != nil {
		return nil, typeErr
	}

	// Assign vregs to phis and to instrs used outside their block.
	fn.ForEachInstr(func(in *ir.Instr) {
		if in.Ty.IsVoid() {
			return
		}
		needs := in.Op == ir.OpPhi
		if !needs {
			for _, u := range in.Users() {
				if u.Parent() != in.Parent() || u.Op == ir.OpPhi {
					needs = true
					break
				}
			}
		}
		if needs {
			b.vreg[in] = b.numVRegs
			b.numVRegs++
			if in.Op == ir.OpPhi {
				b.phiIn[in] = b.numVRegs
				b.numVRegs++
			}
		}
	})

	fd := &FuncDAG{
		Name:      fn.Name(),
		NumVRegs:  b.numVRegs,
		NumParams: len(fn.Params),
		RetBits:   fn.RetTy.Bitwidth(),
	}
	for _, blk := range fn.Blocks {
		bd, err := b.buildBlock(blk)
		if err != nil {
			return nil, err
		}
		fd.Blocks = append(fd.Blocks, bd)
	}
	fd.FrameSize = b.frame
	// The extra vregs created for parallel phi copies were appended.
	fd.NumVRegs = b.numVRegs
	countUses(fd)
	return fd, nil
}

func width(ty ir.Type) uint {
	if ty.IsPtr() {
		return 64 // pointers live in full registers on VX64
	}
	return ty.Bits
}

func (b *builder) buildBlock(blk *ir.Block) (*BlockDAG, error) {
	bd := &BlockDAG{}
	local := map[ir.Value]*Node{}
	for _, ph := range blk.Phis() {
		from := &Node{Op: NCopyFromVReg, Bits: width(ph.Ty), VReg: b.phiIn[ph]}
		bd.Roots = append(bd.Roots, &Node{Op: NCopyToVReg, Bits: width(ph.Ty), VReg: b.vreg[ph], Args: []*Node{from}})
	}

	var operand func(v ir.Value) (*Node, error)
	operand = func(v ir.Value) (*Node, error) {
		if n, ok := local[v]; ok {
			return n, nil
		}
		var n *Node
		switch x := v.(type) {
		case *ir.Const:
			n = &Node{Op: NConst, Bits: width(x.Ty), Imm: x.Bits}
		case *ir.Poison:
			n = &Node{Op: NUndefReg, Bits: width(x.Ty)}
		case *ir.Undef:
			// At MI level there is no poison, only undef registers
			// (§6); both lower the same way.
			n = &Node{Op: NUndefReg, Bits: width(x.Ty)}
		case *ir.Global:
			idx := -1
			for i, g := range b.mod.Globals {
				if g == x {
					idx = i
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("sdag: global @%s not in module", x.Name())
			}
			n = &Node{Op: NGlobal, Bits: 64, GlobalIdx: idx}
		case *ir.Param:
			n = &Node{Op: NCopyFromVReg, Bits: width(x.Ty), VReg: b.vreg[x]}
		case *ir.Instr:
			if x.Op == ir.OpAlloca {
				n = &Node{Op: NFrame, Bits: 64, FrameOff: b.frameOff[x]}
			} else {
				vr, ok := b.vreg[x]
				if !ok {
					return nil, fmt.Errorf("sdag: use of %%%s before definition in block", x.Name())
				}
				n = &Node{Op: NCopyFromVReg, Bits: width(x.Ty), VReg: vr}
			}
		default:
			return nil, fmt.Errorf("sdag: unsupported operand %T", v)
		}
		local[v] = n
		return n, nil
	}

	emitTerminatorCopies := func() error {
		// Parallel phi copies for each successor: read all incomings
		// into fresh temporaries first, then write the phi vregs, so
		// swapping phis stay correct.
		succs := blk.Succs()
		seen := map[*ir.Block]bool{}
		for _, s := range succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			phis := s.Phis()
			if len(phis) == 0 {
				continue
			}
			temps := make([]int, len(phis))
			for i, ph := range phis {
				incoming, ok := ph.PhiIncoming(blk)
				if !ok {
					return fmt.Errorf("sdag: phi %%%s lacks incoming for %%%s", ph.Name(), blk.Name())
				}
				n, err := operand(incoming)
				if err != nil {
					return err
				}
				temps[i] = b.numVRegs
				b.numVRegs++
				bd.Roots = append(bd.Roots, &Node{Op: NCopyToVReg, Bits: n.Bits, VReg: temps[i], Args: []*Node{n}})
			}
			for i, ph := range phis {
				from := &Node{Op: NCopyFromVReg, Bits: width(ph.Ty), VReg: temps[i]}
				bd.Roots = append(bd.Roots, &Node{Op: NCopyToVReg, Bits: width(ph.Ty), VReg: b.phiIn[ph], Args: []*Node{from}})
			}
		}
		return nil
	}

	for _, in := range blk.Instrs() {
		switch {
		case in.Op == ir.OpPhi:
			// The phi's value arrives via its vreg; reading it in this
			// block uses CopyFromVReg, arranged by operand().
			local[in] = &Node{Op: NCopyFromVReg, Bits: width(in.Ty), VReg: b.vreg[in]}
			continue
		case in.Op == ir.OpAlloca:
			local[in] = &Node{Op: NFrame, Bits: 64, FrameOff: b.frameOff[in]}
			continue
		}
		var n *Node
		mk := func(op NodeOp, bits uint, args ...*Node) *Node {
			return &Node{Op: op, Bits: bits, Args: args}
		}
		argN := func(i int) (*Node, error) { return operand(in.Arg(i)) }
		switch {
		case in.Op.IsBinop():
			x, err := argN(0)
			if err != nil {
				return nil, err
			}
			y, err := argN(1)
			if err != nil {
				return nil, err
			}
			n = mk(NBinop, width(in.Ty), x, y)
			n.IROp = in.Op
			n.Attrs = in.Attrs
		case in.Op == ir.OpICmp:
			x, err := argN(0)
			if err != nil {
				return nil, err
			}
			y, err := argN(1)
			if err != nil {
				return nil, err
			}
			n = mk(NICmp, 1, x, y)
			n.Pred = in.Pred
			n.FromBits = width(in.Arg(0).Type())
		case in.Op == ir.OpSelect:
			c, err := argN(0)
			if err != nil {
				return nil, err
			}
			x, err := argN(1)
			if err != nil {
				return nil, err
			}
			y, err := argN(2)
			if err != nil {
				return nil, err
			}
			n = mk(NSelect, width(in.Ty), c, x, y)
		case in.Op == ir.OpFreeze:
			x, err := argN(0)
			if err != nil {
				return nil, err
			}
			n = mk(NFreeze, width(in.Ty), x)
		case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
			x, err := argN(0)
			if err != nil {
				return nil, err
			}
			op := map[ir.Op]NodeOp{ir.OpZExt: NZExt, ir.OpSExt: NSExt, ir.OpTrunc: NTrunc}[in.Op]
			n = mk(op, width(in.Ty), x)
			n.FromBits = width(in.Arg(0).Type())
		case in.Op == ir.OpBitcast:
			// Scalar bitcasts between equal widths are copies.
			x, err := argN(0)
			if err != nil {
				return nil, err
			}
			n = x
		case in.Op == ir.OpLoad:
			p, err := argN(0)
			if err != nil {
				return nil, err
			}
			n = mk(NLoad, width(in.Ty), p)
		case in.Op == ir.OpStore:
			v, err := argN(0)
			if err != nil {
				return nil, err
			}
			p, err := argN(1)
			if err != nil {
				return nil, err
			}
			st := mk(NStore, width(in.Arg(0).Type()), v, p)
			bd.Roots = append(bd.Roots, st)
			continue
		case in.Op == ir.OpGEP:
			base, err := argN(0)
			if err != nil {
				return nil, err
			}
			idx, err := argN(1)
			if err != nil {
				return nil, err
			}
			n = mk(NGEP, 64, base, idx)
			n.ElemSize = uint32((in.AllocTy.Bitwidth() + 7) / 8)
			n.FromBits = width(in.Arg(1).Type())
		case in.Op == ir.OpCall:
			idx := -1
			for i, f := range b.mod.Funcs {
				if f == in.Callee {
					idx = i
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("sdag: callee @%s not in module", in.Callee.Name())
			}
			n = mk(NCall, width(in.Ty))
			n.CalleeIdx = idx
			for i := 0; i < in.NumArgs(); i++ {
				a, err := argN(i)
				if err != nil {
					return nil, err
				}
				n.Args = append(n.Args, a)
			}
			bd.Roots = append(bd.Roots, n)
		case in.Op == ir.OpBr && !in.IsConditionalBr():
			if err := emitTerminatorCopies(); err != nil {
				return nil, err
			}
			t := &Node{Op: NBr, Block: b.blockIdx[in.BlockArg(0)]}
			bd.Roots = append(bd.Roots, t)
			continue
		case in.Op == ir.OpBr:
			c, err := argN(0)
			if err != nil {
				return nil, err
			}
			if err := emitTerminatorCopies(); err != nil {
				return nil, err
			}
			t := &Node{Op: NBrCond, Args: []*Node{c}, Block: b.blockIdx[in.BlockArg(0)], Block2: b.blockIdx[in.BlockArg(1)]}
			bd.Roots = append(bd.Roots, t)
			continue
		case in.Op == ir.OpRet:
			t := &Node{Op: NRet}
			if in.NumArgs() == 1 {
				v, err := argN(0)
				if err != nil {
					return nil, err
				}
				t.Args = []*Node{v}
				t.Bits = width(in.Arg(0).Type())
			}
			bd.Roots = append(bd.Roots, t)
			continue
		case in.Op == ir.OpUnreachable:
			bd.Roots = append(bd.Roots, &Node{Op: NUnreachable})
			continue
		default:
			return nil, fmt.Errorf("sdag: cannot lower %s", in.Op)
		}
		local[in] = n
		// Every computation is anchored as a root in program order, so
		// instruction selection emits it before any later phi-vreg
		// copies that could overwrite its inputs. Cross-block values
		// are additionally published through their vreg.
		if vr, ok := b.vreg[in]; ok {
			bd.Roots = append(bd.Roots, &Node{Op: NCopyToVReg, Bits: n.Bits, VReg: vr, Args: []*Node{n}})
		} else if in.Op != ir.OpCall {
			bd.Roots = append(bd.Roots, n)
		}
	}
	return bd, nil
}

// countUses fills Node.Uses for fusion decisions.
func countUses(fd *FuncDAG) {
	var walk func(n *Node)
	seen := map[*Node]bool{}
	walk = func(n *Node) {
		for _, a := range n.Args {
			a.Uses++
			if !seen[a] {
				seen[a] = true
				walk(a)
			}
		}
	}
	for _, b := range fd.Blocks {
		for _, r := range b.Roots {
			if !seen[r] {
				seen[r] = true
				walk(r)
			}
		}
	}
}
