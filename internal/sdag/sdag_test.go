package sdag

import (
	"testing"

	"tameir/internal/ir"
)

func build(t *testing.T, src string) (*ir.Module, *FuncDAG) {
	t.Helper()
	mod := ir.MustParseModule(src)
	fd, err := Build(mod, mod.Funcs[len(mod.Funcs)-1])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return mod, fd
}

func countNodes(fd *FuncDAG, op NodeOp) int {
	n := 0
	seen := map[*Node]bool{}
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if seen[nd] {
			return
		}
		seen[nd] = true
		if nd.Op == op {
			n++
		}
		for _, a := range nd.Args {
			walk(a)
		}
	}
	for _, b := range fd.Blocks {
		for _, r := range b.Roots {
			walk(r)
		}
	}
	return n
}

func TestBuildFreezeAndPoisonNodes(t *testing.T) {
	// §6: a freeze in the IR maps directly to a freeze in the DAG;
	// poison becomes an undef-register read.
	_, fd := build(t, `define i32 @f(i32 %x) {
entry:
  %p = add i32 %x, poison
  %fz = freeze i32 %p
  ret i32 %fz
}`)
	if countNodes(fd, NFreeze) != 1 {
		t.Error("freeze did not map to an NFreeze node")
	}
	if countNodes(fd, NUndefReg) != 1 {
		t.Error("poison did not map to an NUndefReg node")
	}
}

func TestBuildIllegalTypeFreeze(t *testing.T) {
	// Type legalization must handle freeze of an illegal (sub-word)
	// type: the node keeps its logical width; the register invariant
	// (zero-extended) means no masking is required for the copy.
	_, fd := build(t, `define i2 @f(i2 %x) {
entry:
  %fz = freeze i2 %x
  ret i2 %fz
}`)
	seen := false
	for _, b := range fd.Blocks {
		for _, r := range b.Roots {
			var walk func(n *Node)
			walk = func(n *Node) {
				if n.Op == NFreeze {
					seen = true
					if n.Bits != 2 {
						t.Errorf("freeze node width = %d, want the logical 2", n.Bits)
					}
				}
				for _, a := range n.Args {
					walk(a)
				}
			}
			walk(r)
		}
	}
	if !seen {
		t.Fatal("no freeze node")
	}
}

func TestBuildRejectsVectors(t *testing.T) {
	mod := ir.MustParseModule(`define <2 x i16> @f(<2 x i16> %v) {
entry:
  ret <2 x i16> %v
}`)
	if _, err := Build(mod, mod.Funcs[0]); err == nil {
		t.Error("vector function must be rejected")
	}
}

func TestBuildRejectsNonEntryAlloca(t *testing.T) {
	mod := ir.MustParseModule(`define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %s = alloca i32, i32 1
  %v = load i32, ptr %s
  ret i32 %v
b:
  ret i32 0
}`)
	if _, err := Build(mod, mod.Funcs[0]); err == nil {
		t.Error("non-entry alloca must be rejected")
	}
}

func TestPhiVRegSplit(t *testing.T) {
	// The lost-copy guard: each phi uses two vregs (in and out), so a
	// latch's edge copies cannot be observed on the exit edge.
	_, fd := build(t, `define i32 @f(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i1, %loop ]
  %i1 = add i32 %i, 1
  %c = icmp ult i32 %i1, %n
  br i1 %c, label %loop, label %exit
exit:
  ret i32 %i
}`)
	// Params: 1 vreg. Phi: 2 (in+out). i1, c cross-block? i1 used by
	// phi (cross-block) → 1. c used in same block only → 0. Plus phi
	// copy temps. Expect at least 1+2+1 distinct vregs.
	if fd.NumVRegs < 4 {
		t.Errorf("NumVRegs = %d, expected the phi in/out split to allocate more", fd.NumVRegs)
	}
}

func TestCombineFoldsConstants(t *testing.T) {
	_, fd := build(t, `define i32 @f(i32 %x) {
entry:
  %a = add i32 2, 3
  %b = add i32 %x, %a
  ret i32 %b
}`)
	Combine(fd)
	// The inner add folded to a constant 5 operand.
	found := false
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.Op == NBinop {
			for _, a := range n.Args {
				if a.Op == NConst && a.Imm == 5 {
					found = true
				}
			}
		}
		for _, a := range n.Args {
			walk(a)
		}
	}
	for _, b := range fd.Blocks {
		for _, r := range b.Roots {
			walk(r)
		}
	}
	if !found {
		t.Error("DAG combine did not fold 2+3")
	}
}

func TestCombineFreezeRules(t *testing.T) {
	_, fd := build(t, `define i32 @f() {
entry:
  %fz = freeze i32 7
  ret i32 %fz
}`)
	Combine(fd)
	// freeze(const) folds at the DAG level too: the ret's operand is
	// the constant.
	last := fd.Blocks[0].Roots[len(fd.Blocks[0].Roots)-1]
	if last.Op != NRet || last.Args[0].Op != NConst || last.Args[0].Imm != 7 {
		t.Errorf("freeze(7) not combined away; ret arg is %s", last.Args[0].Op)
	}
}

func TestUsesCounting(t *testing.T) {
	_, fd := build(t, `define i1 @f(i32 %x) {
entry:
  %c = icmp ult i32 %x, 10
  br i1 %c, label %a, label %b
a:
  ret i1 %c
b:
  ret i1 false
}`)
	// %c is used twice: by the same-block branch (direct node
	// reference) and cross-block via its CopyToVReg. Uses must count
	// both — instruction selection relies on Uses == 1 to fuse a
	// compare into its branch, and this icmp must NOT be fused (its
	// value is also taken).
	for _, b := range fd.Blocks {
		for _, r := range b.Roots {
			if r.Op == NBrCond && r.Args[0].Op == NICmp {
				if r.Args[0].Uses < 2 {
					t.Errorf("icmp with a value use has Uses = %d, want ≥ 2 (fusion would drop the SETcc)", r.Args[0].Uses)
				}
			}
		}
	}
}
