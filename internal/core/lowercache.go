package core

import (
	"sort"
	"sync"

	"tameir/internal/cache"
	"tameir/internal/ir"
)

// The bytecode lowering cache. Before it, lowering happened once per
// Program — but campaign shards compile the same canonical functions
// over and over under fresh *ir.Func identities (every candidate is
// cloned before transformation), so the same bytecode was re-lowered
// once per shard, per promotion. This cache shares lowered programs
// process-wide, keyed by (canonical text, Options, tier-backend name),
// exactly the keying ISSUE 8 asks for.
//
// Sharing a lowered program across distinct *ir.Func values with the
// same text is only sound when the lowering depends on nothing but the
// text: no call targets (the bytecode links *ir.Func callees), no
// global references and no memory operations (the bytecode runner
// allocates the owning module's globals, so a lowering from module A
// must not serve a function of module B whose heap would lay out
// differently). lowerShareable enforces that; everything else lowers
// per-Program as before. The §6 campaign workload — straight-line
// scalar candidates — is exactly the shareable set, which is why the
// cache pays off where it matters.

// DefaultLowerCacheSize bounds the process-wide lowering cache;
// lowered §6-sized programs are a few hundred bytes each.
const DefaultLowerCacheSize = 4096

// SemanticsFingerprint names the engine's observable semantics for
// persistent cache snapshots (-cache-dir). Bump it whenever a change
// could alter any behaviour set, outcome, or Check's deterministic
// input enumeration — stale snapshots are then rejected wholesale
// instead of replaying last build's verdicts.
const SemanticsFingerprint = "tameir-sem-1"

// lowerKey identifies one shareable lowering. All fields are scalars
// or strings, so the key is comparable and stable across processes.
type lowerKey struct {
	text string
	opts Options // normalized
	tier string  // backend name, e.g. "bytecode"
}

// sharedLowerings is the process-wide lowering cache. A nil
// TierProgram value records a decline, so textually identical
// functions do not re-ask the backend.
var sharedLowerings = cache.NewTable[lowerKey, TierProgram](DefaultLowerCacheSize, 8,
	func(k lowerKey) uint32 { return cache.StringHash(k.text) })

// lowerShareable reports whether fn's lowering is a pure function of
// its canonical text and options — no calls, no globals, no memory —
// and therefore safe to share across function identities and modules.
func lowerShareable(fn *ir.Func) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs() {
			switch in.Op {
			case ir.OpCall, ir.OpAlloca, ir.OpLoad, ir.OpStore:
				return false
			}
			for _, a := range in.Args() {
				if _, ok := a.(*ir.Global); ok {
					return false
				}
			}
		}
	}
	return true
}

// lowerCached resolves fn's tier-2 lowering through the shared cache.
// usedCache=false means the function is not shareable (or no backend
// is registered) and the caller should lower privately; otherwise tp
// is the shared lowering, nil when the backend declined.
func lowerCached(fn *ir.Func, opts Options) (tp TierProgram, usedCache bool) {
	if tierBackend == nil || !lowerShareable(fn) {
		return nil, false
	}
	k := lowerKey{text: fn.String(), opts: opts, tier: tierBackend.Name()}
	tp, _ = sharedLowerings.GetOrCompute(k, func() TierProgram {
		if lowered, ok := tierBackend.Lower(fn, opts); ok {
			return lowered
		}
		return nil
	}, nil)
	return tp, true
}

// LowerCacheStats returns the shared lowering cache's counters.
func LowerCacheStats() cache.Stats { return sharedLowerings.Stats() }

// warmLowerings is the set of lowerings a -cache-dir snapshot recorded
// as hot last run. Compile consults it (when non-empty) to mark fresh
// programs pre-hot, so TierAuto promotes them on their first execution
// instead of re-paying the threshold. Tier choice never affects
// Outcomes — the three-way lockstep tests pin that — so installing a
// snapshot can only move promotion points, never change a verdict.
var warmLowerings struct {
	mu sync.RWMutex
	m  map[lowerKey]struct{}
}

// warmPromoted reports whether (fn, opts) was recorded hot by an
// installed snapshot. The common case — no snapshot installed — is a
// single RLock'd length check, no fn.String().
func warmPromoted(fn *ir.Func, opts Options) bool {
	if tierBackend == nil {
		return false
	}
	warmLowerings.mu.RLock()
	defer warmLowerings.mu.RUnlock()
	if len(warmLowerings.m) == 0 {
		return false
	}
	k := lowerKey{text: fn.String(), opts: opts, tier: tierBackend.Name()}
	_, ok := warmLowerings.m[k]
	return ok
}

// LowerSnapshot is the persistable metadata of the lowering cache:
// which (canonical text, options, tier) triples were lowered, not the
// lowered bytes themselves — re-lowering is cheap once you know what
// to lower.
type LowerSnapshot struct {
	Entries []LowerSnapshotEntry
}

// LowerSnapshotEntry is one recorded lowering.
type LowerSnapshotEntry struct {
	Text string
	Opts Options
	Tier string
}

// LowerSnapshotNow captures the successful lowerings currently
// resident in the shared cache, in deterministic (sorted) order.
func LowerSnapshotNow() *LowerSnapshot {
	s := &LowerSnapshot{}
	sharedLowerings.Range(func(k lowerKey, tp TierProgram) {
		if tp == nil {
			return // a recorded decline is not worth persisting
		}
		s.Entries = append(s.Entries, LowerSnapshotEntry{Text: k.text, Opts: k.opts, Tier: k.tier})
	})
	sort.Slice(s.Entries, func(i, j int) bool {
		a, b := &s.Entries[i], &s.Entries[j]
		if a.Text != b.Text {
			return a.Text < b.Text
		}
		if a.Tier != b.Tier {
			return a.Tier < b.Tier
		}
		return lowerKeyLess(a.Opts, b.Opts)
	})
	return s
}

// lowerKeyLess is an arbitrary-but-total order over Options for
// deterministic snapshots.
func lowerKeyLess(a, b Options) bool {
	ka := [8]int{int(a.Mode), int(a.BranchPoison), int(a.SelectPoisonCond), boolInt(a.SelectArmPoisonEither), a.Fuel, a.MaxCallDepth, boolInt(a.EmitTrace), 0}
	kb := [8]int{int(b.Mode), int(b.BranchPoison), int(b.SelectPoisonCond), boolInt(b.SelectArmPoisonEither), b.Fuel, b.MaxCallDepth, boolInt(b.EmitTrace), 0}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	return false
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// InstallLowerSnapshot replaces the warm-promotion set with the
// snapshot's entries (normalizing options, dropping entries for other
// backends) and returns how many were installed. Pass nil to clear.
func InstallLowerSnapshot(s *LowerSnapshot) int {
	warmLowerings.mu.Lock()
	defer warmLowerings.mu.Unlock()
	warmLowerings.m = nil
	if s == nil || tierBackend == nil {
		return 0
	}
	name := tierBackend.Name()
	n := 0
	for _, e := range s.Entries {
		if e.Tier != name {
			continue
		}
		if warmLowerings.m == nil {
			warmLowerings.m = make(map[lowerKey]struct{}, len(s.Entries))
		}
		warmLowerings.m[lowerKey{text: e.Text, opts: e.Opts.normalized(), tier: e.Tier}] = struct{}{}
		n++
	}
	return n
}
