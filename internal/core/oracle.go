package core

import "math/rand"

// Oracle resolves the nondeterminism in the semantics: the value an
// undef use takes, the value freeze gives a poison input, the direction
// of a legacy nondeterministic branch on poison, and the content of
// undef bits materialized by ty↑.
type Oracle interface {
	// Choose returns a value in [0, n). n is at least 1.
	Choose(n uint64) uint64
}

// ZeroOracle always chooses 0: the cheapest deterministic refinement of
// the nondeterministic semantics. Useful for smoke-testing and for the
// benchmark pipelines, where any consistent choice will do.
type ZeroOracle struct{}

// Choose implements Oracle.
func (ZeroOracle) Choose(n uint64) uint64 { return 0 }

// RandOracle chooses uniformly at random from a seeded source, giving
// reproducible randomized executions.
type RandOracle struct{ Rng *rand.Rand }

// NewRandOracle returns a RandOracle with the given seed.
func NewRandOracle(seed int64) *RandOracle {
	return &RandOracle{Rng: rand.New(rand.NewSource(seed))}
}

// Choose implements Oracle.
func (o *RandOracle) Choose(n uint64) uint64 {
	if n <= 1 {
		return 0
	}
	return uint64(o.Rng.Int63n(int64(n)))
}

// EnumOracle enumerates every sequence of choices, depth-first. Use it
// to compute the full behaviour set of a function on a given input:
//
//	o := NewEnumOracle(maxChoices)
//	for {
//	    o.Reset()
//	    ... run one execution using o ...
//	    if !o.Next() { break }
//	}
//
// Each execution replays the recorded prefix of choices and extends it
// with zeroes; Next advances the last choice with carry, like an
// odometer whose digit bases are the recorded Choose bounds.
type EnumOracle struct {
	path   []uint64
	limits []uint64
	pos    int
	// Overflowed is set if an execution requested more than MaxChoices
	// choice points; enumeration is then incomplete and the caller must
	// treat results as inconclusive.
	Overflowed bool
	// MaxChoices bounds the number of choice points per execution.
	MaxChoices int
	// MaxFanout bounds any single Choose bound; wider requests set
	// Overflowed and take 0.
	MaxFanout uint64
}

// NewEnumOracle returns an enumerating oracle with the given bounds.
func NewEnumOracle(maxChoices int, maxFanout uint64) *EnumOracle {
	return &EnumOracle{MaxChoices: maxChoices, MaxFanout: maxFanout}
}

// Reset rewinds the oracle to replay mode for the next execution.
func (o *EnumOracle) Reset() { o.pos = 0 }

// Clear reinitializes the oracle for a fresh enumeration with the
// given bounds, reusing the recorded-path storage. It lets a worker
// keep one oracle for an entire campaign instead of allocating one per
// behaviour set.
func (o *EnumOracle) Clear(maxChoices int, maxFanout uint64) {
	o.path = o.path[:0]
	o.limits = o.limits[:0]
	o.pos = 0
	o.Overflowed = false
	o.MaxChoices = maxChoices
	o.MaxFanout = maxFanout
}

// Choose implements Oracle.
func (o *EnumOracle) Choose(n uint64) uint64 {
	if n > o.MaxFanout {
		o.Overflowed = true
		n = 1
	}
	if o.pos < len(o.path) {
		v := o.path[o.pos]
		o.pos++
		return v
	}
	if len(o.path) >= o.MaxChoices {
		o.Overflowed = true
		return 0
	}
	o.path = append(o.path, 0)
	o.limits = append(o.limits, n)
	o.pos++
	return 0
}

// Next advances to the next choice sequence; it returns false when the
// space is exhausted. Choice points beyond the position reached by the
// last execution are discarded (they were never used).
func (o *EnumOracle) Next() bool {
	// Drop unused tail (recorded in an earlier, longer execution).
	o.path = o.path[:o.pos]
	o.limits = o.limits[:o.pos]
	for i := len(o.path) - 1; i >= 0; i-- {
		o.path[i]++
		if o.path[i] < o.limits[i] {
			o.path = o.path[:i+1]
			o.limits = o.limits[:i+1]
			return true
		}
		o.path = o.path[:i]
		o.limits = o.limits[:i]
	}
	return false
}
