package core

import (
	"fmt"

	"tameir/internal/ir"
)

// TierMode selects which execution tier a compiled Program runs on.
// The zero value keeps PR 3's behaviour: always the closure engine.
type TierMode int

const (
	// TierClosure pins execution to the compile-once closure engine.
	TierClosure TierMode = iota
	// TierAuto starts on the closure engine and promotes a program to
	// the bytecode tier once its execution counter trips
	// TierPolicy.PromoteAfter. This is the tiering pattern wazero's
	// interpreter→compiler engines use: pay lowering cost only for
	// programs hot enough to amortize it.
	TierAuto
	// TierBytecode lowers eagerly and runs every execution on the
	// bytecode VM (falling back to closures only for functions the
	// backend cannot lower).
	TierBytecode
)

// String returns the -tier flag spelling of m.
func (m TierMode) String() string {
	switch m {
	case TierClosure:
		return "closure"
	case TierAuto:
		return "auto"
	case TierBytecode:
		return "bytecode"
	}
	return fmt.Sprintf("TierMode(%d)", int(m))
}

// TierPolicy is the tiering controller's configuration, threaded from
// the -tier flag through refine.Config down to each Executor.
type TierPolicy struct {
	Mode TierMode
	// PromoteAfter is the per-program execution count at which
	// TierAuto promotes to bytecode (DefaultPromoteAfter when 0).
	PromoteAfter uint64
}

// DefaultPromoteAfter is the TierAuto promotion threshold. The §6
// campaigns execute every function 30–300× per check (input odometer ×
// oracle enumeration), so 64 promotes everything that survives more
// than a couple of inputs while leaving one-shot runs on the closure
// engine.
const DefaultPromoteAfter = 64

// threshold returns the effective promotion threshold.
func (p TierPolicy) threshold() uint64 {
	if p.PromoteAfter == 0 {
		return DefaultPromoteAfter
	}
	return p.PromoteAfter
}

// ParseTier parses a -tier flag value. The extra "off" spelling maps
// to the tree-walking interpreter and is reported via interpret rather
// than a TierMode, since the interpreter bypasses Program entirely.
func ParseTier(s string) (policy TierPolicy, interpret bool, err error) {
	switch s {
	case "off":
		return TierPolicy{}, true, nil
	case "closure":
		return TierPolicy{Mode: TierClosure}, false, nil
	case "auto":
		return TierPolicy{Mode: TierAuto}, false, nil
	case "bytecode":
		return TierPolicy{Mode: TierBytecode}, false, nil
	}
	return TierPolicy{}, false, fmt.Errorf("bad tier %q (want off, closure, auto or bytecode)", s)
}

// TierRunner executes one Program on behalf of one Executor. Runners
// are not safe for concurrent use; each Executor owns one.
type TierRunner interface {
	// Run executes the program on args, resolving nondeterminism via
	// o. It must produce an Outcome identical to Executor.Run on the
	// closure engine — same UB messages, same Oracle.Choose sequence,
	// same fuel accounting — and update m exactly as the closure
	// engine would (plus its own per-tier exec counter).
	Run(args []Value, o Oracle, m *EngineMetrics) Outcome
}

// TierProgram is a lowered, immutable form of one function, shareable
// across goroutines the way Program is.
type TierProgram interface {
	// NewRunner returns a fresh single-goroutine execution context.
	NewRunner() TierRunner
}

// TierBackend lowers compiled programs to an alternative tier. The
// bytecode backend registers itself from internal/core/bytecode's
// init; keeping the registration indirect avoids an import cycle
// (bytecode imports core for values, semantics and IR plumbing).
type TierBackend interface {
	Name() string
	// Lower returns the lowered program, or ok=false when fn uses a
	// construct the backend does not support (the caller then stays on
	// the closure engine).
	Lower(fn *ir.Func, opts Options) (tp TierProgram, ok bool)
}

var tierBackend TierBackend

// RegisterTierBackend installs the process-wide tier-2 backend.
// Called from an init function; last registration wins.
func RegisterTierBackend(b TierBackend) { tierBackend = b }
