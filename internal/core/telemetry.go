package core

import "tameir/internal/telemetry"

// This file is the only telemetry touchpoint in core. The engine's hot
// loop never sees the registry: Env.Metrics accumulates plain counters
// and the helpers below fold them in once per batch, so telemetry
// costs nothing per step (and literally nothing when reg is nil).

// Publish folds the engine counters into reg. class is chosen by the
// caller: Deterministic when the counters cover exactly one shard's
// work (the campaign partition fixes them), Scheduling when a shared
// memo or shared executor makes the split timing-dependent.
func (m EngineMetrics) Publish(reg *telemetry.Registry, class telemetry.Class) {
	if reg == nil {
		return
	}
	reg.Counter("engine_execs_total", class, "top-level program executions").Add(m.Execs)
	reg.Counter("engine_steps_total", class, "instructions stepped").Add(m.Steps)
	reg.Counter("pool_frames_pooled_total", class, "inner-call frames served from the pool").Add(m.FramesPooled)
	reg.Counter("pool_frames_allocated_total", class, "inner-call frames freshly allocated").Add(m.FramesAllocated)
	reg.Counter("engine_execs_interp_total", class, "executions on the tree-walking interpreter").Add(m.InterpExecs)
	reg.Counter("engine_execs_closure_total", class, "executions on the compile-once closure engine").Add(m.ClosureExecs)
	reg.Counter("engine_execs_bytecode_total", class, "executions on the bytecode VM").Add(m.BytecodeExecs)
	reg.Counter("engine_promotions_total", class, "programs promoted to the tier-2 backend").Add(m.Promotions)
	// Per-tier exec histograms: one observation per publish batch, so
	// the distribution tracks batch sizes per tier (a zero batch still
	// registers the series — dashboards want the tier visible at 0).
	for _, t := range []struct {
		name string
		n    uint64
	}{
		{"engine_tier_execs_interp", m.InterpExecs},
		{"engine_tier_execs_closure", m.ClosureExecs},
		{"engine_tier_execs_bytecode", m.BytecodeExecs},
	} {
		h := reg.Histogram(t.name, class, "per-publish execution batch size on this tier")
		if t.n > 0 {
			h.Observe(t.n)
		}
	}
}

// Add folds o into s (shard-order merge): counters and resident sizes
// sum; Capacity keeps the largest.
func (s *ProgramCacheStats) Add(o ProgramCacheStats) {
	s.Size += o.Size
	if o.Capacity > s.Capacity {
		s.Capacity = o.Capacity
	}
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Recompiles += o.Recompiles
}

// Publish folds the cache counters into reg. Same class rule as
// EngineMetrics.Publish: per-shard caches are deterministic, the
// process-shared cache is not.
func (s ProgramCacheStats) Publish(reg *telemetry.Registry, class telemetry.Class) {
	if reg == nil {
		return
	}
	reg.Counter("progcache_hits_total", class, "program cache lookup hits").Add(s.Hits)
	reg.Counter("progcache_misses_total", class, "program cache lookup misses (compiles)").Add(s.Misses)
	reg.Counter("progcache_evictions_total", class, "programs evicted by the clock sweep").Add(s.Evictions)
	reg.Counter("progcache_recompiles_total", class, "stale-text recompiles on the verified path").Add(s.Recompiles)
	reg.Gauge("progcache_size", class, "resident compiled programs").Add(int64(s.Size))
}
