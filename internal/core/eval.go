package core

import (
	"fmt"
	"math/bits"

	"tameir/internal/ir"
)

// saddOverflows reports signed overflow of x+y at width w (operands are
// already in-range w-bit signed values).
func saddOverflows(sx, sy int64, w uint) bool {
	if w < 64 {
		sr := sx + sy // exact: |operands| < 2^62
		return ir.SignExtBits(uint64(sr), w) != sr
	}
	sr := sx + sy // wraps at 64 bits
	return (sy > 0 && sr < sx) || (sy < 0 && sr > sx)
}

// ssubOverflows reports signed overflow of x-y at width w.
func ssubOverflows(sx, sy int64, w uint) bool {
	if w < 64 {
		sr := sx - sy
		return ir.SignExtBits(uint64(sr), w) != sr
	}
	sr := sx - sy
	return (sy < 0 && sr < sx) || (sy > 0 && sr > sx)
}

// smulOverflows reports signed overflow of x*y at width w.
func smulOverflows(sx, sy int64, w uint) bool {
	if w <= 32 {
		sr := sx * sy // exact: |operands| < 2^31
		return ir.SignExtBits(uint64(sr), w) != sr
	}
	// Magnitude arithmetic in uint64; uint64(-sx) is the correct
	// magnitude even for the minimum int64.
	ax, ay := uint64(sx), uint64(sy)
	if sx < 0 {
		ax = uint64(-sx)
	}
	if sy < 0 {
		ay = uint64(-sy)
	}
	neg := (sx < 0) != (sy < 0)
	hi, lo := bits.Mul64(ax, ay)
	if hi != 0 {
		return true
	}
	limit := uint64(1) << (w - 1)
	if neg {
		return lo > limit
	}
	return lo >= limit
}

// umulOverflows reports unsigned overflow of x*y at width w.
func umulOverflows(x, y uint64, w uint) bool {
	hi, lo := bits.Mul64(x, y)
	return hi != 0 || ir.TruncBits(lo, w) != lo
}

// chooseBits draws an arbitrary w-bit value from the oracle. Widths
// above 32 are drawn as two halves so bounds stay within uint64.
func chooseBits(o Oracle, w uint) uint64 {
	if w <= 32 {
		return o.Choose(uint64(1) << w)
	}
	lo := o.Choose(1 << 32)
	hi := o.Choose(uint64(1) << (w - 32))
	return hi<<32 | lo
}

// ResolveLane materializes an undef lane into an arbitrary concrete
// value via the oracle ("each use of undef can yield a different
// result" — the resolution happens once per use). Poison and concrete
// lanes pass through.
func ResolveLane(s Scalar, w uint, o Oracle) Scalar {
	if s.Kind == UndefVal {
		return C(chooseBits(o, w))
	}
	return s
}

// ResolveUndef materializes every undef lane of v.
func ResolveUndef(v Value, o Oracle) Value {
	w := v.Ty.ElemType().Bits
	out := Value{Ty: v.Ty, Lanes: make([]Scalar, len(v.Lanes))}
	for i, l := range v.Lanes {
		out.Lanes[i] = ResolveLane(l, w, o)
	}
	return out
}

// FreezeLane implements the freeze rule of Figure 5 on one lane: poison
// (or legacy undef) becomes an arbitrary concrete value; everything
// else is the identity.
func FreezeLane(s Scalar, w uint, o Oracle) Scalar {
	if s.Kind != Concrete {
		return C(chooseBits(o, w))
	}
	return s
}

// EvalBinopConcrete evaluates a binop on two concrete lane values of
// width w. It returns the result lane (which may be poison, from nsw /
// nuw / exact, or over-shift under Freeze semantics; over-shift is
// undef under Legacy semantics per §2.3) and a non-empty ub string for
// immediate UB (division by zero, signed division overflow).
func EvalBinopConcrete(op ir.Op, attrs ir.Attrs, w uint, x, y uint64, mode Mode) (Scalar, string) {
	trunc := func(v uint64) Scalar { return C(ir.TruncBits(v, w)) }
	sx, sy := ir.SignExtBits(x, w), ir.SignExtBits(y, w)
	minSigned := int64(-1) << (w - 1)

	switch op {
	case ir.OpAdd:
		r := x + y
		if attrs&ir.NUW != 0 && ir.TruncBits(r, w) < x {
			return PoisonScalar, ""
		}
		if attrs&ir.NSW != 0 && saddOverflows(sx, sy, w) {
			return PoisonScalar, ""
		}
		return trunc(r), ""
	case ir.OpSub:
		r := x - y
		if attrs&ir.NUW != 0 && x < y {
			return PoisonScalar, ""
		}
		if attrs&ir.NSW != 0 && ssubOverflows(sx, sy, w) {
			return PoisonScalar, ""
		}
		return trunc(r), ""
	case ir.OpMul:
		r := x * y
		if attrs&ir.NUW != 0 && umulOverflows(x, y, w) {
			return PoisonScalar, ""
		}
		if attrs&ir.NSW != 0 && smulOverflows(sx, sy, w) {
			return PoisonScalar, ""
		}
		return trunc(r), ""
	case ir.OpUDiv:
		if y == 0 {
			return Scalar{}, "udiv by zero"
		}
		if attrs&ir.Exact != 0 && x%y != 0 {
			return PoisonScalar, ""
		}
		return trunc(x / y), ""
	case ir.OpSDiv:
		if y == 0 {
			return Scalar{}, "sdiv by zero"
		}
		if sx == minSigned && sy == -1 {
			return Scalar{}, "sdiv overflow"
		}
		q := sx / sy
		if attrs&ir.Exact != 0 && sx%sy != 0 {
			return PoisonScalar, ""
		}
		return trunc(uint64(q)), ""
	case ir.OpURem:
		if y == 0 {
			return Scalar{}, "urem by zero"
		}
		return trunc(x % y), ""
	case ir.OpSRem:
		if y == 0 {
			return Scalar{}, "srem by zero"
		}
		if sx == minSigned && sy == -1 {
			return Scalar{}, "srem overflow"
		}
		return trunc(uint64(sx % sy)), ""
	case ir.OpShl:
		if y >= uint64(w) {
			if mode == Legacy {
				return UndefScalar, ""
			}
			return PoisonScalar, ""
		}
		r := ir.TruncBits(x<<y, w)
		if attrs&ir.NUW != 0 && r>>y != x {
			return PoisonScalar, ""
		}
		if attrs&ir.NSW != 0 && ir.SignExtBits(r, w)>>y != sx {
			return PoisonScalar, ""
		}
		return C(r), ""
	case ir.OpLShr:
		if y >= uint64(w) {
			if mode == Legacy {
				return UndefScalar, ""
			}
			return PoisonScalar, ""
		}
		if attrs&ir.Exact != 0 && ir.TruncBits(x>>y<<y, w) != x {
			return PoisonScalar, ""
		}
		return trunc(x >> y), ""
	case ir.OpAShr:
		if y >= uint64(w) {
			if mode == Legacy {
				return UndefScalar, ""
			}
			return PoisonScalar, ""
		}
		if attrs&ir.Exact != 0 && ir.TruncBits(x>>y<<y, w) != x {
			return PoisonScalar, ""
		}
		return trunc(uint64(sx >> y)), ""
	case ir.OpAnd:
		return trunc(x & y), ""
	case ir.OpOr:
		return trunc(x | y), ""
	case ir.OpXor:
		return trunc(x ^ y), ""
	}
	panic(fmt.Sprintf("core: EvalBinopConcrete of %s", op))
}

// EvalBinopLane evaluates a binop on two lanes, handling poison: for
// division and remainder a poison divisor is immediate UB (the divisor
// could be zero); otherwise any poison operand yields poison. Undef
// operands must already be resolved by the caller.
func EvalBinopLane(op ir.Op, attrs ir.Attrs, w uint, x, y Scalar, mode Mode) (Scalar, string) {
	if op.IsDivRem() && y.Kind == PoisonVal {
		return Scalar{}, op.String() + " by poison"
	}
	if x.Kind == PoisonVal || y.Kind == PoisonVal {
		return PoisonScalar, ""
	}
	return EvalBinopConcrete(op, attrs, w, x.Bits, y.Bits, mode)
}

// EvalICmpConcrete compares two concrete lane values of width w.
func EvalICmpConcrete(p ir.Pred, w uint, x, y uint64) bool {
	sx, sy := ir.SignExtBits(x, w), ir.SignExtBits(y, w)
	switch p {
	case ir.PredEQ:
		return x == y
	case ir.PredNE:
		return x != y
	case ir.PredUGT:
		return x > y
	case ir.PredUGE:
		return x >= y
	case ir.PredULT:
		return x < y
	case ir.PredULE:
		return x <= y
	case ir.PredSGT:
		return sx > sy
	case ir.PredSGE:
		return sx >= sy
	case ir.PredSLT:
		return sx < sy
	case ir.PredSLE:
		return sx <= sy
	}
	panic("core: bad predicate")
}

// EvalICmpLane compares two lanes; poison in, poison out.
func EvalICmpLane(p ir.Pred, w uint, x, y Scalar) Scalar {
	if x.Kind == PoisonVal || y.Kind == PoisonVal {
		return PoisonScalar
	}
	if EvalICmpConcrete(p, w, x.Bits, y.Bits) {
		return C(1)
	}
	return C(0)
}

// EvalCastLane evaluates zext/sext/trunc on one lane; poison in, poison
// out. fromW and toW are the lane widths.
func EvalCastLane(op ir.Op, fromW, toW uint, x Scalar) Scalar {
	if x.Kind == PoisonVal {
		return PoisonScalar
	}
	switch op {
	case ir.OpZExt:
		return C(ir.TruncBits(x.Bits, fromW))
	case ir.OpSExt:
		return C(ir.TruncBits(uint64(ir.SignExtBits(x.Bits, fromW)), toW))
	case ir.OpTrunc:
		return C(ir.TruncBits(x.Bits, toW))
	}
	panic("core: EvalCastLane of " + op.String())
}

// EvalGEP computes base + sext(idx)*elemSize in the 32-bit address
// space. With the inbounds attribute (ir.NSW), a computation whose
// mathematical value leaves [0, 2^32) is poison (§2.4: "pointer
// arithmetic overflow is undefined"); otherwise it wraps.
func EvalGEP(attrs ir.Attrs, base Scalar, idx Scalar, idxW uint, elemSize uint32) Scalar {
	if base.Kind == PoisonVal || idx.Kind == PoisonVal {
		return PoisonScalar
	}
	off := ir.SignExtBits(idx.Bits, idxW)
	exact := int64(int64(uint32(base.Bits))) + off*int64(elemSize)
	if attrs&ir.NSW != 0 && (exact < 0 || exact > 0xffffffff) {
		return PoisonScalar
	}
	return C(uint64(uint32(exact)))
}
