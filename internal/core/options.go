package core

// Mode selects which deferred-UB universe the semantics lives in.
type Mode uint8

const (
	// Legacy is pre-paper LLVM: both undef and poison exist, and the
	// corners the paper's Section 3 identifies are resolved by the
	// knobs in Options (because LLVM itself never resolved them —
	// different passes assumed different answers).
	Legacy Mode = iota
	// Freeze is the paper's proposal (Section 4): undef is removed,
	// freeze materializes poison into an arbitrary but stable value,
	// and branching on poison is immediate UB.
	Freeze
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Freeze {
		return "freeze"
	}
	return "legacy"
}

// BranchPoisonBehavior says what branching on a poison condition does.
type BranchPoisonBehavior uint8

const (
	// BranchPoisonIsUB: immediate UB, the choice GVN needs (§3.3) and
	// the one the paper adopts.
	BranchPoisonIsUB BranchPoisonBehavior = iota
	// BranchPoisonNondet: a nondeterministic choice, the choice legacy
	// loop unswitching needs (§3.3).
	BranchPoisonNondet
)

// SelectPoisonBehavior says what a select with a poison condition does.
type SelectPoisonBehavior uint8

const (
	// SelectPoisonCondPoison: the result is poison (Figure 5; required
	// for SimplifyCFG's phi→select, §3.4).
	SelectPoisonCondPoison SelectPoisonBehavior = iota
	// SelectPoisonCondUB: immediate UB (the "select is like branch"
	// reading, §3.4).
	SelectPoisonCondUB
	// SelectPoisonCondNondet: nondeterministically picks an arm (the
	// "branch is nondeterministic" reading).
	SelectPoisonCondNondet
)

// Options fully determines the semantics.
type Options struct {
	Mode Mode

	// BranchPoison applies in Legacy mode; Freeze mode forces
	// BranchPoisonIsUB.
	BranchPoison BranchPoisonBehavior

	// SelectPoisonCond applies in Legacy mode; Freeze mode forces
	// SelectPoisonCondPoison.
	SelectPoisonCond SelectPoisonBehavior

	// SelectArmPoisonEither: the select result is poison if *either*
	// arm is poison (the legacy LangRef reading, which makes
	// select-to-arithmetic sound and phi-to-select unsound, §3.4).
	// When false only the dynamically chosen arm matters (Figure 5).
	SelectArmPoisonEither bool

	// Fuel bounds the number of executed instructions; 0 means the
	// DefaultFuel.
	Fuel int

	// MaxCallDepth bounds recursion; 0 means DefaultMaxCallDepth.
	MaxCallDepth int

	// EmitTrace compiles per-step Tracer callbacks into the program.
	// It is a compile-time knob like the semantics fields — Compile
	// resolves it into the step closures, so a program compiled without
	// it pays no per-step trace check at all — but it is NOT semantics:
	// traced and untraced programs make identical oracle choices and
	// produce identical Outcomes. It participates in ProgramCache keys
	// (the two variants are distinct programs) and is excluded from
	// refine's memo fingerprint.
	EmitTrace bool
}

// DefaultFuel is the default instruction budget per execution.
const DefaultFuel = 1 << 20

// DefaultMaxCallDepth is the default call-stack bound.
const DefaultMaxCallDepth = 64

// LegacyOptions returns the legacy semantics with a given resolution of
// the branch-on-poison ambiguity.
func LegacyOptions(bp BranchPoisonBehavior) Options {
	return Options{
		Mode:                  Legacy,
		BranchPoison:          bp,
		SelectPoisonCond:      SelectPoisonCondPoison,
		SelectArmPoisonEither: true,
	}
}

// FreezeOptions returns the paper's proposed semantics (Section 4).
func FreezeOptions() Options {
	return Options{Mode: Freeze}
}

// normalized returns o with mode-forced fields and defaults applied.
func (o Options) normalized() Options {
	if o.Mode == Freeze {
		o.BranchPoison = BranchPoisonIsUB
		o.SelectPoisonCond = SelectPoisonCondPoison
		o.SelectArmPoisonEither = false
	}
	if o.Fuel == 0 {
		o.Fuel = DefaultFuel
	}
	if o.MaxCallDepth == 0 {
		o.MaxCallDepth = DefaultMaxCallDepth
	}
	return o
}
