// Package core gives executable meaning to the IR of package ir. It is
// a direct encoding of the operational semantics in Figure 5 of "Taming
// Undefined Behavior in LLVM" (PLDI 2017): a register file mapping names
// to typed values that may be poison, a bit-granular memory, the ty↓ and
// ty↑ meta-operations, and small-step rules for each instruction.
//
// The interpreter supports two semantics:
//
//   - Legacy: pre-paper LLVM, with both undef (a value that may read
//     differently at every use) and poison, and with per-pass knobs for
//     the under-specified corners the paper's Section 3 exposes
//     (branch-on-poison, select-on-poison).
//   - Freeze: the paper's proposal — undef is gone, freeze
//     non-deterministically but stably materializes poison, and
//     branching on poison is immediate UB.
//
// Nondeterminism (undef reads, freeze results, legacy nondeterministic
// branches) is factored into an Oracle so that callers can run a single
// random execution or exhaustively enumerate all behaviours (package
// refine does the latter).
package core

import (
	"fmt"
	"strconv"
	"strings"

	"tameir/internal/ir"
)

// ScalarKind discriminates a single lane's state.
type ScalarKind uint8

const (
	// Concrete is a fully defined lane.
	Concrete ScalarKind = iota
	// PoisonVal is the paper's poison: deferred UB that taints
	// dependent computation.
	PoisonVal
	// UndefVal is the legacy undef: a lane that may evaluate to a
	// different arbitrary value at each use. It never arises under the
	// Freeze semantics.
	UndefVal
)

// Scalar is one lane of a runtime value.
type Scalar struct {
	Kind ScalarKind
	Bits uint64 // low Ty.Bits bits when Kind == Concrete
}

// C returns a concrete scalar with the given bits (caller truncates).
func C(bits uint64) Scalar { return Scalar{Kind: Concrete, Bits: bits} }

// PoisonScalar is the poison lane.
var PoisonScalar = Scalar{Kind: PoisonVal}

// UndefScalar is the undef lane.
var UndefScalar = Scalar{Kind: UndefVal}

// IsConcrete reports whether the lane is fully defined.
func (s Scalar) IsConcrete() bool { return s.Kind == Concrete }

// Value is a runtime value: one lane per vector element (one lane for
// scalars). The type records widths; Lanes[i].Bits is truncated to the
// lane width.
type Value struct {
	Ty    ir.Type
	Lanes []Scalar
}

// VC constructs a concrete scalar value of type ty.
func VC(ty ir.Type, bits uint64) Value {
	return Value{Ty: ty, Lanes: []Scalar{C(ir.TruncBits(bits, ty.ElemType().Bits))}}
}

// VPoison constructs an all-poison value of type ty.
func VPoison(ty ir.Type) Value {
	lanes := make([]Scalar, ty.NumElems())
	for i := range lanes {
		lanes[i] = PoisonScalar
	}
	return Value{Ty: ty, Lanes: lanes}
}

// VUndef constructs an all-undef value of type ty (legacy only).
func VUndef(ty ir.Type) Value {
	lanes := make([]Scalar, ty.NumElems())
	for i := range lanes {
		lanes[i] = UndefScalar
	}
	return Value{Ty: ty, Lanes: lanes}
}

// VBool is the concrete i1 value 0 or 1.
func VBool(b bool) Value {
	if b {
		return VC(ir.I1, 1)
	}
	return VC(ir.I1, 0)
}

// Scalar returns the single lane of a scalar value.
func (v Value) Scalar() Scalar {
	if len(v.Lanes) != 1 {
		panic(fmt.Sprintf("core: Scalar() on %d-lane value", len(v.Lanes)))
	}
	return v.Lanes[0]
}

// IsPoison reports whether the (scalar) value is poison.
func (v Value) IsPoison() bool { return len(v.Lanes) == 1 && v.Lanes[0].Kind == PoisonVal }

// IsUndef reports whether the (scalar) value is undef.
func (v Value) IsUndef() bool { return len(v.Lanes) == 1 && v.Lanes[0].Kind == UndefVal }

// IsConcrete reports whether every lane is fully defined.
func (v Value) IsConcrete() bool {
	for _, l := range v.Lanes {
		if l.Kind != Concrete {
			return false
		}
	}
	return true
}

// AnyPoison reports whether any lane is poison.
func (v Value) AnyPoison() bool {
	for _, l := range v.Lanes {
		if l.Kind == PoisonVal {
			return true
		}
	}
	return false
}

// Uint returns the concrete bits of a scalar value; it panics on
// non-concrete lanes (callers must resolve deferred UB first).
func (v Value) Uint() uint64 {
	s := v.Scalar()
	if s.Kind != Concrete {
		panic("core: Uint() on non-concrete value")
	}
	return s.Bits
}

// Int returns the concrete scalar value sign-extended to int64.
func (v Value) Int() int64 {
	return ir.SignExtBits(v.Uint(), v.Ty.ElemType().Bits)
}

// Equal reports structural equality of two values (same type, same
// lane kinds and bits).
func (v Value) Equal(w Value) bool {
	if !v.Ty.Equal(w.Ty) || len(v.Lanes) != len(w.Lanes) {
		return false
	}
	for i := range v.Lanes {
		if v.Lanes[i].Kind != w.Lanes[i].Kind {
			return false
		}
		if v.Lanes[i].Kind == Concrete && v.Lanes[i].Bits != w.Lanes[i].Bits {
			return false
		}
	}
	return true
}

// String renders the value for diagnostics, e.g. "i32 7",
// "<2 x i8> <3, poison>". It doubles as the behaviour-set key, so it
// is on the validator's hot path and avoids the fmt machinery.
func (v Value) String() string {
	var b strings.Builder
	writeLane := func(s Scalar) {
		switch s.Kind {
		case PoisonVal:
			b.WriteString("poison")
		case UndefVal:
			b.WriteString("undef")
		default:
			b.WriteString(strconv.FormatUint(s.Bits, 10))
		}
	}
	b.WriteString(v.Ty.String())
	b.WriteByte(' ')
	if len(v.Lanes) == 1 {
		writeLane(v.Lanes[0])
		return b.String()
	}
	b.WriteByte('<')
	for i, l := range v.Lanes {
		if i > 0 {
			b.WriteString(", ")
		}
		writeLane(l)
	}
	b.WriteByte('>')
	return b.String()
}

// Key returns a comparable key for use in behaviour sets.
func (v Value) Key() string { return v.String() }

// --- ty↓ / ty↑ (Figure 5's meta-operations) ---

// Bit is one memory bit: 0, 1, poison, or undef.
type Bit uint8

const (
	Bit0 Bit = iota
	Bit1
	BitPoison
	BitUndef
)

// Lower implements ty↓: the value's low-level bit representation, least
// significant bit first within each lane, lanes concatenated in order.
// A poison lane lowers to all-poison bits; an undef lane to all-undef
// bits.
func Lower(v Value) []Bit {
	w := v.Ty.ElemType().Bits
	out := make([]Bit, 0, uint(len(v.Lanes))*w)
	for _, l := range v.Lanes {
		for i := uint(0); i < w; i++ {
			switch l.Kind {
			case PoisonVal:
				out = append(out, BitPoison)
			case UndefVal:
				out = append(out, BitUndef)
			default:
				if l.Bits>>i&1 != 0 {
					out = append(out, Bit1)
				} else {
					out = append(out, Bit0)
				}
			}
		}
	}
	return out
}

// Raise implements ty↑: reconstruct a value of type ty from bits. Per
// Figure 5, a lane with at least one poison bit raises to poison.
// Legacy extension for undef bits: a lane whose bits are all undef
// raises to undef (preserving the per-use freedom that makes load
// duplication sound, Section 3.1); a lane mixing defined and undef bits
// resolves each undef bit through the oracle so the defined bits are
// not lost.
func Raise(ty ir.Type, bits []Bit, o Oracle) Value {
	w := ty.ElemType().Bits
	n := ty.NumElems()
	if uint(len(bits)) != w*n {
		panic(fmt.Sprintf("core: Raise %s from %d bits", ty, len(bits)))
	}
	lanes := make([]Scalar, n)
	for li := uint(0); li < n; li++ {
		lane := bits[li*w : (li+1)*w]
		poison, undefs, defined := false, 0, 0
		for _, b := range lane {
			switch b {
			case BitPoison:
				poison = true
			case BitUndef:
				undefs++
			default:
				defined++
			}
		}
		switch {
		case poison:
			lanes[li] = PoisonScalar
		case undefs == len(lane):
			lanes[li] = UndefScalar
		default:
			var v uint64
			for i, b := range lane {
				switch b {
				case Bit1:
					v |= 1 << uint(i)
				case BitUndef:
					v |= o.Choose(2) << uint(i)
				}
			}
			lanes[li] = C(v)
		}
	}
	return Value{Ty: ty, Lanes: lanes}
}
