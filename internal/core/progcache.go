package core

import (
	"sync"

	"tameir/internal/ir"
)

// DefaultProgramCacheSize bounds a ProgramCache; compiled programs for
// §6-sized candidates are a few KB each.
const DefaultProgramCacheSize = 256

// progKey identifies a compilation: the function identity plus the
// normalized semantics. Options is all scalars, so the key is
// comparable.
type progKey struct {
	fn   *ir.Func
	opts Options
}

type progEntry struct {
	prog *Program
	// text is the function's canonical form at compile time; the
	// verified lookup path (used by the Exec/Env.Run compatibility
	// wrappers) re-prints the function and recompiles on mismatch.
	text string
}

// ProgramCache is a bounded, concurrency-safe cache of compiled
// programs keyed by (*ir.Func, Options).
//
// No-mutation contract: Get trusts the function pointer — it does not
// detect mutation. Callers that transform IR must either compile the
// post-transform function under a fresh *ir.Func (the optfuzz pipeline
// clones every candidate before transforming, so this holds by
// construction) or drop the cache. The package-level Exec and Env.Run
// wrappers instead use the verifying path, which compares the
// function's printed form and recompiles when it changed; that keeps
// the legacy API safe for run-mutate-run test patterns at the cost of
// one fn.String() per call.
type ProgramCache struct {
	mu      sync.Mutex
	max     int
	entries map[progKey]progEntry
	order   []progKey // FIFO eviction ring
	next    int
}

// NewProgramCache returns a cache bounded to max programs (0 or
// negative: DefaultProgramCacheSize).
func NewProgramCache(max int) *ProgramCache {
	if max <= 0 {
		max = DefaultProgramCacheSize
	}
	return &ProgramCache{max: max, entries: make(map[progKey]progEntry)}
}

// Get returns the compiled program for (fn, opts), compiling and
// caching it on first use.
func (c *ProgramCache) Get(fn *ir.Func, opts Options) *Program {
	return c.get(fn, opts, false)
}

// getVerified is Get plus staleness detection by canonical text.
func (c *ProgramCache) getVerified(fn *ir.Func, opts Options) *Program {
	return c.get(fn, opts, true)
}

func (c *ProgramCache) get(fn *ir.Func, opts Options, verify bool) *Program {
	opts = opts.normalized()
	k := progKey{fn: fn, opts: opts}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		if !verify {
			return e.prog
		}
		text := fn.String()
		if text == e.text {
			return e.prog
		}
		// The function mutated since compilation: recompile in place
		// (the slot in the eviction ring stays valid).
		e = progEntry{prog: Compile(fn, opts), text: text}
		c.entries[k] = e
		return e.prog
	}
	e := progEntry{prog: Compile(fn, opts)}
	if verify {
		e.text = fn.String()
	}
	if len(c.entries) >= c.max {
		victim := c.order[c.next]
		delete(c.entries, victim)
		c.order[c.next] = k
		c.next = (c.next + 1) % len(c.order)
	} else {
		c.order = append(c.order, k)
	}
	c.entries[k] = e
	return e.prog
}

// Len returns the number of cached programs.
func (c *ProgramCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// sharedPrograms backs the Exec and Env.Run compatibility wrappers.
var sharedPrograms = NewProgramCache(0)
