package core

import (
	"sync"

	"tameir/internal/ir"
)

// DefaultProgramCacheSize bounds a ProgramCache; compiled programs for
// §6-sized candidates are a few KB each.
const DefaultProgramCacheSize = 256

// progKey identifies a compilation: the function identity plus the
// normalized semantics (including the EmitTrace variant bit). Options
// is all scalars, so the key is comparable.
type progKey struct {
	fn   *ir.Func
	opts Options
}

type progEntry struct {
	prog *Program
	// text is the function's canonical form at compile time; the
	// verified lookup path (used by the Exec/Env.Run compatibility
	// wrappers) re-prints the function and recompiles on mismatch.
	text string
	// ref is the clock reference bit: set on every hit, cleared when
	// the sweeping hand passes. An entry is evicted only after a full
	// unreferenced revolution — the same second-chance policy as
	// refine.Memo, so a daemon's working set survives a cold scan.
	ref bool
}

// ProgramCache is a bounded, concurrency-safe cache of compiled
// programs keyed by (*ir.Func, Options), with second-chance clock
// eviction once full.
//
// No-mutation contract: Get trusts the function pointer — it does not
// detect mutation. Callers that transform IR must either compile the
// post-transform function under a fresh *ir.Func (the optfuzz pipeline
// clones every candidate before transforming, so this holds by
// construction) or drop the cache. The package-level Exec and Env.Run
// wrappers instead use the verifying path, which compares the
// function's printed form and recompiles when it changed; that keeps
// the legacy API safe for run-mutate-run test patterns at the cost of
// one fn.String() per call.
type ProgramCache struct {
	mu      sync.Mutex
	max     int
	entries map[progKey]*progEntry
	slots   []progKey // clock ring over resident keys
	hand    int

	hits       uint64
	misses     uint64
	evictions  uint64
	recompiles uint64
}

// ProgramCacheStats is a point-in-time copy of a cache's counters.
// Hits and misses count lookups; evictions counts clock victims;
// recompiles counts verified lookups that found stale text. For a
// cache scoped to one shard the counters are deterministic; for a
// shared cache they are scheduling-dependent.
type ProgramCacheStats struct {
	Size       int
	Capacity   int
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Recompiles uint64
}

// NewProgramCache returns a cache bounded to max programs (0 or
// negative: DefaultProgramCacheSize).
func NewProgramCache(max int) *ProgramCache {
	if max <= 0 {
		max = DefaultProgramCacheSize
	}
	return &ProgramCache{max: max, entries: make(map[progKey]*progEntry)}
}

// Get returns the compiled program for (fn, opts), compiling and
// caching it on first use.
func (c *ProgramCache) Get(fn *ir.Func, opts Options) *Program {
	return c.get(fn, opts, false)
}

// getVerified is Get plus staleness detection by canonical text.
func (c *ProgramCache) getVerified(fn *ir.Func, opts Options) *Program {
	return c.get(fn, opts, true)
}

func (c *ProgramCache) get(fn *ir.Func, opts Options, verify bool) *Program {
	opts = opts.normalized()
	k := progKey{fn: fn, opts: opts}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.hits++
		e.ref = true
		if !verify {
			return e.prog
		}
		text := fn.String()
		if text == e.text {
			return e.prog
		}
		// The function mutated since compilation: recompile in place
		// (the slot in the clock ring stays valid).
		c.recompiles++
		e.prog = Compile(fn, opts)
		e.text = text
		return e.prog
	}
	c.misses++
	e := &progEntry{prog: Compile(fn, opts)}
	if verify {
		e.text = fn.String()
	}
	if len(c.entries) >= c.max {
		// Second-chance sweep: clear ref bits until an unreferenced
		// victim turns up. Terminates within two revolutions.
		for {
			victim := c.slots[c.hand]
			ve := c.entries[victim]
			if ve.ref {
				ve.ref = false
				c.hand = (c.hand + 1) % len(c.slots)
				continue
			}
			delete(c.entries, victim)
			c.evictions++
			c.slots[c.hand] = k
			c.hand = (c.hand + 1) % len(c.slots)
			break
		}
	} else {
		c.slots = append(c.slots, k)
	}
	c.entries[k] = e
	return e.prog
}

// Len returns the number of cached programs.
func (c *ProgramCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache's counters.
func (c *ProgramCache) Stats() ProgramCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ProgramCacheStats{
		Size:       len(c.entries),
		Capacity:   c.max,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Recompiles: c.recompiles,
	}
}

// sharedPrograms backs the Exec and Env.Run compatibility wrappers.
var sharedPrograms = NewProgramCache(0)

// SharedProgramCache exposes the process-wide cache behind Exec and
// Env.Run so daemons can publish its residency and traffic.
func SharedProgramCache() *ProgramCache { return sharedPrograms }
