package core

import (
	"sync/atomic"

	"tameir/internal/cache"
	"tameir/internal/ir"
)

// DefaultProgramCacheSize bounds a ProgramCache; compiled programs for
// §6-sized candidates are a few KB each.
const DefaultProgramCacheSize = 256

// progKey identifies a compilation: the function identity plus the
// normalized semantics (including the EmitTrace variant bit). Options
// is all scalars, so the key is comparable. The key contains a
// pointer, so there is no cheap stable hash — the table runs single-
// sharded, which matches the single mutex this cache always had.
type progKey struct {
	fn   *ir.Func
	opts Options
}

type progEntry struct {
	prog *Program
	// text is the function's canonical form at compile time; the
	// verified lookup path (used by the Exec/Env.Run compatibility
	// wrappers) re-prints the function and recompiles on mismatch.
	text string
}

// ProgramCache is a bounded, concurrency-safe cache of compiled
// programs keyed by (*ir.Func, Options), built on the generic
// cache.Table: per-entry reference bits set on every hit, second-
// chance clock eviction once full — the same policy as refine.Memo,
// so a daemon's working set survives a cold scan.
//
// No-mutation contract: Get trusts the function pointer — it does not
// detect mutation. Callers that transform IR must either compile the
// post-transform function under a fresh *ir.Func (the optfuzz pipeline
// clones every candidate before transforming, so this holds by
// construction) or drop the cache. The package-level Exec and Env.Run
// wrappers instead use the verifying path, which compares the
// function's printed form and recompiles when it changed; that keeps
// the legacy API safe for run-mutate-run test patterns at the cost of
// one fn.String() per call.
type ProgramCache struct {
	table      *cache.Table[progKey, *progEntry]
	recompiles atomic.Uint64
	events     func(hit bool, fn string)
}

// ProgramCacheStats is a point-in-time copy of a cache's counters.
// Hits and misses count lookups; evictions counts clock victims;
// recompiles counts verified lookups that found stale text. For a
// cache scoped to one shard the counters are deterministic; for a
// shared cache they are scheduling-dependent.
type ProgramCacheStats struct {
	Size       int
	Capacity   int
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Recompiles uint64
}

// NewProgramCache returns a cache bounded to max programs (0 or
// negative: DefaultProgramCacheSize).
func NewProgramCache(max int) *ProgramCache {
	if max <= 0 {
		max = DefaultProgramCacheSize
	}
	return &ProgramCache{table: cache.NewTable[progKey, *progEntry](max, 1, nil)}
}

// SetEvents installs a per-lookup hit/miss callback, invoked with the
// function's name after each Get, outside the cache's locks. Tracing
// only: nil (the default) costs one nil check per lookup. Set it
// before the cache is shared across goroutines.
func (c *ProgramCache) SetEvents(fn func(hit bool, fn string)) { c.events = fn }

// Get returns the compiled program for (fn, opts), compiling and
// caching it on first use.
func (c *ProgramCache) Get(fn *ir.Func, opts Options) *Program {
	return c.get(fn, opts, false)
}

// getVerified is Get plus staleness detection by canonical text.
func (c *ProgramCache) getVerified(fn *ir.Func, opts Options) *Program {
	return c.get(fn, opts, true)
}

func (c *ProgramCache) get(fn *ir.Func, opts Options, verify bool) *Program {
	opts = opts.normalized()
	k := progKey{fn: fn, opts: opts}
	var onHit func(**progEntry)
	if verify {
		// The function may have mutated since compilation: compare the
		// canonical text and recompile in place (the entry cell — and
		// with it the slot in the clock ring — stays valid). Runs under
		// the shard lock.
		onHit = func(ep **progEntry) {
			e := *ep
			text := fn.String()
			if text == e.text {
				return
			}
			c.recompiles.Add(1)
			e.prog = Compile(fn, opts)
			e.text = text
		}
	}
	computed := false
	e, _ := c.table.GetOrCompute(k, func() *progEntry {
		computed = true
		e := &progEntry{prog: Compile(fn, opts)}
		if verify {
			e.text = fn.String()
		}
		return e
	}, onHit)
	if c.events != nil {
		c.events(!computed, fn.Name())
	}
	return e.prog
}

// Len returns the number of cached programs.
func (c *ProgramCache) Len() int { return c.table.Len() }

// Stats returns a snapshot of the cache's counters.
func (c *ProgramCache) Stats() ProgramCacheStats {
	s := c.table.Stats()
	return ProgramCacheStats{
		Size:       s.Size,
		Capacity:   s.Capacity,
		Hits:       s.Hits,
		Misses:     s.Misses,
		Evictions:  s.Evictions,
		Recompiles: c.recompiles.Load(),
	}
}

// sharedPrograms backs the Exec and Env.Run compatibility wrappers.
var sharedPrograms = NewProgramCache(0)

// SharedProgramCache exposes the process-wide cache behind Exec and
// Env.Run so daemons can publish its residency and traffic.
func SharedProgramCache() *ProgramCache { return sharedPrograms }
