package core

import (
	"math/big"
	"testing"
	"testing/quick"

	"tameir/internal/ir"
)

// Property: ty↓ then ty↑ is the identity on fully defined values, for
// every scalar width.
func TestLowerRaiseRoundTripScalar(t *testing.T) {
	f := func(bits uint64, w8 uint8) bool {
		w := uint(w8%64) + 1
		ty := ir.Int(w)
		v := VC(ty, bits)
		back := Raise(ty, Lower(v), ZeroOracle{})
		return back.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the round trip also holds element-wise for vectors, and a
// poison lane stays poison without contaminating neighbours.
func TestLowerRaiseRoundTripVector(t *testing.T) {
	f := func(a, b, c uint16, poisonLane uint8) bool {
		ty := ir.Vec(3, ir.I16)
		lanes := []Scalar{C(uint64(a)), C(uint64(b)), C(uint64(c))}
		pl := int(poisonLane % 3)
		lanes[pl] = PoisonScalar
		v := Value{Ty: ty, Lanes: lanes}
		back := Raise(ty, Lower(v), ZeroOracle{})
		if back.Lanes[pl].Kind != PoisonVal {
			return false
		}
		for i := 0; i < 3; i++ {
			if i == pl {
				continue
			}
			if back.Lanes[i] != lanes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lower of poison is all-poison bits; Raise of any pattern
// containing a poison bit is poison (Figure 5's ty↑).
func TestPoisonBitContamination(t *testing.T) {
	f := func(bits uint64, w8, pos8 uint8) bool {
		w := uint(w8%63) + 2
		ty := ir.Int(w)
		low := Lower(VC(ty, bits))
		low[uint(pos8)%w] = BitPoison
		return Raise(ty, low, ZeroOracle{}).IsPoison()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EvalBinopConcrete for attribute-free add/sub/mul/and/or/
// xor agrees with arbitrary-precision arithmetic mod 2^w.
func TestBinopMatchesBigInt(t *testing.T) {
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}
	f := func(x, y uint64, w8, opIdx uint8) bool {
		w := uint(w8%64) + 1
		op := ops[int(opIdx)%len(ops)]
		x, y = ir.TruncBits(x, w), ir.TruncBits(y, w)
		got, ub := EvalBinopConcrete(op, 0, w, x, y, Freeze)
		if ub != "" || got.Kind != Concrete {
			return false
		}
		bx, by := new(big.Int).SetUint64(x), new(big.Int).SetUint64(y)
		var ref big.Int
		switch op {
		case ir.OpAdd:
			ref.Add(bx, by)
		case ir.OpSub:
			ref.Sub(bx, by)
		case ir.OpMul:
			ref.Mul(bx, by)
		case ir.OpAnd:
			ref.And(bx, by)
		case ir.OpOr:
			ref.Or(bx, by)
		case ir.OpXor:
			ref.Xor(bx, by)
		}
		mod := new(big.Int).Lsh(big.NewInt(1), w)
		ref.Mod(&ref, mod)
		return got.Bits == ref.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the nsw/nuw poison predicates agree with big-int range
// checks at every width.
func TestOverflowAttrsMatchBigInt(t *testing.T) {
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul}
	f := func(x, y uint64, w8, opIdx uint8, signed bool) bool {
		w := uint(w8%64) + 1
		op := ops[int(opIdx)%len(ops)]
		x, y = ir.TruncBits(x, w), ir.TruncBits(y, w)
		attr := ir.NUW
		if signed {
			attr = ir.NSW
		}
		got, ub := EvalBinopConcrete(op, attr, w, x, y, Freeze)
		if ub != "" {
			return false
		}
		var bx, by big.Int
		if signed {
			bx.SetInt64(ir.SignExtBits(x, w))
			by.SetInt64(ir.SignExtBits(y, w))
		} else {
			bx.SetUint64(x)
			by.SetUint64(y)
		}
		var ref big.Int
		switch op {
		case ir.OpAdd:
			ref.Add(&bx, &by)
		case ir.OpSub:
			ref.Sub(&bx, &by)
		case ir.OpMul:
			ref.Mul(&bx, &by)
		}
		var lo, hi big.Int
		if signed {
			lo.Lsh(big.NewInt(1), w-1)
			lo.Neg(&lo)
			hi.Lsh(big.NewInt(1), w-1)
			hi.Sub(&hi, big.NewInt(1))
		} else {
			hi.Lsh(big.NewInt(1), w)
			hi.Sub(&hi, big.NewInt(1))
		}
		overflow := ref.Cmp(&lo) < 0 || ref.Cmp(&hi) > 0
		return overflow == (got.Kind == PoisonVal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// Property: EvalICmpConcrete agrees with big-int comparison under both
// signedness interpretations.
func TestICmpMatchesBigInt(t *testing.T) {
	f := func(x, y uint64, w8, p8 uint8) bool {
		w := uint(w8%64) + 1
		p := ir.Pred(p8 % 10)
		x, y = ir.TruncBits(x, w), ir.TruncBits(y, w)
		got := EvalICmpConcrete(p, w, x, y)
		var bx, by big.Int
		if p.IsSigned() {
			bx.SetInt64(ir.SignExtBits(x, w))
			by.SetInt64(ir.SignExtBits(y, w))
		} else {
			bx.SetUint64(x)
			by.SetUint64(y)
		}
		cmp := bx.Cmp(&by)
		var want bool
		switch p {
		case ir.PredEQ:
			want = cmp == 0
		case ir.PredNE:
			want = cmp != 0
		case ir.PredUGT, ir.PredSGT:
			want = cmp > 0
		case ir.PredUGE, ir.PredSGE:
			want = cmp >= 0
		case ir.PredULT, ir.PredSLT:
			want = cmp < 0
		case ir.PredULE, ir.PredSLE:
			want = cmp <= 0
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// Property: freeze and undef resolution always produce concrete,
// in-range lanes.
func TestResolutionProducesConcrete(t *testing.T) {
	f := func(seed int64, w8 uint8, kind uint8) bool {
		w := uint(w8%64) + 1
		var s Scalar
		switch kind % 3 {
		case 0:
			s = PoisonScalar
		case 1:
			s = UndefScalar
		default:
			s = C(ir.TruncBits(uint64(seed), w))
		}
		o := NewRandOracle(seed)
		fz := FreezeLane(s, w, o)
		if fz.Kind != Concrete || fz.Bits != ir.TruncBits(fz.Bits, w) {
			return false
		}
		if s.Kind == Concrete && fz != s {
			return false
		}
		rs := ResolveLane(s, w, o)
		if s.Kind == UndefVal && rs.Kind != Concrete {
			return false
		}
		if s.Kind == PoisonVal && rs.Kind != PoisonVal {
			return false // ResolveLane leaves poison alone
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EnumOracle with fixed fanouts enumerates the exact product
// space, without duplicates.
func TestEnumOracleEnumeratesProductSpace(t *testing.T) {
	f := func(a8, b8, c8 uint8) bool {
		na := uint64(a8%3) + 1
		nb := uint64(b8%4) + 1
		nc := uint64(c8%2) + 1
		o := NewEnumOracle(8, 1<<8)
		seen := map[[3]uint64]bool{}
		count := 0
		for {
			o.Reset()
			k := [3]uint64{o.Choose(na), o.Choose(nb), o.Choose(nc)}
			if seen[k] {
				return false // duplicate
			}
			seen[k] = true
			count++
			if count > 1000 {
				return false
			}
			if !o.Next() {
				break
			}
		}
		return uint64(count) == na*nb*nc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: memory Store/Load round-trips arbitrary bit patterns at
// arbitrary in-bounds offsets.
func TestMemoryRoundTrip(t *testing.T) {
	f := func(data []byte, off8 uint8) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		if len(data) > 64 {
			data = data[:64]
		}
		m := NewMemory()
		base, err := m.Allocate(uint32(len(data))+64, Freeze)
		if err != nil {
			return false
		}
		addr := base + uint32(off8%64)
		if err := m.StoreBytes(addr, data); err != nil {
			return false
		}
		got, err := m.LoadBytes(addr, uint32(len(data)))
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a freshly allocated region is entirely deferred-UB (poison
// under Freeze, undef under Legacy), and out-of-bounds access fails.
func TestAllocationInvariants(t *testing.T) {
	f := func(sz8 uint8, legacy bool) bool {
		sz := uint32(sz8%32) + 1
		m := NewMemory()
		mode := Freeze
		if legacy {
			mode = Legacy
		}
		base, err := m.Allocate(sz, mode)
		if err != nil {
			return false
		}
		bits, err := m.Load(base, uint(sz)*8)
		if err != nil {
			return false
		}
		want := BitPoison
		if legacy {
			want = BitUndef
		}
		for _, b := range bits {
			if b != want {
				return false
			}
		}
		if _, err := m.Load(base+sz, 8); err == nil {
			return false // out of bounds must fail
		}
		if _, err := m.Load(0, 8); err == nil {
			return false // null is never mapped
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: per-bit SetBit/Bit on MemByte is a consistent store.
func TestMemByteBitOps(t *testing.T) {
	f := func(vals [8]uint8) bool {
		var b MemByte
		var want [8]Bit
		for i := uint(0); i < 8; i++ {
			bit := Bit(vals[i] % 4)
			b.SetBit(i, bit)
			want[i] = bit
		}
		for i := uint(0); i < 8; i++ {
			if b.Bit(i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
