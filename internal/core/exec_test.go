package core

import (
	"testing"

	"tameir/internal/ir"
)

// run executes a single-function module source with the given args.
func run(t *testing.T, src string, opts Options, o Oracle, args ...Value) Outcome {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mode := ir.VerifyLegacy
	if opts.Mode == Freeze {
		mode = ir.VerifyFreeze
	}
	if err := ir.VerifyModule(m, mode); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return Exec(m.Funcs[len(m.Funcs)-1], args, o, opts)
}

func wantRet(t *testing.T, out Outcome, want Value) {
	t.Helper()
	if out.Kind != OutRet {
		t.Fatalf("outcome %v, want ret", out)
	}
	if !out.Val.Equal(want) {
		t.Fatalf("returned %v, want %v", out.Val, want)
	}
}

func wantUB(t *testing.T, out Outcome) {
	t.Helper()
	if out.Kind != OutUB {
		t.Fatalf("outcome %v, want UB", out)
	}
}

func TestArithmeticBasics(t *testing.T) {
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  %d = sub i32 %s, %b
  %m = mul i32 %d, 3
  %q = udiv i32 %m, 2
  ret i32 %q
}`
	out := run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 10), VC(ir.I32, 5))
	wantRet(t, out, VC(ir.I32, 15)) // ((10+5-5)*3)/2 = 15
}

func TestWrapAroundUnsigned(t *testing.T) {
	src := `define i8 @f(i8 %a) {
entry:
  %r = add i8 %a, 1
  ret i8 %r
}`
	out := run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 255))
	wantRet(t, out, VC(ir.I8, 0))
}

func TestNSWOverflowIsPoison(t *testing.T) {
	src := `define i8 @f(i8 %a) {
entry:
  %r = add nsw i8 %a, 1
  ret i8 %r
}`
	out := run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 127)) // INT8_MAX
	wantRet(t, out, VPoison(ir.I8))
	// No overflow: plain result.
	out = run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 5))
	wantRet(t, out, VC(ir.I8, 6))
}

func TestNUWOverflowIsPoison(t *testing.T) {
	src := `define i8 @f(i8 %a) {
entry:
  %r = add nuw i8 %a, 1
  ret i8 %r
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 255)), VPoison(ir.I8))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 127)), VC(ir.I8, 128))
}

func TestMulNswWidths(t *testing.T) {
	// i64 nsw mul overflow must be detected without int64 tricks.
	src := `define i64 @f(i64 %a, i64 %b) {
entry:
  %r = mul nsw i64 %a, %b
  ret i64 %r
}`
	big := uint64(1) << 62
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I64, big), VC(ir.I64, 4)), VPoison(ir.I64))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I64, 3), VC(ir.I64, 5)), VC(ir.I64, 15))
	// min * -1 overflows signed.
	minI64 := uint64(1) << 63
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I64, minI64), VC(ir.I64, ^uint64(0))), VPoison(ir.I64))
}

func TestDivisionUB(t *testing.T) {
	src := `define i32 @f(i32 %a, i32 %b) {
entry:
  %r = sdiv i32 %a, %b
  ret i32 %r
}`
	wantUB(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 1), VC(ir.I32, 0)))
	// INT_MIN / -1 overflows: UB.
	wantUB(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 1<<31), VC(ir.I32, 0xffffffff)))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 0xfffffff8), VC(ir.I32, 2)), VC(ir.I32, 0xfffffffc)) // -8/2 = -4
	// Poison divisor is immediate UB; poison numerator is poison.
	wantUB(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 1), VPoison(ir.I32)))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VPoison(ir.I32), VC(ir.I32, 2)), VPoison(ir.I32))
}

func TestRemainderValues(t *testing.T) {
	cases := []struct {
		op   string
		a, b uint64
		want uint64
	}{
		{"urem", 7, 4, 3},
		{"srem", 0xfffffff9, 4, 0xfffffffd}, // -7 srem 4 = -3
		{"srem", 7, 0xfffffffc, 3},          // 7 srem -4 = 3
	}
	for _, c := range cases {
		src := `define i32 @f(i32 %a, i32 %b) {
entry:
  %r = ` + c.op + ` i32 %a, %b
  ret i32 %r
}`
		wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, c.a), VC(ir.I32, c.b)), VC(ir.I32, c.want))
	}
}

func TestExactAttr(t *testing.T) {
	src := `define i32 @f(i32 %a) {
entry:
  %r = udiv exact i32 %a, 4
  ret i32 %r
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 8)), VC(ir.I32, 2))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 9)), VPoison(ir.I32))
	src2 := `define i32 @f(i32 %a) {
entry:
  %r = lshr exact i32 %a, 1
  ret i32 %r
}`
	wantRet(t, run(t, src2, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 6)), VC(ir.I32, 3))
	wantRet(t, run(t, src2, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 7)), VPoison(ir.I32))
}

func TestOverShift(t *testing.T) {
	src := `define i32 @f(i32 %a, i32 %s) {
entry:
  %r = shl i32 %a, %s
  ret i32 %r
}`
	// Section 2.3: over-shift is undef under legacy semantics...
	out := run(t, src, LegacyOptions(BranchPoisonIsUB), ZeroOracle{}, VC(ir.I32, 1), VC(ir.I32, 33))
	wantRet(t, out, VUndef(ir.I32))
	// ...and poison under the proposed semantics.
	out = run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 1), VC(ir.I32, 33))
	wantRet(t, out, VPoison(ir.I32))
	// In-range shift is defined in both.
	out = run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 1), VC(ir.I32, 4))
	wantRet(t, out, VC(ir.I32, 16))
}

func TestShiftAttrs(t *testing.T) {
	src := `define i8 @f(i8 %a) {
entry:
  %r = shl nuw i8 %a, 1
  ret i8 %r
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 0x80)), VPoison(ir.I8))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 0x40)), VC(ir.I8, 0x80))
	src2 := `define i8 @f(i8 %a) {
entry:
  %r = shl nsw i8 %a, 1
  ret i8 %r
}`
	wantRet(t, run(t, src2, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 0x40)), VPoison(ir.I8)) // 64<<1 = -128: sign change
	wantRet(t, run(t, src2, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 0x20)), VC(ir.I8, 0x40))
}

func TestPoisonPropagation(t *testing.T) {
	// Most instructions including icmp return poison on poison input
	// (the §2.4 motivation for nsw semantics).
	src := `define i1 @f(i32 %a, i32 %b) {
entry:
  %add = add nsw i32 %a, %b
  %cmp = icmp sgt i32 %add, %a
  ret i1 %cmp
}`
	out := run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 0x7fffffff), VC(ir.I32, 1))
	wantRet(t, out, VPoison(ir.I1))
}

func TestUndefEachUseDiffers(t *testing.T) {
	// Section 3.1: %y = mul undef, 2 can only be even, while
	// %y = add undef, undef can be odd. Enumerate to see both.
	mulSrc := `define i8 @f() {
entry:
  %y = mul i8 undef, 2
  ret i8 %y
}`
	addSrc := `define i8 @f() {
entry:
  %x = add i8 undef, 0
  %y = add i8 %x, %x
  ret i8 %y
}`
	collect := func(src string) map[uint64]bool {
		t.Helper()
		vals := map[uint64]bool{}
		o := NewEnumOracle(8, 1<<16)
		for {
			o.Reset()
			out := run(t, src, LegacyOptions(BranchPoisonIsUB), o, nil...)
			if out.Kind != OutRet {
				t.Fatalf("outcome %v", out)
			}
			if out.Val.IsConcrete() {
				vals[out.Val.Uint()] = true
			}
			if !o.Next() {
				break
			}
		}
		if o.Overflowed {
			t.Fatal("oracle overflow")
		}
		return vals
	}
	mulVals := collect(mulSrc)
	for v := range mulVals {
		if v%2 != 0 {
			t.Errorf("mul undef, 2 produced odd value %d", v)
		}
	}
	if len(mulVals) != 128 {
		t.Errorf("mul undef, 2 produced %d values, want 128 evens", len(mulVals))
	}
	// x is a register holding... x was resolved at the add with 0, so
	// %x is concrete; y = x+x is even. The per-use freedom applies to
	// syntactic undef uses.
	_ = addSrc
	direct := `define i8 @f() {
entry:
  %y = add i8 undef, undef
  ret i8 %y
}`
	addVals := collect(direct)
	if len(addVals) != 256 {
		t.Errorf("add undef, undef produced %d values, want 256", len(addVals))
	}
}

func TestUndefRegisterFreshPerUse(t *testing.T) {
	// A register *holding* undef (via phi) still gives per-use freedom:
	// k != 0 can be true while 1/k divides by zero (§3.2's miscompile).
	src := `define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %k = phi i8 [ 1, %a ], [ undef, %b ]
  %nz = icmp ne i8 %k, 0
  br i1 %nz, label %div, label %out
div:
  %q = udiv i8 1, %k
  ret i8 %q
out:
  ret i8 0
}`
	sawUB := false
	o := NewEnumOracle(8, 1<<16)
	for {
		o.Reset()
		out := run(t, src, LegacyOptions(BranchPoisonIsUB), o, VBool(false))
		if out.Kind == OutUB {
			sawUB = true
			break
		}
		if !o.Next() {
			break
		}
	}
	if !sawUB {
		t.Error("undef k never both passed the != 0 check and divided by zero; per-use freedom missing")
	}
}

func TestFreezeStability(t *testing.T) {
	// freeze(poison) is arbitrary but all uses agree: y - y == 0.
	src := `define i8 @f() {
entry:
  %y = freeze i8 poison
  %d = sub i8 %y, %y
  ret i8 %d
}`
	o := NewEnumOracle(4, 1<<16)
	count := 0
	for {
		o.Reset()
		out := run(t, src, FreezeOptions(), o)
		wantRet(t, out, VC(ir.I8, 0))
		count++
		if !o.Next() {
			break
		}
	}
	if count != 256 {
		t.Errorf("enumerated %d freeze choices, want 256", count)
	}
}

func TestFreezeNop(t *testing.T) {
	src := `define i32 @f(i32 %x) {
entry:
  %y = freeze i32 %x
  ret i32 %y
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 42)), VC(ir.I32, 42))
}

func TestFreezeVectorPerLane(t *testing.T) {
	// Figure 5's vector freeze rule: non-poison lanes unchanged.
	src := `define <2 x i8> @f() {
entry:
  %y = freeze <2 x i8> <i8 7, i8 poison>
  ret <2 x i8> %y
}`
	out := run(t, src, FreezeOptions(), ZeroOracle{})
	if out.Kind != OutRet {
		t.Fatalf("outcome %v", out)
	}
	if out.Val.Lanes[0] != C(7) {
		t.Errorf("defined lane changed: %v", out.Val)
	}
	if out.Val.Lanes[1].Kind != Concrete {
		t.Errorf("poison lane not frozen: %v", out.Val)
	}
}

func TestBranchOnPoison(t *testing.T) {
	src := `define i32 @f(i1 %p) {
entry:
  br i1 %p, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}`
	// Paper semantics: immediate UB.
	wantUB(t, run(t, src, FreezeOptions(), ZeroOracle{}, VPoison(ir.I1)))
	// Legacy loop-unswitching reading: nondeterministic choice.
	out := run(t, src, LegacyOptions(BranchPoisonNondet), ZeroOracle{}, VPoison(ir.I1))
	if out.Kind != OutRet {
		t.Fatalf("nondet branch gave %v", out)
	}
	// Branch on undef is a nondeterministic choice in legacy mode.
	out = run(t, src, LegacyOptions(BranchPoisonIsUB), ZeroOracle{}, VUndef(ir.I1))
	if out.Kind != OutRet {
		t.Fatalf("branch on undef gave %v", out)
	}
}

func TestSelectSemantics(t *testing.T) {
	// Figure 5: select with poison condition is poison; the non-chosen
	// arm's poison does not leak.
	src := `define i32 @f(i1 %c, i32 %x) {
entry:
  %r = select i1 %c, i32 %x, i32 poison
  ret i32 %r
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VBool(true), VC(ir.I32, 3)), VC(ir.I32, 3))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VBool(false), VC(ir.I32, 3)), VPoison(ir.I32))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VPoison(ir.I1), VC(ir.I32, 3)), VPoison(ir.I32))

	// Legacy LangRef reading: either arm's poison leaks.
	legacy := LegacyOptions(BranchPoisonIsUB)
	wantRet(t, run(t, src, legacy, ZeroOracle{}, VBool(true), VC(ir.I32, 3)), VPoison(ir.I32))

	// Select-on-poison-is-UB reading (§3.4's GVN-compatible variant).
	ub := legacy
	ub.SelectPoisonCond = SelectPoisonCondUB
	wantUB(t, run(t, src, ub, ZeroOracle{}, VPoison(ir.I1), VC(ir.I32, 3)))
}

func TestPhiChoosesIncoming(t *testing.T) {
	src := `define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %x = phi i32 [ 10, %a ], [ poison, %b ]
  ret i32 %x
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VBool(true)), VC(ir.I32, 10))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VBool(false)), VPoison(ir.I32))
}

func TestPhiSimultaneousReads(t *testing.T) {
	// Swapping phis must read their incomings before writing.
	src := `define i32 @f(i32 %n) {
entry:
  br label %loop
loop:
  %a = phi i32 [ 0, %entry ], [ %b, %loop ]
  %b = phi i32 [ 1, %entry ], [ %a, %loop ]
  %i = phi i32 [ 0, %entry ], [ %i1, %loop ]
  %i1 = add i32 %i, 1
  %c = icmp ult i32 %i1, %n
  br i1 %c, label %loop, label %exit
exit:
  ret i32 %a
}`
	// n=3 takes two back-edges (two swaps): a back to 0.
	// n=4 takes three back-edges (three swaps): a = 1.
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 3)), VC(ir.I32, 0))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 4)), VC(ir.I32, 1))
}

func TestLoopAndMemory(t *testing.T) {
	// Figure 1's loop: store x+1 into a[0..n).
	src := `define i32 @f(i32 %x, i32 %n) {
entry:
  %a = alloca i32, i32 8
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i32 %x, 1
  %ptr = getelementptr i32, ptr %a, i32 %i
  store i32 %x1, ptr %ptr
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  %p0 = getelementptr i32, ptr %a, i32 3
  %v = load i32, ptr %p0
  ret i32 %v
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 41), VC(ir.I32, 8)), VC(ir.I32, 42))
}

func TestUninitializedLoad(t *testing.T) {
	src := `define i32 @f() {
entry:
  %a = alloca i32, i32 1
  %v = load i32, ptr %a
  ret i32 %v
}`
	// Freeze mode: loads of uninitialized memory yield poison (§5.3).
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}), VPoison(ir.I32))
	// Legacy mode: undef.
	wantRet(t, run(t, src, LegacyOptions(BranchPoisonIsUB), ZeroOracle{}), VUndef(ir.I32))
}

func TestOutOfBoundsIsUB(t *testing.T) {
	src := `define i32 @f(i32 %i) {
entry:
  %a = alloca i32, i32 2
  %p = getelementptr i32, ptr %a, i32 %i
  %v = load i32, ptr %p
  ret i32 %v
}`
	wantUB(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 1000)))
	out := run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 1))
	if out.Kind != OutRet {
		t.Fatalf("in-bounds load gave %v", out)
	}
}

func TestStorePoisonValueAllowed(t *testing.T) {
	// Storing a poison *value* writes poison bits (not UB); loading
	// them back yields poison.
	src := `define i32 @f() {
entry:
  %a = alloca i32, i32 1
  store i32 poison, ptr %a
  %v = load i32, ptr %a
  ret i32 %v
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}), VPoison(ir.I32))
}

func TestStoreToPoisonPointerIsUB(t *testing.T) {
	src := `define void @f() {
entry:
  store i32 1, ptr poison
  ret void
}`
	wantUB(t, run(t, src, FreezeOptions(), ZeroOracle{}))
}

func TestGEPInbounds(t *testing.T) {
	src := `define ptr @f(ptr %p, i32 %i) {
entry:
  %q = getelementptr inbounds i32, ptr %p, i32 %i
  ret ptr %q
}`
	// Overflowing the address space with inbounds yields poison.
	out := run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.Ptr, 0xfffffff0), VC(ir.I32, 100))
	wantRet(t, out, VPoison(ir.Ptr))
	// Plain gep wraps.
	src2 := `define ptr @f(ptr %p, i32 %i) {
entry:
  %q = getelementptr i32, ptr %p, i32 %i
  ret ptr %q
}`
	out = run(t, src2, FreezeOptions(), ZeroOracle{}, VC(ir.Ptr, 0xfffffffc), VC(ir.I32, 1))
	wantRet(t, out, VC(ir.Ptr, 0))
}

func TestCasts(t *testing.T) {
	src := `define i64 @f(i8 %x) {
entry:
  %s = sext i8 %x to i64
  ret i64 %s
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 0xff)), VC(ir.I64, ^uint64(0)))
	src = `define i64 @f(i8 %x) {
entry:
  %z = zext i8 %x to i64
  ret i64 %z
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I8, 0xff)), VC(ir.I64, 255))
	src = `define i8 @f(i64 %x) {
entry:
  %t = trunc i64 %x to i8
  ret i8 %t
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I64, 0x1234)), VC(ir.I8, 0x34))
	// sext(poison) = poison (the §2.4 indvar argument).
	src = `define i64 @f(i32 %x) {
entry:
  %s = sext i32 %x to i64
  ret i64 %s
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VPoison(ir.I32)), VPoison(ir.I64))
}

func TestSextUndefNotFullyArbitrary(t *testing.T) {
	// §2.4: sext(undef) has all high bits equal — the max value of
	// sext i8 undef to i16 is 127, never e.g. 0x1ff.
	src := `define i16 @f() {
entry:
  %s = sext i8 undef to i16
  ret i16 %s
}`
	o := NewEnumOracle(4, 1<<16)
	for {
		o.Reset()
		out := run(t, src, LegacyOptions(BranchPoisonIsUB), o)
		if out.Kind != OutRet {
			t.Fatalf("outcome %v", out)
		}
		v := int64(ir.SignExtBits(out.Val.Uint(), 16))
		if v > 127 || v < -128 {
			t.Fatalf("sext i8 undef produced out-of-range %d", v)
		}
		if !o.Next() {
			break
		}
	}
}

func TestBitcastVectorPoisonLanes(t *testing.T) {
	// <8 x i1> with one poison lane bitcast to i8: whole i8 is poison
	// (ty↑ with any poison bit).
	src := `define i8 @f() {
entry:
  %b = bitcast <8 x i1> <i1 1, i1 0, i1 poison, i1 0, i1 0, i1 0, i1 0, i1 0> to i8
  ret i8 %b
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}), VPoison(ir.I8))
	// Reverse direction: i8 poison to <8 x i1> makes all lanes poison.
	src = `define <8 x i1> @f() {
entry:
  %b = bitcast i8 poison to <8 x i1>
  ret <8 x i1> %b
}`
	out := run(t, src, FreezeOptions(), ZeroOracle{})
	if out.Kind != OutRet || !out.Val.AnyPoison() {
		t.Fatalf("outcome %v", out)
	}
	for _, l := range out.Val.Lanes {
		if l.Kind != PoisonVal {
			t.Errorf("lane not poison: %v", out.Val)
		}
	}
}

func TestVectorLoadIsolatesPoison(t *testing.T) {
	// §5.4: a vector load keeps poison per element, so loading
	// <2 x i16> where one half was stored and the other is
	// uninitialized gives one defined and one poison lane.
	src := `define i16 @f() {
entry:
  %a = alloca i32, i32 1
  store i16 7, ptr %a
  %v = load <2 x i16>, ptr %a
  %e = extractelement <2 x i16> %v, i32 0
  ret i16 %e
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}), VC(ir.I16, 7))
	// The wide scalar load of the same memory is all-poison.
	src = `define i32 @f() {
entry:
  %a = alloca i32, i32 1
  store i16 7, ptr %a
  %v = load i32, ptr %a
  ret i32 %v
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}), VPoison(ir.I32))
}

func TestExtractInsertElement(t *testing.T) {
	src := `define i8 @f() {
entry:
  %v = insertelement <4 x i8> <i8 1, i8 2, i8 3, i8 4>, i8 9, i32 2
  %e = extractelement <4 x i8> %v, i32 2
  ret i8 %e
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}), VC(ir.I8, 9))
	// Out-of-range index: poison.
	src = `define i8 @f() {
entry:
  %e = extractelement <4 x i8> <i8 1, i8 2, i8 3, i8 4>, i32 9
  ret i8 %e
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}), VPoison(ir.I8))
}

func TestCallAndRecursion(t *testing.T) {
	src := `define i32 @fact(i32 %n) {
entry:
  %z = icmp eq i32 %n, 0
  br i1 %z, label %base, label %rec
base:
  ret i32 1
rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fact(i32 %n1)
  %m = mul i32 %n, %r
  ret i32 %m
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 6)), VC(ir.I32, 720))
}

func TestCallDepthBound(t *testing.T) {
	src := `define i32 @inf(i32 %n) {
entry:
  %r = call i32 @inf(i32 %n)
  ret i32 %r
}`
	out := run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 0))
	if out.Kind != OutTimeout {
		t.Fatalf("infinite recursion gave %v", out)
	}
}

func TestFuelTimeout(t *testing.T) {
	src := `define void @spin() {
entry:
  br label %loop
loop:
  br label %loop
}`
	opts := FreezeOptions()
	opts.Fuel = 1000
	out := run(t, src, opts, ZeroOracle{})
	if out.Kind != OutTimeout {
		t.Fatalf("infinite loop gave %v", out)
	}
}

func TestUnreachableIsUB(t *testing.T) {
	src := `define void @f() {
entry:
  unreachable
}`
	wantUB(t, run(t, src, FreezeOptions(), ZeroOracle{}))
}

func TestGlobals(t *testing.T) {
	src := `@tab = global 4 init 10 20 30 40
define i8 @f(i32 %i) {
entry:
  %p = getelementptr i8, ptr @tab, i32 %i
  %v = load i8, ptr %p
  ret i8 %v
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 2)), VC(ir.I8, 30))
	wantUB(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 100)))
}

func TestGlobalPartialInitUninitTail(t *testing.T) {
	src := `@tab = global 4 init 10
define i8 @f(i32 %i) {
entry:
  %p = getelementptr i8, ptr @tab, i32 %i
  %v = load i8, ptr %p
  ret i8 %v
}`
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 0)), VC(ir.I8, 10))
	wantRet(t, run(t, src, FreezeOptions(), ZeroOracle{}, VC(ir.I32, 3)), VPoison(ir.I8))
}
