package core_test

// Differential tests for the compiled execution engines: every
// function must produce exactly the interpreter's outcomes — same
// Outcome kind, same value, same UB message — under every semantics
// variant, for every resolution of nondeterminism. The three engines
// (tree-walking interpreter, closure engine, bytecode VM) run in
// lockstep on triplet enumeration oracles, so a divergence in *which*
// choice points are reached (not just in outcomes) also fails:
// behaviour-set equality downstream is byte-identical by construction
// only if the Choose-call sequences match.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tameir/internal/core"
	_ "tameir/internal/core/bytecode" // register the tier-2 backend
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
)

// diffVariants are the semantics under which the engines are compared:
// the paper's freeze proposal plus the §3 legacy knob settings that
// resolve its ambiguities in different directions.
func diffVariants() []struct {
	name string
	opts core.Options
} {
	legacySel := func(sp core.SelectPoisonBehavior, either bool) core.Options {
		o := core.LegacyOptions(core.BranchPoisonNondet)
		o.SelectPoisonCond = sp
		o.SelectArmPoisonEither = either
		return o
	}
	return []struct {
		name string
		opts core.Options
	}{
		{"freeze", core.FreezeOptions()},
		{"legacy-br-nondet", core.LegacyOptions(core.BranchPoisonNondet)},
		{"legacy-br-ub", core.LegacyOptions(core.BranchPoisonIsUB)},
		{"legacy-sel-ub", legacySel(core.SelectPoisonCondUB, true)},
		{"legacy-sel-nondet", legacySel(core.SelectPoisonCondNondet, true)},
		{"legacy-sel-chosen-arm", legacySel(core.SelectPoisonCondPoison, false)},
	}
}

// paramInputs enumerates the cartesian product of per-parameter
// candidate values: every concrete value of small int types, plus
// poison, plus undef under legacy semantics.
func paramInputs(fn *ir.Func, mode core.Mode) [][]core.Value {
	cands := make([][]core.Value, len(fn.Params))
	for i, p := range fn.Params {
		ty := p.Ty
		var vs []core.Value
		switch {
		case ty.IsInt() && ty.Bits <= 3:
			for v := uint64(0); v < 1<<ty.Bits; v++ {
				vs = append(vs, core.VC(ty, v))
			}
		case ty.IsInt():
			for _, v := range []uint64{0, 1, ir.TruncBits(^uint64(0), ty.Bits)} {
				vs = append(vs, core.VC(ty, v))
			}
		default:
			vs = append(vs, core.VPoison(ty))
		}
		if ty.IsInt() {
			vs = append(vs, core.VPoison(ty))
			if mode == core.Legacy {
				vs = append(vs, core.VUndef(ty))
			}
		}
		cands[i] = vs
	}
	var out [][]core.Value
	idx := make([]int, len(cands))
	for {
		args := make([]core.Value, len(cands))
		for i, j := range idx {
			args[i] = cands[i][j]
		}
		out = append(out, args)
		k := len(idx) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(cands[k]) {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			return out
		}
	}
}

// outcomeKey renders everything observable about an outcome, including
// the UB/error message Outcome.String omits.
func outcomeKey(o core.Outcome) string {
	s := o.String()
	if o.Msg != "" {
		s += " | " + o.Msg
	}
	return s
}

// diffOne sweeps all three engines through the full oracle enumeration
// on one (function, input) and fails on the first divergence.
func diffOne(t *testing.T, label string, fn *ir.Func, ex, exB *core.Executor, args []core.Value, opts core.Options) {
	t.Helper()
	const maxChoices, maxFanout = 16, 1 << 8
	oi := core.NewEnumOracle(maxChoices, maxFanout)
	oc := core.NewEnumOracle(maxChoices, maxFanout)
	ob := core.NewEnumOracle(maxChoices, maxFanout)
	for exec := 0; ; exec++ {
		if exec > 1<<14 {
			// Undef-heavy functions can have more resolutions than worth
			// sweeping (refine stops here too, via MaxExecs); every
			// execution so far was compared, which is the point.
			return
		}
		oi.Reset()
		oc.Reset()
		ob.Reset()
		outI := core.Interpret(fn, args, oi, opts)
		outC := ex.Run(args, oc)
		outB := exB.Run(args, ob)
		ki, kc, kb := outcomeKey(outI), outcomeKey(outC), outcomeKey(outB)
		if ki != kc || ki != kb {
			t.Fatalf("%s: args %v exec %d:\ninterpreted: %s\ncompiled:    %s\nbytecode:    %s\n%s",
				label, args, exec, ki, kc, kb, fn)
		}
		ni, nc, nb := oi.Next(), oc.Next(), ob.Next()
		if ni != nc || ni != nb {
			t.Fatalf("%s: args %v exec %d: oracle enumeration diverged (interp next=%t, compiled next=%t, bytecode next=%t) — the engines take different Choose sequences\n%s",
				label, args, exec, ni, nc, nb, fn)
		}
		if !ni {
			break
		}
	}
	if oi.Overflowed != oc.Overflowed || oi.Overflowed != ob.Overflowed {
		t.Fatalf("%s: args %v: overflow flags diverge (interp %t, compiled %t, bytecode %t)\n%s",
			label, args, oi.Overflowed, oc.Overflowed, ob.Overflowed, fn)
	}
}

// diffFunc compiles fn once and lockstep-compares every input across
// the interpreter, the closure engine, and the bytecode tier.
func diffFunc(t *testing.T, label string, fn *ir.Func, opts core.Options) {
	t.Helper()
	prog := core.Compile(fn, opts)
	ex := core.NewExecutor(prog)
	exB := core.NewExecutor(prog)
	exB.SetTier(core.TierPolicy{Mode: core.TierBytecode})
	first := true
	for _, args := range paramInputs(fn, opts.Mode) {
		diffOne(t, label, fn, ex, exB, args, opts)
		if first {
			// A silent fallback to the closure engine would make the
			// three-way comparison vacuous; every test function must
			// actually lower.
			if got := exB.ActiveTier(); got != "bytecode" {
				t.Fatalf("%s: tier executor runs on %q, want bytecode\n%s", label, got, fn)
			}
			first = false
		}
	}
}

// compiledCorpus is hand-written IR hitting the constructs the
// exhaustive and random generators cannot produce: phis (including
// swap patterns and poison incomings), loops, memory, gep, globals,
// vectors, casts and calls.
var compiledCorpus = []struct {
	name       string
	src        string
	legacyOnly bool // uses undef, which the freeze dialect rejects
}{
	{name: "phi-merge", src: `define i2 @f(i2 %a, i2 %b) {
entry:
  %c = icmp ult i2 %a, %b
  br i1 %c, label %t, label %e
t:
  %x = add i2 %a, 1
  br label %done
e:
  %y = mul i2 %b, 2
  br label %done
done:
  %r = phi i2 [ %x, %t ], [ %y, %e ]
  ret i2 %r
}`},
	{name: "phi-poison-incoming", src: `define i2 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %done
e:
  br label %done
done:
  %r = phi i2 [ poison, %t ], [ 2, %e ]
  ret i2 %r
}`},
	{name: "phi-undef-incoming", legacyOnly: true, src: `define i2 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %done
e:
  br label %done
done:
  %r = phi i2 [ undef, %t ], [ 1, %e ]
  %s = xor i2 %r, %r
  ret i2 %s
}`},
	{name: "phi-swap-loop", src: `define i2 @f(i2 %n) {
entry:
  br label %loop
loop:
  %a = phi i2 [ 0, %entry ], [ %b, %loop ]
  %b = phi i2 [ 1, %entry ], [ %a, %loop ]
  %i = phi i2 [ 0, %entry ], [ %i1, %loop ]
  %i1 = add i2 %i, 1
  %c = icmp ult i2 %i1, %n
  br i1 %c, label %loop, label %done
done:
  ret i2 %a
}`},
	{name: "loop-store-load", src: `define i8 @f(i2 %n) {
entry:
  %a = alloca i8, i32 4
  br label %loop
loop:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %w = zext i2 %n to i8
  %c = icmp ult i8 %i, %w
  br i1 %c, label %body, label %done
body:
  %p = getelementptr i8, ptr %a, i8 %i
  store i8 %i, ptr %p
  %i1 = add i8 %i, 1
  br label %loop
done:
  %p0 = getelementptr i8, ptr %a, i8 0
  %v = load i8, ptr %p0
  ret i8 %v
}`},
	{name: "oob-gep-ub", src: `define i8 @f(i2 %i) {
entry:
  %a = alloca i8, i32 2
  %z = zext i2 %i to i8
  %p = getelementptr i8, ptr %a, i8 %z
  %v = load i8, ptr %p
  ret i8 %v
}`},
	{name: "branch-on-poison", src: `define i2 @f(i2 %x) {
entry:
  %c = icmp eq i2 poison, %x
  br i1 %c, label %t, label %e
t:
  ret i2 1
e:
  ret i2 2
}`},
	{name: "branch-on-undef", legacyOnly: true, src: `define i2 @f() {
entry:
  %c = icmp eq i2 undef, 0
  br i1 %c, label %t, label %e
t:
  ret i2 1
e:
  ret i2 2
}`},
	{name: "select-knobs", src: `define i2 @f(i2 %x, i2 %y) {
entry:
  %c = icmp sgt i2 %x, %y
  %s = select i1 %c, i2 %x, i2 poison
  %u = select i1 poison, i2 %s, i2 %y
  ret i2 %u
}`},
	{name: "freeze-chain", src: `define i2 @f(i2 %a) {
entry:
  %x = freeze i2 %a
  %y = xor i2 %x, %x
  %z = freeze i2 poison
  %r = or i2 %y, %z
  ret i2 %r
}`},
	{name: "vector-lanes", src: `define <2 x i2> @f(i2 %a) {
entry:
  %v = insertelement <2 x i2> <i2 1, i2 poison>, i2 %a, i32 0
  %w = add <2 x i2> %v, <i2 1, i2 1>
  ret <2 x i2> %w
}`},
	{name: "vector-extract-oob", src: `define i2 @f(i2 %i) {
entry:
  %z = zext i2 %i to i32
  %e = extractelement <2 x i2> <i2 1, i2 2>, i32 %z
  ret i2 %e
}`},
	{name: "bitcast-poison-smear", src: `define i8 @f() {
entry:
  %b = bitcast <8 x i1> <i1 1, i1 0, i1 poison, i1 0, i1 0, i1 0, i1 0, i1 0> to i8
  ret i8 %b
}`},
	{name: "casts", src: `define i8 @f(i2 %a) {
entry:
  %z = zext i2 %a to i8
  %s = sext i2 %a to i8
  %x = xor i8 %z, %s
  %t = trunc i8 %x to i2
  %r = zext i2 %t to i8
  ret i8 %r
}`},
	{name: "udiv-by-zero-ub", src: `define i2 @f(i2 %a, i2 %b) {
entry:
  %q = udiv i2 %a, %b
  ret i2 %q
}`},
	{name: "nsw-nuw-exact", src: `define i2 @f(i2 %a, i2 %b) {
entry:
  %x = add nsw i2 %a, %b
  %y = mul nuw i2 %x, %b
  %z = lshr exact i2 %y, %a
  ret i2 %z
}`},
	{name: "call-chain", src: `define i2 @sq(i2 %x) {
entry:
  %m = mul i2 %x, %x
  ret i2 %m
}
define i2 @f(i2 %a) {
entry:
  %r = call i2 @sq(i2 %a)
  %s = add i2 %r, 1
  %t = call i2 @sq(i2 %s)
  ret i2 %t
}`},
	{name: "recursion", src: `define i8 @fact(i8 %n) {
entry:
  %z = icmp eq i8 %n, 0
  br i1 %z, label %base, label %rec
base:
  ret i8 1
rec:
  %n1 = sub i8 %n, 1
  %r = call i8 @fact(i8 %n1)
  %m = mul i8 %n, %r
  ret i8 %m
}
define i8 @f(i2 %a) {
entry:
  %w = zext i2 %a to i8
  %r = call i8 @fact(i8 %w)
  ret i8 %r
}`},
	{name: "globals", src: `@tab = global 4 init 10 20 30
define i8 @f(i2 %i) {
entry:
  %z = zext i2 %i to i32
  %p = getelementptr i8, ptr @tab, i32 %z
  %v = load i8, ptr %p
  ret i8 %v
}`},
	{name: "uninit-load", src: `define i8 @f() {
entry:
  %a = alloca i8, i32 1
  %v = load i8, ptr %a
  ret i8 %v
}`},
	{name: "store-poison-ptr", src: `define void @f(i2 %x) {
entry:
  store i2 %x, ptr poison
  ret void
}`},
	{name: "unreachable", src: `define i2 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  unreachable
e:
  ret i2 3
}`},
	{name: "infinite-loop-fuel", src: `define void @f() {
entry:
  br label %loop
loop:
  br label %loop
}`},
}

// TestCompiledMatchesInterpreter is the engine-parity property test
// demanded by the compile/run split: compiled execution must be
// observationally identical to interpretation, outcome for outcome and
// choice for choice.
func TestCompiledMatchesInterpreter(t *testing.T) {
	t.Run("corpus", func(t *testing.T) {
		for _, tc := range compiledCorpus {
			m, err := ir.ParseModule(tc.src)
			if err != nil {
				t.Fatalf("%s: parse: %v", tc.name, err)
			}
			fn := m.Funcs[len(m.Funcs)-1]
			for _, v := range diffVariants() {
				if tc.legacyOnly && v.opts.Mode == core.Freeze {
					continue
				}
				opts := v.opts
				if tc.name == "infinite-loop-fuel" {
					opts.Fuel = 500 // exercise identical fuel accounting
				}
				diffFunc(t, tc.name+"/"+v.name, fn, opts)
			}
		}
	})

	t.Run("exhaustive-straightline", func(t *testing.T) {
		// A deterministic stride through the 3-instruction space keeps
		// runtime bounded while sampling all template regions.
		gen := optfuzz.DefaultConfig(3)
		gen.AllowPoison = true
		gen.EnumAttrs = true
		const want, stride = 120, 997
		var fns []*ir.Func
		n := 0
		optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
			if n%stride == 0 {
				fns = append(fns, ir.CloneFunc(f))
			}
			n++
			return len(fns) < want
		})
		if len(fns) < want/2 {
			t.Fatalf("sampled only %d functions", len(fns))
		}
		for i, fn := range fns {
			for _, v := range diffVariants() {
				diffFunc(t, fmt.Sprintf("exhaustive[%d]/%s", i, v.name), fn, v.opts)
			}
		}
	})

	t.Run("random-cfg", func(t *testing.T) {
		rng := rand.New(rand.NewSource(20170619)) // PLDI'17 et al.
		rcfg := optfuzz.DefaultRandomConfig()
		rcfg.AllowPoison = true
		for i := 0; i < 80; i++ {
			fn := optfuzz.Random(rng, rcfg)
			for _, v := range diffVariants() {
				if v.opts.Mode == core.Freeze {
					continue // random functions may embed undef leaves
				}
				diffFunc(t, fmt.Sprintf("random[%d]/%s", i, v.name), fn, v.opts)
			}
		}
		// Freeze-dialect round without undef leaves.
		rcfg.AllowUndef = false
		for i := 0; i < 40; i++ {
			fn := optfuzz.Random(rng, rcfg)
			diffFunc(t, fmt.Sprintf("random-freeze[%d]", i), fn, core.FreezeOptions())
		}
	})
}

// TestProgramSharedAcrossGoroutines exercises the frame and executor
// pools: one compiled Program driven concurrently must give every
// goroutine the serial answer. Run under -race in CI.
func TestProgramSharedAcrossGoroutines(t *testing.T) {
	m, err := ir.ParseModule(compiledCorpus[4].src) // loop-store-load: memory + phis
	if err != nil {
		t.Fatal(err)
	}
	fn := m.Funcs[0]
	opts := core.FreezeOptions()
	prog := core.Compile(fn, opts)

	inputs := paramInputs(fn, opts.Mode)
	want := make([]string, len(inputs))
	for i, args := range inputs {
		want[i] = outcomeKey(core.Interpret(fn, args, core.ZeroOracle{}, opts))
	}

	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % len(inputs)
				out := prog.Exec(inputs[i], core.ZeroOracle{})
				if got := outcomeKey(out); got != want[i] {
					errs <- fmt.Sprintf("worker %d round %d input %v: got %s, want %s", w, r, inputs[i], got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
