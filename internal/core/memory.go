package core

import (
	"fmt"

	"tameir/internal/ir"
)

// MemByte is one byte of memory, bit-granular as in Figure 5's
// Mem = Num(32) ⇀ ⟦<8 x i1>⟧: each bit may independently be 0, 1,
// poison or (legacy) undef. Val holds the defined bits; a bit set in
// Poison or UndefM overrides the corresponding Val bit.
type MemByte struct {
	Val    uint8
	Poison uint8
	UndefM uint8
}

// Bit returns the i'th bit of the byte.
func (b MemByte) Bit(i uint) Bit {
	switch {
	case b.Poison>>i&1 != 0:
		return BitPoison
	case b.UndefM>>i&1 != 0:
		return BitUndef
	case b.Val>>i&1 != 0:
		return Bit1
	}
	return Bit0
}

// SetBit sets the i'th bit of the byte.
func (b *MemByte) SetBit(i uint, v Bit) {
	mask := uint8(1) << i
	b.Val &^= mask
	b.Poison &^= mask
	b.UndefM &^= mask
	switch v {
	case Bit1:
		b.Val |= mask
	case BitPoison:
		b.Poison |= mask
	case BitUndef:
		b.UndefM |= mask
	}
}

// SizeOfType returns the number of bytes a value of type ty occupies in
// memory: its bitwidth rounded up to whole bytes (an i2 occupies one
// byte, as in LLVM).
func SizeOfType(ty ir.Type) uint32 {
	return uint32((ty.Bitwidth() + 7) / 8)
}

// pageBits is log2 of the memory page size.
const pageBits = 8

type page struct {
	bytes [1 << pageBits]MemByte
	alloc [1 << pageBits]bool
}

// Memory is a sparse 32-bit byte-addressed memory. Addresses are
// allocated by a bump allocator starting above the null page, so
// address 0 is never valid.
type Memory struct {
	pages map[uint32]*page
	brk   uint32
	// free holds pages harvested by Reset for reuse, so a long-lived
	// Memory (an Executor's) stops allocating once its working set
	// peaks.
	free []*page
}

// NewMemory returns an empty memory whose first allocation starts at a
// small non-zero address.
func NewMemory() *Memory {
	return &Memory{pages: map[uint32]*page{}, brk: 1 << pageBits}
}

// Reset returns the memory to its initial empty state — same starting
// break, no allocated bytes — keeping the backing pages on a freelist
// for reuse by subsequent allocations.
func (m *Memory) Reset() {
	for idx, p := range m.pages {
		m.free = append(m.free, p)
		delete(m.pages, idx)
	}
	m.brk = 1 << pageBits
}

func (m *Memory) pageFor(addr uint32) *page {
	idx := addr >> pageBits
	p := m.pages[idx]
	if p == nil {
		if n := len(m.free); n > 0 {
			p = m.free[n-1]
			m.free = m.free[:n-1]
			*p = page{}
		} else {
			p = &page{}
		}
		m.pages[idx] = p
	}
	return p
}

// Allocate reserves size bytes and returns the base address. Fresh
// memory is uninitialized: all-undef bits under Legacy semantics,
// all-poison under Freeze semantics (the paper: "loads of uninitialized
// data yield poison"). Allocation of zero bytes returns a unique
// non-null address with no accessible bytes.
func (m *Memory) Allocate(size uint32, mode Mode) (uint32, error) {
	// 8-byte align each block.
	base := (m.brk + 7) &^ 7
	if base+size < base || base+size > 0xffff0000 {
		return 0, fmt.Errorf("core: out of memory allocating %d bytes", size)
	}
	m.brk = base + size
	if size == 0 {
		m.brk++
	}
	fill := MemByte{UndefM: 0xff}
	if mode == Freeze {
		fill = MemByte{Poison: 0xff}
	}
	for a := base; a < base+size; a++ {
		p := m.pageFor(a)
		off := a & (1<<pageBits - 1)
		p.bytes[off] = fill
		p.alloc[off] = true
	}
	return base, nil
}

// valid reports whether every byte of [addr, addr+size) is allocated.
func (m *Memory) valid(addr uint32, size uint32) bool {
	for i := uint32(0); i < size; i++ {
		a := addr + i
		if a < addr {
			return false // wrapped
		}
		p := m.pages[a>>pageBits]
		if p == nil || !p.alloc[a&(1<<pageBits-1)] {
			return false
		}
	}
	return true
}

// Load implements Figure 5's Load(M, p, sz): it returns the bit
// representation at [addr, addr+⌈sz/8⌉) or an error if any touched byte
// is unallocated. sz is in bits.
func (m *Memory) Load(addr uint32, sz uint) ([]Bit, error) {
	nbytes := uint32((sz + 7) / 8)
	if !m.valid(addr, nbytes) {
		return nil, fmt.Errorf("load of %d bits from invalid address %#x", sz, addr)
	}
	bits := make([]Bit, 0, sz)
	for i := uint(0); i < sz; i++ {
		a := addr + uint32(i/8)
		p := m.pages[a>>pageBits]
		bits = append(bits, p.bytes[a&(1<<pageBits-1)].Bit(i%8))
	}
	return bits, nil
}

// Store implements Figure 5's Store(M, p, b): it writes the bits at
// [addr, ...) or returns an error if any touched byte is unallocated.
// When the bit count is not a multiple of 8, the trailing bits of the
// last byte are left unchanged (LLVM's in-memory type padding).
func (m *Memory) Store(addr uint32, bits []Bit) error {
	nbytes := uint32((uint(len(bits)) + 7) / 8)
	if !m.valid(addr, nbytes) {
		return fmt.Errorf("store of %d bits to invalid address %#x", len(bits), addr)
	}
	for i, b := range bits {
		a := addr + uint32(i/8)
		p := m.pages[a>>pageBits]
		p.bytes[a&(1<<pageBits-1)].SetBit(uint(i%8), b)
	}
	return nil
}

// StoreBytes writes raw initialized bytes (global initializers).
func (m *Memory) StoreBytes(addr uint32, data []byte) error {
	bits := make([]Bit, 0, len(data)*8)
	for _, by := range data {
		for i := uint(0); i < 8; i++ {
			if by>>i&1 != 0 {
				bits = append(bits, Bit1)
			} else {
				bits = append(bits, Bit0)
			}
		}
	}
	return m.Store(addr, bits)
}

// LoadBytes reads size raw bytes, resolving any deferred-UB bits to
// zero; intended for test inspection only.
func (m *Memory) LoadBytes(addr, size uint32) ([]byte, error) {
	bits, err := m.Load(addr, uint(size)*8)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	for i, b := range bits {
		if b == Bit1 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out, nil
}
