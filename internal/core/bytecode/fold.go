package bytecode

import "tameir/internal/core"

// Constant pre-folding evaluates a µop whose operands are all
// constants at lower time — with the real evaluator, so the fold
// cannot diverge from eval.go — and keeps the result only when the
// evaluation is provably deterministic and effect-free:
//
//   - It must not consult the oracle. tripOracle records any draw, so
//     freeze(poison), freeze(undef), a strict read of an undef
//     constant, and every other nondeterministic path refuse to fold
//     (each dynamic use must make its own oracle choices, in lockstep
//     with the other engines).
//   - It must not raise UB. `udiv %x, 0` stays a runtime µop so the
//     abort fires at the right fuel point with the right message.
//
// Folding to poison is fine (poison is a value), and the replacement
// uMovC still writes the slot and still charges its fuel unit, so
// Steps, timeout points and "read of unset register" behaviour are
// untouched — only the evaluation work disappears.

// constOperands reports whether every operand the µop reads is a
// constant ref.
func (u *uop) constOperands() bool {
	switch u.kind {
	case uBin, uICmp:
		return u.a < 0 && u.b < 0
	case uCast, uFreeze:
		return u.a < 0
	case uSel:
		return u.a < 0 && u.b < 0 && u.c < 0
	}
	return false
}

// tripOracle flags any oracle consultation during a fold attempt.
type tripOracle struct{ tripped bool }

func (o *tripOracle) Choose(n uint64) uint64 {
	o.tripped = true
	return 0
}

// tryFold attempts to pre-fold u; on success the returned µop is a
// constant move, and the fold is recorded for same-block operand
// substitution. The instruction keeps its slot write either way.
func (lw *fnLower) tryFold(u uop) uop {
	if !u.constOperands() {
		return u
	}
	trip := &tripOracle{}
	r := &Runner{opts: lw.opts, o: trip}
	fr := lw.foldFrame()
	fr.s[u.dst] = core.Scalar{Kind: kindUnset}
	if out := r.stepUop(lw.p, fr, &u); out != nil || trip.tripped {
		return u
	}
	folded := fr.s[u.dst]
	if folded.Kind == kindUnset {
		return u
	}
	lw.lk.stats.Folded++
	ref := lw.addConst(folded)
	lw.folded[u.dst] = ref
	return uop{kind: uMovC, dst: u.dst, a: ref}
}

// foldFrame returns the lowerer's scratch frame, grown to the current
// slot count (folding only ever touches the µop's dst slot — all
// operand refs are constants).
func (lw *fnLower) foldFrame() *frame {
	if lw.scratch == nil || len(lw.scratch.s) < lw.p.nS {
		lw.scratch = &frame{s: make([]core.Scalar, lw.p.nS)}
	}
	return lw.scratch
}
