package bytecode

import (
	"tameir/internal/core"
	"tameir/internal/ir"
)

// backend is the core.TierBackend the tiering controller promotes
// programs through. Registered at init; core cannot import this
// package (it would cycle), so execution-facing packages blank-import
// it to link the tier in.
type backend struct{}

// Name implements core.TierBackend.
func (backend) Name() string { return "bytecode" }

// Lower implements core.TierBackend. It declines traced options (the
// closure engine is the only tier with trace support) and functions
// that exceed the bytecode's encoding limits.
func (backend) Lower(fn *ir.Func, opts core.Options) (core.TierProgram, bool) {
	if opts.EmitTrace {
		return nil, false
	}
	p, ok := lower(fn, opts)
	if !ok {
		return nil, false
	}
	return p, true
}

func init() { core.RegisterTierBackend(backend{}) }

// LowerForTest exposes the lowering for white-box tests of fusion and
// folding (Prog.Stats) without going through the tiering controller.
// Options are normalized the same way Compile normalizes them, so the
// lowered semantics match what the controller would see.
func LowerForTest(fn *ir.Func, opts core.Options) (*Prog, bool) {
	return lower(fn, core.Compile(fn, opts).Options())
}
