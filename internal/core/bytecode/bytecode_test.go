package bytecode_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tameir/internal/core"
	"tameir/internal/core/bytecode"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
)

func outcomeKey(o core.Outcome) string {
	s := o.String()
	if o.Msg != "" {
		s += " | " + o.Msg
	}
	return s
}

// i2Inputs enumerates every i2 argument vector: all four concrete
// values plus poison, plus undef under legacy semantics.
func i2Inputs(fn *ir.Func, mode core.Mode) [][]core.Value {
	cands := make([][]core.Value, len(fn.Params))
	for i, p := range fn.Params {
		ty := p.Ty
		for v := uint64(0); v < 1<<ty.Bits; v++ {
			cands[i] = append(cands[i], core.VC(ty, v))
		}
		cands[i] = append(cands[i], core.VPoison(ty))
		if mode == core.Legacy {
			cands[i] = append(cands[i], core.VUndef(ty))
		}
	}
	var out [][]core.Value
	idx := make([]int, len(cands))
	for {
		args := make([]core.Value, len(cands))
		for i, j := range idx {
			args[i] = cands[i][j]
		}
		out = append(out, args)
		k := len(idx) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(cands[k]) {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			return out
		}
	}
}

// diffBytecode lockstep-compares the bytecode tier against the
// interpreter over the full oracle enumeration for every input.
func diffBytecode(t *testing.T, label string, fn *ir.Func, opts core.Options) {
	t.Helper()
	exB := core.NewExecutor(core.Compile(fn, opts))
	exB.SetTier(core.TierPolicy{Mode: core.TierBytecode})
	for _, args := range i2Inputs(fn, opts.Mode) {
		oi := core.NewEnumOracle(16, 1<<8)
		ob := core.NewEnumOracle(16, 1<<8)
		for exec := 0; exec <= 1<<12; exec++ {
			oi.Reset()
			ob.Reset()
			outI := core.Interpret(fn, args, oi, opts)
			outB := exB.Run(args, ob)
			if ki, kb := outcomeKey(outI), outcomeKey(outB); ki != kb {
				t.Fatalf("%s: args %v exec %d:\ninterpreted: %s\nbytecode:    %s\n%s",
					label, args, exec, ki, kb, fn)
			}
			ni, nb := oi.Next(), ob.Next()
			if ni != nb {
				t.Fatalf("%s: args %v exec %d: Choose sequences diverge (interp next=%t, bytecode next=%t)\n%s",
					label, args, exec, ni, nb, fn)
			}
			if !ni {
				break
			}
		}
	}
	if got := exB.ActiveTier(); got != "bytecode" {
		t.Fatalf("%s: executor runs on %q, want bytecode", label, got)
	}
}

// TestLoweringPreservesOutcomes is the fuzz-style lowering property:
// for randomly sampled straight-line programs (the §6 candidate
// shape, poison and undef leaves included), the bytecode VM's Outcome
// matches the interpreter on every exhaustive i2 input, for every
// oracle resolution. The straight-line shape is exactly what
// superblock fusion compiles to a single fused opcode, so this drives
// the fused fast path, the fold substitutions, and the fuel refund
// logic through their whole input space.
func TestLoweringPreservesOutcomes(t *testing.T) {
	rng := rand.New(rand.NewSource(20170619))
	gen := optfuzz.DefaultConfig(3)
	gen.AllowPoison = true
	gen.EnumAttrs = true

	const want = 150
	var fns []*ir.Func
	next := rng.Intn(200)
	n := 0
	optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
		if n == next {
			fns = append(fns, ir.CloneFunc(f))
			next = n + 1 + rng.Intn(2500)
		}
		n++
		return len(fns) < want
	})
	if len(fns) < want/2 {
		t.Fatalf("sampled only %d functions", len(fns))
	}
	for i, fn := range fns {
		diffBytecode(t, fmt.Sprintf("straightline[%d]/legacy", i), fn, core.LegacyOptions(core.BranchPoisonNondet))
	}
	// Freeze dialect over the poison-only subset (undef leaves are
	// rejected at compile time under freeze).
	gen.AllowUndef = false
	fns = fns[:0]
	n, next = 0, rng.Intn(200)
	optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
		if n == next {
			fns = append(fns, ir.CloneFunc(f))
			next = n + 1 + rng.Intn(2500)
		}
		n++
		return len(fns) < want/2
	})
	for i, fn := range fns {
		diffBytecode(t, fmt.Sprintf("straightline[%d]/freeze", i), fn, core.FreezeOptions())
	}
}

// lowerStats lowers the last function of src and returns the stats.
func lowerStats(t *testing.T, src string, opts core.Options) bytecode.LowerStats {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := m.Funcs[len(m.Funcs)-1]
	p, ok := bytecode.LowerForTest(fn, opts)
	if !ok {
		t.Fatalf("lowering declined:\n%s", fn)
	}
	return p.Stats()
}

// TestFoldSafety pins down what constant pre-folding may and may not
// do: fold oracle-free constant subtrees, never fold through freeze of
// a non-concrete value, never fold a strict read of undef, never fold
// away UB.
func TestFoldSafety(t *testing.T) {
	legacy := core.LegacyOptions(core.BranchPoisonNondet)
	cases := []struct {
		name   string
		src    string
		opts   core.Options
		folded int
	}{
		// A constant subtree folds, including the use of the folded
		// result in the same block.
		{"const-chain", `define i2 @f() {
entry:
  %x = add i2 1, 2
  %y = mul i2 %x, 3
  ret i2 %y
}`, legacy, 2},
		// freeze of a concrete constant is the identity: folds.
		{"freeze-concrete", `define i2 @f() {
entry:
  %x = freeze i2 2
  ret i2 %x
}`, legacy, 1},
		// freeze of poison draws a fresh value from the oracle on
		// every execution — folding it would pin one resolution.
		{"freeze-poison", `define i2 @f() {
entry:
  %x = freeze i2 poison
  ret i2 %x
}`, legacy, 0},
		// freeze of undef likewise.
		{"freeze-undef", `define i2 @f() {
entry:
  %x = freeze i2 undef
  ret i2 %x
}`, legacy, 0},
		// A strict read of undef resolves per use through the oracle:
		// add-of-undef must not fold (xor %u, %u could otherwise
		// "fold" to 0, which is wrong — each use resolves fresh).
		{"strict-undef", `define i2 @f() {
entry:
  %x = add i2 undef, 1
  %y = xor i2 undef, undef
  ret i2 %y
}`, legacy, 0},
		// Poison propagation is deterministic: folding to poison is
		// legal and keeps downstream consumers exact.
		{"poison-prop", `define i2 @f() {
entry:
  %x = add i2 poison, 1
  ret i2 %x
}`, legacy, 1},
		// UB must fire at run time, at the right fuel point: never
		// folded.
		{"udiv-zero-ub", `define i2 @f() {
entry:
  %x = udiv i2 1, 0
  ret i2 %x
}`, legacy, 0},
		// select with a poison condition under the chosen-arm knob is
		// deterministic poison: folds.
		{"select-poison-cond", `define i2 @f() {
entry:
  %x = select i1 poison, i2 1, i2 2
  ret i2 %x
}`, legacy, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := lowerStats(t, tc.src, tc.opts)
			if st.Folded != tc.folded {
				t.Fatalf("folded %d µops, want %d", st.Folded, tc.folded)
			}
			// Folding decisions must never change behaviour: sweep the
			// function against the interpreter regardless.
			m, _ := ir.ParseModule(tc.src)
			diffBytecode(t, tc.name, m.Funcs[len(m.Funcs)-1], tc.opts)
		})
	}
}

// TestSuperblockFusion checks the fusion shape: a straight-line run of
// scalar ops becomes one superblock covering every instruction.
func TestSuperblockFusion(t *testing.T) {
	st := lowerStats(t, `define i2 @f(i2 %a, i2 %b) {
entry:
  %x = add i2 %a, %b
  %c = icmp ult i2 %x, %b
  %s = select i1 %c, i2 %x, i2 %a
  %z = freeze i2 %s
  ret i2 %z
}`, core.LegacyOptions(core.BranchPoisonNondet))
	if st.Superblocks != 1 || st.Fused != 4 {
		t.Fatalf("got %d superblocks / %d fused µops, want 1/4 (stats %+v)", st.Superblocks, st.Fused, st)
	}
}

// TestTierPromotion drives the TierAuto controller: execution starts
// on the closure engine and hops to bytecode once the per-program
// counter trips the threshold, counting exactly one promotion.
func TestTierPromotion(t *testing.T) {
	m, err := ir.ParseModule(`define i2 @f(i2 %a) {
entry:
  %x = add i2 %a, 1
  ret i2 %x
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := m.Funcs[0]
	opts := core.FreezeOptions()
	ex := core.NewExecutor(core.Compile(fn, opts))
	ex.SetTier(core.TierPolicy{Mode: core.TierAuto, PromoteAfter: 4})

	args := []core.Value{core.VC(ir.Int(2), 1)}
	for i := 0; i < 10; i++ {
		if out := ex.Run(args, core.ZeroOracle{}); out.Kind != core.OutRet || out.Val.Uint() != 2 {
			t.Fatalf("run %d: unexpected outcome %s", i, outcomeKey(out))
		}
		wantTier := "closure"
		if i >= 3 { // the 4th Run trips PromoteAfter=4
			wantTier = "bytecode"
		}
		if got := ex.ActiveTier(); got != wantTier {
			t.Fatalf("run %d: active tier %q, want %q", i, got, wantTier)
		}
	}
	met := ex.Metrics()
	if met.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", met.Promotions)
	}
	if met.ClosureExecs != 3 || met.BytecodeExecs != 7 {
		t.Fatalf("per-tier execs closure=%d bytecode=%d, want 3/7", met.ClosureExecs, met.BytecodeExecs)
	}
	if met.Execs != 10 {
		t.Fatalf("execs = %d, want 10", met.Execs)
	}
}
