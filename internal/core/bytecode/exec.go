package bytecode

import (
	"fmt"

	"tameir/internal/core"
	"tameir/internal/ir"
)

// kindUnset marks an unwritten scalar slot. ScalarKind only uses
// 0/1/2, so 0xff is free as a frame sentinel; the closure engine's
// equivalent is a Value with nil Lanes.
const kindUnset = core.ScalarKind(0xff)

// frame is one activation record: a statically typed register file,
// scalars and vectors in separate planes.
type frame struct {
	s []core.Scalar
	v []core.Value
}

func newFrame(p *fnProg) *frame {
	fr := &frame{s: make([]core.Scalar, p.nS), v: make([]core.Value, p.nV)}
	fr.reset()
	return fr
}

func (fr *frame) reset() {
	for i := range fr.s {
		fr.s[i] = core.Scalar{Kind: kindUnset}
	}
	clear(fr.v)
}

// Runner executes one Prog on behalf of one executor: the bytecode
// mirror of core.Executor's run state. Not safe for concurrent use.
type Runner struct {
	p    *Prog
	opts core.Options

	o     core.Oracle
	m     *core.EngineMetrics
	fuel  int
	steps int
	depth int

	mem        *core.Memory
	globalAddr map[*ir.Global]uint32

	// arena is the per-execution lane allocator for the generic path
	// (same contract as Env.newLanes: carvings live until Run returns).
	arena   []core.Scalar
	callBuf []core.Value

	// phi-move scratch: all sources are read before any destination is
	// written. An edge take never nests (no calls inside), so one
	// buffer pair per runner serves every edge at every depth.
	phiS []core.Scalar
	phiV []core.Value

	rootFr *frame
	free   map[*fnProg][]*frame
}

// Run implements core.TierRunner, mirroring core.Executor.Run step for
// step: same validation order, same reset semantics, same metrics.
func (r *Runner) Run(args []core.Value, o core.Oracle, m *core.EngineMetrics) core.Outcome {
	p := r.p.root
	if out := checkArgs(p.fn, args); out != nil {
		return *out
	}
	r.o = o
	r.m = m
	r.opts = r.p.opts
	r.fuel = r.p.opts.Fuel
	r.depth = 0
	r.steps = 0
	r.arena = r.arena[:0]
	if r.p.needsMem {
		if r.mem == nil {
			r.mem = core.NewMemory()
		} else {
			r.mem.Reset()
		}
		if err := r.initGlobals(); err != nil {
			return core.Outcome{Kind: core.OutError, Msg: err.Error()}
		}
	}
	if r.depth >= r.opts.MaxCallDepth {
		return core.Outcome{Kind: core.OutTimeout, Msg: "call depth exceeded"}
	}
	r.depth++
	if r.rootFr == nil {
		r.rootFr = newFrame(p)
		m.FramesAllocated++
	}
	out := r.exec(p, r.rootFr, args)
	r.rootFr.reset()
	r.depth--
	m.Execs++
	m.BytecodeExecs++
	m.Steps += uint64(r.steps)
	// Outgoing lanes may be carved from the arena, which the next Run
	// resets; give them their own backing.
	if out.Val.Lanes != nil {
		out.Val.Lanes = append([]core.Scalar(nil), out.Val.Lanes...)
	}
	return out
}

func checkArgs(fn *ir.Func, args []core.Value) *core.Outcome {
	if len(args) != len(fn.Params) {
		return &core.Outcome{Kind: core.OutError, Msg: fmt.Sprintf("arity: got %d args, want %d", len(args), len(fn.Params))}
	}
	for i, a := range args {
		if !a.Ty.Equal(fn.Params[i].Ty) {
			return &core.Outcome{Kind: core.OutError, Msg: fmt.Sprintf("arg %d type %s, want %s", i, a.Ty, fn.Params[i].Ty)}
		}
	}
	return nil
}

// initGlobals allocates the module's globals in module order from the
// reset bump allocator, so addresses match every engine on every run.
func (r *Runner) initGlobals() error {
	mod := r.p.mod
	if mod == nil {
		return nil
	}
	if r.globalAddr == nil {
		r.globalAddr = make(map[*ir.Global]uint32, len(mod.Globals))
	}
	for _, g := range mod.Globals {
		addr, err := r.mem.Allocate(g.Size, r.opts.Mode)
		if err != nil {
			return err
		}
		if len(g.Init) > 0 {
			if err := r.mem.StoreBytes(addr, g.Init); err != nil {
				return err
			}
		}
		r.globalAddr[g] = addr
	}
	return nil
}

// newLanes carves n lanes from the run arena (Env.newLanes's twin).
func (r *Runner) newLanes(n int) []core.Scalar {
	if cap(r.arena)-len(r.arena) < n {
		c := 2 * cap(r.arena)
		if c < 32 {
			c = 32
		}
		if c > 1<<16 {
			c = 1 << 16
		}
		for c < n {
			c *= 2
		}
		r.arena = make([]core.Scalar, 0, c)
	}
	m := len(r.arena)
	r.arena = r.arena[:m+n]
	return r.arena[m : m+n : m+n]
}

// invoke runs one inner-call activation, mirroring Program.invoke.
func (r *Runner) invoke(p *fnProg, args []core.Value) core.Outcome {
	if r.depth >= r.opts.MaxCallDepth {
		return core.Outcome{Kind: core.OutTimeout, Msg: "call depth exceeded"}
	}
	r.depth++
	var fr *frame
	if fl := r.free[p]; len(fl) > 0 {
		fr = fl[len(fl)-1]
		r.free[p] = fl[:len(fl)-1]
		r.m.FramesPooled++
	} else {
		fr = newFrame(p)
		r.m.FramesAllocated++
	}
	out := r.exec(p, fr, args)
	fr.reset()
	if r.free == nil {
		r.free = map[*fnProg][]*frame{}
	}
	r.free[p] = append(r.free[p], fr)
	r.depth--
	return out
}

func ubOut(msg string) *core.Outcome { return &core.Outcome{Kind: core.OutUB, Msg: msg} }

var timeoutOut = core.Outcome{Kind: core.OutTimeout}

// exec is the dispatch loop over the dense instruction stream. Fuel is
// charged per original IR instruction exactly as the other engines
// charge it: one unit checked-then-charged per step, none for phi
// moves or pre/fall errors; fused bodies charge in bulk when covered
// and refund the unexecuted tail on abort.
func (r *Runner) exec(p *fnProg, fr *frame, args []core.Value) core.Outcome {
	for i, ps := range p.params {
		if ps.vec {
			fr.v[ps.slot] = args[i]
		} else {
			fr.s[ps.slot] = args[i].Scalar()
		}
	}
	code := p.code
	pc := int32(0)
	for {
		ins := code[pc]
		op := ins & 0xff
		a := int(uint16(ins >> 8))
		if op == opFail {
			return p.outs[a]
		}
		if op != opFuse {
			if r.fuel <= 0 {
				return timeoutOut
			}
			r.fuel--
			r.steps++
		}
		switch op {
		case opFuse:
			body := &p.fused[a]
			n := body.fuel
			if r.fuel >= n {
				// Bulk charge; refund what an abort leaves unexecuted
				// so the timeout point and Steps match the closure
				// engine's per-instruction accounting.
				r.fuel -= n
				r.steps += n
				for i := range body.uops {
					if out := r.stepUop(p, fr, &body.uops[i]); out != nil {
						unrun := n - (i + 1)
						r.fuel += unrun
						r.steps -= unrun
						return *out
					}
				}
			} else {
				for i := range body.uops {
					if r.fuel <= 0 {
						return timeoutOut
					}
					r.fuel--
					r.steps++
					if out := r.stepUop(p, fr, &body.uops[i]); out != nil {
						return *out
					}
				}
			}
			pc++

		case opGen:
			if out := r.stepGop(p, fr, &p.gops[a]); out != nil {
				return *out
			}
			pc++

		case opBr:
			tgt, out := r.takeEdge(p, fr, &p.edges[a])
			if out != nil {
				return *out
			}
			pc = tgt

		case opCondBr:
			s, out := r.evalScalar(p, fr, &p.opds[a])
			if out != nil {
				return *out
			}
			switch s.Kind {
			case core.PoisonVal:
				if r.opts.BranchPoison == core.BranchPoisonIsUB {
					return *ubOut("branch on poison")
				}
				s = core.C(r.o.Choose(2))
			case core.UndefVal:
				s = core.C(r.o.Choose(2))
			}
			ei := int(uint16(ins >> 24))
			if s.Bits == 0 {
				ei = int(uint16(ins >> 40))
			}
			tgt, out := r.takeEdge(p, fr, &p.edges[ei])
			if out != nil {
				return *out
			}
			pc = tgt

		case opRet:
			v, out := r.evalValue(p, fr, &p.opds[a])
			if out != nil {
				return *out
			}
			return core.Outcome{Kind: core.OutRet, Val: v}

		case opRetVoid:
			return core.Outcome{Kind: core.OutRet, Val: core.Value{Ty: ir.Void}}

		case opUnreach:
			return core.Outcome{Kind: core.OutUB, Msg: "reached unreachable"}

		default: // opErrStep
			return p.outs[a]
		}
	}
}

// takeEdge performs the edge's simultaneous phi assignment (all
// sources read before any destination is written) and returns the
// target pc.
func (r *Runner) takeEdge(p *fnProg, fr *frame, e *bedge) (int32, *core.Outcome) {
	if len(e.moves) == 0 {
		return e.target, nil
	}
	if len(r.phiS) < len(e.moves) {
		r.phiS = make([]core.Scalar, len(e.moves))
		r.phiV = make([]core.Value, len(e.moves))
	}
	for i := range e.moves {
		mv := &e.moves[i]
		if mv.vec {
			v, out := r.evalValue(p, fr, &mv.src)
			if out != nil {
				return 0, out
			}
			r.phiV[i] = v
		} else {
			s, out := r.evalScalar(p, fr, &mv.src)
			if out != nil {
				return 0, out
			}
			r.phiS[i] = s
		}
	}
	for i := range e.moves {
		mv := &e.moves[i]
		if mv.dst < 0 {
			continue
		}
		if mv.vec {
			fr.v[mv.dst] = r.phiV[i]
		} else {
			fr.s[mv.dst] = r.phiS[i]
		}
	}
	return e.target, nil
}

// evalScalar is the plain (no undef resolution) evaluation of a
// generic operand known to be scalar-typed; the gcSlotV arm only fires
// on malformed IR and falls back to the full value path.
func (r *Runner) evalScalar(p *fnProg, fr *frame, g *gopd) (core.Scalar, *core.Outcome) {
	switch g.kind {
	case gcConst:
		return g.val.Scalar(), nil
	case gcSlotS:
		s := fr.s[g.slot]
		if s.Kind == kindUnset {
			return core.Scalar{}, &core.Outcome{Kind: core.OutError, Msg: "read of unset register " + g.ident}
		}
		return s, nil
	case gcGlobal:
		addr, ok := r.globalAddr[g.global]
		if !ok {
			return core.Scalar{}, &core.Outcome{Kind: core.OutError, Msg: "unmapped global @" + g.global.Name()}
		}
		return core.C(uint64(addr)), nil
	case gcSlotV:
		v, out := r.evalValue(p, fr, g)
		if out != nil {
			return core.Scalar{}, out
		}
		return v.Scalar(), nil
	default:
		return core.Scalar{}, &core.Outcome{Kind: core.OutError, Msg: g.errMsg}
	}
}

// evalValue mirrors opd.eval: ⟦op⟧R without undef resolution.
func (r *Runner) evalValue(p *fnProg, fr *frame, g *gopd) (core.Value, *core.Outcome) {
	switch g.kind {
	case gcConst:
		return g.val, nil
	case gcSlotS:
		s := fr.s[g.slot]
		if s.Kind == kindUnset {
			return core.Value{}, &core.Outcome{Kind: core.OutError, Msg: "read of unset register " + g.ident}
		}
		lanes := r.newLanes(1)
		lanes[0] = s
		return core.Value{Ty: g.ty, Lanes: lanes}, nil
	case gcSlotV:
		v := fr.v[g.slot]
		if v.Lanes == nil {
			return core.Value{}, &core.Outcome{Kind: core.OutError, Msg: "read of unset register " + g.ident}
		}
		return v, nil
	case gcGlobal:
		addr, ok := r.globalAddr[g.global]
		if !ok {
			return core.Value{}, &core.Outcome{Kind: core.OutError, Msg: "unmapped global @" + g.global.Name()}
		}
		return core.VC(ir.Ptr, uint64(addr)), nil
	default:
		return core.Value{}, &core.Outcome{Kind: core.OutError, Msg: g.errMsg}
	}
}

// evalStrict additionally resolves undef lanes per use through the
// oracle, in lane order — the same draws opd.evalStrict makes.
func (r *Runner) evalStrict(p *fnProg, fr *frame, g *gopd) (core.Value, *core.Outcome) {
	v, out := r.evalValue(p, fr, g)
	if out != nil {
		return v, out
	}
	for i := range v.Lanes {
		if v.Lanes[i].Kind == core.UndefVal {
			return core.ResolveUndef(v, r.o), nil
		}
	}
	return v, nil
}

// sread is the fused path's plain scalar read: consts from the intern
// table, slots from the scalar plane.
func (r *Runner) sread(p *fnProg, fr *frame, ref int32) (core.Scalar, *core.Outcome) {
	if ref < 0 {
		return p.sconsts[^ref], nil
	}
	s := fr.s[ref]
	if s.Kind == kindUnset {
		return core.Scalar{}, &core.Outcome{Kind: core.OutError, Msg: "read of unset register " + p.slotIdent[ref]}
	}
	return s, nil
}

// sreadStrict resolves an undef read at width w (ResolveLane draws
// from the oracle only for undef, so the draw sequence matches the
// closure engine's strict reads exactly).
func (r *Runner) sreadStrict(p *fnProg, fr *frame, ref int32, w uint) (core.Scalar, *core.Outcome) {
	s, out := r.sread(p, fr, ref)
	if out != nil {
		return s, out
	}
	if s.Kind == core.UndefVal {
		return core.ResolveLane(s, w, r.o), nil
	}
	return s, nil
}

// stepUop executes one fused µop. nil means the µop completed and
// wrote its slot.
func (r *Runner) stepUop(p *fnProg, fr *frame, u *uop) *core.Outcome {
	switch u.kind {
	case uMovC:
		fr.s[u.dst] = p.sconsts[^u.a]
		return nil

	case uBin:
		x, out := r.sreadStrict(p, fr, u.a, u.w)
		if out != nil {
			return out
		}
		y, out := r.sreadStrict(p, fr, u.b, u.w)
		if out != nil {
			return out
		}
		s, ub := core.EvalBinopLane(u.op, u.attrs, u.w, x, y, r.opts.Mode)
		if ub != "" {
			return ubOut(ub)
		}
		fr.s[u.dst] = s
		return nil

	case uICmp:
		x, out := r.sreadStrict(p, fr, u.a, u.w)
		if out != nil {
			return out
		}
		y, out := r.sreadStrict(p, fr, u.b, u.w)
		if out != nil {
			return out
		}
		fr.s[u.dst] = core.EvalICmpLane(u.pred, u.w, x, y)
		return nil

	case uCast:
		x, out := r.sreadStrict(p, fr, u.a, u.w)
		if out != nil {
			return out
		}
		fr.s[u.dst] = core.EvalCastLane(u.op, u.w, u.toW, x)
		return nil

	case uFreeze:
		x, out := r.sread(p, fr, u.a)
		if out != nil {
			return out
		}
		fr.s[u.dst] = core.FreezeLane(x, u.w, r.o)
		return nil

	default: // uSel
		c, out := r.sread(p, fr, u.a)
		if out != nil {
			return out
		}
		x, out := r.sread(p, fr, u.b)
		if out != nil {
			return out
		}
		y, out := r.sread(p, fr, u.c)
		if out != nil {
			return out
		}
		switch c.Kind {
		case core.PoisonVal:
			switch r.opts.SelectPoisonCond {
			case core.SelectPoisonCondUB:
				return ubOut("select on poison condition")
			case core.SelectPoisonCondNondet:
				c = core.C(r.o.Choose(2))
			default:
				fr.s[u.dst] = core.PoisonScalar
				return nil
			}
		case core.UndefVal:
			c = core.C(r.o.Choose(2))
		}
		if r.opts.SelectArmPoisonEither && (x.Kind == core.PoisonVal || y.Kind == core.PoisonVal) {
			fr.s[u.dst] = core.PoisonScalar
			return nil
		}
		if c.Bits != 0 {
			fr.s[u.dst] = x
		} else {
			fr.s[u.dst] = y
		}
		return nil
	}
}

// writeDst stores a generic op's result into its statically typed
// plane.
func (fr *frame) writeDst(g *gop, v core.Value) {
	if g.dst < 0 {
		return
	}
	if g.dstVec {
		fr.v[g.dst] = v
	} else {
		fr.s[g.dst] = v.Scalar()
	}
}

// stepGop executes one generic op, mirroring the closure engine's
// compiled evaluators case by case (same evaluation order, same oracle
// draws, same messages).
func (r *Runner) stepGop(p *fnProg, fr *frame, g *gop) *core.Outcome {
	switch g.kind {
	case gBin:
		x, out := r.evalStrict(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		y, out := r.evalStrict(p, fr, &g.args[1])
		if out != nil {
			return out
		}
		lanes := r.newLanes(len(x.Lanes))
		for i := range lanes {
			s, ub := core.EvalBinopLane(g.op, g.attrs, g.w, x.Lanes[i], y.Lanes[i], r.opts.Mode)
			if ub != "" {
				return ubOut(ub)
			}
			lanes[i] = s
		}
		fr.writeDst(g, core.Value{Ty: g.ty, Lanes: lanes})
		return nil

	case gICmp:
		x, out := r.evalStrict(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		y, out := r.evalStrict(p, fr, &g.args[1])
		if out != nil {
			return out
		}
		lanes := r.newLanes(len(x.Lanes))
		for i := range lanes {
			lanes[i] = core.EvalICmpLane(g.pred, g.w, x.Lanes[i], y.Lanes[i])
		}
		fr.writeDst(g, core.Value{Ty: g.ty, Lanes: lanes})
		return nil

	case gSelect:
		return r.stepSelect(p, fr, g)

	case gFreeze:
		x, out := r.evalValue(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		lanes := r.newLanes(len(x.Lanes))
		for i, l := range x.Lanes {
			lanes[i] = core.FreezeLane(l, g.w, r.o)
		}
		fr.writeDst(g, core.Value{Ty: g.ty, Lanes: lanes})
		return nil

	case gAlloca:
		size := uint64(g.elemSize) * g.cnt
		if size > 1<<24 {
			return &core.Outcome{Kind: core.OutError, Msg: "alloca too large"}
		}
		addr, err := r.mem.Allocate(uint32(size), r.opts.Mode)
		if err != nil {
			return &core.Outcome{Kind: core.OutError, Msg: err.Error()}
		}
		fr.writeDst(g, core.VC(ir.Ptr, uint64(addr)))
		return nil

	case gLoad:
		pv, out := r.evalStrict(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		ps := pv.Scalar()
		if ps.Kind == core.PoisonVal {
			return ubOut("load from poison address")
		}
		bits, err := r.mem.Load(uint32(ps.Bits), g.szBits)
		if err != nil {
			return ubOut(err.Error())
		}
		fr.writeDst(g, core.Raise(g.ty, bits, r.o))
		return nil

	case gStore:
		v, out := r.evalValue(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		pv, out := r.evalStrict(p, fr, &g.args[1])
		if out != nil {
			return out
		}
		ps := pv.Scalar()
		if ps.Kind == core.PoisonVal {
			return ubOut("store to poison address")
		}
		if err := r.mem.Store(uint32(ps.Bits), core.Lower(v)); err != nil {
			return ubOut(err.Error())
		}
		return nil

	case gGEP:
		base, out := r.evalStrict(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		idx, out := r.evalStrict(p, fr, &g.args[1])
		if out != nil {
			return out
		}
		s := core.EvalGEP(g.attrs, base.Scalar(), idx.Scalar(), g.idxW, g.elemSize)
		lanes := r.newLanes(1)
		lanes[0] = s
		fr.writeDst(g, core.Value{Ty: ir.Ptr, Lanes: lanes})
		return nil

	case gCast:
		x, out := r.evalStrict(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		lanes := r.newLanes(len(x.Lanes))
		for i, l := range x.Lanes {
			lanes[i] = core.EvalCastLane(g.op, g.w, g.toW, l)
		}
		fr.writeDst(g, core.Value{Ty: g.ty, Lanes: lanes})
		return nil

	case gBitcast:
		x, out := r.evalValue(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		fr.writeDst(g, core.Raise(g.ty, core.Lower(x), r.o))
		return nil

	case gExtract:
		vv, out := r.evalValue(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		iv, out := r.evalStrict(p, fr, &g.args[1])
		if out != nil {
			return out
		}
		is := iv.Scalar()
		if is.Kind == core.PoisonVal || is.Bits >= uint64(len(vv.Lanes)) {
			fr.writeDst(g, core.VPoison(g.ty))
			return nil
		}
		lanes := r.newLanes(1)
		lanes[0] = vv.Lanes[is.Bits]
		fr.writeDst(g, core.Value{Ty: g.ty, Lanes: lanes})
		return nil

	case gInsert:
		vv, out := r.evalValue(p, fr, &g.args[0])
		if out != nil {
			return out
		}
		sv, out := r.evalValue(p, fr, &g.args[1])
		if out != nil {
			return out
		}
		iv, out := r.evalStrict(p, fr, &g.args[2])
		if out != nil {
			return out
		}
		is := iv.Scalar()
		if is.Kind == core.PoisonVal || is.Bits >= uint64(len(vv.Lanes)) {
			fr.writeDst(g, core.VPoison(g.ty))
			return nil
		}
		lanes := r.newLanes(len(vv.Lanes))
		copy(lanes, vv.Lanes)
		lanes[is.Bits] = sv.Scalar()
		fr.writeDst(g, core.Value{Ty: g.ty, Lanes: lanes})
		return nil

	default: // gCall
		if cap(r.callBuf) < len(g.args) {
			r.callBuf = make([]core.Value, len(g.args))
		}
		callArgs := r.callBuf[:len(g.args)]
		for i := range g.args {
			v, out := r.evalValue(p, fr, &g.args[i])
			if out != nil {
				return out
			}
			callArgs[i] = v
		}
		res := r.invoke(g.callee, callArgs)
		if res.Kind != core.OutRet {
			return &res
		}
		fr.writeDst(g, res.Val)
		return nil
	}
}

// stepSelect mirrors the closure engine's compileSelect, scalar-cond
// and vector-cond paths included.
func (r *Runner) stepSelect(p *fnProg, fr *frame, g *gop) *core.Outcome {
	cv, out := r.evalValue(p, fr, &g.args[0])
	if out != nil {
		return out
	}
	xv, out := r.evalValue(p, fr, &g.args[1])
	if out != nil {
		return out
	}
	yv, out := r.evalValue(p, fr, &g.args[2])
	if out != nil {
		return out
	}
	if !cv.Ty.IsVec() {
		s := cv.Scalar()
		switch s.Kind {
		case core.PoisonVal:
			switch r.opts.SelectPoisonCond {
			case core.SelectPoisonCondUB:
				return ubOut("select on poison condition")
			case core.SelectPoisonCondNondet:
				s = core.C(r.o.Choose(2))
			default:
				fr.writeDst(g, core.VPoison(g.ty))
				return nil
			}
		case core.UndefVal:
			s = core.C(r.o.Choose(2))
		}
		if r.opts.SelectArmPoisonEither && (xv.AnyPoison() || yv.AnyPoison()) {
			fr.writeDst(g, core.VPoison(g.ty))
			return nil
		}
		if s.Bits != 0 {
			fr.writeDst(g, xv)
		} else {
			fr.writeDst(g, yv)
		}
		return nil
	}
	lanes := r.newLanes(len(cv.Lanes))
	for i, cl := range cv.Lanes {
		switch cl.Kind {
		case core.PoisonVal:
			switch r.opts.SelectPoisonCond {
			case core.SelectPoisonCondUB:
				return ubOut("select on poison condition")
			case core.SelectPoisonCondNondet:
				cl = core.C(r.o.Choose(2))
			default:
				lanes[i] = core.PoisonScalar
				continue
			}
		case core.UndefVal:
			cl = core.C(r.o.Choose(2))
		}
		xi, yi := xv.Lanes[i], yv.Lanes[i]
		if r.opts.SelectArmPoisonEither && (xi.Kind == core.PoisonVal || yi.Kind == core.PoisonVal) {
			lanes[i] = core.PoisonScalar
			continue
		}
		if cl.Bits != 0 {
			lanes[i] = xi
		} else {
			lanes[i] = yi
		}
	}
	fr.writeDst(g, core.Value{Ty: g.ty, Lanes: lanes})
	return nil
}
