// Package bytecode is the tier-2 execution engine: it lowers a
// function to a flat, register-based bytecode — a dense []uint64
// instruction stream over frame-slot operands — executed by a
// direct-threaded switch dispatch loop (exec.go).
//
// Two lowering optimizations do the work the closure engine cannot:
//
//   - Superblock fusion: a straight-line run of side-effect-free
//     scalar ops (binop, icmp, cast, freeze, scalar select) becomes
//     ONE fused opcode whose unrolled µop body runs without
//     per-instruction dispatch, without per-instruction fuel checks
//     (the fuel is charged in bulk and refunded on early abort), and
//     without per-value lane allocation — scalar results go straight
//     into a static Scalar slot plane.
//
//   - Constant pre-folding: a µop whose operands are all constants is
//     evaluated at lower time against a trip-wire oracle (fold.go); if
//     the evaluation completes without consulting the oracle and
//     without UB, the µop is replaced by a constant move and the
//     result is substituted into later operands of the same block.
//
// Everything the fast path does not cover — vectors, memory, calls,
// malformed-IR error operands — lowers to generic ops that replay the
// closure engine's evaluation order exactly, so the three engines stay
// in oracle-call lockstep (TestCompiledMatchesInterpreter).
package bytecode

import (
	"fmt"

	"tameir/internal/core"
	"tameir/internal/ir"
)

// Opcodes of the dense instruction stream. Each instruction packs
// op(8) | A(16) | B(16) | C(16) into one uint64; A/B/C index the
// program's side tables.
const (
	opFail    = iota // uncharged abort: outs[A] (preErr / fallErr)
	opFuse           // fused superblock: fused[A]
	opGen            // generic op: gops[A]
	opBr             // unconditional: take edges[A]
	opCondBr         // cond opds[A]; true edges[B], false edges[C]
	opRet            // return opds[A]
	opRetVoid        // return void
	opUnreach        // UB "reached unreachable"
	opErrStep        // charged abort: outs[A] (unhandled opcode)
)

func pack(op int, a, b, c int) uint64 {
	return uint64(op) | uint64(uint16(a))<<8 | uint64(uint16(b))<<24 | uint64(uint16(c))<<40
}

// µop kinds of a fused body.
const (
	uMovC   = iota // s[dst] = sconsts[^a] (pre-folded constant)
	uBin           // s[dst] = binop(strict a, strict b)
	uICmp          // s[dst] = icmp(strict a, strict b)
	uCast          // s[dst] = cast(strict a)
	uFreeze        // s[dst] = freeze(plain a)
	uSel           // s[dst] = select(plain a, plain b, plain c)
)

// uop is one unrolled instruction of a fused superblock. Operand refs
// are scalar-plane slots when >= 0 and ^index into sconsts when
// negative; w is the operand lane width (the width undef resolves at,
// and the binop width), toW the cast target width.
type uop struct {
	kind  uint8
	op    ir.Op
	attrs ir.Attrs
	pred  ir.Pred
	w     uint
	toW   uint
	dst   int32
	a     int32
	b     int32
	c     int32
}

// fusedBody is one superblock: fuel is the µop count, charged in bulk
// when enough fuel remains (exec.go refunds the unexecuted tail on
// abort so Steps and timeout points match the closure engine exactly).
type fusedBody struct {
	uops []uop
	fuel int
}

// Generic-operand kinds (the bytecode mirror of the closure engine's
// opd): constants, a slot in either plane, a global, or a compile-time
// error that fires when evaluated.
const (
	gcConst = iota
	gcSlotS
	gcSlotV
	gcGlobal
	gcErr
)

type gopd struct {
	kind   uint8
	val    core.Value
	slot   int32
	ty     ir.Type
	ident  string
	global *ir.Global
	errMsg string
}

func errGopd(msg string) gopd { return gopd{kind: gcErr, errMsg: msg} }

// Generic-op kinds.
const (
	gBin = iota
	gICmp
	gSelect
	gFreeze
	gAlloca
	gLoad
	gStore
	gGEP
	gCast
	gBitcast
	gExtract
	gInsert
	gCall
)

// gop is one generic (non-fusible) instruction.
type gop struct {
	kind     uint8
	op       ir.Op
	attrs    ir.Attrs
	pred     ir.Pred
	ty       ir.Type // result type
	w        uint    // lane/operand width
	toW      uint
	idxW     uint
	elemSize uint32
	szBits   uint   // load bitwidth
	cnt      uint64 // alloca count
	dst      int32  // result slot (-1: void)
	dstVec   bool
	args     []gopd
	callee   *fnProg
}

// bmove is one phi assignment on a CFG edge; vec selects the dst plane
// (and the scratch buffer the simultaneous read goes through).
type bmove struct {
	src gopd
	dst int32 // -1: evaluate for effect only
	vec bool
}

// bedge is one compiled CFG edge: target pc plus phi moves.
type bedge struct {
	target int32
	moves  []bmove
}

// fnProg is one lowered function.
type fnProg struct {
	fn   *ir.Func
	nS   int // scalar slot-plane size
	nV   int // vector slot-plane size
	code []uint64

	fused   []fusedBody
	gops    []gop
	edges   []bedge
	opds    []gopd
	outs    []core.Outcome
	sconsts []core.Scalar

	// slotIdent names each scalar slot for "read of unset register"
	// diagnostics; vslotIdent likewise for the vector plane.
	slotIdent  []string
	vslotIdent []string

	params []pslot
}

type pslot struct {
	slot int32
	vec  bool
}

// Prog is a whole lowered call graph: the core.TierProgram the
// backend hands the tiering controller. Immutable after lowering.
type Prog struct {
	root     *fnProg
	opts     core.Options
	mod      *ir.Module
	needsMem bool
	stats    LowerStats
}

// LowerStats describes what the lowering did — test and telemetry
// introspection for fusion and folding.
type LowerStats struct {
	Funcs       int // functions lowered
	Instrs      int // non-phi instructions lowered
	Fused       int // instructions absorbed into fused superblocks
	Superblocks int // fused runs emitted
	Folded      int // µops replaced by constant moves
}

// Stats returns the lowering statistics.
func (p *Prog) Stats() LowerStats { return p.stats }

// NewRunner implements core.TierProgram.
func (p *Prog) NewRunner() core.TierRunner { return &Runner{p: p, opts: p.opts} }

// tooLarge guards the 16-bit instruction fields; functions this big do
// not occur in the fuzz campaigns, and the backend declines them
// rather than mis-encode.
const tableMax = 1 << 16

// lower lowers fn and its transitive callees. ok=false when some
// encoding limit is hit (the caller stays on the closure engine).
func lower(fn *ir.Func, opts core.Options) (p *Prog, ok bool) {
	lk := &linker{opts: opts, fns: map[*ir.Func]*fnProg{}}
	defer func() {
		if r := recover(); r == errTooLarge || r == errUnsupported {
			p, ok = nil, false
		} else if r != nil {
			panic(r)
		}
	}()
	root := lk.lowerFn(fn)
	return &Prog{
		root:     root,
		opts:     opts,
		mod:      fn.Parent(),
		needsMem: lk.needsMem,
		stats:    lk.stats,
	}, true
}

var (
	errTooLarge = fmt.Errorf("bytecode: function exceeds encoding limits")
	// errUnsupported declines constructs whose closure-engine behaviour
	// the bytecode tier cannot reproduce faithfully (e.g. an alloca
	// count that is not a constant, which the other engines only fault
	// on if it actually executes).
	errUnsupported = fmt.Errorf("bytecode: unsupported construct")
)

type linker struct {
	opts     core.Options
	fns      map[*ir.Func]*fnProg
	needsMem bool
	stats    LowerStats
}

// lowerFn lowers one function, registering the (still filling) fnProg
// first so recursive calls resolve.
func (lk *linker) lowerFn(fn *ir.Func) *fnProg {
	if p := lk.fns[fn]; p != nil {
		return p
	}
	p := &fnProg{fn: fn}
	lk.fns[fn] = p
	lw := &fnLower{lk: lk, p: p, opts: lk.opts, slotOf: map[ir.Value]slotInfo{}}
	lw.lower()
	lk.stats.Funcs++
	return p
}

type slotInfo struct {
	slot int32
	vec  bool
}

type fnLower struct {
	lk     *linker
	p      *fnProg
	opts   core.Options
	slotOf map[ir.Value]slotInfo

	// folded maps a scalar slot defined earlier in the CURRENT block
	// by a pre-folded µop to its constant ref. Substitution is only
	// ever same-block-after-def: across blocks a use might not be
	// dominated by the def in malformed IR, where the slot must still
	// report "read of unset register".
	folded map[int32]int32

	blockPC []int32
	// edgeBlock records, per emitted edge, the ir block index its
	// target must be patched to once every block's pc is known.
	edgeBlock []int32

	// scratch is the fold evaluation frame (fold.go).
	scratch *frame
}

func (lw *fnLower) lower() {
	fn := lw.p.fn

	// Slot layout mirrors the closure engine — params first, then
	// every non-void instruction in block order — but split into two
	// statically typed planes: scalars (ints, i1, pointers) in a
	// Scalar plane, vectors in a Value plane.
	assign := func(v ir.Value, ty ir.Type, ident string) {
		if ty.IsVoid() {
			return
		}
		if ty.IsVec() {
			lw.slotOf[v] = slotInfo{slot: int32(lw.p.nV), vec: true}
			lw.p.vslotIdent = append(lw.p.vslotIdent, ident)
			lw.p.nV++
		} else {
			lw.slotOf[v] = slotInfo{slot: int32(lw.p.nS), vec: false}
			lw.p.slotIdent = append(lw.p.slotIdent, ident)
			lw.p.nS++
		}
	}
	for _, prm := range fn.Params {
		assign(prm, prm.Ty, prm.Ident())
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs() {
			assign(in, in.Ty, in.Ident())
		}
	}
	lw.p.params = make([]pslot, len(fn.Params))
	for i, prm := range fn.Params {
		si := lw.slotOf[prm]
		lw.p.params[i] = pslot{slot: si.slot, vec: si.vec}
	}

	lw.blockPC = make([]int32, len(fn.Blocks))
	for i, b := range fn.Blocks {
		lw.blockPC[i] = int32(len(lw.p.code))
		lw.lowerBlock(i, b)
	}
	// Edge targets were recorded as block indices; patch to pcs.
	for i := range lw.p.edges {
		lw.p.edges[i].target = lw.blockPC[lw.edgeBlock[i]]
	}
	if len(lw.p.code) >= tableMax || len(lw.p.sconsts) >= 1<<15 ||
		len(lw.p.gops) >= tableMax || len(lw.p.edges) >= tableMax ||
		len(lw.p.opds) >= tableMax || len(lw.p.fused) >= tableMax {
		panic(errTooLarge)
	}
}

func (lw *fnLower) blockIndex(b *ir.Block) int {
	for i, bb := range lw.p.fn.Blocks {
		if bb == b {
			return i
		}
	}
	return 0
}

func (lw *fnLower) emit(op int, a, b, c int) {
	lw.p.code = append(lw.p.code, pack(op, a, b, c))
}

func (lw *fnLower) addOut(o core.Outcome) int {
	lw.p.outs = append(lw.p.outs, o)
	return len(lw.p.outs) - 1
}

func (lw *fnLower) addOpd(g gopd) int {
	lw.p.opds = append(lw.p.opds, g)
	return len(lw.p.opds) - 1
}

// addConst interns a scalar constant and returns its µop ref (^idx).
func (lw *fnLower) addConst(s core.Scalar) int32 {
	for i, c := range lw.p.sconsts {
		if c == s {
			return ^int32(i)
		}
	}
	lw.p.sconsts = append(lw.p.sconsts, s)
	return ^int32(len(lw.p.sconsts) - 1)
}

// edge compiles the CFG edge from→to and returns its index. Phi moves
// preserve the closure engine's order and error timing exactly.
func (lw *fnLower) edge(from, to *ir.Block) int {
	e := bedge{}
	for _, ph := range to.Phis() {
		mv := bmove{dst: -1, vec: ph.Ty.IsVec()}
		if si, ok := lw.slotOf[ph]; ok {
			mv.dst = si.slot
		}
		if incoming, ok := ph.PhiIncoming(from); ok {
			mv.src = lw.gopd(incoming)
		} else {
			mv.src = errGopd(fmt.Sprintf("phi %%%s has no incoming for %%%s", ph.Name(), from.Name()))
		}
		e.moves = append(e.moves, mv)
	}
	lw.p.edges = append(lw.p.edges, e)
	lw.edgeBlock = append(lw.edgeBlock, int32(lw.blockIndex(to)))
	return len(lw.p.edges) - 1
}

func (lw *fnLower) lowerBlock(idx int, b *ir.Block) {
	if idx == 0 && len(b.Phis()) > 0 {
		// The interpreter reports this on entry before any fuel
		// charge; opFail is the uncharged abort.
		lw.emit(opFail, lw.addOut(core.Outcome{Kind: core.OutError, Msg: "phi in entry block"}), 0, 0)
	}
	lw.folded = map[int32]int32{}

	var pending []uop
	flush := func() {
		if len(pending) == 0 {
			return
		}
		body := fusedBody{uops: pending, fuel: len(pending)}
		lw.p.fused = append(lw.p.fused, body)
		lw.emit(opFuse, len(lw.p.fused)-1, 0, 0)
		lw.lk.stats.Fused += len(pending)
		lw.lk.stats.Superblocks++
		pending = nil
	}

	for _, in := range b.Instrs() {
		if in.Op == ir.OpPhi {
			continue // assigned by the incoming edge's moves
		}
		lw.lk.stats.Instrs++
		if u, ok := lw.fuseInstr(in); ok {
			pending = append(pending, lw.tryFold(u))
			continue
		}
		flush()
		lw.lowerGeneric(b, in)
	}
	flush()
	// Reached only when the steps run out without a terminator
	// transferring control; uncharged, like the interpreter.
	lw.emit(opFail, lw.addOut(core.Outcome{Kind: core.OutError, Msg: "block fell through without terminator"}), 0, 0)
}

// sref lowers an operand to a fused-µop scalar ref, with same-block
// constant substitution from earlier folds. ok=false forces the
// instruction onto the generic path.
func (lw *fnLower) sref(v ir.Value) (int32, bool) {
	switch x := v.(type) {
	case *ir.Const:
		return lw.addConst(core.C(x.Bits)), true
	case *ir.Poison:
		return lw.addConst(core.PoisonScalar), true
	case *ir.Undef:
		if lw.opts.Mode == core.Freeze {
			return 0, false // compile-time error operand: generic path
		}
		return lw.addConst(core.UndefScalar), true
	default:
		si, ok := lw.slotOf[v]
		if !ok || si.vec {
			return 0, false
		}
		if c, ok := lw.folded[si.slot]; ok {
			return c, true
		}
		return si.slot, true
	}
}

// fuseInstr builds the fused µop for a fusible instruction: scalar
// result, scalar operands, no globals, no error operands. Everything
// else goes generic.
func (lw *fnLower) fuseInstr(in *ir.Instr) (uop, bool) {
	if in.Ty.IsVoid() || in.Ty.IsVec() {
		return uop{}, false
	}
	si, ok := lw.slotOf[in]
	if !ok || si.vec {
		return uop{}, false
	}
	u := uop{dst: si.slot, op: in.Op, attrs: in.Attrs, pred: in.Pred}
	switch {
	case in.Op.IsBinop():
		u.kind = uBin
		u.w = in.Ty.ElemType().Bits
	case in.Op == ir.OpICmp:
		if in.Arg(0).Type().IsVec() {
			return uop{}, false
		}
		u.kind = uICmp
		u.w = in.Arg(0).Type().ElemType().Bits
	case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
		if in.Arg(0).Type().IsVec() {
			return uop{}, false
		}
		u.kind = uCast
		u.w = in.Arg(0).Type().ElemType().Bits
		u.toW = in.Ty.ElemType().Bits
	case in.Op == ir.OpFreeze:
		u.kind = uFreeze
		u.w = in.Ty.ElemType().Bits
	case in.Op == ir.OpSelect:
		if in.Arg(0).Type().IsVec() {
			return uop{}, false
		}
		u.kind = uSel
	default:
		return uop{}, false
	}
	refs := [3]int32{}
	for i := 0; i < in.NumArgs(); i++ {
		r, ok := lw.sref(in.Arg(i))
		if !ok {
			return uop{}, false
		}
		refs[i] = r
	}
	u.a = refs[0]
	if in.NumArgs() > 1 {
		u.b = refs[1]
	}
	if in.NumArgs() > 2 {
		u.c = refs[2]
	}
	return u, true
}

// gopd lowers an operand for the generic path, mirroring the closure
// engine's operandRaw case by case.
func (lw *fnLower) gopd(v ir.Value) gopd {
	switch x := v.(type) {
	case *ir.Const:
		return gopd{kind: gcConst, val: core.VC(x.Ty, x.Bits)}
	case *ir.Poison:
		return gopd{kind: gcConst, val: core.VPoison(x.Ty)}
	case *ir.Undef:
		if lw.opts.Mode == core.Freeze {
			return errGopd("undef under freeze semantics")
		}
		return gopd{kind: gcConst, val: core.VUndef(x.Ty)}
	case *ir.VecConst:
		lanes := make([]core.Scalar, len(x.Elems))
		for i, e := range x.Elems {
			switch el := e.(type) {
			case *ir.Const:
				lanes[i] = core.C(el.Bits)
			case *ir.Poison:
				lanes[i] = core.PoisonScalar
			case *ir.Undef:
				if lw.opts.Mode == core.Freeze {
					return errGopd("undef lane under freeze semantics")
				}
				lanes[i] = core.UndefScalar
			}
		}
		return gopd{kind: gcConst, val: core.Value{Ty: x.Ty, Lanes: lanes}}
	case *ir.Global:
		lw.lk.needsMem = true
		return gopd{kind: gcGlobal, global: x}
	default:
		si, ok := lw.slotOf[v]
		if !ok {
			return errGopd("read of unset register " + v.Ident())
		}
		if si.vec {
			return gopd{kind: gcSlotV, slot: si.slot, ty: v.Type(), ident: v.Ident()}
		}
		return gopd{kind: gcSlotS, slot: si.slot, ty: v.Type(), ident: v.Ident()}
	}
}

// lowerGeneric lowers a non-fusible instruction: a terminator, or a
// generic op dispatched through the gop table.
func (lw *fnLower) lowerGeneric(b *ir.Block, in *ir.Instr) {
	switch {
	case in.Op == ir.OpBr:
		if !in.IsConditionalBr() {
			lw.emit(opBr, lw.edge(b, in.BlockArg(0)), 0, 0)
			return
		}
		cond := lw.addOpd(lw.gopd(in.Arg(0)))
		e0 := lw.edge(b, in.BlockArg(0))
		e1 := lw.edge(b, in.BlockArg(1))
		lw.emit(opCondBr, cond, e0, e1)

	case in.Op == ir.OpRet:
		if in.NumArgs() == 0 {
			lw.emit(opRetVoid, 0, 0, 0)
			return
		}
		lw.emit(opRet, lw.addOpd(lw.gopd(in.Arg(0))), 0, 0)

	case in.Op == ir.OpUnreachable:
		lw.emit(opUnreach, 0, 0, 0)

	default:
		g, ok := lw.buildGop(in)
		if !ok {
			lw.emit(opErrStep, lw.addOut(core.Outcome{Kind: core.OutError, Msg: "unhandled opcode " + in.Op.String()}), 0, 0)
			return
		}
		lw.p.gops = append(lw.p.gops, g)
		lw.emit(opGen, len(lw.p.gops)-1, 0, 0)
	}
}

func (lw *fnLower) buildGop(in *ir.Instr) (gop, bool) {
	g := gop{op: in.Op, attrs: in.Attrs, pred: in.Pred, ty: in.Ty, dst: -1}
	if si, ok := lw.slotOf[in]; ok {
		g.dst = si.slot
		g.dstVec = si.vec
	}
	nargs := func() {
		g.args = make([]gopd, in.NumArgs())
		for i := range g.args {
			g.args[i] = lw.gopd(in.Arg(i))
		}
	}
	switch {
	case in.Op.IsBinop():
		g.kind = gBin
		g.w = in.Ty.ElemType().Bits
		nargs()
	case in.Op == ir.OpICmp:
		g.kind = gICmp
		g.w = in.Arg(0).Type().ElemType().Bits
		nargs()
	case in.Op == ir.OpSelect:
		g.kind = gSelect
		nargs()
	case in.Op == ir.OpFreeze:
		g.kind = gFreeze
		g.w = in.Ty.ElemType().Bits
		nargs()
	case in.Op == ir.OpAlloca:
		lw.lk.needsMem = true
		g.kind = gAlloca
		g.elemSize = core.SizeOfType(in.AllocTy)
		cst, isConst := in.Arg(0).(*ir.Const)
		if !isConst {
			panic(errUnsupported)
		}
		g.cnt = cst.Bits
	case in.Op == ir.OpLoad:
		lw.lk.needsMem = true
		g.kind = gLoad
		g.szBits = in.Ty.Bitwidth()
		nargs()
	case in.Op == ir.OpStore:
		lw.lk.needsMem = true
		g.kind = gStore
		nargs()
	case in.Op == ir.OpGEP:
		lw.lk.needsMem = true
		g.kind = gGEP
		g.idxW = in.Arg(1).Type().Bits
		g.elemSize = core.SizeOfType(in.AllocTy)
		nargs()
	case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
		g.kind = gCast
		g.w = in.Arg(0).Type().ElemType().Bits
		g.toW = in.Ty.ElemType().Bits
		nargs()
	case in.Op == ir.OpBitcast:
		g.kind = gBitcast
		nargs()
	case in.Op == ir.OpExtractElement:
		g.kind = gExtract
		nargs()
	case in.Op == ir.OpInsertElement:
		g.kind = gInsert
		nargs()
	case in.Op == ir.OpCall:
		g.kind = gCall
		nargs()
		g.callee = lw.lk.lowerFn(in.Callee)
	default:
		return gop{}, false
	}
	return g, true
}
