package core

import (
	"fmt"

	"tameir/internal/ir"
)

// OutcomeKind classifies how an execution ended.
type OutcomeKind uint8

const (
	// OutRet: the function returned normally (Val holds the result;
	// it may contain poison or undef lanes).
	OutRet OutcomeKind = iota
	// OutUB: the execution triggered immediate undefined behavior.
	OutUB
	// OutTimeout: the fuel ran out; the execution is inconclusive.
	OutTimeout
	// OutError: an internal error (malformed IR reached the
	// interpreter); always a bug in the caller.
	OutError
)

// Outcome is the observable result of one execution.
type Outcome struct {
	Kind OutcomeKind
	Val  Value  // valid when Kind == OutRet and the function is non-void
	Msg  string // diagnostic for OutUB / OutError
}

// String renders the outcome for diagnostics and behaviour-set keys.
func (o Outcome) String() string {
	switch o.Kind {
	case OutRet:
		if o.Val.Ty.IsVoid() {
			return "ret void"
		}
		return "ret " + o.Val.String()
	case OutUB:
		return "UB"
	case OutTimeout:
		return "timeout"
	}
	return "error: " + o.Msg
}

// Tracer receives one event per executed instruction. v is the
// instruction's result (zero Value for void instructions). depth is
// the call depth.
type Tracer func(depth int, in *ir.Instr, v Value)

// Env carries the machine state across an execution: module (for calls
// and globals), memory, oracle and options.
type Env struct {
	Mod    *ir.Module
	Mem    *Memory
	Oracle Oracle
	Opts   Options

	// Trace, when non-nil, is invoked after each instruction.
	Trace Tracer

	// Tier selects the execution tier for Env.Run. Tiered execution is
	// always a fresh run (the runner resets fuel, memory and globals
	// like Executor.Run does), so the policy only applies when the env
	// is untraced; a traced env stays on the closure engine, which is
	// the only tier with trace support.
	Tier TierPolicy

	fuel       int
	depth      int
	globalAddr map[*ir.Global]uint32
	// arena is the compiled engine's per-execution lane allocator (see
	// Env.newLanes); the tree-walking interpreter never touches it.
	arena []Scalar
	// callBuf is the compiled call step's argument scratch. A call's
	// argument slice is dead as soon as the callee frame copies the
	// params into its registers, so one buffer per env serves every
	// call site at every depth.
	callBuf []Value
	// retOut is the compiled ret step's outcome scratch: execFrame
	// copies the pointed-to Outcome out by value before any other step
	// can run, so one slot per env serves every ret at every depth.
	retOut Outcome
	// Steps counts executed instructions (exposed for the evaluation
	// harness's "run time" proxy when not using the VX64 simulator).
	Steps int

	// Metrics accumulates engine counters across the env's lifetime.
	// It is plain (non-atomic) state: an Env is single-goroutine, so
	// the hot paths pay ordinary increments and a publisher folds the
	// totals into a telemetry registry once per batch.
	Metrics EngineMetrics

	// tierRunner caches the tier-2 runner for the last program Env.Run
	// promoted, keyed by tierProgOf (an Env usually runs one function
	// over and over).
	tierRunner TierRunner
	tierProgOf *Program
}

// EngineMetrics counts what the execution engine did: top-level runs,
// instructions stepped, and how inner-call frames were obtained (pool
// hit vs fresh allocation — the steady-state engine should pool nearly
// everything after warm-up).
type EngineMetrics struct {
	Execs           uint64
	Steps           uint64
	FramesPooled    uint64
	FramesAllocated uint64

	// Per-tier exec breakdown (Execs is the sum of whichever tiers
	// ran) plus the number of program promotions to the tier-2
	// backend. Promotions counts lowered programs, not executors: the
	// lowering is shared, so only the executor that actually performs
	// it counts one.
	InterpExecs   uint64
	ClosureExecs  uint64
	BytecodeExecs uint64
	Promotions    uint64
}

// Add folds o into m.
func (m *EngineMetrics) Add(o EngineMetrics) {
	m.Execs += o.Execs
	m.Steps += o.Steps
	m.FramesPooled += o.FramesPooled
	m.FramesAllocated += o.FramesAllocated
	m.InterpExecs += o.InterpExecs
	m.ClosureExecs += o.ClosureExecs
	m.BytecodeExecs += o.BytecodeExecs
	m.Promotions += o.Promotions
}

// NewEnv prepares an execution environment: it allocates and
// initializes the module's globals. mod may be nil for single-function
// execution without globals or calls.
func NewEnv(mod *ir.Module, o Oracle, opts Options) (*Env, error) {
	opts = opts.normalized()
	env := &Env{
		Mod:        mod,
		Mem:        NewMemory(),
		Oracle:     o,
		Opts:       opts,
		fuel:       opts.Fuel,
		globalAddr: map[*ir.Global]uint32{},
	}
	if err := env.initGlobals(); err != nil {
		return nil, err
	}
	return env, nil
}

// initGlobals allocates and initializes the module's globals in module
// order. It is idempotent given a reset memory: the bump allocator
// assigns the same addresses every time.
func (env *Env) initGlobals() error {
	if env.Mod == nil {
		return nil
	}
	if env.globalAddr == nil {
		env.globalAddr = make(map[*ir.Global]uint32, len(env.Mod.Globals))
	}
	for _, g := range env.Mod.Globals {
		addr, err := env.Mem.Allocate(g.Size, env.Opts.Mode)
		if err != nil {
			return err
		}
		if len(g.Init) > 0 {
			if err := env.Mem.StoreBytes(addr, g.Init); err != nil {
				return err
			}
		}
		env.globalAddr[g] = addr
	}
	return nil
}

// Run executes fn on the given arguments and returns the outcome. It
// runs the compiled engine, compiling fn on first use and caching the
// Program per (function, options); the env's fuel, memory and globals
// are used as-is, exactly like the historical interpreter loop (see
// RunInterp, which this is checked against).
func (env *Env) Run(fn *ir.Func, args []Value) Outcome {
	// The trace knob is derived from the env, not trusted from Opts:
	// a traced env gets the trace-enabled program variant, an untraced
	// env the variant with no per-step trace branch at all. The two are
	// distinct ProgramCache entries.
	opts := env.Opts
	opts.EmitTrace = env.Trace != nil
	p := sharedPrograms.getVerified(fn, opts)
	if env.Tier.Mode != TierClosure && env.Trace == nil {
		if r := env.tierRunnerFor(p); r != nil {
			return r.Run(args, env.Oracle, &env.Metrics)
		}
	}
	if out := p.checkArgs(args); out != nil {
		return *out
	}
	steps0 := env.Steps
	out := p.invoke(env, args)
	env.Metrics.Execs++
	env.Metrics.ClosureExecs++
	env.Metrics.Steps += uint64(env.Steps - steps0)
	return out
}

// tierRunnerFor applies the env's tiering policy to p, returning the
// tier-2 runner once promoted (nil while on the closure engine or when
// the backend declines the function).
func (env *Env) tierRunnerFor(p *Program) TierRunner {
	if env.tierProgOf == p {
		return env.tierRunner
	}
	var tp TierProgram
	switch env.Tier.Mode {
	case TierBytecode:
		tp = p.tierProgram(&env.Metrics)
	case TierAuto:
		if p.tierExecs.Add(1) < env.Tier.threshold() && !p.preHot {
			return nil
		}
		tp = p.tierProgram(&env.Metrics)
	}
	if tp == nil {
		return nil
	}
	env.tierProgOf = p
	env.tierRunner = tp.NewRunner()
	return env.tierRunner
}

// RunInterp executes fn on the tree-walking interpreter. It is the
// reference semantics the compiled engine is differentially tested
// against (TestCompiledMatchesInterpreter) and the baseline engine of
// the tame-bench exec experiment.
func (env *Env) RunInterp(fn *ir.Func, args []Value) Outcome {
	if len(args) != len(fn.Params) {
		return Outcome{Kind: OutError, Msg: fmt.Sprintf("arity: got %d args, want %d", len(args), len(fn.Params))}
	}
	for i, a := range args {
		if !a.Ty.Equal(fn.Params[i].Ty) {
			return Outcome{Kind: OutError, Msg: fmt.Sprintf("arg %d type %s, want %s", i, a.Ty, fn.Params[i].Ty)}
		}
	}
	steps0 := env.Steps
	out := env.call(fn, args)
	env.Metrics.Execs++
	env.Metrics.InterpExecs++
	env.Metrics.Steps += uint64(env.Steps - steps0)
	return out
}

// Exec is a convenience wrapper: run fn once through the compiled
// engine (compile-on-first-use, cached per (function, options)) with a
// fresh execution state.
func Exec(fn *ir.Func, args []Value, o Oracle, opts Options) Outcome {
	p := sharedPrograms.getVerified(fn, opts)
	return p.Exec(args, o)
}

// Interpret is Exec on the historical tree-walking interpreter: build
// an Env over fn's module and run it once.
func Interpret(fn *ir.Func, args []Value, o Oracle, opts Options) Outcome {
	env, err := NewEnv(fn.Parent(), o, opts)
	if err != nil {
		return Outcome{Kind: OutError, Msg: err.Error()}
	}
	return env.RunInterp(fn, args)
}

// frame is one activation record.
type frame struct {
	fn   *ir.Func
	regs map[ir.Value]Value
}

func (env *Env) call(fn *ir.Func, args []Value) Outcome {
	if env.depth >= env.Opts.MaxCallDepth {
		return Outcome{Kind: OutTimeout, Msg: "call depth exceeded"}
	}
	env.depth++
	defer func() { env.depth-- }()

	fr := &frame{fn: fn, regs: make(map[ir.Value]Value, 16)}
	for i, p := range fn.Params {
		fr.regs[p] = args[i]
	}

	block := fn.Entry()
	var prev *ir.Block
	for {
		var nextBlock *ir.Block
		// Phis read their incomings simultaneously, before any other
		// instruction in the block executes.
		phiVals := make([]Value, 0, 4)
		phis := block.Phis()
		for _, ph := range phis {
			if prev == nil {
				return Outcome{Kind: OutError, Msg: "phi in entry block"}
			}
			incoming, ok := ph.PhiIncoming(prev)
			if !ok {
				return Outcome{Kind: OutError, Msg: fmt.Sprintf("phi %%%s has no incoming for %%%s", ph.Name(), prev.Name())}
			}
			v, out := env.operand(fr, incoming)
			if out != nil {
				return *out
			}
			phiVals = append(phiVals, v)
		}
		for i, ph := range phis {
			fr.regs[ph] = phiVals[i]
		}

		for _, in := range block.Instrs() {
			if in.Op == ir.OpPhi {
				continue
			}
			if env.fuel <= 0 {
				return Outcome{Kind: OutTimeout}
			}
			env.fuel--
			env.Steps++
			switch in.Op {
			case ir.OpBr:
				tgt, out := env.evalBr(fr, in)
				if out != nil {
					return *out
				}
				nextBlock = tgt
			case ir.OpRet:
				if in.NumArgs() == 0 {
					return Outcome{Kind: OutRet, Val: Value{Ty: ir.Void}}
				}
				v, out := env.operand(fr, in.Arg(0))
				if out != nil {
					return *out
				}
				return Outcome{Kind: OutRet, Val: v}
			case ir.OpUnreachable:
				return Outcome{Kind: OutUB, Msg: "reached unreachable"}
			case ir.OpCall:
				callArgs := make([]Value, in.NumArgs())
				for i := range callArgs {
					v, out := env.operand(fr, in.Arg(i))
					if out != nil {
						return *out
					}
					callArgs[i] = v
				}
				res := env.call(in.Callee, callArgs)
				if res.Kind != OutRet {
					return res
				}
				if !in.Ty.IsVoid() {
					fr.regs[in] = res.Val
				}
				if env.Trace != nil {
					env.Trace(env.depth, in, res.Val)
				}
			default:
				v, out := env.evalInstr(fr, in)
				if out != nil {
					return *out
				}
				if !in.Ty.IsVoid() {
					fr.regs[in] = v
				}
				if env.Trace != nil {
					env.Trace(env.depth, in, v)
				}
			}
			if nextBlock != nil {
				break
			}
		}
		if nextBlock == nil {
			return Outcome{Kind: OutError, Msg: "block fell through without terminator"}
		}
		prev, block = block, nextBlock
	}
}

// operand evaluates ⟦op⟧R: registers read the register file, constants
// evaluate to themselves, poison to poison (Figure 5). Undef lanes are
// NOT resolved here — strict consumers resolve them per use.
func (env *Env) operand(fr *frame, v ir.Value) (Value, *Outcome) {
	switch c := v.(type) {
	case *ir.Const:
		return VC(c.Ty, c.Bits), nil
	case *ir.Poison:
		return VPoison(c.Ty), nil
	case *ir.Undef:
		if env.Opts.Mode == Freeze {
			return Value{}, &Outcome{Kind: OutError, Msg: "undef under freeze semantics"}
		}
		return VUndef(c.Ty), nil
	case *ir.VecConst:
		lanes := make([]Scalar, len(c.Elems))
		for i, e := range c.Elems {
			switch el := e.(type) {
			case *ir.Const:
				lanes[i] = C(el.Bits)
			case *ir.Poison:
				lanes[i] = PoisonScalar
			case *ir.Undef:
				if env.Opts.Mode == Freeze {
					return Value{}, &Outcome{Kind: OutError, Msg: "undef lane under freeze semantics"}
				}
				lanes[i] = UndefScalar
			}
		}
		return Value{Ty: c.Ty, Lanes: lanes}, nil
	case *ir.Global:
		addr, ok := env.globalAddr[c]
		if !ok {
			return Value{}, &Outcome{Kind: OutError, Msg: "unmapped global @" + c.Name()}
		}
		return VC(ir.Ptr, uint64(addr)), nil
	default:
		val, ok := fr.regs[v]
		if !ok {
			return Value{}, &Outcome{Kind: OutError, Msg: fmt.Sprintf("read of unset register %s", v.Ident())}
		}
		return val, nil
	}
}

// strictOperand evaluates an operand and resolves undef lanes through
// the oracle — the "each use yields a fresh value" reading.
func (env *Env) strictOperand(fr *frame, v ir.Value) (Value, *Outcome) {
	val, out := env.operand(fr, v)
	if out != nil {
		return val, out
	}
	return ResolveUndef(val, env.Oracle), nil
}

func ubOut(msg string) *Outcome { return &Outcome{Kind: OutUB, Msg: msg} }

func (env *Env) evalBr(fr *frame, in *ir.Instr) (*ir.Block, *Outcome) {
	if !in.IsConditionalBr() {
		return in.BlockArg(0), nil
	}
	c, out := env.operand(fr, in.Arg(0))
	if out != nil {
		return nil, out
	}
	s := c.Scalar()
	switch s.Kind {
	case PoisonVal:
		if env.Opts.BranchPoison == BranchPoisonIsUB {
			return nil, ubOut("branch on poison")
		}
		s = C(env.Oracle.Choose(2))
	case UndefVal:
		s = C(env.Oracle.Choose(2))
	}
	if s.Bits != 0 {
		return in.BlockArg(0), nil
	}
	return in.BlockArg(1), nil
}

// evalInstr executes a non-control, non-call instruction.
func (env *Env) evalInstr(fr *frame, in *ir.Instr) (Value, *Outcome) {
	switch {
	case in.Op.IsBinop():
		x, out := env.strictOperand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		y, out := env.strictOperand(fr, in.Arg(1))
		if out != nil {
			return Value{}, out
		}
		w := in.Ty.ElemType().Bits
		lanes := make([]Scalar, len(x.Lanes))
		for i := range lanes {
			s, ub := EvalBinopLane(in.Op, in.Attrs, w, x.Lanes[i], y.Lanes[i], env.Opts.Mode)
			if ub != "" {
				return Value{}, ubOut(ub)
			}
			lanes[i] = s
		}
		return Value{Ty: in.Ty, Lanes: lanes}, nil

	case in.Op == ir.OpICmp:
		x, out := env.strictOperand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		y, out := env.strictOperand(fr, in.Arg(1))
		if out != nil {
			return Value{}, out
		}
		w := in.Arg(0).Type().ElemType().Bits
		lanes := make([]Scalar, len(x.Lanes))
		for i := range lanes {
			lanes[i] = EvalICmpLane(in.Pred, w, x.Lanes[i], y.Lanes[i])
		}
		return Value{Ty: in.Ty, Lanes: lanes}, nil

	case in.Op == ir.OpSelect:
		return env.evalSelect(fr, in)

	case in.Op == ir.OpFreeze:
		x, out := env.operand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		w := in.Ty.ElemType().Bits
		lanes := make([]Scalar, len(x.Lanes))
		for i, l := range x.Lanes {
			lanes[i] = FreezeLane(l, w, env.Oracle)
		}
		return Value{Ty: in.Ty, Lanes: lanes}, nil

	case in.Op == ir.OpAlloca:
		cnt := in.Arg(0).(*ir.Const).Bits
		size := uint64(SizeOfType(in.AllocTy)) * cnt
		if size > 1<<24 {
			return Value{}, &Outcome{Kind: OutError, Msg: "alloca too large"}
		}
		addr, err := env.Mem.Allocate(uint32(size), env.Opts.Mode)
		if err != nil {
			return Value{}, &Outcome{Kind: OutError, Msg: err.Error()}
		}
		return VC(ir.Ptr, uint64(addr)), nil

	case in.Op == ir.OpLoad:
		p, out := env.strictOperand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		ps := p.Scalar()
		if ps.Kind == PoisonVal {
			return Value{}, ubOut("load from poison address")
		}
		bits, err := env.Mem.Load(uint32(ps.Bits), in.Ty.Bitwidth())
		if err != nil {
			return Value{}, ubOut(err.Error())
		}
		return Raise(in.Ty, bits, env.Oracle), nil

	case in.Op == ir.OpStore:
		v, out := env.operand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		p, out := env.strictOperand(fr, in.Arg(1))
		if out != nil {
			return Value{}, out
		}
		ps := p.Scalar()
		if ps.Kind == PoisonVal {
			return Value{}, ubOut("store to poison address")
		}
		if err := env.Mem.Store(uint32(ps.Bits), Lower(v)); err != nil {
			return Value{}, ubOut(err.Error())
		}
		return Value{Ty: ir.Void}, nil

	case in.Op == ir.OpGEP:
		base, out := env.strictOperand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		idx, out := env.strictOperand(fr, in.Arg(1))
		if out != nil {
			return Value{}, out
		}
		idxW := in.Arg(1).Type().Bits
		s := EvalGEP(in.Attrs, base.Scalar(), idx.Scalar(), idxW, SizeOfType(in.AllocTy))
		return Value{Ty: ir.Ptr, Lanes: []Scalar{s}}, nil

	case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
		x, out := env.strictOperand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		fromW := in.Arg(0).Type().ElemType().Bits
		toW := in.Ty.ElemType().Bits
		lanes := make([]Scalar, len(x.Lanes))
		for i, l := range x.Lanes {
			lanes[i] = EvalCastLane(in.Op, fromW, toW, l)
		}
		return Value{Ty: in.Ty, Lanes: lanes}, nil

	case in.Op == ir.OpBitcast:
		// Figure 5: r = ty2↑(ty1↓(v)). Undef propagates bitwise, so a
		// fully-undef source stays undef rather than resolving.
		x, out := env.operand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		return Raise(in.Ty, Lower(x), env.Oracle), nil

	case in.Op == ir.OpExtractElement:
		vec, out := env.operand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		idx, out := env.strictOperand(fr, in.Arg(1))
		if out != nil {
			return Value{}, out
		}
		is := idx.Scalar()
		if is.Kind == PoisonVal || is.Bits >= uint64(len(vec.Lanes)) {
			// Out-of-range extract is poison (LLVM semantics).
			return VPoison(in.Ty), nil
		}
		return Value{Ty: in.Ty, Lanes: []Scalar{vec.Lanes[is.Bits]}}, nil

	case in.Op == ir.OpInsertElement:
		vec, out := env.operand(fr, in.Arg(0))
		if out != nil {
			return Value{}, out
		}
		sc, out := env.operand(fr, in.Arg(1))
		if out != nil {
			return Value{}, out
		}
		idx, out := env.strictOperand(fr, in.Arg(2))
		if out != nil {
			return Value{}, out
		}
		is := idx.Scalar()
		if is.Kind == PoisonVal || is.Bits >= uint64(len(vec.Lanes)) {
			return VPoison(in.Ty), nil
		}
		lanes := append([]Scalar(nil), vec.Lanes...)
		lanes[is.Bits] = sc.Scalar()
		return Value{Ty: in.Ty, Lanes: lanes}, nil
	}
	return Value{}, &Outcome{Kind: OutError, Msg: "unhandled opcode " + in.Op.String()}
}

func (env *Env) evalSelect(fr *frame, in *ir.Instr) (Value, *Outcome) {
	cond, out := env.operand(fr, in.Arg(0))
	if out != nil {
		return Value{}, out
	}
	x, out := env.operand(fr, in.Arg(1))
	if out != nil {
		return Value{}, out
	}
	y, out := env.operand(fr, in.Arg(2))
	if out != nil {
		return Value{}, out
	}

	pickLane := func(c Scalar, xi, yi Scalar) (Scalar, *Outcome) {
		switch c.Kind {
		case PoisonVal:
			switch env.Opts.SelectPoisonCond {
			case SelectPoisonCondUB:
				return Scalar{}, ubOut("select on poison condition")
			case SelectPoisonCondNondet:
				c = C(env.Oracle.Choose(2))
			default:
				return PoisonScalar, nil
			}
		case UndefVal:
			c = C(env.Oracle.Choose(2))
		}
		if env.Opts.SelectArmPoisonEither && (xi.Kind == PoisonVal || yi.Kind == PoisonVal) {
			return PoisonScalar, nil
		}
		if c.Bits != 0 {
			return xi, nil
		}
		return yi, nil
	}

	if !cond.Ty.IsVec() {
		c := cond.Scalar()
		// Scalar condition selects the whole value.
		switch c.Kind {
		case PoisonVal:
			switch env.Opts.SelectPoisonCond {
			case SelectPoisonCondUB:
				return Value{}, ubOut("select on poison condition")
			case SelectPoisonCondNondet:
				c = C(env.Oracle.Choose(2))
			default:
				return VPoison(in.Ty), nil
			}
		case UndefVal:
			c = C(env.Oracle.Choose(2))
		}
		if env.Opts.SelectArmPoisonEither && (x.AnyPoison() || y.AnyPoison()) {
			return VPoison(in.Ty), nil
		}
		if c.Bits != 0 {
			return x, nil
		}
		return y, nil
	}

	lanes := make([]Scalar, len(cond.Lanes))
	for i, c := range cond.Lanes {
		s, out := pickLane(c, x.Lanes[i], y.Lanes[i])
		if out != nil {
			return Value{}, out
		}
		lanes[i] = s
	}
	return Value{Ty: in.Ty, Lanes: lanes}, nil
}
