package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tameir/internal/ir"
)

// Program is a function compiled for repeated execution: operands are
// resolved to dense frame slots, blocks and instructions to indices,
// every instruction to a pre-dispatched evaluator closure, and phi
// moves are precomputed per CFG edge. Compiling hoists all the work
// that core's tree-walking interpreter redoes on every execution —
// operand type switches, register-map lookups, option checks — so a
// Program can be run many times (the refinement checker's input ×
// oracle sweep) at a fraction of the interpreter's cost, while making
// oracle choices in exactly the same order and producing byte-identical
// Outcomes.
//
// A Program is immutable after Compile and safe for concurrent use; its
// frame pool is shared by all executors. It captures the function
// structurally at compile time: mutating the function afterwards and
// re-running the Program gives stale results (see ProgramCache for the
// no-mutation contract).
type Program struct {
	fn   *ir.Func
	opts Options // normalized

	nSlots   int // params first, then every non-void instruction
	maxMoves int // widest phi-move set over all CFG edges
	blocks   []cblock

	// needsMem is whether any execution can touch memory: an alloca,
	// load, store, or global reference anywhere in the compiled call
	// graph. Memory-free programs skip Memory setup entirely, which is
	// most of the per-execution saving on §6-style candidates.
	needsMem bool

	framePool sync.Pool // *cframe
	execPool  sync.Pool // *Executor, for the Exec convenience wrapper

	// Tier-2 state. tierExecs counts executions across every executor
	// of this program; when a TierAuto executor sees it trip the
	// promotion threshold, tierOnce lowers the program (at most once,
	// shared by all executors — the lowered form is immutable like the
	// Program itself). tierProg stays nil when the backend declines.
	tierExecs atomic.Uint64
	tierOnce  sync.Once
	tierProg  TierProgram

	// preHot records that a -cache-dir snapshot saw this program (by
	// canonical text and options) promoted last run; TierAuto then
	// promotes on the first execution instead of after the threshold.
	preHot bool
}

// tierProgram returns the program's tier-2 lowering, resolving it on
// first use — through the shared lowering cache when the function is
// shareable (see lowercache.go), by a private backend call otherwise.
// Acquiring the lowering counts as one promotion on m either way (the
// requesting executor's metrics; merged upward like every engine
// counter): promotion is a per-Program event even when the bytecode
// itself came from the cache. Returns nil when no backend is
// registered or the backend declines the function.
func (p *Program) tierProgram(m *EngineMetrics) TierProgram {
	p.tierOnce.Do(func() {
		if tierBackend == nil {
			return
		}
		tp, cached := lowerCached(p.fn, p.opts)
		if !cached {
			if lowered, ok := tierBackend.Lower(p.fn, p.opts); ok {
				tp = lowered
			}
		}
		if tp != nil {
			p.tierProg = tp
			m.Promotions++
		}
	})
	return p.tierProg
}

// Func returns the compiled function.
func (p *Program) Func() *ir.Func { return p.fn }

// Options returns the (normalized) semantics the program was compiled
// under.
func (p *Program) Options() Options { return p.opts }

// stepFn executes one instruction. It returns the index of the block to
// jump to (negative: fall through to the next step) and a non-nil
// outcome when the execution finished (return, UB, timeout, error).
type stepFn func(env *Env, fr *cframe) (int32, *Outcome)

// evalFn computes one instruction's value.
type evalFn func(env *Env, fr *cframe) (Value, *Outcome)

// cblock is one compiled basic block.
type cblock struct {
	// preErr, when non-nil, aborts the execution on block entry before
	// any step runs (the interpreter's "phi in entry block" check,
	// which precedes the first fuel charge).
	preErr *Outcome
	steps  []stepFn
	// fallErr is returned when the steps run out without a terminator
	// transferring control; like the interpreter it is not charged
	// fuel.
	fallErr *Outcome
}

// cframe is one activation record: a dense register file indexed by
// slot, plus scratch space for the simultaneous phi reads.
type cframe struct {
	regs   []Value
	phiBuf []Value
}

// newLanes carves an n-lane slice out of the env's bump arena. Compiled
// evaluators produce one fresh lane slice per value-producing step; the
// arena turns those per-step heap allocations into a pointer bump,
// reset once per top-level Run. Values carved here live until the end
// of the current execution (they may sit in any frame's registers or be
// the final return value), so the arena is per-Env, only ever grows
// within an execution, and Executor.Run clones the outgoing Outcome's
// lanes before resetting. The three-index slice keeps later appends
// from stomping earlier carvings.
func (env *Env) newLanes(n int) []Scalar {
	if cap(env.arena)-len(env.arena) < n {
		// A full chunk stays alive through the values pointing into it;
		// only the arena head moves to a fresh, larger chunk.
		// Start small: an executor often lives for a single short sweep,
		// and a typical execution carves only a handful of lanes.
		c := 2 * cap(env.arena)
		if c < 32 {
			c = 32
		}
		if c > 1<<16 {
			c = 1 << 16
		}
		for c < n {
			c *= 2
		}
		env.arena = make([]Scalar, 0, c)
	}
	m := len(env.arena)
	env.arena = env.arena[:m+n]
	return env.arena[m : m+n : m+n]
}

// opdKind discriminates compiled operands.
type opdKind uint8

const (
	opdConst  opdKind = iota // val holds the precomputed value
	opdSlot                  // read frame slot
	opdGlobal                // resolve global address through the env
	opdErr                   // evaluating the operand is an immediate error
)

// opd is a compiled operand: the closed form of the interpreter's
// operand() type switch.
type opd struct {
	kind     opdKind
	val      Value // opdConst
	slot     int32 // opdSlot
	ident    string
	global   *ir.Global // opdGlobal
	errMsg   string     // opdErr
	hasUndef bool       // opdConst with at least one undef lane
	// noUndef marks operands whose value provably never carries an
	// undef lane, letting evalStrict skip the per-use scan: constants
	// without undef lanes, and — since undef is rejected at compile
	// time, freeze resolves it, and uninitialized memory is poison —
	// every operand under the Freeze semantics.
	noUndef bool
}

func errOpd(msg string) opd { return opd{kind: opdErr, errMsg: msg} }

// eval is ⟦op⟧R without undef resolution, mirroring Env.operand.
func (o *opd) eval(env *Env, fr *cframe) (Value, *Outcome) {
	switch o.kind {
	case opdConst:
		return o.val, nil
	case opdSlot:
		v := fr.regs[o.slot]
		if v.Lanes == nil {
			return Value{}, &Outcome{Kind: OutError, Msg: "read of unset register " + o.ident}
		}
		return v, nil
	case opdGlobal:
		addr, ok := env.globalAddr[o.global]
		if !ok {
			return Value{}, &Outcome{Kind: OutError, Msg: "unmapped global @" + o.global.Name()}
		}
		return VC(ir.Ptr, uint64(addr)), nil
	default:
		return Value{}, &Outcome{Kind: OutError, Msg: o.errMsg}
	}
}

// evalStrict additionally resolves undef lanes per use, mirroring
// Env.strictOperand. The common all-defined case skips the resolve
// allocation; when a lane is undef it takes the same ResolveUndef path
// (and thus the same oracle choices) as the interpreter.
func (o *opd) evalStrict(env *Env, fr *cframe) (Value, *Outcome) {
	v, out := o.eval(env, fr)
	if out != nil {
		return v, out
	}
	if o.noUndef {
		return v, nil
	}
	for i := range v.Lanes {
		if v.Lanes[i].Kind == UndefVal {
			return ResolveUndef(v, env.Oracle), nil
		}
	}
	return v, nil
}

// phiMove is one phi assignment on a CFG edge. A phi whose incoming for
// the edge's source block is missing compiles to an error operand, so
// the interpreter's error ordering across a block's phi list is
// preserved exactly.
type phiMove struct {
	src opd
	dst int32 // -1: evaluate for effect only (void phi)
}

// cedge is one compiled CFG edge: the target block plus its phi moves.
type cedge struct {
	target int32
	moves  []phiMove
}

// take performs the edge's simultaneous phi assignment — all sources
// are read into scratch before any destination is written, so
// self-referential and mutually-referential phis see the pre-edge
// values — and returns the target block.
func (e *cedge) take(env *Env, fr *cframe) (int32, *Outcome) {
	if len(e.moves) == 0 {
		return e.target, nil
	}
	buf := fr.phiBuf[:len(e.moves)]
	for i := range e.moves {
		v, out := e.moves[i].src.eval(env, fr)
		if out != nil {
			return 0, out
		}
		buf[i] = v
	}
	for i := range e.moves {
		if d := e.moves[i].dst; d >= 0 {
			fr.regs[d] = buf[i]
		}
	}
	return e.target, nil
}

// Compile translates fn (and, transitively, every function it calls)
// into a Program under the given semantics. Compilation is purely
// structural: it never executes anything and makes no oracle choices.
func Compile(fn *ir.Func, opts Options) *Program {
	opts = opts.normalized()
	linker := make(map[*ir.Func]*Program)
	p := compileInto(fn, opts, linker)
	// Memory use is a property of the whole call graph: if any callee
	// can touch memory, the root must set the heap up (globals are
	// allocated before any frame runs, like NewEnv does).
	needs := false
	for _, q := range linker {
		needs = needs || q.needsMem
	}
	if needs {
		for _, q := range linker {
			q.needsMem = true
		}
	}
	p.preHot = warmPromoted(fn, opts)
	return p
}

// compileInto compiles fn, registering the Program in the linker before
// compiling the body so recursive and mutually-recursive calls resolve
// to the (still filling) Program.
func compileInto(fn *ir.Func, opts Options, linker map[*ir.Func]*Program) *Program {
	if p := linker[fn]; p != nil {
		return p
	}
	p := &Program{fn: fn, opts: opts}
	linker[fn] = p
	c := &compiler{p: p, opts: opts, linker: linker}
	c.compile()
	return p
}

// newFrame allocates a frame sized for the program. The frame pool has
// no New hook on purpose: invoke distinguishes a pool hit from a fresh
// allocation so the env's frame counters stay honest.
func (p *Program) newFrame() *cframe {
	return &cframe{regs: make([]Value, p.nSlots), phiBuf: make([]Value, p.maxMoves)}
}

type compiler struct {
	p      *Program
	opts   Options
	linker map[*ir.Func]*Program
}

// Slot layout: params occupy slots [0, len(Params)), then every
// non-void instruction in block order. The lookups below rescan the
// function instead of building maps — compilation is one-shot and §6
// functions are a handful of instructions, so positional scans beat
// three pointer-keyed map allocations per compile.

// slotOfParam returns the frame slot of a parameter of the compiled
// function, or false for a parameter belonging to some other function.
func (c *compiler) slotOfParam(x *ir.Param) (int32, bool) {
	for i, prm := range c.p.fn.Params {
		if prm == x {
			return int32(i), true
		}
	}
	return 0, false
}

// slotOfInstr returns the frame slot of a non-void instruction of the
// compiled function, or false for void instructions and instructions
// of other functions.
func (c *compiler) slotOfInstr(x *ir.Instr) (int32, bool) {
	n := int32(len(c.p.fn.Params))
	for _, b := range c.p.fn.Blocks {
		for _, in := range b.Instrs() {
			if in == x {
				return n, !in.Ty.IsVoid()
			}
			if !in.Ty.IsVoid() {
				n++
			}
		}
	}
	return 0, false
}

// blockIndex returns the index of a block of the compiled function.
func (c *compiler) blockIndex(b *ir.Block) int32 {
	for i, bb := range c.p.fn.Blocks {
		if bb == b {
			return int32(i)
		}
	}
	return 0
}

func (c *compiler) compile() {
	fn := c.p.fn
	n := int32(len(fn.Params))
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs() {
			if !in.Ty.IsVoid() {
				n++
			}
		}
	}
	c.p.nSlots = int(n)

	c.p.blocks = make([]cblock, len(fn.Blocks))
	for i, b := range fn.Blocks {
		c.compileBlock(i, b)
	}
}

func (c *compiler) compileBlock(idx int, b *ir.Block) {
	cb := &c.p.blocks[idx]
	if idx == 0 && len(b.Phis()) > 0 {
		// The interpreter reports this before charging any fuel; no
		// execution can enter the entry block a second time because the
		// first entry already aborted.
		cb.preErr = &Outcome{Kind: OutError, Msg: "phi in entry block"}
	}
	cb.steps = make([]stepFn, 0, len(b.Instrs()))
	for _, in := range b.Instrs() {
		if in.Op == ir.OpPhi {
			continue // assigned by the incoming edge's moves
		}
		cb.steps = append(cb.steps, c.compileInstr(b, in))
	}
	cb.fallErr = &Outcome{Kind: OutError, Msg: "block fell through without terminator"}
}

// edge compiles the CFG edge from→to: target index plus phi moves for
// to's leading phis, in phi order.
func (c *compiler) edge(from, to *ir.Block) *cedge {
	e := &cedge{target: c.blockIndex(to)}
	for _, ph := range to.Phis() {
		mv := phiMove{dst: -1}
		if s, ok := c.slotOfInstr(ph); ok {
			mv.dst = s
		}
		if incoming, ok := ph.PhiIncoming(from); ok {
			mv.src = c.operand(incoming)
		} else {
			mv.src = errOpd(fmt.Sprintf("phi %%%s has no incoming for %%%s", ph.Name(), from.Name()))
		}
		e.moves = append(e.moves, mv)
	}
	if len(e.moves) > c.p.maxMoves {
		c.p.maxMoves = len(e.moves)
	}
	return e
}

// operand compiles an IR operand, precomputing constants and resolving
// registers to slots. Error cases (undef under Freeze, unknown
// registers) compile to operands that fail when evaluated, preserving
// the interpreter's error timing for dead code.
func (c *compiler) operand(v ir.Value) opd {
	o := c.operandRaw(v)
	o.noUndef = c.opts.Mode == Freeze || (o.kind == opdConst && !o.hasUndef)
	return o
}

func (c *compiler) operandRaw(v ir.Value) opd {
	switch x := v.(type) {
	case *ir.Const:
		return opd{kind: opdConst, val: VC(x.Ty, x.Bits)}
	case *ir.Poison:
		return opd{kind: opdConst, val: VPoison(x.Ty)}
	case *ir.Undef:
		if c.opts.Mode == Freeze {
			return errOpd("undef under freeze semantics")
		}
		return opd{kind: opdConst, val: VUndef(x.Ty), hasUndef: true}
	case *ir.VecConst:
		lanes := make([]Scalar, len(x.Elems))
		hasUndef := false
		for i, e := range x.Elems {
			switch el := e.(type) {
			case *ir.Const:
				lanes[i] = C(el.Bits)
			case *ir.Poison:
				lanes[i] = PoisonScalar
			case *ir.Undef:
				if c.opts.Mode == Freeze {
					return errOpd("undef lane under freeze semantics")
				}
				lanes[i] = UndefScalar
				hasUndef = true
			}
		}
		return opd{kind: opdConst, val: Value{Ty: x.Ty, Lanes: lanes}, hasUndef: hasUndef}
	case *ir.Global:
		c.p.needsMem = true
		return opd{kind: opdGlobal, global: x}
	case *ir.Param:
		if s, ok := c.slotOfParam(x); ok {
			return opd{kind: opdSlot, slot: s, ident: x.Ident()}
		}
		return errOpd("read of unset register " + x.Ident())
	case *ir.Instr:
		if s, ok := c.slotOfInstr(x); ok {
			return opd{kind: opdSlot, slot: s, ident: x.Ident()}
		}
		return errOpd("read of unset register " + x.Ident())
	default:
		return errOpd("read of unset register " + v.Ident())
	}
}

// valStep wraps an instruction's evaluator with the result write and —
// only under Options.EmitTrace — the trace callback. The untraced
// variant has no per-step trace branch at all: the knob is resolved
// here, at compile time, exactly like the semantics options.
func (c *compiler) valStep(in *ir.Instr, eval evalFn) stepFn {
	slot := int32(-1)
	if s, ok := c.slotOfInstr(in); ok {
		slot = s
	}
	if !c.opts.EmitTrace {
		return func(env *Env, fr *cframe) (int32, *Outcome) {
			v, out := eval(env, fr)
			if out != nil {
				return 0, out
			}
			if slot >= 0 {
				fr.regs[slot] = v
			}
			return -1, nil
		}
	}
	return func(env *Env, fr *cframe) (int32, *Outcome) {
		v, out := eval(env, fr)
		if out != nil {
			return 0, out
		}
		if slot >= 0 {
			fr.regs[slot] = v
		}
		if env.Trace != nil {
			env.Trace(env.depth, in, v)
		}
		return -1, nil
	}
}

func (c *compiler) compileInstr(b *ir.Block, in *ir.Instr) stepFn {
	switch {
	case in.Op == ir.OpBr:
		if !in.IsConditionalBr() {
			e := c.edge(b, in.BlockArg(0))
			return e.take
		}
		cond := c.operand(in.Arg(0))
		bp := c.opts.BranchPoison
		e0 := c.edge(b, in.BlockArg(0))
		e1 := c.edge(b, in.BlockArg(1))
		return func(env *Env, fr *cframe) (int32, *Outcome) {
			cv, out := cond.eval(env, fr)
			if out != nil {
				return 0, out
			}
			s := cv.Scalar()
			switch s.Kind {
			case PoisonVal:
				if bp == BranchPoisonIsUB {
					return 0, ubOut("branch on poison")
				}
				s = C(env.Oracle.Choose(2))
			case UndefVal:
				s = C(env.Oracle.Choose(2))
			}
			if s.Bits != 0 {
				return e0.take(env, fr)
			}
			return e1.take(env, fr)
		}

	case in.Op == ir.OpRet:
		if in.NumArgs() == 0 {
			out := &Outcome{Kind: OutRet, Val: Value{Ty: ir.Void}}
			return func(*Env, *cframe) (int32, *Outcome) { return 0, out }
		}
		v := c.operand(in.Arg(0))
		return func(env *Env, fr *cframe) (int32, *Outcome) {
			rv, out := v.eval(env, fr)
			if out != nil {
				return 0, out
			}
			env.retOut = Outcome{Kind: OutRet, Val: rv}
			return 0, &env.retOut
		}

	case in.Op == ir.OpUnreachable:
		out := &Outcome{Kind: OutUB, Msg: "reached unreachable"}
		return func(*Env, *cframe) (int32, *Outcome) { return 0, out }

	case in.Op == ir.OpCall:
		args := make([]opd, in.NumArgs())
		for i := range args {
			args[i] = c.operand(in.Arg(i))
		}
		callee := compileInto(in.Callee, c.opts, c.linker)
		slot := int32(-1)
		if s, ok := c.slotOfInstr(in); ok {
			slot = s
		}
		if !c.opts.EmitTrace {
			return func(env *Env, fr *cframe) (int32, *Outcome) {
				if cap(env.callBuf) < len(args) {
					env.callBuf = make([]Value, len(args))
				}
				callArgs := env.callBuf[:len(args)]
				for i := range args {
					v, out := args[i].eval(env, fr)
					if out != nil {
						return 0, out
					}
					callArgs[i] = v
				}
				res := callee.invoke(env, callArgs)
				if res.Kind != OutRet {
					return 0, &res
				}
				if slot >= 0 {
					fr.regs[slot] = res.Val
				}
				return -1, nil
			}
		}
		instr := in
		return func(env *Env, fr *cframe) (int32, *Outcome) {
			if cap(env.callBuf) < len(args) {
				env.callBuf = make([]Value, len(args))
			}
			callArgs := env.callBuf[:len(args)]
			for i := range args {
				v, out := args[i].eval(env, fr)
				if out != nil {
					return 0, out
				}
				callArgs[i] = v
			}
			res := callee.invoke(env, callArgs)
			if res.Kind != OutRet {
				return 0, &res
			}
			if slot >= 0 {
				fr.regs[slot] = res.Val
			}
			if env.Trace != nil {
				env.Trace(env.depth, instr, res.Val)
			}
			return -1, nil
		}

	default:
		return c.valStep(in, c.compileEval(in))
	}
}

// compileEval closes over one non-control instruction's evaluator,
// mirroring Env.evalInstr case by case.
func (c *compiler) compileEval(in *ir.Instr) evalFn {
	mode := c.opts.Mode
	ty := in.Ty
	switch {
	case in.Op.IsBinop():
		x := c.operand(in.Arg(0))
		y := c.operand(in.Arg(1))
		op, attrs := in.Op, in.Attrs
		w := ty.ElemType().Bits
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			xv, out := x.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			yv, out := y.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			lanes := env.newLanes(len(xv.Lanes))
			for i := range lanes {
				s, ub := EvalBinopLane(op, attrs, w, xv.Lanes[i], yv.Lanes[i], mode)
				if ub != "" {
					return Value{}, ubOut(ub)
				}
				lanes[i] = s
			}
			return Value{Ty: ty, Lanes: lanes}, nil
		}

	case in.Op == ir.OpICmp:
		x := c.operand(in.Arg(0))
		y := c.operand(in.Arg(1))
		pred := in.Pred
		w := in.Arg(0).Type().ElemType().Bits
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			xv, out := x.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			yv, out := y.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			lanes := env.newLanes(len(xv.Lanes))
			for i := range lanes {
				lanes[i] = EvalICmpLane(pred, w, xv.Lanes[i], yv.Lanes[i])
			}
			return Value{Ty: ty, Lanes: lanes}, nil
		}

	case in.Op == ir.OpSelect:
		return c.compileSelect(in)

	case in.Op == ir.OpFreeze:
		x := c.operand(in.Arg(0))
		w := ty.ElemType().Bits
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			xv, out := x.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			lanes := env.newLanes(len(xv.Lanes))
			for i, l := range xv.Lanes {
				lanes[i] = FreezeLane(l, w, env.Oracle)
			}
			return Value{Ty: ty, Lanes: lanes}, nil
		}

	case in.Op == ir.OpAlloca:
		c.p.needsMem = true
		cntOp := in.Arg(0)
		elemSize := uint64(SizeOfType(in.AllocTy))
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			cnt := cntOp.(*ir.Const).Bits
			size := elemSize * cnt
			if size > 1<<24 {
				return Value{}, &Outcome{Kind: OutError, Msg: "alloca too large"}
			}
			addr, err := env.Mem.Allocate(uint32(size), env.Opts.Mode)
			if err != nil {
				return Value{}, &Outcome{Kind: OutError, Msg: err.Error()}
			}
			return VC(ir.Ptr, uint64(addr)), nil
		}

	case in.Op == ir.OpLoad:
		c.p.needsMem = true
		ptr := c.operand(in.Arg(0))
		sz := ty.Bitwidth()
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			p, out := ptr.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			ps := p.Scalar()
			if ps.Kind == PoisonVal {
				return Value{}, ubOut("load from poison address")
			}
			bits, err := env.Mem.Load(uint32(ps.Bits), sz)
			if err != nil {
				return Value{}, ubOut(err.Error())
			}
			return Raise(ty, bits, env.Oracle), nil
		}

	case in.Op == ir.OpStore:
		c.p.needsMem = true
		val := c.operand(in.Arg(0))
		ptr := c.operand(in.Arg(1))
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			v, out := val.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			p, out := ptr.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			ps := p.Scalar()
			if ps.Kind == PoisonVal {
				return Value{}, ubOut("store to poison address")
			}
			if err := env.Mem.Store(uint32(ps.Bits), Lower(v)); err != nil {
				return Value{}, ubOut(err.Error())
			}
			return Value{Ty: ir.Void}, nil
		}

	case in.Op == ir.OpGEP:
		c.p.needsMem = true
		base := c.operand(in.Arg(0))
		idx := c.operand(in.Arg(1))
		attrs := in.Attrs
		idxW := in.Arg(1).Type().Bits
		elemSize := SizeOfType(in.AllocTy)
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			bv, out := base.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			iv, out := idx.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			lanes := env.newLanes(1)
			lanes[0] = EvalGEP(attrs, bv.Scalar(), iv.Scalar(), idxW, elemSize)
			return Value{Ty: ir.Ptr, Lanes: lanes}, nil
		}

	case in.Op == ir.OpZExt, in.Op == ir.OpSExt, in.Op == ir.OpTrunc:
		x := c.operand(in.Arg(0))
		op := in.Op
		fromW := in.Arg(0).Type().ElemType().Bits
		toW := ty.ElemType().Bits
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			xv, out := x.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			lanes := env.newLanes(len(xv.Lanes))
			for i, l := range xv.Lanes {
				lanes[i] = EvalCastLane(op, fromW, toW, l)
			}
			return Value{Ty: ty, Lanes: lanes}, nil
		}

	case in.Op == ir.OpBitcast:
		x := c.operand(in.Arg(0))
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			xv, out := x.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			return Raise(ty, Lower(xv), env.Oracle), nil
		}

	case in.Op == ir.OpExtractElement:
		vec := c.operand(in.Arg(0))
		idx := c.operand(in.Arg(1))
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			vv, out := vec.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			iv, out := idx.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			is := iv.Scalar()
			if is.Kind == PoisonVal || is.Bits >= uint64(len(vv.Lanes)) {
				return VPoison(ty), nil
			}
			lanes := env.newLanes(1)
			lanes[0] = vv.Lanes[is.Bits]
			return Value{Ty: ty, Lanes: lanes}, nil
		}

	case in.Op == ir.OpInsertElement:
		vec := c.operand(in.Arg(0))
		sc := c.operand(in.Arg(1))
		idx := c.operand(in.Arg(2))
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			vv, out := vec.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			sv, out := sc.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			iv, out := idx.evalStrict(env, fr)
			if out != nil {
				return Value{}, out
			}
			is := iv.Scalar()
			if is.Kind == PoisonVal || is.Bits >= uint64(len(vv.Lanes)) {
				return VPoison(ty), nil
			}
			lanes := env.newLanes(len(vv.Lanes))
			copy(lanes, vv.Lanes)
			lanes[is.Bits] = sv.Scalar()
			return Value{Ty: ty, Lanes: lanes}, nil
		}
	}
	out := &Outcome{Kind: OutError, Msg: "unhandled opcode " + in.Op.String()}
	return func(*Env, *cframe) (Value, *Outcome) { return Value{}, out }
}

func (c *compiler) compileSelect(in *ir.Instr) evalFn {
	cond := c.operand(in.Arg(0))
	x := c.operand(in.Arg(1))
	y := c.operand(in.Arg(2))
	spc := c.opts.SelectPoisonCond
	armEither := c.opts.SelectArmPoisonEither
	ty := in.Ty
	condIsVec := in.Arg(0).Type().IsVec()

	if !condIsVec {
		return func(env *Env, fr *cframe) (Value, *Outcome) {
			cv, out := cond.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			xv, out := x.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			yv, out := y.eval(env, fr)
			if out != nil {
				return Value{}, out
			}
			s := cv.Scalar()
			switch s.Kind {
			case PoisonVal:
				switch spc {
				case SelectPoisonCondUB:
					return Value{}, ubOut("select on poison condition")
				case SelectPoisonCondNondet:
					s = C(env.Oracle.Choose(2))
				default:
					return VPoison(ty), nil
				}
			case UndefVal:
				s = C(env.Oracle.Choose(2))
			}
			if armEither && (xv.AnyPoison() || yv.AnyPoison()) {
				return VPoison(ty), nil
			}
			if s.Bits != 0 {
				return xv, nil
			}
			return yv, nil
		}
	}

	return func(env *Env, fr *cframe) (Value, *Outcome) {
		cv, out := cond.eval(env, fr)
		if out != nil {
			return Value{}, out
		}
		xv, out := x.eval(env, fr)
		if out != nil {
			return Value{}, out
		}
		yv, out := y.eval(env, fr)
		if out != nil {
			return Value{}, out
		}
		lanes := env.newLanes(len(cv.Lanes))
		for i, cl := range cv.Lanes {
			switch cl.Kind {
			case PoisonVal:
				switch spc {
				case SelectPoisonCondUB:
					return Value{}, ubOut("select on poison condition")
				case SelectPoisonCondNondet:
					cl = C(env.Oracle.Choose(2))
				default:
					lanes[i] = PoisonScalar
					continue
				}
			case UndefVal:
				cl = C(env.Oracle.Choose(2))
			}
			xi, yi := xv.Lanes[i], yv.Lanes[i]
			if armEither && (xi.Kind == PoisonVal || yi.Kind == PoisonVal) {
				lanes[i] = PoisonScalar
				continue
			}
			if cl.Bits != 0 {
				lanes[i] = xi
			} else {
				lanes[i] = yi
			}
		}
		return Value{Ty: ty, Lanes: lanes}, nil
	}
}

// invoke runs one activation of the program on an env whose memory,
// globals, oracle and fuel are already set up. It mirrors Env.call's
// depth accounting.
func (p *Program) invoke(env *Env, args []Value) Outcome {
	if env.depth >= env.Opts.MaxCallDepth {
		return Outcome{Kind: OutTimeout, Msg: "call depth exceeded"}
	}
	env.depth++
	fr, _ := p.framePool.Get().(*cframe)
	if fr == nil {
		fr = p.newFrame()
		env.Metrics.FramesAllocated++
	} else {
		env.Metrics.FramesPooled++
	}
	out := p.execFrame(env, fr, args)
	clear(fr.regs)
	p.framePool.Put(fr)
	env.depth--
	return out
}

// execFrame is the dispatch loop: fuel is charged per step exactly as
// the interpreter charges it per non-phi instruction.
func (p *Program) execFrame(env *Env, fr *cframe, args []Value) Outcome {
	regs := fr.regs
	for i := range p.fn.Params {
		regs[i] = args[i]
	}
	bi := int32(0)
	for {
		b := &p.blocks[bi]
		if b.preErr != nil {
			return *b.preErr
		}
		jumped := false
		for _, step := range b.steps {
			if env.fuel <= 0 {
				return Outcome{Kind: OutTimeout}
			}
			env.fuel--
			env.Steps++
			next, out := step(env, fr)
			if out != nil {
				return *out
			}
			if next >= 0 {
				bi = next
				jumped = true
				break
			}
		}
		if !jumped {
			return *b.fallErr
		}
	}
}

// checkArgs mirrors Env.Run's arity and type validation.
func (p *Program) checkArgs(args []Value) *Outcome {
	if len(args) != len(p.fn.Params) {
		return &Outcome{Kind: OutError, Msg: fmt.Sprintf("arity: got %d args, want %d", len(args), len(p.fn.Params))}
	}
	for i, a := range args {
		if !a.Ty.Equal(p.fn.Params[i].Ty) {
			return &Outcome{Kind: OutError, Msg: fmt.Sprintf("arg %d type %s, want %s", i, a.Ty, p.fn.Params[i].Ty)}
		}
	}
	return nil
}

// Exec runs the program once on a pooled executor: the compiled
// equivalent of the package-level Exec.
func (p *Program) Exec(args []Value, o Oracle) Outcome {
	e, _ := p.execPool.Get().(*Executor)
	if e == nil {
		e = NewExecutor(p)
	}
	out := e.Run(args, o)
	p.execPool.Put(e)
	return out
}

// Executor is the run-many handle for a Program: it owns a reusable
// environment (memory included) so back-to-back runs allocate nothing
// on the fast path. Each Run is a fresh execution — fuel, step count,
// memory and globals are reset — matching what Exec's env-per-call gave
// the interpreter. An Executor is not safe for concurrent use; create
// one per goroutine (Programs and their frame pools are shared safely).
type Executor struct {
	prog *Program
	env  Env
	// fr is the dedicated depth-0 frame: the executor is single-
	// goroutine, so the entry activation can skip the shared frame
	// pool entirely (inner calls still use it).
	fr *cframe

	// tier is the executor's tiering policy; runner is non-nil once
	// this executor has switched to the tier-2 program.
	tier   TierPolicy
	runner TierRunner

	// Events, when non-nil, receives tracing notifications (currently
	// "tier_promote" when the executor switches to the tier-2 runner)
	// with flattened key/value pairs. It is consulted only on the
	// promotion path, never per step.
	Events func(name string, args ...string)
}

// SetTier installs the tiering policy. TierBytecode lowers on the next
// Run; TierAuto promotes once the program's shared execution counter
// trips the policy threshold. When the backend declines the function
// the executor silently stays on the closure engine (ActiveTier
// reports which engine actually runs).
func (e *Executor) SetTier(p TierPolicy) {
	e.tier = p
	e.runner = nil
}

// ActiveTier reports the engine the next Run will use: "closure", or
// the backend name (e.g. "bytecode") once promoted. Tests use this to
// detect a silent fallback.
func (e *Executor) ActiveTier() string {
	if e.runner != nil && tierBackend != nil {
		return tierBackend.Name()
	}
	return "closure"
}

// tryPromote implements the tiering controller for one Run: it decides
// whether this execution goes to the tier-2 runner, lowering and
// counting the promotion when the policy says so.
func (e *Executor) tryPromote() {
	p := e.prog
	switch e.tier.Mode {
	case TierBytecode:
		if tp := p.tierProgram(&e.env.Metrics); tp != nil {
			e.runner = tp.NewRunner()
			e.promoted("bytecode")
		} else {
			e.tier.Mode = TierClosure // backend declined; stop asking
		}
	case TierAuto:
		if p.tierExecs.Add(1) < e.tier.threshold() && !p.preHot {
			return
		}
		if tp := p.tierProgram(&e.env.Metrics); tp != nil {
			e.runner = tp.NewRunner()
			e.promoted("auto")
		} else {
			e.tier.Mode = TierClosure
		}
	}
}

// promoted fires the Events hook for a successful tier switch.
func (e *Executor) promoted(mode string) {
	if e.Events != nil {
		e.Events("tier_promote", "fn", e.prog.fn.Name(), "mode", mode)
	}
}

// NewExecutor returns an executor for p.
func NewExecutor(p *Program) *Executor {
	e := &Executor{prog: p}
	e.env.Mod = p.fn.Parent()
	e.env.Opts = p.opts
	return e
}

// Run executes the program on args, resolving nondeterminism through o.
func (e *Executor) Run(args []Value, o Oracle) Outcome {
	p := e.prog
	if e.tier.Mode != TierClosure {
		if e.runner == nil {
			e.tryPromote()
		}
		if e.runner != nil {
			return e.runner.Run(args, o, &e.env.Metrics)
		}
	}
	if out := p.checkArgs(args); out != nil {
		return *out
	}
	env := &e.env
	env.Oracle = o
	env.fuel = p.opts.Fuel
	env.depth = 0
	env.Steps = 0
	env.arena = env.arena[:0]
	if p.needsMem {
		if env.Mem == nil {
			env.Mem = NewMemory()
		} else {
			env.Mem.Reset()
		}
		// Globals are reallocated in module order from a reset bump
		// allocator, so their addresses are identical on every run (and
		// identical to a fresh NewEnv's).
		if err := env.initGlobals(); err != nil {
			return Outcome{Kind: OutError, Msg: err.Error()}
		}
	}
	if env.depth >= env.Opts.MaxCallDepth {
		return Outcome{Kind: OutTimeout, Msg: "call depth exceeded"}
	}
	env.depth++
	if e.fr == nil {
		e.fr = p.newFrame()
		env.Metrics.FramesAllocated++
	}
	out := p.execFrame(env, e.fr, args)
	clear(e.fr.regs)
	env.depth--
	env.Metrics.Execs++
	env.Metrics.ClosureExecs++
	env.Metrics.Steps += uint64(env.Steps)
	// The outcome may carry lanes carved from the arena, which the next
	// Run resets; give it its own backing so callers can keep it.
	if out.Val.Lanes != nil {
		out.Val.Lanes = append([]Scalar(nil), out.Val.Lanes...)
	}
	return out
}

// Metrics exposes the executor's accumulated engine counters; callers
// that publish telemetry read (and may reset) them between campaigns.
func (e *Executor) Metrics() *EngineMetrics { return &e.env.Metrics }
