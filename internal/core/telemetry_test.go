package core

import (
	"fmt"
	"testing"

	"tameir/internal/ir"
	"tameir/internal/telemetry"
)

func parseFn(t *testing.T, src string) *ir.Func {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m.Funcs[len(m.Funcs)-1]
}

const traceSrc = `define i32 @g(i32 %a) {
entry:
  %b = add i32 %a, 1
  ret i32 %b
}
define i32 @f(i32 %a) {
entry:
  %c = call i32 @g(i32 %a)
  %d = mul i32 %c, 2
  ret i32 %d
}`

// TestTraceVariantsMatch: the traced and untraced program variants are
// distinct cache entries but produce identical outcomes, and only a
// traced env receives events.
func TestTraceVariantsMatch(t *testing.T) {
	fn := parseFn(t, traceSrc)
	opts := FreezeOptions()
	args := []Value{VC(ir.I32, 5)}

	envPlain, err := NewEnv(fn.Parent(), ZeroOracle{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	outPlain := envPlain.Run(fn, args)

	var events int
	envTraced, err := NewEnv(fn.Parent(), ZeroOracle{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	envTraced.Trace = func(depth int, in *ir.Instr, v Value) { events++ }
	outTraced := envTraced.Run(fn, args)

	if outPlain.String() != outTraced.String() {
		t.Fatalf("trace variant changed outcome: %v vs %v", outPlain, outTraced)
	}
	if outPlain.Kind != OutRet || outPlain.Val.Scalar().Bits != 12 {
		t.Fatalf("wrong result: %v", outPlain)
	}
	// add in @g, call in @f, mul in @f (ret/br do not trace).
	if events != 3 {
		t.Fatalf("traced env saw %d events, want 3", events)
	}
	if envPlain.Metrics.Execs != 1 || envPlain.Metrics.Steps == 0 {
		t.Fatalf("engine metrics not flushed: %+v", envPlain.Metrics)
	}

	// The two variants occupy distinct ProgramCache slots.
	c := NewProgramCache(8)
	var traced Options = opts
	traced.EmitTrace = true
	p1 := c.Get(fn, opts)
	p2 := c.Get(fn, traced)
	if p1 == p2 {
		t.Fatal("EmitTrace did not split the cache key")
	}
	if st := c.Stats(); st.Misses != 2 || st.Size != 2 {
		t.Fatalf("cache stats after two variant compiles: %+v", st)
	}
}

// TestProgramCacheClockEviction: the cache stays within its bound,
// counts hits/misses/evictions, and the second-chance bit protects a
// recently-referenced entry from the sweeping hand.
func TestProgramCacheClockEviction(t *testing.T) {
	mkFn := func(i int) *ir.Func {
		return parseFn(t, fmt.Sprintf(`define i32 @f%d(i32 %%a) {
entry:
  %%r = add i32 %%a, %d
  ret i32 %%r
}`, i, i))
	}
	opts := FreezeOptions()
	c := NewProgramCache(4)
	fns := make([]*ir.Func, 8)
	for i := range fns {
		fns[i] = mkFn(i)
	}
	for i := 0; i < 4; i++ {
		c.Get(fns[i], opts)
	}
	// Keep fn0 hot between insertions: the clock clears its ref bit
	// each time the hand passes, but a re-reference before the next
	// sweep renews the second chance, so fn0 outlives four evictions.
	hot := c.Get(fns[0], opts)
	for i := 4; i < 8; i++ {
		c.Get(fns[0], opts)
		c.Get(fns[i], opts)
	}
	st := c.Stats()
	if st.Size != 4 || st.Capacity != 4 {
		t.Fatalf("size %d cap %d, want 4/4", st.Size, st.Capacity)
	}
	if st.Misses != 8 || st.Hits != 5 || st.Evictions != 4 {
		t.Fatalf("stats %+v, want misses=8 hits=5 evictions=4", st)
	}
	// fn0 survived every sweep: getting it again is a hit on the same
	// Program, not a recompile.
	if got := c.Get(fns[0], opts); got != hot {
		t.Fatal("second-chance bit did not protect the hot entry")
	}
	if st := c.Stats(); st.Hits != 6 || st.Misses != 8 {
		t.Fatalf("stats after re-get: %+v", st)
	}
}

// TestEngineMetricsPublish: executor counters flow into a registry
// with the caller's class and frame pool hits dominate after warm-up.
func TestEngineMetricsPublish(t *testing.T) {
	fn := parseFn(t, traceSrc)
	prog := Compile(fn, FreezeOptions())
	ex := NewExecutor(prog)
	const runs = 10
	for i := 0; i < runs; i++ {
		out := ex.Run([]Value{VC(ir.I32, uint64(i))}, ZeroOracle{})
		if out.Kind != OutRet {
			t.Fatalf("run %d: %v", i, out)
		}
	}
	m := *ex.Metrics()
	if m.Execs != runs {
		t.Fatalf("Execs = %d, want %d", m.Execs, runs)
	}
	if m.Steps == 0 {
		t.Fatal("Steps not counted")
	}
	// The inner @g call takes one frame per run: first from a fresh
	// allocation, the rest pooled.
	if m.FramesAllocated+m.FramesPooled < runs {
		t.Fatalf("frame counters %+v do not cover %d inner calls", m, runs)
	}
	if m.FramesPooled == 0 {
		t.Fatalf("no pooled frames after warm-up: %+v", m)
	}

	reg := telemetry.NewRegistry()
	m.Publish(reg, telemetry.Deterministic)
	snap := reg.Snapshot()
	if s, ok := snap.Get("engine_execs_total"); !ok || s.Value != runs {
		t.Fatalf("engine_execs_total sample: %+v ok=%v", s, ok)
	}
	if _, ok := snap.Get("pool_frames_pooled_total"); !ok {
		t.Fatal("pool counters missing")
	}

	cache := NewProgramCache(4)
	cache.Get(fn, FreezeOptions())
	cache.Get(fn, FreezeOptions())
	cache.Stats().Publish(reg, telemetry.Scheduling)
	if s, ok := reg.Snapshot().Get("progcache_hits_total"); !ok || s.Value != 1 {
		t.Fatalf("progcache_hits_total sample: %+v ok=%v", s, ok)
	}
}
