package bench

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
)

// PipelineResult is one row of the E11 throughput experiment: a §6
// validation campaign run on the sharded worker pool. Checks counts
// (candidate, pass) validations — for a multi-pass campaign that is
// Passes×Funcs, and checks/sec is the throughput number that makes
// rows with different pass counts comparable.
type PipelineResult struct {
	// Pipeline labels the pass configuration the row ran ("o2",
	// "o2-no-freeze-elim", "validation-passes") so ablation pairs are
	// self-describing in the JSON.
	Pipeline     string
	Workers      int
	Memo         bool
	Passes       int
	Funcs        int
	Checks       int
	Refuted      int
	Elapsed      time.Duration
	ChecksPerSec float64
	MemoHits     uint64
	MemoLookups  uint64
	HitRate      float64 // in [0, 1]

	// AnalysisCache is whether the pass manager served CFG/domtree/
	// loopinfo from its per-function cache (the cached-vs-uncached
	// experiment toggles it; multi-pass campaigns always cache).
	AnalysisCache bool
	// AnalysisComputes / AnalysisHits are the analysis manager's
	// counters summed across shards (only recorded for -O2 campaigns,
	// which run through an instrumented PassManager).
	AnalysisComputes uint64
	AnalysisHits     uint64
	// FreezeElimRemoved is the number of freeze instructions the
	// poison-analysis-backed freeze-elim pass deleted (zero for
	// pipelines that do not include it).
	FreezeElimRemoved uint64

	// Workload / Epochs / CorpusSize / CoverageKeys / ReduceSteps /
	// ReducedFindings describe the E13 pluggable-workload rows: which
	// candidate source fed the campaign, how many generations an
	// evolving source ran, its end-of-run corpus state, and the
	// automatic reducer's work on the row's findings. All zero for the
	// E11 exhaustive rows.
	Workload        string
	Epochs          int
	CorpusSize      int
	CoverageKeys    int
	ReduceSteps     uint64
	ReducedFindings uint64

	// DiskLoads / DiskHits / DiskStaleRejects describe the persistent
	// cache directory's contribution for the warm-start ablation rows
	// (zero for rows run without a cache directory). DiskHits counts
	// memo lookups served by snapshot-loaded entries, so the
	// cold-vs-warm pair shows how much of the campaign's derivation
	// work the snapshot replaced.
	DiskLoads        uint64
	DiskHits         uint64
	DiskStaleRejects uint64
}

// pipelineCampaign builds the §6 validation campaign: -O2 alone, or
// all five validation passes (multiPass) sharing each shard's memo.
func pipelineCampaign(fixed bool, numInstrs, maxFuncs, workers int, memo, multiPass, analysisCache bool) optfuzz.Campaign {
	var sem core.Options
	var pcfg *passes.Config
	gen := optfuzz.DefaultConfig(numInstrs)
	gen.EnumAttrs = true
	if fixed {
		sem = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
		gen.AllowUndef = false
		gen.AllowPoison = true
	} else {
		sem = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		gen.AllowUndef = true
	}
	gen.MaxFuncs = maxFuncs
	memoEntries := 0
	if !memo {
		memoEntries = -1
	}
	c := optfuzz.Campaign{
		Gen:         gen,
		Refine:      refine.DefaultConfig(sem, sem),
		Workers:     workers,
		MemoEntries: memoEntries,
	}
	if multiPass {
		for _, vp := range validationPasses() {
			run := vp.run
			c.Transforms = append(c.Transforms, optfuzz.NamedTransform{
				Name: vp.name,
				Fn:   func(f *ir.Func) { run(f, pcfg) },
			})
		}
	} else {
		pm := passes.O2().Instrument()
		pm.NoAnalysisCache = !analysisCache
		c.Pipeline = pm
		c.PipelineCfg = pcfg
	}
	return c
}

// runRow runs one campaign row, folding its telemetry into reg (when
// non-nil) with the row's labels stamped on every series the campaign
// does not already label more finely. One sub-registry per row keeps
// rows distinguishable in the process snapshot while unlabeled
// process-wide series still sum across rows.
func runRow(c *optfuzz.Campaign, reg *telemetry.Registry, labels ...string) optfuzz.Stats {
	var sub *telemetry.Registry
	if reg != nil {
		sub = telemetry.NewRegistry()
		c.Telemetry = sub
	}
	st := c.Run()
	reg.MergeLabeled(sub, labels...)
	return st
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// MeasurePipeline times one campaign configuration and reports
// validation throughput and memo effectiveness. reg, when non-nil,
// receives the campaign's telemetry labeled with the row coordinates.
func MeasurePipeline(fixed bool, numInstrs, maxFuncs, workers int, memo, multiPass, analysisCache bool, reg *telemetry.Registry) PipelineResult {
	c := pipelineCampaign(fixed, numInstrs, maxFuncs, workers, memo, multiPass, analysisCache)
	npasses := 1
	if multiPass {
		npasses = len(c.Transforms)
	}
	rowLabel := "o2"
	if multiPass {
		rowLabel = "validation-passes"
	}
	start := time.Now()
	st := runRow(&c, reg, "experiment", "pipeline", "pipeline", rowLabel,
		"workers", strconv.Itoa(workers), "memo", onOff(memo), "acache", onOff(multiPass || analysisCache))
	elapsed := time.Since(start)
	checks := st.Verified + st.Refuted + st.Inconclusive
	r := PipelineResult{
		Pipeline:      rowLabel,
		Workers:       workers,
		Memo:          memo,
		Passes:        npasses,
		Funcs:         st.Funcs,
		Checks:        checks,
		Refuted:       st.Refuted,
		Elapsed:       elapsed,
		ChecksPerSec:  float64(checks) / elapsed.Seconds(),
		MemoHits:      st.MemoHits,
		MemoLookups:   st.MemoLookups,
		HitRate:       st.HitRate(),
		AnalysisCache: multiPass || analysisCache,
	}
	if st.Opt != nil {
		a := st.Opt.Analysis()
		r.AnalysisComputes = a.Computes
		r.AnalysisHits = a.Hits
		r.FreezeElimRemoved = st.Opt.FreezeElimRemoved()
	}
	return r
}

// MeasureFreezeElim is the freeze-elim ablation: the same
// freeze-dialect campaign over a freeze-heavy opcode mix run through
// (a) freeze-elim alone, (b) the full -O2, and (c) the -O2 pipeline
// with freeze-elim removed. Every rewrite in every row is
// translation-validated by the campaign, so FreezeElimRemoved counts
// proven-sound deletions. The standalone row shows the dataflow
// analysis firing; the -O2 pair bounds the pipeline cost of carrying
// the pass. (On straight-line exhaustive functions the instcombine
// that precedes freeze-elim in -O2 already deletes the same freezes
// through the local operand walk — the flow-sensitive pass earns its
// keep on phis, loops, and dominated guards, covered by the FileCheck
// corpus rather than this generator.)
func MeasureFreezeElim(numInstrs, maxFuncs, workers int, reg *telemetry.Registry) []PipelineResult {
	fe, err := passes.NewPassManager("freeze-elim")
	if err != nil {
		panic(err) // registry invariant: the pass is always registered
	}
	configs := []struct {
		label string
		pm    *passes.PassManager
	}{
		{"freeze-elim", fe},
		{"o2", passes.O2()},
		{"o2-no-freeze-elim", passes.O2WithoutFreezeElim()},
	}
	rows := make([]PipelineResult, 0, len(configs))
	for _, cc := range configs {
		sem := core.FreezeOptions()
		gen := optfuzz.DefaultConfig(numInstrs)
		// Freeze-heavy menu: every function is a candidate for the
		// pass, so the ablation gap is signal, not noise.
		gen.Opcodes = []ir.Op{ir.OpFreeze, ir.OpAdd, ir.OpSelect, ir.OpICmp}
		gen.AllowUndef = false
		gen.AllowPoison = true
		gen.MaxFuncs = maxFuncs
		c := optfuzz.Campaign{
			Gen:         gen,
			Refine:      refine.DefaultConfig(sem, sem),
			Pipeline:    cc.pm.Instrument(),
			PipelineCfg: passes.DefaultFreezeConfig(),
			Workers:     workers,
		}
		start := time.Now()
		st := runRow(&c, reg, "experiment", "freeze-elim-ablation", "pipeline", cc.label)
		elapsed := time.Since(start)
		checks := st.Verified + st.Refuted + st.Inconclusive
		r := PipelineResult{
			Pipeline:      cc.label,
			Workers:       workers,
			Memo:          true,
			Passes:        1,
			Funcs:         st.Funcs,
			Checks:        checks,
			Refuted:       st.Refuted,
			Elapsed:       elapsed,
			ChecksPerSec:  float64(checks) / elapsed.Seconds(),
			MemoHits:      st.MemoHits,
			MemoLookups:   st.MemoLookups,
			HitRate:       st.HitRate(),
			AnalysisCache: true,
		}
		if st.Opt != nil {
			a := st.Opt.Analysis()
			r.AnalysisComputes = a.Computes
			r.AnalysisHits = a.Hits
			r.FreezeElimRemoved = st.Opt.FreezeElimRemoved()
		}
		rows = append(rows, r)
	}
	return rows
}

// MeasureWarmStart is the persistent-cache ablation: the same -O2
// freeze-dialect campaign run twice against one cache directory. The
// first (cold) run starts from an empty dir and writes its memo and
// lowering snapshots on exit; the second (warm) run loads them, so
// every source-side behaviour derivation the cold run performed is
// served from disk. The two rows come back as "o2-cold-cache" /
// "o2-warm-cache" with the disk counters filled in; by the snapshot
// soundness contract (stale files rejected wholesale, hits keyed on
// the full canonical text) the warm row's verdict counts are
// byte-identical to the cold row's — the ablation measures time, not
// findings. The returned error is the first persistence failure, if
// any; the rows are still valid as uncached measurements.
func MeasureWarmStart(numInstrs, maxFuncs, workers int, dir string, reg *telemetry.Registry) ([]PipelineResult, error) {
	var rows []PipelineResult
	var firstErr error
	for _, phase := range []string{"cold", "warm"} {
		c := pipelineCampaign(true, numInstrs, maxFuncs, workers, true, false, true)
		c.CacheDir = dir
		start := time.Now()
		st := runRow(&c, reg, "experiment", "warm-start", "phase", phase,
			"workers", strconv.Itoa(workers))
		elapsed := time.Since(start)
		if st.DiskErr != nil && firstErr == nil {
			firstErr = st.DiskErr
		}
		checks := st.Verified + st.Refuted + st.Inconclusive
		r := PipelineResult{
			Pipeline:         "o2-" + phase + "-cache",
			Workers:          workers,
			Memo:             true,
			Passes:           1,
			Funcs:            st.Funcs,
			Checks:           checks,
			Refuted:          st.Refuted,
			Elapsed:          elapsed,
			ChecksPerSec:     float64(checks) / elapsed.Seconds(),
			MemoHits:         st.MemoHits,
			MemoLookups:      st.MemoLookups,
			HitRate:          st.HitRate(),
			AnalysisCache:    true,
			DiskLoads:        st.DiskLoads,
			DiskHits:         st.DiskHits,
			DiskStaleRejects: st.DiskStaleRejects,
		}
		if st.Opt != nil {
			a := st.Opt.Analysis()
			r.AnalysisComputes = a.Computes
			r.AnalysisHits = a.Hits
			r.FreezeElimRemoved = st.Opt.FreezeElimRemoved()
		}
		rows = append(rows, r)
	}
	return rows, firstErr
}

// ReportWarmStart renders the cold/warm persistent-cache pair.
func ReportWarmStart(w io.Writer, rows []PipelineResult) {
	fmt.Fprintf(w, "== warm start: persistent cache directory (-O2, freeze dialect) ==\n")
	fmt.Fprintf(w, "%-16s %8s %8s %10s %11s %10s %10s %6s\n",
		"pipeline", "funcs", "checks", "elapsed", "checks/sec", "disk-loads", "disk-hits", "stale")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %8d %8d %10s %11.0f %10d %10d %6d\n",
			r.Pipeline, r.Funcs, r.Checks,
			r.Elapsed.Round(time.Millisecond), r.ChecksPerSec,
			r.DiskLoads, r.DiskHits, r.DiskStaleRejects)
	}
}

// ReportFreezeElim renders the ablation pair.
func ReportFreezeElim(w io.Writer, rows []PipelineResult) {
	fmt.Fprintf(w, "== freeze-elim ablation (freeze dialect, freeze-heavy mix) ==\n")
	fmt.Fprintf(w, "%-20s %8s %8s %10s %11s %10s\n",
		"pipeline", "funcs", "checks", "elapsed", "checks/sec", "fz-removed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %8d %8d %10s %11.0f %10d\n",
			r.Pipeline, r.Funcs, r.Checks,
			r.Elapsed.Round(time.Millisecond), r.ChecksPerSec, r.FreezeElimRemoved)
	}
}

// ReportPipeline renders the E11 table.
func ReportPipeline(w io.Writer, title string, rows []PipelineResult) {
	fmt.Fprintf(w, "== E11: pipeline throughput (%s) ==\n", title)
	fmt.Fprintf(w, "%8s %5s %7s %7s %8s %8s %10s %11s %9s\n",
		"workers", "memo", "acache", "passes", "funcs", "checks", "elapsed", "checks/sec", "hit-rate")
	for _, r := range rows {
		memo := "off"
		if r.Memo {
			memo = "on"
		}
		acache := "off"
		if r.AnalysisCache {
			acache = "on"
		}
		fmt.Fprintf(w, "%8d %5s %7s %7d %8d %8d %10s %11.0f %8.1f%%\n",
			r.Workers, memo, acache, r.Passes, r.Funcs, r.Checks,
			r.Elapsed.Round(time.Millisecond), r.ChecksPerSec, 100*r.HitRate)
	}
}
