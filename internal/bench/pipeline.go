package bench

import (
	"fmt"
	"io"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// PipelineResult is one row of the E11 throughput experiment: a §6
// validation campaign run on the sharded worker pool. Checks counts
// (candidate, pass) validations — for a multi-pass campaign that is
// Passes×Funcs, and checks/sec is the throughput number that makes
// rows with different pass counts comparable.
type PipelineResult struct {
	Workers      int
	Memo         bool
	Passes       int
	Funcs        int
	Checks       int
	Refuted      int
	Elapsed      time.Duration
	ChecksPerSec float64
	MemoHits     uint64
	MemoLookups  uint64
	HitRate      float64 // in [0, 1]

	// AnalysisCache is whether the pass manager served CFG/domtree/
	// loopinfo from its per-function cache (the cached-vs-uncached
	// experiment toggles it; multi-pass campaigns always cache).
	AnalysisCache bool
	// AnalysisComputes / AnalysisHits are the analysis manager's
	// counters summed across shards (only recorded for -O2 campaigns,
	// which run through an instrumented PassManager).
	AnalysisComputes uint64
	AnalysisHits     uint64
}

// pipelineCampaign builds the §6 validation campaign: -O2 alone, or
// all five validation passes (multiPass) sharing each shard's memo.
func pipelineCampaign(fixed bool, numInstrs, maxFuncs, workers int, memo, multiPass, analysisCache bool) optfuzz.Campaign {
	var sem core.Options
	var pcfg *passes.Config
	gen := optfuzz.DefaultConfig(numInstrs)
	gen.EnumAttrs = true
	if fixed {
		sem = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
		gen.AllowUndef = false
		gen.AllowPoison = true
	} else {
		sem = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		gen.AllowUndef = true
	}
	gen.MaxFuncs = maxFuncs
	memoEntries := 0
	if !memo {
		memoEntries = -1
	}
	c := optfuzz.Campaign{
		Gen:         gen,
		Refine:      refine.DefaultConfig(sem, sem),
		Workers:     workers,
		MemoEntries: memoEntries,
	}
	if multiPass {
		for _, vp := range validationPasses() {
			run := vp.run
			c.Transforms = append(c.Transforms, optfuzz.NamedTransform{
				Name: vp.name,
				Fn:   func(f *ir.Func) { run(f, pcfg) },
			})
		}
	} else {
		pm := passes.O2().Instrument()
		pm.NoAnalysisCache = !analysisCache
		c.Pipeline = pm
		c.PipelineCfg = pcfg
	}
	return c
}

// MeasurePipeline times one campaign configuration and reports
// validation throughput and memo effectiveness.
func MeasurePipeline(fixed bool, numInstrs, maxFuncs, workers int, memo, multiPass, analysisCache bool) PipelineResult {
	c := pipelineCampaign(fixed, numInstrs, maxFuncs, workers, memo, multiPass, analysisCache)
	npasses := 1
	if multiPass {
		npasses = len(c.Transforms)
	}
	start := time.Now()
	st := c.Run()
	elapsed := time.Since(start)
	checks := st.Verified + st.Refuted + st.Inconclusive
	r := PipelineResult{
		Workers:       workers,
		Memo:          memo,
		Passes:        npasses,
		Funcs:         st.Funcs,
		Checks:        checks,
		Refuted:       st.Refuted,
		Elapsed:       elapsed,
		ChecksPerSec:  float64(checks) / elapsed.Seconds(),
		MemoHits:      st.MemoHits,
		MemoLookups:   st.MemoLookups,
		HitRate:       st.HitRate(),
		AnalysisCache: multiPass || analysisCache,
	}
	if st.Opt != nil {
		a := st.Opt.Analysis()
		r.AnalysisComputes = a.Computes
		r.AnalysisHits = a.Hits
	}
	return r
}

// ReportPipeline renders the E11 table.
func ReportPipeline(w io.Writer, title string, rows []PipelineResult) {
	fmt.Fprintf(w, "== E11: pipeline throughput (%s) ==\n", title)
	fmt.Fprintf(w, "%8s %5s %7s %7s %8s %8s %10s %11s %9s\n",
		"workers", "memo", "acache", "passes", "funcs", "checks", "elapsed", "checks/sec", "hit-rate")
	for _, r := range rows {
		memo := "off"
		if r.Memo {
			memo = "on"
		}
		acache := "off"
		if r.AnalysisCache {
			acache = "on"
		}
		fmt.Fprintf(w, "%8d %5s %7s %7d %8d %8d %10s %11.0f %8.1f%%\n",
			r.Workers, memo, acache, r.Passes, r.Funcs, r.Checks,
			r.Elapsed.Round(time.Millisecond), r.ChecksPerSec, 100*r.HitRate)
	}
}
