package bench

import (
	"tameir/internal/core"
	"tameir/internal/telemetry"
)

// PublishProcessMetrics folds the process-wide collectors the bench
// experiments feed — the shared verified-run program cache and the
// bytecode lowering cache — into reg. Everything is scheduling-class:
// the experiments interleave their compiles through one cache, so the
// hit/miss split depends on which experiment (and which of its
// workers) got there first.
func PublishProcessMetrics(reg *telemetry.Registry) {
	core.SharedProgramCache().Stats().Publish(reg, telemetry.Scheduling)
	core.LowerCacheStats().Publish(reg, telemetry.Scheduling, "lowercache")
}
