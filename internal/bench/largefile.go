package bench

import (
	"fmt"
	"strings"
)

// The paper's third benchmark set is "five large single-file programs
// ranging from 7k to 754k lines of code each" (SQLite amalgamation
// etc.). Those sources are external; GenerateLargeProgram builds a
// deterministic synthetic stand-in: nFuncs functions drawn from a set
// of kernel shapes (arithmetic chains, loops over a shared global,
// branches, bit-field updates, calls into earlier functions), plus a
// main that calls them all and folds the results into a checksum.
//
// The generator is deterministic (a tiny LCG seeded by the function
// index), so baseline-vs-prototype compile measurements see the same
// program.
func GenerateLargeProgram(nFuncs int) string {
	var b strings.Builder
	b.WriteString("// synthetic large single-file program\n")
	b.WriteString("int shared[256];\n")
	b.WriteString("struct node { int tag : 6; unsigned flag : 2; int value; };\n")
	b.WriteString("struct node pool[64];\n")

	rng := uint32(0x2545F491)
	next := func(n uint32) uint32 {
		rng = rng*1664525 + 1013904223
		return (rng >> 16) % n
	}

	for i := 0; i < nFuncs; i++ {
		switch next(5) {
		case 0: // arithmetic chain
			fmt.Fprintf(&b, "int f%d(int a, int b) {\n", i)
			fmt.Fprintf(&b, "    int x = a * %d + b;\n", next(9)+1)
			steps := int(next(6)) + 3
			for s := 0; s < steps; s++ {
				switch next(4) {
				case 0:
					fmt.Fprintf(&b, "    x = x + (a >> %d);\n", next(5)+1)
				case 1:
					fmt.Fprintf(&b, "    x = x ^ (b << %d);\n", next(3)+1)
				case 2:
					fmt.Fprintf(&b, "    x = x * %d;\n", next(7)+1)
				default:
					fmt.Fprintf(&b, "    x = x - b + %d;\n", next(100))
				}
			}
			b.WriteString("    return x;\n}\n")
		case 1: // loop over the shared global
			fmt.Fprintf(&b, "int f%d(int a, int b) {\n", i)
			fmt.Fprintf(&b, "    int s = 0;\n")
			fmt.Fprintf(&b, "    for (int i = 0; i < %d; i += 1) {\n", next(60)+4)
			fmt.Fprintf(&b, "        shared[(i + a) & 255] += b %% %d + 1;\n", next(9)+1)
			fmt.Fprintf(&b, "        s += shared[i & 255];\n")
			b.WriteString("    }\n    return s;\n}\n")
		case 2: // branches
			fmt.Fprintf(&b, "int f%d(int a, int b) {\n", i)
			fmt.Fprintf(&b, "    if (a > b) return a - b;\n")
			fmt.Fprintf(&b, "    if (a < 0 && b > %d) return b / 3;\n", next(50))
			fmt.Fprintf(&b, "    if ((a & 1) == 0 || b == %d) return a * 2 + 1;\n", next(16))
			b.WriteString("    return a + b;\n}\n")
		case 3: // bit-field updates (the freeze-relevant shape)
			fmt.Fprintf(&b, "int f%d(int a, int b) {\n", i)
			fmt.Fprintf(&b, "    struct node *n = &pool[a & 63];\n")
			fmt.Fprintf(&b, "    n->tag = (a + b) & 31;\n")
			fmt.Fprintf(&b, "    n->flag = (unsigned)(b & 3);\n")
			fmt.Fprintf(&b, "    n->value += a;\n")
			b.WriteString("    return n->tag + (int)n->flag + n->value % 101;\n}\n")
		default: // call an earlier function
			fmt.Fprintf(&b, "int f%d(int a, int b) {\n", i)
			if i == 0 {
				b.WriteString("    return a ^ b;\n}\n")
				continue
			}
			callee := next(uint32(i))
			fmt.Fprintf(&b, "    return f%d(b %% 97, a %% 89) + %d;\n", callee, next(7))
			b.WriteString("}\n")
		}
	}

	b.WriteString("int main() {\n    int acc = 0;\n")
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b, "    acc += f%d(%d, %d);\n", i, int(next(200))-100, int(next(200))-100)
	}
	b.WriteString("    return acc;\n}\n")
	return b.String()
}
