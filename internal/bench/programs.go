// Package bench is the evaluation harness: it reproduces the paper's
// Section 7 measurements (compile time, compiler memory, object code
// size, run time — Figure 6) and the Section 6 validation experiment.
//
// SPEC CPU 2006 sources are proprietary, so each benchmark is a
// synthetic MinC workload named after the SPEC program whose dominant
// kernel it imitates (DESIGN.md documents the substitution). The
// floating-point (CFP) programs use fixed-point arithmetic — the
// paper's UB story is entirely about integers, and what matters for
// the measured deltas is the mix of loops, bit fields, and branches.
// The LNT-style micro benchmarks include "Stanford Queens" and
// "Shootout nestedloop", the two programs the paper calls out by name.
package bench

// Program is one benchmark.
type Program struct {
	Name string
	// Suite is "CINT", "CFP" or "LNT".
	Suite string
	// Src is the MinC source. main() returns a checksum.
	Src string
	// Want is the expected checksum (int32), used to detect
	// miscompilation during the run-time experiment.
	Want int32
}

// Programs is the benchmark corpus.
var Programs = []Program{
	// --- SPEC CINT 2006 stand-ins ---
	{Name: "perlbench", Suite: "CINT", Want: 8182, Src: `
// String-hash interpreter kernel: hash a corpus of byte "words" into
// buckets and walk the chains.
int buckets[64];
int chain[256];
int keys[256];
int main() {
    int nkeys = 200;
    for (int i = 0; i < 64; i += 1) buckets[i] = -1;
    for (int i = 0; i < nkeys; i += 1) {
        unsigned h = 2166136261;
        int len = 3 + i % 9;
        for (int j = 0; j < len; j += 1) {
            h = (h ^ (i * 31 + j * 7)) * 16777619;
        }
        int b = (int)(h % 64);
        keys[i] = (int)(h % 9973);
        chain[i] = buckets[b];
        buckets[b] = i;
    }
    int hits = 0; int probes = 0;
    for (int q = 0; q < 500; q += 1) {
        unsigned h = 2166136261;
        int i = q % nkeys;
        int len = 3 + i % 9;
        for (int j = 0; j < len; j += 1) {
            h = (h ^ (i * 31 + j * 7)) * 16777619;
        }
        int b = (int)(h % 64);
        int cur = buckets[b];
        while (cur >= 0) {
            probes += 1;
            if (keys[cur] == (int)(h % 9973)) { hits += 1; cur = -1; }
            else cur = chain[cur];
        }
    }
    return hits * 13 + probes;
}`},

	{Name: "bzip2", Suite: "CINT", Want: 20021, Src: `
// Run-length + move-to-front coding of a synthetic block.
char block[4096];
char mtf[256];
int main() {
    int n = 4096;
    unsigned seed = 12345;
    for (int i = 0; i < n; i += 1) {
        seed = seed * 1103515245 + 12345;
        int v = (int)((seed >> 16) % 7);
        block[i] = (char)(v * v);
    }
    for (int i = 0; i < 256; i += 1) mtf[i] = (char)i;
    int out = 0; int runs = 0;
    int i = 0;
    while (i < n) {
        char c = block[i];
        int run = 1;
        while (i + run < n && block[i + run] == c) run += 1;
        // move-to-front of c
        int pos = 0;
        while (mtf[pos] != c) pos += 1;
        for (int k = pos; k > 0; k -= 1) mtf[k] = mtf[k - 1];
        mtf[0] = c;
        out += pos + run % 5;
        runs += 1;
        i += run;
    }
    return out + runs;
}`},

	{Name: "gcc", Suite: "CINT", Want: 27602, Src: `
// Compiler-ish kernel: an RTL-like node pool with *bit fields* (the
// paper: the gcc benchmark had 3993 freeze instructions, 0.29% of IR,
// "since it contains a large number of bit-field operations").
struct rtx {
    int code : 8;
    int mode : 5;
    unsigned volatil : 1;
    unsigned in_struct : 1;
    unsigned used : 1;
    int arg0;
    int arg1;
};
struct rtx pool[512];
int main() {
    int n = 512;
    for (int i = 0; i < n; i += 1) {
        pool[i].code = i % 97;
        pool[i].mode = i % 29;
        pool[i].volatil = (unsigned)(i % 3 == 0);
        pool[i].in_struct = (unsigned)(i % 5 == 0);
        pool[i].used = 0;
        pool[i].arg0 = i;
        pool[i].arg1 = i * 2;
    }
    // "Optimization" passes over the pool.
    int folded = 0;
    for (int pass = 0; pass < 4; pass += 1) {
        for (int i = 0; i + 1 < n; i += 1) {
            if (pool[i].code == pool[i + 1].code && pool[i].mode == pool[i + 1].mode) {
                pool[i].used = 1;
                pool[i].arg1 = pool[i].arg0 + pool[i + 1].arg0;
                folded += 1;
            }
            if (pool[i].volatil == 0 && pool[i].in_struct != 0) {
                pool[i].mode = (pool[i].mode + 1) % 29;
            }
        }
    }
    int sum = 0;
    for (int i = 0; i < n; i += 1) {
        sum += pool[i].code + pool[i].mode + (int)pool[i].used + pool[i].arg1 % 17;
    }
    return sum + folded;
}`},

	{Name: "mcf", Suite: "CINT", Want: 620, Src: `
// Bellman-Ford relaxation over a synthetic flow network.
int dist[64];
int head[64];
int to[256];
int cost[256];
int nexte[256];
int main() {
    int nv = 64; int ne = 0;
    for (int i = 0; i < nv; i += 1) head[i] = -1;
    for (int i = 0; i < nv; i += 1) {
        for (int k = 1; k <= 3; k += 1) {
            int j = (i * 7 + k * 11) % nv;
            to[ne] = j;
            cost[ne] = 1 + (i * k) % 9;
            nexte[ne] = head[i];
            head[i] = ne;
            ne += 1;
        }
    }
    for (int i = 0; i < nv; i += 1) dist[i] = 1000000;
    dist[0] = 0;
    for (int it = 0; it < nv; it += 1) {
        int changed = 0;
        for (int u = 0; u < nv; u += 1) {
            if (dist[u] == 1000000) continue;
            int e = head[u];
            while (e >= 0) {
                int nd = dist[u] + cost[e];
                if (nd < dist[to[e]]) { dist[to[e]] = nd; changed = 1; }
                e = nexte[e];
            }
        }
        if (changed == 0) it = nv;
    }
    int s = 0;
    for (int i = 0; i < nv; i += 1) s += dist[i];
    return s;
}`},

	{Name: "gobmk", Suite: "CINT", Want: 3072, Src: `
// Board-scan kernel: liberties-like counting on a 19x19 grid.
char board[361];
int main() {
    for (int i = 0; i < 361; i += 1) board[i] = (char)((i * i + 3 * i) % 3);
    int score = 0;
    for (int gen = 0; gen < 8; gen += 1) {
        for (int r = 1; r < 18; r += 1) {
            for (int c = 1; c < 18; c += 1) {
                int idx = r * 19 + c;
                int me = board[idx];
                int libs = 0;
                if (board[idx - 1] == 0) libs += 1;
                if (board[idx + 1] == 0) libs += 1;
                if (board[idx - 19] == 0) libs += 1;
                if (board[idx + 19] == 0) libs += 1;
                if (me != 0 && libs == 0) board[idx] = 0;
                score += libs * me;
            }
        }
    }
    return score;
}`},

	{Name: "hmmer", Suite: "CINT", Want: 42544, Src: `
// Viterbi-style dynamic programming over a profile.
int vrow[128];
int prow[128];
int main() {
    int m = 128;
    for (int j = 0; j < m; j += 1) prow[j] = (j * 3) % 23;
    int best = 0;
    for (int i = 1; i < 96; i += 1) {
        for (int j = 1; j < m; j += 1) {
            int match = prow[j - 1] + ((i * j) % 7);
            int del = prow[j] - 2;
            int ins = vrow[j - 1] - 1;
            int v = match;
            if (del > v) v = del;
            if (ins > v) v = ins;
            vrow[j] = v;
            if (v > best) best = v;
        }
        for (int j = 0; j < m; j += 1) prow[j] = vrow[j];
    }
    int s = 0;
    for (int j = 0; j < m; j += 1) s += vrow[j] % 97;
    return best * 100 + s;
}`},

	{Name: "sjeng", Suite: "CINT", Want: 2829, Src: `
// Alpha-beta-ish game tree search with a hand-rolled stack.
int stackv[512];
int main() {
    int sp = 0;
    stackv[sp] = 1; sp += 1;
    unsigned seed = 99;
    int nodes = 0; int best = -100000;
    while (sp > 0 && nodes < 4000) {
        sp -= 1;
        int pos = stackv[sp];
        nodes += 1;
        seed = seed * 69069 + 1;
        int eval = (int)(seed % 2001) - 1000 + pos % 13;
        if (eval > best) best = eval;
        int depth = 0;
        int p = pos;
        while (p > 1) { p /= 4; depth += 1; }
        if (depth < 5) {
            for (int mv = 0; mv < 3; mv += 1) {
                if (sp < 512) { stackv[sp] = pos * 4 + mv; sp += 1; }
            }
        }
    }
    return best + nodes * 5;
}`},

	{Name: "libquantum", Suite: "CINT", Want: 98416, Src: `
// Quantum gate simulation on basis-state bitmasks.
unsigned reg_state[256];
int main() {
    int n = 256;
    for (int i = 0; i < n; i += 1) reg_state[i] = (unsigned)i;
    // Toffoli / CNOT / Hadamard-mask cascades.
    for (int pass = 0; pass < 16; pass += 1) {
        int ctrl = pass % 7;
        int tgt = (pass * 3 + 1) % 7;
        for (int i = 0; i < n; i += 1) {
            unsigned s = reg_state[i];
            if ((s >> ctrl & 1) != 0) s = s ^ ((unsigned)1 << tgt);
            s = s ^ (s >> 3);
            reg_state[i] = s & 0xff;
        }
    }
    int sum = 0;
    for (int i = 0; i < n; i += 1) sum += (int)reg_state[i] * (i % 5 + 1);
    return sum;
}
`},

	{Name: "h264ref", Suite: "CINT", Want: 318912, Src: `
// Sum-of-absolute-differences block search.
char frame0[1024];
char frame1[1024];
int main() {
    for (int i = 0; i < 1024; i += 1) {
        frame0[i] = (char)((i * 7) % 251);
        frame1[i] = (char)((i * 7 + i / 32) % 251);
    }
    int bestTotal = 0;
    for (int by = 0; by < 3; by += 1) {
        for (int bx = 0; bx < 3; bx += 1) {
            int best = 1000000;
            for (int dy = 0; dy < 2; dy += 1) {
                for (int dx = 0; dx < 2; dx += 1) {
                    int sad = 0;
                    for (int y = 0; y < 8; y += 1) {
                        for (int x = 0; x < 8; x += 1) {
                            int a = frame0[(by * 8 + y) * 32 + bx * 8 + x];
                            int b = frame1[(by * 8 + y + dy) * 32 + bx * 8 + x + dx];
                            int d = a - b;
                            if (d < 0) d = -d;
                            sad += d;
                        }
                    }
                    if (sad < best) best = sad;
                }
            }
            bestTotal += best * 64;
        }
    }
    return bestTotal;
}`},

	{Name: "omnetpp", Suite: "CINT", Want: 25885, Src: `
// Discrete event simulation with a binary-heap event queue.
int heapt[512];
int heapid[512];
int hn;
int heap_push(int t, int id) {
    hn += 1;
    int c = hn;
    heapt[c] = t; heapid[c] = id;
    while (c > 1 && heapt[c / 2] > heapt[c]) {
        int tt = heapt[c]; heapt[c] = heapt[c / 2]; heapt[c / 2] = tt;
        int ti = heapid[c]; heapid[c] = heapid[c / 2]; heapid[c / 2] = ti;
        c /= 2;
    }
    return 0;
}
int heap_pop() {
    int top = heapt[1] * 1024 + heapid[1];
    heapt[1] = heapt[hn]; heapid[1] = heapid[hn]; hn -= 1;
    int c = 1;
    while (1) {
        int l = c * 2;
        if (l > hn) break;
        int sm = l;
        if (l + 1 <= hn && heapt[l + 1] < heapt[l]) sm = l + 1;
        if (heapt[sm] >= heapt[c]) break;
        int tt = heapt[c]; heapt[c] = heapt[sm]; heapt[sm] = tt;
        int ti = heapid[c]; heapid[c] = heapid[sm]; heapid[sm] = ti;
        c = sm;
    }
    return top;
}
int main() {
    unsigned seed = 7;
    hn = 0;
    for (int i = 0; i < 20; i += 1) {
        seed = seed * 1103515245 + 12345;
        heap_push((int)(seed % 1000), i);
    }
    int processed = 0; int now = 0;
    while (hn > 0 && processed < 5000) {
        int ev = heap_pop();
        now = ev / 1024;
        int id = ev % 1024;
        processed += 1;
        if (processed % 3 != 0 && hn < 500) {
            seed = seed * 69069 + 1;
            heap_push(now + 1 + (int)(seed % 50), id);
        }
    }
    return now * 25 + processed;
}`},

	{Name: "astar", Suite: "CINT", Want: 1583, Src: `
// Grid path search with a cost frontier (Dijkstra-flavoured).
int gridw[256];
int costg[256];
int main() {
    int w = 16;
    for (int i = 0; i < 256; i += 1) {
        gridw[i] = 1 + (i * 31 % 7);
        costg[i] = 1000000;
    }
    costg[0] = 0;
    // Sweep relaxations (no heap: bounded passes).
    for (int pass = 0; pass < 24; pass += 1) {
        for (int y = 0; y < w; y += 1) {
            for (int x = 0; x < w; x += 1) {
                int i = y * w + x;
                int c = costg[i];
                if (x > 0 && costg[i - 1] + gridw[i] < c) c = costg[i - 1] + gridw[i];
                if (x < w - 1 && costg[i + 1] + gridw[i] < c) c = costg[i + 1] + gridw[i];
                if (y > 0 && costg[i - w] + gridw[i] < c) c = costg[i - w] + gridw[i];
                if (y < w - 1 && costg[i + w] + gridw[i] < c) c = costg[i + w] + gridw[i];
                costg[i] = c;
            }
        }
    }
    int s = 0;
    for (int i = 0; i < 256; i += 17) s += costg[i];
    return s + costg[255] * 10;
}`},

	{Name: "xalancbmk", Suite: "CINT", Want: 24580, Src: `
// Tree transformation: preorder renumbering + attribute propagation
// over an implicit binary tree in arrays.
int tag[1024];
int attr[1024];
int out[1024];
int main() {
    int n = 1023;
    for (int i = 1; i <= n; i += 1) {
        tag[i] = i % 11;
        attr[i] = (i * 13) % 101;
    }
    // Propagate attributes down: child inherits transformed parent.
    for (int i = 2; i <= n; i += 1) {
        int parent = i / 2;
        if (tag[i] == tag[parent]) attr[i] += attr[parent] / 2;
        else attr[i] ^= attr[parent] & 0x3f;
    }
    // Preorder walk with an explicit stack, emitting matched nodes.
    int stk[64];
    int sp = 0; int emitted = 0; int acc = 0;
    stk[sp] = 1; sp += 1;
    while (sp > 0) {
        sp -= 1;
        int node = stk[sp];
        if (tag[node] % 3 == 1) {
            out[emitted] = attr[node];
            acc += attr[node];
            emitted += 1;
        }
        int l = node * 2;
        int r = node * 2 + 1;
        if (r <= n && sp < 63) { stk[sp] = r; sp += 1; }
        if (l <= n && sp < 63) { stk[sp] = l; sp += 1; }
    }
    return acc + emitted * 7;
}`},

	// --- SPEC CFP 2006 stand-ins (fixed-point) ---
	{Name: "milc", Suite: "CFP", Want: 191353, Src: `
// SU(3)-flavoured 3x3 fixed-point matrix multiplications on a lattice.
long lat[288]; // 32 sites x 9 entries, Q16 fixed point
int main() {
    for (int i = 0; i < 288; i += 1) lat[i] = ((long)(i % 17) << 16) / 16;
    long tr = 0;
    for (int it = 0; it < 12; it += 1) {
        for (int s = 0; s < 31; s += 1) {
            // c = a * b (3x3 fixed point), a = site s, b = site s+1.
            long c[9];
            for (int i = 0; i < 3; i += 1) {
                for (int j = 0; j < 3; j += 1) {
                    long acc = 0;
                    for (int k = 0; k < 3; k += 1) {
                        acc += (lat[s * 9 + i * 3 + k] * lat[(s + 1) * 9 + k * 3 + j]) >> 16;
                    }
                    c[i * 3 + j] = acc;
                }
            }
            for (int e = 0; e < 9; e += 1) lat[s * 9 + e] = (lat[s * 9 + e] + (c[e] & 0xfffff)) / 2;
        }
    }
    for (int s = 0; s < 32; s += 1) tr += lat[s * 9] + lat[s * 9 + 4] + lat[s * 9 + 8];
    return (int)(tr >> 8);
}`},

	{Name: "namd", Suite: "CFP", Want: 7216, Src: `
// Pairwise force accumulation (n-body, Q16 fixed point).
long px[64]; long py[64];
long fx[64]; long fy[64];
int main() {
    for (int i = 0; i < 64; i += 1) {
        px[i] = ((long)(i % 8) << 16) + i * 100;
        py[i] = ((long)(i / 8) << 16) + i * 57;
    }
    for (int step = 0; step < 4; step += 1) {
        for (int i = 0; i < 64; i += 1) { fx[i] = 0; fy[i] = 0; }
        for (int i = 0; i < 64; i += 1) {
            for (int j = i + 1; j < 64; j += 1) {
                long dx = px[j] - px[i];
                long dy = py[j] - py[i];
                long r2 = ((dx * dx) >> 16) + ((dy * dy) >> 16) + 256;
                long f = ((long)1 << 28) / r2;
                fx[i] += (f * dx) >> 20; fy[i] += (f * dy) >> 20;
                fx[j] -= (f * dx) >> 20; fy[j] -= (f * dy) >> 20;
            }
        }
        for (int i = 0; i < 64; i += 1) { px[i] += fx[i] >> 6; py[i] += fy[i] >> 6; }
    }
    long s = 0;
    for (int i = 0; i < 64; i += 1) s += (px[i] + py[i]) >> 12;
    return (int)s;
}`},

	{Name: "dealII", Suite: "CFP", Want: 48181, Src: `
// 5-point stencil relaxation (finite elements, Q8 fixed point).
int u[1024];
int unew[1024];
int main() {
    int w = 32;
    for (int i = 0; i < 1024; i += 1) u[i] = (i % 7) << 8;
    for (int it = 0; it < 20; it += 1) {
        for (int y = 1; y < w - 1; y += 1) {
            for (int x = 1; x < w - 1; x += 1) {
                int i = y * w + x;
                unew[i] = (u[i - 1] + u[i + 1] + u[i - w] + u[i + w]) / 4;
            }
        }
        for (int y = 1; y < w - 1; y += 1)
            for (int x = 1; x < w - 1; x += 1)
                u[y * w + x] = unew[y * w + x];
    }
    int s = 0;
    for (int i = 0; i < 1024; i += 1) s += u[i] >> 4;
    return s;
}`},

	{Name: "soplex", Suite: "CFP", Want: 817998, Src: `
// Simplex-style pivoting on a small fixed-point tableau (8x12).
long tab[96];
int main() {
    int rows = 8; int cols = 12;
    for (int r = 0; r < rows; r += 1)
        for (int c = 0; c < cols; c += 1)
            tab[r * cols + c] = (long)((r * 5 + c * 3) % 13 + 1) << 12;
    for (int pivot = 0; pivot < 6; pivot += 1) {
        int pc = 0; long bestv = 0;
        for (int c = 0; c < cols; c += 1)
            if (tab[(rows - 1) * cols + c] > bestv) { bestv = tab[(rows - 1) * cols + c]; pc = c; }
        int pr = pivot % rows;
        long pv = tab[pr * cols + pc];
        if (pv == 0) pv = 1;
        for (int r = 0; r < rows; r += 1) {
            if (r == pr) continue;
            long factor = (tab[r * cols + pc] << 12) / pv;
            for (int c = 0; c < cols; c += 1)
                tab[r * cols + c] -= (factor * tab[pr * cols + c]) >> 12;
        }
    }
    long s = 0;
    for (int r = 0; r < rows; r += 1)
        for (int c = 0; c < cols; c += 1)
            s += tab[r * cols + c] >> 10;
    int si = (int)s;
    if (si < 0) si = -si;
    return si;
}`},

	{Name: "povray", Suite: "CFP", Want: 27472, Src: `
// Ray-sphere intersection over a pixel grid (Q12 fixed point).
int image[256];
int main() {
    long cx = 8 << 12; long cy = 8 << 12; long cz = 20 << 12;
    long r2 = (long)36 << 12;
    int hits = 0;
    for (int py = 0; py < 16; py += 1) {
        for (int px = 0; px < 16; px += 1) {
            long dx = ((long)px << 12) - cx;
            long dy = ((long)py << 12) - cy;
            // Ray along z: closest approach distance^2 in xy plane.
            long d2 = ((dx * dx) >> 12) + ((dy * dy) >> 12);
            if (d2 < r2) {
                long depth = cz - isqrt(((r2 - d2) << 12));
                image[py * 16 + px] = (int)(depth >> 8);
                hits += 1;
            } else {
                image[py * 16 + px] = 0;
            }
        }
    }
    int s = hits * 100;
    for (int i = 0; i < 256; i += 1) s += image[i] & 0xff;
    return s;
}
long isqrt(long v) {
    long x = v; long y = 1 << 12;
    for (int i = 0; i < 16; i += 1) {
        if (x <= y) i = 16;
        else { x = (x + y) / 2; y = (v << 12) / x; }
    }
    return x;
}`},

	{Name: "lbm", Suite: "CFP", Want: 146436, Src: `
// Lattice-Boltzmann-ish streaming + collision on a 1D lattice.
long f0[256]; long f1[256]; long f2[256];
int main() {
    for (int i = 0; i < 256; i += 1) {
        f0[i] = (long)4 << 10;
        f1[i] = (long)((i % 5) + 1) << 10;
        f2[i] = (long)((i % 3) + 1) << 10;
    }
    for (int t = 0; t < 16; t += 1) {
        // Stream.
        for (int i = 255; i > 0; i -= 1) f1[i] = f1[i - 1];
        for (int i = 0; i < 255; i += 1) f2[i] = f2[i + 1];
        // Collide toward equilibrium.
        for (int i = 0; i < 256; i += 1) {
            long rho = f0[i] + f1[i] + f2[i];
            long eq = rho / 3;
            f0[i] += (eq - f0[i]) / 4;
            f1[i] += (eq - f1[i]) / 4;
            f2[i] += (eq - f2[i]) / 4;
        }
    }
    long m = 0;
    for (int i = 0; i < 256; i += 1) m += f0[i] + f1[i] + f2[i];
    return (int)(m >> 4);
}`},

	{Name: "sphinx3", Suite: "CFP", Want: 65173, Src: `
// Gaussian-mixture scoring: dot products + max over senones.
int feat[40];
int mean[320]; // 8 senones x 40 dims
int main() {
    for (int d = 0; d < 40; d += 1) feat[d] = (d * 17) % 61;
    for (int i = 0; i < 320; i += 1) mean[i] = (i * 23) % 61;
    int total = 0;
    for (int frame = 0; frame < 50; frame += 1) {
        int best = -1000000;
        for (int s = 0; s < 8; s += 1) {
            int score = 0;
            for (int d = 0; d < 40; d += 1) {
                int diff = feat[d] - mean[s * 40 + d] + frame % 3;
                score -= diff * diff >> 2;
            }
            if (score > best) best = score;
        }
        total += best / 4;
        for (int d = 0; d < 40; d += 1) feat[d] = (feat[d] + frame) % 61;
    }
    if (total < 0) total = -total;
    return total;
}`},

	// --- LNT-style micro benchmarks ---
	{Name: "queens", Suite: "LNT", Want: 73784, Src: `
// Stanford Queens — the paper's register-allocation anecdote (§7.2).
int rowsOk[8];
int diag1[15];
int diag2[15];
int solutions;
int place(int col) {
    if (col == 8) { solutions += 1; return 0; }
    for (int row = 0; row < 8; row += 1) {
        if (rowsOk[row] == 0 && diag1[row + col] == 0 && diag2[row - col + 7] == 0) {
            rowsOk[row] = 1; diag1[row + col] = 1; diag2[row - col + 7] = 1;
            place(col + 1);
            rowsOk[row] = 0; diag1[row + col] = 0; diag2[row - col + 7] = 0;
        }
    }
    return 0;
}
int main() {
    for (int rep = 0; rep < 8; rep += 1) {
        solutions = 0;
        place(0);
    }
    return solutions * 802; // 92 solutions
}`},

	{Name: "nestedloop", Suite: "LNT", Want: 2097152, Src: `
// Shootout nestedloop — the paper's +19% compile-time outlier, where
// jump threading failed to kick in because of freeze.
int main() {
    int n = 8;
    int x = 0;
    for (int a = 0; a < n; a += 1)
        for (int b = 0; b < n; b += 1)
            for (int c = 0; c < n; c += 1)
                for (int d = 0; d < n; d += 1)
                    for (int e = 0; e < n; e += 1)
                        for (int f = 0; f < n; f += 1)
                            for (int g = 0; g < n; g += 1)
                                x += 1;
    return x;
}`},

	{Name: "sieve", Suite: "LNT", Want: 1029, Src: `
char composite[8192];
int main() {
    int n = 8192;
    int count = 0;
    for (int i = 2; i < n; i += 1) {
        if (composite[i] == 0) {
            count += 1;
            for (int j = i + i; j < n; j += i) composite[j] = 1;
        }
    }
    return count + composite[100];
}`},

	{Name: "ackermann", Suite: "LNT", Want: 502, Src: `
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main() { return ack(2, 3) * 49 + ack(3, 3); }`},

	{Name: "matmul", Suite: "LNT", Want: 48575, Src: `
int a[256]; int b[256]; int c[256];
int main() {
    int n = 16;
    for (int i = 0; i < 256; i += 1) { a[i] = i % 9; b[i] = (i * 3) % 7; }
    for (int i = 0; i < n; i += 1)
        for (int j = 0; j < n; j += 1) {
            int acc = 0;
            for (int k = 0; k < n; k += 1) acc += a[i * n + k] * b[k * n + j];
            c[i * n + j] = acc;
        }
    int s = 0;
    for (int i = 0; i < 256; i += 1) s += c[i];
    return s;
}`},

	{Name: "bitfields", Suite: "LNT", Want: 24320, Src: `
// Stress the §5.3 lowering: dense bit-field read-modify-write.
struct packet {
    unsigned version : 4;
    unsigned ihl : 4;
    unsigned dscp : 6;
    unsigned ecn : 2;
    int length;
};
struct packet queue[128];
int main() {
    for (int i = 0; i < 128; i += 1) {
        queue[i].version = 4;
        queue[i].ihl = (unsigned)(5 + i % 3);
        queue[i].dscp = (unsigned)(i % 64);
        queue[i].ecn = (unsigned)(i % 4);
        queue[i].length = 20 + i;
    }
    int s = 0;
    for (int pass = 0; pass < 4; pass += 1) {
        for (int i = 0; i < 128; i += 1) {
            queue[i].dscp = (queue[i].dscp + 1) & 63;
            if (queue[i].ecn == 3) queue[i].ecn = 0;
            s += (int)queue[i].version + (int)queue[i].ihl + (int)queue[i].dscp + queue[i].length % 13;
        }
    }
    return s;
}`},
}

// ByName returns the program with the given name, or nil.
func ByName(name string) *Program {
	for i := range Programs {
		if Programs[i].Name == name {
			return &Programs[i]
		}
	}
	return nil
}
