package bench

import (
	"reflect"
	"strings"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/refine"
)

// The parallel pipeline must agree with the serial §6 campaign: same
// function count, same refuted count, independent of worker count.
func TestPipelineMatchesSerial(t *testing.T) {
	serial := MeasurePipeline(true, 1, 0, 1, true, false, true, nil)
	if serial.Funcs == 0 {
		t.Fatal("pipeline validated no functions")
	}
	if serial.Refuted != 0 {
		t.Errorf("fixed passes refuted %d functions", serial.Refuted)
	}
	parallel := MeasurePipeline(true, 1, 0, 4, true, false, true, nil)
	if parallel.Funcs != serial.Funcs || parallel.Refuted != serial.Refuted {
		t.Errorf("workers=4 (%d funcs, %d refuted) diverges from serial (%d funcs, %d refuted)",
			parallel.Funcs, parallel.Refuted, serial.Funcs, serial.Refuted)
	}
	if serial.MemoLookups == 0 || serial.HitRate <= 0 {
		t.Errorf("memo ineffective: %d lookups, %.2f hit rate", serial.MemoLookups, serial.HitRate)
	}

	var sb strings.Builder
	ReportPipeline(&sb, "test", []PipelineResult{serial, parallel})
	if !strings.Contains(sb.String(), "checks/sec") {
		t.Errorf("report incomplete:\n%s", sb.String())
	}
}

// ValidateParallel over the full space must reproduce the serial E3
// table exactly — rows, verdicts, and first counterexamples — while
// hitting the memo on the repeated source derivations.
func TestValidateParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("validation is slow")
	}
	for _, fixed := range []bool{true, false} {
		serial := Validate(fixed, 1, 0, nil)
		rows, st := ValidateParallel(fixed, 1, 0, 4, nil)
		if !reflect.DeepEqual(serial, rows) {
			t.Errorf("fixed=%v: parallel rows diverge\nserial:   %+v\nparallel: %+v",
				fixed, serial, rows)
		}
		if st.HitRate() < 0.5 {
			t.Errorf("fixed=%v: multi-pass hit rate %.1f%%, want >50%%: the five passes should share source sets",
				fixed, 100*st.HitRate())
		}
	}
}

// benchPair is a representative Check workload: a real InstCombine
// rewrite over i2 with full input-space enumeration.
var benchSrc = ir.MustParseFunc(`define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add nsw i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`)

var benchTgt = ir.MustParseFunc(`define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`)

func BenchmarkRefineCheck(b *testing.B) {
	cfg := refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions())
	b.Run("nomemo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refine.Check(benchSrc, benchTgt, cfg)
		}
	})
	b.Run("memo", func(b *testing.B) {
		mcfg := cfg
		mcfg.Memo = refine.NewMemo(0)
		for i := 0; i < b.N; i++ {
			refine.Check(benchSrc, benchTgt, mcfg)
		}
	})
	b.Run("oracle-reuse", func(b *testing.B) {
		ocfg := cfg
		ocfg.Oracle = core.NewEnumOracle(ocfg.MaxChoices, ocfg.MaxFanout)
		for i := 0; i < b.N; i++ {
			refine.Check(benchSrc, benchTgt, ocfg)
		}
	})
}

func BenchmarkExhaustive(b *testing.B) {
	cfg := optfuzz.DefaultConfig(2)
	cfg.MaxFuncs = 2000
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optfuzz.Exhaustive(cfg, func(*ir.Func) bool { return true })
		}
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 0; s < optfuzz.NumShards(cfg); s++ {
				optfuzz.ExhaustiveShard(cfg, s, func(*ir.Func) bool { return true })
			}
		}
	})
}

// BenchmarkCampaign is the end-to-end number the tentpole targets:
// checks per second through generate → transform → Check.
func BenchmarkCampaign(b *testing.B) {
	for _, tc := range []struct {
		name      string
		workers   int
		memo      bool
		multiPass bool
	}{
		{"o2/workers=1/memo=off", 1, false, false},
		{"o2/workers=1/memo=on", 1, true, false},
		{"5pass/workers=1/memo=off", 1, false, true},
		{"5pass/workers=1/memo=on", 1, true, true},
		{"5pass/workers=4/memo=on", 4, true, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := MeasurePipeline(true, 1, 0, tc.workers, tc.memo, tc.multiPass, true, nil)
				b.ReportMetric(r.ChecksPerSec, "checks/sec")
			}
		})
	}
}
