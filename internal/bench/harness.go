package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"tameir/internal/ir"
	"tameir/internal/mi"
	"tameir/internal/minc"
	"tameir/internal/passes"
	"tameir/internal/target"
)

// Variant is one compiler configuration. The evaluation compares
// Baseline (the legacy compiler the paper forked from) against
// Prototype (the paper's freeze prototype).
type Variant struct {
	Name    string
	MincCfg minc.Config
	PassCfg *passes.Config
}

// Baseline is the pre-paper compiler: legacy undef+poison semantics,
// historical pass behaviour, no freeze anywhere.
func Baseline() Variant {
	return Variant{
		Name:    "baseline",
		MincCfg: minc.Config{FreezeBitfieldLoads: false},
		PassCfg: passes.DefaultLegacyConfig(),
	}
}

// Prototype is the paper's prototype: freeze semantics, fixed passes,
// freeze-aware optimizations, frontend freezing bit-field loads.
func Prototype() Variant {
	return Variant{
		Name:    "prototype",
		MincCfg: minc.Config{FreezeBitfieldLoads: true},
		PassCfg: passes.DefaultFreezeConfig(),
	}
}

// FreezeBlindPrototype is the prototype with FreezeAware disabled: the
// optimizers conservatively give up around freeze, reproducing the
// early-prototype regressions §6 describes (blocked jump threading,
// unsunk compares).
func FreezeBlindPrototype() Variant {
	cfg := passes.DefaultFreezeConfig()
	cfg.FreezeAware = false
	return Variant{
		Name:    "prototype-freezeblind",
		MincCfg: minc.Config{FreezeBitfieldLoads: true},
		PassCfg: cfg,
	}
}

// Measurement is one (program, variant) data point.
type Measurement struct {
	Program string
	Suite   string
	Variant string

	CompileNs  int64  // median frontend+O2+backend wall time
	AllocBytes uint64 // compiler allocations during one compile

	IRInstrs    int
	FreezeCount int
	ObjectBytes uint32
	Cycles      uint64
	SimInstrs   uint64
	Checksum    int32
	ChecksumOK  bool
	SimError    string
}

// Compile runs the full pipeline once and returns the optimized module
// and machine program.
func Compile(p Program, v Variant) (*ir.Module, *target.Program, error) {
	mod, err := minc.CompileString(p.Src, v.MincCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: frontend: %w", p.Name, err)
	}
	passes.O2().Run(mod, v.PassCfg)
	prog, err := mi.CompileModule(mod)
	if err != nil {
		return mod, nil, fmt.Errorf("%s: backend: %w", p.Name, err)
	}
	return mod, prog, nil
}

// Measure compiles p under v (reps times, minimum wall time) and runs
// it on the simulator.
func Measure(p Program, v Variant, reps int) (Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	m := Measurement{Program: p.Name, Suite: p.Suite, Variant: v.Name}

	var mod *ir.Module
	var prog *target.Program
	times := make([]int64, 0, reps)
	var before, after runtime.MemStats
	for i := 0; i < reps; i++ {
		// GC between repetitions so collector pauses from a previous
		// compile do not land in this one; take the minimum across
		// repetitions, the standard noise-resistant estimator for
		// short deterministic work.
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		var err error
		mod, prog, err = Compile(p, v)
		d := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&after)
		if err != nil {
			return m, err
		}
		times = append(times, d)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	m.CompileNs = times[0]
	m.AllocBytes = after.TotalAlloc - before.TotalAlloc

	for _, f := range mod.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			m.IRInstrs++
			if in.Op == ir.OpFreeze {
				m.FreezeCount++
			}
		})
	}
	m.ObjectBytes = target.ProgramSize(prog)

	mach := target.NewMachine(prog)
	ret, err := mach.Run(prog.FuncByName("main"))
	if err != nil {
		m.SimError = err.Error()
		return m, nil
	}
	m.Cycles = mach.Cycles
	m.SimInstrs = mach.Instrs
	m.Checksum = int32(uint32(ret))
	m.ChecksumOK = m.Checksum == p.Want
	return m, nil
}

// MeasureAll measures every program under a variant.
func MeasureAll(v Variant, reps int) ([]Measurement, error) {
	var out []Measurement
	for _, p := range Programs {
		m, err := Measure(p, v, reps)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// pct returns the percentage change from base to test (positive =
// improvement when lowerIsBetter).
func pct(base, test float64, lowerIsBetter bool) float64 {
	if base == 0 {
		return 0
	}
	ch := (test - base) / base * 100
	if lowerIsBetter {
		return -ch
	}
	return ch
}

// Report renders the paper's §7.2 measurement categories for a
// baseline/prototype pair. Positive percentages mean the prototype
// improved (matching Figure 6's sign convention: "positive values
// indicate that performance improved").
func Report(w io.Writer, base, proto []Measurement) {
	index := map[string]Measurement{}
	for _, m := range base {
		index[m.Program] = m
	}

	fmt.Fprintf(w, "== E4: compile time (baseline vs prototype; positive %% = prototype faster) ==\n")
	fmt.Fprintf(w, "%-12s %-5s %12s %12s %8s\n", "benchmark", "suite", "base(µs)", "proto(µs)", "Δ%")
	for _, m := range proto {
		b := index[m.Program]
		fmt.Fprintf(w, "%-12s %-5s %12.0f %12.0f %+8.1f\n",
			m.Program, m.Suite, float64(b.CompileNs)/1e3, float64(m.CompileNs)/1e3,
			pct(float64(b.CompileNs), float64(m.CompileNs), true))
	}

	fmt.Fprintf(w, "\n== E5: compiler memory (allocations during compile) ==\n")
	fmt.Fprintf(w, "%-12s %12s %12s %8s\n", "benchmark", "base(KB)", "proto(KB)", "Δ%")
	for _, m := range proto {
		b := index[m.Program]
		fmt.Fprintf(w, "%-12s %12.0f %12.0f %+8.1f\n",
			m.Program, float64(b.AllocBytes)/1024, float64(m.AllocBytes)/1024,
			pct(float64(b.AllocBytes), float64(m.AllocBytes), true))
	}

	fmt.Fprintf(w, "\n== E6: object code size and freeze fraction ==\n")
	fmt.Fprintf(w, "%-12s %10s %10s %8s %8s %10s\n", "benchmark", "base(B)", "proto(B)", "Δ%", "freezes", "freeze%IR")
	for _, m := range proto {
		b := index[m.Program]
		frac := 0.0
		if m.IRInstrs > 0 {
			frac = float64(m.FreezeCount) / float64(m.IRInstrs) * 100
		}
		fmt.Fprintf(w, "%-12s %10d %10d %+8.2f %8d %9.2f%%\n",
			m.Program, b.ObjectBytes, m.ObjectBytes,
			pct(float64(b.ObjectBytes), float64(m.ObjectBytes), true),
			m.FreezeCount, frac)
	}

	fmt.Fprintf(w, "\n== E7: run time in simulated cycles (Figure 6; positive %% = prototype faster) ==\n")
	for _, suite := range []string{"CINT", "CFP", "LNT"} {
		fmt.Fprintf(w, "--- %s ---\n", suite)
		fmt.Fprintf(w, "%-12s %14s %14s %8s %s\n", "benchmark", "base(cyc)", "proto(cyc)", "Δ%", "checksum")
		for _, m := range proto {
			if m.Suite != suite {
				continue
			}
			b := index[m.Program]
			status := "ok"
			if !m.ChecksumOK || !b.ChecksumOK {
				status = fmt.Sprintf("MISMATCH base=%d proto=%d want=%d", b.Checksum, m.Checksum, m.Checksum)
			}
			if m.SimError != "" || b.SimError != "" {
				status = "SIM ERROR " + m.SimError + b.SimError
			}
			fmt.Fprintf(w, "%-12s %14d %14d %+8.2f %s\n",
				m.Program, b.Cycles, m.Cycles,
				pct(float64(b.Cycles), float64(m.Cycles), true), status)
		}
	}
}
