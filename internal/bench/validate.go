package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
)

// ValidationRow is one line of the Section 6 experiment: a pass (or
// pipeline) validated against exhaustively generated functions.
type ValidationRow struct {
	Pass         string
	Funcs        int
	Verified     int
	Refuted      int
	Inconclusive int
	// FirstCE is the first counterexample found, for the report.
	FirstCE string
}

// validationPasses mirrors §6: "we used Alive to validate both
// individual passes (InstCombine, GVN, Reassociation, and SCCP) and
// the collection of passes implied by the -O2 compiler flag".
func validationPasses() []struct {
	name string
	run  func(f *ir.Func, cfg *passes.Config)
} {
	single := func(p passes.Pass) func(f *ir.Func, cfg *passes.Config) {
		return func(f *ir.Func, cfg *passes.Config) { passes.RunPass(p, f, cfg) }
	}
	return []struct {
		name string
		run  func(f *ir.Func, cfg *passes.Config)
	}{
		{"instcombine", single(passes.InstCombine{})},
		{"gvn", single(passes.GVN{})},
		{"reassociate", single(passes.Reassociate{})},
		{"sccp", single(passes.SCCP{})},
		{"-O2", func(f *ir.Func, cfg *passes.Config) {
			m := ir.NewModule()
			m.AddFunc(f)
			passes.O2().Run(m, cfg)
		}},
	}
}

// Validate runs the §6 experiment: exhaustively generate functions of
// numInstrs instructions over 2-bit arithmetic (capped at maxFuncs per
// pass), transform each with the pass, and decide refinement.
//
// fixed selects the paper's fixed passes under the Freeze semantics;
// !fixed selects the historical passes under the legacy semantics
// (with nondeterministic branch-on-poison), where the validator finds
// real miscompilations.
//
// reg, when non-nil, receives each pass sweep's checker counters
// labeled {experiment="validate",dialect=…,pass=…} — the serial sweep
// runs no campaign, so the harness publishes the per-pass
// CheckMetrics itself (deterministic class: one worker, no shared
// memo).
func Validate(fixed bool, numInstrs, maxFuncs int, reg *telemetry.Registry) []ValidationRow {
	var sem core.Options
	var pcfg *passes.Config
	gen := optfuzz.DefaultConfig(numInstrs)
	// Enumerate nsw/nuw/exact variants like opt-fuzz: the historical
	// reassociation bug (§10.2) only shows on attribute-carrying
	// chains.
	gen.EnumAttrs = true
	dialect := "freeze"
	if fixed {
		sem = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
		gen.AllowUndef = false
		gen.AllowPoison = true
	} else {
		sem = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		gen.AllowUndef = true
		dialect = "legacy"
	}
	gen.MaxFuncs = maxFuncs
	rcfg := refine.DefaultConfig(sem, sem)

	var rows []ValidationRow
	for _, vp := range validationPasses() {
		row := ValidationRow{Pass: vp.name}
		var met refine.CheckMetrics
		cfg := rcfg
		if reg != nil {
			cfg.Metrics = &met
		}
		optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
			work := ir.CloneFunc(f)
			vp.run(work, pcfg)
			r := refine.Check(f, work, cfg)
			row.Funcs++
			switch r.Status {
			case refine.Verified:
				row.Verified++
			case refine.Refuted:
				row.Refuted++
				if row.FirstCE == "" {
					row.FirstCE = fmt.Sprintf("%s→%s: %s", oneLine(f), oneLine(work), r.CE)
				}
			default:
				row.Inconclusive++
			}
			return true
		})
		if reg != nil {
			sub := telemetry.NewRegistry()
			met.Publish(sub, telemetry.Deterministic)
			// The E3 verdict tallies, as counters: the serial sweep is
			// fully deterministic, so a metrics diff between two builds
			// is a semantic diff of the validator or the pass.
			sub.Counter("bench_funcs_total", telemetry.Deterministic, "functions generated and validated").Add(uint64(row.Funcs))
			sub.Counter("bench_verified_total", telemetry.Deterministic, "pairs proved refining").Add(uint64(row.Verified))
			sub.Counter("bench_refuted_total", telemetry.Deterministic, "pairs refuted by counterexample").Add(uint64(row.Refuted))
			sub.Counter("bench_inconclusive_total", telemetry.Deterministic, "pairs hitting enumeration limits").Add(uint64(row.Inconclusive))
			reg.MergeLabeled(sub, "experiment", "validate", "dialect", dialect, "pass", vp.name)
		}
		rows = append(rows, row)
	}
	return rows
}

// ValidateParallel is Validate on the sharded worker pool: one
// multi-pass campaign instead of five serial sweeps. The candidate set
// and all verdicts are identical to Validate's for any worker count
// (workers 0 means one per CPU) when maxFuncs is 0; a positive
// maxFuncs is split across shards rather than truncating serial order,
// so counts may differ from Validate's prefix. Sharing one memo across
// the five passes is what the memoization is for: each candidate's
// source behaviour sets are derived once and hit four more times.
func ValidateParallel(fixed bool, numInstrs, maxFuncs, workers int, reg *telemetry.Registry) ([]ValidationRow, optfuzz.Stats) {
	var sem core.Options
	var pcfg *passes.Config
	gen := optfuzz.DefaultConfig(numInstrs)
	gen.EnumAttrs = true
	dialect := "freeze"
	if fixed {
		sem = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
		gen.AllowUndef = false
		gen.AllowPoison = true
	} else {
		sem = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		gen.AllowUndef = true
		dialect = "legacy"
	}
	gen.MaxFuncs = maxFuncs

	var transforms []optfuzz.NamedTransform
	for _, vp := range validationPasses() {
		run := vp.run
		transforms = append(transforms, optfuzz.NamedTransform{
			Name: vp.name,
			Fn:   func(f *ir.Func) { run(f, pcfg) },
		})
	}

	c := optfuzz.Campaign{
		Gen:        gen,
		Refine:     refine.DefaultConfig(sem, sem),
		Transforms: transforms,
		Workers:    workers,
	}
	st := runRow(&c, reg, "experiment", "validate-parallel", "dialect", dialect,
		"workers", strconv.Itoa(workers))

	rows := make([]ValidationRow, len(st.Passes))
	for i, p := range st.Passes {
		rows[i] = ValidationRow{
			Pass:         p.Pass,
			Funcs:        p.Funcs,
			Verified:     p.Verified,
			Refuted:      p.Refuted,
			Inconclusive: p.Inconclusive,
		}
	}
	for _, f := range st.Findings {
		for i := range rows {
			if rows[i].Pass == f.Pass && rows[i].FirstCE == "" {
				rows[i].FirstCE = fmt.Sprintf("%s→%s: %s",
					strings.ReplaceAll(f.Src, "\n", " "),
					strings.ReplaceAll(f.Tgt, "\n", " "), f.Result.CE)
			}
		}
	}
	return rows, st
}

func oneLine(f *ir.Func) string {
	s := f.String()
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, ' ')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// ReportValidation renders the E3 table.
func ReportValidation(w io.Writer, title string, rows []ValidationRow) {
	fmt.Fprintf(w, "== E3: translation validation (%s) ==\n", title)
	fmt.Fprintf(w, "%-12s %8s %9s %8s %13s\n", "pass", "funcs", "verified", "refuted", "inconclusive")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %9d %8d %13d\n", r.Pass, r.Funcs, r.Verified, r.Refuted, r.Inconclusive)
	}
	for _, r := range rows {
		if r.FirstCE != "" {
			fmt.Fprintf(w, "first counterexample for %s:\n  %s\n", r.Pass, r.FirstCE)
		}
	}
}
