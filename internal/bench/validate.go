package bench

import (
	"fmt"
	"io"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// ValidationRow is one line of the Section 6 experiment: a pass (or
// pipeline) validated against exhaustively generated functions.
type ValidationRow struct {
	Pass         string
	Funcs        int
	Verified     int
	Refuted      int
	Inconclusive int
	// FirstCE is the first counterexample found, for the report.
	FirstCE string
}

// validationPasses mirrors §6: "we used Alive to validate both
// individual passes (InstCombine, GVN, Reassociation, and SCCP) and
// the collection of passes implied by the -O2 compiler flag".
func validationPasses() []struct {
	name string
	run  func(f *ir.Func, cfg *passes.Config)
} {
	single := func(p passes.Pass) func(f *ir.Func, cfg *passes.Config) {
		return func(f *ir.Func, cfg *passes.Config) { passes.RunPass(p, f, cfg) }
	}
	return []struct {
		name string
		run  func(f *ir.Func, cfg *passes.Config)
	}{
		{"instcombine", single(passes.InstCombine{})},
		{"gvn", single(passes.GVN{})},
		{"reassociate", single(passes.Reassociate{})},
		{"sccp", single(passes.SCCP{})},
		{"-O2", func(f *ir.Func, cfg *passes.Config) {
			m := ir.NewModule()
			m.AddFunc(f)
			passes.O2().Run(m, cfg)
		}},
	}
}

// Validate runs the §6 experiment: exhaustively generate functions of
// numInstrs instructions over 2-bit arithmetic (capped at maxFuncs per
// pass), transform each with the pass, and decide refinement.
//
// fixed selects the paper's fixed passes under the Freeze semantics;
// !fixed selects the historical passes under the legacy semantics
// (with nondeterministic branch-on-poison), where the validator finds
// real miscompilations.
func Validate(fixed bool, numInstrs, maxFuncs int) []ValidationRow {
	var sem core.Options
	var pcfg *passes.Config
	gen := optfuzz.DefaultConfig(numInstrs)
	// Enumerate nsw/nuw/exact variants like opt-fuzz: the historical
	// reassociation bug (§10.2) only shows on attribute-carrying
	// chains.
	gen.EnumAttrs = true
	if fixed {
		sem = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
		gen.AllowUndef = false
		gen.AllowPoison = true
	} else {
		sem = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		gen.AllowUndef = true
	}
	gen.MaxFuncs = maxFuncs
	rcfg := refine.DefaultConfig(sem, sem)

	var rows []ValidationRow
	for _, vp := range validationPasses() {
		row := ValidationRow{Pass: vp.name}
		optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
			work := ir.CloneFunc(f)
			vp.run(work, pcfg)
			r := refine.Check(f, work, rcfg)
			row.Funcs++
			switch r.Status {
			case refine.Verified:
				row.Verified++
			case refine.Refuted:
				row.Refuted++
				if row.FirstCE == "" {
					row.FirstCE = fmt.Sprintf("%s→%s: %s", oneLine(f), oneLine(work), r.CE)
				}
			default:
				row.Inconclusive++
			}
			return true
		})
		rows = append(rows, row)
	}
	return rows
}

func oneLine(f *ir.Func) string {
	s := f.String()
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, ' ')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// ReportValidation renders the E3 table.
func ReportValidation(w io.Writer, title string, rows []ValidationRow) {
	fmt.Fprintf(w, "== E3: translation validation (%s) ==\n", title)
	fmt.Fprintf(w, "%-12s %8s %9s %8s %13s\n", "pass", "funcs", "verified", "refuted", "inconclusive")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %9d %8d %13d\n", r.Pass, r.Funcs, r.Verified, r.Refuted, r.Inconclusive)
	}
	for _, r := range rows {
		if r.FirstCE != "" {
			fmt.Fprintf(w, "first counterexample for %s:\n  %s\n", r.Pass, r.FirstCE)
		}
	}
}
