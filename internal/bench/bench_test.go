package bench

import (
	"strings"
	"testing"
)

// Every benchmark program must compile, run, and produce its checksum
// under both variants — the correctness backbone of E4–E7.
func TestAllProgramsBothVariants(t *testing.T) {
	for _, v := range []Variant{Baseline(), Prototype()} {
		for _, p := range Programs {
			m, err := Measure(p, v, 1)
			if err != nil {
				t.Errorf("[%s] %s: %v", v.Name, p.Name, err)
				continue
			}
			if m.SimError != "" {
				t.Errorf("[%s] %s: simulator: %s", v.Name, p.Name, m.SimError)
				continue
			}
			if !m.ChecksumOK {
				t.Errorf("[%s] %s: checksum %d, want %d", v.Name, p.Name, m.Checksum, p.Want)
			}
			if m.Cycles == 0 || m.IRInstrs == 0 || m.ObjectBytes == 0 {
				t.Errorf("[%s] %s: missing metrics %+v", v.Name, p.Name, m)
			}
		}
	}
}

// The prototype inserts freeze instructions only via the bit-field
// lowering and loop unswitching; the paper reports 0.04%–0.29% of IR
// instructions. Check the bit-field-heavy programs have freezes and
// the fraction stays small.
func TestFreezeFractions(t *testing.T) {
	proto := Prototype()
	totalInstrs, totalFreezes := 0, 0
	for _, p := range Programs {
		m, err := Measure(p, proto, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		totalInstrs += m.IRInstrs
		totalFreezes += m.FreezeCount
		frac := float64(m.FreezeCount) / float64(m.IRInstrs) * 100
		if frac > 8.0 {
			t.Errorf("%s: freeze fraction %.2f%% is implausibly high", p.Name, frac)
		}
		if (p.Name == "gcc" || p.Name == "bitfields") && m.FreezeCount == 0 {
			t.Errorf("%s: bit-field-heavy benchmark has no freezes", p.Name)
		}
	}
	if totalFreezes == 0 {
		t.Error("prototype inserted no freezes at all")
	}
	// Baseline must have none.
	for _, p := range Programs[:3] {
		m, err := Measure(p, Baseline(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.FreezeCount != 0 {
			t.Errorf("baseline %s has %d freezes", p.Name, m.FreezeCount)
		}
	}
}

func TestReportRenders(t *testing.T) {
	var base, proto []Measurement
	for _, p := range Programs[:4] {
		b, err := Measure(p, Baseline(), 1)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Measure(p, Prototype(), 1)
		if err != nil {
			t.Fatal(err)
		}
		base = append(base, b)
		proto = append(proto, q)
	}
	var sb strings.Builder
	Report(&sb, base, proto)
	out := sb.String()
	for _, want := range []string{"E4", "E5", "E6", "E7", "perlbench", "CINT"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// E3 in miniature: the fixed passes validate cleanly; the historical
// passes are caught.
func TestValidationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("validation is slow")
	}
	fixed := Validate(true, 1, 400, nil)
	for _, r := range fixed {
		if r.Refuted != 0 {
			t.Errorf("fixed %s: %d refuted (e.g. %s)", r.Pass, r.Refuted, r.FirstCE)
		}
		if r.Funcs == 0 {
			t.Errorf("fixed %s: no functions validated", r.Pass)
		}
	}
	legacy := Validate(false, 1, 400, nil)
	anyRefuted := 0
	for _, r := range legacy {
		anyRefuted += r.Refuted
	}
	if anyRefuted == 0 {
		t.Error("the validator failed to catch any historical miscompilation")
	}
	var sb strings.Builder
	ReportValidation(&sb, "fixed passes, freeze semantics", fixed)
	ReportValidation(&sb, "historical passes, legacy semantics", legacy)
	if !strings.Contains(sb.String(), "instcombine") {
		t.Error("validation report incomplete")
	}
}

// The paper's third benchmark set: large single-file programs. The
// synthetic generator must produce valid MinC at every size, both
// variants must agree on the checksum, and the prototype's compile
// time must stay within a few percent.
func TestLargeSingleFileProgram(t *testing.T) {
	src := GenerateLargeProgram(120)
	if len(strings.Split(src, "\n")) < 500 {
		t.Fatalf("generated program suspiciously small: %d lines", len(strings.Split(src, "\n")))
	}
	p := Program{Name: "largefile", Suite: "LARGE", Src: src}
	base, err := Measure(p, Baseline(), 1)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := Measure(p, Prototype(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.SimError != "" || proto.SimError != "" {
		t.Fatalf("simulation failed: %q / %q", base.SimError, proto.SimError)
	}
	if base.Checksum != proto.Checksum {
		t.Errorf("variants disagree: baseline %d, prototype %d", base.Checksum, proto.Checksum)
	}
	if proto.FreezeCount == 0 {
		t.Error("the bit-field kernels should have produced freezes in the prototype")
	}
	t.Logf("largefile: %d IR instrs, %d freezes (%.3f%%), %d vs %d object bytes, %d vs %d cycles",
		proto.IRInstrs, proto.FreezeCount,
		float64(proto.FreezeCount)/float64(proto.IRInstrs)*100,
		base.ObjectBytes, proto.ObjectBytes, base.Cycles, proto.Cycles)
}
