package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/parallel"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// ExecRow is one line of the execution-engine experiment: a §6
// validation sweep run on one engine with one worker count. Rows come
// in engine triplets (interpreted / compiled closures / bytecode VM)
// over identical pre-built (src, tgt) pairs; a row is valid only if it
// produces byte-identical behaviour sets and verdicts to the
// interpreted single-worker baseline, which BehaviorHash certifies.
type ExecRow struct {
	Mode    string // "freeze" or "legacy"
	Engine  string // "interpreted", "compiled" or "bytecode"
	Workers int

	Funcs        int
	Checks       int
	Verified     int
	Refuted      int
	Inconclusive int

	// Execs counts individual function executions (each one oracle
	// resolution of one input), the unit the engines actually compete
	// on.
	Execs        uint64
	Elapsed      time.Duration
	ChecksPerSec float64
	ExecsPerSec  float64

	// BehaviorHash folds a per-pair FNV-64a digest (every behaviour
	// set the check consumed, in deterministic order, plus the
	// verdict) over all pairs in pair order. The per-pair fold makes
	// the hash independent of how a worker pool interleaved the pairs,
	// so every row of a mode must agree exactly.
	BehaviorHash string

	// Speedup (non-interpreted rows) is the interpreted same-workers
	// row's elapsed time over this row's. SpeedupVsClosure (bytecode
	// rows) is this row's ExecsPerSec over the compiled same-workers
	// row's — the tier-2 payoff in isolation. TwinOK is whether the
	// hash and verdict counters match the interpreted workers=1
	// baseline (trivially true on the baseline itself).
	Speedup          float64 `json:",omitempty"`
	SpeedupVsClosure float64 `json:",omitempty"`
	TwinOK           bool
}

// execPair is one pre-built validation problem. Building pairs happens
// once, outside the timed region, so the rows measure execution and
// nothing else — and every engine sees pointer-identical IR.
type execPair struct {
	src, tgt *ir.Func
}

// buildExecPairs generates the §6 candidate set for one semantics and
// transforms a private clone of each candidate with InstCombine.
func buildExecPairs(fixed bool, numInstrs, maxFuncs int) ([]execPair, core.Options) {
	var sem core.Options
	var pcfg *passes.Config
	gen := optfuzz.DefaultConfig(numInstrs)
	gen.EnumAttrs = true
	gen.MaxFuncs = maxFuncs
	if fixed {
		sem = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
		gen.AllowUndef = false
		gen.AllowPoison = true
	} else {
		sem = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		gen.AllowUndef = true
	}
	var pairs []execPair
	optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
		src := ir.CloneFunc(f)
		tgt := ir.CloneFunc(f)
		passes.RunPass(passes.InstCombine{}, tgt, pcfg)
		pairs = append(pairs, execPair{src: src, tgt: tgt})
		return true
	})
	return pairs, sem
}

// execEngineCfg maps an engine row name onto a refine.Config: the
// interpreter, the closure engine (tiering pinned off), or the
// bytecode VM (promoted immediately).
func execEngineCfg(cfg *refine.Config, engine string) {
	switch engine {
	case "interpreted":
		cfg.Interpret = true
	case "compiled":
		cfg.Tier = core.TierPolicy{Mode: core.TierClosure}
	case "bytecode":
		cfg.Tier = core.TierPolicy{Mode: core.TierBytecode}
	default:
		panic("bench: unknown exec engine " + engine)
	}
}

// measureExecEngine sweeps every pair through refine.Check on one
// engine over a pool of `workers` goroutines, memoization off, and
// digests everything observable. Pairs are split into contiguous
// shards, one per worker, each with private Config state (oracle,
// exec counter, digest buffer); per-pair digests land in a shared
// slice indexed by pair, so the fold over them is pair-ordered and
// deterministic no matter how the pool was scheduled. The sweep runs
// reps times — the freeze campaign is cheap enough that a single
// sweep finishes in a few milliseconds, too short to time reliably —
// with every rep timed separately and doing identical work (no
// caching across reps). Elapsed is the median rep scaled by reps, the
// same bursty-load defense the E4–E7 harness uses, so one noisy rep
// cannot skew the ratios.
func measureExecEngine(pairs []execPair, sem core.Options, mode, engine string, workers, reps int) ExecRow {
	row := ExecRow{Mode: mode, Engine: engine, Workers: workers, Funcs: len(pairs)}
	cfg := refine.DefaultConfig(sem, sem)
	execEngineCfg(&cfg, engine)
	h := fnv.New64a()
	digests := make([]uint64, len(pairs))
	statuses := make([]refine.Status, len(pairs))
	elapsed := make([]time.Duration, reps)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		shardExecs := parallel.Map(workers, workers, func(shard int) uint64 {
			lo := shard * len(pairs) / workers
			hi := (shard + 1) * len(pairs) / workers
			sc := cfg
			sc.Oracle = core.NewEnumOracle(cfg.MaxChoices, cfg.MaxFanout)
			var execs uint64
			sc.ExecCount = &execs
			// Digest the sets' components directly instead of
			// rendering set.String(): the order-independent combine
			// over Rets hashes the same information as the sorted
			// render, without the hook dominating the very profile
			// the rows are measuring.
			var ph uint64
			sc.BehaviorHook = func(set refine.BehaviorSet) {
				ph = fnvUint64(ph, digestBehaviorSet(set))
			}
			for i := lo; i < hi; i++ {
				ph = fnvOffset64
				r := refine.Check(pairs[i].src, pairs[i].tgt, sc)
				digests[i] = fnvByte(ph, byte(r.Status))
				statuses[i] = r.Status
			}
			return execs
		})
		elapsed[rep] = time.Since(start)
		for _, e := range shardExecs {
			row.Execs += e
		}
		var buf [8]byte
		for i := range pairs {
			binary.LittleEndian.PutUint64(buf[:], digests[i])
			h.Write(buf[:])
			row.Checks++
			switch statuses[i] {
			case refine.Verified:
				row.Verified++
			case refine.Refuted:
				row.Refuted++
			default:
				row.Inconclusive++
			}
		}
	}
	sort.Slice(elapsed, func(i, j int) bool { return elapsed[i] < elapsed[j] })
	row.Elapsed = elapsed[len(elapsed)/2] * time.Duration(reps)
	row.BehaviorHash = fmt.Sprintf("%016x", h.Sum64())
	if s := row.Elapsed.Seconds(); s > 0 {
		row.ChecksPerSec = float64(row.Checks) / s
		row.ExecsPerSec = float64(row.Execs) / s
	}
	return row
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(s string) uint64 {
	d := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		d ^= uint64(s[i])
		d *= fnvPrime64
	}
	return d
}

func fnvByte(d uint64, b byte) uint64 {
	d ^= uint64(b)
	d *= fnvPrime64
	return d
}

func fnvUint64(d, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		d = fnvByte(d, byte(v>>(8*i)))
	}
	return d
}

// digestBehaviorSet folds a behaviour set into 64 bits: flag bits, the
// XOR of the per-return-value hashes (Rets is a set, so the combine
// must be order-independent), and the set size. Two sets digest equal
// iff they hold the same flags and return values — the same predicate
// comparing sorted String renders would certify.
func digestBehaviorSet(set refine.BehaviorSet) uint64 {
	var flags uint64
	if set.UB {
		flags |= 1
	}
	if set.Poison {
		flags |= 2
	}
	if set.Undef {
		flags |= 4
	}
	if set.Void {
		flags |= 8
	}
	if set.Incomplete {
		flags |= 16
	}
	var rets uint64
	for k := range set.Rets {
		rets ^= fnvString(k)
	}
	d := uint64(fnvOffset64)
	d ^= flags
	d *= fnvPrime64
	d ^= rets
	d *= fnvPrime64
	d ^= uint64(len(set.Rets))
	d *= fnvPrime64
	return d
}

// ExecEngines lists the E12 engine rows in measurement order. The
// interpreted row doubles as the behaviour baseline.
var ExecEngines = []string{"interpreted", "compiled", "bytecode"}

// ExecEnginesForTier maps a -tier setting onto the E12 engine rows to
// measure: lower tiers drop the rows above them, and the interpreted
// baseline always stays (it anchors TwinOK).
func ExecEnginesForTier(tier string) ([]string, error) {
	switch tier {
	case "off":
		return ExecEngines[:1], nil
	case "closure":
		return ExecEngines[:2], nil
	case "", "auto", "bytecode":
		return ExecEngines, nil
	}
	return nil, fmt.Errorf("bad tier %q (want off, closure, auto or bytecode)", tier)
}

// MeasureExec runs the engine-tier experiment over both semantics,
// crossed with every worker count in workersList (nil or empty means
// single-threaded only) and every engine in engines (nil means
// ExecEngines). Rows are grouped mode-major, then workers, then
// engine; every row's hash and verdict counters are checked against
// the mode's interpreted workers=1 baseline, so the table certifies
// engine equivalence and pool determinism at once.
func MeasureExec(numInstrs, maxFuncs int, workersList []int, engines []string) []ExecRow {
	if len(workersList) == 0 {
		workersList = []int{1}
	}
	if len(engines) == 0 {
		engines = ExecEngines
	}
	var rows []ExecRow
	for _, m := range []struct {
		fixed bool
		name  string
		reps  int
	}{{true, "freeze", 5}, {false, "legacy", 1}} {
		pairs, sem := buildExecPairs(m.fixed, numInstrs, maxFuncs)
		modeRows := make([]ExecRow, 0, len(workersList)*len(engines))
		for _, w := range workersList {
			interp, closure := -1, -1
			for _, engine := range engines {
				modeRows = append(modeRows, measureExecEngine(pairs, sem, m.name, engine, w, m.reps))
				r := &modeRows[len(modeRows)-1]
				switch engine {
				case "interpreted":
					interp = len(modeRows) - 1
				case "compiled":
					closure = len(modeRows) - 1
				}
				if engine != "interpreted" && interp >= 0 && r.Elapsed > 0 {
					r.Speedup = float64(modeRows[interp].Elapsed) / float64(r.Elapsed)
				}
				if engine == "bytecode" && closure >= 0 && modeRows[closure].ExecsPerSec > 0 {
					r.SpeedupVsClosure = r.ExecsPerSec / modeRows[closure].ExecsPerSec
				}
			}
		}
		baseline := modeRows[0]
		for i := range modeRows {
			r := &modeRows[i]
			r.TwinOK = r.BehaviorHash == baseline.BehaviorHash &&
				r.Execs == baseline.Execs &&
				r.Verified == baseline.Verified &&
				r.Refuted == baseline.Refuted &&
				r.Inconclusive == baseline.Inconclusive
		}
		rows = append(rows, modeRows...)
	}
	return rows
}

// ReportExec renders the engine×workers table.
func ReportExec(w io.Writer, rows []ExecRow) {
	fmt.Fprintln(w, "== E12: execution engine (interpreted vs compiled vs bytecode, by worker count) ==")
	fmt.Fprintf(w, "%-7s %-12s %3s %7s %8s %9s %10s %12s %17s %8s %8s %5s\n",
		"mode", "engine", "wrk", "funcs", "checks", "refuted", "execs", "elapsed", "behavior-hash", "speedup", "vs-clos", "twin")
	for _, r := range rows {
		speedup, vsClosure := "", ""
		if r.Engine != "interpreted" {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if r.Engine == "bytecode" {
			vsClosure = fmt.Sprintf("%.2fx", r.SpeedupVsClosure)
		}
		twin := "FAIL"
		if r.TwinOK {
			twin = "ok"
		}
		fmt.Fprintf(w, "%-7s %-12s %3d %7d %8d %9d %10d %12s %17s %8s %8s %5s\n",
			r.Mode, r.Engine, r.Workers, r.Funcs, r.Checks, r.Refuted, r.Execs,
			r.Elapsed.Round(time.Millisecond), r.BehaviorHash, speedup, vsClosure, twin)
	}
	fmt.Fprintf(w, "execs are identical across rows because every engine drives the same oracle enumeration;\n")
	fmt.Fprintf(w, "behavior-hash folds per-pair digests in pair order, so equal hashes mean byte-identical results\n")
	fmt.Fprintf(w, "regardless of worker count; vs-clos is the bytecode tier's throughput over the closure engine.\n")
}
