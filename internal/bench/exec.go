package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// ExecRow is one line of the execution-engine experiment: a §6
// validation sweep run single-threaded on one engine. Rows come in
// interpreted/compiled twins over identical pre-built (src, tgt)
// pairs; the twin is valid only if both engines produce byte-identical
// behaviour sets and verdicts, which BehaviorHash certifies.
type ExecRow struct {
	Mode   string // "freeze" or "legacy"
	Engine string // "interpreted" or "compiled"

	Funcs        int
	Checks       int
	Verified     int
	Refuted      int
	Inconclusive int

	// Execs counts individual function executions (each one oracle
	// resolution of one input), the unit the engines actually compete
	// on.
	Execs        uint64
	Elapsed      time.Duration
	ChecksPerSec float64
	ExecsPerSec  float64

	// BehaviorHash is an FNV-64a digest over every behaviour set (in
	// deterministic check order) plus every verdict. Twin rows must
	// agree exactly.
	BehaviorHash string

	// Speedup (compiled rows only) is the interpreted twin's elapsed
	// time over this row's. TwinOK (compiled rows only) is whether the
	// hashes and verdict counters match the interpreted twin.
	Speedup float64 `json:",omitempty"`
	TwinOK  bool
}

// execPair is one pre-built validation problem. Building pairs happens
// once, outside the timed region, so the twin rows measure execution
// and nothing else — and both engines see pointer-identical IR.
type execPair struct {
	src, tgt *ir.Func
}

// buildExecPairs generates the §6 candidate set for one semantics and
// transforms a private clone of each candidate with InstCombine.
func buildExecPairs(fixed bool, numInstrs, maxFuncs int) ([]execPair, core.Options) {
	var sem core.Options
	var pcfg *passes.Config
	gen := optfuzz.DefaultConfig(numInstrs)
	gen.EnumAttrs = true
	gen.MaxFuncs = maxFuncs
	if fixed {
		sem = core.FreezeOptions()
		pcfg = passes.DefaultFreezeConfig()
		gen.AllowUndef = false
		gen.AllowPoison = true
	} else {
		sem = core.LegacyOptions(core.BranchPoisonNondet)
		pcfg = passes.DefaultLegacyConfig()
		gen.AllowUndef = true
	}
	var pairs []execPair
	optfuzz.Exhaustive(gen, func(f *ir.Func) bool {
		src := ir.CloneFunc(f)
		tgt := ir.CloneFunc(f)
		passes.RunPass(passes.InstCombine{}, tgt, pcfg)
		pairs = append(pairs, execPair{src: src, tgt: tgt})
		return true
	})
	return pairs, sem
}

// measureExecEngine sweeps every pair through refine.Check on one
// engine, memoization off, and digests everything observable. The
// sweep runs reps times — the freeze campaign is cheap enough that a
// single sweep finishes in a few milliseconds, too short to time
// reliably — with every rep timed separately and doing identical work
// (no caching across reps). Elapsed is the median rep scaled by reps,
// the same bursty-load defense the E4–E7 harness uses, so one noisy
// rep cannot skew the twin ratio.
func measureExecEngine(pairs []execPair, sem core.Options, mode, engine string, interpret bool, reps int) ExecRow {
	row := ExecRow{Mode: mode, Engine: engine, Funcs: len(pairs)}
	cfg := refine.DefaultConfig(sem, sem)
	cfg.Interpret = interpret
	cfg.Oracle = core.NewEnumOracle(cfg.MaxChoices, cfg.MaxFanout)
	cfg.ExecCount = &row.Execs
	h := fnv.New64a()
	var buf [8]byte
	cfg.BehaviorHook = func(set refine.BehaviorSet) {
		// Digest the set's components directly instead of rendering
		// set.String(): the order-independent combine over Rets hashes
		// the same information as the sorted render, without the hook
		// dominating the very profile the twin rows are measuring.
		binary.LittleEndian.PutUint64(buf[:], digestBehaviorSet(set))
		h.Write(buf[:])
	}
	elapsed := make([]time.Duration, reps)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for _, p := range pairs {
			r := refine.Check(p.src, p.tgt, cfg)
			h.Write([]byte{byte(r.Status)})
			row.Checks++
			switch r.Status {
			case refine.Verified:
				row.Verified++
			case refine.Refuted:
				row.Refuted++
			default:
				row.Inconclusive++
			}
		}
		elapsed[rep] = time.Since(start)
	}
	sort.Slice(elapsed, func(i, j int) bool { return elapsed[i] < elapsed[j] })
	row.Elapsed = elapsed[len(elapsed)/2] * time.Duration(reps)
	row.BehaviorHash = fmt.Sprintf("%016x", h.Sum64())
	if s := row.Elapsed.Seconds(); s > 0 {
		row.ChecksPerSec = float64(row.Checks) / s
		row.ExecsPerSec = float64(row.Execs) / s
	}
	return row
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(s string) uint64 {
	d := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		d ^= uint64(s[i])
		d *= fnvPrime64
	}
	return d
}

// digestBehaviorSet folds a behaviour set into 64 bits: flag bits, the
// XOR of the per-return-value hashes (Rets is a set, so the combine
// must be order-independent), and the set size. Two sets digest equal
// iff they hold the same flags and return values — the same predicate
// comparing sorted String renders would certify.
func digestBehaviorSet(set refine.BehaviorSet) uint64 {
	var flags uint64
	if set.UB {
		flags |= 1
	}
	if set.Poison {
		flags |= 2
	}
	if set.Undef {
		flags |= 4
	}
	if set.Void {
		flags |= 8
	}
	if set.Incomplete {
		flags |= 16
	}
	var rets uint64
	for k := range set.Rets {
		rets ^= fnvString(k)
	}
	d := uint64(fnvOffset64)
	d ^= flags
	d *= fnvPrime64
	d ^= rets
	d *= fnvPrime64
	d ^= uint64(len(set.Rets))
	d *= fnvPrime64
	return d
}

// MeasureExec runs the interpreted-vs-compiled twin experiment over
// both semantics. Single-threaded by design: the row pairs isolate
// the engine, not the worker pool (E11 covers scaling).
func MeasureExec(numInstrs, maxFuncs int) []ExecRow {
	var rows []ExecRow
	for _, m := range []struct {
		fixed bool
		name  string
		reps  int
	}{{true, "freeze", 5}, {false, "legacy", 1}} {
		pairs, sem := buildExecPairs(m.fixed, numInstrs, maxFuncs)
		interp := measureExecEngine(pairs, sem, m.name, "interpreted", true, m.reps)
		comp := measureExecEngine(pairs, sem, m.name, "compiled", false, m.reps)
		comp.TwinOK = comp.BehaviorHash == interp.BehaviorHash &&
			comp.Execs == interp.Execs &&
			comp.Verified == interp.Verified &&
			comp.Refuted == interp.Refuted &&
			comp.Inconclusive == interp.Inconclusive
		if comp.Elapsed > 0 {
			comp.Speedup = float64(interp.Elapsed) / float64(comp.Elapsed)
		}
		rows = append(rows, interp, comp)
	}
	return rows
}

// ReportExec renders the twin-row table.
func ReportExec(w io.Writer, rows []ExecRow) {
	fmt.Fprintln(w, "== E12: execution engine (interpreted vs compiled, single thread) ==")
	fmt.Fprintf(w, "%-7s %-12s %7s %8s %9s %10s %12s %17s %8s %5s\n",
		"mode", "engine", "funcs", "checks", "refuted", "execs", "elapsed", "behavior-hash", "speedup", "twin")
	for _, r := range rows {
		speedup, twin := "", ""
		if r.Engine == "compiled" {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
			twin = "FAIL"
			if r.TwinOK {
				twin = "ok"
			}
		}
		fmt.Fprintf(w, "%-7s %-12s %7d %8d %9d %10d %12s %17s %8s %5s\n",
			r.Mode, r.Engine, r.Funcs, r.Checks, r.Refuted, r.Execs,
			r.Elapsed.Round(time.Millisecond), r.BehaviorHash, speedup, twin)
	}
	fmt.Fprintf(w, "execs are identical within a twin because both engines drive the same oracle enumeration;\n")
	fmt.Fprintf(w, "behavior-hash digests every behaviour set and verdict, so equal hashes mean byte-identical results.\n")
}
