package bench

import (
	"strings"
	"testing"
)

// TestExecTwinsAgree is the quick version of the E12 experiment: all
// three engines, serial and pooled, must produce byte-identical
// behaviour digests and verdicts over the same pre-built pairs, in
// both semantics.
func TestExecTwinsAgree(t *testing.T) {
	workers := []int{1, 2}
	rows := MeasureExec(2, 40, workers, nil)
	wantRows := 2 * len(workers) * len(ExecEngines)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	perMode := len(workers) * len(ExecEngines)
	for i, r := range rows {
		base := rows[i/perMode*perMode] // the mode's interpreted workers=1 row
		if base.Engine != "interpreted" || base.Workers != 1 {
			t.Fatalf("row ordering broken: baseline for %s/%s/w%d is %s/%s/w%d",
				r.Mode, r.Engine, r.Workers, base.Mode, base.Engine, base.Workers)
		}
		if r.Mode != base.Mode {
			t.Fatalf("row %d: mode %s under baseline mode %s", i, r.Mode, base.Mode)
		}
		if r.BehaviorHash != base.BehaviorHash {
			t.Errorf("%s/%s/w%d: behaviour hash %s diverges from baseline %s",
				r.Mode, r.Engine, r.Workers, r.BehaviorHash, base.BehaviorHash)
		}
		if r.Execs != base.Execs {
			t.Errorf("%s/%s/w%d: execution count %d diverges from baseline %d",
				r.Mode, r.Engine, r.Workers, r.Execs, base.Execs)
		}
		if !r.TwinOK {
			t.Errorf("%s/%s/w%d: TwinOK is false", r.Mode, r.Engine, r.Workers)
		}
		if r.Checks == 0 || r.Execs == 0 {
			t.Errorf("%s/%s/w%d: empty experiment (%d checks, %d execs)",
				r.Mode, r.Engine, r.Workers, r.Checks, r.Execs)
		}
	}

	var sb strings.Builder
	ReportExec(&sb, rows)
	for _, want := range []string{"behavior-hash", "compiled", "interpreted", "bytecode"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

// BenchmarkExecEngines reports per-engine throughput on the §6
// workload; the ratios are the compile-once and tier-2 speedups.
func BenchmarkExecEngines(b *testing.B) {
	for _, engine := range ExecEngines {
		b.Run(engine, func(b *testing.B) {
			pairs, sem := buildExecPairs(false, 3, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := measureExecEngine(pairs, sem, "legacy", engine, 1, 1)
				b.ReportMetric(r.ExecsPerSec, "execs/sec")
			}
		})
	}
}
