package bench

import (
	"strings"
	"testing"
)

// TestExecTwinsAgree is the quick version of the E12 experiment: both
// engines must produce byte-identical behaviour digests and verdicts
// over the same pre-built pairs, in both semantics.
func TestExecTwinsAgree(t *testing.T) {
	rows := MeasureExec(2, 40)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		interp, comp := rows[i], rows[i+1]
		if interp.Engine != "interpreted" || comp.Engine != "compiled" || interp.Mode != comp.Mode {
			t.Fatalf("row pairing broken: %+v / %+v", interp, comp)
		}
		if comp.BehaviorHash != interp.BehaviorHash {
			t.Errorf("%s: behaviour hashes diverge: interpreted %s, compiled %s",
				interp.Mode, interp.BehaviorHash, comp.BehaviorHash)
		}
		if comp.Execs != interp.Execs {
			t.Errorf("%s: execution counts diverge: interpreted %d, compiled %d",
				interp.Mode, interp.Execs, comp.Execs)
		}
		if !comp.TwinOK {
			t.Errorf("%s: TwinOK is false", interp.Mode)
		}
		if interp.Checks == 0 || interp.Execs == 0 {
			t.Errorf("%s: empty experiment (%d checks, %d execs)", interp.Mode, interp.Checks, interp.Execs)
		}
	}

	var sb strings.Builder
	ReportExec(&sb, rows)
	for _, want := range []string{"behavior-hash", "compiled", "interpreted"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

// BenchmarkExecEngines reports per-engine throughput on the §6
// workload; the ratio is the compile-once speedup.
func BenchmarkExecEngines(b *testing.B) {
	for _, engine := range []struct {
		name      string
		interpret bool
	}{{"interpreted", true}, {"compiled", false}} {
		b.Run(engine.name, func(b *testing.B) {
			pairs, sem := buildExecPairs(false, 3, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := measureExecEngine(pairs, sem, "legacy", engine.name, engine.interpret, 1)
				b.ReportMetric(r.ExecsPerSec, "execs/sec")
			}
		})
	}
}
