package bench

import (
	"fmt"
	"io"

	"tameir/internal/ir"
	"tameir/internal/passes"
)

// ReportAblation renders the freeze-awareness ablation: the paper's §6
// says the early prototype regressed because "LLVM optimizers [were]
// not recognizing the new freeze instruction and conservatively giving
// up" — jump threading, compare sinking, the inliner's cost model. The
// FreezeBlindPrototype variant turns all that teaching off; the deltas
// against the full prototype quantify how much of the paper's "freeze
// is cheap" result depends on it.
func ReportAblation(w io.Writer, proto, blind []Measurement) {
	index := map[string]Measurement{}
	for _, m := range proto {
		index[m.Program] = m
	}
	fmt.Fprintf(w, "== Ablation: freeze-aware optimizations ON (prototype) vs OFF (freeze-blind) ==\n")
	fmt.Fprintf(w, "%-12s %14s %14s %9s %10s %10s\n",
		"benchmark", "aware(cyc)", "blind(cyc)", "Δcyc%", "aware(B)", "blind(B)")
	var worst float64
	var worstName string
	for _, m := range blind {
		p := index[m.Program]
		d := pct(float64(p.Cycles), float64(m.Cycles), true)
		if d < worst {
			worst = d
			worstName = m.Program
		}
		fmt.Fprintf(w, "%-12s %14d %14d %+9.2f %10d %10d\n",
			m.Program, p.Cycles, m.Cycles, d, p.ObjectBytes, m.ObjectBytes)
	}
	if worstName != "" {
		fmt.Fprintf(w, "largest regression from freeze-blindness: %s (%.2f%%)\n", worstName, worst)
	}
	fmt.Fprintf(w, "(zero deltas mean this corpus' freezes sit outside the blocked\n")
	fmt.Fprintf(w, "optimizations' patterns; the micro ablation below shows each\n")
	fmt.Fprintf(w, "mechanism directly)\n\n")
	MicroAblation(w)
}

// MicroAblation demonstrates each §6 freeze-awareness mechanism on the
// IR kernel that triggers it, reporting the structural difference
// between the freeze-aware and freeze-blind pipelines.
func MicroAblation(w io.Writer) {
	fmt.Fprintf(w, "== Micro ablation: §6's freeze-awareness mechanisms ==\n")

	run := func(src string, aware bool) *ir.Func {
		f := ir.MustParseFunc(src)
		cfg := passes.DefaultFreezeConfig()
		cfg.FreezeAware = aware
		passes.O2().RunFunc(f, cfg)
		return f
	}
	count := func(f *ir.Func, op ir.Op) int {
		n := 0
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op == op {
				n++
			}
		})
		return n
	}

	// 1. Jump threading through freeze (the §7.2 nestedloop anecdote).
	// Run only the jump-threading pass so other CFG cleanups do not
	// mask the effect.
	jt := `define i8 @f(i1 %c, i1 %d) {
entry:
  br i1 %c, label %p, label %q
p:
  br label %join
q:
  br label %join
join:
  %cc = phi i1 [ true, %p ], [ %d, %q ]
  %fcc = freeze i1 %cc
  br i1 %fcc, label %yes, label %no
yes:
  ret i8 1
no:
  ret i8 0
}`
	threaded := func(aware bool) string {
		f := ir.MustParseFunc(jt)
		cfg := passes.DefaultFreezeConfig()
		cfg.FreezeAware = aware
		passes.RunPass(passes.JumpThreading{}, f, cfg)
		s := f.BlockByName("p").Succs()
		if len(s) == 1 && s[0].Name() == "yes" {
			return "threaded"
		}
		return "blocked"
	}
	fmt.Fprintf(w, "%-34s aware: %-9s blind: %s\n",
		"jump threading through freeze:", threaded(true), threaded(false))

	// 2. Freeze of provably-non-poison values folds away.
	fzfold := `define i8 @f(i8 %x) {
entry:
  %fz1 = freeze i8 %x
  %a = add i8 %fz1, 1
  %fz2 = freeze i8 %a
  %b = add i8 %fz2, 1
  %fz3 = freeze i8 %b
  ret i8 %fz3
}`
	a, b := run(fzfold, true), run(fzfold, false)
	fmt.Fprintf(w, "%-34s aware: %2d freezes  blind: %2d freezes\n",
		"redundant freeze elimination:", count(a, ir.OpFreeze), count(b, ir.OpFreeze))

	// 3. Inliner cost model: a freeze-heavy small callee.
	inl := func(aware bool) int {
		mod := ir.MustParseModule(freezeHeavyCalleeSrc)
		cfg := passes.DefaultFreezeConfig()
		cfg.FreezeAware = aware
		passes.O2().Run(mod, cfg)
		n := 0
		mod.FuncByName("caller").ForEachInstr(func(in *ir.Instr) {
			if in.Op == ir.OpCall {
				n++
			}
		})
		return n
	}
	fmt.Fprintf(w, "%-34s aware: %2d calls    blind: %2d calls\n",
		"inliner freeze-is-free cost model:", inl(true), inl(false))

	// 4. CodeGenPrepare splitting a branch on a frozen and (§6).
	split := `define i2 @f(i1 %a, i1 %b) {
entry:
  %c = and i1 %a, %b
  %fc = freeze i1 %c
  br i1 %fc, label %t, label %e
t:
  ret i2 1
e:
  ret i2 2
}`
	splitState := func(aware bool) string {
		f := ir.MustParseFunc(split)
		cfg := passes.DefaultFreezeConfig()
		cfg.FreezeAware = aware
		passes.RunPass(passes.CodeGenPrepare{}, f, cfg)
		if count(f, ir.OpAnd) == 0 {
			return "split"
		}
		return "blocked"
	}
	fmt.Fprintf(w, "%-34s aware: %-9s blind: %s\n",
		"branch-on-frozen-and/or splitting:", splitState(true), splitState(false))
}

// freezeHeavyCalleeSrc interleaves 16 freezes with 16 adds (no
// freeze-of-freeze chains, so nothing folds before the inliner runs):
// cost 16 with freeze-free costing, 32 without (over the threshold of
// 30).
var freezeHeavyCalleeSrc = func() string {
	s := "define i8 @callee(i8 %x) {\nentry:\n  %f0 = freeze i8 %x\n"
	for i := 1; i < 16; i++ {
		s += fmt.Sprintf("  %%a%d = add nsw i8 %%f%d, 1\n", i, i-1)
		s += fmt.Sprintf("  %%f%d = freeze i8 %%a%d\n", i, i)
	}
	s += "  %r = add i8 %f15, 1\n  ret i8 %r\n}\n\n"
	s += "define i8 @caller(i8 %v) {\nentry:\n  %r = call i8 @callee(i8 %v)\n  ret i8 %r\n}\n"
	return s
}()
