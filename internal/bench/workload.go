package bench

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/optfuzz"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
)

// MeasureWorkloads is the E13 experiment: the same fuzz-and-validate
// campaign engine driven by each pluggable candidate source.
//
//   - exhaustive: the E11 baseline rebuilt on the explicit Source
//     adapter (same stream as the nil-Source fast path, so the row
//     doubles as a live check of the refactor)
//   - mutate: coverage-guided CFG mutation fuzzing against the
//     deliberately unsound legacy -O2, with every finding shrunk by
//     the automatic reducer — the corpus/coverage/reduce counters fill
//     the new columns
//   - wide8: a deterministic stride sample of the i8 space with the
//     exhaustive-input cutoff raised so every verdict still closes
//
// The rows share the checks/sec axis with E11, so the cost of CFG
// candidates (loops, phis) and of wide inputs is directly readable
// against the straight-line i2 baseline. seed fixes the mutation RNG;
// the row is byte-deterministic in it regardless of workers.
func MeasureWorkloads(numInstrs, maxFuncs, workers int, seed int64, reg *telemetry.Registry) []PipelineResult {
	var rows []PipelineResult

	// Exhaustive baseline on the explicit adapter.
	{
		c := pipelineCampaign(true, numInstrs, maxFuncs, workers, true, false, true)
		c.Source = optfuzz.NewExhaustiveSource(c.Gen)
		rows = append(rows, runWorkloadRow(&c, workers, reg))
	}

	// Coverage-guided mutation against the unsound legacy -O2: the
	// workload that actually produces findings, so the reducer columns
	// are live. PerEpoch spreads the row's budget across the default
	// epoch count to keep the total comparable to the other rows.
	{
		sem := core.LegacyOptions(core.BranchPoisonNondet)
		pcfg := passes.DefaultLegacyConfig()
		pcfg.Unsound = true
		mcfg := optfuzz.DefaultMutationConfig(seed)
		mcfg.Gen = optfuzz.DefaultConfig(numInstrs)
		mcfg.Mode = ir.VerifyLegacy
		// CFG mutants with loops cost far more per check than the
		// straight-line baseline; quick runs shrink the epoch budget,
		// full runs keep the source default rather than scaling up.
		if per := maxFuncs / 4; per > 0 && per < mcfg.PerEpoch {
			mcfg.PerEpoch = per
		}
		c := optfuzz.Campaign{
			Gen:         mcfg.Gen,
			Source:      optfuzz.NewMutationSource(mcfg),
			Refine:      refine.DefaultConfig(sem, sem),
			Pipeline:    passes.O2().Instrument(),
			PipelineCfg: pcfg,
			Workers:     workers,
			Reduce:      true,
		}
		rows = append(rows, runWorkloadRow(&c, workers, reg))
	}

	// Sampled i8 with closed input enumeration.
	{
		sem := core.FreezeOptions()
		rcfg := refine.DefaultConfig(sem, sem)
		rcfg.ExhaustiveInputBits = 8
		c := optfuzz.Campaign{
			Source: optfuzz.NewWideSource(optfuzz.WideConfig{
				Width:       8,
				NumInstrs:   numInstrs,
				MaxFuncs:    maxFuncs,
				AllowPoison: true,
			}),
			Refine:      rcfg,
			Pipeline:    passes.O2().Instrument(),
			PipelineCfg: passes.DefaultFreezeConfig(),
			Workers:     workers,
		}
		rows = append(rows, runWorkloadRow(&c, workers, reg))
	}
	return rows
}

func runWorkloadRow(c *optfuzz.Campaign, workers int, reg *telemetry.Registry) PipelineResult {
	name := "exhaustive"
	if c.Source != nil {
		name = c.Source.Name()
	}
	start := time.Now()
	st := runRow(c, reg, "experiment", "workload", "workload", name,
		"workers", strconv.Itoa(workers))
	elapsed := time.Since(start)
	checks := st.Verified + st.Refuted + st.Inconclusive
	r := PipelineResult{
		Pipeline:        "o2",
		Workload:        st.Source,
		Workers:         workers,
		Memo:            true,
		Passes:          1,
		Funcs:           st.Funcs,
		Checks:          checks,
		Refuted:         st.Refuted,
		Elapsed:         elapsed,
		ChecksPerSec:    float64(checks) / elapsed.Seconds(),
		MemoHits:        st.MemoHits,
		MemoLookups:     st.MemoLookups,
		HitRate:         st.HitRate(),
		AnalysisCache:   true,
		Epochs:          st.Epochs,
		CorpusSize:      st.CorpusSize,
		CoverageKeys:    st.CoverageKeys,
		ReduceSteps:     st.ReduceSteps,
		ReducedFindings: st.ReducedFindings,
	}
	if st.Opt != nil {
		a := st.Opt.Analysis()
		r.AnalysisComputes = a.Computes
		r.AnalysisHits = a.Hits
		r.FreezeElimRemoved = st.Opt.FreezeElimRemoved()
	}
	return r
}

// ReportWorkloads renders the E13 table.
func ReportWorkloads(w io.Writer, rows []PipelineResult) {
	fmt.Fprintf(w, "== E13: pluggable workloads (-O2, shared campaign engine) ==\n")
	fmt.Fprintf(w, "%-12s %7s %8s %8s %8s %10s %11s %7s %7s %9s %7s\n",
		"workload", "workers", "funcs", "checks", "refuted", "elapsed", "checks/sec",
		"epochs", "corpus", "red-steps", "red-fnd")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7d %8d %8d %8d %10s %11.0f %7d %7d %9d %7d\n",
			r.Workload, r.Workers, r.Funcs, r.Checks, r.Refuted,
			r.Elapsed.Round(time.Millisecond), r.ChecksPerSec,
			r.Epochs, r.CorpusSize, r.ReduceSteps, r.ReducedFindings)
	}
}
