package analysis

import "tameir/internal/ir"

// DomTree is a dominator tree over the reachable blocks of a function,
// built with the Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	fn    *ir.Func
	idom  map[*ir.Block]*ir.Block // immediate dominator; entry maps to itself
	order map[*ir.Block]int       // reverse postorder index
	kids  map[*ir.Block][]*ir.Block
}

// NewDomTree computes the dominator tree of f.
func NewDomTree(f *ir.Func) *DomTree {
	return newDomTree(f, Preds(f))
}

// newDomTree computes the dominator tree from an existing predecessor
// map (shared with the Manager's cached CFG analysis).
func newDomTree(f *ir.Func, preds map[*ir.Block][]*ir.Block) *DomTree {
	rpo := ReversePostorder(f)
	order := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	entry := f.Entry()
	idom := map[*ir.Block]*ir.Block{entry: entry}

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *ir.Block
			for _, p := range preds[b] {
				if _, ok := idom[p]; !ok {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}

	kids := map[*ir.Block][]*ir.Block{}
	for b, d := range idom {
		if b != d {
			kids[d] = append(kids[d], b)
		}
	}
	return &DomTree{fn: f, idom: idom, order: order, kids: kids}
}

// IDom returns the immediate dominator of b (nil for the entry block or
// unreachable blocks).
func (dt *DomTree) IDom(b *ir.Block) *ir.Block {
	d := dt.idom[b]
	if d == b {
		return nil
	}
	return d
}

// Children returns the blocks immediately dominated by b.
func (dt *DomTree) Children(b *ir.Block) []*ir.Block { return dt.kids[b] }

// Dominates reports whether a dominates b (reflexively).
func (dt *DomTree) Dominates(a, b *ir.Block) bool {
	if _, ok := dt.idom[b]; !ok {
		return false // unreachable
	}
	for {
		if a == b {
			return true
		}
		d := dt.idom[b]
		if d == b {
			return false // reached entry
		}
		b = d
	}
}

// StrictlyDominates reports whether a dominates b and a != b.
func (dt *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && dt.Dominates(a, b)
}

// InstrDominates reports whether the definition point of value v
// dominates instruction user. Constant leaves and parameters dominate
// everything; an instruction dominates users in later positions of its
// own block and in strictly dominated blocks. A phi's value is
// available from the top of its block.
func (dt *DomTree) InstrDominates(v ir.Value, user *ir.Instr) bool {
	def, ok := v.(*ir.Instr)
	if !ok {
		return true
	}
	if def == user {
		// An instruction never dominates its own use sites: a non-phi
		// self-operand is invalid SSA, and phi self-references are
		// checked against the incoming edge's terminator instead.
		return false
	}
	db, ub := def.Parent(), user.Parent()
	if db == nil || ub == nil {
		return false
	}
	if db != ub {
		return dt.StrictlyDominates(db, ub)
	}
	for _, in := range db.Instrs() {
		if in == def {
			return true
		}
		if in == user {
			return false
		}
	}
	return false
}
