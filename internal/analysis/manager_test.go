package analysis

import (
	"testing"

	"tameir/internal/ir"
)

func managerFunc(t *testing.T) *ir.Func {
	t.Helper()
	return ir.MustParseFunc(`define i2 @f(i1 %c, i2 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i2 [ %x, %a ], [ 0, %b ]
  ret i2 %p
}`)
}

func TestSetString(t *testing.T) {
	if got := None.String(); got != "none" {
		t.Errorf("None = %q", got)
	}
	if got := All.String(); got != "cfg|domtree|loopinfo" {
		t.Errorf("All = %q", got)
	}
	if got := (CFG | Doms).String(); got != "cfg|domtree" {
		t.Errorf("CFG|Doms = %q", got)
	}
}

func TestManagerLazyAndCached(t *testing.T) {
	m := NewManager(managerFunc(t))
	if m.Cached(CFG) || m.Cached(Doms) || m.Cached(Loops) {
		t.Fatal("fresh manager claims cached analyses")
	}
	// LoopInfo pulls in its whole dependency chain.
	if m.LoopInfo() == nil {
		t.Fatal("nil loop info")
	}
	if !m.Cached(All) {
		t.Fatal("LoopInfo should cache CFG and domtree too")
	}
	st := m.Stats()
	if st.Computes != 3 {
		t.Errorf("computes = %d, want 3 (preds, domtree, loopinfo)", st.Computes)
	}
	// Re-querying hits the cache and returns the identical objects.
	dt := m.DomTree()
	if m.DomTree() != dt {
		t.Error("DomTree recomputed despite cache")
	}
	if got := m.Stats(); got.Computes != 3 || got.Hits == 0 {
		t.Errorf("stats after re-query = %+v", got)
	}
}

func TestManagerInvalidation(t *testing.T) {
	m := NewManager(managerFunc(t))
	m.LoopInfo()

	// Preserving everything evicts nothing.
	m.Invalidate(All)
	if !m.Cached(All) {
		t.Fatal("Invalidate(All) evicted a preserved analysis")
	}

	// Dropping only Doms must drop Loops too (it is derived from the
	// domtree) but keep the CFG.
	m.Invalidate(CFG)
	if !m.Cached(CFG) {
		t.Error("CFG evicted despite being preserved")
	}
	if m.Cached(Doms) || m.Cached(Loops) {
		t.Error("domtree/loopinfo survived a CFG-only preserved set")
	}

	// Dropping the CFG takes the whole chain with it, even if the
	// caller claims the derived analyses are preserved.
	m.LoopInfo()
	m.Invalidate(Doms | Loops)
	if m.Cached(CFG) || m.Cached(Doms) || m.Cached(Loops) {
		t.Error("derived analyses survived CFG eviction")
	}

	m.LoopInfo()
	m.InvalidateAll()
	if m.Cached(CFG) || m.Cached(Doms) || m.Cached(Loops) {
		t.Error("InvalidateAll left something cached")
	}
}

func TestManagerMatchesDirectComputation(t *testing.T) {
	f := managerFunc(t)
	m := NewManager(f)
	direct := NewDomTree(f)
	cached := m.DomTree()
	for _, b := range f.Blocks {
		if direct.IDom(b) != cached.IDom(b) {
			t.Errorf("idom(%s) differs: direct %v, manager %v",
				b.Name(), direct.IDom(b), cached.IDom(b))
		}
	}
}
