package analysis

import (
	"fmt"

	"tameir/internal/ir"
)

// VerifySSA checks the dominance property the structural verifier in
// package ir cannot (it would need a dominator tree): every use of an
// instruction result is dominated by its definition. Phi uses are
// checked against the incoming edge's predecessor. Unreachable blocks
// are exempt (nothing executes there, and passes routinely leave them
// for cleanup).
func VerifySSA(f *ir.Func) error {
	dt := NewDomTree(f)
	reach := Reachable(f)
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for _, in := range b.Instrs() {
			if in.Op == ir.OpPhi {
				for i := 0; i < in.NumArgs(); i++ {
					def, ok := in.Arg(i).(*ir.Instr)
					if !ok {
						continue
					}
					pred := in.BlockArg(i)
					if !reach[pred] {
						continue
					}
					term := pred.Terminator()
					if term == nil || !dt.InstrDominates(def, term) {
						return fmt.Errorf("analysis: phi %%%s in %s: incoming %%%s does not dominate edge from %s",
							in.Name(), b.Name(), def.Name(), pred.Name())
					}
				}
				continue
			}
			for _, a := range in.Args() {
				def, ok := a.(*ir.Instr)
				if !ok {
					continue
				}
				if !dt.InstrDominates(def, in) {
					return fmt.Errorf("analysis: %s in %s uses %%%s which does not dominate it",
						in, b.Name(), def.Name())
				}
			}
		}
	}
	return nil
}
