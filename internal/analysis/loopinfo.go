package analysis

import "tameir/internal/ir"

// Loop is a natural loop: a header plus the blocks that can reach a
// back edge to the header without leaving the loop.
type Loop struct {
	Header *ir.Block
	// Blocks is the loop body, including the header.
	Blocks map[*ir.Block]bool
	// Latches are the in-loop predecessors of the header.
	Latches []*ir.Block
	// Parent is the innermost enclosing loop, if any.
	Parent *Loop
}

// Contains reports whether b is in the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// ContainsInstr reports whether in's block is in the loop.
func (l *Loop) ContainsInstr(in *ir.Instr) bool {
	return in.Parent() != nil && l.Blocks[in.Parent()]
}

// Preheader returns the unique out-of-loop predecessor of the header if
// it has exactly one and that predecessor branches only to the header;
// otherwise nil.
func (l *Loop) Preheader(f *ir.Func) *ir.Block {
	var ph *ir.Block
	for _, p := range f.Preds(l.Header) {
		if l.Blocks[p] {
			continue
		}
		if ph != nil {
			return nil
		}
		ph = p
	}
	if ph == nil {
		return nil
	}
	if t := ph.Terminator(); t == nil || t.IsConditionalBr() || len(t.Succs()) != 1 {
		return nil
	}
	return ph
}

// Exits returns the out-of-loop successor blocks of loop blocks.
func (l *Loop) Exits() []*ir.Block {
	var exits []*ir.Block
	seen := map[*ir.Block]bool{}
	for b := range l.Blocks {
		for _, s := range b.Succs() {
			if !l.Blocks[s] && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	return exits
}

// IsInvariant reports whether v is computed outside the loop (constant
// leaves and parameters always are).
func (l *Loop) IsInvariant(v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return true
	}
	return !l.ContainsInstr(in)
}

// LoopInfo holds the natural loops of a function, innermost first.
type LoopInfo struct {
	Loops []*Loop
	// innermost maps each block to its innermost containing loop.
	innermost map[*ir.Block]*Loop
}

// LoopFor returns the innermost loop containing b, or nil.
func (li *LoopInfo) LoopFor(b *ir.Block) *Loop { return li.innermost[b] }

// FindLoops detects the natural loops of f using its dominator tree.
// Loops sharing a header are merged (as in LLVM).
func FindLoops(f *ir.Func, dt *DomTree) *LoopInfo {
	reach := Reachable(f)
	byHeader := map[*ir.Block]*Loop{}
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for _, s := range b.Succs() {
			if !dt.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
			}
			l.Latches = append(l.Latches, b)
			// Walk predecessors from the latch until the header.
			work := []*ir.Block{b}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if l.Blocks[x] {
					continue
				}
				l.Blocks[x] = true
				work = append(work, f.Preds(x)...)
			}
		}
	}
	li := &LoopInfo{innermost: map[*ir.Block]*Loop{}}
	for _, l := range byHeader {
		li.Loops = append(li.Loops, l)
	}
	// Sort innermost (smallest) first for stable iteration.
	for i := 0; i < len(li.Loops); i++ {
		for j := i + 1; j < len(li.Loops); j++ {
			if len(li.Loops[j].Blocks) < len(li.Loops[i].Blocks) {
				li.Loops[i], li.Loops[j] = li.Loops[j], li.Loops[i]
			}
		}
	}
	// Parent links: the smallest strictly-containing loop.
	for i, l := range li.Loops {
		for _, cand := range li.Loops[i+1:] {
			if cand != l && cand.Blocks[l.Header] && len(cand.Blocks) > len(l.Blocks) {
				l.Parent = cand
				break
			}
		}
	}
	// Innermost map: loops are smallest-first, so first hit wins.
	for _, l := range li.Loops {
		for b := range l.Blocks {
			if li.innermost[b] == nil {
				li.innermost[b] = l
			}
		}
	}
	return li
}

// InductionVar describes a simple affine induction variable:
//
//	%iv  = phi [ start, preheader ], [ %next, latch ]
//	%next = add(nsw?) %iv, step
type InductionVar struct {
	Phi   *ir.Instr
	Next  *ir.Instr // the add
	Start ir.Value
	Step  *ir.Const
	// NSW reports whether the increment carries the nsw attribute —
	// the fact indvar widening needs (§2.4).
	NSW bool
}

// FindInductionVars recognizes the affine induction variables of loop l
// (a scalar-evolution-lite). Only two-incoming phis in the header with
// a constant-step add on the latch path qualify.
func FindInductionVars(f *ir.Func, l *Loop) []InductionVar {
	var ivs []InductionVar
	ph := l.Preheader(f)
	for _, phi := range l.Header.Phis() {
		if phi.NumArgs() != 2 || !phi.Ty.IsInt() {
			continue
		}
		var start ir.Value
		var nextV ir.Value
		for i := 0; i < 2; i++ {
			if l.Blocks[phi.BlockArg(i)] {
				nextV = phi.Arg(i)
			} else if ph == nil || phi.BlockArg(i) == ph {
				start = phi.Arg(i)
			}
		}
		if start == nil || nextV == nil {
			continue
		}
		next, ok := nextV.(*ir.Instr)
		if !ok || next.Op != ir.OpAdd || !l.ContainsInstr(next) {
			continue
		}
		var step *ir.Const
		if next.Arg(0) == ir.Value(phi) {
			step, _ = next.Arg(1).(*ir.Const)
		} else if next.Arg(1) == ir.Value(phi) {
			step, _ = next.Arg(0).(*ir.Const)
		}
		if step == nil {
			continue
		}
		ivs = append(ivs, InductionVar{
			Phi:   phi,
			Next:  next,
			Start: start,
			Step:  step,
			NSW:   next.Attrs&ir.NSW != 0,
		})
	}
	return ivs
}
