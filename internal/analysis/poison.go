package analysis

import "tameir/internal/ir"

// This file implements the flow-sensitive poison dataflow analysis the
// paper's deployment story depends on (§5, §7): freeze is only cheap if
// the compiler can prove most values are never poison and delete the
// redundant freezes the §10.1 migration sprays over every undef use.
// Unlike IsGuaranteedNotToBePoison (a local, operand-chasing query),
// this analysis walks the CFG once to a fixpoint, so it reasons about
// phi merges and loop-carried values, and its result is cached in the
// analysis Manager like the dominator tree.

// PoisonLattice is the per-value fact: NeverPoison is the optimistic
// bottom element, MayPoison the conservative top. Join is max.
type PoisonLattice uint8

const (
	// NeverPoison: the value cannot be poison — nor, under legacy
	// semantics, undef. The two are deliberately conflated, exactly as
	// in IsGuaranteedNotToBePoison: every consumer of the fact (freeze
	// elimination, speculation) needs "no deferred UB at all", and a
	// multi-use freeze of undef is not removable even though undef is
	// not poison (§3.1's use-count trap).
	NeverPoison PoisonLattice = iota
	// MayPoison: the analysis cannot rule poison out.
	MayPoison
)

// String renders the fact for diagnostics.
func (l PoisonLattice) String() string {
	if l == NeverPoison {
		return "never-poison"
	}
	return "may-poison"
}

func joinPoison(a, b PoisonLattice) PoisonLattice {
	if a > b {
		return a
	}
	return b
}

// PoisonFacts is the computed result for one function: one lattice
// element per reachable value-producing instruction. Leaves (constants,
// parameters, deferred-UB constants) are classified structurally at
// query time. The facts are valid for the IR state they were computed
// from; the Manager invalidates them after any pass that reports a
// change (Poison is not part of the All preserved-set).
type PoisonFacts struct {
	fn     *ir.Func
	facts  map[*ir.Instr]PoisonLattice
	reach  map[*ir.Block]bool
	rounds int

	queries *uint64 // bound to Manager.Stats when cached there
	local   uint64  // standalone query count (tame-lint, tests)
}

// AnalyzePoison runs the dataflow to fixpoint over the reachable blocks
// of f. The iteration is optimistic: every instruction starts at
// NeverPoison and is raised by monotone transfer functions until
// nothing changes, which gives the least fixpoint — the standard
// loop-safe treatment: a phi whose incomings are all clean-or-itself
// stays NeverPoison, justified by induction over loop iterations.
func AnalyzePoison(f *ir.Func) *PoisonFacts {
	p := &PoisonFacts{
		fn:    f,
		facts: make(map[*ir.Instr]PoisonLattice, f.NumInstrs()),
		reach: Reachable(f),
	}
	rpo := ReversePostorder(f)
	for {
		p.rounds++
		changed := false
		for _, b := range rpo {
			for _, in := range b.Instrs() {
				nf := p.transfer(in)
				old, seen := p.facts[in]
				if !seen || nf > old {
					p.facts[in] = nf
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return p
}

// leafFact classifies a non-instruction value structurally.
func (p *PoisonFacts) leafFact(v ir.Value) PoisonLattice {
	switch x := v.(type) {
	case *ir.Const, *ir.Global:
		return NeverPoison
	case *ir.VecConst:
		for _, e := range x.Elems {
			if p.leafFact(e) == MayPoison {
				return MayPoison
			}
		}
		return NeverPoison
	case *ir.Undef, *ir.Poison:
		return MayPoison
	case *ir.Param:
		// Parameters may always be poison; §10 notes LLVM could change
		// that, which would strengthen this whole analysis at once.
		return MayPoison
	}
	return MayPoison
}

// operandFact is the in-flight view used by transfer: instructions not
// yet visited read as the optimistic bottom so loops converge to the
// least fixpoint.
func (p *PoisonFacts) operandFact(v ir.Value) PoisonLattice {
	if in, ok := v.(*ir.Instr); ok {
		return p.facts[in] // zero value is NeverPoison (bottom)
	}
	return p.leafFact(v)
}

// transfer computes the fact for one instruction from its operands'
// current facts. Every case is monotone in the operands.
func (p *PoisonFacts) transfer(in *ir.Instr) PoisonLattice {
	switch {
	case in.Op == ir.OpFreeze, in.Op == ir.OpAlloca:
		return NeverPoison
	case in.Op == ir.OpPhi:
		// Phi merge across incoming edges: self-references contribute
		// nothing new (any execution reaching the phi through the
		// backedge read an earlier iterate, covered by induction), and
		// edges from unreachable predecessors never execute.
		out := NeverPoison
		for i := 0; i < in.NumArgs(); i++ {
			if in.Arg(i) == ir.Value(in) {
				continue
			}
			if pred := in.BlockArg(i); pred != nil && !p.reach[pred] {
				continue
			}
			out = joinPoison(out, p.operandFact(in.Arg(i)))
		}
		return out
	case in.Op.IsBinop():
		// Poison-generating attributes can introduce poison even from
		// clean operands, unless knownbits proves the overflow
		// impossible; shifts can over-shift unless the amount is
		// provably in range.
		if in.Attrs != 0 && !attrsCannotPoison(in) {
			return MayPoison
		}
		if in.Op.IsShift() && !shiftAmountInRangeKB(in) {
			return MayPoison
		}
		return joinPoison(p.operandFact(in.Arg(0)), p.operandFact(in.Arg(1)))
	case in.Op == ir.OpICmp:
		return joinPoison(p.operandFact(in.Arg(0)), p.operandFact(in.Arg(1)))
	case in.Op.IsCast():
		return p.operandFact(in.Arg(0))
	case in.Op == ir.OpSelect:
		// Condition plus both arms: conservative under every
		// SelectPoison knob (Figure 5, either-arm, cond-UB).
		out := p.operandFact(in.Arg(0))
		out = joinPoison(out, p.operandFact(in.Arg(1)))
		return joinPoison(out, p.operandFact(in.Arg(2)))
	case in.Op == ir.OpGEP:
		if in.Attrs&ir.NSW != 0 {
			return MayPoison // inbounds-style overflow poison
		}
		return joinPoison(p.operandFact(in.Arg(0)), p.operandFact(in.Arg(1)))
	}
	// Loads (uninitialized memory reads give undef), calls, vector
	// element ops with dynamic indices, terminators: conservative.
	return MayPoison
}

// attrsCannotPoison uses knownbits to prove a flagged operation cannot
// trigger its poison condition: currently add nuw whose operands'
// known-zero high bits bound the sum inside the width (§5.6's "up to"
// caveat applies — the bound holds when the operands are not poison,
// and poison operands already force MayPoison through the operand
// join).
func attrsCannotPoison(in *ir.Instr) bool {
	if in.Op != ir.OpAdd || in.Attrs != ir.NUW || !in.Ty.IsInt() {
		return false
	}
	mask := ir.TruncBits(^uint64(0), in.Ty.Bits)
	la := ComputeKnownBits(in.Arg(0))
	lb := ComputeKnownBits(in.Arg(1))
	maxA := mask &^ la.Zero
	maxB := mask &^ lb.Zero
	return maxB <= mask-maxA
}

// shiftAmountInRangeKB extends the constant-amount check with
// knownbits: an amount whose possible maximum (mask with known-zero
// bits cleared) is below the width can never over-shift.
func shiftAmountInRangeKB(in *ir.Instr) bool {
	if shiftAmountInRange(in) {
		return true
	}
	if !in.Ty.IsInt() {
		return false
	}
	kb := ComputeKnownBits(in.Arg(1))
	mask := ir.TruncBits(^uint64(0), kb.Width)
	return mask&^kb.Zero < uint64(in.Ty.Bits)
}

// SetQueryCounter redirects the query counter into an external
// accumulator (the Manager's Stats), so eviction cannot lose counts.
func (p *PoisonFacts) SetQueryCounter(c *uint64) {
	if c != nil {
		*c += p.local
		p.local = 0
	}
	p.queries = c
}

// Queries returns the number of Fact/NeverPoison/NeverPoisonAt queries
// answered (only meaningful for standalone facts; Manager-owned facts
// report through analysis.Stats.PoisonQueries).
func (p *PoisonFacts) Queries() uint64 {
	if p.queries != nil {
		return *p.queries
	}
	return p.local
}

func (p *PoisonFacts) countQuery() {
	if p.queries != nil {
		*p.queries++
	} else {
		p.local++
	}
}

// Fact returns the lattice element for v. Instructions in unreachable
// blocks (absent from the fixpoint) answer MayPoison: nothing executes
// there, so no claim is ever made about them.
func (p *PoisonFacts) Fact(v ir.Value) PoisonLattice {
	p.countQuery()
	if in, ok := v.(*ir.Instr); ok {
		if f, seen := p.facts[in]; seen {
			return f
		}
		return MayPoison
	}
	return p.leafFact(v)
}

// NeverPoison reports whether the analysis proved v free of deferred UB
// (neither poison nor, under legacy, undef) on every execution.
func (p *PoisonFacts) NeverPoison(v ir.Value) bool { return p.Fact(v) == NeverPoison }

// NeverPoisonAt refines Fact with dominating branch conditions — the
// "branch-condition refinement where cheap" tier. Under the freeze
// dialect, branching on poison is immediate UB (§3.3), so on every
// execution that reaches `at`, each conditional branch in a strictly
// dominating block already executed without UB: its condition was not
// poison, and since an icmp propagates operand poison, neither were the
// icmp's operands. SSA values are immutable once evaluated, so the fact
// holds for every later use dominated by `at`.
//
// VALIDITY: only sound when branching on poison is UB AND the dialect
// has no undef — i.e. core.Freeze semantics. (Under legacy, a branch on
// an undef-derived condition resolves nondeterministically instead of
// trapping, so nothing is learned about undef, and NeverPoison promises
// undef-freedom too.) Callers gate on the semantics mode; the facts
// returned by Fact need no such gate.
func (p *PoisonFacts) NeverPoisonAt(v ir.Value, at *ir.Block, dt *DomTree) bool {
	if p.Fact(v) == NeverPoison {
		return true
	}
	if at == nil || dt == nil {
		return false
	}
	for d := dt.IDom(at); d != nil; d = dt.IDom(d) {
		term := d.Terminator()
		if term == nil || !term.IsConditionalBr() {
			continue
		}
		cond := term.Arg(0)
		if cond == v {
			return true
		}
		if c, ok := cond.(*ir.Instr); ok && c.Op == ir.OpICmp && (c.Arg(0) == v || c.Arg(1) == v) {
			return true
		}
	}
	return false
}

// Forget drops the cached fact for an instruction the caller is about
// to erase. A pass that keeps the facts alive past its own run (see
// Manager.PreserveDuringRun) must Forget every deleted instruction:
// the verify-each coherence check compares the cached table against a
// fresh fixpoint over the post-pass IR, and a lingering entry for a
// dead instruction fails the comparison even when every surviving
// fact is still exact. Forgetting an instruction the analysis never
// saw (unreachable blocks) is a no-op.
func (p *PoisonFacts) Forget(in *ir.Instr) { delete(p.facts, in) }

// Rounds returns how many fixpoint sweeps the analysis took (≥ 2; loops
// with poison-raising backedges take more).
func (p *PoisonFacts) Rounds() int { return p.rounds }

// Counts tallies the facts over reachable instructions, for diagnostics
// (tame-lint's per-function summary).
func (p *PoisonFacts) Counts() (never, may int) {
	for _, f := range p.facts {
		if f == NeverPoison {
			never++
		} else {
			may++
		}
	}
	return never, may
}

// equalFacts reports whether two fact tables agree on every reachable
// instruction of the (shared) function — the verify-each invariant: a
// cached analysis must match a fresh recomputation.
func (p *PoisonFacts) equalFacts(fresh *PoisonFacts) bool {
	if len(p.facts) != len(fresh.facts) {
		return false
	}
	for in, f := range p.facts {
		if ff, ok := fresh.facts[in]; !ok || ff != f {
			return false
		}
	}
	return true
}
