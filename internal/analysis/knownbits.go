package analysis

import (
	"tameir/internal/ir"
)

// KnownBits tracks, for a scalar integer value, which bits are known
// zero and which are known one. As Section 5.6 of the paper explains,
// the facts hold only when the analyzed value is not poison — under
// poison the value "could take any value, including a
// non-power-of-two". Callers that move code past control flow must
// combine these results with IsGuaranteedNotToBePoison.
type KnownBits struct {
	Zero uint64 // bits known to be 0
	One  uint64 // bits known to be 1
	// Width of the analyzed type.
	Width uint
}

// Known reports whether all bits are known.
func (k KnownBits) Known() bool {
	return k.Zero|k.One == ir.TruncBits(^uint64(0), k.Width)
}

// Const returns the value if fully known.
func (k KnownBits) Const() (uint64, bool) {
	if k.Known() {
		return k.One, true
	}
	return 0, false
}

// maxKBDepth bounds the recursion of ComputeKnownBits.
const maxKBDepth = 6

// ComputeKnownBits computes known-zero/known-one bits for a scalar
// integer value. It is deliberately simple: enough to power the
// InstCombine rules and the power-of-two query.
func ComputeKnownBits(v ir.Value) KnownBits {
	return computeKB(v, maxKBDepth)
}

func computeKB(v ir.Value, depth int) KnownBits {
	ty := v.Type()
	if !ty.IsInt() {
		return KnownBits{Width: ty.Bitwidth()}
	}
	w := ty.Bits
	mask := ir.TruncBits(^uint64(0), w)
	top := KnownBits{Width: w}
	if depth == 0 {
		return top
	}
	switch x := v.(type) {
	case *ir.Const:
		return KnownBits{Zero: mask &^ x.Bits, One: x.Bits, Width: w}
	case *ir.Instr:
		a := func(i int) KnownBits { return computeKB(x.Arg(i), depth-1) }
		switch x.Op {
		case ir.OpAnd:
			l, r := a(0), a(1)
			return KnownBits{Zero: (l.Zero | r.Zero) & mask, One: l.One & r.One, Width: w}
		case ir.OpOr:
			l, r := a(0), a(1)
			return KnownBits{Zero: l.Zero & r.Zero, One: (l.One | r.One) & mask, Width: w}
		case ir.OpXor:
			l, r := a(0), a(1)
			known := (l.Zero | l.One) & (r.Zero | r.One)
			ones := (l.One ^ r.One) & known
			return KnownBits{Zero: known &^ ones, One: ones, Width: w}
		case ir.OpShl:
			if c, ok := x.Arg(1).(*ir.Const); ok && c.Bits < uint64(w) {
				l := a(0)
				sh := uint(c.Bits)
				return KnownBits{
					Zero:  (l.Zero<<sh | (1<<sh - 1)) & mask,
					One:   (l.One << sh) & mask,
					Width: w,
				}
			}
		case ir.OpLShr:
			if c, ok := x.Arg(1).(*ir.Const); ok && c.Bits < uint64(w) {
				l := a(0)
				sh := uint(c.Bits)
				high := mask &^ ir.TruncBits(mask, w-sh)
				return KnownBits{
					Zero:  (l.Zero&mask)>>sh | high,
					One:   (l.One & mask) >> sh,
					Width: w,
				}
			}
		case ir.OpZExt:
			src := computeKB(x.Arg(0), depth-1)
			srcW := x.Arg(0).Type().Bits
			ext := mask &^ ir.TruncBits(^uint64(0), srcW)
			return KnownBits{Zero: src.Zero | ext, One: src.One, Width: w}
		case ir.OpTrunc:
			src := computeKB(x.Arg(0), depth-1)
			return KnownBits{Zero: src.Zero & mask, One: src.One & mask, Width: w}
		case ir.OpAdd:
			// Low zero bits of both operands stay zero.
			l, r := a(0), a(1)
			lz := trailingOnes(l.Zero)
			rz := trailingOnes(r.Zero)
			n := lz
			if rz < n {
				n = rz
			}
			return KnownBits{Zero: ir.TruncBits(1<<n-1, w) & l.Zero & r.Zero, Width: w}
		case ir.OpMul:
			// A multiply by a power-of-two constant shifts: low bits zero.
			if c, ok := x.Arg(1).(*ir.Const); ok && c.Bits != 0 && c.Bits&(c.Bits-1) == 0 {
				sh := uint(trailingZeros(c.Bits))
				l := a(0)
				return KnownBits{Zero: (l.Zero<<sh | (1<<sh - 1)) & mask, One: (l.One << sh) & mask, Width: w}
			}
		case ir.OpSelect:
			l, r := computeKB(x.Arg(1), depth-1), computeKB(x.Arg(2), depth-1)
			return KnownBits{Zero: l.Zero & r.Zero, One: l.One & r.One, Width: w}
		case ir.OpFreeze:
			// freeze preserves the value when it is defined; known bits
			// of the operand are facts about the defined case, and the
			// frozen result of poison can be anything — so known bits
			// do NOT carry over. This conservatism is exactly why
			// §5.6 says analyses need "up to non-poison" results: we
			// return top here and let IsGuaranteedNotToBePoison refine.
			return top
		}
	}
	return top
}

func trailingOnes(x uint64) uint {
	n := uint(0)
	for x&1 == 1 {
		n++
		x >>= 1
	}
	return n
}

func trailingZeros(x uint64) uint {
	if x == 0 {
		return 64
	}
	n := uint(0)
	for x&1 == 0 {
		n++
		x >>= 1
	}
	return n
}

// PowerOfTwoResult is the answer of IsKnownToBeAPowerOfTwo with the
// Section 5.6 caveat made explicit in the API: the fact is conditional
// on the analyzed value not being poison.
type PowerOfTwoResult struct {
	// PowerOfTwo: the value is a power of two whenever it is not
	// poison.
	PowerOfTwo bool
	// NonPoison: the value is additionally guaranteed not to be
	// poison, so the fact holds unconditionally (safe for hoisting
	// past control flow, e.g. a division).
	NonPoison bool
}

// IsKnownToBeAPowerOfTwo implements the paper's running analysis
// example: "%x = shl 1, %y" is a power of two — but only if %y is not
// poison (§5.6).
func IsKnownToBeAPowerOfTwo(v ir.Value) PowerOfTwoResult {
	res := PowerOfTwoResult{}
	switch x := v.(type) {
	case *ir.Const:
		res.PowerOfTwo = x.Bits != 0 && x.Bits&(x.Bits-1) == 0
		res.NonPoison = true
		return res
	case *ir.Instr:
		switch x.Op {
		case ir.OpShl:
			if c, ok := x.Arg(0).(*ir.Const); ok && c.Bits == 1 {
				res.PowerOfTwo = true
				res.NonPoison = IsGuaranteedNotToBePoison(x) // needs shift amount in range too
			}
			return res
		case ir.OpFreeze:
			inner := IsKnownToBeAPowerOfTwo(x.Arg(0))
			// freeze(x): non-poison for sure, but if x was poison the
			// frozen value is arbitrary — the power-of-two fact
			// survives only if x was non-poison anyway.
			res.PowerOfTwo = inner.PowerOfTwo && inner.NonPoison
			res.NonPoison = true
			return res
		}
	}
	kb := ComputeKnownBits(v)
	if c, ok := kb.Const(); ok {
		res.PowerOfTwo = c != 0 && c&(c-1) == 0
		res.NonPoison = IsGuaranteedNotToBePoison(v)
	}
	return res
}
