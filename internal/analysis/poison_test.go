package analysis

import (
	"testing"

	"tameir/internal/ir"
)

func instByName(t *testing.T, f *ir.Func, name string) *ir.Instr {
	t.Helper()
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			if in.Name() == name {
				return in
			}
		}
	}
	t.Fatalf("no instruction %%%s", name)
	return nil
}

func TestPoisonStraightLine(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i8 %p) {
entry:
  %fz = freeze i8 %p
  %c = add i8 1, 2
  %n = add nsw i8 %fz, 1
  %plain = add i8 %fz, %fz
  %useP = add i8 %p, 1
  %sh = shl i8 %fz, 9
  %shc = shl i8 %fz, 2
  ret i8 %plain
}`)
	pf := AnalyzePoison(f)
	want := map[string]PoisonLattice{
		"fz":    NeverPoison,
		"c":     NeverPoison,
		"n":     MayPoison, // nsw can overflow
		"plain": NeverPoison,
		"useP":  MayPoison, // parameter operand
		"sh":    MayPoison, // over-shift
		"shc":   NeverPoison,
	}
	for name, w := range want {
		if got := pf.Fact(instByName(t, f, name)); got != w {
			t.Errorf("Fact(%%%s) = %v, want %v", name, got, w)
		}
	}
	if pf.NeverPoison(f.Params[0]) {
		t.Error("parameters may be poison")
	}
	if pf.Queries() == 0 {
		t.Error("query counter did not advance")
	}
}

func TestPoisonKnownBitsIntegration(t *testing.T) {
	// The flow-sensitive analysis goes beyond the local query in two
	// knownbits-backed cases: a variable shift amount whose known-zero
	// bits bound it under the width, and an add nuw whose operands'
	// maxima cannot overflow.
	f := ir.MustParseFunc(`define i8 @f(i8 %a, i8 %b) {
entry:
  %fa = freeze i8 %a
  %fb = freeze i8 %b
  %amt = and i8 %fb, 3
  %sh = shl i8 %fa, %amt
  %la = and i8 %fa, 7
  %lb = and i8 %fb, 7
  %sum = add nuw i8 %la, %lb
  %bad = add nuw i8 %fa, %fb
  ret i8 %sum
}`)
	pf := AnalyzePoison(f)
	if got := pf.Fact(instByName(t, f, "sh")); got != NeverPoison {
		t.Errorf("shl by (and x, 3) on i8: Fact = %v, want never-poison (amount provably < 8)", got)
	}
	if got := pf.Fact(instByName(t, f, "sum")); got != NeverPoison {
		t.Errorf("add nuw of two 3-bit values: Fact = %v, want never-poison (7+7 cannot wrap i8)", got)
	}
	if got := pf.Fact(instByName(t, f, "bad")); got != MayPoison {
		t.Errorf("add nuw of unbounded values: Fact = %v, want may-poison", got)
	}
}

func TestPoisonPhiMerge(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i1 %c, i8 %p) {
entry:
  br i1 %c, label %t, label %e
t:
  %ft = freeze i8 %p
  br label %m
e:
  br label %m
m:
  %clean = phi i8 [ %ft, %t ], [ 7, %e ]
  %dirty = phi i8 [ %ft, %t ], [ %p, %e ]
  %use = add i8 %clean, 1
  ret i8 %use
}`)
	pf := AnalyzePoison(f)
	if got := pf.Fact(instByName(t, f, "clean")); got != NeverPoison {
		t.Errorf("phi of freeze and constant: Fact = %v, want never-poison", got)
	}
	if got := pf.Fact(instByName(t, f, "dirty")); got != MayPoison {
		t.Errorf("phi with a raw parameter incoming: Fact = %v, want may-poison", got)
	}
	if got := pf.Fact(instByName(t, f, "use")); got != NeverPoison {
		t.Errorf("add over the clean phi: Fact = %v, want never-poison (this is what the local query cannot see)", got)
	}
}

func TestPoisonLoopFixpoint(t *testing.T) {
	// Loop-carried induction: %i starts clean and the backedge feeds an
	// attribute-free add of itself, so the optimistic fixpoint keeps it
	// NeverPoison. The nsw twin must converge to MayPoison — the poison
	// raised on the backedge must propagate around the cycle.
	f := ir.MustParseFunc(`define i8 @f(i8 %n) {
entry:
  %fn = freeze i8 %n
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %j = phi i8 [ 0, %entry ], [ %j1, %body ]
  %c = icmp ult i8 %i, %fn
  br i1 %c, label %body, label %exit
body:
  %i1 = add i8 %i, 1
  %j1 = add nsw i8 %j, 1
  br label %head
exit:
  ret i8 %i
}`)
	pf := AnalyzePoison(f)
	if got := pf.Fact(instByName(t, f, "i")); got != NeverPoison {
		t.Errorf("clean induction phi: Fact = %v, want never-poison", got)
	}
	if got := pf.Fact(instByName(t, f, "i1")); got != NeverPoison {
		t.Errorf("clean induction step: Fact = %v, want never-poison", got)
	}
	if got := pf.Fact(instByName(t, f, "j")); got != MayPoison {
		t.Errorf("nsw induction phi: Fact = %v, want may-poison (backedge poison must reach the header)", got)
	}
	if pf.Rounds() < 2 {
		t.Errorf("fixpoint converged in %d rounds, want >= 2", pf.Rounds())
	}
}

func TestPoisonUnreachableAndSelfRef(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i8 %p) {
entry:
  %x = add i8 1, 2
  ret i8 %x
dead:
  %y = add i8 %p, 1
  br label %dead2
dead2:
  br label %dead
}`)
	pf := AnalyzePoison(f)
	if got := pf.Fact(instByName(t, f, "x")); got != NeverPoison {
		t.Errorf("reachable const add: Fact = %v", got)
	}
	// Unreachable instructions are outside the fixpoint: conservative.
	if got := pf.Fact(instByName(t, f, "y")); got != MayPoison {
		t.Errorf("unreachable instruction: Fact = %v, want may-poison", got)
	}

	// A self-referential phi (all non-self incomings clean) is clean:
	// induction over iterations, the same argument as the loop case.
	g := ir.MustParseFunc(`define i8 @g(i1 %c) {
entry:
  br label %head
head:
  %i = phi i8 [ 3, %entry ], [ %i, %latch ]
  br i1 %c, label %latch, label %exit
latch:
  br label %head
exit:
  ret i8 %i
}`)
	pg := AnalyzePoison(g)
	if got := pg.Fact(instByName(t, g, "i")); got != NeverPoison {
		t.Errorf("self-referential phi with clean seed: Fact = %v, want never-poison", got)
	}
}

func TestPoisonEdgeRefinement(t *testing.T) {
	// Freeze-dialect branch refinement: every execution reaching %t
	// already branched on %c = icmp(%p, 0) without UB, so %p cannot be
	// poison there even though it globally may be.
	f := ir.MustParseFunc(`define i8 @f(i8 %p) {
entry:
  %c = icmp eq i8 %p, 0
  br i1 %c, label %t, label %e
t:
  %use = add i8 %p, 1
  br label %e
e:
  ret i8 0
}`)
	pf := AnalyzePoison(f)
	dt := NewDomTree(f)
	var tBlk, eBlk *ir.Block
	for _, b := range f.Blocks {
		switch b.Name() {
		case "t":
			tBlk = b
		case "e":
			eBlk = b
		}
	}
	p := f.Params[0]
	if pf.NeverPoison(p) {
		t.Fatal("parameter must not be globally never-poison")
	}
	if !pf.NeverPoisonAt(p, tBlk, dt) {
		t.Error("icmp operand not refined under its own guard block")
	}
	cond := instByName(t, f, "c")
	if !pf.NeverPoisonAt(cond, tBlk, dt) {
		t.Error("branch condition not refined under its own guard block")
	}
	// %e is reachable without executing... no: both paths branch in
	// entry, which dominates %e, so the refinement holds there too.
	if !pf.NeverPoisonAt(p, eBlk, dt) {
		t.Error("refinement must hold in the merge block dominated by the guard")
	}
}

func TestPoisonManagerIntegration(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i8 %p) {
entry:
  %fz = freeze i8 %p
  ret i8 %fz
}`)
	m := NewManager(f)
	pf := m.Poison()
	if !pf.NeverPoison(instByName(t, f, "fz")) {
		t.Fatal("freeze must be never-poison")
	}
	if m.Poison() != pf {
		t.Error("second query recomputed instead of hitting the cache")
	}
	st := m.Stats()
	if st.PoisonQueries == 0 {
		t.Error("manager stats did not count poison queries")
	}
	if !m.Cached(Poison) {
		t.Error("Cached(Poison) false while facts are live")
	}
	// All deliberately excludes Poison: an instruction-rewriting pass
	// that preserves every CFG analysis must still evict poison facts.
	m.Invalidate(All)
	if m.Cached(Poison) {
		t.Error("Invalidate(All) kept poison facts alive")
	}
	if !m.Cached(CFG|Doms) && m.Cached(CFG) {
		t.Error("Invalidate(All) evicted CFG-level analyses")
	}
}

func TestCheckInvariantsCatchesStaleness(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i8 %p) {
entry:
  %x = add i8 1, 2
  ret i8 %x
}`)
	m := NewManager(f)
	m.Preds()
	m.DomTree()
	m.LoopInfo()
	m.Poison()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("clean caches flagged: %v", err)
	}
	// Mutate the IR behind the manager's back, as a pass with a wrong
	// preserved-set declaration would: the add becomes nsw, so its
	// cached NeverPoison fact is now stale.
	instByName(t, f, "x").Attrs |= ir.NSW
	err := m.CheckInvariants()
	if err == nil {
		t.Fatal("stale poison facts not detected")
	}
	// After proper invalidation the fresh facts agree again.
	m.Invalidate(None)
	m.Poison()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("recomputed facts flagged: %v", err)
	}
}
