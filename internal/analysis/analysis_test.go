package analysis

import (
	"testing"

	"tameir/internal/ir"
)

const diamondSrc = `define i32 @f(i1 %c, i32 %a) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i32 [ 1, %t ], [ 2, %e ]
  ret i32 %x
}`

const loopSrc = `define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i32 %i
}`

const nestedLoopSrc = `define void @f(i32 %n) {
entry:
  br label %oh
oh:
  %i = phi i32 [ 0, %entry ], [ %i1, %olatch ]
  %oc = icmp slt i32 %i, %n
  br i1 %oc, label %ih, label %done
ih:
  %j = phi i32 [ 0, %oh ], [ %j1, %ih ]
  %j1 = add i32 %j, 1
  %ic = icmp slt i32 %j1, %n
  br i1 %ic, label %ih, label %olatch
olatch:
  %i1 = add i32 %i, 1
  br label %oh
done:
  ret void
}`

func TestReversePostorder(t *testing.T) {
	f := ir.MustParseFunc(diamondSrc)
	rpo := ReversePostorder(f)
	if len(rpo) != 4 {
		t.Fatalf("rpo has %d blocks", len(rpo))
	}
	pos := map[string]int{}
	for i, b := range rpo {
		pos[b.Name()] = i
	}
	if pos["entry"] != 0 {
		t.Error("entry not first")
	}
	if pos["m"] != 3 {
		t.Errorf("merge block at %d, want last", pos["m"])
	}
}

func TestReachableSkipsDeadBlocks(t *testing.T) {
	f := ir.MustParseFunc(`define i32 @f() {
entry:
  ret i32 0
dead:
  br label %dead
}`)
	r := Reachable(f)
	if len(r) != 1 || !r[f.Entry()] {
		t.Errorf("reachable = %v", r)
	}
}

func TestDomTreeDiamond(t *testing.T) {
	f := ir.MustParseFunc(diamondSrc)
	dt := NewDomTree(f)
	entry := f.BlockByName("entry")
	tb := f.BlockByName("t")
	eb := f.BlockByName("e")
	m := f.BlockByName("m")
	if dt.IDom(m) != entry {
		t.Errorf("idom(m) = %v", dt.IDom(m))
	}
	if dt.IDom(tb) != entry || dt.IDom(eb) != entry {
		t.Error("idom(t/e) wrong")
	}
	if dt.IDom(entry) != nil {
		t.Error("entry has an idom")
	}
	if !dt.Dominates(entry, m) || dt.Dominates(tb, m) || !dt.Dominates(m, m) {
		t.Error("Dominates wrong")
	}
	if !dt.StrictlyDominates(entry, m) || dt.StrictlyDominates(m, m) {
		t.Error("StrictlyDominates wrong")
	}
	if len(dt.Children(entry)) != 3 {
		t.Errorf("entry dominates %d children, want 3", len(dt.Children(entry)))
	}
}

func TestInstrDominates(t *testing.T) {
	f := ir.MustParseFunc(loopSrc)
	dt := NewDomTree(f)
	head := f.BlockByName("head")
	body := f.BlockByName("body")
	phi := head.Phis()[0]
	cmp := head.Instrs()[1]
	inc := body.Instrs()[0]
	if !dt.InstrDominates(phi, cmp) {
		t.Error("phi should dominate cmp in same block")
	}
	if dt.InstrDominates(cmp, phi) {
		t.Error("cmp should not dominate earlier phi")
	}
	if !dt.InstrDominates(phi, inc) {
		t.Error("phi should dominate body instruction")
	}
	if dt.InstrDominates(inc, cmp) {
		t.Error("body instr should not dominate head instr")
	}
	if !dt.InstrDominates(f.Params[0], inc) {
		t.Error("parameters dominate everything")
	}
	if dt.InstrDominates(inc, inc) {
		t.Error("an instruction must not dominate its own use site (self-use is invalid SSA)")
	}
}

func TestFindLoops(t *testing.T) {
	f := ir.MustParseFunc(loopSrc)
	dt := NewDomTree(f)
	li := FindLoops(f, dt)
	if len(li.Loops) != 1 {
		t.Fatalf("found %d loops", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header.Name() != "head" {
		t.Errorf("header = %s", l.Header.Name())
	}
	if !l.Contains(f.BlockByName("body")) || l.Contains(f.BlockByName("exit")) {
		t.Error("loop body wrong")
	}
	if ph := l.Preheader(f); ph == nil || ph.Name() != "entry" {
		t.Errorf("preheader = %v", ph)
	}
	exits := l.Exits()
	if len(exits) != 1 || exits[0].Name() != "exit" {
		t.Errorf("exits = %v", exits)
	}
	if li.LoopFor(f.BlockByName("body")) != l || li.LoopFor(f.BlockByName("exit")) != nil {
		t.Error("LoopFor wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	f := ir.MustParseFunc(nestedLoopSrc)
	dt := NewDomTree(f)
	li := FindLoops(f, dt)
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	inner, outer := li.Loops[0], li.Loops[1]
	if len(inner.Blocks) > len(outer.Blocks) {
		inner, outer = outer, inner
	}
	if inner.Header.Name() != "ih" || outer.Header.Name() != "oh" {
		t.Errorf("headers: inner=%s outer=%s", inner.Header.Name(), outer.Header.Name())
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent should be the outer loop")
	}
	if li.LoopFor(f.BlockByName("ih")) != inner {
		t.Error("innermost map wrong")
	}
	if !outer.Blocks[f.BlockByName("ih")] {
		t.Error("outer loop should contain inner header")
	}
}

func TestLoopInvariance(t *testing.T) {
	f := ir.MustParseFunc(loopSrc)
	li := FindLoops(f, NewDomTree(f))
	l := li.Loops[0]
	if !l.IsInvariant(f.Params[0]) {
		t.Error("parameter should be invariant")
	}
	if !l.IsInvariant(ir.ConstInt(ir.I32, 3)) {
		t.Error("constant should be invariant")
	}
	phi := l.Header.Phis()[0]
	if l.IsInvariant(phi) {
		t.Error("loop phi should be variant")
	}
}

func TestFindInductionVars(t *testing.T) {
	f := ir.MustParseFunc(loopSrc)
	li := FindLoops(f, NewDomTree(f))
	ivs := FindInductionVars(f, li.Loops[0])
	if len(ivs) != 1 {
		t.Fatalf("found %d IVs", len(ivs))
	}
	iv := ivs[0]
	if iv.Phi.Name() != "i" || iv.Step.Bits != 1 || !iv.NSW {
		t.Errorf("iv = %+v", iv)
	}
	if c, ok := iv.Start.(*ir.Const); !ok || c.Bits != 0 {
		t.Errorf("start = %v", iv.Start)
	}
}

func TestKnownBitsOps(t *testing.T) {
	build := func(src string) *ir.Instr {
		f := ir.MustParseFunc(src)
		instrs := f.Entry().Instrs()
		return instrs[len(instrs)-2] // last value before ret
	}
	cases := []struct {
		src  string
		zero uint64
		one  uint64
	}{
		{`define i8 @f(i8 %x) {
entry:
  %a = and i8 %x, 15
  ret i8 %a
}`, 0xf0, 0},
		{`define i8 @f(i8 %x) {
entry:
  %a = or i8 %x, 3
  ret i8 %a
}`, 0, 3},
		{`define i8 @f(i8 %x) {
entry:
  %a = and i8 %x, 12
  %b = or i8 %a, 1
  ret i8 %b
}`, 0xf2, 1},
		{`define i8 @f(i8 %x) {
entry:
  %a = and i8 %x, 3
  %s = shl i8 %a, 4
  ret i8 %s
}`, 0xcf, 0},
		{`define i8 @f(i8 %x) {
entry:
  %a = or i8 %x, 128
  %s = lshr i8 %a, 4
  ret i8 %s
}`, 0xf0, 8},
		{`define i8 @f(i4 %x) {
entry:
  %z = zext i4 %x to i8
  ret i8 %z
}`, 0xf0, 0},
		{`define i8 @f(i8 %x) {
entry:
  %a = xor i8 %x, %x
  ret i8 %a
}`, 0, 0}, // xor x,x: conservatively unknown (distinct operand walk)
	}
	for i, c := range cases {
		kb := ComputeKnownBits(build(c.src))
		if kb.Zero&c.zero != c.zero || kb.One&c.one != c.one {
			t.Errorf("case %d: got zero=%#x one=%#x, want at least zero=%#x one=%#x",
				i, kb.Zero, kb.One, c.zero, c.one)
		}
		if kb.Zero&kb.One != 0 {
			t.Errorf("case %d: contradictory known bits", i)
		}
	}
}

func TestKnownBitsConst(t *testing.T) {
	kb := ComputeKnownBits(ir.ConstInt(ir.I8, 0xa5))
	if v, ok := kb.Const(); !ok || v != 0xa5 {
		t.Errorf("const known bits = %+v", kb)
	}
}

func TestPowerOfTwoQuery(t *testing.T) {
	// §5.6's example: %x = shl 1, %y is a power of two only up to %y
	// being non-poison.
	f := ir.MustParseFunc(`define i8 @f(i8 %y) {
entry:
  %x = shl i8 1, %y
  ret i8 %x
}`)
	shl := f.Entry().Instrs()[0]
	r := IsKnownToBeAPowerOfTwo(shl)
	if !r.PowerOfTwo {
		t.Error("shl 1, %y should be a power of two up to poison")
	}
	if r.NonPoison {
		t.Error("the fact must be conditional: %y may be poison (and may over-shift)")
	}
	// A constant is unconditionally a power of two.
	r = IsKnownToBeAPowerOfTwo(ir.ConstInt(ir.I8, 16))
	if !r.PowerOfTwo || !r.NonPoison {
		t.Errorf("const 16: %+v", r)
	}
	r = IsKnownToBeAPowerOfTwo(ir.ConstInt(ir.I8, 12))
	if r.PowerOfTwo {
		t.Error("12 is not a power of two")
	}
	// freeze(shl 1, %y): non-poison for sure, but the value may be
	// anything if %y was poison, so PowerOfTwo must be false.
	f2 := ir.MustParseFunc(`define i8 @f(i8 %y) {
entry:
  %x = shl i8 1, %y
  %fx = freeze i8 %x
  ret i8 %fx
}`)
	fr := f2.Entry().Instrs()[1]
	r = IsKnownToBeAPowerOfTwo(fr)
	if r.PowerOfTwo {
		t.Error("freeze of maybe-poison power-of-two is not reliably a power of two")
	}
	if !r.NonPoison {
		t.Error("freeze output is never poison")
	}
}

func TestIsGuaranteedNotToBePoison(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i8 %p) {
entry:
  %fz = freeze i8 %p
  %c = add i8 1, 2
  %n = add nsw i8 %fz, 1
  %plain = add i8 %fz, %fz
  %sh = shl i8 %fz, 9
  %shc = shl i8 %fz, 2
  ret i8 %plain
}`)
	ins := f.Entry().Instrs()
	get := func(name string) *ir.Instr {
		for _, in := range ins {
			if in.Name() == name {
				return in
			}
		}
		t.Fatalf("no %s", name)
		return nil
	}
	if IsGuaranteedNotToBePoison(f.Params[0]) {
		t.Error("parameters may be poison")
	}
	if !IsGuaranteedNotToBePoison(get("fz")) {
		t.Error("freeze is never poison")
	}
	if !IsGuaranteedNotToBePoison(get("c")) {
		t.Error("constant expr is never poison")
	}
	if IsGuaranteedNotToBePoison(get("n")) {
		t.Error("nsw add may be poison")
	}
	if !IsGuaranteedNotToBePoison(get("plain")) {
		t.Error("plain add of frozen values is never poison")
	}
	if IsGuaranteedNotToBePoison(get("sh")) {
		t.Error("over-shift may be poison")
	}
	if !IsGuaranteedNotToBePoison(get("shc")) {
		t.Error("in-range shift of frozen value is never poison")
	}
	if IsGuaranteedNotToBePoison(ir.NewPoison(ir.I8)) || IsGuaranteedNotToBePoison(ir.NewUndef(ir.I8)) {
		t.Error("poison/undef leaves")
	}
}

func TestIsSpeculatable(t *testing.T) {
	f := ir.MustParseFunc(`define i8 @f(i8 %a, i8 %b, ptr %p) {
entry:
  %d = udiv i8 %a, %b
  %dc = udiv i8 %a, 4
  %ds = sdiv i8 %a, 4
  %sc = sdiv i8 %a, -1
  %x = add i8 %a, %b
  %l = load i8, ptr %p
  ret i8 %x
}`)
	get := func(name string) *ir.Instr {
		for _, in := range f.Entry().Instrs() {
			if in.Name() == name {
				return in
			}
		}
		t.Fatalf("no %s", name)
		return nil
	}
	if IsSpeculatable(get("d")) || IsSpeculatable(get("l")) {
		t.Error("division and loads are not speculatable")
	}
	if !IsSpeculatable(get("x")) {
		t.Error("add is speculatable")
	}
	if !IsSpeculatableWithNonPoisonDivisor(get("dc")) {
		t.Error("udiv by constant 4 is speculatable")
	}
	if !IsSpeculatableWithNonPoisonDivisor(get("ds")) {
		t.Error("sdiv by constant 4 is speculatable")
	}
	if IsSpeculatableWithNonPoisonDivisor(get("sc")) {
		t.Error("sdiv by -1 can overflow (INT_MIN / -1)")
	}
	if IsSpeculatableWithNonPoisonDivisor(get("d")) {
		t.Error("udiv by a parameter is not speculatable (§3.2)")
	}
}

func TestVerifySSA(t *testing.T) {
	good := ir.MustParseFunc(loopSrc)
	if err := VerifySSA(good); err != nil {
		t.Errorf("valid SSA rejected: %v", err)
	}
	// Build a violation: a use before its definition across blocks.
	bad := ir.MustParseFunc(`define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i32 1, 2
  br label %m
b:
  br label %m
m:
  %y = add i32 %x, 1
  ret i32 %y
}`)
	if err := VerifySSA(bad); err == nil {
		t.Error("use not dominated by def was accepted")
	}
	// Phi incomings are checked against the edge, not the phi block.
	phiOK := ir.MustParseFunc(`define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i32 1, 2
  br label %m
b:
  br label %m
m:
  %y = phi i32 [ %x, %a ], [ 0, %b ]
  ret i32 %y
}`)
	if err := VerifySSA(phiOK); err != nil {
		t.Errorf("valid phi rejected: %v", err)
	}
	phiBad := ir.MustParseFunc(`define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  %x = add i32 1, 2
  br label %m
m:
  %y = phi i32 [ %x, %a ], [ 0, %b ]
  ret i32 %y
}`)
	if err := VerifySSA(phiBad); err == nil {
		t.Error("phi incoming from wrong edge was accepted")
	}
}

func TestVerifySSAUnreachableBlocks(t *testing.T) {
	// Dominance is undefined in unreachable code, so the checker must
	// exempt it entirely: a use-before-def inside an unreachable block
	// (and an unreachable cycle) is accepted, exactly as LLVM's
	// verifier accepts garbage in dead blocks.
	f := ir.MustParseFunc(`define i32 @f() {
entry:
  ret i32 0
dead:
  %y = add i32 %z, 1
  %z = add i32 1, 2
  br label %dead2
dead2:
  br label %dead
}`)
	if err := VerifySSA(f); err != nil {
		t.Errorf("use-before-def in unreachable code rejected: %v", err)
	}
	// A phi in reachable code with an incoming from an unreachable
	// predecessor edge: the edge never executes, so the incoming value
	// is exempt from the dominance check.
	g := ir.MustParseFunc(`define i32 @g(i1 %c) {
entry:
  br label %m
dead:
  %x = add i32 1, 2
  br label %m
m:
  %y = phi i32 [ 0, %entry ], [ %x, %dead ]
  ret i32 %y
}`)
	if err := VerifySSA(g); err != nil {
		t.Errorf("phi incoming over an unreachable edge rejected: %v", err)
	}
}

func TestVerifySSASelfReferentialPhi(t *testing.T) {
	// A phi may use itself through a backedge: the def dominates the
	// latch terminator, so the edge-based rule accepts it.
	ok := ir.MustParseFunc(`define i8 @f(i1 %c) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i, %latch ]
  br i1 %c, label %latch, label %exit
latch:
  br label %head
exit:
  ret i8 %i
}`)
	if err := VerifySSA(ok); err != nil {
		t.Errorf("self-referential phi over a backedge rejected: %v", err)
	}
	// But a phi may NOT use itself on an edge it does not dominate:
	// %i's self-incoming from entry reads a value that has never been
	// defined on that path.
	bad := ir.MustParseFunc(`define i8 @g(i1 %c) {
entry:
  br i1 %c, label %head, label %head
head:
  %i = phi i8 [ %i, %entry ], [ %i, %entry ]
  ret i8 %i
}`)
	if err := VerifySSA(bad); err == nil {
		t.Error("phi consuming itself on the entry edge was accepted")
	}
}
