package analysis

import (
	"fmt"
	"strings"

	"tameir/internal/ir"
)

// Set is a bitset of the function-level analyses the Manager caches.
// Passes declare, through the pass registry, which analyses remain
// valid after they mutate the IR; the pass manager invalidates the
// rest.
type Set uint32

const (
	// CFG is the predecessor map (the block-level control-flow
	// structure the other analyses derive from).
	CFG Set = 1 << iota
	// Doms is the dominator tree.
	Doms
	// Loops is the natural-loop forest.
	Loops
	// Poison is the flow-sensitive poison-lattice fact table
	// (AnalyzePoison). Deliberately NOT part of All: the block-level
	// analyses survive passes that only rewrite instructions in place,
	// but poison facts are per-value and go stale on any instruction
	// change, so no pass preserves them — they are recomputed lazily
	// after every change.
	Poison
)

// None and All are the two common preserved-set declarations: a pass
// that rewires control flow preserves None; a pass that only touches
// instructions within existing blocks (no edge or block changes)
// preserves All. (All excludes Poison — see its comment.)
const (
	None Set = 0
	All  Set = CFG | Doms | Loops
)

// Has reports whether every analysis in a is in s.
func (s Set) Has(a Set) bool { return s&a == a }

// String renders the set for diagnostics ("cfg|domtree|loopinfo").
func (s Set) String() string {
	if s == None {
		return "none"
	}
	var parts []string
	if s.Has(CFG) {
		parts = append(parts, "cfg")
	}
	if s.Has(Doms) {
		parts = append(parts, "domtree")
	}
	if s.Has(Loops) {
		parts = append(parts, "loopinfo")
	}
	if s.Has(Poison) {
		parts = append(parts, "poison")
	}
	return strings.Join(parts, "|")
}

// Stats counts manager activity: how many analyses were computed from
// scratch and how many queries were served from the cache. The
// difference is exactly what the pass manager's caching saves over the
// historical recompute-per-pass behaviour.
type Stats struct {
	Computes uint64
	Hits     uint64
	// PoisonQueries counts Fact/NeverPoison/NeverPoisonAt queries
	// answered by manager-owned poison facts (the analysis is only
	// worth its fixpoint if consumers actually query it).
	PoisonQueries uint64
}

// Add accumulates o into s (for merging per-shard managers).
func (s *Stats) Add(o Stats) {
	s.Computes += o.Computes
	s.Hits += o.Hits
	s.PoisonQueries += o.PoisonQueries
}

// Manager caches the function-level analyses (predecessor map,
// dominator tree, loop info) for one function and serves them to
// passes. Analyses are computed lazily on first query and retained
// until Invalidate evicts them; the caller (normally the pass manager)
// is responsible for invalidating after the IR changes, using each
// pass's preserved-analyses declaration.
//
// A Manager is not safe for concurrent use; the parallel campaign
// gives every worker its own manager, like every other piece of
// per-shard state.
type Manager struct {
	fn     *ir.Func
	preds  map[*ir.Block][]*ir.Block
	dt     *DomTree
	li     *LoopInfo
	poison *PoisonFacts
	stats  Stats

	// runPreserved accumulates the analyses the currently running pass
	// proved still valid beyond its static registration — see
	// PreserveDuringRun.
	runPreserved Set
}

// NewManager returns an empty manager for f.
func NewManager(f *ir.Func) *Manager { return &Manager{fn: f} }

// Func returns the function the manager serves.
func (m *Manager) Func() *ir.Func { return m.fn }

// Preds returns the cached predecessor map, computing it on first use.
func (m *Manager) Preds() map[*ir.Block][]*ir.Block {
	if m.preds == nil {
		m.stats.Computes++
		m.preds = Preds(m.fn)
	} else {
		m.stats.Hits++
	}
	return m.preds
}

// DomTree returns the cached dominator tree, computing it (and the
// predecessor map it is built from) on first use.
func (m *Manager) DomTree() *DomTree {
	if m.dt == nil {
		preds := m.Preds()
		m.stats.Computes++
		m.dt = newDomTree(m.fn, preds)
	} else {
		m.stats.Hits++
	}
	return m.dt
}

// LoopInfo returns the cached natural-loop forest, computing it (and
// the dominator tree it depends on) on first use.
func (m *Manager) LoopInfo() *LoopInfo {
	if m.li == nil {
		dt := m.DomTree()
		m.stats.Computes++
		m.li = FindLoops(m.fn, dt)
	} else {
		m.stats.Hits++
	}
	return m.li
}

// Poison returns the cached flow-sensitive poison facts, running the
// dataflow to fixpoint on first use. Query counts are accumulated into
// the manager's Stats so eviction cannot lose them.
func (m *Manager) Poison() *PoisonFacts {
	if m.poison == nil {
		m.stats.Computes++
		m.poison = AnalyzePoison(m.fn)
		m.poison.SetQueryCounter(&m.stats.PoisonQueries)
	} else {
		m.stats.Hits++
	}
	return m.poison
}

// Invalidate evicts every cached analysis not in preserved. Dependent
// analyses are evicted with their inputs: dropping the CFG drops the
// dominator tree, and dropping the dominator tree drops loop info (a
// cached derived result over an evicted input would silently go stale).
// Poison facts additionally depend on the instruction graph itself, so
// they survive only a pass that explicitly preserves Poison — All does
// not include it.
func (m *Manager) Invalidate(preserved Set) {
	if !preserved.Has(CFG) {
		m.preds = nil
		preserved &^= Doms | Loops | Poison
	}
	if !preserved.Has(Doms) {
		m.dt = nil
		preserved &^= Loops
	}
	if !preserved.Has(Loops) {
		m.li = nil
	}
	if !preserved.Has(Poison) {
		m.poison = nil
	}
}

// InvalidateAll evicts everything. Passes that mutate control flow
// mid-run (loop unswitching between fixpoint rounds) call this so
// their own later queries recompute.
func (m *Manager) InvalidateAll() { m.Invalidate(None) }

// PreserveDuringRun records that the currently running pass has kept
// the analyses in s exact despite reporting a change — a dynamic
// upgrade of its static registry declaration, for facts (like Poison)
// whose validity depends on what the pass actually did rather than on
// what it is allowed to do. The claim is consumed by TakeRunPreserved
// at the end of the pass step and ORed into the static preserved-set;
// under -verify-each it is then checked against a fresh recomputation
// like any other declaration. Claims accumulate within one run and
// never outlive it.
func (m *Manager) PreserveDuringRun(s Set) { m.runPreserved |= s }

// TakeRunPreserved returns and clears the analyses the pass that just
// ran claimed to preserve dynamically. The pass manager must call it
// exactly once per pass step, whether or not the pass reported a
// change, so a claim can never leak into the next pass's invalidation.
func (m *Manager) TakeRunPreserved() Set {
	s := m.runPreserved
	m.runPreserved = None
	return s
}

// Cached reports whether every analysis in s is currently cached.
func (m *Manager) Cached(s Set) bool {
	if s.Has(CFG) && m.preds == nil {
		return false
	}
	if s.Has(Doms) && m.dt == nil {
		return false
	}
	if s.Has(Loops) && m.li == nil {
		return false
	}
	if s.Has(Poison) && m.poison == nil {
		return false
	}
	return true
}

// Stats returns the compute/hit counters accumulated so far.
func (m *Manager) Stats() Stats { return m.stats }

// CheckInvariants recomputes every currently cached analysis from
// scratch and compares it against the cached copy. A mismatch means
// some pass mutated the IR but declared a preserved-set that kept a
// now-stale analysis alive — the silent-miscompile precursor the
// -verify-each mode exists to catch. Analyses that are not cached are
// skipped (nothing can be stale about them). Returns nil when every
// cached analysis matches a fresh recomputation.
func (m *Manager) CheckInvariants() error {
	if m.preds != nil {
		fresh := Preds(m.fn)
		if len(fresh) != len(m.preds) {
			return fmt.Errorf("analysis: stale predecessor map on @%s: %d blocks cached, %d fresh", m.fn.Name(), len(m.preds), len(fresh))
		}
		for b, fp := range fresh {
			cp, ok := m.preds[b]
			if !ok || len(cp) != len(fp) {
				return fmt.Errorf("analysis: stale predecessor map on @%s at %%%s", m.fn.Name(), b.Name())
			}
			for i := range fp {
				if cp[i] != fp[i] {
					return fmt.Errorf("analysis: stale predecessor map on @%s at %%%s", m.fn.Name(), b.Name())
				}
			}
		}
	}
	if m.dt != nil {
		fresh := NewDomTree(m.fn)
		for _, b := range m.fn.Blocks {
			if m.dt.IDom(b) != fresh.IDom(b) {
				return fmt.Errorf("analysis: stale dominator tree on @%s: idom(%%%s) cached %v, fresh %v", m.fn.Name(), b.Name(), blockName(m.dt.IDom(b)), blockName(fresh.IDom(b)))
			}
		}
	}
	if m.li != nil {
		fresh := FindLoops(m.fn, NewDomTree(m.fn))
		if len(fresh.Loops) != len(m.li.Loops) {
			return fmt.Errorf("analysis: stale loop info on @%s: %d loops cached, %d fresh", m.fn.Name(), len(m.li.Loops), len(fresh.Loops))
		}
		for _, b := range m.fn.Blocks {
			ch, fh := loopHeader(m.li.LoopFor(b)), loopHeader(fresh.LoopFor(b))
			if ch != fh {
				return fmt.Errorf("analysis: stale loop info on @%s: innermost loop of %%%s changed", m.fn.Name(), b.Name())
			}
		}
	}
	if m.poison != nil {
		fresh := AnalyzePoison(m.fn)
		if !m.poison.equalFacts(fresh) {
			return fmt.Errorf("analysis: stale poison facts on @%s: cached lattice disagrees with a fresh fixpoint", m.fn.Name())
		}
	}
	return nil
}

func blockName(b *ir.Block) string {
	if b == nil {
		return "<nil>"
	}
	return "%" + b.Name()
}

func loopHeader(l *Loop) *ir.Block {
	if l == nil {
		return nil
	}
	return l.Header
}
