package analysis

import (
	"strings"

	"tameir/internal/ir"
)

// Set is a bitset of the function-level analyses the Manager caches.
// Passes declare, through the pass registry, which analyses remain
// valid after they mutate the IR; the pass manager invalidates the
// rest.
type Set uint32

const (
	// CFG is the predecessor map (the block-level control-flow
	// structure the other analyses derive from).
	CFG Set = 1 << iota
	// Doms is the dominator tree.
	Doms
	// Loops is the natural-loop forest.
	Loops
)

// None and All are the two common preserved-set declarations: a pass
// that rewires control flow preserves None; a pass that only touches
// instructions within existing blocks (no edge or block changes)
// preserves All.
const (
	None Set = 0
	All  Set = CFG | Doms | Loops
)

// Has reports whether every analysis in a is in s.
func (s Set) Has(a Set) bool { return s&a == a }

// String renders the set for diagnostics ("cfg|domtree|loopinfo").
func (s Set) String() string {
	if s == None {
		return "none"
	}
	var parts []string
	if s.Has(CFG) {
		parts = append(parts, "cfg")
	}
	if s.Has(Doms) {
		parts = append(parts, "domtree")
	}
	if s.Has(Loops) {
		parts = append(parts, "loopinfo")
	}
	return strings.Join(parts, "|")
}

// Stats counts manager activity: how many analyses were computed from
// scratch and how many queries were served from the cache. The
// difference is exactly what the pass manager's caching saves over the
// historical recompute-per-pass behaviour.
type Stats struct {
	Computes uint64
	Hits     uint64
}

// Add accumulates o into s (for merging per-shard managers).
func (s *Stats) Add(o Stats) {
	s.Computes += o.Computes
	s.Hits += o.Hits
}

// Manager caches the function-level analyses (predecessor map,
// dominator tree, loop info) for one function and serves them to
// passes. Analyses are computed lazily on first query and retained
// until Invalidate evicts them; the caller (normally the pass manager)
// is responsible for invalidating after the IR changes, using each
// pass's preserved-analyses declaration.
//
// A Manager is not safe for concurrent use; the parallel campaign
// gives every worker its own manager, like every other piece of
// per-shard state.
type Manager struct {
	fn    *ir.Func
	preds map[*ir.Block][]*ir.Block
	dt    *DomTree
	li    *LoopInfo
	stats Stats
}

// NewManager returns an empty manager for f.
func NewManager(f *ir.Func) *Manager { return &Manager{fn: f} }

// Func returns the function the manager serves.
func (m *Manager) Func() *ir.Func { return m.fn }

// Preds returns the cached predecessor map, computing it on first use.
func (m *Manager) Preds() map[*ir.Block][]*ir.Block {
	if m.preds == nil {
		m.stats.Computes++
		m.preds = Preds(m.fn)
	} else {
		m.stats.Hits++
	}
	return m.preds
}

// DomTree returns the cached dominator tree, computing it (and the
// predecessor map it is built from) on first use.
func (m *Manager) DomTree() *DomTree {
	if m.dt == nil {
		preds := m.Preds()
		m.stats.Computes++
		m.dt = newDomTree(m.fn, preds)
	} else {
		m.stats.Hits++
	}
	return m.dt
}

// LoopInfo returns the cached natural-loop forest, computing it (and
// the dominator tree it depends on) on first use.
func (m *Manager) LoopInfo() *LoopInfo {
	if m.li == nil {
		dt := m.DomTree()
		m.stats.Computes++
		m.li = FindLoops(m.fn, dt)
	} else {
		m.stats.Hits++
	}
	return m.li
}

// Invalidate evicts every cached analysis not in preserved. Dependent
// analyses are evicted with their inputs: dropping the CFG drops the
// dominator tree, and dropping the dominator tree drops loop info (a
// cached derived result over an evicted input would silently go stale).
func (m *Manager) Invalidate(preserved Set) {
	if !preserved.Has(CFG) {
		m.preds = nil
		preserved &^= Doms | Loops
	}
	if !preserved.Has(Doms) {
		m.dt = nil
		preserved &^= Loops
	}
	if !preserved.Has(Loops) {
		m.li = nil
	}
}

// InvalidateAll evicts everything. Passes that mutate control flow
// mid-run (loop unswitching between fixpoint rounds) call this so
// their own later queries recompute.
func (m *Manager) InvalidateAll() { m.Invalidate(None) }

// Cached reports whether every analysis in s is currently cached.
func (m *Manager) Cached(s Set) bool {
	if s.Has(CFG) && m.preds == nil {
		return false
	}
	if s.Has(Doms) && m.dt == nil {
		return false
	}
	if s.Has(Loops) && m.li == nil {
		return false
	}
	return true
}

// Stats returns the compute/hit counters accumulated so far.
func (m *Manager) Stats() Stats { return m.stats }
